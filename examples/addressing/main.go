// Addressing: a walkthrough of the translation machinery Siloz builds on —
// physical-to-media decode on a Skylake-like server (§2.4, §4.2), the
// subarray group layout it induces, DDR4 internal row transformations (§6),
// and how non-power-of-two subarray sizes force artificial groups with
// boundary guard rows.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/subarray"
)

func main() {
	log.SetFlags(0)
	g := geometry.Default()
	mapper, err := addr.NewMapper(g, addr.KindSkylake)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %s\n\n", g)

	// 1. Cache-line interleaving: consecutive lines spread across banks.
	fmt.Println("physical-to-media decode (consecutive cache lines):")
	for i := 0; i < 4; i++ {
		pa := uint64(i * geometry.CacheLineSize)
		ma, err := mapper.Decode(pa)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pa %#06x -> %v\n", pa, ma)
	}

	// 2. The chunk/jump structure: ascending addresses fill row groups in
	// 24 MiB chunks, alternating between two physical ranges.
	fmt.Println("\nrow groups along ascending physical addresses:")
	for _, pa := range []uint64{0, 24 << 20, uint64(g.SocketBytes() / 2), 768 << 20} {
		ma, err := mapper.Decode(pa)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pa %#12x -> row group %5d (subarray group %d)\n", pa, ma.Row, ma.Row/g.RowsPerSubarray)
	}

	// 3. Subarray groups as computed at boot (§5.3).
	layout, err := subarray.NewLayout(g, mapper)
	if err != nil {
		log.Fatal(err)
	}
	grp := layout.Group(0, 1)
	fmt.Printf("\nsubarray group (socket 0, index 1): rows [%d,%d], %d physical ranges, %.2f GiB\n",
		grp.FirstRow, grp.LastRow, len(grp.Ranges), float64(grp.Bytes())/float64(geometry.GiB))
	for i, r := range grp.Ranges {
		fmt.Printf("  range %d: %v (%d MiB)\n", i, r, r.Bytes()>>20)
	}

	// 4. DDR4 internal transformations (§6).
	im := addr.NewInternalMapper(g, addr.AllTransforms())
	evenRank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	oddRank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 0}
	fmt.Println("\nDDR4 internal row mapping of media row 0b0_0001_1000 (=24):")
	for _, tc := range []struct {
		label string
		bank  geometry.BankID
		side  addr.Side
	}{
		{"even rank, A side", evenRank, addr.SideA},
		{"even rank, B side (inverted)", evenRank, addr.SideB},
		{"odd rank,  A side (mirrored)", oddRank, addr.SideA},
		{"odd rank,  B side (both)", oddRank, addr.SideB},
	} {
		internal := im.InternalRow(tc.bank, 24, tc.side)
		fmt.Printf("  %-30s -> internal row %4d (same subarray: %v)\n",
			tc.label, internal, internal/g.RowsPerSubarray == 24/g.RowsPerSubarray)
	}

	// 5. Non-power-of-two subarray sizes force artificial groups (§6).
	ng := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 5120, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 640,
	}
	nm, err := addr.NewMapper(ng, addr.KindSkylake)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := subarray.NewLayout(ng, nm)
	if err != nil {
		log.Fatal(err)
	}
	guards := nl.BoundaryGuardRows(addr.AllTransforms())
	fmt.Printf("\n640-row subarrays: artificial=%v, managed size %d rows, %d boundary guard rows (%.2f%% of DRAM)\n",
		nl.Artificial(), nl.RowsPerGroup(), len(guards), 100*float64(len(guards))/float64(ng.RowsPerBank))
	fmt.Printf("  first guard rows: %v ...\n", guards[:8])
}
