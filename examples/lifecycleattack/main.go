// Lifecycle attack: an adversarial tenant hammers exactly while the
// hypervisor shuffles frame ownership — the migration pre-copy window, the
// balloon drain-back, the hotplug adoption gap, and the cross-host
// double-ownership window of a fleet move. The attacker first confirms its
// row-adjacency hypothesis from inside its own domain (DRAMDig-style), then
// runs every campaign; Siloz's subarray-group isolation plus
// scrub-before-free/scrub-before-map keeps every flip inside the attacker's
// own domain and every audit clean.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// The same two-socket lab box the migration example uses, with a
// deterministic-flip DRAM part so the hammering visibly bites.
func labConfig() core.Config {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 600
	p.HammerThreshold = 5000
	return core.Config{
		Geometry: geometry.Geometry{
			Sockets:         2,
			CoresPerSocket:  4,
			DIMMsPerSocket:  1,
			RanksPerDIMM:    2,
			BanksPerRank:    8,
			RowsPerBank:     2048,
			RowBytes:        8 * geometry.KiB,
			RowsPerSubarray: 512,
		},
		Profiles:      []dram.Profile{p},
		EPTProtection: ept.GuardRows,
	}
}

func main() {
	log.SetFlags(0)
	for i, name := range attack.Campaigns() {
		res, err := attack.RunCampaign(name, attack.CampaignConfig{
			Core:   labConfig(),
			Seed:   attack.CampaignSeed(17, i),
			Rounds: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s adjacency %d/%d confirmed; %d bursts, %d attacker flips, "+
			"%d cross-domain, %d denied, %d audits clean\n",
			name, res.AdjacencyConfirmed, res.AdjacencyProbed, res.HammerBursts,
			res.AttackerFlips, res.CrossDomainFlips, res.Denied, res.AuditsPassed)
		if res.CrossDomainFlips != 0 || res.WindowViolations != 0 ||
			res.ScrubLeaks != 0 || res.VictimCorruptions != 0 || res.AuditFailures != 0 {
			log.Fatalf("containment broken in campaign %s: %+v", name, res)
		}
	}
	fmt.Println("all four lifecycle windows held: every flip stayed in the attacker's domain")
}
