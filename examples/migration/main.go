// Migration: live defragmentation end to end. Siloz's exclusive subarray
// group reservations fragment a socket: here three tenants own every guest
// group on socket 0, so a fourth VM is refused even though the other socket
// sits idle. The migration planner picks a victim, the pre-copy engine
// moves it across sockets while its guest keeps writing, and the pending
// VM is admitted — with byte identity across the move and the isolation
// invariant audited after every round.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/migrate"
)

// A small two-socket box: 4 subarray groups of 64 MiB per socket, which
// Siloz carves into 1 host + 1 EPT + 3 guest nodes per socket.
func labConfig() core.Config {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return core.Config{
		Geometry: geometry.Geometry{
			Sockets:         2,
			CoresPerSocket:  4,
			DIMMsPerSocket:  1,
			RanksPerDIMM:    2,
			BanksPerRank:    8,
			RowsPerBank:     2048,
			RowBytes:        8 * geometry.KiB,
			RowsPerSubarray: 512,
		},
		Profiles:      []dram.Profile{p},
		EPTProtection: ept.GuardRows,
	}
}

func main() {
	log.SetFlags(0)
	hv, err := core.Boot(labConfig(), core.ModeSiloz)
	if err != nil {
		log.Fatal(err)
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}

	// Three tenants fill every guest group on socket 0.
	for _, name := range []string{"alice", "bob", "carol"} {
		if _, err := hv.CreateVM(proc, core.VMSpec{Name: name, Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
			log.Fatal(err)
		}
	}
	// Alice's guest has state worth preserving.
	alice, _ := hv.VM("alice")
	state := make([]byte, 2*geometry.PageSize2M)
	for i := range state {
		state[i] = byte(i*7) | 1
	}
	if err := alice.WriteGuest(0, state); err != nil {
		log.Fatal(err)
	}

	pending := core.VMSpec{Name: "dave", Socket: 0, MemoryBytes: 64 * geometry.MiB}
	if _, err := hv.CreateVM(proc, pending); err != nil {
		fmt.Printf("dave refused while socket 0 is full: %v\n", err)
	} else {
		log.Fatal("dave was admitted on a full socket — scenario broken")
	}

	// The engine migrates the planner's victim while its guest keeps
	// writing: every pre-copy round dirties one page, and the engine's
	// per-round audit proves no two tenants' domains ever overlap.
	eng := migrate.NewEngine(hv)
	eng.Opt = core.MigrateOptions{
		StopPages: 1,
		GuestStep: func(round int) error {
			for i := range state[:geometry.PageSize4K] {
				state[i] = byte(i*13+round) | 1
			}
			return alice.WriteGuest(0, state[:geometry.PageSize4K])
		},
		OnRound: func(r core.MigrateRound) {
			fmt.Printf("  round %d: copied %d pages (%d KiB), %d dirtied behind it\n",
				r.Round, r.PagesCopied, r.BytesCopied/geometry.KiB, r.DirtyAfter)
		},
	}
	vm, reps, err := eng.AdmitWithRebalance(context.Background(), proc, pending)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reps {
		fmt.Printf("moved %q from nodes %v to %v: %d rounds, %d pages copied, stop-and-copy %d pages\n",
			rep.VM, rep.SourceNodes, rep.DestNodes, len(rep.Rounds), rep.PagesCopied, rep.DowntimePages)
	}
	fmt.Printf("dave admitted on socket %d after rebalancing\n", vm.Spec().Socket)

	// Alice's memory — including the writes made mid-flight — is intact.
	got := make([]byte, len(state))
	if err := alice.ReadGuest(0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		log.Fatal("alice's memory diverged across the migration")
	}
	if err := migrate.AuditIsolation(hv); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=> guest bytes identical across the move; isolation invariant holds")
}
