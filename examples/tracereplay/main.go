// Tracereplay: records a workload's memory trace once and replays the
// *identical* access stream against the baseline hypervisor and Siloz —
// eliminating workload randomness from the comparison entirely. This is the
// cleanest form of the Figures 4-5 argument: same instructions, same
// accesses, different page placement, same performance.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

func runOn(mode core.Mode, tr workload.Trace) (memctrl.Result, error) {
	hv, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{dram.ProfileF()},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		return memctrl.Result{}, err
	}
	vm, err := hv.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "bench", Socket: 0, MemoryBytes: tr.Region})
	if err != nil {
		return memctrl.Result{}, err
	}
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: hv.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		return memctrl.Result{}, err
	}
	cache, err := memctrl.NewCache(32*geometry.MiB, 16)
	if err != nil {
		return memctrl.Result{}, err
	}
	return workload.RunOnVM(vm, ctrl, cache, tr, 0, 0)
}

func main() {
	log.SetFlags(0)

	// 1. Record redis running YCSB-A once.
	region := uint64(6 * geometry.GiB)
	tr := workload.Record(workload.YCSB{Letter: 'a'}, region, 60_000, 42)
	st := tr.Stats()
	fmt.Printf("recorded %s: %d accesses (%d writes, %d unique rows)\n",
		tr.Name(), st.Accesses, st.Writes, st.UniqueRows)

	// 2. The trace serializes for archival/replay elsewhere.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	loaded, err := workload.LoadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace serialized to %d bytes of JSON and reloaded\n", size)

	// 3. Replay the identical stream on both hypervisors.
	results := map[core.Mode]memctrl.Result{}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeSiloz} {
		res, err := runOn(mode, loaded)
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		results[mode] = res
		fmt.Printf("%-8s  %s\n", mode, res)
	}
	delta := 100 * (results[core.ModeSiloz].TotalNs/results[core.ModeBaseline].TotalNs - 1)
	fmt.Printf("\nidentical trace, different placement: Siloz %+.3f%% vs baseline\n", delta)
}
