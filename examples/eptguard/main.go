// EPTguard: demonstrates why extended page table integrity is load-bearing
// for DRAM isolation (§5.4), by attacking a VM's own EPTs under the three
// protection modes:
//
//   - no protection (baseline): a flipped EPT entry silently redirects the
//     guest to host physical memory it was never given — a full escape;
//   - secure EPT (TDX/SNP-style): the corruption is detected on walk and the
//     VM faults instead of escaping;
//   - guard rows (Siloz on legacy hardware): table pages live in a 32-row
//     guarded block, so the flips never happen at all.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// hammerProfile makes every row weak so the attack is deterministic.
func hammerProfile() dram.Profile {
	p := dram.ProfileF()
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 4000
	p.HammerThreshold = 8000
	return p
}

// attackEPT hammers the rows next to the VM's page-directory page, then
// re-walks every mapping and classifies the outcome.
func attackEPT(mode core.Mode, protection ept.IntegrityMode) (string, error) {
	hv, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{hammerProfile()},
		EPTProtection: protection,
	}, mode)
	if err != nil {
		return "", err
	}
	vm, err := hv.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "victim-of-self", Socket: 0, MemoryBytes: 3 * geometry.GiB})
	if err != nil {
		return "", err
	}
	before := map[uint64]uint64{}
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			return "", err
		}
		before[gpa] = hpa
	}

	// Hammer the rows *internally* adjacent to the first page-directory
	// page: like Blacksmith, the attacker accounts for the DIMM's row
	// scrambling/mirroring (§6) when picking aggressor media rows. Under
	// guard-row protection the nearest attacker-reachable rows are the
	// block boundary instead.
	mem := hv.Memory()
	pd := vm.Tables().Pages()[2]
	ma, err := mem.Mapper().Decode(pd)
	if err != nil {
		return "", err
	}
	im := hv.InternalMapperFor(ma.Bank.Socket, ma.Bank.DIMM)
	g := hv.Layout().Geometry()
	// The entry's half-row side depends on its column within the row.
	side := addr.SideA
	if ma.Col >= g.RowBytes/2 {
		side = addr.SideB
	}
	pdInternal := im.InternalRow(ma.Bank, ma.Row, side)
	var rows []int
	for _, internal := range []int{pdInternal - 1, pdInternal + 1} {
		if internal >= 0 && internal < g.RowsPerBank {
			rows = append(rows, im.MediaRow(ma.Bank, internal, side))
		}
	}
	if protection == ept.GuardRows {
		rows = []int{core.EPTBlockRowGroups, core.EPTBlockRowGroups + 1}
	}
	for _, row := range rows {
		if row < 0 {
			continue
		}
		pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			return "", err
		}
		if err := mem.ActivatePhys(pa, 40_000, 0); err != nil {
			return "", err
		}
	}

	redirected, faulted := 0, 0
	for gpa, want := range before {
		hpa, err := vm.TranslateUncached(gpa)
		switch {
		case errors.Is(err, ept.ErrIntegrity):
			faulted++
		case err != nil:
			faulted++
		case hpa != want:
			redirected++
		}
	}
	switch {
	case redirected > 0:
		return fmt.Sprintf("ESCAPE: %d mappings silently redirected outside the VM's allocation", redirected), nil
	case faulted > 0:
		return fmt.Sprintf("DETECTED: %d walks faulted with integrity errors (no escape, VM killed)", faulted), nil
	default:
		return "PREVENTED: all mappings intact — the guarded block absorbed the attack", nil
	}
}

func main() {
	log.SetFlags(0)
	cases := []struct {
		label      string
		mode       core.Mode
		protection ept.IntegrityMode
	}{
		{"baseline, unprotected EPTs", core.ModeBaseline, ept.NoProtection},
		{"siloz + secure EPT (TDX/SNP)", core.ModeSiloz, ept.SecureEPT},
		{"siloz + guard rows (§5.4)", core.ModeSiloz, ept.GuardRows},
	}
	for _, c := range cases {
		verdict, err := attackEPT(c.mode, c.protection)
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		fmt.Printf("%-30s -> %s\n", c.label, verdict)
	}
}
