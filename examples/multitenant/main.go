// Multitenant: the paper's motivating scenario end to end. Several tenants
// run cloud workloads (redis+YCSB, memcached) while a malicious tenant
// mounts a Rowhammer campaign. The same scenario is run twice — on the
// unmodified Linux/KVM baseline and on Siloz — showing that Siloz removes
// the inter-VM bit flips without measurably changing tenant performance.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

type outcome struct {
	tenantPerf map[string]float64 // ops/sec per tenant
	flipsIn    int
	flipsOut   int
}

func runScenario(mode core.Mode) (outcome, error) {
	out := outcome{tenantPerf: map[string]float64{}}
	hv, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{dram.ProfileD()},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		return out, err
	}
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}

	// Three tenants: two honest (redis, memcached), one malicious.
	tenants := map[string]workload.Workload{
		"redis-tenant":     workload.YCSB{Letter: 'b'},
		"memcached-tenant": workload.Memcached{},
	}
	vms := map[string]*core.VM{}
	for _, name := range []string{"mallory", "redis-tenant", "memcached-tenant"} {
		vm, err := hv.CreateVM(proc, core.VMSpec{
			Name: name, Socket: 0, MemoryBytes: 3 * geometry.GiB, VCPUs: 8,
		})
		if err != nil {
			return out, err
		}
		vms[name] = vm
	}

	// Honest tenants run their services.
	for name, w := range tenants {
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: hv.Memory().Mapper(), Timing: memctrl.DDR4_2933(),
			MLPWindow: 10, JitterSeed: 42,
		})
		if err != nil {
			return out, err
		}
		cache, err := memctrl.NewCache(32*geometry.MiB, 16)
		if err != nil {
			return out, err
		}
		res, err := workload.RunOnVM(vms[name], ctrl, cache, w, 40_000, 42)
		if err != nil {
			return out, err
		}
		out.tenantPerf[name] = res.OpsPerSec()
	}

	// Mallory attacks.
	fz := attack.NewFuzzer(attack.FuzzerConfig{
		Patterns: 30, WindowsPerPattern: 2,
		MaxActsPerWindow: 1_200_000, FillPattern: 0xAA, Seed: 99,
	})
	if _, err := fz.Run(&attack.VMTarget{VM: vms["mallory"]}); err != nil {
		return out, err
	}
	for _, f := range hv.Memory().Flips() {
		pa, err := hv.Memory().FlipPhys(f)
		if err != nil {
			return out, err
		}
		if vms["mallory"].OwnsHPA(pa) || vms["mallory"].InDomain(pa) {
			out.flipsIn++
		} else {
			out.flipsOut++
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	results := map[core.Mode]outcome{}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeSiloz} {
		res, err := runScenario(mode)
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		results[mode] = res
		fmt.Printf("%-8s  flips: %4d contained, %3d escaped  |  redis %.0f ops/s, memcached %.0f ops/s\n",
			mode, res.flipsIn, res.flipsOut,
			res.tenantPerf["redis-tenant"], res.tenantPerf["memcached-tenant"])
	}

	b, s := results[core.ModeBaseline], results[core.ModeSiloz]
	fmt.Println()
	if b.flipsOut > 0 && s.flipsOut == 0 {
		fmt.Println("=> baseline leaked inter-VM bit flips; Siloz contained every flip")
	}
	for name := range b.tenantPerf {
		delta := 100 * (s.tenantPerf[name]/b.tenantPerf[name] - 1)
		fmt.Printf("=> %s performance under Siloz: %+.2f%% vs baseline\n", name, delta)
	}
}
