// Quickstart: boot Siloz on a simulated cloud server, place two tenant VMs
// in private subarray groups, let one of them hammer as hard as it can, and
// verify that every resulting bit flip stayed inside the attacker's own
// DRAM isolation domain.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

func main() {
	log.SetFlags(0)

	// 1. Boot the hypervisor on the paper's evaluation server (Table 2):
	//    dual-socket Skylake, 192 banks/socket, 1024-row subarrays.
	hv, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{dram.ProfileA()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted siloz: %s\n", hv.Layout().Geometry())
	fmt.Printf("subarray groups: %d per socket, %.1f GiB each\n",
		hv.Layout().GroupsPerSocket(), float64(hv.Layout().GroupBytes())/float64(geometry.GiB))

	// 2. Create two tenants. Each gets exclusive guest-reserved logical
	//    NUMA nodes — whole subarray groups no other tenant can touch.
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	mallory, err := hv.CreateVM(proc, core.VMSpec{Name: "mallory", Socket: 0, MemoryBytes: 6 * geometry.GiB})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := hv.CreateVM(proc, core.VMSpec{Name: "alice", Socket: 0, MemoryBytes: 6 * geometry.GiB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mallory owns nodes %v; alice owns nodes %v\n", nodeIDs(mallory), nodeIDs(alice))

	// 3. Alice stores data; mallory runs a Blacksmith-class campaign.
	secret := []byte("alice's database page")
	if err := alice.WriteGuest(0, secret); err != nil {
		log.Fatal(err)
	}
	fz := attack.NewFuzzer(attack.DefaultFuzzerConfig())
	rep, err := fz.Run(&attack.VMTarget{VM: mallory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mallory's fuzzer: %d effective patterns, %d bit flips in her own memory\n",
		rep.EffectivePatterns, len(rep.Corruptions))

	// 4. Ground truth: where did the flips physically land?
	escaped := 0
	for _, f := range hv.Memory().Flips() {
		pa, err := hv.Memory().FlipPhys(f)
		if err != nil {
			log.Fatal(err)
		}
		if !mallory.InDomain(pa) {
			escaped++
		}
	}
	buf := make([]byte, len(secret))
	if err := alice.ReadGuest(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flips outside mallory's domain: %d\n", escaped)
	fmt.Printf("alice's data intact: %v\n", string(buf) == string(secret))
}

func nodeIDs(vm *core.VM) []int {
	ids := make([]int, 0, len(vm.Nodes()))
	for _, n := range vm.Nodes() {
		ids = append(ids, n.ID)
	}
	return ids
}
