// Package repro is a from-scratch Go reproduction of "Siloz: Leveraging
// DRAM Isolation Domains to Prevent Inter-VM Rowhammer" (SOSP 2023).
//
// The repository implements the paper's hypervisor (internal/core) together
// with every substrate it depends on — DRAM geometry and disturbance
// modelling, Skylake physical-to-media address translation, DDR4 internal
// row transformations, ECC, subarray groups, logical NUMA nodes, a buddy
// page allocator, extended page tables, a memory-controller timing model, a
// Blacksmith-style Rowhammer fuzzer, and the evaluation workloads — plus a
// harness (internal/experiments) regenerating every table and figure of the
// paper's evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
