package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/geometry"
)

// TestConcurrentServeResize races the serving loop against balloon-backed
// grow/shrink cycles driven from outside it (run under -race via `make
// race-quick`). The loop's request generator keeps addressing the boot-time
// region, so translation failures on ballooned-out pages are expected and
// surface as request errors; crashes, data races, or a wedged loop are not.
func TestConcurrentServeResize(t *testing.T) {
	h := bootHost(t, core.ModeSiloz)
	createTenantVM(t, h, "t0", 0)
	createTenantVM(t, h, "t1", 1)

	cfg := twoTenantConfig(h)
	cfg.DurationNs = 20e6
	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		rep, err := l.Run(context.Background())
		done <- outcome{rep, err}
	}()

	for i := 0; i < 8; i++ {
		target := uint64(32 * geometry.MiB)
		if i%2 == 1 {
			target = 64 * geometry.MiB
		}
		if _, err := h.ResizeVM("t0", target); err != nil {
			t.Errorf("resize %d -> %d MiB: %v", i, target>>20, err)
		}
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("serving loop died: %v", out.err)
	}
	if out.rep.Requests == 0 {
		t.Fatal("no requests served while racing resizes")
	}
	// t1 was never resized: its requests must all have succeeded.
	if tr := out.rep.Tenants[1]; tr.Errors != 0 {
		t.Fatalf("undisturbed tenant saw %d errors", tr.Errors)
	}
}

// TestServeFleetMoveChurn serves tenants across a two-host fleet and moves
// one cross-host mid-run: the window must carry the move probes and byte
// counts, the tenant must land on the destination host, and serving must
// continue there without errors.
func TestServeFleetMoveChurn(t *testing.T) {
	c, err := fleet.New(fleet.Config{
		Hosts: 2,
		Core:  serveCoreConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}
	for _, name := range []string{"t0", "t1"} {
		if _, err := c.Admit(ctx, proc, core.VMSpec{Name: name, Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
			t.Fatal(err)
		}
	}
	src, err := c.HostOf("t0")
	if err != nil {
		t.Fatal(err)
	}
	var dest string
	for _, h := range c.Hosts() {
		if h.Name() != src {
			dest = h.Name()
			break
		}
	}
	if dest == "" {
		t.Fatal("no destination host")
	}

	l, err := New(Config{
		Cluster: c,
		Tenants: []TenantSpec{
			{VM: "t0", Clients: 2, ThinkNs: 20000},
			{VM: "t1", Clients: 2, ThinkNs: 20000},
		},
		DurationNs: 8e6,
		Seed:       9,
		Churn: []Event{
			{AtNs: 3e6, Kind: EventMove, Tenant: "t0", DestHost: dest, DestSocket: 0, DirtyPages: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors across the move: %d", rep.Errors)
	}
	if len(rep.Windows) != 1 {
		t.Fatalf("want 1 window, got %d", len(rep.Windows))
	}
	w := rep.Windows[0]
	if w.Err != "" {
		t.Fatalf("move failed: %s", w.Err)
	}
	if w.BytesCopied == 0 || w.Hist.Count() == 0 {
		t.Fatalf("move window empty: %+v", w)
	}
	found := false
	for _, p := range w.Probes {
		if strings.Contains(p, "move.") && strings.Contains(p, "t0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("move window missing move probes: %v", w.Probes)
	}
	if got, err := c.HostOf("t0"); err != nil || got != dest {
		t.Fatalf("t0 on %q (err %v), want %q", got, err, dest)
	}
}
