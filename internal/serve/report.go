package serve

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// TenantReport is one tenant's serving outcome.
type TenantReport struct {
	// VM names the tenant.
	VM string
	// Requests counts every request served (including failed ones);
	// Errors counts requests that died mid-issue (e.g. translation into
	// a ballooned-out page); Violations counts successful requests
	// slower than the SLO.
	Requests, Errors, Violations int64
	// Hist is the latency histogram of the tenant's successful requests.
	Hist *stats.Histogram
}

// Report is the outcome of one serving run.
type Report struct {
	// DurationNs echoes the arrival horizon; LastCompletionNs is when
	// the final request finished (beyond the horizon under overload).
	DurationNs, LastCompletionNs float64
	// SLONs echoes the configured SLO (0 = none).
	SLONs float64
	// Requests, Errors, Violations aggregate across tenants.
	Requests, Errors, Violations int64
	// Total is the latency histogram over all tenants.
	Total *stats.Histogram
	// Tenants reports per-tenant outcomes in config order.
	Tenants []TenantReport
	// Windows are the churn-event windows in firing order.
	Windows []*Window
}

// report assembles the Report from the loop's state.
func (l *Loop) report() *Report {
	r := &Report{
		DurationNs:       l.cfg.DurationNs,
		LastCompletionNs: l.lastCompletion,
		SLONs:            l.cfg.SLONs,
		Total:            l.total,
		Windows:          l.windows,
	}
	for _, t := range l.tenants {
		r.Requests += t.requests
		r.Errors += t.errors
		r.Violations += t.violations
		r.Tenants = append(r.Tenants, TenantReport{
			VM:         t.spec.VM,
			Requests:   t.requests,
			Errors:     t.errors,
			Violations: t.violations,
			Hist:       t.hist,
		})
	}
	return r
}

// AchievedQPS is successful requests per second of serving time — the run
// horizon, stretched by any completions past it (overload shows up here as
// achieved < offered).
func (r *Report) AchievedQPS() float64 {
	horizon := r.DurationNs
	if r.LastCompletionNs > horizon {
		horizon = r.LastCompletionNs
	}
	if horizon <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors) / (horizon / 1e9)
}

// ViolationFrac is the fraction of successful requests that missed the SLO.
func (r *Report) ViolationFrac() float64 {
	ok := r.Requests - r.Errors
	if ok <= 0 {
		return 0
	}
	return float64(r.Violations) / float64(ok)
}

// WorstWindow returns the churn window with the highest p99 among those
// that served traffic; nil when no window did.
func (r *Report) WorstWindow() *Window {
	var worst *Window
	for _, w := range r.Windows {
		if w.Hist.Count() == 0 {
			continue
		}
		if worst == nil || w.Hist.P99() > worst.Hist.P99() {
			worst = w
		}
	}
	return worst
}

// String renders a compact human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d (errors %d)  achieved %.0f qps  p50 %.0fns  p99 %.0fns  p99.9 %.0fns",
		r.Requests, r.Errors, r.AchievedQPS(), r.Total.P50(), r.Total.P99(), r.Total.P999())
	if r.SLONs > 0 {
		fmt.Fprintf(&b, "  slo-miss %.3f%%", 100*r.ViolationFrac())
	}
	b.WriteByte('\n')
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-8s %7d reqs  p50 %8.0fns  p99 %8.0fns  max %8.0fns\n",
			t.VM, t.Requests, t.Hist.P50(), t.Hist.P99(), t.Hist.Max())
	}
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "  window %-24s", w.Label)
		if w.Err != "" {
			fmt.Fprintf(&b, " error: %s\n", w.Err)
			continue
		}
		fmt.Fprintf(&b, " %6.2fms copy  %6.2fms blackout  %5d reqs in window  p99 %8.0fns\n",
			(w.EndNs-w.StartNs)/1e6, w.BlackoutNs/1e6, w.Hist.Count(), w.Hist.P99())
	}
	return b.String()
}
