package serve

import (
	"context"
	"testing"

	"repro/internal/core"
)

// BenchmarkServeLoop measures the serving event loop end to end: two
// closed-loop tenants, 2 ms of virtual arrivals per iteration, fresh
// stations each time (the hypervisor and VMs are reused — request issue
// and heap management dominate, which is what the benchmark is for).
func BenchmarkServeLoop(b *testing.B) {
	h := bootHost(b, core.ModeSiloz)
	createTenantVM(b, h, "t0", 0)
	createTenantVM(b, h, "t1", 1)
	cfg := twoTenantConfig(h)
	cfg.DurationNs = 2e6
	ctx := context.Background()
	b.ResetTimer()
	var requests int64
	for i := 0; i < b.N; i++ {
		l, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := l.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		requests += rep.Requests
	}
	b.ReportMetric(float64(requests)/float64(b.N), "reqs/op")
}
