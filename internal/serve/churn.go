package serve

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/migrate"
	"repro/internal/numa"
	"repro/internal/stats"
)

// EventKind names a control-plane churn event.
type EventKind string

const (
	// EventMigrate live-migrates a tenant cross-socket on its host.
	EventMigrate EventKind = "migrate"
	// EventResize balloon/hotplug-resizes a tenant to TargetBytes.
	EventResize EventKind = "resize"
	// EventDefrag runs the Siloz defragmentation engine on a tenant's
	// host (errors on baseline hosts — the error is the result).
	EventDefrag EventKind = "defrag"
	// EventMove moves a tenant to another fleet host (Cluster configs).
	EventMove EventKind = "move"
)

// Event is one control-plane action replayed against a serving tenant at
// a virtual time. Events execute between requests, in AtNs order.
type Event struct {
	// AtNs is the virtual time the event fires.
	AtNs float64
	// Kind selects the mechanism.
	Kind EventKind
	// Tenant names the target VM (for EventDefrag, the VM whose host is
	// defragmented).
	Tenant string
	// TargetBytes is the resize target (EventResize).
	TargetBytes uint64
	// DestSocket is the destination socket (EventMigrate, EventMove).
	DestSocket int
	// DestHost is the destination host (EventMove).
	DestHost string
	// DirtyPages is how many 2 MiB pages the guest dirties per pre-copy
	// round while migrating (EventMigrate, EventMove).
	DirtyPages int
	// MaxMoves caps defragmentation moves (EventDefrag; default 4).
	MaxMoves int
}

// Window is the latency-attribution record of one churn event: the
// virtual-time interval the modeled copy occupied, the blackout within it,
// the mechanism probes that fired, and the latency histogram of every
// request served while the window was open.
type Window struct {
	// Label summarizes the event for reports.
	Label string
	// Kind echoes the event kind.
	Kind EventKind
	// StartNs and EndNs bound the modeled copy (EndNs = StartNs +
	// BytesCopied / copy bandwidth).
	StartNs, EndNs float64
	// BlackoutNs is the stop-and-copy (or pause-gated) portion at the
	// end of the window, during which the tenant starts no requests.
	BlackoutNs float64
	// BytesCopied and DowntimeBytes echo the mechanism's report.
	BytesCopied, DowntimeBytes uint64
	// Probes lists the lifecycle/move probe events that fired while the
	// event executed, e.g. "balloon.unmapped@t0".
	Probes []string
	// Err records a failed event (serving continues); empty on success.
	Err string
	// Hist holds the latency of requests served while the window was
	// open — the spike the event caused.
	Hist *stats.Histogram
}

// execute runs one churn event, records its window, and rebinds affected
// tenants. Event errors land in Window.Err; the serving loop never stops.
func (l *Loop) execute(ctx context.Context, ev Event) {
	w := &Window{
		Label:   fmt.Sprintf("%s %s@%.1fms", ev.Kind, ev.Tenant, ev.AtNs/1e6),
		Kind:    ev.Kind,
		StartNs: ev.AtNs,
		EndNs:   ev.AtNs,
		Hist:    stats.NewHistogram(),
	}
	l.windows = append(l.windows, w)
	l.setActiveWindow(w)
	defer l.setActiveWindow(nil)

	var err error
	switch ev.Kind {
	case EventMigrate:
		err = l.execMigrate(ctx, ev, w)
	case EventResize:
		err = l.execResize(ev, w)
	case EventDefrag:
		err = l.execDefrag(ctx, ev, w)
	case EventMove:
		err = l.execMove(ctx, ev, w)
	default:
		err = fmt.Errorf("serve: unknown churn event kind %q", ev.Kind)
	}
	if err != nil {
		w.Err = err.Error()
	}
}

// tenantByName finds a tenant by VM name; nil when the VM is not a tenant
// (defragmentation may move bystander VMs).
func (l *Loop) tenantByName(name string) *tenant {
	for _, t := range l.tenants {
		if t.spec.VM == name {
			return t
		}
	}
	return nil
}

// applyWindow sizes the window from the mechanism's byte counts at the
// modeled copy bandwidth and imposes the blackout on the paused tenants.
func (l *Loop) applyWindow(w *Window, bytesCopied, downtimeBytes uint64, paused ...*tenant) {
	perByte := 1e9 / (l.cfg.CopyGiBps * float64(geometry.GiB))
	copyNs := float64(bytesCopied) * perByte
	downNs := float64(downtimeBytes) * perByte
	w.EndNs = w.StartNs + copyNs
	w.BlackoutNs = downNs
	w.BytesCopied = bytesCopied
	w.DowntimeBytes = downtimeBytes
	for _, t := range paused {
		if t != nil && downNs > 0 {
			t.blackouts = append(t.blackouts, blackout{start: w.EndNs - downNs, end: w.EndNs})
		}
	}
}

// destNodesOnSocket picks unowned destination nodes with enough free
// capacity for a migration landing on the given socket (the serve-side
// counterpart of the migration experiment's destination picker).
func destNodesOnSocket(h *core.Hypervisor, socket int, vmBytes uint64) ([]int, error) {
	kind := numa.HostReserved
	if h.Mode() == core.ModeSiloz {
		kind = numa.GuestReserved
	}
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(socket, kind) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		ids = append(ids, n.ID)
		capacity += a.FreeBytes()
		if capacity >= vmBytes {
			return ids, nil
		}
	}
	return nil, fmt.Errorf("serve: no destination capacity for %d bytes on socket %d", vmBytes, socket)
}

// execMigrate live-migrates the tenant to DestSocket while its guest
// dirties DirtyPages pages per pre-copy round.
func (l *Loop) execMigrate(ctx context.Context, ev Event, w *Window) error {
	t := l.tenantByName(ev.Tenant)
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", ev.Tenant)
	}
	dests, err := destNodesOnSocket(t.hv, ev.DestSocket, t.vm.Spec().MemoryBytes)
	if err != nil {
		return err
	}
	pages := int(t.usable / geometry.PageSize2M)
	opt := core.MigrateOptions{MaxRounds: 16, StopPages: 8}
	if ev.DirtyPages > 0 && pages > 0 {
		vm, rng := t.vm, t.rng
		opt.GuestStep = func(round int) error {
			for i := 0; i < ev.DirtyPages; i++ {
				gpa := uint64(rng.Intn(pages)) * geometry.PageSize2M
				if err := vm.WriteGuest(gpa, []byte{byte(round + i), 1}); err != nil {
					return err
				}
			}
			return nil
		}
	}
	rep, err := t.hv.MigrateVM(ctx, ev.Tenant, dests, opt)
	if err != nil {
		return err
	}
	l.applyWindow(w, rep.BytesCopied, rep.DowntimeBytes, t)
	t.socket = ev.DestSocket
	return t.bind(l)
}

// execResize balloons or hotplugs the tenant to TargetBytes. The pages the
// plan moves are unmapped/scrubbed under the VM's pause gate, so the whole
// modeled copy counts as blackout.
func (l *Loop) execResize(ev Event, w *Window) error {
	t := l.tenantByName(ev.Tenant)
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", ev.Tenant)
	}
	plan, err := t.hv.PreviewResize(ev.Tenant, ev.TargetBytes)
	if err != nil {
		return err
	}
	rep, err := t.hv.ResizeVM(ev.Tenant, ev.TargetBytes)
	if err != nil {
		return err
	}
	moved := uint64(plan.Pages) * geometry.PageSize2M
	l.applyWindow(w, moved, moved, t)
	t.usable = rep.Target
	t.gen.Resize(t.usable)
	return t.bind(l)
}

// execDefrag runs the defragmentation engine on the named tenant's host.
// Every VM it moves that is also a serving tenant gets the blackout; the
// window aggregates all moves.
func (l *Loop) execDefrag(ctx context.Context, ev Event, w *Window) error {
	t := l.tenantByName(ev.Tenant)
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", ev.Tenant)
	}
	maxMoves := ev.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 4
	}
	eng := migrate.NewEngine(t.hv)
	reps, err := eng.Defragment(ctx, maxMoves)
	var bytesCopied, downtime uint64
	var paused []*tenant
	moved := map[*tenant]bool{}
	for _, rep := range reps {
		bytesCopied += rep.BytesCopied
		downtime += rep.DowntimeBytes
		if mt := l.tenantByName(rep.VM); mt != nil {
			paused = append(paused, mt)
			moved[mt] = true
		}
	}
	l.applyWindow(w, bytesCopied, downtime, paused...)
	// Moved tenants may have landed on another socket; recompute from
	// their destination nodes and rebind.
	for _, rep := range reps {
		mt := l.tenantByName(rep.VM)
		if mt == nil || len(rep.DestNodes) == 0 {
			continue
		}
		ids := append([]int(nil), rep.DestNodes...)
		sort.Ints(ids)
		if n, nerr := mt.hv.Topology().Node(ids[0]); nerr == nil {
			mt.socket = n.Socket
		}
	}
	for mt := range moved {
		if berr := mt.bind(l); berr != nil && err == nil {
			err = berr
		}
	}
	return err
}

// execMove moves the tenant to another fleet host.
func (l *Loop) execMove(ctx context.Context, ev Event, w *Window) error {
	if l.cfg.Cluster == nil {
		return fmt.Errorf("serve: move events need a Cluster config")
	}
	t := l.tenantByName(ev.Tenant)
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", ev.Tenant)
	}
	rep, err := l.cfg.Cluster.MoveVM(ctx, ev.Tenant, ev.DestHost, ev.DestSocket,
		ev.DirtyPages, l.cfg.Seed+int64(len(l.windows)))
	if err != nil {
		return err
	}
	l.applyWindow(w, rep.BytesCopied, rep.DowntimeBytes, t)
	t.socket = rep.DestSocket
	if err := t.rebindHost(l); err != nil {
		return err
	}
	return t.bind(l)
}
