package serve

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// serveGeometry is the two-socket lab box the lifecycle experiments use:
// per socket one host node, one EPT node, and three 64 MiB guest nodes.
func serveGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func serveProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return p
}

func serveCoreConfig() core.Config {
	return core.Config{
		Geometry:      serveGeometry(),
		Profiles:      []dram.Profile{serveProfile()},
		EPTProtection: ept.GuardRows,
	}
}

func bootHost(t testing.TB, mode core.Mode) *core.Hypervisor {
	t.Helper()
	h, err := core.Boot(serveCoreConfig(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func createTenantVM(t testing.TB, h *core.Hypervisor, name string, socket int) {
	t.Helper()
	_, err := h.CreateVM(core.Process{CGroup: "kvm", KVMPrivileged: true},
		core.VMSpec{Name: name, Socket: socket, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
}

// twoTenantConfig serves two closed-loop tenants, one per socket.
func twoTenantConfig(h *core.Hypervisor) Config {
	return Config{
		Hypervisor: h,
		Tenants: []TenantSpec{
			{VM: "t0", Clients: 4, ThinkNs: 20000},
			{VM: "t1", Clients: 4, ThinkNs: 20000},
		},
		DurationNs: 10e6, // 10 ms of arrivals
		SLONs:      50000,
		Seed:       42,
	}
}

func runServe(t *testing.T, cfg Config) *Report {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServeDeterminism: two runs of the same config on freshly booted
// hosts produce byte-identical reports — the property the serving-slo
// experiment's parallel-identity check rests on.
func TestServeDeterminism(t *testing.T) {
	var reports []*Report
	for i := 0; i < 2; i++ {
		h := bootHost(t, core.ModeSiloz)
		createTenantVM(t, h, "t0", 0)
		createTenantVM(t, h, "t1", 1)
		reports = append(reports, runServe(t, twoTenantConfig(h)))
	}
	if reports[0].String() != reports[1].String() {
		t.Fatalf("non-deterministic reports:\n%s\nvs\n%s", reports[0], reports[1])
	}
	if !reflect.DeepEqual(reports[0].Total, reports[1].Total) {
		t.Fatal("total histograms differ across identical runs")
	}
	r := reports[0]
	if r.Requests == 0 || r.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want traffic and no errors", r.Requests, r.Errors)
	}
	if len(r.Tenants) != 2 || r.Tenants[0].VM != "t0" {
		t.Fatalf("tenant reports out of order: %+v", r.Tenants)
	}
	if r.Total.P99() < r.Total.P50() {
		t.Fatalf("p99 %v < p50 %v", r.Total.P99(), r.Total.P50())
	}
}

// TestServeOpenLoopOverload: offered load beyond station capacity must
// show up as achieved QPS below offered and queueing delay in the tail —
// the open loop does not gate arrivals on completions.
func TestServeOpenLoopOverload(t *testing.T) {
	h := bootHost(t, core.ModeSiloz)
	createTenantVM(t, h, "t0", 0)
	offered := 4e6
	rep := runServe(t, Config{
		Hypervisor: h,
		Tenants:    []TenantSpec{{VM: "t0", TargetQPS: offered}},
		DurationNs: 4e6,
		Seed:       7,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
	if got := rep.AchievedQPS(); got >= 0.75*offered {
		t.Fatalf("achieved %.0f qps under overload, want well below offered %.0f", got, offered)
	}
	if rep.LastCompletionNs <= rep.DurationNs {
		t.Fatal("overload run should still be draining past the arrival horizon")
	}
	if rep.Total.P99() <= rep.Total.P50() {
		t.Fatalf("no queueing tail: p50=%v p99=%v", rep.Total.P50(), rep.Total.P99())
	}
}

// TestServeChurnWindows replays a resize, a cross-socket migration, and a
// defragmentation against serving tenants and checks the windows: byte
// counts and blackouts from the mechanism reports, lifecycle probes
// captured inside the right window, and the resize rebinding the tenant's
// request generator to the shrunken region (no translation errors after).
func TestServeChurnWindows(t *testing.T) {
	h := bootHost(t, core.ModeSiloz)
	createTenantVM(t, h, "t0", 0)
	createTenantVM(t, h, "t1", 1)
	cfg := twoTenantConfig(h)
	cfg.Churn = []Event{
		{AtNs: 2e6, Kind: EventResize, Tenant: "t0", TargetBytes: 32 * geometry.MiB},
		{AtNs: 5e6, Kind: EventMigrate, Tenant: "t0", DestSocket: 1, DirtyPages: 4},
		{AtNs: 8e6, Kind: EventDefrag, Tenant: "t1", MaxMoves: 2},
	}
	rep := runServe(t, cfg)
	if rep.Errors != 0 {
		t.Fatalf("errors after churn: %d (resize must rebind the generator)", rep.Errors)
	}
	if len(rep.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(rep.Windows))
	}
	resize, mig, defrag := rep.Windows[0], rep.Windows[1], rep.Windows[2]
	for _, w := range rep.Windows[:2] {
		if w.Err != "" {
			t.Fatalf("window %s failed: %s", w.Label, w.Err)
		}
		if w.BytesCopied == 0 || w.EndNs <= w.StartNs {
			t.Fatalf("window %s copied nothing: %+v", w.Label, w)
		}
		if w.Hist.Count() == 0 {
			t.Fatalf("window %s served no traffic", w.Label)
		}
	}
	if !hasProbe(resize.Probes, "balloon.unmapped@t0") {
		t.Fatalf("resize window missing balloon probe: %v", resize.Probes)
	}
	if mig.BlackoutNs <= 0 {
		t.Fatalf("migration with dirty pages had no stop-and-copy blackout: %+v", mig)
	}
	if defrag.Err != "" {
		t.Fatalf("defrag on a Siloz host failed: %s", defrag.Err)
	}
	if rep.WorstWindow() == nil {
		t.Fatal("no worst window despite traffic in windows")
	}
	// The migrated tenant must still be serving from its new socket.
	vm, ok := h.VM("t0")
	if !ok {
		t.Fatal("t0 gone after migration")
	}
	if got := vm.Spec().MemoryBytes; got != 64*geometry.MiB {
		t.Fatalf("t0 spec bytes = %d", got)
	}
}

// TestServeBaselineDefragIsResultNotFailure: on a baseline host the
// defragmentation engine refuses to run; the serving loop records the
// refusal on the window and keeps serving.
func TestServeBaselineDefragIsResultNotFailure(t *testing.T) {
	h := bootHost(t, core.ModeBaseline)
	createTenantVM(t, h, "t0", 0)
	cfg := Config{
		Hypervisor: h,
		Tenants:    []TenantSpec{{VM: "t0", Clients: 2, ThinkNs: 20000}},
		DurationNs: 4e6,
		Seed:       3,
		Churn:      []Event{{AtNs: 2e6, Kind: EventDefrag, Tenant: "t0"}},
	}
	rep := runServe(t, cfg)
	if len(rep.Windows) != 1 || rep.Windows[0].Err == "" {
		t.Fatalf("baseline defrag should record an error window, got %+v", rep.Windows)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("serving did not continue past the failed event: %+v", rep)
	}
}

// TestServeSLOViolationAccounting pins the violation counter: an SLO below
// the fastest observed request makes every request a violation, one above
// the slowest makes none — the counter compares exact latencies, not
// histogram buckets. Runs are deterministic, so the baseline's min/max
// carry over exactly to the SLO'd reruns.
func TestServeSLOViolationAccounting(t *testing.T) {
	run := func(slo float64) *Report {
		h := bootHost(t, core.ModeSiloz)
		createTenantVM(t, h, "t0", 0)
		return runServe(t, Config{
			Hypervisor: h,
			Tenants:    []TenantSpec{{VM: "t0", Clients: 4, ThinkNs: 20000}},
			DurationNs: 4e6,
			Seed:       11,
			SLONs:      slo,
		})
	}
	base := run(0)
	if base.Violations != 0 {
		t.Fatalf("violations counted with no SLO configured: %d", base.Violations)
	}
	if tight := run(base.Total.Min() / 2); tight.ViolationFrac() != 1 {
		t.Fatalf("SLO below the fastest request: violation frac %.3f, want 1",
			tight.ViolationFrac())
	}
	if loose := run(base.Total.Max() * 2); loose.Violations != 0 {
		t.Fatalf("SLO above the slowest request still violated %d times", loose.Violations)
	}
}

func hasProbe(probes []string, want string) bool {
	for _, p := range probes {
		if strings.HasPrefix(p, want) {
			return true
		}
	}
	return false
}
