// Package serve is the request-level serving layer over the workload and
// memory-controller stack: a closed- or open-loop multi-tenant client
// driving zipfian key-value requests through each tenant VM's
// translate→cache→DRAM path on a deterministic virtual clock, recording
// per-request service time into latency histograms. A churn driver replays
// control-plane events — live migration, balloon/hotplug resize, Siloz
// defragmentation, cross-host moves — against serving tenants mid-run and
// attributes the latency they cost to explicit event windows, which is how
// the paper's "overheads during VM lifecycle events" question becomes a
// p99-under-churn number instead of a bandwidth delta.
//
// Everything is single-threaded discrete-event simulation in virtual
// nanoseconds: identical configs produce byte-identical reports at any
// host parallelism, and downtime is modeled from copied bytes at a fixed
// bandwidth, never from wall clock.
package serve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/geometry"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TenantSpec describes one serving tenant: a VM (already created on the
// hypervisor or admitted to the cluster) and its client behaviour.
type TenantSpec struct {
	// VM names the tenant's VM.
	VM string
	// TargetQPS, when positive, runs the tenant open-loop: requests
	// arrive at this fixed rate regardless of completions, so a slow
	// server builds queueing delay (the regime where p99 lives). Zero
	// runs the tenant closed-loop on Clients concurrent clients.
	TargetQPS float64
	// Clients is the closed-loop concurrency (default 1).
	Clients int
	// ThinkNs is the closed-loop client's mean think gap between its
	// request completions and its next request (exponentially
	// distributed; 0 = back-to-back).
	ThinkNs float64
	// ValueBytes is the KV value size (default 1024).
	ValueBytes uint64
	// ReadFrac is the GET fraction (default 0.95).
	ReadFrac float64
	// ServerThinkNs is the modeled request-handling compute preceding
	// the first memory access of each request (default 250).
	ServerThinkNs float64
}

// Config configures a serving loop.
type Config struct {
	// Hypervisor hosts the tenants (single-host serving). Ignored when
	// Cluster is set.
	Hypervisor *core.Hypervisor
	// Cluster, when set, resolves tenants across fleet hosts and enables
	// EventMove churn.
	Cluster *fleet.Cluster

	// Tenants are the serving tenants; report order follows this order.
	Tenants []TenantSpec
	// DurationNs is the arrival horizon: no request arrives at or after
	// it (requests in flight still complete).
	DurationNs float64
	// SLONs is the per-request latency SLO; requests slower than this
	// count as violations. 0 disables violation counting.
	SLONs float64
	// Seed drives all client randomness (key popularity, think gaps).
	Seed int64
	// JitterSeed adds per-station DRAM service-time noise; 0 keeps the
	// timing model deterministic.
	JitterSeed int64

	// MLPWindow is the per-station memory-level parallelism (default 10).
	MLPWindow int
	// CacheBytes sizes the per-station LLC model (default 32 MiB;
	// negative disables the cache).
	CacheBytes int64
	// CacheWays is the LLC associativity (default 16).
	CacheWays int
	// Timing are the DRAM timing parameters (zero value = DDR4-2933).
	Timing memctrl.Timing
	// Mitigation, when set, builds the activation-plane defense instance
	// attached to each station's controller (PARA, Silver Bullet) —
	// injected neighbour refreshes occupy banks and surface as serving
	// latency. Called once per station, in deterministic creation order.
	Mitigation func(host string, socket int) mitigation.Mitigation

	// Churn are control-plane events to replay, in AtNs order.
	Churn []Event
	// CopyGiBps is the modeled copy bandwidth behind churn windows
	// (default 12 GiB/s).
	CopyGiBps float64
}

// stationKey identifies a shared serving station: one memory controller
// and LLC per (host, socket), shared by every tenant living there.
type stationKey struct {
	host   string
	socket int
}

// station is the shared memory path for one socket of one host.
type station struct {
	ctrl  *memctrl.Controller
	cache *memctrl.Cache
}

// blackout is a virtual-time interval during which a tenant cannot start
// requests (the stop-and-copy or pause-gated phase of a churn event).
type blackout struct{ start, end float64 }

// tenant is the runtime state of one serving tenant.
type tenant struct {
	spec   TenantSpec
	idx    int
	host   string // "" on single-host configs
	socket int
	hv     *core.Hypervisor
	vm     *core.VM
	st     *station
	gen    *workload.KVRequests
	run    *workload.Runner
	rng    *rand.Rand // think gaps and churn dirtying
	usable uint64     // current usable guest RAM (tracks resizes)

	blackouts []blackout

	hist           *stats.Histogram
	requests       int64
	errors         int64
	violations     int64
	lastCompletion float64
}

// thinkGap draws the tenant's next closed-loop think gap.
func (t *tenant) thinkGap() float64 {
	if t.spec.ThinkNs <= 0 {
		return 0
	}
	return -t.spec.ThinkNs * math.Log(1-t.rng.Float64())
}

// reqEntry is one scheduled request arrival.
type reqEntry struct {
	ready  float64 // arrival time (virtual ns)
	tenant int
	client int
	seq    int64
}

// reqHeap orders arrivals by (ready, tenant, client, seq) — a total order,
// so the event loop is deterministic even under arrival-time ties.
type reqHeap []reqEntry

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	if a.tenant != b.tenant {
		return a.tenant < b.tenant
	}
	if a.client != b.client {
		return a.client < b.client
	}
	return a.seq < b.seq
}
func (h reqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x interface{}) { *h = append(*h, x.(reqEntry)) }
func (h *reqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Loop is a configured serving loop. Build with New, run once with Run.
type Loop struct {
	cfg      Config
	tenants  []*tenant
	stations map[stationKey]*station
	nextJit  int64 // per-station jitter-seed counter
	events   []Event
	windows  []*Window
	queue    reqHeap
	seq      int64

	total          *stats.Histogram
	lastCompletion float64

	// probeMu guards activeWindow: lifecycle probes can fire from fleet
	// host-worker goroutines, and the concurrency property test resizes
	// VMs from outside the loop while it serves.
	probeMu      sync.Mutex
	activeWindow *Window // set while a churn event executes, for probes
}

// setActiveWindow points probes at the window of the executing event.
func (l *Loop) setActiveWindow(w *Window) {
	l.probeMu.Lock()
	l.activeWindow = w
	l.probeMu.Unlock()
}

// recordProbe appends a probe event to the active window, if any.
func (l *Loop) recordProbe(s string) {
	l.probeMu.Lock()
	if l.activeWindow != nil {
		l.activeWindow.Probes = append(l.activeWindow.Probes, s)
	}
	l.probeMu.Unlock()
}

// New validates the config, resolves every tenant to its VM, builds the
// per-socket stations, and schedules the initial arrivals.
func New(cfg Config) (*Loop, error) {
	if cfg.Cluster == nil && cfg.Hypervisor == nil {
		return nil, fmt.Errorf("serve: need a Hypervisor or a Cluster")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	if cfg.DurationNs <= 0 {
		return nil, fmt.Errorf("serve: DurationNs must be positive")
	}
	if cfg.MLPWindow == 0 {
		cfg.MLPWindow = 10
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 32 * geometry.MiB
	}
	if cfg.CacheWays == 0 {
		cfg.CacheWays = 16
	}
	if cfg.Timing == (memctrl.Timing{}) {
		cfg.Timing = memctrl.DDR4_2933()
	}
	if cfg.CopyGiBps <= 0 {
		cfg.CopyGiBps = 12
	}
	for i := 1; i < len(cfg.Churn); i++ {
		if cfg.Churn[i].AtNs < cfg.Churn[i-1].AtNs {
			return nil, fmt.Errorf("serve: churn events must be sorted by AtNs")
		}
	}

	l := &Loop{
		cfg:      cfg,
		stations: make(map[stationKey]*station),
		events:   append([]Event(nil), cfg.Churn...),
		total:    stats.NewHistogram(),
	}
	for i, spec := range cfg.Tenants {
		if spec.Clients <= 0 {
			spec.Clients = 1
		}
		if spec.ValueBytes == 0 {
			spec.ValueBytes = 1024
		}
		if spec.ReadFrac == 0 {
			spec.ReadFrac = 0.95
		}
		if spec.ServerThinkNs == 0 {
			spec.ServerThinkNs = 250
		}
		t := &tenant{
			spec: spec,
			idx:  i,
			hv:   cfg.Hypervisor,
			rng:  rand.New(rand.NewSource(cfg.Seed + 104729*int64(i) + 7)),
			hist: stats.NewHistogram(),
		}
		if err := t.rebindHost(l); err != nil {
			return nil, err
		}
		vm, ok := t.hv.VM(spec.VM)
		if !ok {
			return nil, fmt.Errorf("serve: VM %q not found on host %q", spec.VM, t.host)
		}
		t.socket = vm.Spec().Socket
		t.usable = vm.Spec().MemoryBytes
		t.gen = workload.NewKVRequests(t.usable, spec.ValueBytes,
			spec.ReadFrac, spec.ServerThinkNs, cfg.Seed+7919*int64(i)+1)
		if err := t.bind(l); err != nil {
			return nil, err
		}
		l.tenants = append(l.tenants, t)

		if spec.TargetQPS > 0 {
			// Open loop: stagger tenants across the first interval so
			// co-tenants do not arrive in lockstep.
			interval := 1e9 / spec.TargetQPS
			first := interval * float64(i) / float64(len(cfg.Tenants))
			l.push(first, i, 0)
		} else {
			for c := 0; c < spec.Clients; c++ {
				l.push(t.thinkGap(), i, c)
			}
		}
	}
	l.installProbes()
	return l, nil
}

// rebindHost resolves which hypervisor currently hosts the tenant's VM
// (after a cross-host move the answer changes).
func (t *tenant) rebindHost(l *Loop) error {
	if l.cfg.Cluster == nil {
		return nil
	}
	hostName, err := l.cfg.Cluster.HostOf(t.spec.VM)
	if err != nil {
		return fmt.Errorf("serve: tenant %q: %w", t.spec.VM, err)
	}
	h, err := l.cfg.Cluster.Host(hostName)
	if err != nil {
		return err
	}
	t.host, t.hv = hostName, h.Hypervisor()
	return nil
}

// bind (re)attaches the tenant to its VM, station, and runner — called at
// setup and again after every churn event that may have moved the VM or
// changed its size.
func (t *tenant) bind(l *Loop) error {
	vm, ok := t.hv.VM(t.spec.VM)
	if !ok {
		return fmt.Errorf("serve: VM %q not found on host %q", t.spec.VM, t.host)
	}
	t.vm = vm
	t.st = l.station(t.host, t.socket, t.hv)
	t.run = workload.NewRunner(vm, t.st.ctrl, t.st.cache)
	return nil
}

// station returns (creating on first use) the shared memory path for one
// socket of one host. Creation order is deterministic: tenants bind in
// config order and churn events execute in virtual-time order.
func (l *Loop) station(host string, socket int, hv *core.Hypervisor) *station {
	key := stationKey{host, socket}
	if st, ok := l.stations[key]; ok {
		return st
	}
	var jit int64
	if l.cfg.JitterSeed != 0 {
		l.nextJit++
		jit = l.cfg.JitterSeed + 7919*l.nextJit
	}
	var mit mitigation.Mitigation
	if l.cfg.Mitigation != nil {
		mit = l.cfg.Mitigation(host, socket)
	}
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper:     hv.Memory().Mapper(),
		Timing:     l.cfg.Timing,
		MLPWindow:  l.cfg.MLPWindow,
		HomeSocket: socket,
		JitterSeed: jit,
		Mitigation: mit,
	})
	if err != nil {
		// Config was validated at New; a mapper failure here is a bug.
		panic(fmt.Sprintf("serve: station controller: %v", err))
	}
	st := &station{ctrl: ctrl}
	if l.cfg.CacheBytes > 0 {
		cache, err := memctrl.NewCache(l.cfg.CacheBytes, l.cfg.CacheWays)
		if err != nil {
			panic(fmt.Sprintf("serve: station cache: %v", err))
		}
		st.cache = cache
	}
	l.stations[key] = st
	return st
}

// installProbes hooks lifecycle and move probes so churn windows record
// which mechanism stages fired inside them.
func (l *Loop) installProbes() {
	hook := func(event string, vm *core.VM) {
		l.recordProbe(fmt.Sprintf("%s@%s", event, vm.Spec().Name))
	}
	if l.cfg.Cluster != nil {
		for _, h := range l.cfg.Cluster.Hosts() {
			h.Hypervisor().SetLifecycleProbe(hook)
		}
		l.cfg.Cluster.SetMoveProbe(func(stage, vm string) {
			l.recordProbe(fmt.Sprintf("move.%s@%s", stage, vm))
		})
		return
	}
	l.cfg.Hypervisor.SetLifecycleProbe(hook)
}

// push schedules an arrival if it falls inside the horizon.
func (l *Loop) push(ready float64, tenantIdx, client int) {
	if ready >= l.cfg.DurationNs {
		return
	}
	l.seq++
	heap.Push(&l.queue, reqEntry{ready: ready, tenant: tenantIdx, client: client, seq: l.seq})
}

// Run drives the loop to completion and returns the report. ctx is
// checked between requests; churn-event errors do not abort the run (they
// are recorded on the event's window — a baseline host refusing
// defragmentation is a result, not a failure).
func (l *Loop) Run(ctx context.Context) (*Report, error) {
	processed := 0
	for l.queue.Len() > 0 {
		if processed%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := heap.Pop(&l.queue).(reqEntry)
		for len(l.events) > 0 && l.events[0].AtNs <= e.ready {
			ev := l.events[0]
			l.events = l.events[1:]
			l.execute(ctx, ev)
		}
		t := l.tenants[e.tenant]
		completion := l.serveOne(t, e.ready)
		processed++
		if t.spec.TargetQPS > 0 {
			l.push(e.ready+1e9/t.spec.TargetQPS, e.tenant, e.client)
		} else {
			l.push(completion+t.thinkGap(), e.tenant, e.client)
		}
	}
	// Events scheduled after the last arrival still run (their windows
	// report zero traffic).
	for _, ev := range l.events {
		l.execute(ctx, ev)
	}
	l.events = nil
	return l.report(), nil
}

// serveOne serves one request arriving at ready and returns its completion
// time. Latency is completion − arrival: station queueing (a shared
// controller still busy with an earlier tenant's request) and churn
// blackouts both land in it, which is the point.
func (l *Loop) serveOne(t *tenant, ready float64) float64 {
	start := ready
	for _, b := range t.blackouts {
		if start >= b.start && start < b.end {
			start = b.end
		}
	}
	t.st.ctrl.AdvanceTo(start)
	var issueErr error
	for _, a := range t.gen.Next() {
		if err := t.run.Issue(a); err != nil {
			issueErr = err
			break
		}
	}
	completion := t.run.FinishRequest()
	t.requests++
	if issueErr != nil {
		t.errors++
		return completion
	}
	lat := completion - ready
	t.hist.Record(lat)
	l.total.Record(lat)
	if l.cfg.SLONs > 0 && lat > l.cfg.SLONs {
		t.violations++
	}
	if completion > t.lastCompletion {
		t.lastCompletion = completion
	}
	if completion > l.lastCompletion {
		l.lastCompletion = completion
	}
	for _, w := range l.windows {
		if ready < w.EndNs && completion > w.StartNs {
			w.Hist.Record(lat)
		}
	}
	return completion
}
