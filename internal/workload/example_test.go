package workload_test

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/workload"
)

// ExampleRecord freezes a workload into a replayable trace.
func ExampleRecord() {
	tr := workload.Record(workload.MLC{Mode: "stream", Threads: 2}, geometry.GiB, 10, 1)
	s := tr.Stats()
	fmt.Printf("%s: %d accesses, %d writes\n", tr.Name(), s.Accesses, s.Writes)
	// Output:
	// trace:mlc-stream: 30 accesses, 10 writes
}
