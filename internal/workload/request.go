package workload

import (
	"math/rand"
)

// KVRequests generates zipfian key-value requests one at a time, for the
// request-serving loop (internal/serve): where Workload.Generate emits one
// long access stream, Next returns exactly one request's accesses — an
// index lookup (two dependent lines) followed by the value's lines — so
// the caller can put a latency boundary around each request. The key
// popularity, read/write mix, and layout match the YCSB/memcached model.
type KVRequests struct {
	l        kvLayout
	rng      *rand.Rand
	z        *rand.Zipf
	readFrac float64
	thinkNs  float64
	buf      []Access
}

// NewKVRequests builds a request generator over a guest-RAM region.
// readFrac is the GET fraction (the rest are SETs); thinkNs is the
// request-handling compute preceding the first access.
func NewKVRequests(region, valueSize uint64, readFrac, thinkNs float64, seed int64) *KVRequests {
	k := &KVRequests{
		rng:      rand.New(rand.NewSource(seed)),
		readFrac: readFrac,
		thinkNs:  thinkNs,
	}
	k.reshape(region, valueSize)
	return k
}

// reshape (re)builds the layout and key distribution for a region size.
func (k *KVRequests) reshape(region, valueSize uint64) {
	k.l = newKVLayout(region, valueSize)
	k.z = zipfKey(k.rng, k.l.keys)
}

// Resize rebinds the generator to a new usable region size — after a
// balloon shrink the tenant's store shrinks with it (the hypervisor takes
// the highest-GPA pages, so [0, region) stays valid). The rng stream
// continues where it was: resized runs remain deterministic.
func (k *KVRequests) Resize(region uint64) {
	k.reshape(region, k.l.valueSize)
}

// Next returns the next request's accesses. The returned slice is reused
// by the following Next call.
func (k *KVRequests) Next() []Access {
	key := k.z.Uint64()
	write := k.rng.Float64() >= k.readFrac
	k.buf = k.buf[:0]
	think := k.thinkNs
	for _, off := range k.l.indexProbe(key) {
		k.buf = append(k.buf, Access{Offset: off, ThinkNs: think})
		think = 0
	}
	base := k.l.valueBase(key)
	for off := uint64(0); off < k.l.valueSize; off += line {
		k.buf = append(k.buf, Access{Offset: (base + off) % k.l.region, Write: write})
	}
	return k.buf
}
