package workload

import (
	"math/rand"
)

// Terasort models Hadoop terasort's memory phases (§7.2): a sequential scan
// of the input, a shuffle writing records to hash partitions, and a merge
// reading partitions back sequentially while writing sorted output.
type Terasort struct{}

// Name implements Workload.
func (Terasort) Name() string { return "terasort" }

// Generate implements Workload. One "op" is one 100-byte record (rounded to
// two cache lines).
func (Terasort) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	rng := rand.New(rand.NewSource(seed))
	third := alignDown(region/3, region)
	if third == 0 {
		third = line
	}
	const recLines = 2
	for op := 0; op < ops; op++ {
		rec := uint64(op)
		// Phase weights by record index keep the stream deterministic
		// while mixing phases as map/shuffle/reduce overlap.
		switch op % 3 {
		case 0: // map: sequential input read
			base := (rec * recLines * line) % third
			for i := uint64(0); i < recLines; i++ {
				if !emit(Access{Offset: (base + i*line) % region, ThinkNs: 80}) {
					return
				}
			}
		case 1: // shuffle: write to a random partition
			part := uint64(rng.Intn(64))
			off := part * (third / 64)
			// Tiny regions collapse a partition below one line; skip the
			// intra-partition jitter draw rather than calling Intn(0).
			// Regions with room draw exactly as before, so streams over
			// normal regions are unchanged.
			if span := third / 64 / line; span > 0 {
				off += uint64(rng.Intn(int(span))) * line
			}
			base := third + alignDown(off, third)
			for i := uint64(0); i < recLines; i++ {
				if !emit(Access{Offset: (base + i*line) % region, Write: true, ThinkNs: 60}) {
					return
				}
			}
		default: // merge: sequential read + sequential output write
			base := third + (rec*recLines*line)%third
			if !emit(Access{Offset: base % region, ThinkNs: 60}) {
				return
			}
			out := 2*third + (rec*recLines*line)%third
			if !emit(Access{Offset: out % region, Write: true}) {
				return
			}
		}
	}
}

// Memcached models the memcached throughput benchmark (§7.3): a GET-heavy
// small-object cache with occasional SETs.
type Memcached struct{}

// Name implements Workload.
func (Memcached) Name() string { return "memcached" }

// Generate implements Workload.
func (Memcached) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	rng := rand.New(rand.NewSource(seed))
	l := newKVLayout(region, 256) // small cached objects
	z := zipfKey(rng, l.keys)
	for op := 0; op < ops; op++ {
		key := z.Uint64()
		write := rng.Intn(10) == 0 // 90% GET / 10% SET
		if !l.emitLookup(key, 120, emit) {
			return
		}
		if !l.emitValue(key, write, 0, emit) {
			return
		}
	}
}

// Sysbench models SysBench mySQL OLTP (§7.3): B-tree index descents
// (dependent pointer chases), row-page reads, and transactional writes with
// a sequential log.
type Sysbench struct{}

// Name implements Workload.
func (Sysbench) Name() string { return "mysql" }

// Generate implements Workload.
func (Sysbench) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	rng := rand.New(rand.NewSource(seed))
	logBase := alignDown(region-region/16, region)
	if logBase == 0 {
		// Tiny regions: alignDown uses logBase as a modulus, so it must
		// stay positive; the table area degenerates to the whole region.
		logBase = region
	}
	// logSpan is the whole-line capacity of the append area above logBase;
	// zero when the tail holds no complete line (the log then wraps onto
	// logBase itself instead of dividing by zero).
	logSpan := uint64(0)
	if region > logBase {
		logSpan = (region - logBase) / line * line
	}
	logOff := uint64(0)
	for op := 0; op < ops; op++ {
		// B-tree descent: 4 dependent random lines.
		h := uint64(rng.Int63())
		for d := 0; d < 4; d++ {
			h = h*0x9E3779B97F4A7C15 + 1
			if !emit(Access{Offset: alignDown(h, logBase), ThinkNs: 100}) {
				return
			}
		}
		// Row page: two adjacent lines.
		row := alignDown(h>>7, logBase)
		if !emit(Access{Offset: row}) {
			return
		}
		if !emit(Access{Offset: (row + line) % logBase}) {
			return
		}
		// 30% of transactions write the row and append to the log.
		if rng.Intn(10) < 3 {
			if !emit(Access{Offset: row, Write: true, ThinkNs: 50}) {
				return
			}
			app := logBase
			if logSpan > 0 {
				app += logOff % logSpan
			}
			if !emit(Access{Offset: app % region, Write: true}) {
				return
			}
			logOff += line
		}
	}
}
