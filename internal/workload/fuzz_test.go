package workload

import (
	"testing"
)

// Pinned regressions for the small-region generator panics: Terasort drew
// rng.Intn(third/64/line) — Intn(0) once region/3 < 64 lines — and
// Sysbench both passed logBase==0 into alignDown's modulus and divided by
// zero sizing the log-append span. These calls panic on the pre-fix code.

func TestTerasortSmallRegionRegression(t *testing.T) {
	// region/3 = 2730 < 64*line, so the shuffle phase's intra-partition
	// span is zero lines.
	Terasort{}.Generate(8192, 30, 1, func(a Access) bool {
		if a.Offset >= 8192 {
			t.Fatalf("offset %#x outside region", a.Offset)
		}
		return true
	})
}

func TestSysbenchSmallRegionRegression(t *testing.T) {
	// region=64: logBase aligns down to 0 — the pre-fix code passes it to
	// alignDown as a modulus on the very first descent access.
	Sysbench{}.Generate(64, 10, 1, func(a Access) bool {
		if a.Offset >= 64 {
			t.Fatalf("offset %#x outside region", a.Offset)
		}
		return true
	})
	// region=100: logBase=64 leaves 36 bytes of log tail — less than one
	// line, so the pre-fix append offset divides by zero on the first
	// transactional write.
	Sysbench{}.Generate(100, 200, 1, func(a Access) bool {
		if a.Offset >= 100 {
			t.Fatalf("offset %#x outside region", a.Offset)
		}
		return true
	})
}

func TestKVLayoutTinyRegionRegression(t *testing.T) {
	// region=7: indexEnd = region/8 = 0 was used as a modulus in
	// indexProbe before the clamp.
	for _, w := range []Workload{Memcached{}, YCSB{Letter: 'a'}} {
		w.Generate(7, 20, 1, func(a Access) bool {
			if a.Offset >= 7 {
				t.Fatalf("%s: offset %#x outside region", w.Name(), a.Offset)
			}
			return true
		})
	}
}

// FuzzWorkloadGenerators sweeps every registered workload over arbitrary
// (including tiny and unaligned) regions: no generator may panic, and
// every emitted offset must stay inside the region.
func FuzzWorkloadGenerators(f *testing.F) {
	f.Add(uint64(64), 50, int64(1))
	f.Add(uint64(100), 100, int64(2))
	f.Add(uint64(8192), 60, int64(3))
	f.Add(uint64(1), 10, int64(4))
	f.Add(uint64(7), 20, int64(5))
	f.Add(uint64(12287), 40, int64(6))
	f.Add(uint64(1<<20+13), 50, int64(7))
	f.Add(uint64(64<<20), 30, int64(8))
	f.Fuzz(func(t *testing.T, region uint64, ops int, seed int64) {
		region %= 1 << 28
		if region == 0 {
			region = 1
		}
		if ops < 0 {
			ops = -ops
		}
		ops %= 400
		for _, w := range All() {
			w.Generate(region, ops, seed, func(a Access) bool {
				if a.Offset >= region {
					t.Fatalf("%s: offset %#x outside region %#x", w.Name(), a.Offset, region)
				}
				// Regions sized in whole pages keep every offset
				// line-aligned; odd-sized regions may wrap unaligned.
				if region%4096 == 0 && a.Offset%line != 0 {
					t.Fatalf("%s: offset %#x not line aligned (region %#x)", w.Name(), a.Offset, region)
				}
				if a.ThinkNs < 0 {
					t.Fatalf("%s: negative think time", w.Name())
				}
				return true
			})
		}
	})
}

// TestGenerateEarlyStopDeterminism pins the contract the serving loop and
// every resumable consumer rely on: stopping emit early is invisible to
// the stream — the emitted prefix matches a full run access-for-access,
// and a fresh Generate after an early stop reproduces the full stream.
func TestGenerateEarlyStopDeterminism(t *testing.T) {
	const ops, seed = 300, 9
	for _, w := range All() {
		full := collectSeed(t, w, ops, seed)
		stop := len(full) / 2
		if stop == 0 {
			t.Fatalf("%s: empty stream", w.Name())
		}
		var prefix []Access
		w.Generate(testRegion, ops, seed, func(a Access) bool {
			prefix = append(prefix, a)
			return len(prefix) < stop
		})
		if len(prefix) != stop {
			t.Fatalf("%s: early stop emitted %d accesses, want %d", w.Name(), len(prefix), stop)
		}
		for i := range prefix {
			if prefix[i] != full[i] {
				t.Fatalf("%s: access %d differs under early stop: %+v vs %+v",
					w.Name(), i, prefix[i], full[i])
			}
		}
		rerun := collectSeed(t, w, ops, seed)
		if len(rerun) != len(full) {
			t.Fatalf("%s: rerun after early stop emitted %d accesses, want %d",
				w.Name(), len(rerun), len(full))
		}
		for i := range rerun {
			if rerun[i] != full[i] {
				t.Fatalf("%s: rerun access %d differs", w.Name(), i)
			}
		}
	}
}

// TestKVRequestsDeterministicAndBounded covers the request-granular
// generator the serving loop drives.
func TestKVRequestsDeterministicAndBounded(t *testing.T) {
	a := NewKVRequests(testRegion, 1024, 0.9, 150, 3)
	b := NewKVRequests(testRegion, 1024, 0.9, 150, 3)
	writes := 0
	for i := 0; i < 500; i++ {
		ra, rb := a.Next(), b.Next()
		if len(ra) != len(rb) {
			t.Fatalf("request %d: lengths differ", i)
		}
		if len(ra) < 3 {
			t.Fatalf("request %d: only %d accesses", i, len(ra))
		}
		if ra[0].ThinkNs != 150 {
			t.Fatalf("request %d: first access think %v, want 150", i, ra[0].ThinkNs)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("request %d access %d differs", i, j)
			}
			if ra[j].Offset >= testRegion {
				t.Fatalf("request %d: offset %#x outside region", i, ra[j].Offset)
			}
			if ra[j].Write {
				writes++
			}
		}
	}
	if writes == 0 {
		t.Error("0.9 read fraction produced no writes in 500 requests")
	}
}

func TestKVRequestsResizeRebinds(t *testing.T) {
	k := NewKVRequests(testRegion, 1024, 1, 0, 5)
	k.Next()
	small := uint64(testRegion / 4)
	k.Resize(small)
	for i := 0; i < 200; i++ {
		for _, a := range k.Next() {
			if a.Offset >= small {
				t.Fatalf("post-resize offset %#x outside %#x", a.Offset, small)
			}
		}
	}
	// Tiny regions must not panic (same clamp as the stream generators).
	k.Resize(7)
	for _, a := range k.Next() {
		if a.Offset >= 7 {
			t.Fatalf("tiny-region offset %#x", a.Offset)
		}
	}
}
