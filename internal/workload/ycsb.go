package workload

import (
	"fmt"
	"math/rand"
)

// YCSB models redis under the six YCSB core workloads A-F (§7.2) against a
// KV layout in guest RAM. Mixes follow the YCSB definitions:
//
//	A: 50% read / 50% update, zipfian
//	B: 95% read / 5% update, zipfian
//	C: 100% read, zipfian
//	D: 95% read / 5% insert, latest distribution
//	E: 95% scan / 5% insert, zipfian
//	F: 50% read / 50% read-modify-write, zipfian
type YCSB struct {
	// Letter selects the workload, 'a'-'f'.
	Letter byte
}

// Name returns e.g. "redis-a".
func (y YCSB) Name() string { return fmt.Sprintf("redis-%c", y.Letter) }

// valueBytes is the redis value size modelled (1 KiB objects).
const valueBytes = 1024

// thinkServer is per-op request handling compute (ns).
const thinkServer = 150

// Generate implements Workload.
func (y YCSB) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	rng := rand.New(rand.NewSource(seed))
	l := newKVLayout(region, valueBytes)
	z := zipfKey(rng, l.keys)
	inserted := uint64(1) // for D's "latest" distribution

	for op := 0; op < ops; op++ {
		switch y.Letter {
		case 'a':
			key := z.Uint64()
			if rng.Intn(2) == 0 {
				if !y.read(l, key, emit) {
					return
				}
			} else if !y.update(l, key, emit) {
				return
			}
		case 'b':
			key := z.Uint64()
			if rng.Intn(100) < 95 {
				if !y.read(l, key, emit) {
					return
				}
			} else if !y.update(l, key, emit) {
				return
			}
		case 'c':
			if !y.read(l, z.Uint64(), emit) {
				return
			}
		case 'd':
			if rng.Intn(100) < 95 {
				// Latest distribution: recent inserts are hot.
				back := z.Uint64()
				var key uint64
				if back < inserted {
					key = inserted - back
				}
				if !y.read(l, key, emit) {
					return
				}
			} else {
				inserted++
				if !y.update(l, inserted, emit) {
					return
				}
			}
		case 'e':
			if rng.Intn(100) < 95 {
				// Scan: up to 32 consecutive keys.
				start := z.Uint64()
				n := 1 + rng.Intn(32)
				for i := 0; i < n; i++ {
					if !y.read(l, start+uint64(i), emit) {
						return
					}
				}
			} else {
				inserted++
				if !y.update(l, inserted, emit) {
					return
				}
			}
		case 'f':
			key := z.Uint64()
			if !y.read(l, key, emit) {
				return
			}
			if rng.Intn(2) == 0 {
				if !y.update(l, key, emit) {
					return
				}
			}
		default:
			panic(fmt.Sprintf("workload: unknown YCSB letter %q", y.Letter))
		}
	}
}

func (y YCSB) read(l kvLayout, key uint64, emit func(Access) bool) bool {
	return l.emitLookup(key, thinkServer, emit) && l.emitValue(key, false, 0, emit)
}

func (y YCSB) update(l kvLayout, key uint64, emit func(Access) bool) bool {
	return l.emitLookup(key, thinkServer, emit) && l.emitValue(key, true, 0, emit)
}

// AllYCSB returns redis-a through redis-f (§7.2 runs all six core
// workloads).
func AllYCSB() []Workload {
	out := make([]Workload, 0, 6)
	for _, c := range []byte("abcdef") {
		out = append(out, YCSB{Letter: c})
	}
	return out
}
