package workload

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
)

func runnerGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func runnerProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return p
}

func bootVM(t *testing.T, mode core.Mode) (*core.Hypervisor, *core.VM) {
	t.Helper()
	h, err := core.Boot(core.Config{
		Geometry:      runnerGeometry(),
		Profiles:      []dram.Profile{runnerProfile()},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "bench", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	return h, vm
}

func TestRunOnVMProducesResults(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnVM(vm, ctrl, nil, YCSB{Letter: 'a'}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.TotalNs <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Writes == 0 {
		t.Error("YCSB-A run had no writes")
	}
}

func TestSilozAndBaselinePerformanceComparable(t *testing.T) {
	// The central performance claim (§7.2-7.3): Siloz placement changes
	// *where* pages live, not bank-level parallelism, so identical
	// workloads complete in nearly identical simulated time.
	times := make(map[core.Mode]float64)
	for _, mode := range []core.Mode{core.ModeSiloz, core.ModeBaseline} {
		h, vm := bootVM(t, mode)
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnVM(vm, ctrl, nil, MLC{Mode: "stream", Threads: 8}, 30000, 5)
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = res.TotalNs
	}
	rel := times[core.ModeSiloz]/times[core.ModeBaseline] - 1
	if rel > 0.02 || rel < -0.02 {
		t.Errorf("Siloz vs baseline differ by %.2f%%, want within ±2%%", 100*rel)
	}
}

func TestRunOnVMSurfacesTranslationErrors(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := Kernel{KernelName: "bad", StreamFrac: 1}
	// Destroy the VM to invalidate its tables, then run.
	if err := h.DestroyVM("bench"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnVM(vm, ctrl, nil, bad, 10, 1); err == nil {
		t.Error("expected an error running on a destroyed VM")
	}
}
