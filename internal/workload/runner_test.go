package workload

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/memctrl"
)

func runnerGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func runnerProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return p
}

func bootVM(t *testing.T, mode core.Mode) (*core.Hypervisor, *core.VM) {
	t.Helper()
	h, err := core.Boot(core.Config{
		Geometry:      runnerGeometry(),
		Profiles:      []dram.Profile{runnerProfile()},
		EPTProtection: ept.GuardRows,
	}, mode)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "bench", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	return h, vm
}

func TestRunOnVMProducesResults(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnVM(vm, ctrl, nil, YCSB{Letter: 'a'}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.TotalNs <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Writes == 0 {
		t.Error("YCSB-A run had no writes")
	}
}

func TestSilozAndBaselinePerformanceComparable(t *testing.T) {
	// The central performance claim (§7.2-7.3): Siloz placement changes
	// *where* pages live, not bank-level parallelism, so identical
	// workloads complete in nearly identical simulated time.
	times := make(map[core.Mode]float64)
	for _, mode := range []core.Mode{core.ModeSiloz, core.ModeBaseline} {
		h, vm := bootVM(t, mode)
		ctrl, err := memctrl.New(memctrl.Config{
			Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnVM(vm, ctrl, nil, MLC{Mode: "stream", Threads: 8}, 30000, 5)
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = res.TotalNs
	}
	rel := times[core.ModeSiloz]/times[core.ModeBaseline] - 1
	if rel > 0.02 || rel < -0.02 {
		t.Errorf("Siloz vs baseline differ by %.2f%%, want within ±2%%", 100*rel)
	}
}

// scriptWorkload replays a fixed access list, optionally running a hook
// before each access — the instrument for hand-computed timing tests and
// for injecting failures mid-stream.
type scriptWorkload struct {
	accs []Access
	hook func(i int)
}

func (scriptWorkload) Name() string { return "script" }

func (s scriptWorkload) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	for i, a := range s.accs {
		if s.hook != nil {
			s.hook(i)
		}
		if !emit(a) {
			return
		}
	}
}

// TestRunnerThinkAccountingPinned drives the Runner over a hand-computed
// stream and pins request completion times against the timing model
// applied by hand: DDR4-2933 with zero jitter, a first activation pushed
// behind the initial TRFC refresh, cache hits folding their latency into
// the request's own clock, and an all-hit tail never outrunning the last
// DRAM completion.
func TestRunnerThinkAccountingPinned(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	tm := memctrl.DDR4_2933()
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: tm, MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := memctrl.NewCache(geometry.MiB, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(vm, ctrl, cache)
	missLat := tm.TRP + tm.TRCD + tm.TCL + tm.TBurst
	approx := func(name string, got, want float64) {
		t.Helper()
		if d := got - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}

	// Request 1: one DRAM miss (think 100) then a cache hit (think 400).
	// The miss issues at t=100 but its activation waits out the initial
	// refresh (TRFC); the trailing hit's 400+HitNs belongs to *this*
	// request, so completion is clock-bound at 100+400+HitNs.
	if err := r.Issue(Access{Offset: 0, ThinkNs: 100}); err != nil {
		t.Fatal(err)
	}
	if err := r.Issue(Access{Offset: 0, ThinkNs: 400}); err != nil {
		t.Fatal(err)
	}
	done1 := r.FinishRequest()
	approx("request 1 completion", done1, 100+400+cache.HitNs)
	approx("TotalNs after request 1", ctrl.Result().TotalNs, done1)

	// Request 2: a miss on a fresh line (think 30) then a hit (think 5).
	// The DRAM access issues at done1+30 with no timing constraint
	// binding, so it completes a full miss latency later; the small
	// trailing hit advances the clock only to done1+30+5+HitNs, which
	// must NOT outrun the DRAM completion.
	if err := r.Issue(Access{Offset: line, ThinkNs: 30}); err != nil {
		t.Fatal(err)
	}
	if err := r.Issue(Access{Offset: 0, ThinkNs: 5}); err != nil {
		t.Fatal(err)
	}
	done2 := r.FinishRequest()
	approx("request 2 completion", done2, done1+30+missLat)
	if got := ctrl.Result().Accesses; got != 2 {
		t.Fatalf("DRAM accesses = %d, want 2 (two hits served by cache)", got)
	}
}

// TestRunOnVMErrorPathSettlesThink pins the error-path fix: when the
// stream dies mid-run, the accesses already issued — including trailing
// cache-hit think time — must still be visible in the returned partial
// result. The pre-fix code returned a zero Result and dropped the pending
// think entirely.
func TestRunOnVMErrorPathSettlesThink(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := memctrl.NewCache(geometry.MiB, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := scriptWorkload{
		accs: []Access{
			{Offset: 0, ThinkNs: 100}, // DRAM miss
			{Offset: 0, ThinkNs: 400}, // cache hit: pending think 400+HitNs
			{Offset: 0, ThinkNs: 1},   // never issued: VM destroyed first
		},
		hook: func(i int) {
			if i == 2 {
				if err := h.DestroyVM("bench"); err != nil {
					t.Fatal(err)
				}
			}
		},
	}
	res, err := RunOnVM(vm, ctrl, cache, w, 1, 1)
	if err == nil {
		t.Fatal("expected a translation error from the destroyed VM")
	}
	if res.Accesses != 1 {
		t.Fatalf("partial result has %d accesses, want 1", res.Accesses)
	}
	want := 100 + 400 + cache.HitNs
	if res.TotalNs < want-1e-9 {
		t.Fatalf("TotalNs = %v: trailing pending think dropped on the error path (want >= %v)",
			res.TotalNs, want)
	}
}

func TestRunOnVMSurfacesTranslationErrors(t *testing.T) {
	h, vm := bootVM(t, core.ModeSiloz)
	ctrl, err := memctrl.New(memctrl.Config{
		Mapper: h.Memory().Mapper(), Timing: memctrl.DDR4_2933(), MLPWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := Kernel{KernelName: "bad", StreamFrac: 1}
	// Destroy the VM to invalidate its tables, then run.
	if err := h.DestroyVM("bench"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnVM(vm, ctrl, nil, bad, 10, 1); err == nil {
		t.Error("expected an error running on a destroyed VM")
	}
}
