package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a recorded access stream: a workload frozen into a replayable,
// serializable artifact. Traces decouple workload generation from
// measurement — the same trace can be replayed against different hypervisor
// placements, and regressions can be debugged against a fixed input.
type Trace struct {
	// Source names the workload the trace came from.
	Source string `json:"source"`
	// Region is the RAM size the trace was generated for; replay against
	// a smaller region wraps offsets.
	Region uint64 `json:"region"`
	// Seed and Ops record the generation parameters.
	Seed int64 `json:"seed"`
	Ops  int   `json:"ops"`
	// Accesses is the stream itself.
	Accesses []Access `json:"accesses"`
}

// Record materializes a workload into a trace.
func Record(w Workload, region uint64, ops int, seed int64) Trace {
	tr := Trace{Source: w.Name(), Region: region, Seed: seed, Ops: ops}
	w.Generate(region, ops, seed, func(a Access) bool {
		tr.Accesses = append(tr.Accesses, a)
		return true
	})
	return tr
}

// Name implements Workload.
func (t Trace) Name() string { return "trace:" + t.Source }

// Generate implements Workload by replaying the recorded stream. The ops
// and seed arguments are ignored — a trace is already fixed; offsets wrap
// into the replay region.
func (t Trace) Generate(region uint64, _ int, _ int64, emit func(Access) bool) {
	for _, a := range t.Accesses {
		a.Offset = alignDown(a.Offset, region)
		if !emit(a) {
			return
		}
	}
}

// Save writes the trace as JSON.
func (t Trace) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(t)
}

// LoadTrace reads a trace written by Save.
func LoadTrace(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return t, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if t.Region == 0 {
		return t, fmt.Errorf("workload: trace has zero region")
	}
	return t, nil
}

// Stats summarizes a trace for reporting.
type TraceStats struct {
	Accesses   int
	Writes     int
	UniqueRows int // distinct 8 KiB-granular offsets touched
	ThinkNs    float64
}

// Stats computes summary statistics.
func (t Trace) Stats() TraceStats {
	s := TraceStats{Accesses: len(t.Accesses)}
	rows := make(map[uint64]bool)
	for _, a := range t.Accesses {
		if a.Write {
			s.Writes++
		}
		rows[a.Offset>>13] = true
		s.ThinkNs += a.ThinkNs
	}
	s.UniqueRows = len(rows)
	return s
}
