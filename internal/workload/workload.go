// Package workload models the memory behaviour of the paper's evaluation
// workloads (§7): redis+YCSB A-F, Hadoop terasort, SPEC CPU 2017, PARSEC
// 3.0, memcached, SysBench mySQL, and Intel MLC. Each workload emits a
// deterministic, seeded stream of guest-RAM accesses (post-cache memory
// references) that the memctrl model turns into execution time and
// throughput.
package workload

import (
	"math/rand"

	"repro/internal/geometry"
)

// Access is one memory reference within a VM's RAM.
type Access struct {
	// Offset is the byte offset into guest RAM (cache-line granular).
	Offset uint64
	// Write marks stores.
	Write bool
	// ThinkNs is compute time preceding the access.
	ThinkNs float64
}

// Workload deterministically generates an access stream.
type Workload interface {
	// Name identifies the workload in reports (e.g. "redis-a").
	Name() string
	// Generate emits ops logical operations' worth of accesses over a
	// RAM region of the given size. emit returns false to stop early.
	Generate(region uint64, ops int, seed int64, emit func(Access) bool)
}

const line = geometry.CacheLineSize

// All returns one instance of every registered workload: YCSB A-F, the
// batch workloads (terasort, memcached, mysql), the SPEC and PARSEC suite
// kernels, and the MLC bandwidth modes. It is the sweep set for fuzzing
// and determinism tests — a workload added here is automatically covered.
func All() []Workload {
	ws := AllYCSB()
	ws = append(ws, Terasort{}, Memcached{}, Sysbench{})
	ws = append(ws, SPECSuite()...)
	ws = append(ws, PARSECSuite()...)
	ws = append(ws, AllMLC()...)
	return ws
}

// alignDown clamps an offset to a cache line inside the region.
func alignDown(off, region uint64) uint64 {
	off %= region
	return off &^ uint64(line-1)
}

// zipfKey builds the skewed key popularity distribution YCSB uses.
func zipfKey(rng *rand.Rand, keys uint64) *rand.Zipf {
	if keys < 2 {
		keys = 2
	}
	return rand.NewZipf(rng, 1.1, 1, keys-1)
}

// kvLayout models a redis/memcached-style store in guest RAM: a hash index
// occupying the first eighth of the region and values in the rest.
type kvLayout struct {
	region    uint64
	indexEnd  uint64
	valueSize uint64
	keys      uint64
}

func newKVLayout(region, valueSize uint64) kvLayout {
	l := kvLayout{region: region, indexEnd: region / 8, valueSize: valueSize}
	if l.indexEnd == 0 {
		// Tiny regions: indexEnd is a modulus in indexProbe, so it must
		// stay positive; index and values share the whole region.
		l.indexEnd = region
	}
	l.keys = (region - l.indexEnd) / valueSize
	if l.keys < 2 {
		l.keys = 2
	}
	return l
}

// indexProbe returns the index cache lines touched to look up a key
// (bucket head plus one chain step).
func (l kvLayout) indexProbe(key uint64) [2]uint64 {
	h := key * 0x9E3779B97F4A7C15
	b0 := alignDown(h%l.indexEnd, l.indexEnd)
	b1 := alignDown((h>>17)%l.indexEnd, l.indexEnd)
	return [2]uint64{b0, b1}
}

// valueBase returns the first byte of a key's value blob.
func (l kvLayout) valueBase(key uint64) uint64 {
	return l.indexEnd + (key%l.keys)*l.valueSize
}

// emitValue touches the value's lines, reading or writing.
func (l kvLayout) emitValue(key uint64, write bool, think float64, emit func(Access) bool) bool {
	base := l.valueBase(key)
	for off := uint64(0); off < l.valueSize; off += line {
		if !emit(Access{Offset: (base + off) % l.region, Write: write, ThinkNs: think}) {
			return false
		}
		think = 0
	}
	return true
}

// emitLookup touches the index lines for a key.
func (l kvLayout) emitLookup(key uint64, think float64, emit func(Access) bool) bool {
	for _, off := range l.indexProbe(key) {
		if !emit(Access{Offset: off, ThinkNs: think}) {
			return false
		}
		think = 0
	}
	return true
}
