package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordAndReplayIdentical(t *testing.T) {
	w := YCSB{Letter: 'a'}
	tr := Record(w, testRegion, 500, 7)
	if len(tr.Accesses) == 0 {
		t.Fatal("empty trace")
	}
	if tr.Name() != "trace:redis-a" {
		t.Errorf("Name = %q", tr.Name())
	}
	// Replay emits exactly the recorded stream.
	var replayed []Access
	tr.Generate(testRegion, 0, 0, func(a Access) bool {
		replayed = append(replayed, a)
		return true
	})
	if len(replayed) != len(tr.Accesses) {
		t.Fatalf("replay length %d, want %d", len(replayed), len(tr.Accesses))
	}
	for i := range replayed {
		if replayed[i] != tr.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr := Record(Memcached{}, testRegion, 200, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != tr.Source || got.Region != tr.Region || len(got.Accesses) != len(tr.Accesses) {
		t.Fatalf("reload mismatch: %+v", got.Stats())
	}
	if _, err := LoadTrace(strings.NewReader("{bogus")); err == nil {
		t.Error("corrupt trace accepted")
	}
	if _, err := LoadTrace(strings.NewReader("{}")); err == nil {
		t.Error("zero-region trace accepted")
	}
}

func TestTraceReplayWrapsIntoSmallerRegion(t *testing.T) {
	tr := Record(MLC{Mode: "reads", Threads: 1}, testRegion, 300, 1)
	small := uint64(1 << 20)
	tr.Generate(small, 0, 0, func(a Access) bool {
		if a.Offset >= small {
			t.Fatalf("offset %#x outside replay region", a.Offset)
		}
		return true
	})
}

func TestTraceStats(t *testing.T) {
	tr := Record(YCSB{Letter: 'a'}, testRegion, 400, 5)
	s := tr.Stats()
	if s.Accesses != len(tr.Accesses) || s.Writes == 0 || s.UniqueRows == 0 || s.ThinkNs <= 0 {
		t.Errorf("stats implausible: %+v", s)
	}
}

func TestTraceStopPropagates(t *testing.T) {
	tr := Record(Terasort{}, testRegion, 100, 2)
	n := 0
	tr.Generate(testRegion, 0, 0, func(Access) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("emitted %d after stop", n)
	}
}
