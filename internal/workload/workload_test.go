package workload

import (
	"testing"

	"repro/internal/geometry"
)

const testRegion = 64 * geometry.MiB

// collect gathers up to n accesses from a workload.
func collect(t *testing.T, w Workload, ops int) []Access {
	t.Helper()
	var out []Access
	w.Generate(testRegion, ops, 42, func(a Access) bool {
		out = append(out, a)
		return true
	})
	if len(out) == 0 {
		t.Fatalf("%s produced no accesses", w.Name())
	}
	return out
}

// allWorkloads returns one of everything (the package registry).
func allWorkloads() []Workload { return All() }

func TestAllWorkloadsEmitValidAccesses(t *testing.T) {
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			for _, a := range collect(t, w, 500) {
				if a.Offset >= testRegion {
					t.Fatalf("offset %#x outside region", a.Offset)
				}
				if a.Offset%geometry.CacheLineSize != 0 {
					t.Fatalf("offset %#x not line aligned", a.Offset)
				}
				if a.ThinkNs < 0 {
					t.Fatalf("negative think time")
				}
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, w := range allWorkloads() {
		a := collectSeed(t, w, 200, 7)
		b := collectSeed(t, w, 200, 7)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", w.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs", w.Name(), i)
			}
		}
	}
}

func collectSeed(t *testing.T, w Workload, ops int, seed int64) []Access {
	t.Helper()
	var out []Access
	w.Generate(testRegion, ops, seed, func(a Access) bool {
		out = append(out, a)
		return true
	})
	return out
}

func TestSeedChangesStream(t *testing.T) {
	a := collectSeed(t, YCSB{Letter: 'a'}, 200, 1)
	b := collectSeed(t, YCSB{Letter: 'a'}, 200, 2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical YCSB streams")
	}
}

func TestEmitStopPropagates(t *testing.T) {
	for _, w := range allWorkloads() {
		n := 0
		w.Generate(testRegion, 1000, 1, func(Access) bool {
			n++
			return n < 10
		})
		if n != 10 {
			t.Errorf("%s: emitted %d accesses after stop at 10", w.Name(), n)
		}
	}
}

func TestYCSBMixes(t *testing.T) {
	frac := func(letter byte) float64 {
		accs := collect(t, YCSB{Letter: letter}, 3000)
		writes := 0
		for _, a := range accs {
			if a.Write {
				writes++
			}
		}
		return float64(writes) / float64(len(accs))
	}
	// C is read-only.
	if f := frac('c'); f != 0 {
		t.Errorf("YCSB-C write fraction %.3f, want 0", f)
	}
	// A writes roughly half its value traffic; B only ~5%.
	fa, fb := frac('a'), frac('b')
	if fa <= fb {
		t.Errorf("YCSB-A writes (%.3f) should exceed YCSB-B writes (%.3f)", fa, fb)
	}
	if fb > 0.15 {
		t.Errorf("YCSB-B write fraction %.3f too high", fb)
	}
}

func TestYCSBZipfianSkew(t *testing.T) {
	// The hottest value must absorb far more than 1/keys of accesses.
	accs := collect(t, YCSB{Letter: 'c'}, 5000)
	counts := make(map[uint64]int)
	for _, a := range accs {
		counts[a.Offset] += 1
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount)/float64(len(accs)) < 0.01 {
		t.Error("no hot line; zipfian skew missing")
	}
}

func TestYCSBUnknownLetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown letter did not panic")
		}
	}()
	YCSB{Letter: 'z'}.Generate(testRegion, 1, 1, func(Access) bool { return true })
}

func TestMLCRatios(t *testing.T) {
	ratio := func(mode string) float64 {
		accs := collect(t, MLC{Mode: mode, Threads: 4}, 4000)
		reads, writes := 0, 0
		for _, a := range accs {
			if a.Write {
				writes++
			} else {
				reads++
			}
		}
		if writes == 0 {
			return -1
		}
		return float64(reads) / float64(writes)
	}
	if r := ratio("reads"); r != -1 {
		t.Errorf("mlc-reads has writes (r=%v)", r)
	}
	r31, r21, r11 := ratio("3:1"), ratio("2:1"), ratio("1:1")
	if !(r31 > r21 && r21 > r11) {
		t.Errorf("MLC ratios not ordered: 3:1=%.2f 2:1=%.2f 1:1=%.2f", r31, r21, r11)
	}
	if r11 < 0.5 || r11 > 2 {
		t.Errorf("mlc-1:1 ratio %.2f far from 1", r11)
	}
	// Stream triad: 2 reads per write.
	if rs := ratio("stream"); rs < 1.8 || rs > 2.2 {
		t.Errorf("mlc-stream ratio %.2f, want ~2", rs)
	}
}

func TestMLCUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mode did not panic")
		}
	}()
	MLC{Mode: "bogus"}.Generate(testRegion, 1, 1, func(Access) bool { return true })
}

func TestMLCStreamIsSequentialPerArray(t *testing.T) {
	accs := collectSeed(t, MLC{Mode: "reads", Threads: 1}, 100, 1)
	for i := 1; i < len(accs); i++ {
		if accs[i].Offset != accs[i-1].Offset+geometry.CacheLineSize {
			t.Fatalf("mlc-reads not sequential at %d", i)
		}
	}
}

func TestKernelThreadsPartitionRegion(t *testing.T) {
	k := Kernel{KernelName: "k", StreamFrac: 1, Threads: 4}
	accs := collectSeed(t, k, 400, 3)
	quarter := uint64(testRegion / 4)
	for i, a := range accs {
		ti := i % 4
		if a.Offset/quarter != uint64(ti) {
			t.Fatalf("thread %d access at %#x outside its partition", ti, a.Offset)
		}
	}
}

func TestSuitesHaveExpectedMembers(t *testing.T) {
	if len(SPECSuite()) < 4 || len(PARSECSuite()) < 4 {
		t.Error("suites too small")
	}
	if len(AllYCSB()) != 6 {
		t.Error("AllYCSB should have 6 workloads")
	}
	if len(AllMLC()) != 5 {
		t.Error("AllMLC should have 5 modes")
	}
	names := make(map[string]bool)
	for _, w := range allWorkloads() {
		if names[w.Name()] {
			t.Errorf("duplicate workload name %s", w.Name())
		}
		names[w.Name()] = true
	}
}

func TestSysbenchWritesLog(t *testing.T) {
	accs := collect(t, Sysbench{}, 2000)
	writes := 0
	for _, a := range accs {
		if a.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Error("sysbench never wrote")
	}
}

func TestTerasortTouchesAllPhases(t *testing.T) {
	accs := collect(t, Terasort{}, 3000)
	reads, writes := 0, 0
	for _, a := range accs {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Errorf("terasort reads=%d writes=%d", reads, writes)
	}
}
