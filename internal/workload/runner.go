package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// RunOnVM executes a workload inside a VM: each guest-RAM access is
// translated through the VM's EPTs (with its TLB) to a host physical
// address, filtered through an optional last-level cache model, and issued
// to the memory-controller model. This is the measurement path behind
// Figures 4-7: the only difference between Siloz and the baseline is where
// the hypervisor placed the VM's pages.
//
// cache may be nil to drive raw DRAM traffic (e.g. Intel MLC, which defeats
// caching by design). Cache hits contribute their hit latency as think time
// preceding the next DRAM access, matching how an out-of-order core hides
// them.
func RunOnVM(vm *core.VM, ctrl *memctrl.Controller, cache *memctrl.Cache, w Workload, ops int, seed int64) (memctrl.Result, error) {
	region := vm.Spec().MemoryBytes
	var firstErr error
	pendingThink := 0.0
	w.Generate(region, ops, seed, func(a Access) bool {
		hpa, err := vm.Translate(a.Offset % region)
		if err != nil {
			firstErr = fmt.Errorf("workload %s: translating %#x: %w", w.Name(), a.Offset, err)
			return false
		}
		if cache != nil && cache.Access(hpa) {
			pendingThink += a.ThinkNs + cache.HitNs
			return true
		}
		if _, err := ctrl.Do(memctrl.Access{PA: hpa, Write: a.Write, ThinkNs: a.ThinkNs + pendingThink}); err != nil {
			firstErr = fmt.Errorf("workload %s: access %#x: %w", w.Name(), hpa, err)
			return false
		}
		pendingThink = 0
		return true
	})
	if firstErr != nil {
		return memctrl.Result{}, firstErr
	}
	if pendingThink > 0 {
		ctrl.Idle(pendingThink)
	}
	return ctrl.Result(), nil
}
