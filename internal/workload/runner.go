package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// Runner issues guest-RAM accesses for one VM through the measurement
// path behind Figures 4-7: translate through the VM's EPTs (with its TLB),
// filter through an optional last-level cache model, and issue to the
// memory-controller model. The only difference between Siloz and the
// baseline is where the hypervisor placed the VM's pages.
//
// Think-time accounting is exact at request granularity: cache hits
// contribute their hit latency as think time preceding the next DRAM
// access of the *same* request, and FinishRequest settles any trailing
// hit latency into the controller's clock before reporting the request's
// completion time — so a request that ends on cache hits is never charged
// to the next request, and its own latency includes every hit it made.
// The request-serving loop (internal/serve) is built on these boundaries;
// RunOnVM runs a whole workload stream as one request.
type Runner struct {
	vm     *core.VM
	ctrl   *memctrl.Controller
	cache  *memctrl.Cache
	region uint64

	// pendingThink is accumulated think + cache-hit latency awaiting the
	// next DRAM access (or FinishRequest, whichever comes first).
	pendingThink float64
	// lastDone is the completion frontier of the current request's DRAM
	// accesses.
	lastDone float64
}

// NewRunner builds a runner. cache may be nil to drive raw DRAM traffic
// (e.g. Intel MLC, which defeats caching by design).
func NewRunner(vm *core.VM, ctrl *memctrl.Controller, cache *memctrl.Cache) *Runner {
	return &Runner{vm: vm, ctrl: ctrl, cache: cache, region: vm.Spec().MemoryBytes}
}

// Issue translates and issues one access. Cache hits accumulate into the
// pending think time; misses reach DRAM carrying everything accumulated
// since the last miss.
func (r *Runner) Issue(a Access) error {
	hpa, err := r.vm.Translate(a.Offset % r.region)
	if err != nil {
		return fmt.Errorf("translating %#x: %w", a.Offset, err)
	}
	if r.cache != nil && r.cache.Access(hpa) {
		r.pendingThink += a.ThinkNs + r.cache.HitNs
		return nil
	}
	done, _, err := r.ctrl.DoTimed(memctrl.Access{PA: hpa, Write: a.Write, ThinkNs: a.ThinkNs + r.pendingThink})
	if err != nil {
		return fmt.Errorf("access %#x: %w", hpa, err)
	}
	r.pendingThink = 0
	if done > r.lastDone {
		r.lastDone = done
	}
	return nil
}

// FinishRequest closes the current request: trailing cache-hit latency is
// settled into the controller's clock (it belongs to this request, not
// the next), and the request's completion time — the later of its last
// DRAM completion and the core's clock — is returned.
func (r *Runner) FinishRequest() float64 {
	if r.pendingThink > 0 {
		r.ctrl.Idle(r.pendingThink)
		r.pendingThink = 0
	}
	done := r.ctrl.Now()
	if r.lastDone > done {
		done = r.lastDone
	}
	r.lastDone = 0
	return done
}

// RunOnVM executes a whole workload stream inside a VM as one request.
// On error the stream stops early, but the accesses already issued —
// including any trailing cache-hit think time — are settled into the
// controller, and the partial result is returned alongside the error
// (an earlier version dropped both, under-reporting the modeled time).
func RunOnVM(vm *core.VM, ctrl *memctrl.Controller, cache *memctrl.Cache, w Workload, ops int, seed int64) (memctrl.Result, error) {
	r := NewRunner(vm, ctrl, cache)
	var firstErr error
	w.Generate(r.region, ops, seed, func(a Access) bool {
		if err := r.Issue(a); err != nil {
			firstErr = fmt.Errorf("workload %s: %w", w.Name(), err)
			return false
		}
		return true
	})
	r.FinishRequest()
	return ctrl.Result(), firstErr
}
