package workload

import (
	"fmt"
	"math/rand"
)

// Kernel is a parameterized synthetic compute kernel standing in for one
// SPEC CPU 2017 or PARSEC 3.0 benchmark's memory behaviour (§7.2). Each
// kernel mixes four archetypes with benchmark-specific proportions:
// sequential streaming, strided sweeps, dependent pointer chasing, and
// random read-modify-write.
type Kernel struct {
	// KernelName labels the benchmark (e.g. "spec-mcf").
	KernelName string
	// StreamFrac, StrideFrac, ChaseFrac, RandRWFrac are archetype mix
	// weights; they need not sum to 1 (remainder is stream).
	StreamFrac, StrideFrac, ChaseFrac, RandRWFrac float64
	// Stride is the stride in lines for the strided archetype.
	Stride uint64
	// ThinkNs is the per-access compute intensity.
	ThinkNs float64
	// Threads models parallel workers emitting interleaved streams
	// (PARSEC runs with a power-of-two thread count, §7).
	Threads int
}

// Name implements Workload.
func (k Kernel) Name() string { return k.KernelName }

// Generate implements Workload.
func (k Kernel) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	threads := k.Threads
	if threads <= 0 {
		threads = 1
	}
	rngs := make([]*rand.Rand, threads)
	seq := make([]uint64, threads)
	chase := make([]uint64, threads)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
		seq[i] = uint64(i) * (region / uint64(threads))
		chase[i] = rngs[i].Uint64()
	}
	perThread := region / uint64(threads)
	if perThread < 4*line {
		perThread = 4 * line
	}
	for op := 0; op < ops; op++ {
		ti := op % threads
		rng := rngs[ti]
		base := uint64(ti) * perThread
		r := rng.Float64()
		var a Access
		switch {
		case r < k.ChaseFrac:
			// Dependent chase: next address derived from current.
			chase[ti] = chase[ti]*0x9E3779B97F4A7C15 + 12345
			a = Access{Offset: base + alignDown(chase[ti], perThread), ThinkNs: k.ThinkNs}
		case r < k.ChaseFrac+k.RandRWFrac:
			off := base + alignDown(rng.Uint64(), perThread)
			if !emit(Access{Offset: off % region, ThinkNs: k.ThinkNs}) {
				return
			}
			a = Access{Offset: off % region, Write: true}
		case r < k.ChaseFrac+k.RandRWFrac+k.StrideFrac:
			seq[ti] = (seq[ti] + k.Stride*line) % perThread
			a = Access{Offset: base + seq[ti], ThinkNs: k.ThinkNs}
		default:
			seq[ti] = (seq[ti] + line) % perThread
			a = Access{Offset: base + seq[ti], ThinkNs: k.ThinkNs}
		}
		a.Offset %= region
		if !emit(a) {
			return
		}
	}
}

// SPECSuite returns kernels modelling representative SPECspeed 2017
// benchmarks; §7.2 reports the suite as one bar, produced by geomeaning
// these.
func SPECSuite() []Workload {
	return []Workload{
		Kernel{KernelName: "spec-lbm", StreamFrac: 0.9, StrideFrac: 0.1, Stride: 4, ThinkNs: 40},
		Kernel{KernelName: "spec-mcf", ChaseFrac: 0.8, RandRWFrac: 0.1, ThinkNs: 60},
		Kernel{KernelName: "spec-gcc", StreamFrac: 0.4, ChaseFrac: 0.3, RandRWFrac: 0.1, ThinkNs: 120},
		Kernel{KernelName: "spec-xz", StreamFrac: 0.5, StrideFrac: 0.2, Stride: 16, RandRWFrac: 0.2, ThinkNs: 80},
		Kernel{KernelName: "spec-deepsjeng", ChaseFrac: 0.6, StreamFrac: 0.2, ThinkNs: 150},
		Kernel{KernelName: "spec-cactus", StrideFrac: 0.7, Stride: 32, RandRWFrac: 0.15, ThinkNs: 70},
	}
}

// PARSECSuite returns kernels modelling representative PARSEC 3.0
// benchmarks, run with 32 threads (§7: PARSEC needs a power-of-two count).
func PARSECSuite() []Workload {
	return []Workload{
		Kernel{KernelName: "parsec-blackscholes", StreamFrac: 0.95, ThinkNs: 200, Threads: 32},
		Kernel{KernelName: "parsec-canneal", ChaseFrac: 0.7, RandRWFrac: 0.25, ThinkNs: 70, Threads: 32},
		Kernel{KernelName: "parsec-fluidanimate", StrideFrac: 0.6, Stride: 8, RandRWFrac: 0.2, ThinkNs: 90, Threads: 32},
		Kernel{KernelName: "parsec-streamcluster", StreamFrac: 0.8, RandRWFrac: 0.1, ThinkNs: 50, Threads: 32},
		Kernel{KernelName: "parsec-swaptions", StreamFrac: 0.6, ChaseFrac: 0.1, ThinkNs: 180, Threads: 32},
		Kernel{KernelName: "parsec-dedup", ChaseFrac: 0.4, RandRWFrac: 0.3, ThinkNs: 100, Threads: 32},
	}
}

// MLC models Intel Memory Latency Checker bandwidth modes (§7.3): pure
// reads, fixed read:write ratios, and a STREAM-triad-like mode.
type MLC struct {
	// Mode is one of "reads", "3:1", "2:1", "1:1", "stream".
	Mode string
	// Threads is the number of load-generating threads.
	Threads int
}

// Name implements Workload.
func (m MLC) Name() string { return "mlc-" + m.Mode }

// BypassesCache reports that MLC generates non-temporal traffic sized far
// beyond the LLC, measuring raw DRAM bandwidth.
func (MLC) BypassesCache() bool { return true }

// Generate implements Workload.
func (m MLC) Generate(region uint64, ops int, seed int64, emit func(Access) bool) {
	threads := m.Threads
	if threads <= 0 {
		threads = 8
	}
	perThread := region / uint64(threads)
	if perThread < 8*line {
		perThread = 8 * line
	}
	var readsPerWrite int
	switch m.Mode {
	case "reads":
		readsPerWrite = -1
	case "3:1":
		readsPerWrite = 3
	case "2:1":
		readsPerWrite = 2
	case "1:1":
		readsPerWrite = 1
	case "stream":
		readsPerWrite = 2 // triad: a[i] = b[i] + s*c[i]
	default:
		panic(fmt.Sprintf("workload: unknown MLC mode %q", m.Mode))
	}
	pos := make([]uint64, threads)
	for op := 0; op < ops; op++ {
		ti := op % threads
		base := uint64(ti) * perThread
		p := pos[ti]
		if m.Mode == "stream" {
			// Triad touches three separate arrays within the slice.
			third := perThread / 3 &^ uint64(line-1)
			if !emit(Access{Offset: (base + p%third) % region}) {
				return
			}
			if !emit(Access{Offset: (base + third + p%third) % region}) {
				return
			}
			if !emit(Access{Offset: (base + 2*third + p%third) % region, Write: true}) {
				return
			}
		} else {
			write := readsPerWrite >= 0 && op/threads%(max(readsPerWrite, 1)+1) == max(readsPerWrite, 1)
			if !emit(Access{Offset: (base + p%perThread) % region, Write: write}) {
				return
			}
		}
		pos[ti] = p + line
	}
}

// AllMLC returns the five MLC modes of Fig. 5.
func AllMLC() []Workload {
	modes := []string{"reads", "3:1", "2:1", "1:1", "stream"}
	out := make([]Workload, len(modes))
	for i, m := range modes {
		out[i] = MLC{Mode: m}
	}
	return out
}
