package guest

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// bootGuestSized boots a Siloz guest kernel inside a VM of the given RAM
// size (the default helper's 64 MiB VM occupies a single node, too small to
// demonstrate node release).
func bootGuestSized(t *testing.T, bytes uint64) (*core.Hypervisor, *core.VM, *Kernel) {
	t.Helper()
	h, err := core.Boot(core.Config{
		Geometry:      testGeometry(),
		Profiles:      []dram.Profile{testProfile()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "g", Socket: 0, MemoryBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	return h, vm, NewKernel(vm)
}

// TestGuestBalloonEndToEnd drives the full handshake from inside the guest:
// inflate surrenders the top of guest RAM, the hypervisor releases the
// drained subarray-group node, a new tenant is admitted onto it, and
// deflation re-adopts capacity without touching the tenant's domain.
func TestGuestBalloonEndToEnd(t *testing.T) {
	h, vm, k := bootGuestSized(t, 128*geometry.MiB)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x4000_0000)
	if _, err := proc.MapAnonymous(gva); err != nil {
		t.Fatal(err)
	}
	payload := []byte("guest data below the balloon")
	if err := proc.Write(gva, payload); err != nil {
		t.Fatal(err)
	}

	b := k.Balloon()
	if err := b.SetTarget(64 * geometry.MiB); err != nil {
		t.Fatal(err)
	}
	if got := b.TargetBytes(); got != 64*geometry.MiB {
		t.Errorf("TargetBytes = %d, want 64 MiB", got)
	}
	if got := vm.BalloonedBytes(); got != 64*geometry.MiB {
		t.Errorf("hypervisor sees %d ballooned bytes, want 64 MiB", got)
	}
	if pages := b.Pages(); len(pages) != 32 || pages[0] != 64*geometry.MiB {
		t.Errorf("balloon pages = %d starting %#x, want 32 from 64 MiB", len(pages), pages[0])
	}
	if len(vm.Nodes()) != 1 {
		t.Fatalf("VM still owns %d nodes after inflation, want 1", len(vm.Nodes()))
	}
	// The ballooned range is outside the kernel's usable memory now.
	if merr := proc.Map(0x5000_0000, 100*geometry.MiB); !errors.Is(merr, ErrOutOfRange) {
		t.Errorf("Map into the balloon = %v, want ErrOutOfRange", merr)
	}

	// The released node admits a tenant that needed it (the socket's one
	// never-owned free node + the released one = 2 nodes = 128 MiB).
	tenant, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "tenant", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatalf("tenant refused after balloon released a node: %v", err)
	}

	// Deflate: every guest node is now owned by the tenant, so this must
	// fail rather than overlap domains.
	if derr := b.SetTarget(0); derr == nil {
		t.Fatal("deflate succeeded with no adoptable node — domains must have overlapped")
	}
	if err := h.DestroyVM("tenant"); err != nil {
		t.Fatal(err)
	}
	_ = tenant
	if err := b.SetTarget(0); err != nil {
		t.Fatalf("deflate after capacity returned: %v", err)
	}
	if got := vm.BalloonedBytes(); got != 0 {
		t.Errorf("ballooned bytes after deflate = %d", got)
	}
	// Restored memory is usable: map a frame region above the old limit.
	if merr := proc.Map(0x5000_0000, 100*geometry.MiB); merr != nil {
		t.Errorf("Map into restored range failed: %v", merr)
	}
	// Pre-balloon guest data survived the whole cycle.
	probe := make([]byte, len(payload))
	if err := proc.Read(gva, probe); err != nil {
		t.Fatal(err)
	}
	if string(probe) != string(payload) {
		t.Error("guest data corrupted across inflate/deflate cycle")
	}
}

// TestGuestBalloonRefusesLiveFrames: the driver must not surrender memory
// the kernel's frame allocator already handed out.
func TestGuestBalloonRefusesLiveFrames(t *testing.T) {
	_, _, k := bootGuestSized(t, 128*geometry.MiB)
	k.nextFrame = 100 * geometry.MiB // frames in use up to 100 MiB
	if err := k.Balloon().SetTarget(64 * geometry.MiB); err == nil {
		t.Error("inflate over live kernel frames accepted")
	}
	if err := k.Balloon().SetTarget(16 * geometry.MiB); err != nil {
		t.Errorf("inflate below the high-water mark refused: %v", err)
	}
}

func TestGuestBalloonValidation(t *testing.T) {
	_, _, k := bootGuestSized(t, 128*geometry.MiB)
	b := k.Balloon()
	if err := b.SetTarget(geometry.MiB); err == nil {
		t.Error("sub-2MiB balloon target accepted")
	}
	if err := b.SetTarget(256 * geometry.MiB); err == nil {
		t.Error("balloon target beyond guest RAM accepted")
	}
	if err := b.SetTarget(0); err != nil {
		t.Errorf("no-op deflate failed: %v", err)
	}
}
