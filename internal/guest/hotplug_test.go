package guest

import (
	"errors"
	"testing"

	"repro/internal/geometry"
)

// TestGuestHotplugEndToEnd drives a hotplug from inside the guest: the
// kernel onlines the hot-added bank, the usable-memory limit rises, and the
// new frame range is immediately allocatable and mappable.
func TestGuestHotplugEndToEnd(t *testing.T) {
	_, vm, k := bootGuestSized(t, 64*geometry.MiB)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	// Before the grow: GPAs beyond the boot reservation are out of range.
	if err := proc.Map(0x4000_0000, 64*geometry.MiB); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("pre-grow Map beyond the reservation: err = %v, want ErrOutOfRange", err)
	}
	if got := k.LimitBytes(); got != 64*geometry.MiB {
		t.Fatalf("boot limit = %d, want 64 MiB", got)
	}

	bank, err := k.HotplugBank(64 * geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Start != 64*geometry.MiB || bank.Bytes != 64*geometry.MiB {
		t.Errorf("bank = %+v, want 64 MiB at the old top of RAM", bank)
	}
	if got := k.LimitBytes(); got != 128*geometry.MiB {
		t.Errorf("limit = %d after hotplug, want 128 MiB", got)
	}
	if banks := k.Banks(); len(banks) != 1 || banks[0] != bank {
		t.Errorf("Banks() = %v, want [%+v]", banks, bank)
	}
	if got := vm.Spec().MemoryBytes; got != 128*geometry.MiB {
		t.Errorf("VM RAM = %d after hotplug, want 128 MiB", got)
	}

	// The bank is mappable and usable by a guest process.
	gva := uint64(0x4000_0000)
	if err := proc.Map(gva, bank.Start); err != nil {
		t.Fatalf("Map into the hot-added bank: %v", err)
	}
	payload := []byte("lives in hot-added memory")
	if err := proc.Write(gva, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := proc.Read(gva, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("hot-added memory lost data")
	}

	// Validation: alignment, and the balloon interlock.
	if _, err := k.HotplugBank(geometry.PageSize2M + 1); err == nil {
		t.Error("unaligned hotplug accepted")
	}
	if _, err := k.HotplugBank(0); err == nil {
		t.Error("zero-byte hotplug accepted")
	}
}

// TestGuestHotplugBalloonInterplay: the balloon refuses to coexist with a
// pending hotplug and sizes itself against the grown RAM afterwards.
func TestGuestHotplugBalloonInterplay(t *testing.T) {
	_, vm, k := bootGuestSized(t, 64*geometry.MiB)
	if err := k.Balloon().SetTarget(32 * geometry.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := k.HotplugBank(64 * geometry.MiB); err == nil {
		t.Fatal("hotplug with an inflated balloon accepted")
	}
	if err := k.Balloon().SetTarget(0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.HotplugBank(64 * geometry.MiB); err != nil {
		t.Fatal(err)
	}
	// The balloon's top-of-RAM model now covers the hot-added bank: an
	// inflate surrenders the bank first.
	if err := k.Balloon().SetTarget(64 * geometry.MiB); err != nil {
		t.Fatal(err)
	}
	if got := k.LimitBytes(); got != 64*geometry.MiB {
		t.Errorf("limit = %d after re-inflate, want 64 MiB", got)
	}
	if got := vm.BalloonedBytes(); got != 64*geometry.MiB {
		t.Errorf("BalloonedBytes = %d, want 64 MiB", got)
	}
}
