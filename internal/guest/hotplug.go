package guest

// The guest side of memory hotplug: the dual of the balloon driver. Where
// the balloon surrenders the top of guest RAM, hotplug extends it — the
// hypervisor adopts additional subarray-group nodes, scrubs them, and maps
// a new zero-filled 2 MiB-aligned range at the old top of RAM; the kernel
// then raises its usable-memory limit so the new frames become allocatable
// (allocFrame) and mappable (Process.Map). Each successful call is recorded
// as a Bank, mirroring how a real kernel onlines a hot-added memory block
// as a new node.

import (
	"fmt"

	"repro/internal/geometry"
)

// Bank is one hot-added guest memory range: [Start, Start+Bytes).
type Bank struct {
	Start uint64 // GPA of the first hot-added byte
	Bytes uint64
}

// Banks returns the hot-added memory ranges, in arrival order.
func (k *Kernel) Banks() []Bank {
	out := make([]Bank, len(k.banks))
	copy(out, k.banks)
	return out
}

// LimitBytes returns the kernel's usable-memory limit: allocations and
// mappings must stay below it. Boot RAM minus the balloon, plus every
// hot-added bank.
func (k *Kernel) LimitBytes() uint64 {
	return k.limit
}

// HotplugBank grows the guest's RAM by addBytes (a positive multiple of
// 2 MiB): the hypervisor hot-adds a scrubbed range at the current top of
// RAM and the kernel onlines it — the usable-memory limit rises, so the new
// frame range is immediately usable by allocFrame and Process.Map. The
// balloon must be fully deflated first (the hypervisor refuses otherwise);
// on any failure the kernel's view is unchanged.
func (k *Kernel) HotplugBank(addBytes uint64) (Bank, error) {
	if addBytes == 0 || addBytes%geometry.PageSize2M != 0 {
		return Bank{}, fmt.Errorf("guest: hotplug size %d must be a positive multiple of 2 MiB", addBytes)
	}
	rep, err := k.vm.Hypervisor().HotplugVM(k.vm.Name(), addBytes)
	if err != nil {
		return Bank{}, err
	}
	// Online the bank: the hot-added range begins at the old top of RAM, so
	// the new limit is simply the grown RAM size (the balloon is empty —
	// the hypervisor refused the hotplug otherwise).
	bank := Bank{Start: rep.BaseGPA, Bytes: rep.AddedBytes}
	k.limit = rep.NewMemoryBytes
	k.banks = append(k.banks, bank)
	return bank, nil
}
