package guest

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

func testGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets: 2, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 2048, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func testProfile() dram.Profile {
	p := dram.ProfileF()
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 3000
	p.HammerThreshold = 5000
	p.Transforms = addr.TransformConfig{}
	return p
}

func bootGuest(t *testing.T) (*core.Hypervisor, *core.VM, *Kernel) {
	t.Helper()
	h, err := core.Boot(core.Config{
		Geometry:      testGeometry(),
		Profiles:      []dram.Profile{testProfile()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "g", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	return h, vm, NewKernel(vm)
}

func TestThreeLevelTranslationChain(t *testing.T) {
	// §2.1: GVA -> GPA (guest page tables) -> HPA (EPTs).
	h, vm, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0000_0000)
	gpa, err := proc.MapAnonymous(gva)
	if err != nil {
		t.Fatal(err)
	}
	gotGPA, err := proc.Translate(gva + 123)
	if err != nil {
		t.Fatal(err)
	}
	if gotGPA != gpa+123 {
		t.Fatalf("Translate = %#x, want %#x", gotGPA, gpa+123)
	}
	hpa, err := proc.TranslateToHost(gva + 123)
	if err != nil {
		t.Fatal(err)
	}
	wantHPA, err := vm.Translate(gpa + 123)
	if err != nil {
		t.Fatal(err)
	}
	if hpa != wantHPA {
		t.Fatalf("TranslateToHost = %#x, want %#x", hpa, wantHPA)
	}
	if !vm.InDomain(hpa) {
		t.Error("guest frame resolved outside the VM's domain")
	}
	_ = h
}

func TestProcessReadWrite(t *testing.T) {
	_, _, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x4000_0000)
	if _, err := proc.MapAnonymous(gva); err != nil {
		t.Fatal(err)
	}
	data := []byte("userspace data")
	if err := proc.Write(gva+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := proc.Read(gva+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip failed")
	}
	if err := proc.Read(0xdead000, got); err == nil {
		t.Error("unmapped gva readable")
	}
}

func TestAddressSpacesAreIsolated(t *testing.T) {
	_, _, k := bootGuest(t)
	p1, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x1000_0000)
	gpa1, err := p1.MapAnonymous(gva)
	if err != nil {
		t.Fatal(err)
	}
	gpa2, err := p2.MapAnonymous(gva)
	if err != nil {
		t.Fatal(err)
	}
	if gpa1 == gpa2 {
		t.Fatal("two processes share a frame for private mappings")
	}
	if err := p1.Write(gva, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := p2.Write(gva, []byte("two")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := p1.Read(gva, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "one" {
		t.Errorf("p1 sees %q", buf)
	}
}

func TestMapValidation(t *testing.T) {
	_, _, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Map(123, 0); err == nil {
		t.Error("misaligned gva accepted")
	}
	if err := proc.Map(0, 123); err == nil {
		t.Error("misaligned gpa accepted")
	}
}

// TestIntraVMPTHammer makes the §9 trade-off concrete: an in-guest process
// can flip bits in its own kernel's page tables (PTHammer), because guest
// page tables share the VM's subarray groups with guest data. Siloz accepts
// this: the damage is confined to the attacking VM.
func TestIntraVMPTHammer(t *testing.T) {
	h, vm, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x2000_0000)
	if _, err := proc.MapAnonymous(gva); err != nil {
		t.Fatal(err)
	}
	before, err := proc.Translate(gva)
	if err != nil {
		t.Fatal(err)
	}

	// The process hammers guest frames adjacent (in DRAM) to a page
	// table frame. The kernel's frame allocator is a bump allocator, so
	// table frames and user frames are physically interleaved — the
	// attacker maps frames around the leaf table page and hammers them.
	leafTable := proc.TablePages()[len(proc.TablePages())-1]
	hpaTable, err := vm.Translate(leafTable)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := h.Memory().Mapper().Decode(hpaTable)
	if err != nil {
		t.Fatal(err)
	}
	mem := h.Memory()
	for _, row := range []int{ma.Row - 1, ma.Row + 1} {
		pa, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		// The rows around the table are the VM's own RAM: the guest
		// can hammer them directly.
		if !vm.InDomain(pa) {
			t.Skipf("neighbour row outside VM domain; adjust geometry")
		}
		if err := mem.ActivatePhys(pa, 20_000, 0); err != nil {
			t.Fatal(err)
		}
	}
	after, errAfter := proc.Translate(gva)
	if errAfter == nil && after == before {
		t.Fatal("guest page table survived; intra-VM PTHammer not demonstrated")
	}
	// The corruption stayed inside the VM's own domain (§9: acceptable
	// trade-off).
	for _, f := range mem.Flips() {
		pa, err := mem.FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("intra-VM hammering escaped the domain: %v", f)
		}
	}
}

func TestHammerVirtualContained(t *testing.T) {
	h, vm, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x3000_0000)
	if _, err := proc.MapAnonymous(gva); err != nil {
		t.Fatal(err)
	}
	if err := proc.HammerVirtual(gva, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	if err := proc.HammerVirtual(0xdead000, 10, 0); err == nil {
		t.Error("hammering an unmapped gva succeeded")
	}
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("virtual-address hammering escaped the VM: %v", f)
		}
	}
}

func TestKernelFrameExhaustion(t *testing.T) {
	_, _, k := bootGuest(t)
	k.limit = k.nextFrame + 2*4096 // leave room for two frames
	proc, err := k.Spawn()         // consumes one frame (root)
	if err != nil {
		t.Fatal(err)
	}
	// Mapping needs 3 intermediate tables + 1 data frame: must fail.
	if _, err := proc.MapAnonymous(0x5000_0000); err == nil {
		t.Error("mapping succeeded beyond the frame limit")
	}
}

// TestMapReclaimsDisplacedFrame: remapping a present GVA must not leak the
// old backing frame — it returns to the kernel free list and is the next
// frame handed out.
func TestMapReclaimsDisplacedFrame(t *testing.T) {
	_, _, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0000_0000)
	oldGPA, err := proc.MapAnonymous(gva)
	if err != nil {
		t.Fatal(err)
	}
	newGPA, err := k.allocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Map(gva, newGPA); err != nil {
		t.Fatal(err)
	}
	if got, _ := proc.Translate(gva); got != newGPA {
		t.Fatalf("Translate = %#x, want %#x", got, newGPA)
	}
	if len(k.freeFrames) != 1 || k.freeFrames[0] != oldGPA {
		t.Fatalf("free list = %#v, want the displaced frame %#x", k.freeFrames, oldGPA)
	}
	reused, err := k.allocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if reused != oldGPA {
		t.Errorf("allocFrame = %#x, want reclaimed %#x", reused, oldGPA)
	}
	// Remapping to the same frame must not put it on the free list.
	if err := proc.Map(gva, newGPA); err != nil {
		t.Fatal(err)
	}
	if len(k.freeFrames) != 0 {
		t.Errorf("self-remap freed the live frame: %#v", k.freeFrames)
	}
}

// TestMapRejectsOutOfRangeGPA: a GPA beyond the kernel's usable memory is
// refused at map time, not at first translate.
func TestMapRejectsOutOfRangeGPA(t *testing.T) {
	_, vm, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	err = proc.Map(0x7f00_0000_0000, vm.Spec().MemoryBytes)
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Map past the limit = %v, want ErrOutOfRange", err)
	}
}

// TestNonCanonicalGVARejected: bits 63:48 are not translation inputs in a
// 48-bit walk, so two GVAs differing only there would silently alias; the
// kernel must reject non-canonical addresses like hardware's #GP.
func TestNonCanonicalGVARejected(t *testing.T) {
	_, _, k := bootGuest(t)
	proc, err := k.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0000_0000)
	if _, err := proc.MapAnonymous(gva); err != nil {
		t.Fatal(err)
	}
	alias := gva | 1<<48 // same low 48 bits, non-canonical
	if _, terr := proc.Translate(alias); !errors.Is(terr, ErrNonCanonical) {
		t.Errorf("Translate(non-canonical) = %v, want ErrNonCanonical", terr)
	}
	if merr := proc.Map(1<<63, 0); !errors.Is(merr, ErrNonCanonical) {
		t.Errorf("Map(non-canonical) = %v, want ErrNonCanonical", merr)
	}
	// Properly sign-extended kernel-half addresses stay usable.
	if merr := proc.Map(0xffff_8000_0000_0000, 0); merr != nil {
		t.Errorf("canonical high-half Map failed: %v", merr)
	}
}
