package guest

// Balloon is the guest side of memory ballooning (virtio-balloon
// semantics): the driver "inflates" by claiming guest physical frames the
// kernel agrees never to use again, then tells the hypervisor which GPA
// ranges it surrendered so the host can unmap, scrub, and reuse the backing
// subarray-group pages — possibly returning whole isolation-domain nodes to
// the admission pool. Deflating reverses the handshake: the hypervisor
// restores backing pages (zeroed; balloon contents are never preserved) and
// the kernel's usable memory grows back.
//
// This driver keeps the protocol simple and deterministic: the balloon is
// always the top `target` bytes of guest RAM, in whole 2 MiB chunks, which
// matches the hypervisor's highest-GPA-first page selection exactly.

import (
	"fmt"

	"repro/internal/geometry"
)

// Balloon is a guest kernel's balloon device.
type Balloon struct {
	k *Kernel
	// pages are the 2 MiB-aligned GPA bases currently pinned in the
	// balloon, ascending.
	pages []uint64
}

// Balloon returns the kernel's balloon device, creating it on first use.
func (k *Kernel) Balloon() *Balloon {
	if k.balloon == nil {
		k.balloon = &Balloon{k: k}
	}
	return k.balloon
}

// TargetBytes returns the balloon's current size.
func (b *Balloon) TargetBytes() uint64 {
	return uint64(len(b.pages)) * geometry.PageSize2M
}

// Pages returns the GPA bases of the pinned 2 MiB balloon pages, ascending.
func (b *Balloon) Pages() []uint64 {
	out := make([]uint64, len(b.pages))
	copy(out, b.pages)
	return out
}

// SetTarget inflates or deflates the balloon to the given size (a multiple
// of 2 MiB). Inflation requires the surrendered range to be free of live
// kernel allocations: the frame allocator's high-water mark must sit below
// the shrunken limit. The surrendered ranges are handed to the hypervisor,
// which unmaps and reclaims them; on success the kernel's usable memory is
// [0, MemoryBytes-target). Deflation restores the range (contents zeroed).
func (b *Balloon) SetTarget(target uint64) error {
	k := b.k
	mem := k.vm.Spec().MemoryBytes
	if target%geometry.PageSize2M != 0 {
		return fmt.Errorf("guest: balloon target %d must be a multiple of 2 MiB", target)
	}
	if target > mem {
		return fmt.Errorf("guest: balloon target %d exceeds guest RAM %d", target, mem)
	}
	newLimit := mem - target
	if target > b.TargetBytes() && k.nextFrame > newLimit {
		return fmt.Errorf("guest: cannot inflate to %d bytes: guest frames in use up to %#x, new limit %#x",
			target, k.nextFrame, newLimit)
	}
	if _, err := k.vm.Hypervisor().BalloonVM(k.vm.Name(), target); err != nil {
		return err
	}
	// Commit the guest's view: the balloon owns [newLimit, mem).
	k.limit = newLimit
	b.pages = b.pages[:0]
	for gpa := newLimit; gpa < mem; gpa += geometry.PageSize2M {
		b.pages = append(b.pages, gpa)
	}
	return nil
}
