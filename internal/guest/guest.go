// Package guest implements the guest operating system's side of the §2.1
// address translation story: guest page tables, stored in guest RAM and
// managed by the guest kernel, map guest virtual addresses (GVAs) to guest
// physical addresses (GPAs); the hypervisor's EPTs then map GPAs to host
// physical addresses. Together the packages realize all three address types
// the paper's background defines.
//
// The guest layer also makes the §9 trade-off concrete: a process inside
// the VM can hammer its *own* kernel's page tables (PTHammer-style), because
// Siloz only provides inter-VM isolation — everything the guest owns,
// including its page tables, shares the VM's subarray groups.
package guest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geometry"
)

// Page table entry layout mirrors x86-64: present bit 0, frame bits 12+.
const (
	ptePresent = 1 << 0
	pteFrame   = 0x000F_FFFF_FFFF_F000

	levels    = 4
	levelBits = 9
	ptShift   = 12
)

// ErrNotMapped reports an unmapped guest virtual address.
var ErrNotMapped = errors.New("guest: gva not mapped")

// ErrNonCanonical reports a GVA whose bits 63:47 do not sign-extend bit 47.
// A 4-level 48-bit walk ignores the high bits, so accepting such an address
// would silently alias the canonical mapping — real hardware raises #GP.
var ErrNonCanonical = errors.New("guest: non-canonical gva")

// ErrOutOfRange reports a GPA beyond the kernel's usable guest memory.
var ErrOutOfRange = errors.New("guest: gpa out of range")

// Kernel is a minimal guest OS: a physical-frame allocator over guest RAM
// and per-process page tables living inside that RAM.
type Kernel struct {
	vm *core.VM
	// nextFrame is the guest frame allocator bump pointer (GPA).
	nextFrame uint64
	limit     uint64
	// freeFrames holds frames returned to the kernel (displaced Map
	// targets); allocFrame reuses them before advancing the bump pointer.
	freeFrames []uint64
	procs      map[int]*Process
	nextPID    int
	balloon    *Balloon
	// banks are the hot-added memory ranges, in arrival order.
	banks []Bank
}

// NewKernel boots a guest kernel inside a VM. Frame allocation starts after
// reserved low memory.
func NewKernel(vm *core.VM) *Kernel {
	return &Kernel{
		vm:        vm,
		nextFrame: 1 << 20, // leave the first MiB for "firmware"
		limit:     vm.Spec().MemoryBytes,
		procs:     make(map[int]*Process),
	}
}

// allocFrame hands out one zeroed 4 KiB guest frame, preferring frames on
// the free list over fresh bump-pointer memory. Free frames above the
// current limit (inside an inflated balloon) are skipped, not lost: a
// deflate raises the limit and makes them allocatable again.
func (k *Kernel) allocFrame() (uint64, error) {
	gpa, found := uint64(0), false
	for i := len(k.freeFrames) - 1; i >= 0; i-- {
		if f := k.freeFrames[i]; f+geometry.PageSize4K <= k.limit {
			gpa, found = f, true
			k.freeFrames = append(k.freeFrames[:i], k.freeFrames[i+1:]...)
			break
		}
	}
	if !found {
		if k.nextFrame+geometry.PageSize4K > k.limit {
			return 0, fmt.Errorf("guest: out of guest frames")
		}
		gpa = k.nextFrame
		k.nextFrame += geometry.PageSize4K
	}
	if err := k.vm.WriteGuest(gpa, make([]byte, geometry.PageSize4K)); err != nil {
		return 0, err
	}
	return gpa, nil
}

// freeFrame returns a guest frame to the kernel free list.
func (k *Kernel) freeFrame(gpa uint64) {
	k.freeFrames = append(k.freeFrames, gpa)
}

// canonical reports whether bits 63:47 of a GVA sign-extend bit 47 — the
// x86-64 canonical-form requirement for a 48-bit virtual address space.
func canonical(gva uint64) bool {
	top := int64(gva) >> 47
	return top == 0 || top == -1
}

// Process is one guest process with its own address space.
type Process struct {
	PID  int
	k    *Kernel
	root uint64 // GPA of the top-level page table
	// tablePages records every page-table frame, in allocation order —
	// the state PTHammer-style attacks target.
	tablePages []uint64
}

// Spawn creates a process with an empty address space.
func (k *Kernel) Spawn() (*Process, error) {
	root, err := k.allocFrame()
	if err != nil {
		return nil, err
	}
	k.nextPID++
	p := &Process{PID: k.nextPID, k: k, root: root, tablePages: []uint64{root}}
	k.procs[p.PID] = p
	return p, nil
}

// TablePages returns the GPAs of the process's page-table frames.
func (p *Process) TablePages() []uint64 {
	out := make([]uint64, len(p.tablePages))
	copy(out, p.tablePages)
	return out
}

// readPTE loads a page table entry from guest RAM.
func (p *Process) readPTE(gpa uint64) (uint64, error) {
	var buf [8]byte
	if err := p.k.vm.ReadGuest(gpa, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// writePTE stores a page table entry into guest RAM.
func (p *Process) writePTE(gpa, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return p.k.vm.WriteGuest(gpa, buf[:])
}

func indexAt(gva uint64, level int) uint64 {
	shift := ptShift + levelBits*(levels-1-level)
	return (gva >> shift) & ((1 << levelBits) - 1)
}

// Map installs a 4 KiB mapping gva → gpa in the process's address space.
// Remapping an already-present GVA returns the displaced backing frame to
// the kernel free list. The GVA must be canonical and the GPA inside the
// kernel's usable guest memory (ballooned-out ranges are outside it).
func (p *Process) Map(gva, gpa uint64) error {
	if gva%geometry.PageSize4K != 0 || gpa%geometry.PageSize4K != 0 {
		return fmt.Errorf("guest: Map needs 4 KiB alignment (gva=%#x gpa=%#x)", gva, gpa)
	}
	if !canonical(gva) {
		return fmt.Errorf("%w: %#x", ErrNonCanonical, gva)
	}
	if gpa >= p.k.limit {
		return fmt.Errorf("%w: gpa %#x, usable guest memory ends at %#x", ErrOutOfRange, gpa, p.k.limit)
	}
	table := p.root
	for level := 0; level < levels-1; level++ {
		entryGPA := table + indexAt(gva, level)*8
		v, err := p.readPTE(entryGPA)
		if err != nil {
			return err
		}
		if v&ptePresent == 0 {
			next, err := p.k.allocFrame()
			if err != nil {
				return err
			}
			p.tablePages = append(p.tablePages, next)
			v = (next & pteFrame) | ptePresent
			if err := p.writePTE(entryGPA, v); err != nil {
				return err
			}
		}
		table = v & pteFrame
	}
	leafGPA := table + indexAt(gva, levels-1)*8
	old, err := p.readPTE(leafGPA)
	if err != nil {
		return err
	}
	if err := p.writePTE(leafGPA, (gpa&pteFrame)|ptePresent); err != nil {
		return err
	}
	if oldFrame := old & pteFrame; old&ptePresent != 0 && oldFrame != gpa {
		p.k.freeFrame(oldFrame)
	}
	return nil
}

// MapAnonymous allocates a fresh guest frame and maps it at gva, returning
// the backing GPA (the guest's mmap).
func (p *Process) MapAnonymous(gva uint64) (uint64, error) {
	gpa, err := p.k.allocFrame()
	if err != nil {
		return 0, err
	}
	return gpa, p.Map(gva, gpa)
}

// Translate walks the guest page tables for a GVA, returning the GPA. The
// walk reads page table entries from guest RAM — flipped PTE bits steer it,
// exactly like hardware.
func (p *Process) Translate(gva uint64) (uint64, error) {
	if !canonical(gva) {
		return 0, fmt.Errorf("%w: %#x", ErrNonCanonical, gva)
	}
	table := p.root
	for level := 0; level < levels; level++ {
		entryGPA := table + indexAt(gva, level)*8
		v, err := p.readPTE(entryGPA)
		if err != nil {
			return 0, err
		}
		if v&ptePresent == 0 {
			return 0, fmt.Errorf("%w: gva %#x (level %d)", ErrNotMapped, gva, level)
		}
		if level == levels-1 {
			return (v & pteFrame) | (gva & (geometry.PageSize4K - 1)), nil
		}
		table = v & pteFrame
	}
	panic("unreachable")
}

// TranslateToHost resolves the full §2.1 chain: GVA → GPA (guest page
// tables) → HPA (the hypervisor's EPTs).
func (p *Process) TranslateToHost(gva uint64) (uint64, error) {
	gpa, err := p.Translate(gva)
	if err != nil {
		return 0, err
	}
	return p.k.vm.Translate(gpa)
}

// Write stores data at a guest virtual address (single page).
func (p *Process) Write(gva uint64, data []byte) error {
	gpa, err := p.Translate(gva)
	if err != nil {
		return err
	}
	return p.k.vm.WriteGuest(gpa, data)
}

// Read loads data from a guest virtual address (single page).
func (p *Process) Read(gva uint64, buf []byte) error {
	gpa, err := p.Translate(gva)
	if err != nil {
		return err
	}
	return p.k.vm.ReadGuest(gpa, buf)
}

// HammerVirtual hammers the DRAM row backing a guest virtual address — an
// in-guest process's unmediated access path.
func (p *Process) HammerVirtual(gva uint64, count int, openNs int64) error {
	gpa, err := p.Translate(gva)
	if err != nil {
		return err
	}
	return p.k.vm.Hammer(gpa, count, openNs)
}
