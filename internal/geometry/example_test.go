package geometry_test

import (
	"fmt"

	"repro/internal/geometry"
)

// Example shows the evaluation server's derived DRAM organization.
func Example() {
	g := geometry.Default()
	fmt.Println(g)
	fmt.Printf("subarray groups per socket: %d\n", g.SubarrayGroupsPerSocket())
	// Output:
	// 2 sockets x 6 DIMMs x 2 ranks x 16 banks; 192 banks/socket; 192 GiB/socket; 1024-row subarrays; 1.50 GiB subarray groups
	// subarray groups per socket: 128
}
