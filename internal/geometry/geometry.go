// Package geometry describes server DRAM topology: sockets, channels, DIMMs,
// ranks, banks, subarrays, and rows. All other packages derive sizes and
// address layouts from a Geometry value, so the whole simulation can be
// re-targeted to a different server by constructing a different Geometry.
//
// The default configuration mirrors the Siloz evaluation platform (Table 2 of
// the paper): a dual-socket Intel Xeon Gold 6230 with 192 GiB of DDR4 per
// socket, organized as six 32 GiB 2Rx4 DIMMs per socket (192 banks/socket),
// 1 GiB banks of 8 KiB rows, and 1024-row subarrays.
package geometry

import (
	"fmt"
)

// Common sizes in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	// PageSize4K, PageSize2M and PageSize1G are the x86-64 page sizes the
	// hypervisor provisions memory in.
	PageSize4K = 4 * KiB
	PageSize2M = 2 * MiB
	PageSize1G = 1 * GiB

	// CacheLineSize is the interleaving granularity of physical-to-media
	// address mappings (§2.4).
	CacheLineSize = 64
)

// Geometry describes the DRAM organization of one server.
//
// The hierarchy is: Sockets × DIMMsPerSocket × RanksPerDIMM × BanksPerRank
// banks, each bank holding RowsPerBank rows of RowBytes bytes. Subarrays
// partition each bank into contiguous runs of RowsPerSubarray rows.
type Geometry struct {
	// Sockets is the number of CPU sockets; each socket with its DIMMs
	// forms one physical NUMA node (§2.2).
	Sockets int
	// CoresPerSocket is the number of logical cores per socket.
	CoresPerSocket int
	// DIMMsPerSocket is the number of DRAM modules attached to each socket.
	DIMMsPerSocket int
	// RanksPerDIMM is the number of ranks per module (2 for 2Rx4 parts).
	RanksPerDIMM int
	// BanksPerRank is the number of banks per rank (16 in DDR4).
	BanksPerRank int
	// RowsPerBank is the number of DRAM rows in each bank.
	RowsPerBank int
	// RowBytes is the externally-visible size of one row (8 KiB in the
	// paper's server; internally split into two half-rows, §2.3).
	RowBytes int
	// RowsPerSubarray is the number of rows in one subarray. Commodity
	// sizes range 512-2048; the evaluation server uses 1024.
	RowsPerSubarray int
}

// Default returns the Siloz evaluation-server geometry (Table 2).
func Default() Geometry {
	return Geometry{
		Sockets:         2,
		CoresPerSocket:  40,
		DIMMsPerSocket:  6,
		RanksPerDIMM:    2,
		BanksPerRank:    16,
		RowsPerBank:     128 * 1024, // 1 GiB bank / 8 KiB rows
		RowBytes:        8 * KiB,
		RowsPerSubarray: 1024,
	}
}

// DDR5Server returns a server populated with DDR5 modules (§8.2): twice
// the banks per rank (32 vs DDR4's 16), doubling bank-level parallelism —
// and with it the subarray group size (3 GiB at 1024-row subarrays).
func DDR5Server() Geometry {
	g := Default()
	g.BanksPerRank = 32
	return g
}

// HBM2Server returns a server with HBM2-like stacks (§8.2): many more
// banks per "socket" (one stack of 8 channels x 32 banks here), pushing
// group sizes up further; §8.1's techniques offset the coarser granularity.
func HBM2Server() Geometry {
	return Geometry{
		Sockets:         2,
		CoresPerSocket:  40,
		DIMMsPerSocket:  8, // pseudo-channels
		RanksPerDIMM:    1,
		BanksPerRank:    32,
		RowsPerBank:     64 * 1024,
		RowBytes:        8 * KiB,
		RowsPerSubarray: 1024,
	}
}

// WithSubarraySize returns a copy of g using rows rows per subarray. It is
// how the Siloz-512 and Siloz-2048 sensitivity variants (§7.4) are built.
func (g Geometry) WithSubarraySize(rows int) Geometry {
	g.RowsPerSubarray = rows
	return g
}

// WithSNC returns a copy of g with sub-NUMA clustering (§8.1): each socket
// is exposed as k clusters, each owning 1/k of the socket's DIMMs, cores
// and a contiguous slice of its physical addresses. Because a page then
// interleaves over only the cluster's banks, every subarray group shrinks
// by the same factor — the knob cloud providers can use for finer-grained
// provisioning. DIMMsPerSocket and CoresPerSocket must divide by k.
func (g Geometry) WithSNC(k int) (Geometry, error) {
	if k <= 0 {
		return g, fmt.Errorf("geometry: SNC factor must be positive, got %d", k)
	}
	if g.DIMMsPerSocket%k != 0 || g.CoresPerSocket%k != 0 {
		return g, fmt.Errorf("geometry: %d DIMMs / %d cores per socket not divisible by SNC factor %d",
			g.DIMMsPerSocket, g.CoresPerSocket, k)
	}
	g.Sockets *= k
	g.DIMMsPerSocket /= k
	g.CoresPerSocket /= k
	return g, nil
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Sockets <= 0:
		return fmt.Errorf("geometry: Sockets must be positive, got %d", g.Sockets)
	case g.CoresPerSocket <= 0:
		return fmt.Errorf("geometry: CoresPerSocket must be positive, got %d", g.CoresPerSocket)
	case g.DIMMsPerSocket <= 0:
		return fmt.Errorf("geometry: DIMMsPerSocket must be positive, got %d", g.DIMMsPerSocket)
	case g.RanksPerDIMM <= 0:
		return fmt.Errorf("geometry: RanksPerDIMM must be positive, got %d", g.RanksPerDIMM)
	case g.BanksPerRank <= 0:
		return fmt.Errorf("geometry: BanksPerRank must be positive, got %d", g.BanksPerRank)
	case g.RowsPerBank <= 0:
		return fmt.Errorf("geometry: RowsPerBank must be positive, got %d", g.RowsPerBank)
	case g.RowBytes <= 0 || g.RowBytes%CacheLineSize != 0:
		return fmt.Errorf("geometry: RowBytes must be a positive multiple of %d, got %d", CacheLineSize, g.RowBytes)
	case g.RowsPerSubarray <= 0:
		return fmt.Errorf("geometry: RowsPerSubarray must be positive, got %d", g.RowsPerSubarray)
	case g.RowsPerBank%g.RowsPerSubarray != 0:
		return fmt.Errorf("geometry: RowsPerBank (%d) must be a multiple of RowsPerSubarray (%d)",
			g.RowsPerBank, g.RowsPerSubarray)
	}
	return nil
}

// BanksPerDIMM returns the number of banks in one module.
func (g Geometry) BanksPerDIMM() int { return g.RanksPerDIMM * g.BanksPerRank }

// BanksPerSocket returns the number of banks in one physical node.
func (g Geometry) BanksPerSocket() int { return g.DIMMsPerSocket * g.BanksPerDIMM() }

// TotalBanks returns the number of banks in the whole server.
func (g Geometry) TotalBanks() int { return g.Sockets * g.BanksPerSocket() }

// BankBytes returns the capacity of one bank.
func (g Geometry) BankBytes() int64 { return int64(g.RowsPerBank) * int64(g.RowBytes) }

// SocketBytes returns the DRAM capacity of one physical node.
func (g Geometry) SocketBytes() int64 { return int64(g.BanksPerSocket()) * g.BankBytes() }

// TotalBytes returns the DRAM capacity of the server.
func (g Geometry) TotalBytes() int64 { return int64(g.Sockets) * g.SocketBytes() }

// SubarraysPerBank returns the number of subarrays in each bank.
func (g Geometry) SubarraysPerBank() int { return g.RowsPerBank / g.RowsPerSubarray }

// SubarrayGroupBytes returns the size of one subarray group: at least one
// subarray from every bank in a physical node (§4.1).
func (g Geometry) SubarrayGroupBytes() int64 {
	return int64(g.BanksPerSocket()) * int64(g.RowsPerSubarray) * int64(g.RowBytes)
}

// SubarrayGroupsPerSocket returns the number of subarray groups per physical
// node.
func (g Geometry) SubarrayGroupsPerSocket() int { return g.SubarraysPerBank() }

// RowGroupBytes returns the size of one row group: one row from every bank
// in a physical node (Fig. 2).
func (g Geometry) RowGroupBytes() int64 {
	return int64(g.BanksPerSocket()) * int64(g.RowBytes)
}

// TotalCores returns the number of logical cores in the server.
func (g Geometry) TotalCores() int { return g.Sockets * g.CoresPerSocket }

// String summarizes the geometry, e.g. for cmd/siloz-topology output.
func (g Geometry) String() string {
	return fmt.Sprintf(
		"%d sockets x %d DIMMs x %d ranks x %d banks; %d banks/socket; %d GiB/socket; %d-row subarrays; %.2f GiB subarray groups",
		g.Sockets, g.DIMMsPerSocket, g.RanksPerDIMM, g.BanksPerRank,
		g.BanksPerSocket(), g.SocketBytes()/GiB, g.RowsPerSubarray,
		float64(g.SubarrayGroupBytes())/float64(GiB))
}

// BankID identifies one bank within the server.
type BankID struct {
	Socket int
	DIMM   int
	Rank   int
	Bank   int
}

// Valid reports whether the bank ID is within g.
func (b BankID) Valid(g Geometry) bool {
	return b.Socket >= 0 && b.Socket < g.Sockets &&
		b.DIMM >= 0 && b.DIMM < g.DIMMsPerSocket &&
		b.Rank >= 0 && b.Rank < g.RanksPerDIMM &&
		b.Bank >= 0 && b.Bank < g.BanksPerRank
}

// Flat returns the bank's dense index in [0, g.TotalBanks()).
func (b BankID) Flat(g Geometry) int {
	return ((b.Socket*g.DIMMsPerSocket+b.DIMM)*g.RanksPerDIMM+b.Rank)*g.BanksPerRank + b.Bank
}

// SocketFlat returns the bank's dense index within its socket, in
// [0, g.BanksPerSocket()).
func (b BankID) SocketFlat(g Geometry) int {
	return ((b.DIMM*g.RanksPerDIMM)+b.Rank)*g.BanksPerRank + b.Bank
}

// BankFromSocketFlat is the inverse of BankID.SocketFlat for a socket.
func BankFromSocketFlat(g Geometry, socket, idx int) BankID {
	bank := idx % g.BanksPerRank
	idx /= g.BanksPerRank
	rank := idx % g.RanksPerDIMM
	dimm := idx / g.RanksPerDIMM
	return BankID{Socket: socket, DIMM: dimm, Rank: rank, Bank: bank}
}

// BankFromFlat is the inverse of BankID.Flat.
func BankFromFlat(g Geometry, flat int) BankID {
	bank := flat % g.BanksPerRank
	flat /= g.BanksPerRank
	rank := flat % g.RanksPerDIMM
	flat /= g.RanksPerDIMM
	dimm := flat % g.DIMMsPerSocket
	socket := flat / g.DIMMsPerSocket
	return BankID{Socket: socket, DIMM: dimm, Rank: rank, Bank: bank}
}

func (b BankID) String() string {
	return fmt.Sprintf("s%d.d%d.r%d.b%d", b.Socket, b.DIMM, b.Rank, b.Bank)
}

// MediaAddr identifies a DRAM cell range: a row within a bank plus a byte
// column offset. It is what the memory controller produces from a host
// physical address (§2.4).
type MediaAddr struct {
	Bank BankID
	Row  int
	Col  int // byte offset within the row
}

// Valid reports whether the media address is within g.
func (m MediaAddr) Valid(g Geometry) bool {
	return m.Bank.Valid(g) && m.Row >= 0 && m.Row < g.RowsPerBank &&
		m.Col >= 0 && m.Col < g.RowBytes
}

// Subarray returns the index of the subarray containing the row.
func (m MediaAddr) Subarray(g Geometry) int { return m.Row / g.RowsPerSubarray }

func (m MediaAddr) String() string {
	return fmt.Sprintf("%s.row%d.col%d", m.Bank, m.Row, m.Col)
}
