package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperTable2(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got := g.BanksPerSocket(); got != 192 {
		t.Errorf("BanksPerSocket = %d, want 192", got)
	}
	if got := g.SocketBytes(); got != 192*GiB {
		t.Errorf("SocketBytes = %d, want 192 GiB", got)
	}
	if got := g.TotalBytes(); got != 384*GiB {
		t.Errorf("TotalBytes = %d, want 384 GiB", got)
	}
	if got := g.BankBytes(); got != 1*GiB {
		t.Errorf("BankBytes = %d, want 1 GiB", got)
	}
	// §4.1: 192 banks * 1024 rows * 8 KiB = 1.5 GiB subarray groups.
	if got := g.SubarrayGroupBytes(); got != 3*GiB/2 {
		t.Errorf("SubarrayGroupBytes = %d, want 1.5 GiB", got)
	}
	if got := g.SubarraysPerBank(); got != 128 {
		t.Errorf("SubarraysPerBank = %d, want 128", got)
	}
	if got := g.SubarrayGroupsPerSocket(); got != 128 {
		t.Errorf("SubarrayGroupsPerSocket = %d, want 128", got)
	}
	if got := g.TotalCores(); got != 80 {
		t.Errorf("TotalCores = %d, want 80", got)
	}
}

func TestSubarraySizeVariants(t *testing.T) {
	// §4.1: for subarray sizes 512-2048 the group size is 0.75-3 GiB.
	for _, tc := range []struct {
		rows  int
		bytes int64
	}{
		{512, 3 * GiB / 4},
		{1024, 3 * GiB / 2},
		{2048, 3 * GiB},
	} {
		g := Default().WithSubarraySize(tc.rows)
		if err := g.Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", tc.rows, err)
		}
		if got := g.SubarrayGroupBytes(); got != tc.bytes {
			t.Errorf("rows=%d: SubarrayGroupBytes = %d, want %d", tc.rows, got, tc.bytes)
		}
	}
}

func TestValidateRejectsBadGeometries(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero sockets", func(g *Geometry) { g.Sockets = 0 }},
		{"negative cores", func(g *Geometry) { g.CoresPerSocket = -1 }},
		{"zero dimms", func(g *Geometry) { g.DIMMsPerSocket = 0 }},
		{"zero ranks", func(g *Geometry) { g.RanksPerDIMM = 0 }},
		{"zero banks", func(g *Geometry) { g.BanksPerRank = 0 }},
		{"zero rows", func(g *Geometry) { g.RowsPerBank = 0 }},
		{"row not cacheline multiple", func(g *Geometry) { g.RowBytes = 100 }},
		{"zero subarray", func(g *Geometry) { g.RowsPerSubarray = 0 }},
		{"subarray not dividing bank", func(g *Geometry) { g.RowsPerSubarray = 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Default()
			tc.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Errorf("Validate accepted invalid geometry %+v", g)
			}
		})
	}
}

func TestBankIDFlatRoundTrip(t *testing.T) {
	g := Default()
	for flat := 0; flat < g.TotalBanks(); flat++ {
		b := BankFromFlat(g, flat)
		if !b.Valid(g) {
			t.Fatalf("BankFromFlat(%d) = %v invalid", flat, b)
		}
		if got := b.Flat(g); got != flat {
			t.Fatalf("Flat(BankFromFlat(%d)) = %d", flat, got)
		}
	}
}

func TestBankIDFlatRoundTripProperty(t *testing.T) {
	g := Geometry{
		Sockets: 3, CoresPerSocket: 8, DIMMsPerSocket: 5, RanksPerDIMM: 2,
		BanksPerRank: 16, RowsPerBank: 4096, RowBytes: 8 * KiB, RowsPerSubarray: 512,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := BankID{
			Socket: r.Intn(g.Sockets),
			DIMM:   r.Intn(g.DIMMsPerSocket),
			Rank:   r.Intn(g.RanksPerDIMM),
			Bank:   r.Intn(g.BanksPerRank),
		}
		return BankFromFlat(g, b.Flat(g)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSocketFlatDenseWithinSocket(t *testing.T) {
	g := Default()
	seen := make(map[int]bool)
	for d := 0; d < g.DIMMsPerSocket; d++ {
		for r := 0; r < g.RanksPerDIMM; r++ {
			for bk := 0; bk < g.BanksPerRank; bk++ {
				b := BankID{Socket: 1, DIMM: d, Rank: r, Bank: bk}
				sf := b.SocketFlat(g)
				if sf < 0 || sf >= g.BanksPerSocket() {
					t.Fatalf("SocketFlat(%v) = %d out of range", b, sf)
				}
				if seen[sf] {
					t.Fatalf("SocketFlat collision at %d", sf)
				}
				seen[sf] = true
			}
		}
	}
	if len(seen) != g.BanksPerSocket() {
		t.Fatalf("SocketFlat covered %d of %d banks", len(seen), g.BanksPerSocket())
	}
}

func TestMediaAddrValidAndSubarray(t *testing.T) {
	g := Default()
	b := BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	m := MediaAddr{Bank: b, Row: 1024, Col: 0}
	if !m.Valid(g) {
		t.Fatalf("%v should be valid", m)
	}
	if got := m.Subarray(g); got != 1 {
		t.Errorf("Subarray = %d, want 1", got)
	}
	for _, bad := range []MediaAddr{
		{Bank: b, Row: -1, Col: 0},
		{Bank: b, Row: g.RowsPerBank, Col: 0},
		{Bank: b, Row: 0, Col: g.RowBytes},
		{Bank: BankID{Socket: 2}, Row: 0, Col: 0},
	} {
		if bad.Valid(g) {
			t.Errorf("%v should be invalid", bad)
		}
	}
}

func TestRowGroupBytes(t *testing.T) {
	g := Default()
	if got := g.RowGroupBytes(); got != int64(192*8*KiB) {
		t.Errorf("RowGroupBytes = %d, want %d", got, 192*8*KiB)
	}
}

func TestDDR5AndHBM2Presets(t *testing.T) {
	// §8.2: more banks per rank proportionally increase subarray group
	// sizes (offset via §8.1 techniques).
	ddr5 := DDR5Server()
	if err := ddr5.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := ddr5.SubarrayGroupBytes(), Default().SubarrayGroupBytes()*2; got != want {
		t.Errorf("DDR5 group bytes = %d, want %d (double DDR4)", got, want)
	}
	hbm := HBM2Server()
	if err := hbm.Validate(); err != nil {
		t.Fatal(err)
	}
	if hbm.BanksPerSocket() <= Default().BanksPerSocket() {
		t.Error("HBM2 should expose more banks per socket")
	}
	if hbm.SubarrayGroupBytes() <= Default().SubarrayGroupBytes() {
		t.Error("HBM2 group size should exceed DDR4's")
	}
}
