package memctrl

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

func tinyGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    2,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func newCtrl(t *testing.T, mapper addr.Mapper, window int) *Controller {
	t.Helper()
	c, err := New(Config{Mapper: mapper, Timing: DDR4_2933(), MLPWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func streamRun(t *testing.T, c *Controller, n int, stride uint64) Result {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Do(Access{PA: uint64(i) * stride}); err != nil {
			t.Fatal(err)
		}
	}
	return c.Result()
}

func TestConfigValidation(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	if _, err := New(Config{Mapper: m, MLPWindow: 0}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Config{MLPWindow: 4}); err == nil {
		t.Error("nil mapper accepted")
	}
}

func TestBankLevelParallelismSpeedsUpStreams(t *testing.T) {
	// §4.1: losing bank-level parallelism costs >18% on streaming
	// workloads. The interleaved (Skylake) mapping must beat the
	// one-bank-at-a-time (linear) mapping by a wide margin.
	g := tinyGeometry()
	sky, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := addr.NewLinearMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	interleaved := streamRun(t, newCtrl(t, sky, 10), n, geometry.CacheLineSize)
	serial := streamRun(t, newCtrl(t, lin, 10), n, geometry.CacheLineSize)
	if interleaved.TotalNs >= serial.TotalNs {
		t.Fatalf("interleaving slower than serial: %v vs %v", interleaved.TotalNs, serial.TotalNs)
	}
	speedup := serial.TotalNs / interleaved.TotalNs
	// The linear mapping still gets row-buffer hits, so it is not
	// catastrophically slow — but BLP should win by well beyond the
	// paper's 18% figure for pure streams.
	if speedup < 1.18 {
		t.Errorf("BLP speedup = %.2fx, want > 1.18x (§4.1)", speedup)
	}
}

func TestRowBufferHitsCounted(t *testing.T) {
	// Accesses within one row group at the same bank offset: second
	// access to the same row is a hit.
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 1)
	if _, err := c.Do(Access{PA: 0}); err != nil {
		t.Fatal(err)
	}
	// Same bank, same row: PA 0 and PA + banks*64 land in the same bank.
	banks := uint64(g.BanksPerSocket())
	if _, err := c.Do(Access{PA: banks * geometry.CacheLineSize}); err != nil {
		t.Fatal(err)
	}
	r := c.Result()
	if r.RowMisses != 1 || r.RowHits != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", r.RowHits, r.RowMisses)
	}
}

func TestMLPWindowLimitsOverlap(t *testing.T) {
	// With window 1, every access serializes: total time ~= sum of
	// latencies. With window 16, random-bank accesses overlap.
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	n := 10000
	narrow := streamRun(t, newCtrl(t, m, 1), n, geometry.CacheLineSize)
	wide := streamRun(t, newCtrl(t, m, 16), n, geometry.CacheLineSize)
	if wide.TotalNs >= narrow.TotalNs {
		t.Errorf("wider MLP window did not help: %v vs %v", wide.TotalNs, narrow.TotalNs)
	}
}

func TestRemoteSocketPenalty(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	local := newCtrl(t, m, 1)
	if _, err := local.Do(Access{PA: 0}); err != nil { // socket 0
		t.Fatal(err)
	}
	remoteCfg := Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 1, HomeSocket: 1}
	remote, err := New(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Do(Access{PA: 0}); err != nil { // socket 0 from socket 1
		t.Fatal(err)
	}
	if remote.Result().TotalNs <= local.Result().TotalNs {
		t.Error("remote access not penalized")
	}
	want := local.Result().TotalNs + DDR4_2933().RemotePenalty
	if got := remote.Result().TotalNs; got != want {
		t.Errorf("remote total = %v, want %v", got, want)
	}
}

func TestThinkTimeAdvancesClock(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 4)
	if _, err := c.Do(Access{PA: 0, ThinkNs: 1000}); err != nil {
		t.Fatal(err)
	}
	if got := c.Result().TotalNs; got < 1000 {
		t.Errorf("TotalNs = %v, want >= 1000 (think time)", got)
	}
}

func TestNowAndAdvanceTo(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 4)
	if c.Now() != 0 {
		t.Fatalf("fresh Now = %v", c.Now())
	}
	// AdvanceTo moves the issue clock forward but, unlike Idle, does not
	// extend the completion frontier: waiting for an arrival is not work.
	c.AdvanceTo(5000)
	if c.Now() != 5000 {
		t.Fatalf("Now = %v after AdvanceTo(5000)", c.Now())
	}
	if got := c.Result().TotalNs; got != 0 {
		t.Fatalf("AdvanceTo counted as modeled time: TotalNs = %v", got)
	}
	c.AdvanceTo(100) // never moves backwards
	if c.Now() != 5000 {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", c.Now())
	}
	// The next access issues no earlier than the advanced clock.
	done, err := c.Do(Access{PA: 0})
	if err != nil {
		t.Fatal(err)
	}
	if done < 5000 {
		t.Fatalf("access completed at %v, before the advanced clock", done)
	}
	c.Idle(200)
	if got := c.Result().TotalNs; got < 5200-1e-9 {
		t.Fatalf("Idle did not extend the frontier: %v", got)
	}
}

func TestResultCounters(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 4)
	for i := 0; i < 10; i++ {
		if _, err := c.Do(Access{PA: uint64(i) * 64, Write: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	r := c.Result()
	if r.Accesses != 10 || r.Reads != 5 || r.Writes != 5 {
		t.Errorf("counters wrong: %+v", r)
	}
	if r.Bytes != 640 {
		t.Errorf("Bytes = %d", r.Bytes)
	}
	if r.ThroughputGBs() <= 0 || r.OpsPerSec() <= 0 {
		t.Error("derived rates must be positive")
	}
}

func TestJitterIsBoundedAndSeeded(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	run := func(seed int64) float64 {
		c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 8, JitterSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return streamRun(t, c, 20000, geometry.CacheLineSize).TotalNs
	}
	base := run(0)
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Error("same seed produced different results")
	}
	if a1 == b {
		t.Error("different seeds produced identical results")
	}
	rel := (a1 - base) / base
	if rel > 0.02 || rel < -0.02 {
		t.Errorf("jitter moved total by %.3f, want within ±2%%", rel)
	}
}

func TestResetClearsState(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 4)
	streamRun(t, c, 100, 64)
	c.Reset()
	r := c.Result()
	if r.Accesses != 0 || r.TotalNs != 0 {
		t.Errorf("Reset left state: %+v", r)
	}
}

func TestDoRejectsOutOfRange(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 4)
	if _, err := c.Do(Access{PA: uint64(g.TotalBytes())}); err == nil {
		t.Error("out-of-range access accepted")
	}
}

func TestRefreshStallsRequests(t *testing.T) {
	// A row miss issued during a refresh cycle waits for tRFC.
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	tm := DDR4_2933()
	c, err := New(Config{Mapper: m, Timing: tm, MLPWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The very first access at t=0 falls inside refresh window 0
	// ([0, tRFC)) and is pushed past it.
	done, err := c.Do(Access{PA: 0})
	if err != nil {
		t.Fatal(err)
	}
	if done < tm.TRFC {
		t.Errorf("first access completed at %v, want >= tRFC (%v)", done, tm.TRFC)
	}
}

func TestRefreshOverheadBounded(t *testing.T) {
	// Long random-miss runs lose roughly tRFC/tREFI (~4.5%) to refresh.
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	withRef := DDR4_2933()
	noRef := withRef
	noRef.TREFI, noRef.TRFC = 0, 0
	run := func(tm Timing) float64 {
		c, err := New(Config{Mapper: m, Timing: tm, MLPWindow: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Stride by a whole row group so every access misses.
		stride := uint64(g.RowGroupBytes())
		for i := 0; i < 20000; i++ {
			pa := (uint64(i) * stride) % uint64(g.TotalBytes())
			if _, err := c.Do(Access{PA: pa}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Result().TotalNs
	}
	overhead := run(withRef)/run(noRef) - 1
	if overhead <= 0 || overhead > 0.10 {
		t.Errorf("refresh overhead %.3f, want within (0, 0.10]", overhead)
	}
}

func TestFAWLimitsActivationBursts(t *testing.T) {
	// Five back-to-back row misses in one rank: the fifth activation
	// cannot start before the first + tFAW.
	g := tinyGeometry()
	m, _ := addr.NewLinearMapper(g) // same bank -> same rank trivially
	tm := DDR4_2933()
	tm.TREFI, tm.TRFC = 0, 0 // isolate the FAW effect
	c, err := New(Config{Mapper: m, Timing: tm, MLPWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Different rows of the same bank: every access is a miss.
	var last float64
	for i := 0; i < 5; i++ {
		done, err := c.Do(Access{PA: uint64(i) * uint64(g.RowBytes)})
		if err != nil {
			t.Fatal(err)
		}
		last = done
	}
	if min := tm.TFAW + tm.missLatency(); last < min {
		t.Errorf("fifth activation completed at %v, want >= %v (tFAW)", last, min)
	}
}

func TestActivationTracking(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 4, TrackActivations: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ping-pong two rows of one bank: every access is an activation of
	// one of two rows.
	rowStride := uint64(g.BanksPerSocket()) * geometry.CacheLineSize * uint64(g.RowBytes/geometry.CacheLineSize)
	const n = 5000
	for i := 0; i < n; i++ {
		pa := uint64(0)
		if i%2 == 1 {
			pa = rowStride
		}
		if _, err := c.Do(Access{PA: pa}); err != nil {
			t.Fatal(err)
		}
	}
	peak := c.Result().PeakRowACTs
	if peak < n/2-10 || peak > n/2+10 {
		t.Errorf("PeakRowACTs = %d, want ~%d", peak, n/2)
	}
	// Untracked controllers report zero.
	c2, _ := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 4})
	if _, err := c2.Do(Access{PA: 0}); err != nil {
		t.Fatal(err)
	}
	if c2.Result().PeakRowACTs != 0 {
		t.Error("untracked controller reported activations")
	}
}

// TestActivationTrackingMatchesMapReference drives trackActivation with a
// randomized stream — many banks, colliding rows, window advances AND
// regressions (per-bank start times are not globally monotone) — and checks
// the flat generation-reset tables report the same per-window counts and
// running peak as the (bank,row)-keyed map the old implementation used.
func TestActivationTrackingMatchesMapReference(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 4, TrackActivations: true})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the retired implementation, verbatim.
	refWindow := int64(-1)
	var refCounts map[[2]int]int
	refPeak := 0
	refTrack := func(bank, row int, at float64) {
		w := int64(at / refreshWindowNs)
		if w != refWindow || refCounts == nil {
			refWindow = w
			refCounts = make(map[[2]int]int)
		}
		key := [2]int{bank, row}
		refCounts[key]++
		if refCounts[key] > refPeak {
			refPeak = refCounts[key]
		}
	}

	rng := rand.New(rand.NewSource(99))
	banks := g.TotalBanks()
	at := 0.0
	for i := 0; i < 300_000; i++ {
		bank := rng.Intn(banks)
		row := rng.Intn(64) // small row space forces collisions and growth
		switch rng.Intn(100) {
		case 0: // jump forward a whole window
			at += refreshWindowNs
		case 1: // regress: an earlier bank's stream lags behind
			at -= refreshWindowNs / 2
			if at < 0 {
				at = 0
			}
		default:
			at += rng.Float64() * 100
		}
		c.trackActivation(bank, row, at)
		refTrack(bank, row, at)
		if c.peakActs != refPeak {
			t.Fatalf("step %d: peak = %d, reference %d", i, c.peakActs, refPeak)
		}
	}
	// Final per-(bank,row) counts of the live window must agree exactly.
	total := 0
	for bank := range c.actTables {
		c.actTables[bank].Range(func(row int, v int32) bool {
			if want := refCounts[[2]int{bank, row}]; int(v) != want {
				t.Fatalf("bank %d row %d: count %d, reference %d", bank, row, v, want)
			}
			total++
			return true
		})
	}
	if total != len(refCounts) {
		t.Fatalf("tables hold %d live rows, reference %d", total, len(refCounts))
	}
}

func TestMitigationHookChargesBankTime(t *testing.T) {
	g := tinyGeometry()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	// PARA at p=1 injects one refresh per miss — maximal, fully
	// deterministic charging.
	para := mitigation.NewPARA(1, 1)
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 1, Mitigation: para})
	if err != nil {
		t.Fatal(err)
	}
	base := newCtrl(t, m, 1)
	rowStride := uint64(g.RowGroupBytes())
	var mitRes, baseRes Result
	for i := 0; i < 64; i++ {
		pa := uint64(i%4) * rowStride // ping-pong: all misses, one bank group
		if _, err := c.Do(Access{PA: pa}); err != nil {
			t.Fatal(err)
		}
		if _, err := base.Do(Access{PA: pa}); err != nil {
			t.Fatal(err)
		}
	}
	mitRes, baseRes = c.Result(), base.Result()
	if mitRes.MitigationRefreshes != mitRes.RowMisses {
		t.Fatalf("refreshes = %d, want one per miss (%d)", mitRes.MitigationRefreshes, mitRes.RowMisses)
	}
	if baseRes.MitigationRefreshes != 0 {
		t.Fatalf("unmitigated run reported %d refreshes", baseRes.MitigationRefreshes)
	}
	if mitRes.TotalNs <= baseRes.TotalNs {
		t.Fatalf("mitigated run not slower: %v <= %v ns", mitRes.TotalNs, baseRes.TotalNs)
	}
	if para.Overhead().NeighborRefreshes != mitRes.MitigationRefreshes {
		t.Fatalf("mitigation ledger %d != controller ledger %d",
			para.Overhead().NeighborRefreshes, mitRes.MitigationRefreshes)
	}
}

func TestNilMitigationPathUnchanged(t *testing.T) {
	// The hook must be invisible when no mitigation is configured: results
	// with a nil Mitigation are bit-identical to the pre-hook behaviour,
	// which the jitter-seeded comparison pins down to the last float.
	g := tinyGeometry()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) Result {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		total := uint64(g.TotalBytes())
		for i := 0; i < 500; i++ {
			pa := (rng.Uint64() % total) &^ (geometry.CacheLineSize - 1)
			if _, err := c.Do(Access{PA: pa, ThinkNs: 2}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Result()
	}
	a := run(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 8, JitterSeed: 3})
	b := run(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 8, JitterSeed: 3, Mitigation: nil})
	if a != b {
		t.Fatalf("nil-mitigation results diverge:\n%+v\n%+v", a, b)
	}
}
