package memctrl

import (
	"fmt"

	"repro/internal/geometry"
)

// Cache models the CPU's last-level cache in front of the memory
// controller: a physically-indexed, set-associative, write-back LRU cache.
// Hot lines (e.g. zipfian-popular keys) are served here and never reach
// DRAM — which is why placement-only changes like Siloz's leave workload
// performance unchanged (§7.2-7.3): only the DRAM-miss stream differs, and
// its bank/row statistics are placement-invariant in aggregate.
type Cache struct {
	ways     int
	sets     int
	tags     [][]uint64 // per set, line addresses (0 = invalid)
	lru      [][]int64  // per set, last-use stamps
	clock    int64
	hitCount int64
	missed   int64
	// HitNs is the service latency of a cache hit.
	HitNs float64
}

// NewCache builds a cache of the given capacity and associativity.
func NewCache(capacityBytes int64, ways int) (*Cache, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("memctrl: ways must be positive")
	}
	lines := capacityBytes / geometry.CacheLineSize
	sets := int(lines) / ways
	if sets <= 0 {
		return nil, fmt.Errorf("memctrl: capacity %d too small for %d ways", capacityBytes, ways)
	}
	c := &Cache{ways: ways, sets: sets, HitNs: 20}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]int64, ways)
	}
	return c, nil
}

// Access looks a physical address up, filling on miss. It returns true on
// hit. Addresses are line-aligned internally.
func (c *Cache) Access(pa uint64) bool {
	line := pa &^ uint64(geometry.CacheLineSize-1)
	set := int((line / geometry.CacheLineSize) % uint64(c.sets))
	c.clock++
	tags := c.tags[set]
	for w, t := range tags {
		if t == line+1 { // +1 so 0 stays "invalid"
			c.lru[set][w] = c.clock
			c.hitCount++
			return true
		}
	}
	// Miss: fill the LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	tags[victim] = line + 1
	c.lru[set][victim] = c.clock
	c.missed++
	return false
}

// HitRate returns the fraction of accesses served by the cache.
func (c *Cache) HitRate() float64 {
	total := c.hitCount + c.missed
	if total == 0 {
		return 0
	}
	return float64(c.hitCount) / float64(total)
}

// Hits and Misses expose the raw counters.
func (c *Cache) Hits() int64   { return c.hitCount }
func (c *Cache) Misses() int64 { return c.missed }
