// Package memctrl models a DDR4 memory controller's timing behaviour at the
// level the paper's performance claims depend on: per-bank serialization of
// row activations (row buffer hits vs. misses), bank-level parallelism
// across a socket's banks (§2.4 — the >18% effect subarray groups preserve,
// §4.1), limited memory-level parallelism from the core, and NUMA locality.
//
// The controller consumes a stream of physical-address accesses and
// produces simulated execution time and throughput. It is deliberately a
// first-order model: precise absolute latencies are not the point —
// *relative* behaviour between Siloz and the baseline is, and that is
// governed by which banks and rows a mapping spreads accesses over.
package memctrl

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
	"repro/internal/rowcount"
)

// Timing holds DDR4 timing parameters in nanoseconds (DDR4-2933 defaults).
type Timing struct {
	// TRCD is the activate-to-read delay.
	TRCD float64
	// TRP is the precharge time.
	TRP float64
	// TCL is the CAS latency.
	TCL float64
	// TBurst is the data burst time for one 64-byte line.
	TBurst float64
	// TRRD is the minimum spacing between activations to the same rank.
	TRRD float64
	// TFAW is the rolling window in which a rank accepts at most four
	// activations (the four-activation-window constraint).
	TFAW float64
	// TRFC is the refresh cycle time: how long a refresh occupies a rank.
	TRFC float64
	// TREFI is the average refresh interval; one refresh is issued per
	// TREFI to meet the 64 ms retention window (§2.3).
	TREFI float64
	// RemotePenalty is the added latency for cross-socket accesses.
	RemotePenalty float64
}

// DDR4_2933 returns timings for the evaluation server's DIMMs.
func DDR4_2933() Timing {
	return Timing{
		TRCD:          13.64,
		TRP:           13.64,
		TCL:           13.64,
		TBurst:        2.73,
		TRRD:          4.9,
		TFAW:          21.0,
		TRFC:          350,
		TREFI:         7800,
		RemotePenalty: 60,
	}
}

// hitLatency is the access latency on a row buffer hit.
func (t Timing) hitLatency() float64 { return t.TCL + t.TBurst }

// missLatency is the access latency on a row buffer conflict (precharge +
// activate + CAS).
func (t Timing) missLatency() float64 { return t.TRP + t.TRCD + t.TCL + t.TBurst }

// Config parameterizes a Controller.
type Config struct {
	// Mapper is the physical-to-media decode applied per access.
	Mapper addr.Mapper
	// Timing are the DRAM timing parameters.
	Timing Timing
	// MLPWindow is the maximum number of outstanding memory accesses
	// (the core's memory-level parallelism); typical out-of-order cores
	// sustain ~10 per thread.
	MLPWindow int
	// HomeSocket is the socket the accessing cores live on, for NUMA
	// penalty accounting.
	HomeSocket int
	// JitterSeed adds bounded per-access service-time noise (±1%),
	// modelling run-to-run variance; 0 disables noise.
	JitterSeed int64
	// TrackActivations records per-row activation counts within 64 ms
	// refresh windows, the quantity Rowhammer thresholds are defined
	// over (§2.5). Costs one map update per row miss.
	TrackActivations bool
	// Mitigation, when non-nil, observes every row miss (flat bank index,
	// media row) and may inject neighbour refreshes; each injected refresh
	// occupies the target bank for a precharge+activate cycle, which is
	// how defense refresh energy becomes visible slowdown. The instance is
	// scoped to this controller run — reuse requires OnWindowEnd between
	// runs, which Reset performs.
	Mitigation mitigation.Mitigation
}

// refreshWindowNs is the DDR4 retention window (64 ms).
const refreshWindowNs = 64e6

// Access is one memory request.
type Access struct {
	// PA is the host physical address.
	PA uint64
	// Write marks stores (otherwise loads).
	Write bool
	// ThinkNs is core compute time between the previous access's issue
	// and this one.
	ThinkNs float64
}

// Result summarizes a simulated run.
type Result struct {
	// TotalNs is the simulated wall time from first issue to last
	// completion.
	TotalNs float64
	// Accesses, Reads and Writes count requests.
	Accesses, Reads, Writes int
	// RowHits and RowMisses classify row buffer behaviour.
	RowHits, RowMisses int
	// Bytes is the data volume moved.
	Bytes int64
	// PeakRowACTs is the maximum activation count any single row
	// received within one 64 ms refresh window (needs
	// Config.TrackActivations). Comparing it against a DIMM's
	// Rowhammer threshold shows whether the access stream could
	// disturb neighbours (§1, §2.5).
	PeakRowACTs int
	// MitigationRefreshes counts defense-injected neighbour refreshes the
	// controller charged as bank busy time (needs Config.Mitigation).
	MitigationRefreshes int
}

// ThroughputGBs returns achieved bandwidth in GB/s.
func (r Result) ThroughputGBs() float64 {
	if r.TotalNs == 0 {
		return 0
	}
	return float64(r.Bytes) / r.TotalNs
}

// OpsPerSec returns achieved request rate.
func (r Result) OpsPerSec() float64 {
	if r.TotalNs == 0 {
		return 0
	}
	return float64(r.Accesses) / (r.TotalNs / 1e9)
}

// HitRate returns the row buffer hit fraction.
func (r Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(r.Accesses)
}

func (r Result) String() string {
	return fmt.Sprintf("time=%.2fms ops=%d hit=%.1f%% bw=%.2fGB/s",
		r.TotalNs/1e6, r.Accesses, 100*r.HitRate(), r.ThroughputGBs())
}

// Controller simulates one run; create a fresh one (or call Reset) per run.
//
// Everything the per-access path needs is flattened into scalars and dense
// slices at Reset: geometry dimensions (so no Geometry struct is copied per
// access), latency sums (so no Timing fields are re-added per access), a
// bank->rank table (so the miss path does no division), and per-bank
// activation tables with O(1) generation reset (so refresh windows do not
// reallocate).
type Controller struct {
	cfg Config

	bankFree []float64    // per flat bank: earliest next activation
	openRow  []int        // per flat bank: row in the row buffer (-1 closed)
	faw      [][4]float64 // per rank: times of the last four activations
	fawPos   []int
	lastAct  []float64 // per rank: time of the last activation (tRRD)
	rankOf   []int32   // per flat bank: rank index
	ring     []float64 // completion times of the last MLPWindow requests
	ringPos  int
	now      float64 // issue clock
	last     float64 // latest completion
	res      Result
	rng      *rand.Rand
	runScale float64 // per-run latency scale (thermal/frequency noise)

	// Per-access decode: the mapper's col-free fast path when it has one
	// (feature-detected once at Reset), else an adapter over Decode.
	bankDec addr.BankDecoder

	// Cached geometry dimensions for BankID flattening.
	dimms, ranks, banksPerRank int
	homeSocket                 int

	// Cached timing sums (same addition order as Timing.hitLatency and
	// Timing.missLatency, so results are bit-identical to per-call sums).
	hitLat, missLat  float64
	hitOcc, missOcc  float64
	trefi, trfc      float64
	trrd, tfaw       float64
	remote           float64
	refreshModel     bool
	trackActivations bool

	// Activation tracking (Config.TrackActivations): one bounded row table
	// per flat bank, all invalidated in O(1) per table when the refresh
	// window turns over — no per-window reallocation.
	actWindow int64
	actTables []rowcount.Table[int32]
	peakActs  int

	// Mitigation hook (Config.Mitigation). mitSink is the pre-bound
	// method value handed to OnActivate so the miss path never allocates a
	// closure; mitOcc is the bank occupancy one injected refresh charges.
	mit          mitigation.Mitigation
	mitSink      mitigation.RefreshFn
	mitWindow    int64
	mitOcc       float64
	mitRefreshes int
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("memctrl: mapper required")
	}
	if cfg.MLPWindow <= 0 {
		return nil, fmt.Errorf("memctrl: MLPWindow must be positive, got %d", cfg.MLPWindow)
	}
	c := &Controller{cfg: cfg}
	c.Reset()
	return c, nil
}

// Reset clears all timing state for a new run.
func (c *Controller) Reset() {
	g := c.cfg.Mapper.Geometry()
	n := g.TotalBanks()
	c.bankFree = make([]float64, n)
	c.openRow = make([]int, n)
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	ranks := n / g.BanksPerRank
	c.faw = make([][4]float64, ranks)
	c.fawPos = make([]int, ranks)
	c.lastAct = make([]float64, ranks)
	for r := range c.faw {
		for i := range c.faw[r] {
			c.faw[r][i] = -1e18
		}
		c.lastAct[r] = -1e18
	}
	c.rankOf = make([]int32, n)
	for b := range c.rankOf {
		c.rankOf[b] = int32(b / g.BanksPerRank)
	}
	c.ring = make([]float64, c.cfg.MLPWindow)
	c.ringPos = 0
	c.now = 0
	c.last = 0
	c.res = Result{}

	c.dimms = g.DIMMsPerSocket
	c.ranks = g.RanksPerDIMM
	c.banksPerRank = g.BanksPerRank
	c.homeSocket = c.cfg.HomeSocket
	if bd, ok := c.cfg.Mapper.(addr.BankDecoder); ok {
		c.bankDec = bd
	} else {
		c.bankDec = bankAdapter{m: c.cfg.Mapper, dimms: c.dimms, ranks: c.ranks, banksPerRank: c.banksPerRank}
	}
	tm := c.cfg.Timing
	c.hitLat = tm.hitLatency()
	c.missLat = tm.missLatency()
	c.hitOcc = tm.TBurst
	c.missOcc = tm.TRP + tm.TRCD + tm.TBurst
	c.trefi, c.trfc = tm.TREFI, tm.TRFC
	c.trrd, c.tfaw = tm.TRRD, tm.TFAW
	c.remote = tm.RemotePenalty
	c.refreshModel = tm.TREFI > 0 && tm.TRFC > 0
	c.trackActivations = c.cfg.TrackActivations

	c.actWindow = -1
	switch {
	case !c.trackActivations:
		c.actTables = nil
	case len(c.actTables) == n: // reuse table capacity across runs
		for i := range c.actTables {
			c.actTables[i].Reset()
		}
	default:
		c.actTables = make([]rowcount.Table[int32], n)
	}
	c.peakActs = 0
	c.mit = c.cfg.Mitigation
	if c.mit != nil {
		c.mit.OnWindowEnd() // clear per-window state left by a prior run
		c.mitSink = c.applyMitRefresh
	} else {
		c.mitSink = nil
	}
	c.mitWindow = 0
	// One injected neighbour refresh costs a precharge + activate per
	// victim neighbourhood — the bank cannot serve demand traffic while
	// its rows are being restored.
	c.mitOcc = 2 * (tm.TRP + tm.TRCD)
	c.mitRefreshes = 0
	c.runScale = 1
	if c.cfg.JitterSeed != 0 {
		c.rng = rand.New(rand.NewSource(c.cfg.JitterSeed))
		// Per-run systematic noise (±0.3%), modelling frequency and
		// thermal drift between benchmark repetitions.
		c.runScale = 1 + (c.rng.Float64()-0.5)*0.006
	} else {
		c.rng = nil
	}
}

// Do issues one access, returning its completion time.
func (c *Controller) Do(a Access) (float64, error) {
	done, _, err := c.DoTimed(a)
	return done, err
}

// DoTimed issues one access, returning its completion time and the latency
// observable by the issuing core: completion minus the instant the request
// was ready to issue. The observable latency includes bank queueing delay —
// the contention signal DRAM timing side channels measure (§8.4).
func (c *Controller) DoTimed(a Access) (done, observed float64, err error) {
	bank, row, socket, err := c.bankDec.DecodeBank(a.PA)
	if err != nil {
		return 0, 0, err
	}

	// Core-side issue: think time plus the MLP window constraint (the
	// oldest outstanding request must have completed).
	c.now += a.ThinkNs * c.runScale
	if oldest := c.ring[c.ringPos]; oldest > c.now {
		c.now = oldest
	}
	ready := c.now

	start := c.now
	if bf := c.bankFree[bank]; bf > start {
		start = bf
	}
	var latency, occupancy float64
	missed := false
	if c.openRow[bank] == row {
		latency = c.hitLat
		occupancy = c.hitOcc
		c.res.RowHits++
	} else {
		missed = true
		// A row miss needs an activation, subject to the rank's
		// refresh, tRRD and tFAW constraints.
		rank := c.rankOf[bank]
		if c.refreshModel {
			refStart := float64(int64(start/c.trefi)) * c.trefi
			if start < refStart+c.trfc {
				start = refStart + c.trfc
			}
		}
		if t := c.lastAct[rank] + c.trrd; t > start {
			start = t
		}
		if t := c.faw[rank][c.fawPos[rank]] + c.tfaw; t > start {
			start = t
		}
		c.faw[rank][c.fawPos[rank]] = start
		c.fawPos[rank] = (c.fawPos[rank] + 1) & 3
		c.lastAct[rank] = start

		latency = c.missLat
		occupancy = c.missOcc
		c.res.RowMisses++
		c.openRow[bank] = row
		if c.trackActivations {
			c.trackActivation(bank, row, start)
		}
	}
	if socket != c.homeSocket {
		latency += c.remote
	}
	if c.rng != nil {
		latency *= c.runScale * (1 + (c.rng.Float64()-0.5)*0.02)
	}
	c.bankFree[bank] = start + occupancy*c.runScale
	if c.mit != nil && missed {
		// After the bankFree write: an injected refresh extends the
		// bank's busy time on top of this access's own occupancy.
		c.observeMit(bank, row, start)
	}
	done = start + latency
	c.ring[c.ringPos] = done
	if c.ringPos++; c.ringPos == len(c.ring) {
		c.ringPos = 0
	}
	if done > c.last {
		c.last = done
	}

	c.res.Accesses++
	if a.Write {
		c.res.Writes++
	} else {
		c.res.Reads++
	}
	c.res.Bytes += geometry.CacheLineSize
	return done, done - ready, nil
}

// trackActivation counts one row activation toward the current refresh
// window's per-row totals. Any window change — in either direction, since
// per-bank start times are not globally monotone — invalidates every bank's
// table via its generation counter, exactly as the old implementation
// discarded its whole (bank,row) map.
func (c *Controller) trackActivation(bank, row int, at float64) {
	w := int64(at / refreshWindowNs)
	if w != c.actWindow {
		c.actWindow = w
		for i := range c.actTables {
			c.actTables[i].Reset()
		}
	}
	if n := int(c.actTables[bank].Add(row, 1)); n > c.peakActs {
		c.peakActs = n
	}
}

// observeMit feeds one row miss to the attached mitigation, turning the
// refresh window over first when the activation's start time crossed a
// 64 ms boundary (per-window defense state — counters, budgets — resets
// exactly as the DRAM model's Refresh does).
func (c *Controller) observeMit(bank, row int, at float64) {
	if w := int64(at / refreshWindowNs); w != c.mitWindow {
		c.mitWindow = w
		c.mit.OnWindowEnd()
	}
	c.mit.OnActivate(mitigation.Activation{Bank: bank, Row: row, Count: 1}, c.mitSink)
}

// applyMitRefresh charges one defense-injected neighbour refresh to the
// target bank as busy time. The controller has no DRAM disturbance state
// of its own, so charge accounting is the whole effect here; protection
// legs observe the same mitigation attached at the DRAM module scope.
func (c *Controller) applyMitRefresh(bank, _ int) {
	c.bankFree[bank] += c.mitOcc
	c.mitRefreshes++
}

// Idle advances the core's clock by think-only time (e.g. trailing cache
// hits) with no DRAM access.
func (c *Controller) Idle(ns float64) {
	c.now += ns * c.runScale
	if c.now > c.last {
		c.last = c.now
	}
}

// Now returns the core's issue clock: the virtual time up to which this
// controller has issued work. The serving loop aligns request admission
// against it.
func (c *Controller) Now() float64 { return c.now }

// AdvanceTo moves the issue clock forward to at least t (e.g. to a
// request's arrival time) without extending the completion frontier:
// unlike Idle, waiting for the next arrival is not simulated work, so it
// does not count toward Result.TotalNs on its own.
func (c *Controller) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Result returns the run summary so far.
func (c *Controller) Result() Result {
	r := c.res
	r.TotalNs = c.last
	r.PeakRowACTs = c.peakActs
	r.MitigationRefreshes = c.mitRefreshes
	return r
}

// bankAdapter derives DecodeBank from a plain Mapper for mappers without
// the fast path.
type bankAdapter struct {
	m                          addr.Mapper
	dimms, ranks, banksPerRank int
}

func (a bankAdapter) DecodeBank(pa uint64) (bank, row, socket int, err error) {
	ma, err := a.m.Decode(pa)
	if err != nil {
		return 0, 0, 0, err
	}
	b := ma.Bank
	bank = ((b.Socket*a.dimms+b.DIMM)*a.ranks+b.Rank)*a.banksPerRank + b.Bank
	return bank, ma.Row, b.Socket, nil
}
