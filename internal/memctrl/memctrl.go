// Package memctrl models a DDR4 memory controller's timing behaviour at the
// level the paper's performance claims depend on: per-bank serialization of
// row activations (row buffer hits vs. misses), bank-level parallelism
// across a socket's banks (§2.4 — the >18% effect subarray groups preserve,
// §4.1), limited memory-level parallelism from the core, and NUMA locality.
//
// The controller consumes a stream of physical-address accesses and
// produces simulated execution time and throughput. It is deliberately a
// first-order model: precise absolute latencies are not the point —
// *relative* behaviour between Siloz and the baseline is, and that is
// governed by which banks and rows a mapping spreads accesses over.
package memctrl

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/geometry"
)

// Timing holds DDR4 timing parameters in nanoseconds (DDR4-2933 defaults).
type Timing struct {
	// TRCD is the activate-to-read delay.
	TRCD float64
	// TRP is the precharge time.
	TRP float64
	// TCL is the CAS latency.
	TCL float64
	// TBurst is the data burst time for one 64-byte line.
	TBurst float64
	// TRRD is the minimum spacing between activations to the same rank.
	TRRD float64
	// TFAW is the rolling window in which a rank accepts at most four
	// activations (the four-activation-window constraint).
	TFAW float64
	// TRFC is the refresh cycle time: how long a refresh occupies a rank.
	TRFC float64
	// TREFI is the average refresh interval; one refresh is issued per
	// TREFI to meet the 64 ms retention window (§2.3).
	TREFI float64
	// RemotePenalty is the added latency for cross-socket accesses.
	RemotePenalty float64
}

// DDR4_2933 returns timings for the evaluation server's DIMMs.
func DDR4_2933() Timing {
	return Timing{
		TRCD:          13.64,
		TRP:           13.64,
		TCL:           13.64,
		TBurst:        2.73,
		TRRD:          4.9,
		TFAW:          21.0,
		TRFC:          350,
		TREFI:         7800,
		RemotePenalty: 60,
	}
}

// hitLatency is the access latency on a row buffer hit.
func (t Timing) hitLatency() float64 { return t.TCL + t.TBurst }

// missLatency is the access latency on a row buffer conflict (precharge +
// activate + CAS).
func (t Timing) missLatency() float64 { return t.TRP + t.TRCD + t.TCL + t.TBurst }

// Config parameterizes a Controller.
type Config struct {
	// Mapper is the physical-to-media decode applied per access.
	Mapper addr.Mapper
	// Timing are the DRAM timing parameters.
	Timing Timing
	// MLPWindow is the maximum number of outstanding memory accesses
	// (the core's memory-level parallelism); typical out-of-order cores
	// sustain ~10 per thread.
	MLPWindow int
	// HomeSocket is the socket the accessing cores live on, for NUMA
	// penalty accounting.
	HomeSocket int
	// JitterSeed adds bounded per-access service-time noise (±1%),
	// modelling run-to-run variance; 0 disables noise.
	JitterSeed int64
	// TrackActivations records per-row activation counts within 64 ms
	// refresh windows, the quantity Rowhammer thresholds are defined
	// over (§2.5). Costs one map update per row miss.
	TrackActivations bool
}

// refreshWindowNs is the DDR4 retention window (64 ms).
const refreshWindowNs = 64e6

// Access is one memory request.
type Access struct {
	// PA is the host physical address.
	PA uint64
	// Write marks stores (otherwise loads).
	Write bool
	// ThinkNs is core compute time between the previous access's issue
	// and this one.
	ThinkNs float64
}

// Result summarizes a simulated run.
type Result struct {
	// TotalNs is the simulated wall time from first issue to last
	// completion.
	TotalNs float64
	// Accesses, Reads and Writes count requests.
	Accesses, Reads, Writes int
	// RowHits and RowMisses classify row buffer behaviour.
	RowHits, RowMisses int
	// Bytes is the data volume moved.
	Bytes int64
	// PeakRowACTs is the maximum activation count any single row
	// received within one 64 ms refresh window (needs
	// Config.TrackActivations). Comparing it against a DIMM's
	// Rowhammer threshold shows whether the access stream could
	// disturb neighbours (§1, §2.5).
	PeakRowACTs int
}

// ThroughputGBs returns achieved bandwidth in GB/s.
func (r Result) ThroughputGBs() float64 {
	if r.TotalNs == 0 {
		return 0
	}
	return float64(r.Bytes) / r.TotalNs
}

// OpsPerSec returns achieved request rate.
func (r Result) OpsPerSec() float64 {
	if r.TotalNs == 0 {
		return 0
	}
	return float64(r.Accesses) / (r.TotalNs / 1e9)
}

// HitRate returns the row buffer hit fraction.
func (r Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(r.Accesses)
}

func (r Result) String() string {
	return fmt.Sprintf("time=%.2fms ops=%d hit=%.1f%% bw=%.2fGB/s",
		r.TotalNs/1e6, r.Accesses, 100*r.HitRate(), r.ThroughputGBs())
}

// Controller simulates one run; create a fresh one (or call Reset) per run.
type Controller struct {
	cfg Config

	bankFree []float64    // per flat bank: earliest next activation
	openRow  []int        // per flat bank: row in the row buffer (-1 closed)
	faw      [][4]float64 // per rank: times of the last four activations
	fawPos   []int
	lastAct  []float64 // per rank: time of the last activation (tRRD)
	ring     []float64 // completion times of the last MLPWindow requests
	ringPos  int
	now      float64 // issue clock
	last     float64 // latest completion
	res      Result
	rng      *rand.Rand
	runScale float64 // per-run latency scale (thermal/frequency noise)

	// Activation tracking (Config.TrackActivations).
	actWindow int64
	actCounts map[[2]int]int // (bank, row) -> ACTs in the current window
	peakActs  int
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("memctrl: mapper required")
	}
	if cfg.MLPWindow <= 0 {
		return nil, fmt.Errorf("memctrl: MLPWindow must be positive, got %d", cfg.MLPWindow)
	}
	c := &Controller{cfg: cfg}
	c.Reset()
	return c, nil
}

// Reset clears all timing state for a new run.
func (c *Controller) Reset() {
	g := c.cfg.Mapper.Geometry()
	n := g.TotalBanks()
	c.bankFree = make([]float64, n)
	c.openRow = make([]int, n)
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	ranks := n / g.BanksPerRank
	c.faw = make([][4]float64, ranks)
	c.fawPos = make([]int, ranks)
	c.lastAct = make([]float64, ranks)
	for r := range c.faw {
		for i := range c.faw[r] {
			c.faw[r][i] = -1e18
		}
		c.lastAct[r] = -1e18
	}
	c.ring = make([]float64, c.cfg.MLPWindow)
	c.ringPos = 0
	c.now = 0
	c.last = 0
	c.res = Result{}
	c.actWindow = -1
	c.actCounts = nil
	c.peakActs = 0
	c.runScale = 1
	if c.cfg.JitterSeed != 0 {
		c.rng = rand.New(rand.NewSource(c.cfg.JitterSeed))
		// Per-run systematic noise (±0.3%), modelling frequency and
		// thermal drift between benchmark repetitions.
		c.runScale = 1 + (c.rng.Float64()-0.5)*0.006
	} else {
		c.rng = nil
	}
}

// Do issues one access, returning its completion time.
func (c *Controller) Do(a Access) (float64, error) {
	done, _, err := c.DoTimed(a)
	return done, err
}

// DoTimed issues one access, returning its completion time and the latency
// observable by the issuing core: completion minus the instant the request
// was ready to issue. The observable latency includes bank queueing delay —
// the contention signal DRAM timing side channels measure (§8.4).
func (c *Controller) DoTimed(a Access) (done, observed float64, err error) {
	ma, err := c.cfg.Mapper.Decode(a.PA)
	if err != nil {
		return 0, 0, err
	}
	g := c.cfg.Mapper.Geometry()
	bank := ma.Bank.Flat(g)

	// Core-side issue: think time plus the MLP window constraint (the
	// oldest outstanding request must have completed).
	c.now += a.ThinkNs * c.runScale
	if oldest := c.ring[c.ringPos]; oldest > c.now {
		c.now = oldest
	}
	ready := c.now

	start := c.now
	if bf := c.bankFree[bank]; bf > start {
		start = bf
	}
	var latency, occupancy float64
	if c.openRow[bank] == ma.Row {
		latency = c.cfg.Timing.hitLatency()
		occupancy = c.cfg.Timing.TBurst
		c.res.RowHits++
	} else {
		// A row miss needs an activation, subject to the rank's
		// refresh, tRRD and tFAW constraints.
		rank := bank / g.BanksPerRank
		tm := c.cfg.Timing
		if tm.TREFI > 0 && tm.TRFC > 0 {
			refStart := float64(int64(start/tm.TREFI)) * tm.TREFI
			if start < refStart+tm.TRFC {
				start = refStart + tm.TRFC
			}
		}
		if t := c.lastAct[rank] + tm.TRRD; t > start {
			start = t
		}
		if t := c.faw[rank][c.fawPos[rank]] + tm.TFAW; t > start {
			start = t
		}
		c.faw[rank][c.fawPos[rank]] = start
		c.fawPos[rank] = (c.fawPos[rank] + 1) % 4
		c.lastAct[rank] = start

		latency = tm.missLatency()
		occupancy = tm.TRP + tm.TRCD + tm.TBurst
		c.res.RowMisses++
		c.openRow[bank] = ma.Row
		if c.cfg.TrackActivations {
			c.trackActivation(bank, ma.Row, start)
		}
	}
	if ma.Bank.Socket != c.cfg.HomeSocket {
		latency += c.cfg.Timing.RemotePenalty
	}
	if c.rng != nil {
		latency *= c.runScale * (1 + (c.rng.Float64()-0.5)*0.02)
	}
	c.bankFree[bank] = start + occupancy*c.runScale
	done = start + latency
	c.ring[c.ringPos] = done
	c.ringPos = (c.ringPos + 1) % len(c.ring)
	if done > c.last {
		c.last = done
	}

	c.res.Accesses++
	if a.Write {
		c.res.Writes++
	} else {
		c.res.Reads++
	}
	c.res.Bytes += geometry.CacheLineSize
	return done, done - ready, nil
}

// trackActivation counts one row activation toward the current refresh
// window's per-row totals.
func (c *Controller) trackActivation(bank, row int, at float64) {
	w := int64(at / refreshWindowNs)
	if w != c.actWindow || c.actCounts == nil {
		c.actWindow = w
		c.actCounts = make(map[[2]int]int)
	}
	key := [2]int{bank, row}
	c.actCounts[key]++
	if c.actCounts[key] > c.peakActs {
		c.peakActs = c.actCounts[key]
	}
}

// Idle advances the core's clock by think-only time (e.g. trailing cache
// hits) with no DRAM access.
func (c *Controller) Idle(ns float64) {
	c.now += ns * c.runScale
	if c.now > c.last {
		c.last = c.now
	}
}

// Result returns the run summary so far.
func (c *Controller) Result() Result {
	r := c.res
	r.TotalNs = c.last
	r.PeakRowACTs = c.peakActs
	return r
}
