package memctrl

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c, err := NewCache(64*geometry.KiB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x1010) {
		t.Error("same-line access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: a set holds two lines; a third conflicting line
	// evicts the least-recently-used one.
	c, err := NewCache(2*4*geometry.CacheLineSize, 2) // 4 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(4 * geometry.CacheLineSize) // same set every stride
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestCacheCapacityAbsorbsWorkingSet(t *testing.T) {
	c, err := NewCache(1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Working set half the capacity: second pass all hits.
	lines := (1 << 19) / geometry.CacheLineSize
	for i := 0; i < lines; i++ {
		c.Access(uint64(i) * geometry.CacheLineSize)
	}
	for i := 0; i < lines; i++ {
		if !c.Access(uint64(i) * geometry.CacheLineSize) {
			t.Fatalf("line %d missed on second pass", i)
		}
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(1024, 0); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewCache(64, 16); err == nil {
		t.Error("capacity below one set accepted")
	}
	empty, err := NewCache(1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if empty.HitRate() != 0 {
		t.Error("empty cache hit rate nonzero")
	}
}

func TestControllerIdleAndStrings(t *testing.T) {
	g := tinyGeometry()
	m, _ := addr.NewSkylakeMapper(g)
	c := newCtrl(t, m, 2)
	c.Idle(500)
	if got := c.Result().TotalNs; got != 500 {
		t.Errorf("Idle total = %v", got)
	}
	if c.Result().String() == "" {
		t.Error("empty Result string")
	}
}
