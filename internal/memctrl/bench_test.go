package memctrl

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

func BenchmarkControllerStream(b *testing.B) {
	g := geometry.Default()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 10})
	if err != nil {
		b.Fatal(err)
	}
	total := uint64(g.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(Access{PA: uint64(i) * geometry.CacheLineSize % total}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := NewCache(32<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%100000) * geometry.CacheLineSize)
	}
}

// BenchmarkControllerTracked exercises the miss-heavy hammering profile the
// security experiments run: activation tracking on, ping-ponging rows so
// every access is an activation feeding the per-bank row tables.
func BenchmarkControllerTracked(b *testing.B) {
	g := geometry.Default()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 10, TrackActivations: true})
	if err != nil {
		b.Fatal(err)
	}
	rowStride := uint64(g.RowGroupBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := uint64(i%16) * rowStride
		if _, err := c.Do(Access{PA: pa}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerWithMitigation guards the miss path with a mitigation
// attached: every access is a row miss observed by a Silver Bullet
// instance, the heaviest observer in the framework (counter table probe
// plus possible safe-eviction scan).
func BenchmarkControllerWithMitigation(b *testing.B) {
	g := geometry.Default()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	sb := mitigation.NewSilverBullet(g.TotalBanks(), mitigation.DefaultSBTableSize,
		mitigation.DefaultSBThreshold, 0)
	c, err := New(Config{Mapper: m, Timing: DDR4_2933(), MLPWindow: 10, Mitigation: sb})
	if err != nil {
		b.Fatal(err)
	}
	rowStride := uint64(g.RowGroupBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := uint64(i%16) * rowStride
		if _, err := c.Do(Access{PA: pa}); err != nil {
			b.Fatal(err)
		}
	}
}
