package addr

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geometry"
)

// SpareRow describes one manufacturing spare row inside a bank (§6). Spares
// are extra wordlines that are not part of the externally-addressable row
// space; a spare physically sits next to an anchor position inside one
// subarray, which determines its electrical adjacency.
type SpareRow struct {
	// Anchor is the internal row index the spare is physically adjacent
	// to; the spare's subarray is the anchor's subarray.
	Anchor int
}

// Repair records one row repair: activations of the defective internal row
// are redirected to a spare.
type Repair struct {
	Bank geometry.BankID
	// From is the defective internal row index being repaired.
	From int
	// Spare describes where the replacement physically lives.
	Spare SpareRow
}

// InterSubarray reports whether the repair crosses a subarray boundary,
// the case that threatens subarray group isolation (§6).
func (r Repair) InterSubarray(g geometry.Geometry) bool {
	return r.From/g.RowsPerSubarray != r.Spare.Anchor/g.RowsPerSubarray
}

// RepairTable models a module's row repairs. Real DIMMs keep this table
// private; Siloz infers repaired rows via address-translation drivers, which
// the simulation represents by letting system software inspect the table.
type RepairTable struct {
	g       geometry.Geometry
	byBank  map[geometry.BankID]map[int]SpareRow // From -> Spare
	repairs []Repair
}

// NewRepairTable builds an empty repair table for g.
func NewRepairTable(g geometry.Geometry) *RepairTable {
	return &RepairTable{g: g, byBank: make(map[geometry.BankID]map[int]SpareRow)}
}

// Add records a repair. It returns an error if the row is already repaired
// or either index is out of range.
func (t *RepairTable) Add(r Repair) error {
	if r.From < 0 || r.From >= t.g.RowsPerBank {
		return fmt.Errorf("addr: repair source row %d out of range", r.From)
	}
	if r.Spare.Anchor < 0 || r.Spare.Anchor >= t.g.RowsPerBank {
		return fmt.Errorf("addr: spare anchor %d out of range", r.Spare.Anchor)
	}
	m := t.byBank[r.Bank]
	if m == nil {
		m = make(map[int]SpareRow)
		t.byBank[r.Bank] = m
	}
	if _, dup := m[r.From]; dup {
		return fmt.Errorf("addr: row %d on %v already repaired", r.From, r.Bank)
	}
	m[r.From] = r.Spare
	t.repairs = append(t.repairs, r)
	return nil
}

// Lookup returns the spare serving an internal row, if the row is repaired.
func (t *RepairTable) Lookup(bank geometry.BankID, internal int) (SpareRow, bool) {
	s, ok := t.byBank[bank][internal]
	return s, ok
}

// IsRepaired reports whether the internal row has been repaired.
func (t *RepairTable) IsRepaired(bank geometry.BankID, internal int) bool {
	_, ok := t.byBank[bank][internal]
	return ok
}

// Repairs returns all recorded repairs in insertion order.
func (t *RepairTable) Repairs() []Repair {
	out := make([]Repair, len(t.repairs))
	copy(out, t.repairs)
	return out
}

// InterSubarrayRepairs returns only the repairs that cross subarray
// boundaries — the ones whose pages Siloz must offline to preserve
// isolation (§6).
func (t *RepairTable) InterSubarrayRepairs() []Repair {
	var out []Repair
	for _, r := range t.repairs {
		if r.InterSubarray(t.g) {
			out = append(out, r)
		}
	}
	return out
}

// RepairMode selects where generated repairs place their spares.
type RepairMode int

const (
	// RepairIntraSubarray places every spare in the defective row's own
	// subarray (the behaviour §7.1 observed on the evaluation DIMMs).
	RepairIntraSubarray RepairMode = iota
	// RepairInterSubarray places every spare in a different subarray —
	// the worst case of §6.
	RepairInterSubarray
)

// GenerateRepairs populates a repair table with a fraction of rows repaired
// (the paper cites ~0.15% observed on server DIMMs), using the given mode
// and RNG. Repairs are spread uniformly over banks and rows.
func GenerateRepairs(g geometry.Geometry, mode RepairMode, fraction float64, rng *rand.Rand) (*RepairTable, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("addr: repair fraction %v out of [0,1]", fraction)
	}
	t := NewRepairTable(g)
	perBank := int(float64(g.RowsPerBank) * fraction)
	sub := g.RowsPerSubarray
	nsub := g.SubarraysPerBank()
	for flat := 0; flat < g.TotalBanks(); flat++ {
		bank := geometry.BankFromFlat(g, flat)
		used := make(map[int]bool)
		for i := 0; i < perBank; i++ {
			from := rng.Intn(g.RowsPerBank)
			if used[from] {
				continue // tolerate slight undershoot rather than loop
			}
			used[from] = true
			var anchor int
			switch mode {
			case RepairIntraSubarray:
				anchor = (from/sub)*sub + rng.Intn(sub)
			case RepairInterSubarray:
				if nsub < 2 {
					return nil, fmt.Errorf("addr: inter-subarray repairs need >=2 subarrays")
				}
				other := rng.Intn(nsub - 1)
				if other >= from/sub {
					other++
				}
				anchor = other*sub + rng.Intn(sub)
			default:
				return nil, fmt.Errorf("addr: unknown repair mode %d", mode)
			}
			if err := t.Add(Repair{Bank: bank, From: from, Spare: SpareRow{Anchor: anchor}}); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(t.repairs, func(i, j int) bool {
		a, b := t.repairs[i], t.repairs[j]
		if a.Bank != b.Bank {
			return a.Bank.Flat(g) < b.Bank.Flat(g)
		}
		return a.From < b.From
	})
	return t, nil
}
