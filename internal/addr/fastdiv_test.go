package addr

import (
	"math/rand"
	"testing"
)

// TestFastDivExhaustiveSmall checks every dividend against hardware
// division for a spread of small divisors.
func TestFastDivExhaustiveSmall(t *testing.T) {
	for _, d := range []int64{1, 2, 3, 5, 7, 12, 16, 24, 100, 192, 384, 1023, 1024, 1536} {
		const maxN = 1 << 16
		f, err := newFastDiv(d, maxN)
		if err != nil {
			t.Fatal(err)
		}
		for n := int64(0); n <= maxN; n++ {
			q, r := f.divmod(n)
			if q != n/d || r != n%d {
				t.Fatalf("d=%d n=%d: got (%d,%d), want (%d,%d)", d, n, q, r, n/d, n%d)
			}
		}
	}
}

// TestFastDivGeometryDivisors checks random dividends against hardware
// division for the divisors the mappers actually construct (row group,
// chunk, half-region, region, socket spans), over full address-space
// ranges, with the range endpoints pinned.
func TestFastDivGeometryDivisors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	divisors := []int64{
		192 * 8 << 10,            // row group, 1.5 MiB
		16 * 192 * 8 << 10,       // chunk, 24 MiB
		16 * 16 * 192 * 8 << 10,  // half region, 384 MiB
		32 * 16 * 192 * 8 << 10,  // region, 768 MiB
		192 << 30,                // socket, 192 GiB
		384 * 8 << 10,            // DDR5 row group
		256 * 8 << 10,            // HBM2 row group
		1 << 30,                  // power-of-two bank
		3 << 30,                  // 3 GiB subarray group
		(2*192<<30 - 1) | 0x5555, // adversarial odd divisor
	}
	for _, d := range divisors {
		maxN := int64(2*192)<<30 - 1 // two-socket evaluation server span
		f, err := newFastDiv(d, maxN)
		if err != nil {
			t.Fatal(err)
		}
		check := func(n int64) {
			q, r := f.divmod(n)
			if q != n/d || r != n%d {
				t.Fatalf("d=%d n=%d: got (%d,%d), want (%d,%d)", d, n, q, r, n/d, n%d)
			}
		}
		check(0)
		check(maxN)
		check(d - 1)
		check(d)
		check(d + 1)
		for i := 0; i < 200_000; i++ {
			check(rng.Int63n(maxN + 1))
		}
	}
}

func TestFastDivRejectsBadInputs(t *testing.T) {
	if _, err := newFastDiv(0, 100); err == nil {
		t.Error("divisor 0 accepted")
	}
	if _, err := newFastDiv(-3, 100); err == nil {
		t.Error("negative divisor accepted")
	}
	if _, err := newFastDiv(3, 1<<62); err == nil {
		t.Error("out-of-range maxN accepted")
	}
}
