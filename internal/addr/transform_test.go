package addr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func TestBitTransformsAreInvolutions(t *testing.T) {
	f := func(row uint16) bool {
		r := int(row) &^ (1 << 15) // keep non-negative
		return MirrorRow(MirrorRow(r)) == r &&
			InvertRow(InvertRow(r)) == r &&
			ScrambleRow(ScrambleRow(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMirrorRowSwapsPairs(t *testing.T) {
	// 0b10000 (b4=1, b3=0) becomes 0b01000 per §6.
	if got := MirrorRow(0b10000); got != 0b01000 {
		t.Errorf("MirrorRow(0b10000) = %#b, want 0b01000", got)
	}
	if got := MirrorRow(0b01000); got != 0b10000 {
		t.Errorf("MirrorRow(0b01000) = %#b, want 0b10000", got)
	}
	// b5<->b6 and b7<->b8.
	if got := MirrorRow(1 << 5); got != 1<<6 {
		t.Errorf("MirrorRow(b5) = %#b, want b6", got)
	}
	if got := MirrorRow(1 << 7); got != 1<<8 {
		t.Errorf("MirrorRow(b7) = %#b, want b8", got)
	}
	// Bits outside [b3,b8] are untouched.
	if got := MirrorRow(1<<0 | 1<<9 | 1<<12); got != 1<<0|1<<9|1<<12 {
		t.Errorf("MirrorRow moved bits outside [b3,b8]: %#b", got)
	}
}

func TestInvertRowRange(t *testing.T) {
	if got := InvertRow(0); got != 0b111111000 {
		t.Errorf("InvertRow(0) = %#b, want bits 3..8 set", got)
	}
	if got := InvertRow(1<<9 | 1<<2); got != 1<<9|1<<2|0b111111000 {
		t.Errorf("InvertRow touched bits outside [b3,b8]: %#b", got)
	}
}

func TestScrambleRowOnlyWithinEightRowBlocks(t *testing.T) {
	// §6: scrambling affects ordering within 8-row blocks but not their
	// contiguity — higher-order bits never change.
	f := func(row uint16) bool {
		r := int(row)
		return ScrambleRow(r)>>3 == r>>3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// b3=1 flips b1 and b2.
	if got := ScrambleRow(0b1000); got != 0b1110 {
		t.Errorf("ScrambleRow(0b1000) = %#b, want 0b1110", got)
	}
	if got := ScrambleRow(0b0110); got != 0b0110 {
		t.Errorf("ScrambleRow(0b0110) = %#b, want unchanged", got)
	}
}

func TestInternalRowMediaRowRoundTrip(t *testing.T) {
	g := geometry.Default()
	im := NewInternalMapper(g, AllTransforms())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bank := geometry.BankID{
			Socket: r.Intn(g.Sockets),
			DIMM:   r.Intn(g.DIMMsPerSocket),
			Rank:   r.Intn(g.RanksPerDIMM),
			Bank:   r.Intn(g.BanksPerRank),
		}
		row := r.Intn(g.RowsPerBank)
		side := Side(r.Intn(2))
		internal := im.InternalRow(bank, row, side)
		return im.MediaRow(bank, internal, side) == row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransformsPreserveSubarrayForPowerOfTwoSizes(t *testing.T) {
	// §6: for power-of-2 subarray sizes in [512, 2048], mirroring,
	// inversion and scrambling only move rows within their subarray.
	for _, rows := range []int{512, 1024, 2048} {
		g := geometry.Default().WithSubarraySize(rows)
		im := NewInternalMapper(g, AllTransforms())
		rng := rand.New(rand.NewSource(int64(rows)))
		for trial := 0; trial < 2000; trial++ {
			bank := geometry.BankFromFlat(g, rng.Intn(g.TotalBanks()))
			row := rng.Intn(g.RowsPerBank)
			for _, side := range []Side{SideA, SideB} {
				internal := im.InternalRow(bank, row, side)
				if internal/rows != row/rows {
					t.Fatalf("rows=%d: media row %d (subarray %d) mapped to internal %d (subarray %d) on %v side %v",
						rows, row, row/rows, internal, internal/rows, bank, side)
				}
			}
		}
	}
}

func TestTransformsViolateNonPowerOfTwoSubarrays(t *testing.T) {
	// §6: sizes that are not powers of two can have rows transformed
	// across subarray boundaries — the case requiring artificial groups.
	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 16, RowsPerBank: 640 * 8, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 640, // not a power of two
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	im := NewInternalMapper(g, AllTransforms())
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 0}
	violated := false
	for row := 0; row < 4*g.RowsPerSubarray; row++ {
		for _, side := range []Side{SideA, SideB} {
			if im.InternalRow(bank, row, side)/g.RowsPerSubarray != row/g.RowsPerSubarray {
				violated = true
			}
		}
	}
	if !violated {
		t.Error("expected at least one cross-subarray transform for a 640-row subarray size")
	}
}

func TestMirroringOnlyOnOddRanks(t *testing.T) {
	g := geometry.Default()
	im := NewInternalMapper(g, TransformConfig{Mirroring: true})
	even := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 3}
	odd := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 3}
	row := 0b10000
	if got := im.InternalRow(even, row, SideA); got != row {
		t.Errorf("even rank transformed row %#b -> %#b", row, got)
	}
	if got := im.InternalRow(odd, row, SideA); got != MirrorRow(row) {
		t.Errorf("odd rank: got %#b, want %#b", got, MirrorRow(row))
	}
}

func TestInversionOnlyOnBSide(t *testing.T) {
	g := geometry.Default()
	im := NewInternalMapper(g, TransformConfig{Inversion: true})
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	row := 42
	if got := im.InternalRow(bank, row, SideA); got != row {
		t.Errorf("A side transformed row %d -> %d", row, got)
	}
	if got := im.InternalRow(bank, row, SideB); got != InvertRow(row) {
		t.Errorf("B side: got %d, want %d", got, InvertRow(row))
	}
}

func TestNoTransformsIsIdentity(t *testing.T) {
	g := geometry.Default()
	im := NewInternalMapper(g, TransformConfig{})
	bank := geometry.BankID{Socket: 1, DIMM: 2, Rank: 1, Bank: 7}
	for _, row := range []int{0, 1, 511, 512, 99999} {
		for _, side := range []Side{SideA, SideB} {
			if got := im.InternalRow(bank, row, side); got != row {
				t.Errorf("identity mapper moved row %d -> %d", row, got)
			}
		}
	}
}

func TestGenerateRepairsIntra(t *testing.T) {
	g := tinyGeometry()
	rt, err := GenerateRepairs(g, RepairIntraSubarray, 0.01, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	reps := rt.Repairs()
	if len(reps) == 0 {
		t.Fatal("no repairs generated")
	}
	for _, r := range reps {
		if r.InterSubarray(g) {
			t.Errorf("intra mode produced inter-subarray repair %+v", r)
		}
	}
	if got := rt.InterSubarrayRepairs(); len(got) != 0 {
		t.Errorf("InterSubarrayRepairs = %d, want 0", len(got))
	}
}

func TestGenerateRepairsInter(t *testing.T) {
	g := tinyGeometry()
	rt, err := GenerateRepairs(g, RepairInterSubarray, 0.01, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	reps := rt.Repairs()
	if len(reps) == 0 {
		t.Fatal("no repairs generated")
	}
	for _, r := range reps {
		if !r.InterSubarray(g) {
			t.Errorf("inter mode produced intra-subarray repair %+v", r)
		}
	}
	if got := rt.InterSubarrayRepairs(); len(got) != len(reps) {
		t.Errorf("InterSubarrayRepairs = %d, want %d", len(got), len(reps))
	}
}

func TestRepairTableLookup(t *testing.T) {
	g := tinyGeometry()
	rt := NewRepairTable(g)
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	rep := Repair{Bank: bank, From: 100, Spare: SpareRow{Anchor: 700}}
	if err := rt.Add(rep); err != nil {
		t.Fatal(err)
	}
	if err := rt.Add(rep); err == nil {
		t.Error("duplicate repair accepted")
	}
	if s, ok := rt.Lookup(bank, 100); !ok || s.Anchor != 700 {
		t.Errorf("Lookup = %+v, %v", s, ok)
	}
	if _, ok := rt.Lookup(bank, 101); ok {
		t.Error("Lookup found repair for unrepaired row")
	}
	if !rt.IsRepaired(bank, 100) || rt.IsRepaired(bank, 0) {
		t.Error("IsRepaired mismatch")
	}
	if err := rt.Add(Repair{Bank: bank, From: -1, Spare: SpareRow{Anchor: 0}}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := rt.Add(Repair{Bank: bank, From: 5, Spare: SpareRow{Anchor: g.RowsPerBank}}); err == nil {
		t.Error("out-of-range anchor accepted")
	}
}
