package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// PartitionedMapper models the §8.1/§8.4 "extended addressing control"
// future: each socket's physical space is split into Partitions contiguous
// slices, and each slice interleaves its cache lines over a disjoint subset
// of the socket's banks. Pages from different partitions never share a
// bank, so logical NUMA nodes built on partitions isolate DRAM *timing*
// (bank conflicts, DRAMA-style channels) in addition to Rowhammer — at the
// cost of 1/Partitions of the bank-level parallelism per tenant.
//
// Default BIOS mappings interleave every page over all banks, making this
// isolation impossible today (§8.4); the mapper exists to quantify the
// trade-off.
type PartitionedMapper struct {
	g          geometry.Geometry
	partitions int

	banksPer      int   // banks per partition
	rowGroupBytes int64 // bytes of one partition-local row group
	partBytes     int64 // capacity of one partition
	socketBytes   int64
}

// NewPartitionedMapper builds a mapper with the given partition count;
// BanksPerSocket must divide evenly.
func NewPartitionedMapper(g geometry.Geometry, partitions int) (*PartitionedMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if partitions <= 0 || g.BanksPerSocket()%partitions != 0 {
		return nil, fmt.Errorf("addr: %d banks/socket not divisible into %d partitions",
			g.BanksPerSocket(), partitions)
	}
	m := &PartitionedMapper{
		g:           g,
		partitions:  partitions,
		banksPer:    g.BanksPerSocket() / partitions,
		socketBytes: g.SocketBytes(),
	}
	m.rowGroupBytes = int64(m.banksPer) * int64(g.RowBytes)
	m.partBytes = m.socketBytes / int64(partitions)
	return m, nil
}

// Geometry returns the geometry the mapper serves.
func (m *PartitionedMapper) Geometry() geometry.Geometry { return m.g }

// Partitions returns the partition count.
func (m *PartitionedMapper) Partitions() int { return m.partitions }

// PartitionOf returns the bank-partition index owning a physical address.
func (m *PartitionedMapper) PartitionOf(pa uint64) (socket, partition int, err error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return 0, 0, err
	}
	socket = int(pa / uint64(m.socketBytes))
	off := int64(pa % uint64(m.socketBytes))
	return socket, int(off / m.partBytes), nil
}

// Decode translates a host physical address to a media address.
func (m *PartitionedMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	socket := int(pa / uint64(m.socketBytes))
	off := int64(pa % uint64(m.socketBytes))
	part := int(off / m.partBytes)
	inPart := off % m.partBytes

	rowGroup := inPart / m.rowGroupBytes
	inGroup := inPart % m.rowGroupBytes
	line := inGroup / geometry.CacheLineSize
	inLine := int(inGroup % geometry.CacheLineSize)
	bankIdx := part*m.banksPer + int(line%int64(m.banksPer))
	lineInBank := line / int64(m.banksPer)

	return geometry.MediaAddr{
		Bank: geometry.BankFromSocketFlat(m.g, socket, bankIdx),
		Row:  int(rowGroup),
		Col:  int(lineInBank)*geometry.CacheLineSize + inLine,
	}, nil
}

// Encode is the inverse of Decode.
func (m *PartitionedMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !addr.Valid(m.g) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	bankIdx := addr.Bank.SocketFlat(m.g)
	part := bankIdx / m.banksPer
	bankInPart := int64(bankIdx % m.banksPer)
	lineInBank := int64(addr.Col / geometry.CacheLineSize)
	inLine := int64(addr.Col % geometry.CacheLineSize)
	line := lineInBank*int64(m.banksPer) + bankInPart
	inPart := int64(addr.Row)*m.rowGroupBytes + line*geometry.CacheLineSize + inLine
	off := int64(part)*m.partBytes + inPart
	return uint64(int64(addr.Bank.Socket)*m.socketBytes + off), nil
}

// Ensure interface conformance.
var _ Mapper = (*PartitionedMapper)(nil)
