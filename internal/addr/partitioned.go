package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// PartitionedMapper models the §8.1/§8.4 "extended addressing control"
// future: each socket's physical space is split into Partitions contiguous
// slices, and each slice interleaves its cache lines over a disjoint subset
// of the socket's banks. Pages from different partitions never share a
// bank, so logical NUMA nodes built on partitions isolate DRAM *timing*
// (bank conflicts, DRAMA-style channels) in addition to Rowhammer — at the
// cost of 1/Partitions of the bank-level parallelism per tenant.
//
// Default BIOS mappings interleave every page over all banks, making this
// isolation impossible today (§8.4); the mapper exists to quantify the
// trade-off.
//
// Like SkylakeMapper, the hot path runs on fastDiv dividers and an
// interleave LUT built at construction, with decodeRef as the fuzz oracle.
type PartitionedMapper struct {
	g          geometry.Geometry
	partitions int

	banksPer      int   // banks per partition
	rowGroupBytes int64 // bytes of one partition-local row group
	partBytes     int64 // capacity of one partition
	socketBytes   int64

	totalBytes  int64
	divSocket   fastDiv // by socketBytes over [0, totalBytes)
	divPart     fastDiv // by partBytes over [0, socketBytes)
	divRowGroup fastDiv // by rowGroupBytes over [0, partBytes)
	lut         *interleaveLUT
	bnd         bounds
	banksPerSkt int
}

// NewPartitionedMapper builds a mapper with the given partition count;
// BanksPerSocket must divide evenly.
func NewPartitionedMapper(g geometry.Geometry, partitions int) (*PartitionedMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if partitions <= 0 || g.BanksPerSocket()%partitions != 0 {
		return nil, fmt.Errorf("addr: %d banks/socket not divisible into %d partitions",
			g.BanksPerSocket(), partitions)
	}
	m := &PartitionedMapper{
		g:           g,
		partitions:  partitions,
		banksPer:    g.BanksPerSocket() / partitions,
		socketBytes: g.SocketBytes(),
		totalBytes:  g.TotalBytes(),
		bnd:         newBounds(g),
		banksPerSkt: g.BanksPerSocket(),
	}
	m.rowGroupBytes = int64(m.banksPer) * int64(g.RowBytes)
	m.partBytes = m.socketBytes / int64(partitions)
	var err error
	if m.divSocket, err = newFastDiv(m.socketBytes, m.totalBytes-1); err != nil {
		return nil, err
	}
	if m.divPart, err = newFastDiv(m.partBytes, m.socketBytes-1); err != nil {
		return nil, err
	}
	if m.divRowGroup, err = newFastDiv(m.rowGroupBytes, m.partBytes-1); err != nil {
		return nil, err
	}
	if m.lut, err = newInterleaveLUT(g, m.banksPer); err != nil {
		return nil, err
	}
	return m, nil
}

// Geometry returns the geometry the mapper serves.
func (m *PartitionedMapper) Geometry() geometry.Geometry { return m.g }

// Partitions returns the partition count.
func (m *PartitionedMapper) Partitions() int { return m.partitions }

// PartitionOf returns the bank-partition index owning a physical address.
func (m *PartitionedMapper) PartitionOf(pa uint64) (socket, partition int, err error) {
	if pa >= uint64(m.totalBytes) {
		return 0, 0, rangeCheck(m.g, pa)
	}
	s, off := m.divSocket.divmod(int64(pa))
	return int(s), int(m.divPart.div(off)), nil
}

// Decode translates a host physical address to a media address.
func (m *PartitionedMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if pa >= uint64(m.totalBytes) {
		return geometry.MediaAddr{}, rangeCheck(m.g, pa)
	}
	socket, off := m.divSocket.divmod(int64(pa))
	part, inPart := m.divPart.divmod(off)
	rowGroup, inGroup := m.divRowGroup.divmod(inPart)

	line := inGroup >> lineShift
	inLine := int(inGroup & (geometry.CacheLineSize - 1))
	bankInPart, lineInBank := m.lut.split(line)
	bankIdx := int(part)*m.banksPer + bankInPart
	return geometry.MediaAddr{
		Bank: m.lut.bank(int(socket), bankIdx),
		Row:  int(rowGroup),
		Col:  lineInBank<<lineShift + inLine,
	}, nil
}

// DecodeBank is the col-free fast path of Decode (BankDecoder).
func (m *PartitionedMapper) DecodeBank(pa uint64) (bank, row, socket int, err error) {
	if pa >= uint64(m.totalBytes) {
		return 0, 0, 0, rangeCheck(m.g, pa)
	}
	skt, off := m.divSocket.divmod(int64(pa))
	part, inPart := m.divPart.divmod(off)
	rowGroup, inGroup := m.divRowGroup.divmod(inPart)
	bankInPart, _ := m.lut.split(inGroup >> lineShift)
	bank = int(skt)*m.banksPerSkt + int(part)*m.banksPer + bankInPart
	return bank, int(rowGroup), int(skt), nil
}

// Encode is the inverse of Decode.
func (m *PartitionedMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !m.bnd.valid(addr) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	bankIdx := m.bnd.socketFlat(addr.Bank)
	part := bankIdx / m.banksPer
	bankInPart := int64(bankIdx % m.banksPer)
	lineInBank := int64(addr.Col >> lineShift)
	inLine := int64(addr.Col & (geometry.CacheLineSize - 1))
	line := lineInBank*int64(m.banksPer) + bankInPart
	inPart := int64(addr.Row)*m.rowGroupBytes + line<<lineShift + inLine
	off := int64(part)*m.partBytes + inPart
	return uint64(int64(addr.Bank.Socket)*m.socketBytes + off), nil
}

// decodeRef is the original divide/modulo implementation of Decode, kept as
// the oracle for the fuzz equivalence tests.
func (m *PartitionedMapper) decodeRef(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	socket := int(pa / uint64(m.socketBytes))
	off := int64(pa % uint64(m.socketBytes))
	part := int(off / m.partBytes)
	inPart := off % m.partBytes

	rowGroup := inPart / m.rowGroupBytes
	inGroup := inPart % m.rowGroupBytes
	line := inGroup / geometry.CacheLineSize
	inLine := int(inGroup % geometry.CacheLineSize)
	bankIdx := part*m.banksPer + int(line%int64(m.banksPer))
	lineInBank := line / int64(m.banksPer)

	return geometry.MediaAddr{
		Bank: geometry.BankFromSocketFlat(m.g, socket, bankIdx),
		Row:  int(rowGroup),
		Col:  int(lineInBank)*geometry.CacheLineSize + inLine,
	}, nil
}

// Ensure interface conformance.
var _ Mapper = (*PartitionedMapper)(nil)
