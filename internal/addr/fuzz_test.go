package addr

import (
	"testing"

	"repro/internal/geometry"
)

// FuzzSkylakeRoundTrip checks Decode/Encode bijectivity and validity for
// arbitrary physical addresses (out-of-range inputs must error, in-range
// ones must round-trip).
func FuzzSkylakeRoundTrip(f *testing.F) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0))
	f.Add(uint64(g.TotalBytes()) - 1)
	f.Add(uint64(g.SocketBytes()))
	f.Add(uint64(768)<<20 - 64)
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, pa uint64) {
		ma, err := m.Decode(pa)
		if pa >= uint64(g.TotalBytes()) {
			if err == nil {
				t.Fatalf("out-of-range pa %#x decoded", pa)
			}
			return
		}
		if err != nil {
			t.Fatalf("Decode(%#x): %v", pa, err)
		}
		if !ma.Valid(g) {
			t.Fatalf("Decode(%#x) invalid: %v", pa, ma)
		}
		back, err := m.Encode(ma)
		if err != nil || back != pa {
			t.Fatalf("round trip %#x -> %v -> %#x (%v)", pa, ma, back, err)
		}
	})
}

// FuzzInternalRowRoundTrip checks the transform chain inverse for arbitrary
// rows, ranks and sides.
func FuzzInternalRowRoundTrip(f *testing.F) {
	g := geometry.Default()
	im := NewInternalMapper(g, AllTransforms())
	f.Add(0, 0, false)
	f.Add(131071, 1, true)
	f.Add(24, 1, true)
	f.Fuzz(func(t *testing.T, row, rank int, sideB bool) {
		if row < 0 || row >= g.RowsPerBank || rank < 0 || rank >= g.RanksPerDIMM {
			return
		}
		bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: rank, Bank: 0}
		side := SideA
		if sideB {
			side = SideB
		}
		internal := im.InternalRow(bank, row, side)
		if got := im.MediaRow(bank, internal, side); got != row {
			t.Fatalf("inverse failed: %d -> %d -> %d", row, internal, got)
		}
		// Power-of-two subarray membership preserved (§6).
		if internal/g.RowsPerSubarray != row/g.RowsPerSubarray {
			t.Fatalf("row %d left its subarray (internal %d)", row, internal)
		}
	})
}
