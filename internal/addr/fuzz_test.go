package addr

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// FuzzSkylakeRoundTrip checks Decode/Encode bijectivity and validity for
// arbitrary physical addresses (out-of-range inputs must error, in-range
// ones must round-trip).
func FuzzSkylakeRoundTrip(f *testing.F) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0))
	f.Add(uint64(g.TotalBytes()) - 1)
	f.Add(uint64(g.SocketBytes()))
	f.Add(uint64(768)<<20 - 64)
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, pa uint64) {
		ma, err := m.Decode(pa)
		if pa >= uint64(g.TotalBytes()) {
			if err == nil {
				t.Fatalf("out-of-range pa %#x decoded", pa)
			}
			return
		}
		if err != nil {
			t.Fatalf("Decode(%#x): %v", pa, err)
		}
		if !ma.Valid(g) {
			t.Fatalf("Decode(%#x) invalid: %v", pa, ma)
		}
		back, err := m.Encode(ma)
		if err != nil || back != pa {
			t.Fatalf("round trip %#x -> %v -> %#x (%v)", pa, ma, back, err)
		}
	})
}

// refMapper is a Mapper whose fast Decode has a retained divide/modulo
// reference implementation to compare against.
type refMapper interface {
	Mapper
	decodeRef(pa uint64) (geometry.MediaAddr, error)
}

// equivalenceMappers builds one mapper per geometry in use across the repo:
// the evaluation server, the DDR5 and HBM2 variants (§8.2), a sub-NUMA
// cluster split (§8.1), the reduced geometries the registry benchmarks and
// cmd/siloz-infer run on, and partitioned mappers at several splits.
func equivalenceMappers(t testing.TB) []refMapper {
	t.Helper()
	benchG := geometry.Geometry{
		Sockets: 2, CoresPerSocket: 8, DIMMsPerSocket: 2, RanksPerDIMM: 2,
		BanksPerRank: 4, RowsPerBank: 4096, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
	inferG := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 8192, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 1024,
	}
	snc, err := geometry.Default().WithSNC(2)
	if err != nil {
		t.Fatal(err)
	}
	var ms []refMapper
	for _, g := range []geometry.Geometry{
		geometry.Default(), geometry.DDR5Server(), geometry.HBM2Server(),
		snc, benchG, inferG,
	} {
		sky, err := NewSkylakeMapper(g)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := NewLinearMapper(g)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, sky, lin)
		for _, parts := range []int{2, 4} {
			if g.BanksPerSocket()%parts != 0 {
				continue
			}
			pm, err := NewPartitionedMapper(g, parts)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, pm)
		}
	}
	return ms
}

// checkFastPathAt demands that the LUT/reciprocal fast path and the
// divide/modulo reference agree at pa — same media address or same error —
// and that the fast Encode inverts the fast Decode exactly.
func checkFastPathAt(t *testing.T, m refMapper, pa uint64) {
	t.Helper()
	fast, fastErr := m.Decode(pa)
	ref, refErr := m.decodeRef(pa)
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("%T Decode(%#x): fast err %v, ref err %v", m, pa, fastErr, refErr)
	}
	if fastErr != nil {
		return
	}
	if fast != ref {
		t.Fatalf("%T Decode(%#x): fast %v, ref %v", m, pa, fast, ref)
	}
	back, err := m.Encode(fast)
	if err != nil || back != pa {
		t.Fatalf("%T round trip %#x -> %v -> %#x (%v)", m, pa, fast, back, err)
	}
	bank, row, socket, err := m.(BankDecoder).DecodeBank(pa)
	if err != nil {
		t.Fatalf("%T DecodeBank(%#x): %v", m, pa, err)
	}
	if bank != fast.Bank.Flat(m.Geometry()) || row != fast.Row || socket != fast.Bank.Socket {
		t.Fatalf("%T DecodeBank(%#x) = (%d,%d,%d), Decode says (%d,%d,%d)",
			m, pa, bank, row, socket, fast.Bank.Flat(m.Geometry()), fast.Row, fast.Bank.Socket)
	}
}

// FuzzMapperFastPathEquivalence cross-checks the fast Decode path against
// the retained reference arithmetic for every geometry in use.
func FuzzMapperFastPathEquivalence(f *testing.F) {
	ms := equivalenceMappers(f)
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(768)<<20-64, uint8(0))
	f.Add(uint64(geometry.Default().SocketBytes()), uint8(0))
	f.Add(^uint64(0), uint8(3))
	for i := range ms {
		f.Add(uint64(geometry.Default().TotalBytes())-1, uint8(i))
	}
	f.Fuzz(func(t *testing.T, pa uint64, which uint8) {
		checkFastPathAt(t, ms[int(which)%len(ms)], pa)
	})
}

// TestMapperFastPathEquivalence sweeps randomized and boundary addresses
// through every mapper on every normal test run (the fuzzer only replays
// its seed corpus under plain `go test`).
func TestMapperFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range equivalenceMappers(t) {
		total := uint64(m.Geometry().TotalBytes())
		for _, pa := range []uint64{0, 63, 64, total - 1, total, total + 4096} {
			checkFastPathAt(t, m, pa)
		}
		for i := 0; i < 20_000; i++ {
			checkFastPathAt(t, m, rng.Uint64()%total)
		}
	}
}

// FuzzInternalRowRoundTrip checks the transform chain inverse for arbitrary
// rows, ranks and sides.
func FuzzInternalRowRoundTrip(f *testing.F) {
	g := geometry.Default()
	im := NewInternalMapper(g, AllTransforms())
	f.Add(0, 0, false)
	f.Add(131071, 1, true)
	f.Add(24, 1, true)
	f.Fuzz(func(t *testing.T, row, rank int, sideB bool) {
		if row < 0 || row >= g.RowsPerBank || rank < 0 || rank >= g.RanksPerDIMM {
			return
		}
		bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: rank, Bank: 0}
		side := SideA
		if sideB {
			side = SideB
		}
		internal := im.InternalRow(bank, row, side)
		if got := im.MediaRow(bank, internal, side); got != row {
			t.Fatalf("inverse failed: %d -> %d -> %d", row, internal, got)
		}
		// Power-of-two subarray membership preserved (§6).
		if internal/g.RowsPerSubarray != row/g.RowsPerSubarray {
			t.Fatalf("row %d left its subarray (internal %d)", row, internal)
		}
	})
}
