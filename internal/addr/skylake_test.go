package addr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

// tinyGeometry is small enough for exhaustive scans: 4 banks/socket, 16 MiB
// banks, 64 MiB/socket, 512-row subarrays (16 MiB subarray groups).
func tinyGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    2,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func TestSkylakeRoundTripExhaustiveTiny(t *testing.T) {
	g := tinyGeometry()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(g.TotalBytes())
	linesPerRow := g.RowBytes / geometry.CacheLineSize
	seen := make([]bool, total/geometry.CacheLineSize)
	covered := 0
	for pa := uint64(0); pa < total; pa += geometry.CacheLineSize {
		ma, err := m.Decode(pa)
		if err != nil {
			t.Fatalf("Decode(%#x): %v", pa, err)
		}
		if !ma.Valid(g) {
			t.Fatalf("Decode(%#x) = %v invalid", pa, ma)
		}
		idx := (ma.Bank.Flat(g)*g.RowsPerBank+ma.Row)*linesPerRow + ma.Col/geometry.CacheLineSize
		if seen[idx] {
			t.Fatalf("Decode collision at %v (pa=%#x)", ma, pa)
		}
		seen[idx] = true
		covered++
		back, err := m.Encode(ma)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ma, err)
		}
		if back != pa {
			t.Fatalf("Encode(Decode(%#x)) = %#x", pa, back)
		}
	}
	if want := int(total / geometry.CacheLineSize); covered != want {
		t.Fatalf("covered %d media lines, want %d", covered, want)
	}
}

func TestSkylakeRoundTripPropertyDefault(t *testing.T) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pa := uint64(r.Int63n(g.TotalBytes()))
		ma, err := m.Decode(pa)
		if err != nil || !ma.Valid(g) {
			return false
		}
		back, err := m.Encode(ma)
		return err == nil && back == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSkylakeCacheLineBankInterleaving(t *testing.T) {
	// §2.4: sequential cache lines spread across all of a socket's banks.
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	banks := g.BanksPerSocket()
	seen := make(map[int]bool)
	var prev geometry.MediaAddr
	for i := 0; i < banks; i++ {
		pa := uint64(i * geometry.CacheLineSize)
		ma, err := m.Decode(pa)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && ma.Bank == prev.Bank {
			t.Fatalf("lines %d and %d hit the same bank %v", i-1, i, ma.Bank)
		}
		seen[ma.Bank.SocketFlat(g)] = true
		prev = ma
	}
	if len(seen) != banks {
		t.Fatalf("first %d lines touched %d banks, want all %d", banks, len(seen), banks)
	}
}

func TestSkylakeRowGroupsAscendWithChunks(t *testing.T) {
	// §4.2: ascending physical addresses populate ascending row groups
	// within a chunk; chunk k covers row groups [k*n, (k+1)*n).
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	chunk := m.ChunkBytes()
	for c := int64(0); c < 4; c++ {
		base := uint64(c * chunk)
		first, err := m.Decode(base)
		if err != nil {
			t.Fatal(err)
		}
		last, err := m.Decode(base + uint64(chunk) - geometry.CacheLineSize)
		if err != nil {
			t.Fatal(err)
		}
		wantFirst := int(2 * c * RowGroupsPerChunk) // A-range chunks fill even media chunks
		if first.Row != wantFirst {
			t.Errorf("chunk %d starts at row group %d, want %d", c, first.Row, wantFirst)
		}
		if last.Row != wantFirst+RowGroupsPerChunk-1 {
			t.Errorf("chunk %d ends at row group %d, want %d", c, last.Row, wantFirst+RowGroupsPerChunk-1)
		}
	}
}

func TestSkylakeABAlternation(t *testing.T) {
	// The first chunk of range B (upper half of the socket's physical
	// space) populates media chunk 1, i.e. row groups [n, 2n).
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	bStart := uint64(g.SocketBytes() / 2)
	ma, err := m.Decode(bStart)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Row != RowGroupsPerChunk {
		t.Errorf("range B starts at row group %d, want %d", ma.Row, RowGroupsPerChunk)
	}
}

func TestSkylakeMappingJump(t *testing.T) {
	// §4.2: at each region boundary the pattern repeats with new ranges —
	// physical range A continues into region r+1's media space, so the
	// media row group jumps by a full region rather than one chunk.
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	half := uint64(m.RegionBytes() / 2)
	before, err := m.Decode(half - geometry.CacheLineSize)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Decode(half)
	if err != nil {
		t.Fatal(err)
	}
	rowGroupsPerRegion := int(m.RegionBytes() / g.RowGroupBytes())
	// Last A-chunk of region 0 ends at row group rowGroupsPerRegion-n-? :
	// A fills even chunks, so its last row group is the end of media
	// chunk ChunksPerRegion-2.
	wantBefore := rowGroupsPerRegion - RowGroupsPerChunk - 1
	if before.Row != wantBefore {
		t.Errorf("last A byte of region 0 in row group %d, want %d", before.Row, wantBefore)
	}
	if after.Row != rowGroupsPerRegion {
		t.Errorf("first A byte of region 1 in row group %d, want %d", after.Row, rowGroupsPerRegion)
	}
}

// subarrayGroupOf returns the subarray group index of a media address.
func subarrayGroupOf(g geometry.Geometry, ma geometry.MediaAddr) int {
	return ma.Row / g.RowsPerSubarray
}

func TestSkylake2MiBPagesStayInOneSubarrayGroup(t *testing.T) {
	// §4.2: every 2 MiB page maps to a single subarray group, for all
	// three commodity subarray sizes.
	for _, rows := range []int{512, 1024, 2048} {
		g := geometry.Default().WithSubarraySize(rows)
		m, err := NewSkylakeMapper(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			page := uint64(rng.Int63n(g.TotalBytes()/geometry.PageSize2M)) * geometry.PageSize2M
			first, err := m.Decode(page)
			if err != nil {
				t.Fatal(err)
			}
			want := subarrayGroupOf(g, first)
			for off := uint64(0); off < geometry.PageSize2M; off += 64 * geometry.KiB {
				ma, err := m.Decode(page + off)
				if err != nil {
					t.Fatal(err)
				}
				if got := subarrayGroupOf(g, ma); got != want {
					t.Fatalf("rows=%d page %#x offset %#x in group %d, start in group %d",
						rows, page, off, got, want)
				}
			}
		}
	}
}

func TestSkylake1GiBPagesThirdInSingleSet(t *testing.T) {
	// §4.2: at least 1/3 of 1 GiB ranges map into a single 3 GiB set of
	// consecutive subarray groups; the rest straddle set boundaries.
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	const setBytes = 3 * geometry.GiB
	nPages := g.SocketBytes() / geometry.PageSize1G
	inSingle := 0
	for p := int64(0); p < nPages; p++ {
		base := uint64(p * geometry.PageSize1G)
		lo, hi := int64(1)<<62, int64(-1)
		// Media offsets move in whole chunks; sampling chunk starts and
		// ends bounds the media span exactly.
		for off := int64(0); off < geometry.PageSize1G; off += m.ChunkBytes() {
			end := off + m.ChunkBytes()
			if end > geometry.PageSize1G {
				end = geometry.PageSize1G
			}
			for _, o := range []uint64{uint64(off), uint64(end) - geometry.CacheLineSize} {
				ma, err := m.Decode(base + o)
				if err != nil {
					t.Fatal(err)
				}
				mo := int64(ma.Row) * g.RowGroupBytes()
				if mo < lo {
					lo = mo
				}
				if mo > hi {
					hi = mo
				}
			}
		}
		if lo/setBytes == hi/setBytes {
			inSingle++
		}
	}
	frac := float64(inSingle) / float64(nPages)
	if frac < 1.0/3.0 {
		t.Fatalf("only %.2f of 1 GiB pages map to a single 3 GiB set, want >= 1/3", frac)
	}
	if frac > 0.99 {
		t.Fatalf("%.2f of 1 GiB pages map to single sets; the mapping jump should break some", frac)
	}
}

func TestSkylakeSocketSplit(t *testing.T) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	ma0, err := m.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if ma0.Bank.Socket != 0 {
		t.Errorf("pa 0 on socket %d", ma0.Bank.Socket)
	}
	ma1, err := m.Decode(uint64(g.SocketBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ma1.Bank.Socket != 1 {
		t.Errorf("pa at socket boundary on socket %d", ma1.Bank.Socket)
	}
}

func TestSkylakeOutOfRange(t *testing.T) {
	g := tinyGeometry()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Decode(uint64(g.TotalBytes())); err == nil {
		t.Error("Decode accepted out-of-range pa")
	}
	if _, err := m.Encode(geometry.MediaAddr{Bank: geometry.BankID{Socket: 9}}); err == nil {
		t.Error("Encode accepted invalid media address")
	}
}

func TestLinearMapperRoundTrip(t *testing.T) {
	g := tinyGeometry()
	m, err := NewLinearMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pa := uint64(r.Int63n(g.TotalBytes()))
		ma, err := m.Decode(pa)
		if err != nil || !ma.Valid(g) {
			return false
		}
		back, err := m.Encode(ma)
		return err == nil && back == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearMapperNoInterleaving(t *testing.T) {
	// Sequential addresses stay in one bank for a whole bank's capacity.
	g := tinyGeometry()
	m, err := NewLinearMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	last, err := m.Decode(uint64(g.BankBytes()) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Bank != last.Bank {
		t.Errorf("linear mapper spread one bank's range across banks %v and %v", first.Bank, last.Bank)
	}
	next, err := m.Decode(uint64(g.BankBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if next.Bank == first.Bank {
		t.Error("linear mapper did not advance banks after a bank's capacity")
	}
}

func TestPartitionedMapperRoundTrip(t *testing.T) {
	g := tinyGeometry()
	m, err := NewPartitionedMapper(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pa := uint64(r.Int63n(g.TotalBytes()))
		ma, err := m.Decode(pa)
		if err != nil || !ma.Valid(g) {
			return false
		}
		back, err := m.Encode(ma)
		return err == nil && back == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionedMapperDisjointBanks(t *testing.T) {
	// §8.4: pages from different partitions never share a bank.
	g := tinyGeometry()
	m, err := NewPartitionedMapper(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	half := uint64(g.SocketBytes() / 2)
	banks0 := map[int]bool{}
	banks1 := map[int]bool{}
	for off := uint64(0); off < 64*geometry.KiB; off += geometry.CacheLineSize {
		ma0, err := m.Decode(off)
		if err != nil {
			t.Fatal(err)
		}
		banks0[ma0.Bank.SocketFlat(g)] = true
		ma1, err := m.Decode(half + off)
		if err != nil {
			t.Fatal(err)
		}
		banks1[ma1.Bank.SocketFlat(g)] = true
	}
	for b := range banks0 {
		if banks1[b] {
			t.Fatalf("bank %d shared between partitions", b)
		}
	}
	if len(banks0) != g.BanksPerSocket()/2 || len(banks1) != g.BanksPerSocket()/2 {
		t.Errorf("partition bank counts: %d, %d", len(banks0), len(banks1))
	}
	if _, _, err := m.PartitionOf(half); err != nil {
		t.Fatal(err)
	}
	if _, p, _ := m.PartitionOf(half); p != 1 {
		t.Errorf("PartitionOf(half) = %d, want 1", p)
	}
	if _, err := NewPartitionedMapper(g, 3); err == nil {
		t.Error("indivisible partition count accepted")
	}
}
