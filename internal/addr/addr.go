// Package addr implements physical-to-media address translation for server
// DRAM, mirroring the decode logic Siloz ports from the Intel Skylake EDAC
// drivers (§5.3), plus the DIMM-internal row-address transformations of §6
// (DDR4 rank mirroring, B-side inversion, vendor scrambling, and row repairs).
//
// Two layers of translation are modelled:
//
//  1. Physical→media (Mapper): the memory controller's fixed, BIOS-defined
//     mapping from host physical addresses to (bank, row, column) media
//     addresses, interleaving cache lines across a socket's banks for
//     bank-level parallelism (§2.4).
//  2. Media→internal (InternalMapper): the DIMM's private remapping of row
//     media addresses to internal row locations, which determines true
//     electrical adjacency for Rowhammer purposes (§6).
package addr

import (
	"errors"
	"fmt"

	"repro/internal/geometry"
)

// ErrOutOfRange is returned when an address falls outside the geometry's
// populated DRAM.
var ErrOutOfRange = errors.New("addr: address out of range")

// Mapper translates between host physical addresses and media addresses.
// Implementations must be exact bijections over [0, TotalBytes).
type Mapper interface {
	// Decode translates a host physical address to a media address.
	Decode(pa uint64) (geometry.MediaAddr, error)
	// Encode is the inverse of Decode.
	Encode(m geometry.MediaAddr) (uint64, error)
	// Geometry returns the geometry the mapper was built for.
	Geometry() geometry.Geometry
}

// Side identifies one of the two internal half-rows of a DDR4 row (§2.3).
// Each 8 KiB external row is split across a rank's "A" and "B" sides, each
// half simultaneously serving half of a data request.
type Side int

const (
	// SideA is the non-inverted half-row.
	SideA Side = iota
	// SideB is the half-row whose lower-order row address bits are
	// inverted per DDR4RCD02 (§6).
	SideB
)

func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// rangeCheck validates pa against g.
func rangeCheck(g geometry.Geometry, pa uint64) error {
	if pa >= uint64(g.TotalBytes()) {
		return fmt.Errorf("%w: pa=%#x >= %#x", ErrOutOfRange, pa, g.TotalBytes())
	}
	return nil
}
