// Package addr implements physical-to-media address translation for server
// DRAM, mirroring the decode logic Siloz ports from the Intel Skylake EDAC
// drivers (§5.3), plus the DIMM-internal row-address transformations of §6
// (DDR4 rank mirroring, B-side inversion, vendor scrambling, and row repairs).
//
// Two layers of translation are modelled:
//
//  1. Physical→media (Mapper): the memory controller's fixed, BIOS-defined
//     mapping from host physical addresses to (bank, row, column) media
//     addresses, interleaving cache lines across a socket's banks for
//     bank-level parallelism (§2.4).
//  2. Media→internal (InternalMapper): the DIMM's private remapping of row
//     media addresses to internal row locations, which determines true
//     electrical adjacency for Rowhammer purposes (§6).
package addr

import (
	"errors"
	"fmt"

	"repro/internal/geometry"
)

// ErrOutOfRange is returned when an address falls outside the geometry's
// populated DRAM.
var ErrOutOfRange = errors.New("addr: address out of range")

// Mapper translates between host physical addresses and media addresses.
// Implementations must be exact bijections over [0, TotalBytes).
type Mapper interface {
	// Decode translates a host physical address to a media address.
	Decode(pa uint64) (geometry.MediaAddr, error)
	// Encode is the inverse of Decode.
	Encode(m geometry.MediaAddr) (uint64, error)
	// Geometry returns the geometry the mapper was built for.
	Geometry() geometry.Geometry
}

// BankDecoder is an optional fast-path capability a Mapper may implement
// for callers that only steer on bank, row and socket (the memory
// controller's per-access decode): it skips assembling the structured
// BankID and the column offset. bank is the dense server-wide index
// BankID.Flat would return. Callers feature-detect it once with a type
// assertion and must fall back to Decode when absent; both paths return
// identical coordinates.
type BankDecoder interface {
	// DecodeBank returns pa's flat bank index, row, and socket.
	DecodeBank(pa uint64) (bank, row, socket int, err error)
}

// Kind selects a physical-to-media mapping family.
type Kind int

const (
	// KindSkylake is the Skylake-like interleaved mapping of §4.2, the
	// mapping of the paper's evaluation server and the default everywhere.
	KindSkylake Kind = iota
	// KindLinear is the no-interleave ablation mapping: addresses fill one
	// bank completely before moving to the next.
	KindLinear
)

func (k Kind) String() string {
	switch k {
	case KindSkylake:
		return "skylake"
	case KindLinear:
		return "linear"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NewMapper builds a mapper of the given kind for g. It is the constructor
// callers should use unless they need a concrete type's extra methods
// (SkylakeMapper.ChunkBytes, PartitionedMapper.PartitionOf); the LUT and
// reciprocal-divider fast paths are wired up behind it either way.
// Partitioned mappings take a partition count and keep their dedicated
// NewPartitionedMapper constructor.
func NewMapper(g geometry.Geometry, k Kind) (Mapper, error) {
	switch k {
	case KindSkylake:
		return NewSkylakeMapper(g)
	case KindLinear:
		return NewLinearMapper(g)
	}
	return nil, fmt.Errorf("addr: unknown mapper kind %d", int(k))
}

// Side identifies one of the two internal half-rows of a DDR4 row (§2.3).
// Each 8 KiB external row is split across a rank's "A" and "B" sides, each
// half simultaneously serving half of a data request.
type Side int

const (
	// SideA is the non-inverted half-row.
	SideA Side = iota
	// SideB is the half-row whose lower-order row address bits are
	// inverted per DDR4RCD02 (§6).
	SideB
)

func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// rangeCheck validates pa against g.
func rangeCheck(g geometry.Geometry, pa uint64) error {
	if pa >= uint64(g.TotalBytes()) {
		return fmt.Errorf("%w: pa=%#x >= %#x", ErrOutOfRange, pa, g.TotalBytes())
	}
	return nil
}
