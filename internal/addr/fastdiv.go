package addr

import (
	"fmt"
	"math/bits"
)

// fastDiv divides nonnegative int64 values by a fixed positive divisor
// without a hardware divide. The decode hot path performs four to six
// divisions by geometry-derived constants (socket capacity, mapping-region
// span, chunk span, row-group span) per translated cache line; because the
// divisors are only known at mapper construction, the compiler cannot
// strength-reduce them, and a 64-bit divide costs ~20-40 cycles on server
// cores. fastDiv precomputes either a shift (power-of-two divisors) or a
// rounded-up reciprocal so each division becomes one widening multiply plus
// a shift.
//
// The reciprocal form is exact for all 0 <= n <= maxN: with
// m = floor(2^s/d)+1 and s = bitlen(maxN)+bitlen(d), the error term
// n*(m*d-2^s)/(d*2^s) is strictly below 1/d, which can never carry
// floor(n/d) past the next integer. Construction rejects maxN >= 2^62 so
// the reciprocal always fits in 64 bits.
type fastDiv struct {
	d    int64
	m    uint64 // reciprocal multiplier (non-power-of-two divisors)
	s    uint   // reciprocal shift
	pow2 uint   // shift for power-of-two divisors
	mask int64  // d-1 for power-of-two divisors
}

// newFastDiv builds a divider for divisor d valid over dividends [0, maxN].
func newFastDiv(d, maxN int64) (fastDiv, error) {
	if d <= 0 {
		return fastDiv{}, fmt.Errorf("addr: fastDiv divisor must be positive, got %d", d)
	}
	if maxN < 0 || maxN >= 1<<62 {
		return fastDiv{}, fmt.Errorf("addr: fastDiv range [0,%d] out of bounds", maxN)
	}
	if d&(d-1) == 0 {
		return fastDiv{d: d, m: 0, pow2: uint(bits.TrailingZeros64(uint64(d))), mask: d - 1}, nil
	}
	s := uint(bits.Len64(uint64(maxN))) + uint(bits.Len64(uint64(d)))
	var m uint64
	if s < 64 {
		m = uint64(1)<<s/uint64(d) + 1
	} else {
		q, _ := bits.Div64(uint64(1)<<(s-64), 0, uint64(d))
		m = q + 1
	}
	return fastDiv{d: d, m: m, s: s}, nil
}

// div returns n / d for n within the constructed range.
func (f fastDiv) div(n int64) int64 {
	if f.m == 0 {
		return n >> f.pow2
	}
	hi, lo := bits.Mul64(uint64(n), f.m)
	if f.s >= 64 {
		return int64(hi >> (f.s - 64))
	}
	return int64(hi<<(64-f.s) | lo>>f.s)
}

// divmod returns (n / d, n % d) for n within the constructed range.
func (f fastDiv) divmod(n int64) (q, r int64) {
	if f.m == 0 {
		return n >> f.pow2, n & f.mask
	}
	q = f.div(n)
	return q, n - q*f.d
}
