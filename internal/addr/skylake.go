package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// Skylake-like mapping constants (§4.2). On the evaluation server one row
// group is 1.5 MiB (192 banks × 8 KiB), a chunk is 16 row groups (24 MiB),
// and a mapping region — the span between the paper's 768 MiB-aligned
// "jumps" — is 32 chunks (768 MiB).
const (
	// RowGroupsPerChunk is the paper's n: each individually-contiguous
	// physical range populates n row groups at a time.
	RowGroupsPerChunk = 16
	// ChunksPerRegion is the number of chunks between mapping jumps;
	// half are populated by range A, half by range B.
	ChunksPerRegion = 32
)

// SkylakeMapper models the Intel Skylake server physical-to-media address
// mapping described in §4.2:
//
//   - Each socket owns a contiguous slice of the physical address space.
//   - Within a row group, consecutive cache lines are interleaved round-robin
//     across all of the socket's banks (bank-level parallelism, §2.4).
//   - Row groups are populated in generally-ascending order: every
//     RowGroupsPerChunk row groups are filled alternately by two
//     individually-contiguous physical ranges A and B (the lower and upper
//     halves of the socket's physical space), with the pattern restarting
//     from new ranges at each region boundary — the paper's 768 MiB-aligned
//     mapping "jump".
//
// The construction makes every 4 KiB and 2 MiB page land in a single
// subarray group, while only about one third of 1 GiB-aligned ranges land in
// a single 3 GiB set of consecutive groups — both properties the paper
// reports for the real server.
type SkylakeMapper struct {
	g geometry.Geometry

	rowGroupBytes int64 // bytes in one row group
	chunkBytes    int64 // RowGroupsPerChunk row groups
	regionBytes   int64 // ChunksPerRegion chunks
	halfBytes     int64 // bytes contributed to a region by one range
	socketBytes   int64
}

// NewSkylakeMapper builds a mapper for g. The socket capacity must be an
// even number of regions so ranges A and B tile exactly.
func NewSkylakeMapper(g geometry.Geometry) (*SkylakeMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &SkylakeMapper{
		g:             g,
		rowGroupBytes: g.RowGroupBytes(),
		socketBytes:   g.SocketBytes(),
	}
	m.chunkBytes = m.rowGroupBytes * RowGroupsPerChunk
	m.regionBytes = m.chunkBytes * ChunksPerRegion
	m.halfBytes = m.regionBytes / 2
	if m.socketBytes%m.regionBytes != 0 {
		return nil, fmt.Errorf("addr: socket capacity %d is not a whole number of %d-byte mapping regions",
			m.socketBytes, m.regionBytes)
	}
	return m, nil
}

// Geometry returns the geometry the mapper serves.
func (m *SkylakeMapper) Geometry() geometry.Geometry { return m.g }

// RegionBytes returns the span between mapping jumps (768 MiB on the
// evaluation server).
func (m *SkylakeMapper) RegionBytes() int64 { return m.regionBytes }

// ChunkBytes returns the bytes covered by one contiguous chunk (24 MiB on
// the evaluation server).
func (m *SkylakeMapper) ChunkBytes() int64 { return m.chunkBytes }

// Decode translates a host physical address to a media address.
func (m *SkylakeMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	socket := int(pa / uint64(m.socketBytes))
	off := int64(pa % uint64(m.socketBytes))

	// Physical offset -> media offset within the socket.
	mediaOff := m.physToMedia(off)

	// Media offset -> (bank, row, col). Row groups ascend with media
	// offset; cache lines within a row group round-robin across banks.
	rowGroup := mediaOff / m.rowGroupBytes
	inGroup := mediaOff % m.rowGroupBytes
	line := inGroup / geometry.CacheLineSize
	inLine := int(inGroup % geometry.CacheLineSize)
	banks := int64(m.g.BanksPerSocket())
	bankIdx := int(line % banks)
	lineInBank := line / banks

	bank := socketBank(m.g, socket, bankIdx)
	return geometry.MediaAddr{
		Bank: bank,
		Row:  int(rowGroup),
		Col:  int(lineInBank)*geometry.CacheLineSize + inLine,
	}, nil
}

// Encode is the inverse of Decode.
func (m *SkylakeMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !addr.Valid(m.g) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	banks := int64(m.g.BanksPerSocket())
	bankIdx := int64(addr.Bank.SocketFlat(m.g))
	lineInBank := int64(addr.Col / geometry.CacheLineSize)
	inLine := int64(addr.Col % geometry.CacheLineSize)
	line := lineInBank*banks + bankIdx
	mediaOff := int64(addr.Row)*m.rowGroupBytes + line*geometry.CacheLineSize + inLine

	off := m.mediaToPhys(mediaOff)
	return uint64(int64(addr.Bank.Socket)*m.socketBytes + off), nil
}

// physToMedia maps a physical offset within a socket to a media offset.
//
// The socket's physical space is viewed as two contiguous halves: range A
// (lower half) and range B (upper half). Region r of media space is
// populated by the r-th halfBytes-sized slice of each range, A filling even
// chunks and B filling odd chunks in ascending order.
func (m *SkylakeMapper) physToMedia(off int64) int64 {
	var rangeOff int64
	var odd int64
	if off < m.socketBytes/2 {
		rangeOff = off // range A
	} else {
		rangeOff = off - m.socketBytes/2 // range B
		odd = 1
	}
	region := rangeOff / m.halfBytes
	inHalf := rangeOff % m.halfBytes
	chunkInHalf := inHalf / m.chunkBytes
	inChunk := inHalf % m.chunkBytes
	mediaChunk := 2*chunkInHalf + odd
	return region*m.regionBytes + mediaChunk*m.chunkBytes + inChunk
}

// mediaToPhys is the inverse of physToMedia.
func (m *SkylakeMapper) mediaToPhys(mediaOff int64) int64 {
	region := mediaOff / m.regionBytes
	inRegion := mediaOff % m.regionBytes
	mediaChunk := inRegion / m.chunkBytes
	inChunk := inRegion % m.chunkBytes
	chunkInHalf := mediaChunk / 2
	rangeOff := region*m.halfBytes + chunkInHalf*m.chunkBytes + inChunk
	if mediaChunk%2 == 1 {
		return m.socketBytes/2 + rangeOff // range B
	}
	return rangeOff // range A
}

// socketBank converts a dense within-socket bank index to a BankID.
func socketBank(g geometry.Geometry, socket, idx int) geometry.BankID {
	bank := idx % g.BanksPerRank
	idx /= g.BanksPerRank
	rank := idx % g.RanksPerDIMM
	dimm := idx / g.RanksPerDIMM
	return geometry.BankID{Socket: socket, DIMM: dimm, Rank: rank, Bank: bank}
}

// LinearMapper is an ablation mapping with no bank interleaving: physical
// addresses fill one bank completely before moving to the next. It destroys
// bank-level parallelism for sequential access patterns and is used by the
// §4.1 ablation benchmarks to quantify what subarray groups preserve.
type LinearMapper struct {
	g geometry.Geometry
}

// NewLinearMapper builds the no-interleave mapper.
func NewLinearMapper(g geometry.Geometry) (*LinearMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &LinearMapper{g: g}, nil
}

// Geometry returns the geometry the mapper serves.
func (m *LinearMapper) Geometry() geometry.Geometry { return m.g }

// Decode translates a host physical address to a media address.
func (m *LinearMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	bankBytes := uint64(m.g.BankBytes())
	flat := int(pa / bankBytes)
	off := int64(pa % bankBytes)
	return geometry.MediaAddr{
		Bank: geometry.BankFromFlat(m.g, flat),
		Row:  int(off / int64(m.g.RowBytes)),
		Col:  int(off % int64(m.g.RowBytes)),
	}, nil
}

// Encode is the inverse of Decode.
func (m *LinearMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !addr.Valid(m.g) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	bankBytes := int64(m.g.BankBytes())
	flat := int64(addr.Bank.Flat(m.g))
	return uint64(flat*bankBytes + int64(addr.Row)*int64(m.g.RowBytes) + int64(addr.Col)), nil
}
