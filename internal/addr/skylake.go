package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// Skylake-like mapping constants (§4.2). On the evaluation server one row
// group is 1.5 MiB (192 banks × 8 KiB), a chunk is 16 row groups (24 MiB),
// and a mapping region — the span between the paper's 768 MiB-aligned
// "jumps" — is 32 chunks (768 MiB).
const (
	// RowGroupsPerChunk is the paper's n: each individually-contiguous
	// physical range populates n row groups at a time.
	RowGroupsPerChunk = 16
	// ChunksPerRegion is the number of chunks between mapping jumps;
	// half are populated by range A, half by range B.
	ChunksPerRegion = 32
)

// lineShift converts byte offsets to cache-line indices.
const lineShift = 6 // log2(geometry.CacheLineSize)

// SkylakeMapper models the Intel Skylake server physical-to-media address
// mapping described in §4.2:
//
//   - Each socket owns a contiguous slice of the physical address space.
//   - Within a row group, consecutive cache lines are interleaved round-robin
//     across all of the socket's banks (bank-level parallelism, §2.4).
//   - Row groups are populated in generally-ascending order: every
//     RowGroupsPerChunk row groups are filled alternately by two
//     individually-contiguous physical ranges A and B (the lower and upper
//     halves of the socket's physical space), with the pattern restarting
//     from new ranges at each region boundary — the paper's 768 MiB-aligned
//     mapping "jump".
//
// The construction makes every 4 KiB and 2 MiB page land in a single
// subarray group, while only about one third of 1 GiB-aligned ranges land in
// a single 3 GiB set of consecutive groups — both properties the paper
// reports for the real server.
//
// Decode and Encode run on precomputed machinery built once per geometry:
// reciprocal dividers for every geometry-derived divisor (fastDiv) and
// lookup tables for the cache-line interleave (interleaveLUT). The original
// arithmetic survives as decodeRef/encodeRef, the oracle the fuzz tests
// compare the fast path against.
type SkylakeMapper struct {
	g geometry.Geometry

	rowGroupBytes int64 // bytes in one row group
	chunkBytes    int64 // RowGroupsPerChunk row groups
	regionBytes   int64 // ChunksPerRegion chunks
	halfBytes     int64 // bytes contributed to a region by one range
	socketBytes   int64

	totalBytes  int64
	halfSocket  int64 // socketBytes/2: start of range B
	rgPerRegion int64 // row groups per mapping region
	rgPerSocket int64 // row groups per socket
	rgPerHalf   int64 // row groups per physical range (half socket)
	banksPerSkt int64
	bnd         bounds

	divSocket   fastDiv // by socketBytes over [0, totalBytes)
	divChunk    fastDiv // by chunkBytes over [0, regionBytes)
	divRowGroup fastDiv // by rowGroupBytes over [0, halfSocket)
	divRegion   fastDiv // by regionBytes over [0, socketBytes)

	lut *interleaveLUT
}

// NewSkylakeMapper builds a mapper for g. The socket capacity must be an
// even number of regions so ranges A and B tile exactly.
func NewSkylakeMapper(g geometry.Geometry) (*SkylakeMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &SkylakeMapper{
		g:             g,
		rowGroupBytes: g.RowGroupBytes(),
		socketBytes:   g.SocketBytes(),
		totalBytes:    g.TotalBytes(),
		banksPerSkt:   int64(g.BanksPerSocket()),
		bnd:           newBounds(g),
	}
	m.chunkBytes = m.rowGroupBytes * RowGroupsPerChunk
	m.regionBytes = m.chunkBytes * ChunksPerRegion
	m.halfBytes = m.regionBytes / 2
	m.halfSocket = m.socketBytes / 2
	m.rgPerRegion = RowGroupsPerChunk * ChunksPerRegion
	m.rgPerSocket = m.socketBytes / m.rowGroupBytes
	m.rgPerHalf = m.rgPerSocket / 2
	if m.socketBytes%m.regionBytes != 0 {
		return nil, fmt.Errorf("addr: socket capacity %d is not a whole number of %d-byte mapping regions",
			m.socketBytes, m.regionBytes)
	}
	var err error
	if m.divSocket, err = newFastDiv(m.socketBytes, m.totalBytes-1); err != nil {
		return nil, err
	}
	if m.divChunk, err = newFastDiv(m.chunkBytes, m.regionBytes-1); err != nil {
		return nil, err
	}
	if m.divRowGroup, err = newFastDiv(m.rowGroupBytes, m.totalBytes-1); err != nil {
		return nil, err
	}
	if m.divRegion, err = newFastDiv(m.regionBytes, m.socketBytes-1); err != nil {
		return nil, err
	}
	if m.lut, err = newInterleaveLUT(g, g.BanksPerSocket()); err != nil {
		return nil, err
	}
	return m, nil
}

// Geometry returns the geometry the mapper serves.
func (m *SkylakeMapper) Geometry() geometry.Geometry { return m.g }

// RegionBytes returns the span between mapping jumps (768 MiB on the
// evaluation server).
func (m *SkylakeMapper) RegionBytes() int64 { return m.regionBytes }

// ChunkBytes returns the bytes covered by one contiguous chunk (24 MiB on
// the evaluation server).
func (m *SkylakeMapper) ChunkBytes() int64 { return m.chunkBytes }

// Decode translates a host physical address to a media address.
func (m *SkylakeMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if pa >= uint64(m.totalBytes) {
		return geometry.MediaAddr{}, rangeCheck(m.g, pa)
	}
	// Physical address -> media coordinates. Socket, range and half-region
	// spans are all whole numbers of row groups, so one reciprocal division
	// of the full address by the row-group span yields a global row-group
	// index that socket/range bases subtract from directly, and region and
	// chunk coordinates fall out of it by compile-time-constant divisions
	// the compiler strength-reduces (ChunksPerRegion/2 chunks of
	// RowGroupsPerChunk row groups per range slice). Unlike physToMedia's
	// chain of three data-dependent divmods, the two reciprocal divisions
	// here are independent and overlap in the pipeline.
	rg0, inGroup := m.divRowGroup.divmod(int64(pa))
	socket := m.divSocket.div(int64(pa))
	off := int64(pa) - socket*m.socketBytes
	rg := uint64(rg0 - socket*m.rgPerSocket) // unsigned: constant divisions below compile to bare shifts
	var odd int64
	if off >= m.halfSocket {
		rg -= uint64(m.rgPerHalf) // range B
		odd = 1
	}
	region := int64(rg / (RowGroupsPerChunk * ChunksPerRegion / 2))
	chunkInHalf := int64(rg / RowGroupsPerChunk % (ChunksPerRegion / 2))
	rgInChunk := int64(rg % RowGroupsPerChunk)
	mediaChunk := 2*chunkInHalf + odd
	rowGroup := region*m.rgPerRegion + mediaChunk*RowGroupsPerChunk + rgInChunk

	line := inGroup >> lineShift
	inLine := int(inGroup & (geometry.CacheLineSize - 1))
	bankIdx, lineInBank := m.lut.split(line)
	return geometry.MediaAddr{
		Bank: m.lut.bank(int(socket), bankIdx),
		Row:  int(rowGroup),
		Col:  lineInBank<<lineShift + inLine,
	}, nil
}

// DecodeBank is the col-free fast path of Decode (BankDecoder): the dense
// bank index the interleave LUT yields is already the within-socket flat
// index, so no BankID is assembled at all.
func (m *SkylakeMapper) DecodeBank(pa uint64) (bank, row, socket int, err error) {
	if pa >= uint64(m.totalBytes) {
		return 0, 0, 0, rangeCheck(m.g, pa)
	}
	rg0, inGroup := m.divRowGroup.divmod(int64(pa))
	skt := m.divSocket.div(int64(pa))
	off := int64(pa) - skt*m.socketBytes
	rg := uint64(rg0 - skt*m.rgPerSocket)
	var odd int64
	if off >= m.halfSocket {
		rg -= uint64(m.rgPerHalf) // range B
		odd = 1
	}
	region := int64(rg / (RowGroupsPerChunk * ChunksPerRegion / 2))
	chunkInHalf := int64(rg / RowGroupsPerChunk % (ChunksPerRegion / 2))
	rgInChunk := int64(rg % RowGroupsPerChunk)
	mediaChunk := 2*chunkInHalf + odd
	rowGroup := region*m.rgPerRegion + mediaChunk*RowGroupsPerChunk + rgInChunk

	bankIdx, _ := m.lut.split(inGroup >> lineShift)
	return int(skt*m.banksPerSkt) + bankIdx, int(rowGroup), int(skt), nil
}

// Encode is the inverse of Decode.
func (m *SkylakeMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !m.bnd.valid(addr) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	bankIdx := int64(m.bnd.socketFlat(addr.Bank))
	lineInBank := int64(addr.Col >> lineShift)
	inLine := int64(addr.Col & (geometry.CacheLineSize - 1))
	line := lineInBank*m.banksPerSkt + bankIdx
	mediaOff := int64(addr.Row)*m.rowGroupBytes + line<<lineShift + inLine

	// Media offset -> physical offset (inverse of the Decode chain).
	region, inRegion := m.divRegion.divmod(mediaOff)
	mediaChunk, inChunk := m.divChunk.divmod(inRegion)
	rangeOff := region*m.halfBytes + (mediaChunk>>1)*m.chunkBytes + inChunk
	if mediaChunk&1 == 1 {
		rangeOff += m.halfSocket // range B
	}
	return uint64(int64(addr.Bank.Socket)*m.socketBytes + rangeOff), nil
}

// decodeRef is the original divide/modulo implementation of Decode, kept as
// the oracle for the fuzz equivalence tests.
func (m *SkylakeMapper) decodeRef(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	socket := int(pa / uint64(m.socketBytes))
	off := int64(pa % uint64(m.socketBytes))

	mediaOff := m.physToMedia(off)

	rowGroup := mediaOff / m.rowGroupBytes
	inGroup := mediaOff % m.rowGroupBytes
	line := inGroup / geometry.CacheLineSize
	inLine := int(inGroup % geometry.CacheLineSize)
	banks := int64(m.g.BanksPerSocket())
	bankIdx := int(line % banks)
	lineInBank := line / banks

	bank := socketBank(m.g, socket, bankIdx)
	return geometry.MediaAddr{
		Bank: bank,
		Row:  int(rowGroup),
		Col:  int(lineInBank)*geometry.CacheLineSize + inLine,
	}, nil
}

// encodeRef is the original divide/modulo implementation of Encode, kept as
// the oracle for the fuzz equivalence tests.
func (m *SkylakeMapper) encodeRef(addr geometry.MediaAddr) (uint64, error) {
	if !addr.Valid(m.g) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	banks := int64(m.g.BanksPerSocket())
	bankIdx := int64(addr.Bank.SocketFlat(m.g))
	lineInBank := int64(addr.Col / geometry.CacheLineSize)
	inLine := int64(addr.Col % geometry.CacheLineSize)
	line := lineInBank*banks + bankIdx
	mediaOff := int64(addr.Row)*m.rowGroupBytes + line*geometry.CacheLineSize + inLine

	off := m.mediaToPhys(mediaOff)
	return uint64(int64(addr.Bank.Socket)*m.socketBytes + off), nil
}

// physToMedia maps a physical offset within a socket to a media offset.
//
// The socket's physical space is viewed as two contiguous halves: range A
// (lower half) and range B (upper half). Region r of media space is
// populated by the r-th halfBytes-sized slice of each range, A filling even
// chunks and B filling odd chunks in ascending order.
func (m *SkylakeMapper) physToMedia(off int64) int64 {
	var rangeOff int64
	var odd int64
	if off < m.socketBytes/2 {
		rangeOff = off // range A
	} else {
		rangeOff = off - m.socketBytes/2 // range B
		odd = 1
	}
	region := rangeOff / m.halfBytes
	inHalf := rangeOff % m.halfBytes
	chunkInHalf := inHalf / m.chunkBytes
	inChunk := inHalf % m.chunkBytes
	mediaChunk := 2*chunkInHalf + odd
	return region*m.regionBytes + mediaChunk*m.chunkBytes + inChunk
}

// mediaToPhys is the inverse of physToMedia.
func (m *SkylakeMapper) mediaToPhys(mediaOff int64) int64 {
	region := mediaOff / m.regionBytes
	inRegion := mediaOff % m.regionBytes
	mediaChunk := inRegion / m.chunkBytes
	inChunk := inRegion % m.chunkBytes
	chunkInHalf := mediaChunk / 2
	rangeOff := region*m.halfBytes + chunkInHalf*m.chunkBytes + inChunk
	if mediaChunk%2 == 1 {
		return m.socketBytes/2 + rangeOff // range B
	}
	return rangeOff // range A
}

// socketBank converts a dense within-socket bank index to a BankID.
func socketBank(g geometry.Geometry, socket, idx int) geometry.BankID {
	bank := idx % g.BanksPerRank
	idx /= g.BanksPerRank
	rank := idx % g.RanksPerDIMM
	dimm := idx / g.RanksPerDIMM
	return geometry.BankID{Socket: socket, DIMM: dimm, Rank: rank, Bank: bank}
}

// LinearMapper is an ablation mapping with no bank interleaving: physical
// addresses fill one bank completely before moving to the next. It destroys
// bank-level parallelism for sequential access patterns and is used by the
// §4.1 ablation benchmarks to quantify what subarray groups preserve.
type LinearMapper struct {
	g geometry.Geometry

	totalBytes int64
	bankBytes  int64
	rowBytes   int64
	divBank    fastDiv // by BankBytes over [0, totalBytes)
	divRow     fastDiv // by RowBytes over [0, BankBytes)
	bankIDs    []geometry.BankID
	bnd        bounds
}

// NewLinearMapper builds the no-interleave mapper.
func NewLinearMapper(g geometry.Geometry) (*LinearMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &LinearMapper{
		g:          g,
		totalBytes: g.TotalBytes(),
		bankBytes:  g.BankBytes(),
		rowBytes:   int64(g.RowBytes),
		bnd:        newBounds(g),
	}
	var err error
	if m.divBank, err = newFastDiv(g.BankBytes(), m.totalBytes-1); err != nil {
		return nil, err
	}
	if m.divRow, err = newFastDiv(int64(g.RowBytes), g.BankBytes()-1); err != nil {
		return nil, err
	}
	m.bankIDs = make([]geometry.BankID, g.TotalBanks())
	for i := range m.bankIDs {
		m.bankIDs[i] = geometry.BankFromFlat(g, i)
	}
	return m, nil
}

// Geometry returns the geometry the mapper serves.
func (m *LinearMapper) Geometry() geometry.Geometry { return m.g }

// Decode translates a host physical address to a media address.
func (m *LinearMapper) Decode(pa uint64) (geometry.MediaAddr, error) {
	if pa >= uint64(m.totalBytes) {
		return geometry.MediaAddr{}, rangeCheck(m.g, pa)
	}
	flat, off := m.divBank.divmod(int64(pa))
	row, col := m.divRow.divmod(off)
	return geometry.MediaAddr{
		Bank: m.bankIDs[flat],
		Row:  int(row),
		Col:  int(col),
	}, nil
}

// DecodeBank is the col-free fast path of Decode (BankDecoder).
func (m *LinearMapper) DecodeBank(pa uint64) (bank, row, socket int, err error) {
	if pa >= uint64(m.totalBytes) {
		return 0, 0, 0, rangeCheck(m.g, pa)
	}
	flat, off := m.divBank.divmod(int64(pa))
	return int(flat), int(m.divRow.div(off)), m.bankIDs[flat].Socket, nil
}

// Encode is the inverse of Decode.
func (m *LinearMapper) Encode(addr geometry.MediaAddr) (uint64, error) {
	if !m.bnd.valid(addr) {
		return 0, fmt.Errorf("%w: media address %v", ErrOutOfRange, addr)
	}
	flat := int64(m.bnd.flat(addr.Bank))
	return uint64(flat*m.bankBytes + int64(addr.Row)*m.rowBytes + int64(addr.Col)), nil
}

// decodeRef is the original divide/modulo implementation of Decode, kept as
// the oracle for the fuzz equivalence tests.
func (m *LinearMapper) decodeRef(pa uint64) (geometry.MediaAddr, error) {
	if err := rangeCheck(m.g, pa); err != nil {
		return geometry.MediaAddr{}, err
	}
	bankBytes := uint64(m.g.BankBytes())
	flat := int(pa / bankBytes)
	off := int64(pa % bankBytes)
	return geometry.MediaAddr{
		Bank: geometry.BankFromFlat(m.g, flat),
		Row:  int(off / int64(m.g.RowBytes)),
		Col:  int(off % int64(m.g.RowBytes)),
	}, nil
}
