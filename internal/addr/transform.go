package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// TransformConfig selects which DIMM-internal row address transformations a
// module applies (§6). Every transformation is an involution over the
// low-order row address bits, so the chain is its own inverse.
type TransformConfig struct {
	// Mirroring applies DDR4 address mirroring on odd ranks: bit pairs
	// <b3,b4>, <b5,b6> and <b7,b8> are swapped (Table 1).
	Mirroring bool
	// Inversion applies DDR4 address inversion on B-side half-rows:
	// bits [b3, b8] are inverted (Table 1).
	Inversion bool
	// Scrambling applies vendor-specific row address scrambling: bits b1
	// and b2 are each XOR-ed with b3 (§6). It affects ordering within
	// 8-row blocks only, never their contiguity.
	Scrambling bool
}

// AllTransforms enables every standardized and vendor transformation.
func AllTransforms() TransformConfig {
	return TransformConfig{Mirroring: true, Inversion: true, Scrambling: true}
}

// MirrorRow swaps bit pairs <b3,b4>, <b5,b6>, <b7,b8> of a row address.
func MirrorRow(row int) int {
	const (
		m3 = 1 << 3
		m4 = 1 << 4
		m5 = 1 << 5
		m6 = 1 << 6
		m7 = 1 << 7
		m8 = 1 << 8
	)
	out := row &^ (m3 | m4 | m5 | m6 | m7 | m8)
	if row&m3 != 0 {
		out |= m4
	}
	if row&m4 != 0 {
		out |= m3
	}
	if row&m5 != 0 {
		out |= m6
	}
	if row&m6 != 0 {
		out |= m5
	}
	if row&m7 != 0 {
		out |= m8
	}
	if row&m8 != 0 {
		out |= m7
	}
	return out
}

// InvertRow inverts bits [b3, b8] of a row address.
func InvertRow(row int) int {
	const mask = 0b1_1111_1000 // bits 3..8
	return row ^ mask
}

// ScrambleRow XORs bits b1 and b2 with b3.
func ScrambleRow(row int) int {
	if row&(1<<3) != 0 {
		return row ^ (1<<1 | 1<<2)
	}
	return row
}

// InternalMapper translates a row's media address into the internal row
// index the DIMM actually drives, per rank and half-row side. Electrical
// adjacency — and therefore Rowhammer blast radius — is defined over
// internal rows, so the DRAM disturbance model consults this mapping (§6).
//
// Row repairs are modelled separately (see RepairTable); the mapper itself
// is a bijection on [0, RowsPerBank) for every (bank, side).
type InternalMapper struct {
	g   geometry.Geometry
	cfg TransformConfig
}

// NewInternalMapper builds an internal mapper for g.
func NewInternalMapper(g geometry.Geometry, cfg TransformConfig) *InternalMapper {
	return &InternalMapper{g: g, cfg: cfg}
}

// Config returns the transformation configuration.
func (im *InternalMapper) Config() TransformConfig { return im.cfg }

// InternalRow returns the internal row index that a media row address
// resolves to on the given bank and half-row side.
func (im *InternalMapper) InternalRow(bank geometry.BankID, mediaRow int, side Side) int {
	if mediaRow < 0 || mediaRow >= im.g.RowsPerBank {
		panic(fmt.Sprintf("addr: media row %d out of range [0,%d)", mediaRow, im.g.RowsPerBank))
	}
	row := mediaRow
	if im.cfg.Scrambling {
		row = ScrambleRow(row)
	}
	if im.cfg.Mirroring && bank.Rank%2 == 1 {
		row = MirrorRow(row)
	}
	if im.cfg.Inversion && side == SideB {
		row = InvertRow(row)
	}
	return row
}

// MediaRow is the inverse of InternalRow: the media row address whose
// half-row on the given side lands on the internal row.
func (im *InternalMapper) MediaRow(bank geometry.BankID, internal int, side Side) int {
	if internal < 0 || internal >= im.g.RowsPerBank {
		panic(fmt.Sprintf("addr: internal row %d out of range [0,%d)", internal, im.g.RowsPerBank))
	}
	row := internal
	if im.cfg.Inversion && side == SideB {
		row = InvertRow(row)
	}
	if im.cfg.Mirroring && bank.Rank%2 == 1 {
		row = MirrorRow(row)
	}
	if im.cfg.Scrambling {
		row = ScrambleRow(row)
	}
	return row
}
