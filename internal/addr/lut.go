package addr

import (
	"fmt"

	"repro/internal/geometry"
)

// maxInterleaveEntries caps the size of a per-geometry interleave table
// (entries are 4 bytes; the default server needs 24576, DDR5 49152). A
// geometry whose row group exceeds the cap keeps the arithmetic path.
const maxInterleaveEntries = 1 << 20

// interleaveLUT precomputes the round-robin cache-line interleave of one
// row group as bit-packed lookup tables, built once per geometry at mapper
// construction:
//
//   - fwd maps a cache line's index within its row group to the dense bank
//     index (high 16 bits) and the line's position within that bank's row
//     (low 16 bits), replacing a divide and a modulo per decode;
//   - bankIDs expands a dense within-socket bank index to its structured
//     BankID, replacing the three divmods of socketBank.
//
// The tables depend only on the interleave width (how many banks a row
// group spreads over) and the row size, so one LUT serves every socket.
type interleaveLUT struct {
	banks    int
	rowLines int      // cache lines per row
	fwd      []uint32 // line-in-group -> bankIdx<<16 | lineInBank
	divBanks fastDiv  // reciprocal fallback when fwd is not tabulated
	bankIDs  []geometry.BankID
}

// newInterleaveLUT builds tables for rows interleaved over banks
// consecutive banks of a socket with g's row size. bankIDs always covers
// the full socket so partitioned mappings can offset into it; fwd is nil
// (arithmetic fallback) when the row group is too large to tabulate.
func newInterleaveLUT(g geometry.Geometry, banks int) (*interleaveLUT, error) {
	rowLines := g.RowBytes / geometry.CacheLineSize
	lut := &interleaveLUT{banks: banks, rowLines: rowLines}
	var err error
	if lut.divBanks, err = newFastDiv(int64(banks), int64(banks)*int64(rowLines)-1); err != nil {
		return nil, err
	}
	lut.bankIDs = make([]geometry.BankID, g.BanksPerSocket())
	for i := range lut.bankIDs {
		lut.bankIDs[i] = geometry.BankFromSocketFlat(g, 0, i)
	}
	entries := banks * rowLines
	if entries > maxInterleaveEntries {
		return lut, nil // fall back to divide/modulo per decode
	}
	if banks > 0xffff || rowLines > 0xffff {
		return nil, fmt.Errorf("addr: interleave %d banks x %d lines overflows LUT packing", banks, rowLines)
	}
	lut.fwd = make([]uint32, entries)
	for line := 0; line < entries; line++ {
		lut.fwd[line] = uint32(line%banks)<<16 | uint32(line/banks)
	}
	return lut, nil
}

// split resolves a cache line's index within its row group to (dense bank
// index, line within the bank's row).
func (l *interleaveLUT) split(line int64) (bankIdx, lineInBank int) {
	if l.fwd != nil {
		e := l.fwd[line]
		return int(e >> 16), int(e & 0xffff)
	}
	q, r := l.divBanks.divmod(line)
	return int(r), int(q)
}

// bank expands a dense within-socket bank index for the given socket.
func (l *interleaveLUT) bank(socket, idx int) geometry.BankID {
	b := l.bankIDs[idx]
	b.Socket = socket
	return b
}

// bounds caches a geometry's scalar limits so the encode hot path can
// validate a media address and flatten its bank ID without copying the
// Geometry struct per call (MediaAddr.Valid takes Geometry by value, and
// the copy dominates an otherwise division-free Encode).
type bounds struct {
	sockets, dimms, ranks, banks int
	rows, rowBytes               int
}

func newBounds(g geometry.Geometry) bounds {
	return bounds{
		sockets: g.Sockets, dimms: g.DIMMsPerSocket,
		ranks: g.RanksPerDIMM, banks: g.BanksPerRank,
		rows: g.RowsPerBank, rowBytes: g.RowBytes,
	}
}

// valid mirrors MediaAddr.Valid against the cached limits.
func (b bounds) valid(a geometry.MediaAddr) bool {
	return uint(a.Bank.Socket) < uint(b.sockets) &&
		uint(a.Bank.DIMM) < uint(b.dimms) &&
		uint(a.Bank.Rank) < uint(b.ranks) &&
		uint(a.Bank.Bank) < uint(b.banks) &&
		uint(a.Row) < uint(b.rows) &&
		uint(a.Col) < uint(b.rowBytes)
}

// socketFlat mirrors BankID.SocketFlat against the cached limits.
func (b bounds) socketFlat(id geometry.BankID) int {
	return (id.DIMM*b.ranks+id.Rank)*b.banks + id.Bank
}

// flat mirrors BankID.Flat against the cached limits.
func (b bounds) flat(id geometry.BankID) int {
	return ((id.Socket*b.dimms+id.DIMM)*b.ranks+id.Rank)*b.banks + id.Bank
}
