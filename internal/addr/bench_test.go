package addr

import (
	"testing"

	"repro/internal/geometry"
)

func BenchmarkSkylakeDecode(b *testing.B) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	total := uint64(g.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decode(uint64(i*64) % total); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkylakeEncode(b *testing.B) {
	g := geometry.Default()
	m, err := NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	ma, err := m.Decode(12345 * 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(ma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInternalRow(b *testing.B) {
	g := geometry.Default()
	im := NewInternalMapper(g, AllTransforms())
	bank := geometry.BankID{Socket: 0, DIMM: 1, Rank: 1, Bank: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.InternalRow(bank, i%g.RowsPerBank, Side(i%2))
	}
}
