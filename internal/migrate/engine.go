package migrate

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/numa"
)

// Engine executes migration plans through the hypervisor's pre-copy
// machinery, auditing the isolation invariants before, during (after every
// pre-copy round), and after each move.
type Engine struct {
	h *core.Hypervisor
	// Opt tunes every move's pre-copy loop (rounds, convergence, guest
	// stepping). The engine chains its per-round audit onto Opt.OnRound.
	Opt core.MigrateOptions
}

// NewEngine builds an engine over a booted hypervisor.
func NewEngine(h *core.Hypervisor) *Engine { return &Engine{h: h} }

// Hypervisor returns the engine's hypervisor.
func (e *Engine) Hypervisor() *core.Hypervisor { return e.h }

// Execute runs a plan — in-place shrinks first, then moves in order, then
// in-place grows (which consume the capacity the earlier steps freed) —
// stopping at the first failure. The isolation audit runs around every
// shrink and grow and around and within every move; an audit failure aborts
// the plan even if the step itself succeeded.
func (e *Engine) Execute(ctx context.Context, plan *Plan) ([]*core.MigrateReport, error) {
	if err := AuditIsolation(e.h); err != nil {
		return nil, err
	}
	for _, s := range plan.Shrinks {
		if _, err := e.h.BalloonVM(s.VM, s.Target); err != nil {
			return nil, err
		}
		if err := AuditIsolation(e.h); err != nil {
			return nil, fmt.Errorf("migrate: isolation audit failed after shrinking %q: %w", s.VM, err)
		}
	}
	var reps []*core.MigrateReport
	for _, mv := range plan.Moves {
		rep, err := e.move(ctx, mv)
		if rep != nil {
			reps = append(reps, rep)
		}
		if err != nil {
			return reps, err
		}
	}
	for _, g := range plan.Grows {
		if _, err := e.h.ResizeVM(g.VM, g.TargetBytes); err != nil {
			return reps, err
		}
		if err := AuditIsolation(e.h); err != nil {
			return reps, fmt.Errorf("migrate: isolation audit failed after growing %q: %w", g.VM, err)
		}
	}
	return reps, nil
}

// move runs one audited migration.
func (e *Engine) move(ctx context.Context, mv Move) (*core.MigrateReport, error) {
	opt := e.Opt
	userRound := opt.OnRound
	var auditErr error
	opt.OnRound = func(r core.MigrateRound) {
		if userRound != nil {
			userRound(r)
		}
		// Mid-flight the domain spans source and destination; exclusivity
		// must hold for the widened domain too.
		if auditErr == nil {
			auditErr = AuditIsolation(e.h)
		}
	}
	rep, err := e.h.MigrateVM(ctx, mv.VM, mv.DestNodes, opt)
	if err != nil {
		return nil, err
	}
	if auditErr != nil {
		return rep, fmt.Errorf("migrate: isolation audit failed during move of %q: %w", mv.VM, auditErr)
	}
	if err := AuditIsolation(e.h); err != nil {
		return rep, fmt.Errorf("migrate: isolation audit failed after move of %q: %w", mv.VM, err)
	}
	return rep, nil
}

// AdmitWithRebalance admits a VM that plain CreateVM refuses for lack of
// home-socket capacity: plan a rebalance, execute it, retry. Returns the
// created VM and the migrations performed on its behalf.
func (e *Engine) AdmitWithRebalance(ctx context.Context, proc core.Process, spec core.VMSpec) (*core.VM, []*core.MigrateReport, error) {
	if vm, err := e.h.CreateVM(proc, spec); err == nil {
		return vm, nil, nil
	}
	plan, err := NewPlanner(e.h).PlanAdmission(spec)
	if err != nil {
		return nil, nil, err
	}
	reps, err := e.Execute(ctx, plan)
	if err != nil {
		return nil, reps, err
	}
	vm, err := e.h.CreateVM(proc, spec)
	if err != nil {
		return nil, reps, fmt.Errorf("migrate: VM %q still refused after rebalancing: %w", spec.Name, err)
	}
	return vm, reps, nil
}

// Defragment evens guest-node occupancy across sockets: while the most
// loaded socket holds at least two more owned guest nodes than the least
// loaded, it moves the smallest wholly-resident VM across. maxMoves <= 0
// means unlimited. Returns the migrations performed.
//
// Each cross-socket move also relocates the victim's EPT tables (see
// core.MigrateVM), so defragmentation drains the overloaded socket's
// guard-protected EPT block alongside its guest nodes — EPTOccupancy shows
// the per-socket pools, EPTReclaimed totals what a run gave back.
func (e *Engine) Defragment(ctx context.Context, maxMoves int) ([]*core.MigrateReport, error) {
	if e.h.Mode() != core.ModeSiloz {
		return nil, fmt.Errorf("migrate: defragmentation applies to Siloz exclusive reservations")
	}
	planner := NewPlanner(e.h)
	sockets := e.h.Memory().Geometry().Sockets
	var reps []*core.MigrateReport
	for len(reps) < maxMoves || maxMoves <= 0 {
		occ, err := planner.Occupancy()
		if err != nil {
			return reps, err
		}
		owned := make([]int, sockets)
		free := make([][]NodeOccupancy, sockets)
		for _, o := range occ {
			if o.Owner != "" {
				owned[o.Node.Socket]++
			} else {
				free[o.Node.Socket] = append(free[o.Node.Socket], o)
			}
		}
		maxS, minS := 0, 0
		for s := 1; s < sockets; s++ {
			if owned[s] > owned[maxS] {
				maxS = s
			}
			if owned[s] < owned[minS] {
				minS = s
			}
		}
		if owned[maxS]-owned[minS] < 2 {
			break // balanced enough: one more move cannot improve the spread
		}
		mv, ok := e.pickDefragMove(maxS, free[minS])
		if !ok {
			break // nothing movable fits
		}
		rep, err := e.move(ctx, mv)
		if rep != nil {
			reps = append(reps, rep)
		}
		if err != nil {
			return reps, err
		}
	}
	return reps, nil
}

// EPTReclaimed totals the EPT-table relocation work across a batch of
// migration reports: table pages rebuilt on destination sockets and the
// bytes their source EPT pools got back.
func EPTReclaimed(reps []*core.MigrateReport) (pages int, bytes uint64) {
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		pages += rep.EPTRelocatedPages
		bytes += rep.EPTReclaimedBytes
	}
	return pages, bytes
}

// pickDefragMove selects the smallest VM wholly resident on the overloaded
// socket that fits in the underloaded socket's free nodes.
func (e *Engine) pickDefragMove(fromSocket int, destPool []NodeOccupancy) (Move, bool) {
	var best *core.VM
	var bestBytes uint64
	for _, vm := range e.h.VMs() {
		resident := len(vm.Nodes()) > 0
		for _, n := range vm.Nodes() {
			if n.Socket != fromSocket || n.Kind != numa.GuestReserved {
				resident = false
				break
			}
		}
		if !resident {
			continue
		}
		b := specGuestBytes(vm.Spec())
		if best == nil || b < bestBytes {
			best, bestBytes = vm, b
		}
	}
	if best == nil {
		return Move{}, false
	}
	var dests []int
	var destCap uint64
	for _, o := range destPool {
		if destCap >= bestBytes {
			break
		}
		dests = append(dests, o.Node.ID)
		destCap += hugePageCap(o)
	}
	if destCap < bestBytes {
		return Move{}, false
	}
	return Move{VM: best.Name(), DestNodes: dests}, true
}
