package migrate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ept"
	"repro/internal/numa"
)

// AuditIsolation verifies the hard safety invariants of Siloz's domain model
// at one instant — the Engine runs it between every pre-copy round, so a
// migration can never pass through a state where they are violated:
//
//   - every VM's guest nodes are guest-reserved and exclusively owned by
//     that VM's control group;
//   - every RAM page lies inside its VM's domain;
//   - no guest node appears in two VMs' domains (no cross-tenant InDomain
//     overlap);
//   - no host frame backs two VMs' RAM at once (frame-level double
//     ownership — a strictly finer check than node exclusivity, catching a
//     frame handed out twice within one node or leaked across a lifecycle
//     operation);
//   - EPT table pages live in the pool of the VM's *current* EPT socket —
//     the guard-protected EPT row-group block under guard-rows protection,
//     that socket's host-reserved memory otherwise (§5.4). Relocation keeps
//     EPTSocket() tracking cross-socket migrations, so a VM whose tables
//     were left behind on the source socket fails this check;
//   - mediated pages stay host-reserved, outside every guest domain.
//
// Under the baseline there are no domains and the audit trivially passes.
func AuditIsolation(h *core.Hypervisor) error {
	if h.Mode() != core.ModeSiloz {
		return nil
	}
	reg := h.Registry()
	topo := h.Topology()
	nodeOwner := map[int]string{}
	frameOwner := map[uint64]string{}
	for _, vm := range h.VMs() {
		want := "vm:" + vm.Name()
		nodes := vm.Nodes()
		if len(nodes) == 0 {
			return fmt.Errorf("migrate: VM %q owns no guest nodes", vm.Name())
		}
		for _, n := range nodes {
			if n.Kind != numa.GuestReserved {
				return fmt.Errorf("migrate: VM %q domain includes %s-reserved node %d", vm.Name(), n.Kind, n.ID)
			}
			if owner, ok := reg.OwnerOf(n.ID); !ok || owner != want {
				return fmt.Errorf("migrate: node %d in VM %q's domain but owned by %q", n.ID, vm.Name(), owner)
			}
			if prev, dup := nodeOwner[n.ID]; dup {
				return fmt.Errorf("migrate: node %d in the domains of both %q and %q", n.ID, prev, vm.Name())
			}
			nodeOwner[n.ID] = vm.Name()
		}
		for _, hpa := range vm.RAMPages() {
			if !vm.InDomain(hpa) {
				return fmt.Errorf("migrate: VM %q RAM page %#x outside its domain", vm.Name(), hpa)
			}
			if prev, dup := frameOwner[hpa]; dup {
				return fmt.Errorf("migrate: frame %#x backs RAM of both %q and %q", hpa, prev, vm.Name())
			}
			frameOwner[hpa] = vm.Name()
		}
		if vm.Tables().Mode() == ept.GuardRows {
			eptNode, err := h.EPTNode(vm.EPTSocket())
			if err != nil {
				return fmt.Errorf("migrate: VM %q: %v", vm.Name(), err)
			}
			for _, pa := range vm.Tables().Pages() {
				if !eptNode.Contains(pa) {
					return fmt.Errorf("migrate: VM %q EPT page %#x outside socket %d's guard-protected EPT block",
						vm.Name(), pa, vm.EPTSocket())
				}
			}
		} else {
			for _, pa := range vm.Tables().Pages() {
				n, ok := topo.NodeOf(pa)
				if !ok || n.Kind != numa.HostReserved || n.Socket != vm.EPTSocket() {
					return fmt.Errorf("migrate: VM %q EPT page %#x not in socket %d's host-reserved memory",
						vm.Name(), pa, vm.EPTSocket())
				}
			}
		}
		for _, pa := range vm.MediatedPages() {
			n, ok := topo.NodeOf(pa)
			if !ok || n.Kind != numa.HostReserved {
				return fmt.Errorf("migrate: VM %q mediated page %#x not host-reserved", vm.Name(), pa)
			}
		}
	}
	return nil
}
