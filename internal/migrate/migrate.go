// Package migrate is the policy layer above the hypervisor's live pre-copy
// engine (core.MigrateVM): it decides *which* VM moves *where*, and proves
// the isolation invariant holds while pages are in flight.
//
// Siloz trades memory for isolation: a VM occupies whole subarray groups,
// exclusively (§5.2-5.3). The cost surfaces as fragmentation — a socket can
// refuse a VM because all its groups are owned, while groups sit free on the
// other socket (§8.1's internal-fragmentation waste is unfixable by design;
// *cross-socket imbalance* is not). The Planner reads per-node occupancy
// from the registry and the buddy allocators and emits a migration Plan that
// vacates enough of the target socket for a pending reservation; the Engine
// executes plans move by move, auditing after every pre-copy round that no
// two tenants' domains ever overlap and that EPT pages never leave their
// guard-protected block.
package migrate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// NodeOccupancy is one guest-reserved node's reservation and free-space
// state — the planner's raw input, also useful for operator dashboards.
type NodeOccupancy struct {
	Node             *numa.Node
	Owner            string // owning cgroup, "" if reservable
	FreeBytes        uint64
	TotalBytes       uint64
	FreePages2M      int // huge pages available (what a guest reservation needs)
	LargestFreeOrder int // -1 when the node is exhausted
}

// Move migrates one VM onto the given destination nodes.
type Move struct {
	VM        string
	DestNodes []int
}

// Shrink balloons one VM in place: its balloon is inflated to Target bytes
// surrendered, draining (and releasing) the subarray-group nodes the
// surrendered pages occupied. Shrink-in-place beats a pre-copy move when
// the deficit fits: no pages cross the machine, no stop-and-copy downtime.
type Shrink struct {
	VM     string
	Target uint64 // balloon size to set (bytes surrendered to the host)
}

// Grow resizes one VM in place to TargetBytes of usable RAM — the dual of
// Shrink. The resize facade dispatches it to a balloon deflate (growing
// back into ballooned holes) or a memory hotplug (growing beyond the
// boot-time reservation, adopting fresh subarray-group nodes). Like a
// shrink, no pages cross the machine.
type Grow struct {
	VM          string
	TargetBytes uint64 // usable RAM to resize to
}

// Plan is an ordered rebalancing program: in-place shrinks first (cheap),
// then migrations (expensive), then in-place grows (which consume the
// capacity the earlier steps freed). An empty plan means the goal is
// already satisfiable without any of them.
type Plan struct {
	Shrinks []Shrink
	Moves   []Move
	Grows   []Grow
}

// Planner derives migration plans from node occupancy.
type Planner struct {
	h *core.Hypervisor
}

// NewPlanner builds a planner over a booted hypervisor.
func NewPlanner(h *core.Hypervisor) *Planner { return &Planner{h: h} }

// Occupancy reports every guest-reserved node's owner and free-space state,
// in node-ID order.
func (p *Planner) Occupancy() ([]NodeOccupancy, error) {
	var out []NodeOccupancy
	for _, n := range p.h.Topology().NodesOfKind(numa.GuestReserved) {
		a, err := p.h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		owner, _ := p.h.Registry().OwnerOf(n.ID)
		out = append(out, NodeOccupancy{
			Node:             n,
			Owner:            owner,
			FreeBytes:        a.FreeBytes(),
			TotalBytes:       a.TotalBytes(),
			FreePages2M:      a.FreePagesAtOrder(alloc.Order2M),
			LargestFreeOrder: a.LargestFreeOrder(),
		})
	}
	return out, nil
}

// EPTNodeOccupancy is one socket's EPT-reserved node state: how much of the
// guard-protected row-group block its resident table hierarchies consume.
// Cross-socket migrations relocate EPT tables, so defragmentation drains
// these pools alongside the guest-reserved ones.
type EPTNodeOccupancy struct {
	Socket     int
	Node       *numa.Node
	FreeBytes  uint64
	TotalBytes uint64
	UsedBytes  uint64
	TablePages int // 4 KiB table pages resident in the block
}

// EPTOccupancy reports every EPT-reserved node's usage in socket order —
// empty outside guard-rows protection, where table pages live in host
// memory instead of dedicated blocks.
func (p *Planner) EPTOccupancy() ([]EPTNodeOccupancy, error) {
	var out []EPTNodeOccupancy
	for _, n := range p.h.Topology().NodesOfKind(numa.EPTReserved) {
		a, err := p.h.Allocator(n.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, EPTNodeOccupancy{
			Socket:     n.Socket,
			Node:       n,
			FreeBytes:  a.FreeBytes(),
			TotalBytes: a.TotalBytes(),
			UsedBytes:  a.UsedBytes(),
			TablePages: int(a.UsedBytes() / geometry.PageSize4K),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Socket < out[j].Socket })
	return out, nil
}

// GuestBytes is the capacity a spec demands from guest-reserved nodes: RAM
// plus every unmediated region (mirrors the admission check). Fleet placement
// sizes bin-packing requests with it.
func GuestBytes(spec core.VMSpec) uint64 { return specGuestBytes(spec) }

// specGuestBytes is the capacity a spec demands from guest-reserved nodes:
// RAM plus every unmediated region (mirrors the admission check).
func specGuestBytes(spec core.VMSpec) uint64 {
	b := spec.MemoryBytes
	for _, r := range spec.Regions {
		if r.Type.Unmediated() {
			b += r.Bytes
		}
	}
	return b
}

// hugePageCap is the bytes a node can contribute to a reservation today.
func hugePageCap(o NodeOccupancy) uint64 {
	return uint64(o.FreePages2M) * geometry.PageSize2M
}

// vacatedHugeCap is the node's huge-page capacity once the VM's pages leave
// it: current free huge pages plus every VM RAM page it hosts. (Freed 4 KiB
// region pages coalesce too, but are not counted — conservative.)
func vacatedHugeCap(vm *core.VM, o NodeOccupancy) uint64 {
	bytes := hugePageCap(o)
	for _, hpa := range vm.RAMPages() {
		if o.Node.Contains(hpa) {
			bytes += geometry.PageSize2M
		}
	}
	return bytes
}

// PlanAdmission produces the moves that make room for a pending VMSpec on
// its home socket: pick the cheapest victims wholly resident there and
// relocate them onto free guest nodes of other sockets. Returns an empty
// plan if the spec already fits, an error if no rebalancing can make it fit.
func (p *Planner) PlanAdmission(spec core.VMSpec) (*Plan, error) {
	h := p.h
	if h.Mode() != core.ModeSiloz {
		return nil, fmt.Errorf("migrate: admission planning applies to Siloz exclusive reservations")
	}
	need := specGuestBytes(spec)
	occ, err := p.Occupancy()
	if err != nil {
		return nil, err
	}

	var freeCap uint64                        // reservable home-socket capacity
	var pool []NodeOccupancy                  // free nodes on other sockets (dest candidates)
	homeOwned := map[string][]NodeOccupancy{} // owner -> home-socket nodes
	for _, o := range occ {
		switch {
		case o.Owner == "" && o.Node.Socket == spec.Socket:
			freeCap += hugePageCap(o)
		case o.Owner == "":
			pool = append(pool, o)
		case o.Node.Socket == spec.Socket:
			homeOwned[o.Owner] = append(homeOwned[o.Owner], o)
		}
	}
	if freeCap >= need {
		return &Plan{}, nil
	}

	plan := &Plan{}

	// Shrink-in-place first (the balloon path): a home-socket VM that
	// declared a MinMemoryBytes floor consents to being ballooned down to
	// it. Every node the balloon fully drains returns to the admission
	// pool without a single page crossing the machine — strictly cheaper
	// than a pre-copy move, so these candidates are consumed before any
	// migration victim is considered.
	ballooning := map[string]bool{}
	type shrinkCand struct {
		vm     *core.VM
		target uint64
		gain   uint64 // home-socket huge-page bytes the shrink frees
	}
	var shrinks []shrinkCand
	for owner, nodes := range homeOwned {
		vm, ok := h.VM(strings.TrimPrefix(owner, "vm:"))
		if !ok {
			continue
		}
		spec := vm.Spec()
		if spec.MinMemoryBytes == 0 || spec.MinMemoryBytes >= spec.MemoryBytes {
			continue // VM did not opt into ballooning policy
		}
		target := spec.MemoryBytes - spec.MinMemoryBytes
		rp, err := h.PreviewResize(vm.Name(), spec.MinMemoryBytes)
		if err != nil || rp.Action != core.ResizeInflate || len(rp.ReleasedNodes) == 0 {
			continue // shrink frees pages but drains no whole node: useless here
		}
		released := rp.ReleasedNodes
		releasedSet := make(map[int]bool, len(released))
		for _, id := range released {
			releasedSet[id] = true
		}
		var gain uint64
		for _, o := range nodes {
			if releasedSet[o.Node.ID] {
				gain += vacatedHugeCap(vm, o)
			}
		}
		if gain == 0 {
			continue // only remote nodes drain; the home socket gains nothing
		}
		shrinks = append(shrinks, shrinkCand{vm: vm, target: target, gain: gain})
	}
	// Biggest home-socket gain first; name-ordered for determinism.
	sort.Slice(shrinks, func(i, j int) bool {
		if shrinks[i].gain != shrinks[j].gain {
			return shrinks[i].gain > shrinks[j].gain
		}
		return shrinks[i].vm.Name() < shrinks[j].vm.Name()
	})
	for _, c := range shrinks {
		if freeCap >= need {
			break
		}
		plan.Shrinks = append(plan.Shrinks, Shrink{VM: c.vm.Name(), Target: c.target})
		ballooning[c.vm.Name()] = true
		freeCap += c.gain
	}
	if freeCap >= need {
		return plan, nil
	}

	type victim struct {
		vm         *core.VM
		guestBytes uint64
		homeNodes  []NodeOccupancy
	}
	var victims []victim
	for owner, nodes := range homeOwned {
		vm, ok := h.VM(strings.TrimPrefix(owner, "vm:"))
		if !ok {
			continue // reservation without a live VM; nothing to migrate
		}
		if ballooning[vm.Name()] {
			continue // already being shrunk in place
		}
		// Only whole-socket residents: moving them vacates everything
		// they own on the home socket.
		resident := true
		for _, n := range vm.Nodes() {
			if n.Socket != spec.Socket {
				resident = false
				break
			}
		}
		if !resident {
			continue
		}
		victims = append(victims, victim{vm: vm, guestBytes: specGuestBytes(vm.Spec()), homeNodes: nodes})
	}
	// Cheapest (smallest) victims first; name-ordered for determinism.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].guestBytes != victims[j].guestBytes {
			return victims[i].guestBytes < victims[j].guestBytes
		}
		return victims[i].vm.Name() < victims[j].vm.Name()
	})

	poolIdx := 0
	for _, v := range victims {
		if freeCap >= need {
			break
		}
		var dests []int
		var destCap uint64
		for poolIdx < len(pool) && destCap < v.guestBytes {
			o := pool[poolIdx]
			poolIdx++
			dests = append(dests, o.Node.ID)
			destCap += hugePageCap(o)
		}
		if destCap < v.guestBytes {
			return nil, fmt.Errorf("migrate: rebalancing infeasible: victim %q needs %d bytes but only %d remain on other sockets",
				v.vm.Name(), v.guestBytes, destCap)
		}
		plan.Moves = append(plan.Moves, Move{VM: v.vm.Name(), DestNodes: dests})
		for _, o := range v.homeNodes {
			freeCap += vacatedHugeCap(v.vm, o)
		}
	}
	if freeCap < need {
		return nil, fmt.Errorf("migrate: rebalancing infeasible: %d bytes needed on socket %d, only %d reachable by migration",
			need, spec.Socket, freeCap)
	}
	return plan, nil
}

// PlanGrow produces the plan that raises a VM's usable RAM to targetBytes —
// grow-in-place, the dual of shrink-in-place. The resize preview decides
// the mechanism (balloon deflate within the reservation, memory hotplug
// with node adoption beyond it) and proves feasibility without mutating
// anything; the returned single-step plan carries that audited decision to
// the engine. An error (core.ErrCapacityExhausted wrapped) means even
// adopting every node the VM may reach cannot cover the growth — the
// caller can then fall back to Defragment or AdmitWithRebalance-style
// vacating before retrying.
func (p *Planner) PlanGrow(name string, targetBytes uint64) (*Plan, error) {
	if p.h.Mode() != core.ModeSiloz {
		return nil, fmt.Errorf("migrate: grow planning applies to Siloz exclusive reservations")
	}
	rp, err := p.h.PreviewResize(name, targetBytes)
	if err != nil {
		return nil, err
	}
	switch rp.Action {
	case core.ResizeNone:
		return &Plan{}, nil
	case core.ResizeDeflate, core.ResizeHotplug:
		return &Plan{Grows: []Grow{{VM: name, TargetBytes: targetBytes}}}, nil
	default:
		return nil, fmt.Errorf("migrate: PlanGrow target %d would shrink VM %q (current %d); use PlanAdmission's shrink path",
			targetBytes, name, rp.Current)
	}
}
