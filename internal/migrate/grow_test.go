package migrate

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
)

// TestPlanGrowDispatch pins grow-in-place planning: a no-op for a VM
// already at target, a single audited Grow step for feasible growth, an
// error for shrinking targets, and ErrCapacityExhausted when no adoption
// can cover the growth.
func TestPlanGrowDispatch(t *testing.T) {
	h := bootSiloz(t)
	mustCreate(t, h, "g", 0, 64*geometry.MiB)
	p := NewPlanner(h)

	plan, err := p.PlanGrow("g", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Grows) != 0 {
		t.Errorf("at-target plan has %d grows, want none", len(plan.Grows))
	}

	plan, err = p.PlanGrow("g", 192*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Grows) != 1 || plan.Grows[0].VM != "g" || plan.Grows[0].TargetBytes != 192*geometry.MiB {
		t.Fatalf("grow plan = %+v, want one 192 MiB grow of g", plan.Grows)
	}

	if _, err := p.PlanGrow("g", geometry.PageSize2M); err == nil {
		t.Error("shrinking PlanGrow target accepted")
	}
	if _, err := p.PlanGrow("ghost", 192*geometry.MiB); !errors.Is(err, core.ErrVMNotFound) {
		t.Errorf("PlanGrow of unknown VM: err = %v, want ErrVMNotFound", err)
	}
	// Fill the socket: the growth becomes infeasible.
	mustCreate(t, h, "full", 0, 128*geometry.MiB)
	if _, err := p.PlanGrow("g", 192*geometry.MiB); !errors.Is(err, core.ErrCapacityExhausted) {
		t.Errorf("infeasible PlanGrow: err = %v, want ErrCapacityExhausted", err)
	}
}

// TestExecuteGrowAudited: the engine executes Grow steps after shrinks and
// moves, the VM ends at target, and the isolation audit holds throughout.
func TestExecuteGrowAudited(t *testing.T) {
	h := bootSiloz(t)
	vm := mustCreate(t, h, "g", 0, 64*geometry.MiB)
	plan, err := NewPlanner(h).PlanGrow("g", 128*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(h).Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if got := vm.Spec().MemoryBytes - vm.BalloonedBytes(); got != 128*geometry.MiB {
		t.Errorf("usable = %d MiB after grow, want 128", got/geometry.MiB)
	}
	if len(vm.Nodes()) != 2 {
		t.Errorf("VM owns %d nodes after grow, want 2", len(vm.Nodes()))
	}
	if err := AuditIsolation(h); err != nil {
		t.Errorf("isolation audit after grow: %v", err)
	}
	// A ballooned VM grows back through the same plan shape (deflate leg).
	if _, err := h.ResizeVM("g", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	plan, err = NewPlanner(h).PlanGrow("g", 128*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Grows) != 1 {
		t.Fatalf("re-grow plan = %+v, want one grow", plan.Grows)
	}
	if _, err := NewEngine(h).Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if got := vm.Spec().MemoryBytes - vm.BalloonedBytes(); got != 128*geometry.MiB {
		t.Errorf("usable = %d MiB after re-grow, want 128", got/geometry.MiB)
	}
}
