package migrate

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// Small two-socket system: 4 subarray groups of 64 MiB per socket — 1 host +
// 1 EPT + 3 guest nodes each side.
func testConfig() core.Config {
	p := dram.ProfileF()
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 3
	p.HammerThreshold = 5000
	p.Transforms = addr.TransformConfig{}
	return core.Config{
		Geometry: geometry.Geometry{
			Sockets:         2,
			CoresPerSocket:  4,
			DIMMsPerSocket:  1,
			RanksPerDIMM:    2,
			BanksPerRank:    8,
			RowsPerBank:     2048,
			RowBytes:        8 * geometry.KiB,
			RowsPerSubarray: 512,
		},
		Profiles:      []dram.Profile{p},
		EPTProtection: ept.GuardRows,
	}
}

func bootSiloz(t *testing.T) *core.Hypervisor {
	t.Helper()
	h, err := core.Boot(testConfig(), core.ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func kvmProc() core.Process { return core.Process{CGroup: "kvm", KVMPrivileged: true} }

func mustCreate(t *testing.T, h *core.Hypervisor, name string, socket int, bytes uint64) *core.VM {
	t.Helper()
	vm, err := h.CreateVM(kvmProc(), core.VMSpec{Name: name, Socket: socket, MemoryBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestOccupancyReflectsReservations(t *testing.T) {
	h := bootSiloz(t)
	mustCreate(t, h, "a", 0, 64*geometry.MiB)
	occ, err := NewPlanner(h).Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 6 {
		t.Fatalf("occupancy rows = %d, want 6 guest nodes", len(occ))
	}
	var owned, free int
	for _, o := range occ {
		if o.Owner == "vm:a" {
			owned++
			if o.FreeBytes != 0 || o.FreePages2M != 0 || o.LargestFreeOrder != -1 {
				t.Errorf("fully-reserved node reports free space: %+v", o)
			}
		} else if o.Owner == "" {
			free++
			if o.FreeBytes != o.TotalBytes {
				t.Errorf("unowned node not fully free: %+v", o)
			}
			if o.LargestFreeOrder < 9 {
				t.Errorf("unowned node largest order = %d", o.LargestFreeOrder)
			}
		}
	}
	if owned != 1 || free != 5 {
		t.Errorf("owned=%d free=%d, want 1/5", owned, free)
	}
}

func TestPlanAdmissionEmptyWhenRoomExists(t *testing.T) {
	h := bootSiloz(t)
	mustCreate(t, h, "a", 0, 64*geometry.MiB)
	plan, err := NewPlanner(h).PlanAdmission(core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("plan has %d moves, want none", len(plan.Moves))
	}
}

// TestAdmitWithRebalance is the acceptance scenario: a VM that CreateVM
// refuses with ENOMEM-from-fragmentation is admitted after the planner and
// engine rebalance a victim across sockets — while the victim's guest keeps
// writing, with byte identity across the move and the isolation invariant
// audited after every pre-copy round.
func TestAdmitWithRebalance(t *testing.T) {
	h := bootSiloz(t)
	victims := make([]*core.VM, 3)
	for i, name := range []string{"t0", "t1", "t2"} {
		victims[i] = mustCreate(t, h, name, 0, 64*geometry.MiB)
	}
	pending := core.VMSpec{Name: "pending", Socket: 0, MemoryBytes: 64 * geometry.MiB}
	if _, err := h.CreateVM(kvmProc(), pending); err == nil {
		t.Fatal("pending VM admitted while socket 0 is full — scenario broken")
	}

	// Seed deterministic content in every prospective victim.
	content := map[string][]byte{}
	for _, vm := range victims {
		buf := make([]byte, 3*geometry.PageSize2M)
		for i := range buf {
			buf[i] = byte(i*13+len(vm.Name())) | 1
		}
		if err := vm.WriteGuest(geometry.PageSize2M, buf); err != nil {
			t.Fatal(err)
		}
		content[vm.Name()] = buf
	}

	eng := NewEngine(h)
	audited := 0
	eng.Opt = core.MigrateOptions{
		StopPages: 1, MaxRounds: 10,
		OnRound: func(core.MigrateRound) { audited++ },
		// The victim guest keeps dirtying pages while it is moved.
		GuestStep: func(round int) error {
			if round > 1 {
				return nil
			}
			for _, vm := range h.VMs() {
				if !vm.DirtyTracking() {
					continue
				}
				buf := content[vm.Name()][:geometry.PageSize2M]
				for i := range buf {
					buf[i] = byte(i*7 + round + 2)
				}
				if err := vm.WriteGuest(geometry.PageSize2M, buf); err != nil {
					return err
				}
			}
			return nil
		},
	}
	vm, reps, err := eng.AdmitWithRebalance(context.Background(), kvmProc(), pending)
	if err != nil {
		t.Fatal(err)
	}
	if vm == nil || vm.Spec().Socket != 0 {
		t.Fatal("pending VM not admitted on its home socket")
	}
	if len(reps) == 0 {
		t.Fatal("admission succeeded without any migration — scenario broken")
	}
	if audited == 0 {
		t.Error("no per-round isolation audits ran")
	}
	for _, rep := range reps {
		if !rep.Converged {
			t.Errorf("move of %q did not converge: %+v", rep.VM, rep)
		}
		if rep.DestNodes[0] == rep.SourceNodes[0] {
			t.Errorf("move of %q did not change nodes", rep.VM)
		}
	}
	// Byte identity for every victim, including writes made mid-flight.
	for _, v := range victims {
		got := make([]byte, len(content[v.Name()]))
		if err := v.ReadGuest(geometry.PageSize2M, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content[v.Name()]) {
			t.Errorf("VM %q memory diverged across rebalancing", v.Name())
		}
	}
	if err := AuditIsolation(h); err != nil {
		t.Errorf("final isolation audit: %v", err)
	}
}

func TestPlanAdmissionInfeasible(t *testing.T) {
	h := bootSiloz(t)
	// Fill both sockets completely: no free destination anywhere.
	for i, name := range []string{"a", "b", "c", "d", "e", "f"} {
		mustCreate(t, h, name, i/3, 64*geometry.MiB)
	}
	_, err := NewPlanner(h).PlanAdmission(core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err == nil {
		t.Fatal("infeasible rebalancing produced a plan")
	}
}

func TestDefragmentEvensSockets(t *testing.T) {
	h := bootSiloz(t)
	mustCreate(t, h, "a", 0, 64*geometry.MiB)
	mustCreate(t, h, "b", 0, 64*geometry.MiB)
	mustCreate(t, h, "c", 0, 64*geometry.MiB)
	eng := NewEngine(h)
	reps, err := eng.Defragment(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 vs 0 → one move gives 2 vs 1; the next would only mirror the
	// imbalance, so the loop stops.
	if len(reps) != 1 {
		t.Fatalf("defragment made %d moves, want 1", len(reps))
	}
	occ, err := NewPlanner(h).Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	owned := map[int]int{}
	for _, o := range occ {
		if o.Owner != "" {
			owned[o.Node.Socket]++
		}
	}
	if owned[0] != 2 || owned[1] != 1 {
		t.Errorf("post-defrag occupancy %v, want socket0=2 socket1=1", owned)
	}
	if err := AuditIsolation(h); err != nil {
		t.Error(err)
	}
}

func TestAuditCleanSystem(t *testing.T) {
	h := bootSiloz(t)
	mustCreate(t, h, "a", 0, 64*geometry.MiB)
	mustCreate(t, h, "b", 1, 128*geometry.MiB)
	if err := AuditIsolation(h); err != nil {
		t.Error(err)
	}
}

// TestPlanPrefersShrinkOverMigration: a home-socket VM that opted into
// ballooning (MinMemoryBytes > 0) is shrunk in place instead of any VM
// being migrated — no pages cross the machine.
func TestPlanPrefersShrinkOverMigration(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), core.VMSpec{
		Name: "bal", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB,
	}); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, h, "other", 0, 64*geometry.MiB)

	plan, err := NewPlanner(h).PlanAdmission(
		core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("plan migrates %v although a shrink suffices", plan.Moves)
	}
	if len(plan.Shrinks) != 1 || plan.Shrinks[0].VM != "bal" || plan.Shrinks[0].Target != 64*geometry.MiB {
		t.Fatalf("plan.Shrinks = %+v, want bal shrunk by 64 MiB", plan.Shrinks)
	}

	// The engine executes the shrink and the pending VM is admitted with
	// zero migration reports.
	eng := NewEngine(h)
	vm, reps, err := eng.AdmitWithRebalance(context.Background(), kvmProc(),
		core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Errorf("admission migrated %d VMs, want pure shrink-in-place", len(reps))
	}
	if vm.Spec().Socket != 0 {
		t.Error("pending VM not admitted on its home socket")
	}
	if err := AuditIsolation(h); err != nil {
		t.Error(err)
	}
}

// TestPlanCombinesShrinkAndMove: when shrinking every consenting VM still
// leaves a deficit, the planner adds migrations — but never picks a VM it
// is already ballooning as a migration victim.
func TestPlanCombinesShrinkAndMove(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), core.VMSpec{
		Name: "bal", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB,
	}); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, h, "other", 0, 64*geometry.MiB)

	// Needs 128 MiB: the shrink frees one node (64 MiB), a move of "other"
	// must supply the rest.
	plan, err := NewPlanner(h).PlanAdmission(
		core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shrinks) != 1 || plan.Shrinks[0].VM != "bal" {
		t.Fatalf("plan.Shrinks = %+v, want bal", plan.Shrinks)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].VM != "other" {
		t.Fatalf("plan.Moves = %+v, want exactly [other] — a ballooning VM must not also migrate", plan.Moves)
	}
	eng := NewEngine(h)
	eng.Opt = core.MigrateOptions{StopPages: 1, MaxRounds: 10}
	vm, reps, err := eng.AdmitWithRebalance(context.Background(), kvmProc(),
		core.VMSpec{Name: "p", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].VM != "other" {
		t.Fatalf("migrations = %+v, want one move of \"other\"", reps)
	}
	if len(vm.Nodes()) != 2 {
		t.Errorf("admitted VM owns %d nodes, want 2", len(vm.Nodes()))
	}
	if err := AuditIsolation(h); err != nil {
		t.Error(err)
	}
}
