package migrate

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// bootEPTFree snapshots each socket's EPT-node free bytes.
func bootEPTFree(t *testing.T, h *core.Hypervisor) map[int]uint64 {
	t.Helper()
	out := map[int]uint64{}
	for _, n := range h.Topology().NodesOfKind(numa.EPTReserved) {
		a, err := h.Allocator(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		out[n.Socket] = a.FreeBytes()
	}
	return out
}

// migDest picks unowned guest nodes on the target socket covering bytes;
// ok is false when the socket cannot host the VM right now.
func migDest(h *core.Hypervisor, socket int, bytes uint64) ([]int, bool) {
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return nil, false
		}
		ids = append(ids, n.ID)
		capacity += a.FreeBytes()
		if capacity >= bytes {
			return ids, true
		}
	}
	return nil, false
}

// checkEPTPlacement asserts the relocation invariant: every VM's table
// pages fall inside exactly its current socket's EPT ranges, and each
// socket's EPT pool holds exactly the table pages of the VMs homed there.
func checkEPTPlacement(t *testing.T, h *core.Hypervisor, bootFree map[int]uint64, step string) {
	t.Helper()
	wantUsed := map[int]uint64{} // socket -> bytes VM tables should occupy
	for _, vm := range h.VMs() {
		home, err := h.EPTNode(vm.EPTSocket())
		if err != nil {
			t.Fatal(err)
		}
		for _, pa := range vm.Tables().Pages() {
			if !home.Contains(pa) {
				t.Fatalf("%s: VM %q table page %#x outside socket %d's EPT ranges",
					step, vm.Name(), pa, vm.EPTSocket())
			}
		}
		wantUsed[vm.EPTSocket()] += uint64(len(vm.Tables().Pages())) * geometry.PageSize4K
	}
	for socket, free := range bootFree {
		n, err := h.EPTNode(socket)
		if err != nil {
			t.Fatal(err)
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := a.FreeBytes(), free-wantUsed[socket]; got != want {
			t.Fatalf("%s: socket %d EPT free = %d, want %d (boot %d minus %d of resident tables)",
				step, socket, got, want, free, wantUsed[socket])
		}
	}
	if err := AuditIsolation(h); err != nil {
		t.Fatalf("%s: %v", step, err)
	}
}

// TestEPTRelocationProperty drives random sequences of cross-socket
// migrations and resizes and asserts, after every step, that EPT table
// pages sit in exactly one socket's guard-protected ranges and that vacated
// sockets' EPT pools return to their boot value.
func TestEPTRelocationProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := bootSiloz(t)
			bootFree := bootEPTFree(t, h)
			vm := mustCreate(t, h, "prop", 0, 64*geometry.MiB)
			if err := vm.WriteGuest(999, []byte{0xA5}); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 6; step++ {
				op := rng.Intn(3)
				label := fmt.Sprintf("step %d op %d", step, op)
				switch op {
				case 0: // cross-socket migration (relative to the EPT home)
					target := 1 - vm.EPTSocket()
					bytes := vm.Spec().MemoryBytes
					dests, ok := migDest(h, target, bytes)
					if !ok {
						continue // target socket full right now; property still holds
					}
					if _, err := h.MigrateVM(context.Background(), "prop", dests, core.MigrateOptions{
						GuestStep: func(round int) error {
							return vm.WriteGuest(uint64(round)*geometry.PageSize2M, []byte{byte(round)})
						},
					}); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				case 1: // grow to 128 MiB (hotplug or deflate)
					if vm.Spec().MemoryBytes >= 128*geometry.MiB {
						continue
					}
					if _, err := h.ResizeVM("prop", 128*geometry.MiB); err != nil {
						continue // infeasible under current occupancy; fine
					}
				case 2: // shrink back to 64 MiB (balloon inflate)
					if _, err := h.ResizeVM("prop", 64*geometry.MiB); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				checkEPTPlacement(t, h, bootFree, label)
			}
			// The guest's data survived the whole sequence.
			buf := make([]byte, 1)
			if err := vm.ReadGuest(999, buf); err != nil || buf[0] != 0xA5 {
				t.Fatalf("payload after sequence: %#x, %v", buf, err)
			}
		})
	}
}

func TestDefragmentReclaimsEPT(t *testing.T) {
	h := bootSiloz(t)
	planner := NewPlanner(h)
	for i := 0; i < 3; i++ {
		mustCreate(t, h, fmt.Sprintf("vm%d", i), 0, 64*geometry.MiB)
	}
	occ, err := planner.EPTOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 2 || occ[0].Socket != 0 || occ[1].Socket != 1 {
		t.Fatalf("EPT occupancy = %+v, want one row per socket", occ)
	}
	if occ[0].TablePages == 0 || occ[1].TablePages != 0 {
		t.Fatalf("boot EPT usage: socket0=%d socket1=%d table pages", occ[0].TablePages, occ[1].TablePages)
	}
	before0 := occ[0].TablePages

	reps, err := NewEngine(h).Defragment(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("defragmentation moved nothing")
	}
	pages, bytes := EPTReclaimed(reps)
	if pages == 0 || bytes != uint64(pages)*geometry.PageSize4K {
		t.Fatalf("EPTReclaimed = %d pages, %d bytes", pages, bytes)
	}
	occ, err = planner.EPTOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	if occ[0].TablePages != before0-pages {
		t.Errorf("socket 0 EPT pages = %d, want %d reclaimed from %d", occ[0].TablePages, pages, before0)
	}
	if occ[1].TablePages != pages {
		t.Errorf("socket 1 EPT pages = %d, want %d", occ[1].TablePages, pages)
	}
}
