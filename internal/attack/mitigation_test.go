package attack

import (
	"testing"

	"repro/internal/mitigation"
)

func trialConfig(k mitigation.Kind, seed int64) MitigationTrialConfig {
	cfg := campaignLabConfig()
	cfg.Mitigation = mitigation.Spec{Kind: k, Seed: seed}
	return MitigationTrialConfig{Core: cfg, Seed: seed, FuzzPatterns: 4, ChurnRounds: 1}
}

// TestMitigationTrialDifferentiatesDefenses is the heart of the matrix:
// the identical seeded campaign must corrupt the victim on the undefended
// machine and be contained by every real defense — each through its own
// mechanism, visible in the ledger.
func TestMitigationTrialDifferentiatesDefenses(t *testing.T) {
	run := func(k mitigation.Kind) *MitigationTrialResult {
		t.Helper()
		r, err := RunMitigationTrial(trialConfig(k, 7))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if r.HammerBursts == 0 {
			t.Fatalf("%v: no bursts landed; trial vacuous", k)
		}
		return r
	}

	none := run(mitigation.KindNone)
	if none.Escapes() == 0 {
		t.Errorf("undefended trial contained the attack (escapes = 0); matrix has no baseline signal")
	}
	if none.Refreshes != 0 {
		t.Errorf("undefended trial injected %d refreshes", none.Refreshes)
	}

	sb := run(mitigation.KindSilverBullet)
	if sb.Escapes() != 0 {
		t.Errorf("silver-bullet let %d flips escape (victim %d, stray %d)",
			sb.Escapes(), sb.VictimFlips, sb.StrayFlips)
	}
	if sb.Refreshes == 0 {
		t.Errorf("silver-bullet recorded no proactive refreshes")
	}

	catt := run(mitigation.KindCATT)
	if catt.Escapes() != 0 {
		t.Errorf("catt let %d flips escape (victim %d, stray %d)",
			catt.Escapes(), catt.VictimFlips, catt.StrayFlips)
	}
	if catt.BlockedBytes == 0 {
		t.Errorf("catt blocked no capacity")
	}

	siloz := run(mitigation.KindSiloz)
	if siloz.Escapes() != 0 {
		t.Errorf("siloz let %d flips escape (victim %d, stray %d)",
			siloz.Escapes(), siloz.VictimFlips, siloz.StrayFlips)
	}
	if siloz.VictimCorruptions != 0 {
		t.Errorf("siloz victim lost %d stamped bytes", siloz.VictimCorruptions)
	}

	para := run(mitigation.KindPARA)
	if para.Refreshes == 0 {
		t.Errorf("para recorded no probabilistic refreshes")
	}
	t.Logf("none: %+v", none)
	t.Logf("para: %+v", para)
	t.Logf("sb:   %+v", sb)
	t.Logf("catt: %+v", catt)
	t.Logf("siloz:%+v", siloz)
}

// TestMitigationTrialDeterministic: a fixed seed reproduces the whole
// scorecard, which is what lets the matrix run its cells in parallel.
func TestMitigationTrialDeterministic(t *testing.T) {
	a, err := RunMitigationTrial(trialConfig(mitigation.KindPARA, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMitigationTrial(trialConfig(mitigation.KindPARA, 11))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different scorecards:\n%+v\n%+v", *a, *b)
	}
}
