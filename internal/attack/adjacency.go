package attack

import (
	"errors"
	"fmt"
)

// DRAMDig-style row-adjacency inference: before mounting a lifecycle
// campaign the attacker verifies, from inside its own domain, that its
// reverse-engineered address mapping really places rows where it thinks —
// hammering a row it believes sits between two others must disturb exactly
// those neighbors. Subarray-SIZE inference (InferSubarraySize) needs runs
// that span subarray boundaries and therefore only works host-side; a Siloz
// guest never spans a boundary, so adjacency is all an in-VM attacker can
// (and needs to) confirm.

// AdjacencyReport summarizes one inference pass.
type AdjacencyReport struct {
	// Probed counts aggressor/victim neighbor pairs tested.
	Probed int
	// Confirmed counts pairs where hammering the aggressor disturbed the
	// predicted neighbor.
	Confirmed int
	// RowPitch is the confirmed physical distance between consecutive
	// attacker-visible rows (1 when adjacency holds; 0 if nothing
	// confirmed, i.e. the mapping hypothesis failed).
	RowPitch int
}

// ErrNoAdjacentRows reports a target without three consecutive rows to
// probe.
var ErrNoAdjacentRows = errors.New("attack: target exposes no run of 3+ consecutive rows")

// InferAdjacency probes up to pairs aggressor-centered triples of
// consecutive rows: fill both predicted neighbors with pat, hammer the
// middle row with acts activations, close the refresh window, and check the
// neighbors for disturbance. Probed triples are chosen by the seeded RNG so
// repeated runs sample different parts of the target deterministically.
// Victim rows are restored (refilled) after each probe.
func InferAdjacency(t Target, acts, pairs int, pat byte, seed int64) (*AdjacencyReport, error) {
	var triples [][3]RowRef
	for _, run := range runs(t.Rows()) {
		for i := 1; i+1 < len(run); i++ {
			triples = append(triples, [3]RowRef{run[i-1], run[i], run[i+1]})
		}
	}
	if len(triples) == 0 {
		return nil, ErrNoAdjacentRows
	}
	rng := rngFrom(seed)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
	if pairs > 0 && pairs < len(triples) {
		triples = triples[:pairs]
	}

	rep := &AdjacencyReport{}
	for _, tr := range triples {
		lo, agg, hi := tr[0], tr[1], tr[2]
		for _, v := range []RowRef{lo, hi} {
			if err := t.FillRow(v, pat); err != nil {
				return nil, fmt.Errorf("attack: filling victim row %d: %w", v.Row, err)
			}
		}
		if err := t.FillRow(agg, ^pat); err != nil {
			return nil, fmt.Errorf("attack: filling aggressor row %d: %w", agg.Row, err)
		}
		if err := t.Hammer(agg, acts, 0); err != nil {
			return nil, fmt.Errorf("attack: hammering row %d: %w", agg.Row, err)
		}
		t.EndWindow()
		for _, v := range []RowRef{lo, hi} {
			rep.Probed++
			c, err := t.CheckRow(v, pat)
			if err != nil {
				return nil, fmt.Errorf("attack: checking victim row %d: %w", v.Row, err)
			}
			if len(c) > 0 {
				rep.Confirmed++
			}
			if err := t.FillRow(v, pat); err != nil {
				return nil, err
			}
		}
	}
	if rep.Confirmed > 0 {
		rep.RowPitch = 1
	}
	return rep, nil
}
