package attack

import (
	"fmt"
	"math/rand"
)

// Batch is one scheduled burst of activations of a run-relative row.
type Batch struct {
	// RunIndex is the row's index within the contiguous run.
	RunIndex int
	// Count is the activations in this burst.
	Count int
	// OpenNs holds the row open per activation (RowPress component).
	OpenNs int64
}

// Pattern is a frequency-domain hammering schedule over a contiguous run of
// rows: Rounds repetitions of the Schedule, in order. Blacksmith-style
// evasion comes from the schedule shape — high-amplitude decoys pin the TRR
// sampler while lower-amplitude aggressor pairs slip past it.
type Pattern struct {
	// Name labels the pattern for reporting.
	Name string
	// Schedule is the per-round batch order.
	Schedule []Batch
	// Rounds is how many times the schedule repeats per refresh window.
	Rounds int
	// MinRun is the smallest run length the pattern fits in.
	MinRun int
}

// ActsPerWindow returns the bank activation budget the pattern consumes.
func (p Pattern) ActsPerWindow() int {
	per := 0
	for _, b := range p.Schedule {
		per += b.Count
	}
	return per * p.Rounds
}

// DoubleSided builds the classic double-sided pattern: two aggressors
// around one victim, no decoys. Defeated by TRR (§2.5); kept as the
// baseline attack.
func DoubleSided(actsPerRound, rounds int) Pattern {
	return Pattern{
		Name: "double-sided",
		Schedule: []Batch{
			{RunIndex: 0, Count: actsPerRound},
			{RunIndex: 2, Count: actsPerRound},
		},
		Rounds: rounds,
		MinRun: 3,
	}
}

// ManySided builds a Blacksmith-style pattern: `decoys` high-amplitude rows
// followed by `pairs` double-sided aggressor pairs at lower amplitude. The
// decoys occupy the TRR sampler's table; each pair's victim sits between
// its aggressors. The layout is compact — contiguous attacker memory only
// yields short runs of consecutive rows (the mapping's chunk structure), so
// decoys sit back to back with a 2-row gap before the first pair.
func ManySided(pairs, decoys, decoyAmp, aggAmp, rounds int) Pattern {
	p := Pattern{
		Name:   fmt.Sprintf("many-sided-%dp%dd", pairs, decoys),
		Rounds: rounds,
	}
	// Decoys first each round (phase matters: they refill the sampler
	// right after each TRR event).
	for d := 0; d < decoys; d++ {
		p.Schedule = append(p.Schedule, Batch{RunIndex: d, Count: decoyAmp})
	}
	idx := decoys
	if decoys > 0 {
		idx += 2 // keep pair victims outside the decoys' blast radius
	}
	for a := 0; a < pairs; a++ {
		p.Schedule = append(p.Schedule,
			Batch{RunIndex: idx, Count: aggAmp},
			Batch{RunIndex: idx + 2, Count: aggAmp},
		)
		idx += 3
	}
	p.MinRun = idx
	return p
}

// HalfDouble builds a Half-Double pattern [83]: heavily-hammered "far"
// aggressors two rows from the victim, assisted by lightly-hammered "near"
// rows, flip the victim at distance 2 — the attack class that forces modern
// DIMMs to need 4 guard rows per protected row (§6). Layout over a 5-row
// span: far, near, victim, near, far.
func HalfDouble(farActs, nearActs, rounds int) Pattern {
	return Pattern{
		Name: "half-double",
		Schedule: []Batch{
			{RunIndex: 0, Count: farActs},
			{RunIndex: 4, Count: farActs},
			{RunIndex: 1, Count: nearActs},
			{RunIndex: 3, Count: nearActs},
		},
		Rounds: rounds,
		MinRun: 5,
	}
}

// RowPressPattern keeps aggressors open for a long dwell per activation,
// needing far fewer activations (§2.5 RowPress).
func RowPressPattern(actsPerRound, rounds int, openNs int64) Pattern {
	return Pattern{
		Name: "rowpress",
		Schedule: []Batch{
			{RunIndex: 0, Count: actsPerRound, OpenNs: openNs},
			{RunIndex: 2, Count: actsPerRound, OpenNs: openNs},
		},
		Rounds: rounds,
		MinRun: 3,
	}
}

// Synchronized pads the pattern's first decoy batch so that one round
// consumes exactly roundActs activations. Against a periodic TRR mechanism
// firing every roundActs activations, this phase-locks the pattern: every
// TRR event lands at the end of a round, when the sampler table holds only
// decoys, so aggressor pairs are never refreshed — the SMASH/Blacksmith
// synchronization trick. Returns the pattern unchanged if it already
// exceeds roundActs per round or has no decoy to pad.
func (p Pattern) Synchronized(roundActs int) Pattern {
	per := 0
	for _, b := range p.Schedule {
		per += b.Count
	}
	if per >= roundActs || len(p.Schedule) == 0 {
		return p
	}
	sched := make([]Batch, len(p.Schedule))
	copy(sched, p.Schedule)
	sched[0].Count += roundActs - per
	p.Schedule = sched
	p.Name += fmt.Sprintf("-sync%d", roundActs)
	return p
}

// candidateIntervals are TRR periods the fuzzer tries to synchronize with;
// real Blacksmith sweeps pattern lengths for the same reason.
var candidateIntervals = []int{2500, 4000, 5000, 6000, 8000, 10000}

// RandomPattern synthesizes a fuzzing candidate: random pair count, decoy
// count, amplitudes, dwell and synchronization, bounded by the activation
// budget.
func RandomPattern(rng *rand.Rand, maxActs int) Pattern {
	pairs := 1 + rng.Intn(3)
	decoys := rng.Intn(9)
	decoyAmp := 200 + rng.Intn(600)
	aggAmp := 40 + rng.Intn(160)
	p := ManySided(pairs, decoys, decoyAmp, aggAmp, 1)
	if decoys > 0 && rng.Intn(3) > 0 {
		p = p.Synchronized(candidateIntervals[rng.Intn(len(candidateIntervals))])
	}
	perRound := p.ActsPerWindow()
	rounds := maxActs / perRound
	if rounds < 1 {
		rounds = 1
	}
	p.Rounds = rounds
	if rng.Intn(4) == 0 { // occasionally explore RowPress dwell
		for i := range p.Schedule {
			p.Schedule[i].OpenNs = int64(rng.Intn(5000))
		}
		p.Name += "-press"
	}
	p.Name += fmt.Sprintf("-r%d", rounds)
	return p
}
