package attack

import (
	"fmt"
)

// This file implements the mFIT-style subarray size inference of §4.1: even
// without vendor cooperation, software can determine subarray boundaries by
// hammering rows and observing where attacks *fail* — disturbance does not
// cross subarray boundaries (§2.5), so a victim on the far side of a
// boundary never flips while a control victim on the near side does.
// Consistent failures at every multiple of n rows reveal an n-row subarray.

// InferenceConfig parameterizes the probe.
type InferenceConfig struct {
	// Candidates are the subarray sizes to test, ascending (the
	// commodity range); the smallest size whose multiples all behave as
	// boundaries is reported.
	Candidates []int
	// ActsPerAggressor is the hammer intensity per probe; it must exceed
	// the DIMM's threshold comfortably.
	ActsPerAggressor int
	// ProbesPerCandidate is how many boundaries to sample per candidate.
	ProbesPerCandidate int
	// Decoys is the number of high-amplitude decoy rows used to pin a
	// TRR sampler during probing (0 for DIMMs without TRR).
	Decoys int
	// DecoyAmp and AggAmp are per-round burst sizes when decoys are used.
	DecoyAmp, AggAmp int
	// SyncActs pads each decoy round to a fixed activation count,
	// phase-locking probes to a periodic TRR mechanism (0 disables).
	SyncActs int
	// FillPattern is the victim data pattern (its complement is also
	// swept).
	FillPattern byte
}

// DefaultInferenceConfig covers the modern subarray size range [155] with
// TRR-evading probe parameters.
func DefaultInferenceConfig() InferenceConfig {
	return InferenceConfig{
		Candidates:         []int{256, 512, 1024, 2048},
		ActsPerAggressor:   20_000,
		ProbesPerCandidate: 3,
		Decoys:             8,
		DecoyAmp:           400,
		AggAmp:             100,
		SyncActs:           5_000,
		FillPattern:        0xAA,
	}
}

// InferSubarraySize probes the target and returns the inferred rows per
// subarray. The target must expose a long contiguous run of rows (e.g. a
// PhysTarget over a whole bank).
func InferSubarraySize(t Target, cfg InferenceConfig) (int, error) {
	rows := t.Rows()
	if len(rows) == 0 {
		return 0, fmt.Errorf("attack: no rows to probe")
	}
	var best []RowRef
	for _, r := range runs(rows) {
		if len(r) > len(best) {
			best = r
		}
	}
	for _, candidate := range cfg.Candidates {
		matched, conclusive := 0, 0
		for probe := 1; probe <= cfg.ProbesPerCandidate; probe++ {
			boundary := probe * candidate
			idx := boundary - best[0].Row
			if idx-blockRows-2-cfg.Decoys < 0 || idx+blockRows >= len(best) {
				break
			}
			crossFlipped, controlFlipped, err := probeBoundary(t, best, idx, cfg)
			if err != nil {
				return 0, err
			}
			// A probe with no control flips is inconclusive (the
			// block below the boundary happens to have no weak
			// cells).
			if !controlFlipped {
				continue
			}
			conclusive++
			if !crossFlipped {
				matched++
			}
		}
		if conclusive >= 2 && matched == conclusive {
			return candidate, nil
		}
	}
	return 0, fmt.Errorf("attack: no candidate size matched the failure pattern")
}

// blockRows is the probe block size: internal transformations permute rows
// within 8-row blocks at boundaries (scrambling) but never across them, so
// hammering all 8 media rows below a suspected boundary covers every
// internal position adjacent to it, and the cross victims' internal
// positions map back into the 8 media rows above it.
const blockRows = 8

// probeBoundary hammers each of the blockRows media rows below the
// suspected boundary (with decoy cover and TRR synchronization if
// configured) and reports whether any row above the boundary flipped
// (cross) and whether any row below did (control).
func probeBoundary(t Target, run []RowRef, idx int, cfg InferenceConfig) (cross, control bool, err error) {
	low := run[idx-blockRows : idx]
	high := run[idx : idx+blockRows]
	for _, pat := range []byte{cfg.FillPattern, ^cfg.FillPattern} {
		for _, r := range low {
			if err := t.FillRow(r, pat); err != nil {
				return false, false, err
			}
		}
		for _, r := range high {
			if err := t.FillRow(r, pat); err != nil {
				return false, false, err
			}
		}
		for _, agg := range low {
			if err := hammerCovered(t, run, agg, cfg); err != nil {
				return false, false, err
			}
			t.EndWindow() // fresh activation budget per aggressor
		}
		for _, r := range high {
			cs, err := t.CheckRow(r, pat)
			if err != nil {
				return false, false, err
			}
			if len(cs) > 0 {
				cross = true
			}
		}
		for _, r := range low {
			cs, err := t.CheckRow(r, pat)
			if err != nil {
				return false, false, err
			}
			if len(cs) > 0 {
				control = true
			}
		}
	}
	return cross, control, nil
}

// hammerCovered delivers cfg.ActsPerAggressor activations to agg, hidden
// behind decoy rows synchronized to the suspected TRR period.
func hammerCovered(t Target, run []RowRef, agg RowRef, cfg InferenceConfig) error {
	if cfg.Decoys == 0 {
		return t.Hammer(agg, cfg.ActsPerAggressor, 0)
	}
	decoys := run[:cfg.Decoys] // far from the probe area
	remaining := cfg.ActsPerAggressor
	for remaining > 0 {
		spent := 0
		for _, d := range decoys {
			if err := t.Hammer(d, cfg.DecoyAmp, 0); err != nil {
				return err
			}
			spent += cfg.DecoyAmp
		}
		burst := cfg.AggAmp
		if burst > remaining {
			burst = remaining
		}
		if err := t.Hammer(agg, burst, 0); err != nil {
			return err
		}
		spent += burst
		remaining -= burst
		// Synchronization padding on the first decoy.
		if cfg.SyncActs > spent {
			if err := t.Hammer(decoys[0], cfg.SyncActs-spent, 0); err != nil {
				return err
			}
		}
	}
	return nil
}
