package attack_test

import (
	"fmt"

	"repro/internal/attack"
)

// ExampleManySided builds a Blacksmith-style schedule: high-amplitude
// decoys pin the TRR sampler while lower-amplitude pairs hammer, and
// synchronization phase-locks TRR events into the decoy phase.
func ExampleManySided() {
	p := attack.ManySided(2, 4, 400, 100, 10).Synchronized(5000)
	fmt.Println(p.Name)
	fmt.Printf("rows needed: %d, activations per window: %d\n", p.MinRun, p.ActsPerWindow())
	// Output:
	// many-sided-2p4d-sync5000
	// rows needed: 12, activations per window: 50000
}
