package attack

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/subarray"
)

func testGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// physEnv builds memory plus a PhysTarget over one subarray group.
func physEnv(t *testing.T, prof dram.Profile) (*dram.Memory, *PhysTarget) {
	t.Helper()
	g := testGeometry()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{prof}, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := subarray.NewLayout(g, mapper)
	if err != nil {
		t.Fatal(err)
	}
	grp := layout.Group(0, 1)
	var ranges []PhysRange
	for _, r := range grp.Ranges {
		ranges = append(ranges, PhysRange{Start: r.Start, End: r.End})
	}
	return mem, &PhysTarget{Mem: mem, Ranges: ranges}
}

func TestPhysTargetRowsAreConsecutiveGroupRows(t *testing.T) {
	_, target := physEnv(t, dram.ProfileF())
	rows := target.Rows()
	g := testGeometry()
	if len(rows) != g.RowsPerSubarray {
		t.Fatalf("rows = %d, want %d (one subarray group)", len(rows), g.RowsPerSubarray)
	}
	rs := runs(rows)
	if len(rs) != 1 {
		t.Fatalf("runs = %d, want 1 contiguous run", len(rs))
	}
	for i, r := range rows {
		if r.Row != rows[0].Row+i {
			t.Fatalf("row %d not consecutive: %d vs base %d", i, r.Row, rows[0].Row)
		}
		if r.Row/g.RowsPerSubarray != 1 {
			t.Fatalf("row %d outside group 1", r.Row)
		}
	}
}

func TestFillCheckRoundTrip(t *testing.T) {
	_, target := physEnv(t, dram.ProfileF())
	r := target.Rows()[10]
	if err := target.FillRow(r, 0x5A); err != nil {
		t.Fatal(err)
	}
	cs, err := target.CheckRow(r, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Fatalf("clean row reported %d corruptions", len(cs))
	}
	if cs, err = target.CheckRow(r, 0xFF); err != nil || len(cs) == 0 {
		t.Fatal("wrong-pattern check found nothing")
	}
}

func TestDoubleSidedDefeatedByTRRButNotWithoutIt(t *testing.T) {
	noTRR := dram.ProfileF()
	noTRR.VulnerableRowFraction = 1
	noTRR.Transforms = addr.TransformConfig{}
	mem, target := physEnv(t, noTRR)
	f := NewFuzzer(DefaultFuzzerConfig())
	rows := target.Rows()
	p := DoubleSided(200, 300) // 60000 acts per aggressor
	cs, err := f.HammerPattern(target, rows, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("double-sided found nothing without TRR")
	}
	_ = mem

	withTRR := dram.ProfileA()
	withTRR.Transforms = addr.TransformConfig{}
	_, target2 := physEnv(t, withTRR)
	cs2, err := f.HammerPattern(target2, target2.Rows(), 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs2) != 0 {
		t.Fatalf("double-sided bypassed TRR: %d corruptions", len(cs2))
	}
}

func TestManySidedBypassesTRR(t *testing.T) {
	prof := dram.ProfileA()
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	_, target := physEnv(t, prof)
	f := NewFuzzer(DefaultFuzzerConfig())
	// 4 decoys pin profile A's 4-entry sampler; synchronizing the round
	// to the TRR period phase-locks every refresh event into the decoys.
	p := ManySided(1, 4, 400, 100, 600).Synchronized(dram.ProfileA().TRRInterval)
	cs, err := f.HammerPattern(target, target.Rows(), 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("many-sided pattern failed to bypass TRR")
	}
}

func TestRowPressPatternFlipsWithFewActivations(t *testing.T) {
	prof := dram.ProfileF()
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	_, target := physEnv(t, prof)
	f := NewFuzzer(DefaultFuzzerConfig())
	// 2500 activations per aggressor, far below the 20000 threshold, but
	// 50 µs dwell per activation doubles the per-ACT disturbance.
	p := RowPressPattern(50, 150, 50_000)
	cs, err := f.HammerPattern(target, target.Rows(), 10, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("RowPress dwell pattern found nothing")
	}
	// The same activation count with no dwell is harmless.
	_, fresh := physEnv(t, prof)
	p2 := DoubleSided(50, 150)
	cs2, err := f.HammerPattern(fresh, fresh.Rows(), 10, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs2) != 0 {
		t.Fatal("plain low-count hammering should not flip")
	}
}

func TestFuzzerFindsFlipsOnEveryEvaluationDIMM(t *testing.T) {
	// Table 3 precondition: the extended Blacksmith fuzzer produces bit
	// flips on all six DIMM profiles despite TRR and internal transforms.
	for _, prof := range dram.EvaluationProfiles() {
		prof := prof
		t.Run("DIMM-"+prof.Name, func(t *testing.T) {
			_, target := physEnv(t, prof)
			cfg := DefaultFuzzerConfig()
			cfg.Patterns = 40
			rep, err := NewFuzzer(cfg).Run(target)
			if err != nil {
				t.Fatal(err)
			}
			if rep.EffectivePatterns == 0 {
				t.Fatalf("no effective patterns on DIMM %s (%d tried)", prof.Name, rep.PatternsTried)
			}
			if rep.BestPattern == "" || len(rep.Corruptions) == 0 {
				t.Fatalf("report inconsistent: %+v", rep)
			}
		})
	}
}

func TestFuzzerDeterministic(t *testing.T) {
	prof := dram.ProfileF()
	run := func() Report {
		_, target := physEnv(t, prof)
		rep, err := NewFuzzer(DefaultFuzzerConfig()).Run(target)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.PatternsTried != b.PatternsTried || a.EffectivePatterns != b.EffectivePatterns ||
		len(a.Corruptions) != len(b.Corruptions) {
		t.Errorf("fuzzer not deterministic: %+v vs %+v", a, b)
	}
}

func TestFuzzerStaysInsideItsRanges(t *testing.T) {
	// A fuzzer pinned to one subarray group must only corrupt that group
	// (§7.1 hammering containment, attacker's ground truth view).
	prof := dram.ProfileD()
	mem, target := physEnv(t, prof)
	cfg := DefaultFuzzerConfig()
	cfg.Patterns = 30
	rep, err := NewFuzzer(cfg).Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EffectivePatterns == 0 {
		t.Fatal("fuzzer found nothing")
	}
	g := testGeometry()
	for _, f := range mem.Flips() {
		if got := f.MediaRow / g.RowsPerSubarray; got != 1 {
			t.Errorf("flip escaped subarray group 1: %v (group %d)", f, got)
		}
	}
}

func TestVMTargetFuzzing(t *testing.T) {
	prof := dram.ProfileA()
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	h, err := core.Boot(core.Config{
		Geometry:      testGeometry(),
		Profiles:      []dram.Profile{prof},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(core.Process{KVMPrivileged: true},
		core.VMSpec{Name: "attacker", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	target := &VMTarget{VM: vm}
	rows := target.Rows()
	if len(rows) == 0 {
		t.Fatal("VM target found no rows")
	}
	// All rows must be inside the VM's domain.
	for _, r := range rows[:10] {
		hpa, err := vm.Translate(r.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(hpa) {
			t.Fatalf("row addr %#x resolves outside the VM domain", r.Addr)
		}
	}
	cfg := DefaultFuzzerConfig()
	cfg.Patterns = 30
	rep, err := NewFuzzer(cfg).Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EffectivePatterns == 0 {
		t.Fatal("VM-confined fuzzer found no flips")
	}
	// Omniscient check: every flip stayed in the attacker's domain.
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("flip escaped VM domain: %v", f)
		}
	}
}

func TestPatternAccounting(t *testing.T) {
	p := ManySided(2, 4, 400, 100, 10)
	if p.MinRun != 4+2+3*2 {
		t.Errorf("MinRun = %d", p.MinRun)
	}
	if got, want := p.ActsPerWindow(), (4*400+4*100)*10; got != want {
		t.Errorf("ActsPerWindow = %d, want %d", got, want)
	}
	if DoubleSided(100, 5).MinRun != 3 {
		t.Error("DoubleSided MinRun wrong")
	}
}

func TestHammerPatternRejectsShortRun(t *testing.T) {
	_, target := physEnv(t, dram.ProfileF())
	f := NewFuzzer(DefaultFuzzerConfig())
	rows := target.Rows()[:2]
	if _, err := f.HammerPattern(target, rows, 0, DoubleSided(10, 1)); err == nil {
		t.Error("pattern on too-short run accepted")
	}
}

func TestRunsSplitsOnGaps(t *testing.T) {
	g := testGeometry()
	b := geometry.BankID{Socket: 0}
	rows := []RowRef{
		{Bank: b, Row: 10}, {Bank: b, Row: 11}, {Bank: b, Row: 13},
		{Bank: geometry.BankID{Socket: 0, Bank: 1}, Row: 14},
	}
	rs := runs(rows)
	if len(rs) != 3 {
		t.Fatalf("runs = %d, want 3", len(rs))
	}
	_ = g
}

func TestHalfDoubleFlipsAtDistanceTwo(t *testing.T) {
	// Half-Double [83]: far aggressors at distance 2 flip the victim even
	// when the near rows alone stay below threshold. Distance-2 weight
	// 0.25 on profile F (threshold 20000): far rows at 90000 acts
	// contribute 2*0.25*90000 = 45000; near rows at 4000 contribute
	// 2*4000 = 8000; together 53000 >= 20000, near alone would not flip.
	prof := dram.ProfileF()
	prof.VulnerableRowFraction = 1
	prof.Transforms = addr.TransformConfig{}
	_, target := physEnv(t, prof)
	f := NewFuzzer(DefaultFuzzerConfig())
	p := HalfDouble(300, 40, 100) // per window: far 30000, near 4000
	rows := target.Rows()
	cs, err := f.HammerPattern(target, rows, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("half-double pattern produced no corruption")
	}
	// The near rows alone (same counts) stay below threshold.
	_, fresh := physEnv(t, prof)
	pNear := Pattern{
		Name: "near-only",
		Schedule: []Batch{
			{RunIndex: 1, Count: 40},
			{RunIndex: 3, Count: 40},
		},
		Rounds: 100, MinRun: 5,
	}
	cs2, err := f.HammerPattern(fresh, fresh.Rows(), 50, pNear)
	if err != nil {
		t.Fatal(err)
	}
	// The victim (index 2) must not be corrupted by near rows alone;
	// rows adjacent to the near aggressors may flip, so filter to the
	// victim row.
	victim := fresh.Rows()[52]
	for _, c := range cs2 {
		if c.Addr >= victim.Addr && c.Addr < victim.Addr+uint64(8*geometry.KiB) {
			t.Fatalf("near-only hammering flipped the distance-2 victim")
		}
	}
}
