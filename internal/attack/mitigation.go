package attack

// Head-to-head mitigation trials: the same attacker runs the same seeded
// campaign against a machine deploying each candidate Rowhammer defense —
// PARA, Silver Bullet, CATT guard bands, Siloz subarray-group isolation,
// or nothing — and every resulting flip is attributed to the memory it
// corrupted. The trial is the protection half of the mitigation-matrix
// experiment; the overhead half (refresh energy, blocked capacity,
// workload slowdown) is read off the same machine afterwards.
//
// The campaign has three phases, all driven from one goroutine so a fixed
// seed reproduces the run bit for bit:
//
//  1. Edge hammering: repeated sub-threshold bursts against the rows at
//     the attacker's extent boundaries — the textbook inter-tenant attack.
//     Bursts stay below the flip threshold individually so activation-plane
//     defenses get the reaction window real hardware gives them; only
//     sustained accumulation across bursts flips bits.
//  2. Blacksmith fuzzing: synthesized non-uniform patterns inside the
//     attacker's own rows, the TRR-evasion workload of §7.
//  3. Lifecycle churn: more edge bursts interleaved with balloon-backed
//     resizes of the victim, probing whether the defense's placement
//     guarantees survive frames changing owners.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geometry"
)

// MitigationTrialConfig parameterizes one defended-machine trial.
type MitigationTrialConfig struct {
	// Core is the lab machine; Core.Mitigation selects the defense under
	// test and the hypervisor mode follows it (core.BootMitigated).
	Core core.Config
	// Seed drives every random choice.
	Seed int64
	// VMBytes sizes the attacker and victim VMs (default 64 MiB).
	VMBytes uint64
	// BurstActs is the per-burst activation count for edge and churn
	// bursts. It must sit below the profile's flip threshold so defenses
	// can react between bursts (default 1000).
	BurstActs int
	// EdgeBursts is how many consecutive bursts hit each edge row within
	// one refresh window (default 24).
	EdgeBursts int
	// EdgeTargets caps how many boundary rows are attacked per phase
	// (default 4: both ends of the attacker's first and last row runs).
	EdgeTargets int
	// FuzzPatterns is the Blacksmith patterns synthesized in phase 2
	// (default 6).
	FuzzPatterns int
	// ChurnRounds is the resize cycles of phase 3 (default 2).
	ChurnRounds int
}

func (c *MitigationTrialConfig) normalize() {
	if c.VMBytes == 0 {
		c.VMBytes = 64 * geometry.MiB
	}
	if c.BurstActs <= 0 {
		c.BurstActs = 1000
	}
	if c.EdgeBursts <= 0 {
		c.EdgeBursts = 24
	}
	if c.EdgeTargets <= 0 {
		c.EdgeTargets = 4
	}
	if c.FuzzPatterns <= 0 {
		c.FuzzPatterns = 6
	}
	if c.ChurnRounds <= 0 {
		c.ChurnRounds = 2
	}
}

// MitigationTrialResult attributes every flip of one trial and carries the
// defense's overhead ledger. Protection failed iff Escapes() > 0.
type MitigationTrialResult struct {
	// Kind is the deployed defense's row label.
	Kind string

	// PatternsTried / EffectivePatterns summarize the Blacksmith phase
	// from the attacker's view.
	PatternsTried     int
	EffectivePatterns int
	// HammerBursts counts edge and churn bursts landed.
	HammerBursts int

	// AttackerFlips landed in the attacker's own memory — self-damage the
	// threat model tolerates. GuardFlips landed in memory the defense
	// deliberately sacrificed (CATT guard bands, Siloz/EPT guard rows,
	// offlined pages) — absorbed by design. VictimFlips landed in the
	// victim's memory and StrayFlips anywhere else (free pool, host
	// structures); both are containment failures.
	AttackerFlips int
	GuardFlips    int
	VictimFlips   int
	StrayFlips    int
	// VictimCorruptions counts stamped victim bytes that diverged.
	VictimCorruptions int
	// Denied counts attacker operations the machine refused.
	Denied int

	// Overhead ledger: proactive neighbourhood refreshes injected, budget
	// exhaustions suffered, bytes of capacity the defense blocked, and
	// total activations observed (the energy denominator).
	Refreshes    int
	Exhaustions  int
	BlockedBytes uint64
	Activations  int64
	// Health is the defense's degradation report, empty when intact.
	Health string
}

// Escapes counts flips outside both the attacker's memory and the
// defense's sacrificial guard capacity — the corruption a deployed
// mitigation exists to prevent.
func (r *MitigationTrialResult) Escapes() int { return r.VictimFlips + r.StrayFlips }

// RunMitigationTrial boots the defended machine, runs the three campaign
// phases, and attributes every flip.
func RunMitigationTrial(cfg MitigationTrialConfig) (*MitigationTrialResult, error) {
	cfg.normalize()
	h, err := core.BootMitigated(cfg.Core)
	if err != nil {
		return nil, err
	}
	defer h.Shutdown()
	attacker, err := h.CreateVM(campaignProc(), core.VMSpec{
		Name: "attacker", Socket: 0, MemoryBytes: cfg.VMBytes,
	})
	if err != nil {
		return nil, err
	}
	victim, err := h.CreateVM(campaignProc(), core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: cfg.VMBytes,
	})
	if err != nil {
		return nil, err
	}
	res := &MitigationTrialResult{Kind: cfg.Core.Mitigation.Name()}
	// Every phase drives the machine through a chunking wrapper: a
	// Go-level Hammer call is a modelling convenience, but the memory
	// controller observes individual ACT commands, so a defense must get
	// to react within a long burst — not only after it has fully landed.
	target := &chunkedTarget{
		Target:  &VMTarget{VM: attacker},
		quantum: cfg.BurstActs,
	}

	// Victim working set: stamped pages that must survive the campaign.
	// Only the low half is stamped — the churn phase balloons the top half
	// away and back, and re-admitted frames arrive scrubbed by design.
	stampPages := int(cfg.VMBytes / geometry.PageSize2M / 4)
	if stampPages > 4 {
		stampPages = 4
	}
	mirror := map[uint64][]byte{}
	for p := 0; p < stampPages; p++ {
		gpa := uint64(p) * geometry.PageSize2M
		data := campaignStamp(CampaignSeed(cfg.Seed, 10+p), 8*geometry.KiB)
		if err := victim.WriteGuest(gpa, data); err != nil {
			return nil, err
		}
		mirror[gpa] = data
	}

	// Phase 1: edge hammering.
	edges := edgeRows(target, cfg.EdgeTargets)
	hammerEdges := func() {
		for _, r := range edges {
			for b := 0; b < cfg.EdgeBursts; b++ {
				if err := target.Hammer(r, cfg.BurstActs, 0); err != nil {
					res.Denied++
					break
				}
			}
			res.HammerBursts += cfg.EdgeBursts
			target.EndWindow()
		}
	}
	hammerEdges()

	// Phase 2: Blacksmith fuzzing inside the attacker's rows.
	fz := DefaultFuzzerConfig()
	fz.Patterns = cfg.FuzzPatterns
	fz.Seed = CampaignSeed(cfg.Seed, 1)
	rep, err := NewFuzzer(fz).Run(target)
	if err != nil {
		return nil, err
	}
	res.PatternsTried = rep.PatternsTried
	res.EffectivePatterns = rep.EffectivePatterns

	// Phase 3: churn — edge bursts across balloon-backed victim resizes.
	for round := 0; round < cfg.ChurnRounds; round++ {
		if _, err := h.ResizeVM("victim", cfg.VMBytes/2); err != nil {
			return nil, fmt.Errorf("churn round %d shrink: %w", round, err)
		}
		hammerEdges()
		if _, err := h.ResizeVM("victim", cfg.VMBytes); err != nil {
			return nil, fmt.Errorf("churn round %d grow: %w", round, err)
		}
		hammerEdges()
	}

	// Attribution: every flip of the whole campaign, classified against
	// the machine's final ownership map.
	guard := map[uint64]bool{}
	for _, vm := range []*core.VM{attacker, victim} {
		for _, pa := range vm.GuardPages() {
			guard[pa] = true
		}
	}
	offlined := h.OfflinedRanges()
	mem := h.Memory()
	for _, f := range mem.Flips() {
		pa, err := mem.FlipPhys(f)
		if err != nil {
			continue
		}
		page := pa &^ uint64(geometry.PageSize2M-1)
		switch {
		case attacker.OwnsHPA(pa) || attacker.InDomain(pa):
			res.AttackerFlips++
		case victim.OwnsHPA(pa) || victim.InDomain(pa):
			res.VictimFlips++
		case guard[page]:
			res.GuardFlips++
		default:
			contained := false
			for _, r := range offlined {
				if r.Contains(pa) {
					contained = true
					break
				}
			}
			if contained {
				res.GuardFlips++
			} else {
				res.StrayFlips++
			}
		}
	}

	// Victim integrity on the stamped pages.
	got := make([]byte, 8*geometry.KiB)
	for gpa, want := range mirror {
		if err := victim.ReadGuest(gpa, got); err != nil {
			return nil, err
		}
		for i := range got {
			if got[i] != want[i] {
				res.VictimCorruptions++
			}
		}
	}

	// Overhead ledger.
	ov := mem.DefenseOverhead()
	res.Refreshes = ov.NeighborRefreshes
	res.Exhaustions = ov.Exhaustions
	res.BlockedBytes = h.MitigationBlockedBytes() + ov.BlockedBytes
	res.Activations = mem.TotalActivations()
	if err := mem.DefenseHealth(); err != nil {
		res.Health = err.Error()
	}
	return res, nil
}

// chunkedTarget splits every Hammer call into quantum-sized slices. The
// dram model accrues a whole ActivateRow call before the defense chain
// observes it, so an unchunked over-threshold burst would flip bits before
// any activation-plane defense could react — a window real hardware never
// offers, because the controller sees every ACT. Chunking restores
// command-granularity observation without changing flip outcomes: the
// disturbance accrual is additive across calls.
type chunkedTarget struct {
	Target
	quantum int
}

// Chunked wraps t so every Hammer call splits into quantum-sized slices —
// the command-granularity observation the trial uses, exported for drivers
// (siloz-blacksmith) attacking machines with activation-plane defenses.
func Chunked(t Target, quantum int) Target {
	return &chunkedTarget{Target: t, quantum: quantum}
}

func (t *chunkedTarget) Hammer(r RowRef, count int, openNs int64) error {
	for count > 0 {
		n := count
		if n > t.quantum {
			n = t.quantum
		}
		if err := t.Target.Hammer(r, n, openNs); err != nil {
			return err
		}
		count -= n
	}
	return nil
}

// edgeRows picks up to limit boundary rows of the attacker's runs: the
// first and last row of the first and last run, then inward. Boundary rows
// neighbour memory the attacker does not own — whether hammering them
// corrupts that memory is exactly what distinguishes the defenses.
func edgeRows(t Target, limit int) []RowRef {
	allRuns := runs(t.Rows())
	if len(allRuns) == 0 {
		return nil
	}
	var out []RowRef
	seen := map[int]bool{}
	add := func(r RowRef) {
		if len(out) < limit && !seen[r.Row] {
			seen[r.Row] = true
			out = append(out, r)
		}
	}
	first, last := allRuns[0], allRuns[len(allRuns)-1]
	add(first[0])
	add(last[len(last)-1])
	if len(first) > 1 {
		add(first[1])
	}
	if len(last) > 1 {
		add(last[len(last)-2])
	}
	return out
}
