package attack

// Adversarial lifecycle campaigns: Blacksmith-style hammering driven
// concurrently with the four VM-lifecycle windows where frames change
// owners, each preceded by the attacker's own mapping inference
// (InferAdjacency). The campaigns assert Siloz's containment invariant at
// every step — no flip outside the attacker's domain, audits clean, no
// unscrubbed frame ever observable — and each gap they found became a fix
// in core/migrate/fleet with a pinning regression test:
//
//   - migration: hammer inside every pre-copy round's OnRound window,
//     including the one between the final dirty drain and stop-and-copy
//     (the scrub-ledger hole; see TestMigrationScrubsDMAPoisonedFrame);
//   - balloon: hammer and probe while surrendered frames drain back to the
//     registry, between unmap and scrub-before-free;
//   - hotplug: probe adopted subarray-group nodes between the registry's
//     exclusive Expand and scrub-before-map;
//   - fleet: CATTmew-style double-ownership probes through cross-host
//     MoveVM's window where routing is committed to the destination but
//     the source copy still exists.
//
// Campaigns are deterministic: every interleaving runs through lifecycle
// hooks on one goroutine, and all randomness flows from the seeded RNG.

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/geometry"
	"repro/internal/migrate"
	"repro/internal/numa"
)

// campaignSeedSalt spaces per-campaign RNG streams; each consumer of
// randomness derives its own stream via CampaignSeed, never sharing one
// rand.Rand across hooks.
const campaignSeedSalt = 7919

// CampaignSeed derives the i-th stream from a base seed.
func CampaignSeed(base int64, i int) int64 { return base + int64(i)*campaignSeedSalt }

// Campaigns lists the lifecycle campaigns in canonical order.
func Campaigns() []string { return []string{"migration", "balloon", "hotplug", "fleet"} }

// CampaignConfig parameterizes one campaign run.
type CampaignConfig struct {
	// Core is the lab box configuration (deterministic profile expected).
	Core core.Config
	// Seed drives every random choice in the campaign.
	Seed int64
	// Rounds is the number of lifecycle iterations driven (default 2).
	Rounds int
	// VMBytes sizes the attacker and victim VMs (default 64 MiB — one
	// subarray-group node in the lab geometry).
	VMBytes uint64
	// HammerActs is the activation count per aggressor burst (default
	// 20000; must exceed the profile's threshold comfortably).
	HammerActs int
	// BurstRows is the number of aggressors hammered per lifecycle window
	// (default 4).
	BurstRows int
	// InferPairs bounds the adjacency triples probed before the campaign
	// (default 4).
	InferPairs int
}

func (c *CampaignConfig) normalize() {
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.VMBytes == 0 {
		c.VMBytes = 64 * geometry.MiB
	}
	if c.HammerActs <= 0 {
		c.HammerActs = 20_000
	}
	if c.BurstRows <= 0 {
		c.BurstRows = 4
	}
	if c.InferPairs <= 0 {
		c.InferPairs = 4
	}
}

// CampaignResult is one campaign's containment scorecard. A post-fix run
// must show CrossDomainFlips == WindowViolations == ScrubLeaks ==
// VictimCorruptions == AuditFailures == 0 while AttackerFlips and Denied
// stay non-zero (the attack ran and the isolation machinery pushed back).
type CampaignResult struct {
	Name   string
	Rounds int
	// HammerBursts counts aggressor bursts landed inside lifecycle
	// windows; AttackerFlips counts the resulting flips inside the
	// attacker's own domain (expected: the attack is real).
	HammerBursts  int
	AttackerFlips int
	// CrossDomainFlips counts flips observed outside the attacker's
	// domain — the inter-VM escape Siloz exists to prevent.
	CrossDomainFlips int
	// Denied counts probes the isolation machinery refused (unmapped
	// translations, stale DMA, operations rejected mid-move).
	Denied int
	// WindowViolations counts probes that reached state they must not
	// (e.g. a translation that still resolved mid-drain).
	WindowViolations int
	// ScrubLeaks counts freed or re-admitted frames observed non-zero.
	ScrubLeaks int
	// VictimCorruptions counts victim data words that diverged across a
	// lifecycle operation.
	VictimCorruptions int
	// AuditsPassed / AuditFailures tally isolation audits run after (and,
	// for the fleet campaign, inside) each window.
	AuditsPassed  int
	AuditFailures int
	// AdjacencyProbed / AdjacencyConfirmed report the attacker's mapping
	// inference preceding the campaign.
	AdjacencyProbed    int
	AdjacencyConfirmed int
}

// RunCampaign executes one named campaign and returns its scorecard.
func RunCampaign(name string, cfg CampaignConfig) (*CampaignResult, error) {
	cfg.normalize()
	if name == "fleet" {
		return runFleetCampaign(cfg)
	}
	env, err := newCampaignEnv(name, cfg)
	if err != nil {
		return nil, err
	}
	defer env.h.Shutdown()
	switch name {
	case "migration":
		err = runMigrationCampaign(env)
	case "balloon":
		err = runBalloonCampaign(env)
	case "hotplug":
		err = runHotplugCampaign(env)
	default:
		return nil, fmt.Errorf("attack: unknown campaign %q (have %v)", name, Campaigns())
	}
	if err != nil {
		return nil, fmt.Errorf("attack: campaign %s: %w", name, err)
	}
	return env.res, nil
}

func campaignProc() core.Process { return core.Process{CGroup: "kvm", KVMPrivileged: true} }

// campaignEnv is the single-host campaign harness: one attacker VM with a
// confined VMTarget, plus the bookkeeping shared by all campaigns.
type campaignEnv struct {
	cfg      CampaignConfig
	h        *core.Hypervisor
	attacker *core.VM
	target   *VMTarget
	rng      *rand.Rand
	res      *CampaignResult
}

func newCampaignEnv(name string, cfg CampaignConfig) (*campaignEnv, error) {
	h, err := core.Boot(cfg.Core, core.ModeSiloz)
	if err != nil {
		return nil, err
	}
	attacker, err := h.CreateVM(campaignProc(), core.VMSpec{
		Name: "attacker", Socket: 0, MemoryBytes: cfg.VMBytes,
	})
	if err != nil {
		h.Shutdown()
		return nil, err
	}
	env := &campaignEnv{
		cfg:      cfg,
		h:        h,
		attacker: attacker,
		target:   &VMTarget{VM: attacker},
		rng:      rngFrom(CampaignSeed(cfg.Seed, 1)),
		res:      &CampaignResult{Name: name},
	}
	// Mapping inference first: the attacker derives (and confirms) row
	// adjacency inside its own domain before spending hammer budget.
	rep, err := InferAdjacency(env.target, cfg.HammerActs, cfg.InferPairs, 0xAA, CampaignSeed(cfg.Seed, 2))
	if err != nil {
		h.Shutdown()
		return nil, err
	}
	env.res.AdjacencyProbed = rep.Probed
	env.res.AdjacencyConfirmed = rep.Confirmed
	// Inference flips are the attacker's own; start containment
	// accounting from a clean slate.
	h.Memory().ResetFlips()
	return env, nil
}

// hammerBurst drives BurstRows seeded aggressors at full amplitude and
// closes the refresh window — one Blacksmith salvo inside a lifecycle
// window.
func (e *campaignEnv) hammerBurst() {
	rows := e.target.Rows()
	if len(rows) == 0 {
		return
	}
	for k := 0; k < e.cfg.BurstRows; k++ {
		r := rows[e.rng.Intn(len(rows))]
		if err := e.target.Hammer(r, e.cfg.HammerActs, 0); err != nil {
			e.res.Denied++
			continue
		}
	}
	// Every salvo also probes one activation beyond the attacker's RAM —
	// the EPT walk must refuse it in every lifecycle phase.
	if err := e.attacker.Hammer(e.cfg.VMBytes+geometry.PageSize2M, 1, 0); err != nil {
		e.res.Denied++
	} else {
		e.res.WindowViolations++
	}
	e.res.HammerBursts++
	e.target.EndWindow()
}

// audit runs the single-host isolation audit and tallies the outcome.
func (e *campaignEnv) audit() {
	if err := migrate.AuditIsolation(e.h); err != nil {
		e.res.AuditFailures++
	} else {
		e.res.AuditsPassed++
	}
}

// classifyFlips attributes every accumulated flip: inside the attacker's
// domain (expected) or outside it (the escape Siloz prevents), then resets
// the accumulator so each round scores separately.
func (e *campaignEnv) classifyFlips() {
	mem := e.h.Memory()
	for _, f := range mem.Flips() {
		pa, err := mem.FlipPhys(f)
		if err != nil {
			continue
		}
		if e.attacker.InDomain(pa) {
			e.res.AttackerFlips++
		} else {
			e.res.CrossDomainFlips++
		}
	}
	mem.ResetFlips()
}

// checkScrubbed reads the head of each listed frame and counts non-zero
// frames as scrub leaks.
func (e *campaignEnv) checkScrubbed(frames []uint64) {
	buf := make([]byte, 4*geometry.KiB)
	for _, hpa := range frames {
		if err := e.h.Memory().ReadPhys(hpa, buf); err != nil {
			continue
		}
		if !zeroBytes(buf) {
			e.res.ScrubLeaks++
		}
	}
}

func zeroBytes(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// freeGuestNodeIDs collects unowned guest-reserved nodes on a socket until
// their capacity covers bytes; nil if the socket cannot.
func freeGuestNodeIDs(h *core.Hypervisor, socket int, bytes uint64) []int {
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		ids = append(ids, n.ID)
		capacity += n.Bytes()
		if capacity >= bytes {
			return ids
		}
	}
	return nil
}

// campaignStamp yields a deterministic payload for victim data.
func campaignStamp(seed int64, n int) []byte {
	b := make([]byte, n)
	rngFrom(seed).Read(b)
	return b
}

// runMigrationCampaign hammers inside every pre-copy round of a live
// migration — OnRound fires after each round's dirty drain, so the final
// burst lands exactly in the window between the last TakeDirty and
// stop-and-copy. After each move: source frames must be scrubbed, victim
// data intact, the audit clean, and every flip inside the attacker domain.
func runMigrationCampaign(e *campaignEnv) error {
	h, cfg := e.h, e.cfg
	victim, err := h.CreateVM(campaignProc(), core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: cfg.VMBytes,
	})
	if err != nil {
		return err
	}
	// Victim working set: four patterned pages that must survive every
	// move byte-for-byte.
	mirror := map[int][]byte{}
	for p := 0; p < 4; p++ {
		data := campaignStamp(CampaignSeed(cfg.Seed, 10+p), 8*geometry.KiB)
		if err := victim.WriteGuest(uint64(p)*geometry.PageSize2M, data); err != nil {
			return err
		}
		mirror[p] = data
	}
	for round := 0; round < cfg.Rounds; round++ {
		srcPages := victim.RAMPages()
		dests := freeGuestNodeIDs(h, 0, cfg.VMBytes)
		if dests == nil {
			return fmt.Errorf("no free destination nodes for round %d", round)
		}
		stepRNG := rngFrom(CampaignSeed(cfg.Seed, 20+round))
		if _, err := h.MigrateVM(context.Background(), "victim", dests, core.MigrateOptions{
			StopPages: 1, MaxRounds: 8,
			GuestStep: func(r int) error {
				// The guest keeps running: dirty one page per round so the
				// attack windows stay open for a few rounds.
				if r >= 2 {
					return nil
				}
				stamp := make([]byte, 64)
				stepRNG.Read(stamp)
				gpa := uint64(4+stepRNG.Intn(4)) * geometry.PageSize2M
				return victim.WriteGuest(gpa, stamp)
			},
			OnRound: func(core.MigrateRound) { e.hammerBurst() },
		}); err != nil {
			return err
		}
		e.res.Rounds++
		e.checkScrubbed(srcPages)
		got := make([]byte, 8*geometry.KiB)
		for p, want := range mirror {
			if err := victim.ReadGuest(uint64(p)*geometry.PageSize2M, got); err != nil {
				return err
			}
			for i := range got {
				if got[i] != want[i] {
					e.res.VictimCorruptions++
				}
			}
		}
		e.audit()
		e.classifyFlips()
	}
	return h.DestroyVM("victim")
}

// runBalloonCampaign races the drain-back window: the balloon's
// stop-the-world probe points expose (a) the instant surrendered frames are
// unmapped but not yet scrubbed and (b) the instant they re-enter the free
// pool. The attacker hammers in both; the campaign asserts the surrendered
// range is unreachable in (a) and zero in (b), and that re-admitted frames
// arrive zero after deflate.
func runBalloonCampaign(e *campaignEnv) error {
	h, cfg := e.h, e.cfg
	victim, err := h.CreateVM(campaignProc(), core.VMSpec{
		Name: "victim", Socket: 0, MemoryBytes: cfg.VMBytes,
	})
	if err != nil {
		return err
	}
	pages := int(cfg.VMBytes / geometry.PageSize2M)
	half := pages / 2
	secret := campaignStamp(CampaignSeed(cfg.Seed, 30), 4*geometry.KiB)
	for round := 0; round < cfg.Rounds; round++ {
		// The victim's secret lives in the pages the balloon will take.
		topHPAs := make([]uint64, 0, half)
		for p := pages - half; p < pages; p++ {
			gpa := uint64(p) * geometry.PageSize2M
			if err := victim.WriteGuest(gpa, secret); err != nil {
				return err
			}
			hpa, err := victim.Translate(gpa)
			if err != nil {
				return err
			}
			topHPAs = append(topHPAs, hpa)
		}
		probeGPA := uint64(pages-1) * geometry.PageSize2M
		h.SetLifecycleProbe(func(event string, vm *core.VM) {
			switch event {
			case core.ProbeBalloonUnmapped:
				// Frames hold the secret but every translation path must
				// already be gone (EPT and IOMMU alike).
				e.hammerBurst()
				if _, err := vm.TranslateUncached(probeGPA); err != nil {
					e.res.Denied++
				} else {
					e.res.WindowViolations++
				}
			case core.ProbeBalloonDrained:
				// Frames are back in the pool: scrub-before-free means
				// they must be zero from this instant on.
				e.hammerBurst()
				for _, hpa := range topHPAs {
					buf := make([]byte, 4*geometry.KiB)
					if err := h.Memory().ReadPhys(hpa, buf); err != nil {
						continue
					}
					if !zeroBytes(buf) {
						e.res.ScrubLeaks++
					}
				}
			}
		})
		_, err := h.BalloonVM("victim", uint64(half)*geometry.PageSize2M)
		h.SetLifecycleProbe(nil)
		if err != nil {
			return err
		}
		e.res.Rounds++
		// Deflate: the re-admitted range must arrive zero, never a stale
		// frame with the old secret (or another tenant's bytes).
		if _, err := h.BalloonVM("victim", 0); err != nil {
			return err
		}
		got := make([]byte, 4*geometry.KiB)
		for p := pages - half; p < pages; p++ {
			if err := victim.ReadGuest(uint64(p)*geometry.PageSize2M, got); err != nil {
				return err
			}
			if !zeroBytes(got) {
				e.res.ScrubLeaks++
			}
		}
		e.audit()
		e.classifyFlips()
	}
	return h.DestroyVM("victim")
}

// runHotplugCampaign targets the adoption window: an unowned guest node is
// pre-loaded with residue (modeling a prior tenant's frames the pool has
// not recycled), then a victim hot-plugs into it. The probe fires between
// the registry's exclusive Expand and scrub-before-map: the attacker
// hammers, and the campaign asserts the adopted range is not yet reachable
// and arrives fully zeroed once mapped.
func runHotplugCampaign(e *campaignEnv) error {
	h, cfg := e.h, e.cfg
	residue := campaignStamp(CampaignSeed(cfg.Seed, 40), 4*geometry.KiB)
	for round := 0; round < cfg.Rounds; round++ {
		name := fmt.Sprintf("victim-%d", round)
		victim, err := h.CreateVM(campaignProc(), core.VMSpec{
			Name: name, Socket: 0, MemoryBytes: cfg.VMBytes,
		})
		if err != nil {
			return err
		}
		// Residue in the node the grow will adopt.
		for _, n := range h.Topology().NodesOnSocket(0, numa.GuestReserved) {
			if _, owned := h.Registry().OwnerOf(n.ID); owned {
				continue
			}
			for _, r := range n.Ranges {
				if err := h.Memory().WritePhys(r.Start, residue); err != nil {
					return err
				}
			}
		}
		oldTop := victim.Spec().MemoryBytes
		adopted := false
		h.SetLifecycleProbe(func(event string, vm *core.VM) {
			if event != core.ProbeHotplugAdopted {
				return
			}
			adopted = true
			e.hammerBurst()
			// The adopted frames belong to the victim's control group now
			// but must not be guest-visible until scrubbed and mapped.
			if _, err := vm.TranslateUncached(oldTop); err != nil {
				e.res.Denied++
			} else {
				e.res.WindowViolations++
			}
		})
		_, err = h.HotplugVM(name, cfg.VMBytes)
		h.SetLifecycleProbe(nil)
		if err != nil {
			return err
		}
		if !adopted {
			return fmt.Errorf("round %d: hotplug adopted no node; campaign vacuous", round)
		}
		e.res.Rounds++
		// Scrub-before-map: the hot-added range reads zero despite the
		// residue.
		got := make([]byte, 4*geometry.KiB)
		for gpa := oldTop; gpa < oldTop+cfg.VMBytes; gpa += geometry.PageSize2M {
			if err := victim.ReadGuest(gpa, got); err != nil {
				return err
			}
			if !zeroBytes(got) {
				e.res.ScrubLeaks++
			}
		}
		e.audit()
		e.classifyFlips()
		if err := h.DestroyVM(name); err != nil {
			return err
		}
	}
	return nil
}

// runFleetCampaign mounts CATTmew-style double-ownership probes through
// cross-host MoveVM: inside the window where routing is committed to the
// destination but the source copy still exists, the attacker hammers,
// audits, and pokes the control plane; around it, a passthrough device's
// pre-move DMA must follow the VM (dirty-log visibility) and its stale
// post-move translations must be dead.
func runFleetCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	res := &CampaignResult{Name: "fleet"}
	c, err := fleet.New(fleet.Config{
		Hosts:  2,
		Core:   cfg.Core,
		Policy: fleet.FirstFit{},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	spec := func(name string) core.VMSpec {
		return core.VMSpec{Name: name, MemoryBytes: cfg.VMBytes, MinMemoryBytes: cfg.VMBytes, VCPUs: 1}
	}
	if _, err := c.Admit(ctx, campaignProc(), spec("victim")); err != nil {
		return nil, err
	}
	attackerHost, err := c.Admit(ctx, campaignProc(), spec("attacker"))
	if err != nil {
		return nil, err
	}
	ah, err := c.Host(attackerHost)
	if err != nil {
		return nil, err
	}
	attackerVM, ok := ah.Hypervisor().VM("attacker")
	if !ok {
		return nil, fmt.Errorf("attacker VM vanished")
	}
	target := &VMTarget{VM: attackerVM}
	rng := rngFrom(CampaignSeed(cfg.Seed, 1))
	infer, err := InferAdjacency(target, cfg.HammerActs, cfg.InferPairs, 0xAA, CampaignSeed(cfg.Seed, 2))
	if err != nil {
		return nil, err
	}
	res.AdjacencyProbed, res.AdjacencyConfirmed = infer.Probed, infer.Confirmed
	ah.Hypervisor().Memory().ResetFlips()

	burst := func() {
		rows := target.Rows()
		if len(rows) == 0 {
			return
		}
		for k := 0; k < cfg.BurstRows; k++ {
			r := rows[rng.Intn(len(rows))]
			if err := target.Hammer(r, cfg.HammerActs, 0); err != nil {
				res.Denied++
				continue
			}
		}
		res.HammerBursts++
		target.EndWindow()
	}
	classify := func() {
		for _, host := range c.Hosts() {
			mem := host.Hypervisor().Memory()
			for _, f := range mem.Flips() {
				pa, err := mem.FlipPhys(f)
				if err != nil {
					continue
				}
				if host.Name() == attackerHost && attackerVM.InDomain(pa) {
					res.AttackerFlips++
				} else {
					res.CrossDomainFlips++
				}
			}
			mem.ResetFlips()
		}
	}
	clusterAudit := func() {
		if err := c.AuditIsolation(); err != nil {
			res.AuditFailures++
		} else {
			res.AuditsPassed++
		}
	}

	poison := campaignStamp(CampaignSeed(cfg.Seed, 50), 2*geometry.KiB)
	const poisonGPA = 3 * geometry.PageSize2M
	for round := 0; round < cfg.Rounds; round++ {
		srcName, err := c.HostOf("victim")
		if err != nil {
			return nil, err
		}
		src, err := c.Host(srcName)
		if err != nil {
			return nil, err
		}
		dstName := "host-0"
		if srcName == "host-0" {
			dstName = "host-1"
		}
		victimVM, ok := src.Hypervisor().VM("victim")
		if !ok {
			return nil, fmt.Errorf("victim VM vanished from %s", srcName)
		}
		// Pre-move device DMA: the only record of these bytes is the
		// dirty/touched ledgers — if either misses device stores, the
		// destination loses them and the source leaks them.
		dev, err := src.Hypervisor().AttachDevice(victimVM, "vf0")
		if err != nil {
			return nil, err
		}
		if err := dev.DMAWrite(poisonGPA, poison); err != nil {
			return nil, err
		}
		srcPages := victimVM.RAMPages()

		c.SetMoveProbe(func(stage, vm string) {
			if stage != "committed" {
				return
			}
			// Double-ownership window: routing says destination, the
			// source copy still exists. Audit must hold, mutations must
			// be refused, hammering must stay contained.
			clusterAudit()
			if _, err := c.SubmitResize("victim", cfg.VMBytes/2); err != nil {
				res.Denied++
			} else {
				res.WindowViolations++
			}
			burst()
		})
		_, err = c.MoveVM(ctx, "victim", dstName, victimVM.Spec().Socket, 4, CampaignSeed(cfg.Seed, 60+round))
		c.SetMoveProbe(nil)
		if err != nil {
			return nil, err
		}
		res.Rounds++

		// The stale device belonged to the destroyed source copy: its
		// translations must be dead, or DMA would land in freed frames.
		if err := dev.DMAWrite(0, []byte{1}); err != nil {
			res.Denied++
		} else {
			res.WindowViolations++
		}
		// Source frames scrubbed before their nodes went back to the pool.
		buf := make([]byte, 4*geometry.KiB)
		for _, hpa := range srcPages {
			if err := src.Hypervisor().Memory().ReadPhys(hpa, buf); err != nil {
				continue
			}
			if !zeroBytes(buf) {
				res.ScrubLeaks++
			}
		}
		// The destination copy carries the device's bytes.
		dst, err := c.Host(dstName)
		if err != nil {
			return nil, err
		}
		destVM, ok := dst.Hypervisor().VM("victim")
		if !ok {
			return nil, fmt.Errorf("victim VM missing on %s after move", dstName)
		}
		got := make([]byte, len(poison))
		if err := destVM.ReadGuest(poisonGPA, got); err != nil {
			return nil, err
		}
		for i := range got {
			if got[i] != poison[i] {
				res.VictimCorruptions++
			}
		}
		if err := c.Quiesce(ctx); err != nil {
			return nil, err
		}
		clusterAudit()
		classify()
	}
	return res, nil
}
