// Package attack implements a Blacksmith-style Rowhammer fuzzer (§7): it
// synthesizes non-uniform, frequency-domain hammering patterns — aggressor
// pairs plus high-amplitude decoy rows at different amplitudes and phases —
// that defeat sampling-based in-DRAM TRR, drives them against a target's
// hammerable rows, and scans the target's memory for bit flips.
//
// Two target views are provided: a VM-confined target (the attacker tenant
// of §7.1, who can only touch its own guest RAM) and a raw physical-range
// target (for host-level experiments such as pinning the fuzzer to one
// subarray group).
package attack

import (
	"bytes"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/geometry"
)

// RowRef is one hammerable row from the attacker's perspective: an address
// it can access plus the reverse-engineered bank/row location (Blacksmith
// assumes knowledge of DRAM addressing, as do we).
type RowRef struct {
	// Addr is the attacker-visible address (GPA for a VM target, PA for
	// a physical target) of the row's first line in the target bank.
	Addr uint64
	// Bank and Row locate the row in DRAM.
	Bank geometry.BankID
	Row  int
}

// Corruption is one attacker-observed flipped byte.
type Corruption struct {
	// Addr is the attacker-visible address of the corrupted byte.
	Addr uint64
	// Got is the value read back (the fill pattern was expected).
	Got byte
}

// Target abstracts what the attacker can reach.
type Target interface {
	// Rows enumerates hammerable rows in the target bank, sorted by Row.
	Rows() []RowRef
	// Hammer activates a row count times with the given open time.
	Hammer(r RowRef, count int, openNs int64) error
	// FillRow writes the byte pattern over one row's data.
	FillRow(r RowRef, pat byte) error
	// CheckRow reads one row back and returns corruptions.
	CheckRow(r RowRef, pat byte) ([]Corruption, error)
	// EndWindow closes the refresh window (time passing).
	EndWindow()
}

// rowLines yields the attacker-visible addresses of one row's cache lines:
// within a row group, a bank's lines repeat every BanksPerSocket lines.
func rowLines(g geometry.Geometry, r RowRef, visit func(addr uint64) error) error {
	stride := uint64(g.BanksPerSocket()) * geometry.CacheLineSize
	lines := g.RowBytes / geometry.CacheLineSize
	for j := 0; j < lines; j++ {
		if err := visit(r.Addr + uint64(j)*stride); err != nil {
			return err
		}
	}
	return nil
}

// runs splits sorted rows into maximal runs of consecutive row numbers in
// the same bank; patterns are built within a run.
func runs(rows []RowRef) [][]RowRef {
	var out [][]RowRef
	var cur []RowRef
	for _, r := range rows {
		if len(cur) > 0 && (r.Bank != cur[len(cur)-1].Bank || r.Row != cur[len(cur)-1].Row+1) {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, r)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// VMTarget confines the attacker to one VM's guest RAM (§7.1's inter-VM
// attacker).
type VMTarget struct {
	VM *core.VM
	// BankIndex selects which within-socket bank to attack (default 0).
	BankIndex int

	rows []RowRef
}

// Rows implements Target: it walks the VM's RAM pages and collects the rows
// of the chosen bank whose data the VM fully controls. Row groups are
// rowGroupBytes-aligned in physical space; a row straddling two guest pages
// counts only when the backing pages are physically contiguous (which
// Siloz's contiguous per-group allocation and the paper's deployment
// environment both provide, §5.4).
func (t *VMTarget) Rows() []RowRef {
	if t.rows != nil {
		return t.rows
	}
	mem := t.VM.Hypervisor().Memory()
	g := mem.Geometry()
	rowGroup := uint64(g.RowGroupBytes())
	pages := t.VM.RAMPages()
	var rows []RowRef
	for pi, hpa := range pages {
		gpaBase := uint64(pi) * geometry.PageSize2M
		first := (hpa + rowGroup - 1) / rowGroup * rowGroup
		for rb := first; rb < hpa+geometry.PageSize2M; rb += rowGroup {
			if rb+rowGroup > hpa+geometry.PageSize2M {
				// Straddles into the next page: usable only with
				// physical contiguity.
				if pi+1 >= len(pages) || pages[pi+1] != hpa+geometry.PageSize2M {
					continue
				}
			}
			ma, err := mem.Mapper().Decode(rb)
			if err != nil {
				continue
			}
			bank := geometry.BankFromSocketFlat(g, ma.Bank.Socket, t.BankIndex)
			rows = append(rows, RowRef{
				Addr: gpaBase + (rb - hpa) + uint64(t.BankIndex)*geometry.CacheLineSize,
				Bank: bank,
				Row:  ma.Row,
			})
		}
	}
	sortRows(g, rows)
	t.rows = rows
	return rows
}

// sortRows orders refs by bank then row.
func sortRows(g geometry.Geometry, rows []RowRef) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bank != rows[j].Bank {
			return rows[i].Bank.Flat(g) < rows[j].Bank.Flat(g)
		}
		return rows[i].Row < rows[j].Row
	})
}

// Hammer implements Target.
func (t *VMTarget) Hammer(r RowRef, count int, openNs int64) error {
	return t.VM.Hammer(r.Addr, count, openNs)
}

// FillRow implements Target.
func (t *VMTarget) FillRow(r RowRef, pat byte) error {
	g := t.VM.Hypervisor().Memory().Geometry()
	lineBuf := bytes.Repeat([]byte{pat}, geometry.CacheLineSize)
	return rowLines(g, r, func(addr uint64) error {
		return t.VM.WriteGuest(addr, lineBuf)
	})
}

// CheckRow implements Target.
func (t *VMTarget) CheckRow(r RowRef, pat byte) ([]Corruption, error) {
	g := t.VM.Hypervisor().Memory().Geometry()
	var out []Corruption
	buf := make([]byte, geometry.CacheLineSize)
	err := rowLines(g, r, func(addr uint64) error {
		if err := t.VM.ReadGuest(addr, buf); err != nil {
			return err
		}
		for i, b := range buf {
			if b != pat {
				out = append(out, Corruption{Addr: addr + uint64(i), Got: b})
			}
		}
		return nil
	})
	return out, err
}

// EndWindow implements Target.
func (t *VMTarget) EndWindow() { t.VM.Hypervisor().Memory().Refresh() }

// PhysTarget exposes a raw physical range (host-level fuzzing, e.g. pinned
// to one subarray group as in §7.1's containment run).
type PhysTarget struct {
	Mem *dram.Memory
	// Ranges are the physical ranges the fuzzer may touch.
	Ranges []PhysRange
	// BankIndex selects the within-socket bank to attack.
	BankIndex int

	rows []RowRef
}

// PhysRange is a half-open physical range.
type PhysRange struct{ Start, End uint64 }

// Rows implements Target.
func (t *PhysTarget) Rows() []RowRef {
	if t.rows != nil {
		return t.rows
	}
	g := t.Mem.Geometry()
	rowGroup := uint64(g.RowGroupBytes())
	var rows []RowRef
	for _, r := range t.Ranges {
		first := (r.Start + rowGroup - 1) / rowGroup * rowGroup
		for rb := first; rb+rowGroup <= r.End; rb += rowGroup {
			ma, err := t.Mem.Mapper().Decode(rb)
			if err != nil {
				continue
			}
			bank := geometry.BankFromSocketFlat(g, ma.Bank.Socket, t.BankIndex)
			rows = append(rows, RowRef{
				Addr: rb + uint64(t.BankIndex)*geometry.CacheLineSize,
				Bank: bank,
				Row:  ma.Row,
			})
		}
	}
	sortRows(g, rows)
	t.rows = rows
	return rows
}

// Hammer implements Target.
func (t *PhysTarget) Hammer(r RowRef, count int, openNs int64) error {
	return t.Mem.ActivatePhys(r.Addr, count, openNs)
}

// FillRow implements Target.
func (t *PhysTarget) FillRow(r RowRef, pat byte) error {
	lineBuf := bytes.Repeat([]byte{pat}, geometry.CacheLineSize)
	return rowLines(t.Mem.Geometry(), r, func(addr uint64) error {
		return t.Mem.WritePhys(addr, lineBuf)
	})
}

// CheckRow implements Target.
func (t *PhysTarget) CheckRow(r RowRef, pat byte) ([]Corruption, error) {
	var out []Corruption
	buf := make([]byte, geometry.CacheLineSize)
	err := rowLines(t.Mem.Geometry(), r, func(addr uint64) error {
		if err := t.Mem.ReadPhys(addr, buf); err != nil {
			return err
		}
		for i, b := range buf {
			if b != pat {
				out = append(out, Corruption{Addr: addr + uint64(i), Got: b})
			}
		}
		return nil
	})
	return out, err
}

// EndWindow implements Target.
func (t *PhysTarget) EndWindow() { t.Mem.Refresh() }

// ensure interface conformance.
var (
	_ Target = (*VMTarget)(nil)
	_ Target = (*PhysTarget)(nil)
)

// rngFrom builds a deterministic RNG.
func rngFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
