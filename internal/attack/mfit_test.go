package attack

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/geometry"
)

// wholeBankTarget exposes every row of socket 0 to the prober, as a
// privileged mFIT-style measurement tool would.
func wholeBankTarget(t *testing.T, g geometry.Geometry, prof dram.Profile) *PhysTarget {
	t.Helper()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{prof}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &PhysTarget{
		Mem:    mem,
		Ranges: []PhysRange{{Start: 0, End: uint64(g.SocketBytes())}},
	}
}

func inferGeometry(rows int) geometry.Geometry {
	return geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 8, RowsPerBank: 8192, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: rows,
	}
}

func TestInferSubarraySizeNoTRR(t *testing.T) {
	// §4.1: the mFIT methodology observes failed attacks at multiples of
	// the true subarray size. Sweep all three commodity sizes.
	for _, trueSize := range []int{512, 1024, 2048} {
		prof := dram.ProfileF()
		prof.VulnerableRowFraction = 1
		prof.Transforms = addr.TransformConfig{}
		target := wholeBankTarget(t, inferGeometry(trueSize), prof)
		cfg := DefaultInferenceConfig()
		cfg.Decoys = 0 // profile F has no TRR
		got, err := InferSubarraySize(target, cfg)
		if err != nil {
			t.Fatalf("size %d: %v", trueSize, err)
		}
		if got != trueSize {
			t.Errorf("inferred %d rows/subarray, true size %d", got, trueSize)
		}
	}
}

func TestInferSubarraySizeDespiteTRRAndTransforms(t *testing.T) {
	// The full methodology: a TRR-equipped DIMM with internal address
	// transforms still reveals its 1024-row subarrays to a decoy-covered,
	// synchronized probe.
	prof := dram.ProfileA()
	prof.VulnerableRowFraction = 1
	target := wholeBankTarget(t, inferGeometry(1024), prof)
	got, err := InferSubarraySize(target, DefaultInferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got != 1024 {
		t.Errorf("inferred %d rows/subarray, want 1024", got)
	}
}

func TestInferSubarraySizeErrors(t *testing.T) {
	target := wholeBankTarget(t, inferGeometry(512), dram.ProfileF())
	target.Ranges = nil // no reachable rows
	if _, err := InferSubarraySize(target, DefaultInferenceConfig()); err == nil {
		t.Error("empty target accepted")
	}
}
