package attack

import (
	"context"
	"fmt"
)

// BankShard names one independent unit of a sharded campaign: a fuzzing run
// pinned to a single bank with its own RNG seed. Because the simulated
// disturbance state is per-bank, shards over distinct banks commute — they
// produce the same flips whether run serially on one machine image or in
// parallel on per-shard images. That is the determinism contract the
// experiment registry relies on: seeds are fixed per shard, and reports are
// merged in shard order, so the output is byte-identical at any parallelism.
type BankShard struct {
	// Tag labels the shard for reports (e.g. the DIMM profile name).
	Tag string
	// BankIndex is the socket-flat bank the shard hammers.
	BankIndex int
	// Seed drives this shard's pattern synthesis, independent of other
	// shards and of scheduling order.
	Seed int64
	// MaxActsPerWindow, when non-zero, overrides the template config's
	// activation budget for this shard (per-DIMM profiles differ in their
	// refresh-window budgets).
	MaxActsPerWindow int
}

// ShardReport pairs a shard with its campaign report.
type ShardReport struct {
	Shard  BankShard
	Report Report
}

// RunSharded fans a fuzzing campaign out over bank shards. newTarget builds
// shard i's target (typically booting an isolated machine image pinned to
// the shard's bank); parallel schedules the per-shard closures — pass nil to
// run them serially in order. cfg is used as the template for every shard
// with the shard's seed (and activation budget, when set) swapped in. The
// returned reports are in shard order regardless of completion order.
func RunSharded(ctx context.Context, cfg FuzzerConfig, shards []BankShard,
	newTarget func(i int, s BankShard) (Target, error),
	parallel func(ctx context.Context, n int, task func(int) error) error,
) ([]ShardReport, error) {
	out := make([]ShardReport, len(shards))
	task := func(i int) error {
		s := shards[i]
		t, err := newTarget(i, s)
		if err != nil {
			return fmt.Errorf("attack: shard %d (%s bank %d): %w", i, s.Tag, s.BankIndex, err)
		}
		scfg := cfg
		scfg.Seed = s.Seed
		if s.MaxActsPerWindow != 0 {
			scfg.MaxActsPerWindow = s.MaxActsPerWindow
		}
		rep, err := NewFuzzer(scfg).Run(t)
		if err != nil {
			return fmt.Errorf("attack: shard %d (%s bank %d): %w", i, s.Tag, s.BankIndex, err)
		}
		out[i] = ShardReport{Shard: s, Report: rep}
		return nil
	}
	if parallel == nil {
		for i := range shards {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := task(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := parallel(ctx, len(shards), task); err != nil {
		return nil, err
	}
	return out, nil
}
