package attack

import (
	"fmt"
)

// FuzzerConfig parameterizes a fuzzing campaign.
type FuzzerConfig struct {
	// Patterns is how many candidate patterns to synthesize and try.
	Patterns int
	// WindowsPerPattern is how many refresh windows each pattern hammers.
	WindowsPerPattern int
	// MaxActsPerWindow caps per-bank activations per window (DRAM budget).
	MaxActsPerWindow int
	// FillPattern is the data written before hammering (flips show as
	// deviations).
	FillPattern byte
	// Seed drives pattern synthesis.
	Seed int64
}

// DefaultFuzzerConfig returns a campaign sized like the unit of work the
// experiments use per DIMM.
func DefaultFuzzerConfig() FuzzerConfig {
	return FuzzerConfig{
		Patterns:          24,
		WindowsPerPattern: 2,
		MaxActsPerWindow:  1_200_000,
		FillPattern:       0xAA,
		Seed:              1,
	}
}

// Report summarizes a campaign from the attacker's view.
type Report struct {
	// PatternsTried counts synthesized candidates.
	PatternsTried int
	// EffectivePatterns counts candidates that produced at least one
	// observable corruption.
	EffectivePatterns int
	// Corruptions are the attacker-visible flipped bytes.
	Corruptions []Corruption
	// BestPattern names the first effective pattern.
	BestPattern string
}

// Fuzzer drives patterns against a target.
type Fuzzer struct {
	cfg FuzzerConfig
}

// NewFuzzer builds a fuzzer.
func NewFuzzer(cfg FuzzerConfig) *Fuzzer {
	return &Fuzzer{cfg: cfg}
}

// Run executes the campaign: for each synthesized pattern, pick a
// contiguous row run, fill it, hammer for the configured windows, scan.
func (f *Fuzzer) Run(t Target) (Report, error) {
	rng := rngFrom(f.cfg.Seed)
	allRuns := runs(t.Rows())
	if len(allRuns) == 0 {
		return Report{}, fmt.Errorf("attack: target has no hammerable rows")
	}
	var rep Report
	for i := 0; i < f.cfg.Patterns; i++ {
		p := RandomPattern(rng, f.cfg.MaxActsPerWindow)
		run := allRuns[rng.Intn(len(allRuns))]
		if len(run) < p.MinRun {
			continue
		}
		rep.PatternsTried++
		// Offset the pattern randomly within the run.
		base := 0
		if len(run) > p.MinRun {
			base = rng.Intn(len(run) - p.MinRun)
		}
		cs, err := f.HammerPattern(t, run, base, p)
		if err != nil {
			return rep, err
		}
		if len(cs) > 0 {
			rep.EffectivePatterns++
			rep.Corruptions = append(rep.Corruptions, cs...)
			if rep.BestPattern == "" {
				rep.BestPattern = p.Name
			}
		}
	}
	return rep, nil
}

// HammerPattern runs one pattern at a base offset within a row run and
// returns the corruptions the attacker can observe in the pattern's rows.
func (f *Fuzzer) HammerPattern(t Target, run []RowRef, base int, p Pattern) ([]Corruption, error) {
	if base+p.MinRun > len(run) {
		return nil, fmt.Errorf("attack: pattern %s needs %d rows, run has %d after base %d",
			p.Name, p.MinRun, len(run), base)
	}
	span := run[base : base+p.MinRun]
	// Sweep complementary data patterns: a weak cell's discharge is only
	// observable when the stored bit differs from its fail value, so real
	// templating runs both a pattern and its complement.
	var out []Corruption
	for _, pat := range []byte{f.cfg.FillPattern, ^f.cfg.FillPattern} {
		for _, r := range span {
			if err := t.FillRow(r, pat); err != nil {
				return nil, err
			}
		}
		for w := 0; w < f.cfg.WindowsPerPattern; w++ {
			if err := f.hammerWindow(t, run, base, p); err != nil {
				return nil, err
			}
			t.EndWindow()
		}
		for _, r := range span {
			cs, err := t.CheckRow(r, pat)
			if err != nil {
				return nil, err
			}
			out = append(out, cs...)
		}
	}
	return out, nil
}

// hammerWindow executes one window's worth of the schedule.
func (f *Fuzzer) hammerWindow(t Target, run []RowRef, base int, p Pattern) error {
	budget := f.cfg.MaxActsPerWindow
	for r := 0; r < p.Rounds; r++ {
		for _, b := range p.Schedule {
			if budget < b.Count {
				return nil // respect the DRAM activation budget
			}
			budget -= b.Count
			if err := t.Hammer(run[base+b.RunIndex], b.Count, b.OpenNs); err != nil {
				return err
			}
		}
	}
	return nil
}
