package attack

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// campaignLabProfile: deterministic flips, no TRR, transforms stripped —
// the same lab idiom the experiments use.
func campaignLabProfile() dram.Profile {
	p := dram.ProfileF()
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 600
	p.HammerThreshold = 5000
	p.Transforms = addr.TransformConfig{}
	return p
}

func campaignLabConfig() core.Config {
	return core.Config{
		Geometry:      testGeometry(),
		Profiles:      []dram.Profile{campaignLabProfile()},
		EPTProtection: ept.GuardRows,
	}
}

func quickCampaignConfig(seed int64) CampaignConfig {
	return CampaignConfig{
		Core:    campaignLabConfig(),
		Seed:    seed,
		Rounds:  1,
		VMBytes: 64 * geometry.MiB,
	}
}

func TestInferAdjacencyConfirmsMapping(t *testing.T) {
	_, target := physEnv(t, campaignLabProfile())
	rep, err := InferAdjacency(target, 20_000, 4, 0xAA, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probed == 0 {
		t.Fatal("no pairs probed; test vacuous")
	}
	if rep.Confirmed == 0 || rep.RowPitch != 1 {
		t.Errorf("adjacency not confirmed (probed %d, confirmed %d, pitch %d)",
			rep.Probed, rep.Confirmed, rep.RowPitch)
	}
}

func TestInferAdjacencyNoRun(t *testing.T) {
	mem, target := physEnv(t, campaignLabProfile())
	_ = mem
	// A target with fewer than 3 rows has no triple to probe.
	short := &PhysTarget{Mem: target.Mem, Ranges: target.Ranges[:0]}
	if _, err := InferAdjacency(short, 1000, 2, 0xAA, 1); err != ErrNoAdjacentRows {
		t.Fatalf("err = %v, want ErrNoAdjacentRows", err)
	}
}

// TestRunCampaignContainment drives every campaign once and asserts the
// post-fix scorecard: the attack is real (bursts landed, attacker-domain
// flips happened, mapping inferred) and containment held (no cross-domain
// flip, no window violation, no scrub leak, no corrupted victim data,
// every audit clean).
func TestRunCampaignContainment(t *testing.T) {
	for i, name := range Campaigns() {
		name := name
		seed := CampaignSeed(23, i)
		t.Run(name, func(t *testing.T) {
			res, err := RunCampaign(name, quickCampaignConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds == 0 || res.HammerBursts == 0 {
				t.Fatalf("campaign vacuous: %+v", res)
			}
			if res.AdjacencyProbed == 0 || res.AdjacencyConfirmed == 0 {
				t.Errorf("mapping inference vacuous: probed %d confirmed %d",
					res.AdjacencyProbed, res.AdjacencyConfirmed)
			}
			if res.AttackerFlips == 0 {
				t.Error("no attacker-domain flips: the hammering never bit")
			}
			if res.CrossDomainFlips != 0 {
				t.Errorf("%d cross-domain flips escaped", res.CrossDomainFlips)
			}
			if res.WindowViolations != 0 {
				t.Errorf("%d window violations", res.WindowViolations)
			}
			if res.ScrubLeaks != 0 {
				t.Errorf("%d scrub leaks", res.ScrubLeaks)
			}
			if res.VictimCorruptions != 0 {
				t.Errorf("%d victim corruptions", res.VictimCorruptions)
			}
			if res.AuditFailures != 0 || res.AuditsPassed == 0 {
				t.Errorf("audits: %d passed, %d failed", res.AuditsPassed, res.AuditFailures)
			}
			if res.Denied == 0 {
				t.Error("no probe was denied: the isolation machinery never pushed back")
			}
		})
	}
}

func TestRunCampaignUnknown(t *testing.T) {
	if _, err := RunCampaign("nope", quickCampaignConfig(1)); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}

func TestCampaignSeedSpacing(t *testing.T) {
	a, b := CampaignSeed(100, 1), CampaignSeed(100, 2)
	if a == b || b-a != campaignSeedSalt {
		t.Fatalf("seeds %d, %d not spaced by the salt", a, b)
	}
}
