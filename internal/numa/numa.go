// Package numa implements Siloz's logical NUMA node abstraction (§5.2):
// memory pools consisting of one or more subarray groups, carved out of
// physical NUMA nodes (sockets). Logical nodes reuse robust kernel NUMA
// mechanics — node lists, mems_allowed control groups — to manage subarray
// group isolation, while preserving physical NUMA semantics through an
// explicit logical-to-physical mapping.
package numa

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/subarray"
)

// NodeKind classifies a logical node's reservation (§5.1, §5.4).
type NodeKind int

const (
	// HostReserved nodes serve host processes, the kernel, and mediated
	// VM pages; they carry their socket's cores.
	HostReserved NodeKind = iota
	// GuestReserved nodes are memory-only and serve exactly one VM's
	// unmediated pages.
	GuestReserved
	// EPTReserved nodes hold extended page table pages inside the
	// guard-protected row group block (§5.4).
	EPTReserved
)

func (k NodeKind) String() string {
	switch k {
	case HostReserved:
		return "host"
	case GuestReserved:
		return "guest"
	case EPTReserved:
		return "ept"
	}
	return "invalid"
}

// Node is one logical NUMA node.
type Node struct {
	// ID is the node number exposed to memory policy.
	ID int
	// Kind is the reservation class.
	Kind NodeKind
	// Socket is the physical node the memory lives on; logical nodes
	// never span sockets, preserving locality optimization (§5.2).
	Socket int
	// Groups lists the subarray group indices composing the node (empty
	// for the EPT node, which is a sub-group row block).
	Groups []int
	// Ranges are the physical address ranges the node owns.
	Ranges []subarray.Range
	// Cores lists the logical cores associated with the node; only
	// host-reserved nodes have cores (§5.2).
	Cores []int
}

// Bytes returns the node's capacity.
func (n *Node) Bytes() uint64 {
	var total uint64
	for _, r := range n.Ranges {
		total += r.Bytes()
	}
	return total
}

// Contains reports whether the node owns a physical address.
func (n *Node) Contains(pa uint64) bool {
	for _, r := range n.Ranges {
		if r.Contains(pa) {
			return true
		}
	}
	return false
}

// Topology is the set of logical nodes of one booted system.
type Topology struct {
	nodes []*Node
}

// AddNode registers a node, assigning its ID. Ranges must be non-empty.
func (t *Topology) AddNode(n *Node) (*Node, error) {
	if len(n.Ranges) == 0 {
		return nil, fmt.Errorf("numa: node must own at least one range")
	}
	n.ID = len(t.nodes)
	t.nodes = append(t.nodes, n)
	return n, nil
}

// Nodes returns all nodes in ID order.
func (t *Topology) Nodes() []*Node {
	out := make([]*Node, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// Node returns the node with the given ID.
func (t *Topology) Node(id int) (*Node, error) {
	if id < 0 || id >= len(t.nodes) {
		return nil, fmt.Errorf("numa: no node %d", id)
	}
	return t.nodes[id], nil
}

// NodesOnSocket returns the socket's nodes, optionally filtered by kind.
func (t *Topology) NodesOnSocket(socket int, kinds ...NodeKind) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Socket != socket {
			continue
		}
		if len(kinds) == 0 {
			out = append(out, n)
			continue
		}
		for _, k := range kinds {
			if n.Kind == k {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// NodesOfKind returns all nodes of a kind in ID order.
func (t *Topology) NodesOfKind(k NodeKind) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// NodeOf returns the node owning a physical address, if any.
func (t *Topology) NodeOf(pa uint64) (*Node, bool) {
	for _, n := range t.nodes {
		if n.Contains(pa) {
			return n, true
		}
	}
	return nil, false
}

// PhysicalNodeOf maps a logical node to its physical node (§5.2).
func (t *Topology) PhysicalNodeOf(id int) (int, error) {
	n, err := t.Node(id)
	if err != nil {
		return 0, err
	}
	return n.Socket, nil
}

// CGroup models a Linux control group restricting memory allocations to a
// node set (mems_allowed, §5.2-5.3). Guest-reserved nodes are exclusively
// owned: the registry refuses to place one node in two cgroups.
type CGroup struct {
	Name  string
	reg   *Registry
	nodes map[int]*Node
	dead  bool // set by Registry.Destroy; the handle must not look live
}

// Nodes returns the cgroup's allowed nodes in ID order. A destroyed cgroup
// has no nodes: its reservations were released, so a retained handle must
// not present them as live to the planner.
func (c *CGroup) Nodes() []*Node {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	if c.dead {
		return nil
	}
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Allows reports whether the cgroup may allocate on the node. Always false
// after Destroy.
func (c *CGroup) Allows(id int) bool {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	if c.dead {
		return false
	}
	_, ok := c.nodes[id]
	return ok
}

// Dead reports whether the cgroup has been destroyed.
func (c *CGroup) Dead() bool {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	return c.dead
}

// Registry tracks control groups and exclusive node ownership. All methods
// are safe for concurrent use: VM lifecycle operations race on it, and the
// exclusive-ownership check is the isolation invariant, so it must be
// atomic with the commit.
type Registry struct {
	mu      sync.Mutex
	topo    *Topology
	cgroups map[string]*CGroup
	owner   map[int]string // guest node ID -> cgroup name
}

// NewRegistry builds a registry over a topology.
func NewRegistry(topo *Topology) *Registry {
	return &Registry{topo: topo, cgroups: make(map[string]*CGroup), owner: make(map[int]string)}
}

// Create makes a control group with exclusive access to the given
// guest-reserved nodes (§5.3). Host- and EPT-reserved nodes may be shared
// across cgroups; guest-reserved nodes must be unowned.
func (r *Registry) Create(name string, nodeIDs []int) (*CGroup, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cgroups[name]; dup {
		return nil, fmt.Errorf("numa: cgroup %q already exists", name)
	}
	cg := &CGroup{Name: name, reg: r, nodes: make(map[int]*Node)}
	for _, id := range nodeIDs {
		n, err := r.claim(name, id)
		if err != nil {
			return nil, err
		}
		cg.nodes[id] = n
	}
	// Commit ownership only after all checks pass.
	for id, n := range cg.nodes {
		if n.Kind == GuestReserved {
			r.owner[id] = name
		}
	}
	r.cgroups[name] = cg
	return cg, nil
}

// claim validates that a node may join the named cgroup. Caller holds r.mu.
func (r *Registry) claim(name string, id int) (*Node, error) {
	n, err := r.topo.Node(id)
	if err != nil {
		return nil, err
	}
	if n.Kind == GuestReserved {
		if owner, taken := r.owner[id]; taken {
			return nil, fmt.Errorf("numa: guest node %d already reserved by cgroup %q", id, owner)
		}
	}
	return n, nil
}

// Expand atomically adds nodes to an existing cgroup — the migration
// engine's node-adoption step: during a live move the VM's mems_allowed
// covers both the source and destination subarray groups, and exclusive
// ownership guarantees the widened domain still overlaps no other tenant.
func (r *Registry) Expand(name string, nodeIDs []int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cg, ok := r.cgroups[name]
	if !ok {
		return fmt.Errorf("numa: no cgroup %q", name)
	}
	adds := make(map[int]*Node, len(nodeIDs))
	for _, id := range nodeIDs {
		if _, dup := cg.nodes[id]; dup {
			return fmt.Errorf("numa: node %d already in cgroup %q", id, name)
		}
		n, err := r.claim(name, id)
		if err != nil {
			return err
		}
		adds[id] = n
	}
	for id, n := range adds {
		cg.nodes[id] = n
		if n.Kind == GuestReserved {
			r.owner[id] = name
		}
	}
	return nil
}

// Shrink atomically removes nodes from a cgroup, releasing their exclusive
// ownership — the migration engine's source-release step after the VM's
// pages have left the old subarray groups.
func (r *Registry) Shrink(name string, nodeIDs []int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cg, ok := r.cgroups[name]
	if !ok {
		return fmt.Errorf("numa: no cgroup %q", name)
	}
	for _, id := range nodeIDs {
		if _, member := cg.nodes[id]; !member {
			return fmt.Errorf("numa: node %d not in cgroup %q", id, name)
		}
	}
	for _, id := range nodeIDs {
		if cg.nodes[id].Kind == GuestReserved {
			delete(r.owner, id)
		}
		delete(cg.nodes, id)
	}
	return nil
}

// Destroy removes a cgroup, releasing its guest-reserved nodes (§5.3: the
// reservation remains valid until a privileged user destroys the cgroup).
func (r *Registry) Destroy(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cg, ok := r.cgroups[name]
	if !ok {
		return fmt.Errorf("numa: no cgroup %q", name)
	}
	for id, n := range cg.nodes {
		if n.Kind == GuestReserved {
			delete(r.owner, id)
		}
	}
	cg.dead = true
	delete(r.cgroups, name)
	return nil
}

// Get returns a cgroup by name.
func (r *Registry) Get(name string) (*CGroup, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cg, ok := r.cgroups[name]
	return cg, ok
}

// OwnerOf returns the cgroup owning a guest-reserved node, if any.
func (r *Registry) OwnerOf(nodeID int) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name, ok := r.owner[nodeID]
	return name, ok
}

// NUMA distances follow ACPI SLIT conventions: 10 for a node's local
// socket, 21 for a remote socket — the latency asymmetry Siloz preserves by
// composing VMs from same-socket subarray groups (§5.2).
const (
	// DistanceLocal is the SLIT value for same-socket access.
	DistanceLocal = 10
	// DistanceRemote is the SLIT value for cross-socket access.
	DistanceRemote = 21
)

// Distance returns the SLIT-style distance between two logical nodes.
func (t *Topology) Distance(a, b int) (int, error) {
	na, err := t.Node(a)
	if err != nil {
		return 0, err
	}
	nb, err := t.Node(b)
	if err != nil {
		return 0, err
	}
	if na.Socket == nb.Socket {
		return DistanceLocal, nil
	}
	return DistanceRemote, nil
}
