package numa

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/subarray"
)

func mkRange(start, size uint64) subarray.Range {
	return subarray.Range{Start: start, End: start + size}
}

func testTopology(t *testing.T) *Topology {
	t.Helper()
	topo := &Topology{}
	// Socket 0: host node + 2 guest nodes + ept node.
	mustAdd := func(n *Node) *Node {
		t.Helper()
		added, err := topo.AddNode(n)
		if err != nil {
			t.Fatal(err)
		}
		return added
	}
	mustAdd(&Node{Kind: HostReserved, Socket: 0, Groups: []int{0},
		Ranges: []subarray.Range{mkRange(0, 1<<20)}, Cores: []int{0, 1}})
	mustAdd(&Node{Kind: GuestReserved, Socket: 0, Groups: []int{1},
		Ranges: []subarray.Range{mkRange(1<<20, 1<<20)}})
	mustAdd(&Node{Kind: GuestReserved, Socket: 0, Groups: []int{2},
		Ranges: []subarray.Range{mkRange(2<<20, 1<<20)}})
	mustAdd(&Node{Kind: EPTReserved, Socket: 0,
		Ranges: []subarray.Range{mkRange(3<<20, 64<<10)}})
	// Socket 1: host + guest.
	mustAdd(&Node{Kind: HostReserved, Socket: 1, Groups: []int{0},
		Ranges: []subarray.Range{mkRange(16<<20, 1<<20)}, Cores: []int{2, 3}})
	mustAdd(&Node{Kind: GuestReserved, Socket: 1, Groups: []int{1},
		Ranges: []subarray.Range{mkRange(17<<20, 1<<20)}})
	return topo
}

func TestTopologyBasics(t *testing.T) {
	topo := testTopology(t)
	if len(topo.Nodes()) != 6 {
		t.Fatalf("node count = %d, want 6", len(topo.Nodes()))
	}
	n0, err := topo.Node(0)
	if err != nil || n0.Kind != HostReserved {
		t.Fatalf("node 0: %v, %v", n0, err)
	}
	if _, err := topo.Node(99); err == nil {
		t.Error("Node(99) should fail")
	}
	if _, err := topo.AddNode(&Node{Kind: HostReserved}); err == nil {
		t.Error("rangeless node accepted")
	}
}

func TestNodeContainsAndBytes(t *testing.T) {
	topo := testTopology(t)
	n, _ := topo.Node(1)
	if n.Bytes() != 1<<20 {
		t.Errorf("Bytes = %d", n.Bytes())
	}
	if !n.Contains(1<<20) || n.Contains(0) || n.Contains(2<<20) {
		t.Error("Contains boundaries wrong")
	}
}

func TestNodesOnSocketAndKind(t *testing.T) {
	topo := testTopology(t)
	if got := len(topo.NodesOnSocket(0)); got != 4 {
		t.Errorf("socket 0 nodes = %d, want 4", got)
	}
	if got := len(topo.NodesOnSocket(0, GuestReserved)); got != 2 {
		t.Errorf("socket 0 guest nodes = %d, want 2", got)
	}
	if got := len(topo.NodesOfKind(EPTReserved)); got != 1 {
		t.Errorf("ept nodes = %d, want 1", got)
	}
	// Guest nodes are memory-only (§5.2).
	for _, n := range topo.NodesOfKind(GuestReserved) {
		if len(n.Cores) != 0 {
			t.Errorf("guest node %d has cores %v", n.ID, n.Cores)
		}
	}
	// Host nodes carry their socket's cores.
	for _, n := range topo.NodesOfKind(HostReserved) {
		if len(n.Cores) == 0 {
			t.Errorf("host node %d has no cores", n.ID)
		}
	}
}

func TestNodeOfAndPhysicalMapping(t *testing.T) {
	topo := testTopology(t)
	n, ok := topo.NodeOf(17 << 20)
	if !ok || n.ID != 5 {
		t.Fatalf("NodeOf(17M) = %v, %v", n, ok)
	}
	if _, ok := topo.NodeOf(1 << 30); ok {
		t.Error("NodeOf found a node for unowned pa")
	}
	s, err := topo.PhysicalNodeOf(5)
	if err != nil || s != 1 {
		t.Errorf("PhysicalNodeOf(5) = %d, %v", s, err)
	}
	if _, err := topo.PhysicalNodeOf(-1); err == nil {
		t.Error("PhysicalNodeOf(-1) should fail")
	}
}

func TestCGroupExclusiveGuestOwnership(t *testing.T) {
	topo := testTopology(t)
	reg := NewRegistry(topo)
	cg1, err := reg.Create("vm0", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !cg1.Allows(1) || cg1.Allows(2) {
		t.Error("cgroup membership wrong")
	}
	// Same guest node cannot be reserved twice.
	if _, err := reg.Create("vm1", []int{1}); err == nil {
		t.Fatal("double reservation of guest node accepted")
	}
	// Host node can be shared.
	if _, err := reg.Create("hostA", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("hostB", []int{0}); err != nil {
		t.Fatal(err)
	}
	// Failed creation must not leak ownership: node 2 was in the failing
	// request below, and must remain reservable.
	if _, err := reg.Create("bad", []int{2, 1}); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := reg.Create("vm2", []int{2}); err != nil {
		t.Fatalf("node 2 leaked ownership from failed create: %v", err)
	}
}

func TestCGroupDestroyReleasesNodes(t *testing.T) {
	topo := testTopology(t)
	reg := NewRegistry(topo)
	if _, err := reg.Create("vm0", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if owner, ok := reg.OwnerOf(1); !ok || owner != "vm0" {
		t.Errorf("OwnerOf(1) = %q, %v", owner, ok)
	}
	if err := reg.Destroy("vm0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.OwnerOf(1); ok {
		t.Error("ownership survived destroy")
	}
	if _, err := reg.Create("vm1", []int{1}); err != nil {
		t.Errorf("node not reusable after destroy: %v", err)
	}
	if err := reg.Destroy("nope"); err == nil {
		t.Error("destroying unknown cgroup should fail")
	}
}

func TestRegistryDuplicateName(t *testing.T) {
	topo := testTopology(t)
	reg := NewRegistry(topo)
	if _, err := reg.Create("x", []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("x", []int{2}); err == nil {
		t.Error("duplicate cgroup name accepted")
	}
	if cg, ok := reg.Get("x"); !ok || cg.Name != "x" {
		t.Error("Get failed")
	}
	if nodes := mustGet(t, reg, "x").Nodes(); len(nodes) != 1 || nodes[0].ID != 1 {
		t.Errorf("Nodes() = %v", nodes)
	}
}

func mustGet(t *testing.T, r *Registry, name string) *CGroup {
	t.Helper()
	cg, ok := r.Get(name)
	if !ok {
		t.Fatalf("cgroup %q missing", name)
	}
	return cg
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{HostReserved: "host", GuestReserved: "guest", EPTReserved: "ept", NodeKind(9): "invalid"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
}

func TestNodeDistances(t *testing.T) {
	topo := testTopology(t)
	// Nodes 0 and 1 share socket 0; node 4 is socket 1.
	if d, err := topo.Distance(0, 1); err != nil || d != DistanceLocal {
		t.Errorf("local distance = %d, %v", d, err)
	}
	if d, err := topo.Distance(0, 4); err != nil || d != DistanceRemote {
		t.Errorf("remote distance = %d, %v", d, err)
	}
	if _, err := topo.Distance(0, 99); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestRegistryExpandShrink(t *testing.T) {
	topo := &Topology{}
	var ids []int
	for i := 0; i < 4; i++ {
		n, err := topo.AddNode(&Node{Kind: GuestReserved, Socket: 0,
			Ranges: []subarray.Range{{Start: uint64(i) << 30, End: uint64(i+1) << 30}}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, n.ID)
	}
	r := NewRegistry(topo)
	cg, err := r.Create("vm:a", ids[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("vm:b", ids[1:2]); err != nil {
		t.Fatal(err)
	}

	// Adoption: vm:a grows onto nodes 2 and 3 during a migration.
	if err := r.Expand("vm:a", ids[2:4]); err != nil {
		t.Fatal(err)
	}
	if got := len(cg.Nodes()); got != 3 {
		t.Fatalf("after Expand cgroup has %d nodes, want 3", got)
	}
	if owner, ok := r.OwnerOf(ids[2]); !ok || owner != "vm:a" {
		t.Fatalf("node %d owner = %q, %v", ids[2], owner, ok)
	}

	// Exclusivity holds during the widened-domain window.
	if err := r.Expand("vm:b", ids[2:3]); err == nil {
		t.Fatal("Expand onto an owned node must fail")
	}
	if err := r.Expand("vm:a", ids[1:2]); err == nil {
		t.Fatal("Expand onto another tenant's node must fail")
	}
	// A failed multi-node expand must commit nothing.
	if err := r.Expand("vm:b", []int{ids[3], ids[1]}); err == nil {
		t.Fatal("partial Expand must fail")
	} else if owner, _ := r.OwnerOf(ids[3]); owner != "vm:a" {
		t.Fatalf("failed Expand leaked ownership of node %d to %q", ids[3], owner)
	}

	// Source release after the move.
	if err := r.Shrink("vm:a", ids[:1]); err != nil {
		t.Fatal(err)
	}
	if _, owned := r.OwnerOf(ids[0]); owned {
		t.Fatal("Shrink did not release node ownership")
	}
	if cg.Allows(ids[0]) {
		t.Fatal("Shrink left node in cgroup")
	}
	if err := r.Shrink("vm:a", ids[:1]); err == nil {
		t.Fatal("Shrink of a non-member node must fail")
	}
	// The released node is reclaimable by another tenant.
	if err := r.Expand("vm:b", ids[:1]); err != nil {
		t.Fatalf("released node not reclaimable: %v", err)
	}
}

// TestDestroyedCGroupHandleIsDead: a handle retained across Destroy must
// not keep answering as if the reservation were live — the planner would
// see freed nodes as owned capacity.
func TestDestroyedCGroupHandleIsDead(t *testing.T) {
	topo := testTopology(t)
	reg := NewRegistry(topo)
	cg, err := reg.Create("vm:stale", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Dead() {
		t.Fatal("fresh cgroup reports dead")
	}
	if err := reg.Destroy("vm:stale"); err != nil {
		t.Fatal(err)
	}
	if !cg.Dead() {
		t.Error("destroyed cgroup does not report dead")
	}
	if nodes := cg.Nodes(); len(nodes) != 0 {
		t.Errorf("destroyed cgroup still lists %d nodes", len(nodes))
	}
	if cg.Allows(1) {
		t.Error("destroyed cgroup still allows allocation on node 1")
	}
	// The released nodes are genuinely reusable.
	if _, err := reg.Create("vm:next", []int{1, 2}); err != nil {
		t.Errorf("released nodes not reusable: %v", err)
	}
}

// TestConcurrentExpandShrinkExclusive is the registry half of the
// partial-release property: under any concurrent interleaving of
// Create/Expand/Shrink/Destroy (the balloon's inflate/deflate and the
// migration engine's adopt/release), no guest node is ever granted to two
// cgroups at once.
func TestConcurrentExpandShrinkExclusive(t *testing.T) {
	topo := testTopology(t)
	reg := NewRegistry(topo)
	guestNodes := []int{1, 2, 5}

	// claims is an independent double-grant detector: a successful
	// Expand/Create claims the node here, a Shrink/Destroy releases it.
	var claimsMu sync.Mutex
	claims := map[int]string{}
	claim := func(name string, id int) {
		claimsMu.Lock()
		defer claimsMu.Unlock()
		if prev, dup := claims[id]; dup {
			t.Errorf("node %d granted to %q while held by %q", id, name, prev)
		}
		claims[id] = name
	}
	release := func(id int) {
		claimsMu.Lock()
		defer claimsMu.Unlock()
		delete(claims, id)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("vm:w%d", w)
			rng := rand.New(rand.NewSource(int64(w) + 42))
			if _, err := reg.Create(name, nil); err != nil {
				t.Error(err)
				return
			}
			held := map[int]bool{}
			for i := 0; i < 200; i++ {
				id := guestNodes[rng.Intn(len(guestNodes))]
				if held[id] {
					// Release the detector claim first: the instant
					// Shrink commits, another worker may legitimately
					// claim the node.
					release(id)
					if err := reg.Shrink(name, []int{id}); err != nil {
						t.Errorf("shrink of held node %d: %v", id, err)
					}
					delete(held, id)
				} else if err := reg.Expand(name, []int{id}); err == nil {
					claim(name, id)
					held[id] = true
				}
			}
			for id := range held {
				release(id)
			}
			if err := reg.Destroy(name); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	// All nodes released: the pool is whole again.
	for _, id := range guestNodes {
		if owner, owned := reg.OwnerOf(id); owned {
			t.Errorf("node %d still owned by %q after all cgroups died", id, owner)
		}
	}
	if _, err := reg.Create("vm:final", guestNodes); err != nil {
		t.Errorf("full pool not reusable: %v", err)
	}
}
