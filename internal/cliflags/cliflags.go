// Package cliflags defines the flag vocabulary shared by every siloz
// command. All binaries spell the common knobs the same way with the same
// defaults:
//
//	-seed N      base RNG seed (per-rep streams derive from it)
//	-quick       scaled-down parameters for a fast pass
//	-ops N       operations per run (0 = command default)
//	-reps N      repetitions per configuration (0 = command default)
//	-parallel N  worker pool width (0 = GOMAXPROCS)
//
// Commands register the set with Register and read the parsed values from
// the returned Common. The package deliberately depends on nothing but the
// standard library so every cmd/ binary can use it.
package cliflags

import (
	"flag"
	"runtime"
)

// Common holds the parsed values of the shared flags.
type Common struct {
	// Seed is the base RNG seed every derived stream starts from.
	Seed int64
	// Quick selects scaled-down experiment parameters.
	Quick bool
	// Ops overrides operations per run; 0 keeps the command's default.
	Ops int
	// Reps overrides repetitions per configuration; 0 keeps the default.
	Reps int
	// Parallel bounds the worker pool; 0 means GOMAXPROCS.
	Parallel int
}

// Register installs the shared flags on fs with their canonical spellings
// and defaults, returning the struct the parsed values land in.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", 1, "base RNG seed; per-rep streams derive from it")
	fs.BoolVar(&c.Quick, "quick", false, "scaled-down parameters for a fast pass")
	fs.IntVar(&c.Ops, "ops", 0, "operations per run (0 = command default)")
	fs.IntVar(&c.Reps, "reps", 0, "repetitions per configuration (0 = command default)")
	fs.IntVar(&c.Parallel, "parallel", 0, "worker pool width (0 = GOMAXPROCS)")
	return c
}

// Workers resolves -parallel to a concrete pool width.
func (c *Common) Workers() int {
	if c.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallel
}
