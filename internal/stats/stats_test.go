package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7)) {
		t.Errorf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, sd=1: CI = 2.776/sqrt(5).
	xs := []float64{-1.26049, -0.43104, 0, 0.43104, 1.26049}
	sd := StdDev(xs)
	want := 2.776 * sd / math.Sqrt(5)
	if !almost(CI95(xs), want) {
		t.Errorf("CI95 = %v, want %v", CI95(xs), want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI of single sample should be 0")
	}
}

func TestCI95LargeN(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1
	}
	got := CI95(xs)
	want := 1.960 * StdDev(xs) / 10
	if !almost(got, want) {
		t.Errorf("CI95 large-n = %v, want %v", got, want)
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 100}), 10) {
		t.Errorf("GeoMean = %v", GeoMean([]float64{1, 100}))
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with nonpositive input should be NaN")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestNormalize(t *testing.T) {
	base := Sample{Name: "base", Values: []float64{100, 100, 100}}
	fast := Sample{Name: "fast", Values: []float64{99, 99, 99}}
	n := Normalize(fast, base)
	if !almost(n.OverheadPct, -1) {
		t.Errorf("OverheadPct = %v, want -1", n.OverheadPct)
	}
	if n.CIPct != 0 {
		t.Errorf("CIPct = %v, want 0 for zero-variance inputs", n.CIPct)
	}
	slow := Sample{Name: "slow", Values: []float64{104, 106}}
	n2 := Normalize(slow, base)
	if !almost(n2.OverheadPct, 5) {
		t.Errorf("OverheadPct = %v, want 5", n2.OverheadPct)
	}
	if n2.CIPct <= 0 {
		t.Error("CIPct should be positive for noisy input")
	}
	if got := Normalize(fast, Sample{Values: []float64{0}}); !math.IsNaN(got.OverheadPct) {
		t.Error("zero baseline should produce NaN")
	}
}

func TestNormalizedString(t *testing.T) {
	n := Normalized{Name: "redis-a", OverheadPct: 0.25, CIPct: 0.5}
	if s := n.String(); s == "" {
		t.Error("empty String")
	}
}

func TestConcat(t *testing.T) {
	parts := []Sample{
		{Values: []float64{1}},
		{Values: []float64{2, 3}},
		{},
		{Values: []float64{4}},
	}
	got := Concat("merged", parts...)
	if got.Name != "merged" {
		t.Errorf("Name = %q", got.Name)
	}
	want := []float64{1, 2, 3, 4}
	if len(got.Values) != len(want) {
		t.Fatalf("Values = %v, want %v", got.Values, want)
	}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("Values = %v, want %v (order must follow parts, not arrival)", got.Values, want)
		}
	}
}
