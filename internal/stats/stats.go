// Package stats provides the summary statistics the paper's evaluation
// reports: means, geometric means, and 95% confidence intervals over
// repeated benchmark runs, plus baseline normalization (Figs. 4-7).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (1-30); beyond 30 the normal approximation is used.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.960
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// GeoMean returns the geometric mean of positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Sample is a set of repeated measurements of one quantity.
type Sample struct {
	Name   string
	Values []float64
}

// Mean returns the sample mean.
func (s Sample) Mean() float64 { return Mean(s.Values) }

// CI returns the 95% confidence half-width.
func (s Sample) CI() float64 { return CI95(s.Values) }

// Concat merges per-rep partial samples, collected by rep index, into one
// sample whose value order follows the parts' order — not the order the
// reps finished in. It is the merge step of the parallel experiment
// scheduler: each rep task fills parts[rep], and Concat(name, parts...)
// reassembles the exact sample a serial run would have produced.
func Concat(name string, parts ...Sample) Sample {
	out := Sample{Name: name}
	for _, p := range parts {
		out.Values = append(out.Values, p.Values...)
	}
	return out
}

// Normalized expresses a measurement relative to a baseline as a percent
// overhead: positive means slower/worse than baseline (Figs. 4-7).
type Normalized struct {
	Name string
	// OverheadPct is 100*(value/baseline - 1).
	OverheadPct float64
	// CIPct is the 95% CI half-width propagated to percent.
	CIPct float64
}

// Normalize computes baseline-normalized overhead with error propagation
// (first-order, treating baseline and value as independent).
func Normalize(value, baseline Sample) Normalized {
	vb, bb := value.Mean(), baseline.Mean()
	n := Normalized{Name: value.Name}
	if bb == 0 {
		n.OverheadPct = math.NaN()
		return n
	}
	n.OverheadPct = 100 * (vb/bb - 1)
	// Relative error propagation for a ratio.
	var rel float64
	if vb != 0 {
		rv := value.CI() / vb
		rb := baseline.CI() / bb
		rel = math.Sqrt(rv*rv + rb*rb)
	}
	n.CIPct = 100 * (vb / bb) * rel
	return n
}

func (n Normalized) String() string {
	return fmt.Sprintf("%-12s %+6.2f%% ±%.2f%%", n.Name, n.OverheadPct, n.CIPct)
}
