package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := 0; v < subBuckets; v++ {
		h.Record(float64(v))
	}
	if h.Count() != subBuckets {
		t.Fatalf("count = %d, want %d", h.Count(), subBuckets)
	}
	// The first octaves are exact: the median of 0..15 by nearest-rank is 7.
	if got := h.Quantile(0.5); got != 7 {
		t.Fatalf("p50 = %v, want 7", got)
	}
	if h.Min() != 0 || h.Max() != subBuckets-1 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileError(t *testing.T) {
	// Against a sorted reference, every quantile must land within one
	// sub-bucket (~1/subBuckets relative) of the true value.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var vals []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64() * 18) // 1ns .. ~65ms, log-uniform
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := vals[int(math.Ceil(q*float64(len(vals))))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 2.0/subBuckets {
			t.Errorf("q%v: got %.1f want %.1f (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	// Recording a stream into one histogram and recording its halves into
	// two then merging must produce identical state — the property the
	// parallel experiment scheduler relies on.
	rng := rand.New(rand.NewSource(11))
	whole, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * 1e7
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	if merged.counts != whole.counts || merged.total != whole.total ||
		merged.min != whole.min || merged.max != whole.max {
		t.Fatalf("merged state differs from whole-stream state:\n  merged %v\n  whole  %v", merged, whole)
	}
	// Sums differ only by float addition order.
	if rel := math.Abs(merged.sum-whole.sum) / whole.sum; rel > 1e-12 {
		t.Fatalf("merged sum off by %v", rel)
	}
	// And merging in a fixed order is itself deterministic.
	again := NewHistogram()
	again.Merge(a)
	again.Merge(b)
	if *again != *merged {
		t.Fatalf("repeat merge differs")
	}
}

func TestHistogramCountAbove(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{10, 100, 1000, 10000, 100000} {
		h.Record(v)
	}
	if got := h.CountAbove(1000); got != 2 {
		t.Fatalf("CountAbove(1000) = %d, want 2", got)
	}
	if got := h.CountAbove(1e9); got != 0 {
		t.Fatalf("CountAbove(1e9) = %d, want 0", got)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram not zero-valued: %v", h)
	}
	h.Record(-5) // clamps to 0
	h.Record(1e18)
	if h.Count() != 2 || h.Min() != 0 {
		t.Fatalf("clamp: %v", h)
	}
	if got := h.Quantile(1); got <= 0 {
		t.Fatalf("max-bucket quantile = %v", got)
	}
}
