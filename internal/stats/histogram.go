package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a fixed-bucket log-linear latency histogram, HDR-style:
// values are bucketed by binary order of magnitude, each octave split into
// subBuckets linear sub-buckets, so relative quantile error is bounded by
// 1/subBuckets (~6%) at every scale from 1 ns to ~16 s. The bucket layout
// is a pure function of the value's bit pattern — no floats — so two
// histograms recording the same values land counts in the same buckets on
// every platform, and Merge is plain counter addition. That makes per-rep
// histograms safe to fan out on the experiment pool and merge by rep index
// into the exact histogram a serial run would have produced.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
	sum    float64
	max    float64
	min    float64
}

const (
	// subBucketBits splits each binary octave into 2^subBucketBits linear
	// sub-buckets; 16 per octave bounds quantile error at ~6%.
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	// maxExponent caps the tracked range: values at or above 2^34 ns
	// (~17 s) clamp into the last bucket.
	maxExponent = 34
	numBuckets  = (maxExponent + 1) * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.Inf(1)}
}

// bucketOf maps a non-negative integer value (nanoseconds) to its bucket.
func bucketOf(v uint64) int {
	if v < subBuckets {
		// The first octaves are exact: one bucket per integer value.
		return int(v)
	}
	exp := bits.Len64(v) - 1 - subBucketBits // octave above the exact range
	if exp > maxExponent-1 {
		return numBuckets - 1
	}
	sub := int(v>>uint(exp)) & (subBuckets - 1)
	return (exp+1)*subBuckets + sub
}

// bucketMid returns a representative value (upper edge midpoint) for a
// bucket, the value quantiles report.
func bucketMid(b int) float64 {
	if b < subBuckets {
		return float64(b)
	}
	exp := b/subBuckets - 1
	sub := b % subBuckets
	lo := (uint64(subBuckets) + uint64(sub)) << uint(exp)
	width := uint64(1) << uint(exp)
	return float64(lo) + float64(width)/2
}

// Record adds one value (nanoseconds; negatives clamp to zero).
func (h *Histogram) Record(v float64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(uint64(v))]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Merge adds other's counts into h. Counts add bucket-wise, so merging
// per-rep histograms in rep order reproduces the serial histogram exactly.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.min < h.min {
		h.min = other.min
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the arithmetic mean of recorded values (exact, not
// bucket-quantized).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max and Min return the exact extremes (0 / +Inf when empty).
func (h *Histogram) Max() float64 { return h.max }
func (h *Histogram) Min() float64 { return h.min }

// Quantile returns the value at quantile q in [0,1], quantized to bucket
// midpoints (≤ ~6% relative error). Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-th value, 1-based, nearest-rank definition.
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketMid(b)
		}
	}
	return h.max
}

// P50, P90, P99 and P999 are the quantiles the SLO tables report.
func (h *Histogram) P50() float64  { return h.Quantile(0.50) }
func (h *Histogram) P90() float64  { return h.Quantile(0.90) }
func (h *Histogram) P99() float64  { return h.Quantile(0.99) }
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// CountAbove returns how many recorded values fall in buckets strictly
// above the bucket containing threshold — the SLO-violation counter. The
// bucket quantization means values within one sub-bucket (~6%) of the
// threshold count as meeting it.
func (h *Histogram) CountAbove(threshold float64) int64 {
	if threshold < 0 {
		threshold = 0
	}
	tb := bucketOf(uint64(threshold))
	var n int64
	for b := tb + 1; b < numBuckets; b++ {
		n += h.counts[b]
	}
	return n
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0fns p50=%.0f p99=%.0f p99.9=%.0f max=%.0f",
		h.total, h.Mean(), h.P50(), h.P99(), h.P999(), h.max)
}
