package subarray

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/addr"
)

func TestLayoutSaveLoadRoundTrip(t *testing.T) {
	l := tinyLayout(t)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g := l.Geometry()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsPerGroup() != l.RowsPerGroup() || got.Artificial() != l.Artificial() {
		t.Error("layout metadata mismatch after reload")
	}
	for s := 0; s < g.Sockets; s++ {
		for i := 0; i < l.GroupsPerSocket(); i++ {
			a, b := l.Group(s, i), got.Group(s, i)
			if a.FirstRow != b.FirstRow || a.LastRow != b.LastRow || len(a.Ranges) != len(b.Ranges) {
				t.Fatalf("group (%d,%d) differs after reload", s, i)
			}
			for j := range a.Ranges {
				if a.Ranges[j] != b.Ranges[j] {
					t.Fatalf("group (%d,%d) range %d differs", s, i, j)
				}
			}
		}
	}
	// The reloaded layout answers queries identically.
	for pa := uint64(0); pa < uint64(g.TotalBytes()); pa += uint64(g.TotalBytes()) / 64 {
		ga, err := l.GroupOf(pa)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.GroupOf(pa)
		if err != nil {
			t.Fatal(err)
		}
		if ga.Index != gb.Index || ga.Socket != gb.Socket {
			t.Fatalf("GroupOf(%#x) differs: (%d,%d) vs (%d,%d)", pa, ga.Socket, ga.Index, gb.Socket, gb.Index)
		}
	}
}

func TestLayoutLoadRejectsMismatchedGeometry(t *testing.T) {
	l := tinyLayout(t)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyGeometry().WithSubarraySize(1024) // different boot parameter
	m, err := addr.NewSkylakeMapper(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, other, m); err == nil {
		t.Fatal("cached layout accepted for a different geometry")
	}
}

func TestLayoutLoadRejectsCorruptedCache(t *testing.T) {
	l := tinyLayout(t)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g := l.Geometry()
	m, _ := addr.NewSkylakeMapper(g)
	// Truncated JSON.
	trunc := buf.String()[:buf.Len()/2]
	if _, err := Load(strings.NewReader(trunc), g, m); err == nil {
		t.Error("truncated cache accepted")
	}
	// Tampered group size.
	tampered := strings.Replace(buf.String(), `"rows_per_group":512`, `"rows_per_group":100`, 1)
	if _, err := Load(strings.NewReader(tampered), g, m); err == nil {
		t.Error("tampered cache accepted")
	}
}
