package subarray

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
)

func tinyGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    2,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func tinyLayout(t *testing.T) *Layout {
	t.Helper()
	g := tinyGeometry()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDefaultLayoutMatchesPaper(t *testing.T) {
	g := geometry.Default()
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if l.Artificial() {
		t.Error("1024-row subarrays should not need artificial groups")
	}
	if got := l.GroupsPerSocket(); got != 128 {
		t.Errorf("GroupsPerSocket = %d, want 128", got)
	}
	if got := l.GroupBytes(); got != uint64(3*geometry.GiB/2) {
		t.Errorf("GroupBytes = %d, want 1.5 GiB", got)
	}
	for s := 0; s < g.Sockets; s++ {
		for i := 0; i < l.GroupsPerSocket(); i++ {
			grp := l.Group(s, i)
			if grp.Bytes() != l.GroupBytes() {
				t.Fatalf("group (%d,%d) has %d bytes, want %d", s, i, grp.Bytes(), l.GroupBytes())
			}
		}
	}
}

func TestGroupsPartitionTheAddressSpace(t *testing.T) {
	l := tinyLayout(t)
	g := l.Geometry()
	// Every 2 MiB page belongs to exactly one group, and GroupOf agrees
	// with Contains.
	counts := make(map[[2]int]uint64)
	for pa := uint64(0); pa < uint64(g.TotalBytes()); pa += geometry.PageSize2M {
		grp, err := l.GroupOf(pa)
		if err != nil {
			t.Fatal(err)
		}
		if !grp.Contains(pa) {
			t.Fatalf("GroupOf(%#x) = (%d,%d) but Contains is false", pa, grp.Socket, grp.Index)
		}
		counts[[2]int{grp.Socket, grp.Index}] += geometry.PageSize2M
		// No other group contains it.
		for s := 0; s < g.Sockets; s++ {
			for i := 0; i < l.GroupsPerSocket(); i++ {
				other := l.Group(s, i)
				if (other.Socket != grp.Socket || other.Index != grp.Index) && other.Contains(pa) {
					t.Fatalf("pa %#x in two groups", pa)
				}
			}
		}
	}
	for key, n := range counts {
		if n != l.GroupBytes() {
			t.Errorf("group %v accumulated %d bytes of pages, want %d", key, n, l.GroupBytes())
		}
	}
}

func TestEvery2MiBPageInOneGroup(t *testing.T) {
	// The isolation prerequisite of §4.2: all bytes of a 2 MiB page are
	// in the page's group.
	l := tinyLayout(t)
	g := l.Geometry()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 64; trial++ {
		page := uint64(rng.Int63n(g.TotalBytes()/geometry.PageSize2M)) * geometry.PageSize2M
		grp, err := l.GroupOf(page)
		if err != nil {
			t.Fatal(err)
		}
		for off := uint64(0); off < geometry.PageSize2M; off += 32 * geometry.KiB {
			if !grp.Contains(page + off) {
				t.Fatalf("page %#x offset %#x left its group", page, off)
			}
		}
	}
}

func TestGroupRangesAre2MiBAligned(t *testing.T) {
	// Groups must be carveable into huge pages.
	l := tinyLayout(t)
	for s := 0; s < l.Geometry().Sockets; s++ {
		for i := 0; i < l.GroupsPerSocket(); i++ {
			for _, r := range l.Group(s, i).Ranges {
				if r.Start%geometry.PageSize2M != 0 || r.End%geometry.PageSize2M != 0 {
					t.Fatalf("group (%d,%d) range %v not 2 MiB aligned", s, i, r)
				}
			}
		}
	}
}

func TestGroupRowBounds(t *testing.T) {
	l := tinyLayout(t)
	grp := l.Group(0, 1)
	if grp.FirstRow != 512 || grp.LastRow != 1023 {
		t.Errorf("group 1 rows [%d,%d], want [512,1023]", grp.FirstRow, grp.LastRow)
	}
}

func TestArtificialLayoutRoundsUp(t *testing.T) {
	g := geometry.Geometry{
		Sockets: 1, CoresPerSocket: 4, DIMMsPerSocket: 1, RanksPerDIMM: 2,
		BanksPerRank: 2, RowsPerBank: 5120, RowBytes: 8 * geometry.KiB,
		RowsPerSubarray: 640, // not a power of two
	}
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Artificial() {
		t.Fatal("640-row subarrays must form artificial groups")
	}
	if l.RowsPerGroup() != 1024 {
		t.Fatalf("RowsPerGroup = %d, want 1024", l.RowsPerGroup())
	}
	if l.GroupsPerSocket() != 5 {
		t.Errorf("GroupsPerSocket = %d, want 5", l.GroupsPerSocket())
	}

	guards := l.BoundaryGuardRows(addr.AllTransforms())
	if len(guards) == 0 {
		t.Fatal("artificial layout needs boundary guard rows")
	}
	perBoundary := float64(len(guards)) / float64(l.GroupsPerSocket())
	if perBoundary < 2*GuardRowsPerBoundary || perBoundary > 4*GuardRowsPerBoundary {
		t.Errorf("%.1f guard rows per boundary, want within [8,16] (§6: ~2x4 accounting for sides)", perBoundary)
	}
	// Guard rows must include the first GuardRowsPerBoundary rows of each
	// artificial group.
	guardSet := make(map[int]bool)
	for _, r := range guards {
		guardSet[r] = true
	}
	for start := 0; start < g.RowsPerBank; start += l.RowsPerGroup() {
		for k := 0; k < GuardRowsPerBoundary; k++ {
			if !guardSet[start+k] {
				t.Errorf("guard row %d missing", start+k)
			}
		}
	}
	// Reserved fraction in the paper's reported band (≈0.39%-1.56%,
	// modulo the safe over-approximation of preimages).
	frac := float64(len(guards)) / float64(g.RowsPerBank)
	if frac < 0.003 || frac > 0.02 {
		t.Errorf("guard fraction %.4f outside expected band", frac)
	}
}

func TestPowerOfTwoLayoutNeedsNoGuards(t *testing.T) {
	l := tinyLayout(t)
	if rows := l.BoundaryGuardRows(addr.AllTransforms()); len(rows) != 0 {
		t.Errorf("power-of-two layout returned %d guard rows, want 0", len(rows))
	}
}

func TestOfflineRangesForRows(t *testing.T) {
	l := tinyLayout(t)
	g := l.Geometry()
	ranges, err := l.OfflineRangesForRows([]int{0, 1, 700})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range ranges {
		total += r.Bytes()
	}
	want := uint64(3) * uint64(g.RowGroupBytes()) * uint64(g.Sockets)
	if total != want {
		t.Errorf("offline ranges cover %d bytes, want %d", total, want)
	}
	// Rows 0 and 1 are adjacent row groups within one chunk: their
	// physical images coalesce.
	if len(ranges) >= 2 && ranges[0].Bytes() < 2*uint64(g.RowGroupBytes()) {
		t.Errorf("adjacent row groups did not coalesce: %v", ranges)
	}
}

func TestRepairOfflineRows(t *testing.T) {
	g := tinyGeometry()
	rt := addr.NewRepairTable(g)
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 0}
	// Inter-subarray repair: internal row 100 (subarray 0) -> anchor 600
	// (subarray 1).
	if err := rt.Add(addr.Repair{Bank: bank, From: 100, Spare: addr.SpareRow{Anchor: 600}}); err != nil {
		t.Fatal(err)
	}
	// Intra-subarray repair: should not appear.
	if err := rt.Add(addr.Repair{Bank: bank, From: 200, Spare: addr.SpareRow{Anchor: 300}}); err != nil {
		t.Fatal(err)
	}
	tc := addr.AllTransforms()
	rows := RepairOfflineRows(g, rt, tc)
	if len(rows[0]) == 0 {
		t.Fatal("no offline rows for an inter-subarray repair")
	}
	im := addr.NewInternalMapper(g, tc)
	want := map[int]bool{
		im.MediaRow(bank, 100, addr.SideA): true,
		im.MediaRow(bank, 100, addr.SideB): true,
	}
	for _, r := range rows[0] {
		if !want[r] {
			t.Errorf("unexpected offline row %d", r)
		}
		delete(want, r)
	}
	for r := range want {
		t.Errorf("missing offline row %d", r)
	}
	if RepairOfflineRows(g, nil, tc)[0] != nil {
		t.Error("nil repair table should yield no rows")
	}
}

func TestOverheadAccounting(t *testing.T) {
	// Power-of-two layout, no repairs: 100% usable (§3's "~98.5%-100%").
	l := tinyLayout(t)
	rep := l.Overhead(addr.AllTransforms(), nil)
	if rep.UsableFraction() != 1.0 {
		t.Errorf("usable fraction %.4f, want 1.0", rep.UsableFraction())
	}

	// With inter-subarray repairs, a small fraction is lost.
	g := tinyGeometry()
	rt, err := addr.GenerateRepairs(g, addr.RepairInterSubarray, 0.0015, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rep2 := l.Overhead(addr.AllTransforms(), rt)
	if rep2.RepairBytes == 0 {
		t.Error("repair overhead not accounted")
	}
	if rep2.UsableFraction() < 0.97 {
		t.Errorf("usable fraction %.4f unexpectedly low", rep2.UsableFraction())
	}
}

func TestLayoutRejectsIndivisibleGeometry(t *testing.T) {
	g := tinyGeometry()
	g.RowsPerBank = 2048 + 512 // 2560: divisible by 512 but not by itself after round-up? (2560/512=5, power-of-two size ok)
	g.RowsPerSubarray = 512
	m, err := addr.NewSkylakeMapper(g)
	if err != nil {
		// Geometry may be rejected by the mapper instead; both are fine.
		return
	}
	if _, err := NewLayout(g, m); err != nil {
		t.Logf("NewLayout rejected: %v", err)
	}
}

func TestRangeSetOperations(t *testing.T) {
	a := []Range{{0, 100}, {200, 300}}
	b := []Range{{50, 250}}
	got := Intersect(a, b)
	want := []Range{{50, 100}, {200, 250}}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	sub := Subtract(a, b)
	wantSub := []Range{{0, 50}, {250, 300}}
	for i := range wantSub {
		if sub[i] != wantSub[i] {
			t.Fatalf("Subtract[%d] = %v, want %v", i, sub[i], wantSub[i])
		}
	}
	if co := Coalesce([]Range{{10, 20}, {20, 30}, {40, 50}}); len(co) != 2 || co[0] != (Range{10, 30}) {
		t.Fatalf("Coalesce = %v", co)
	}
	if s := (Range{1, 2}).String(); s == "" {
		t.Error("empty Range string")
	}
}
