package subarray

import (
	"sort"

	"repro/internal/addr"
	"repro/internal/geometry"
)

// GuardRowsPerBoundary is the number of guard rows needed on each side of
// an isolation boundary on modern server DIMMs (blast radius 2, §6).
const GuardRowsPerBoundary = 4

// BoundaryGuardRows returns, for an artificial layout, the media rows at
// the start of each artificial subarray that must be offlined to enforce
// isolation across artificial boundaries (§6). The returned set is the
// union of the guard positions' preimages under every enabled internal
// transformation (rank mirroring fixes rows 0-3; B-side inversion maps them
// to rows 504-507 of their 512-row block), so offlining these media rows
// guarantees that no allocatable row is internally adjacent to a boundary.
//
// For a true power-of-two layout the result is empty: real subarray
// boundaries provide natural isolation.
func (l *Layout) BoundaryGuardRows(transforms addr.TransformConfig) []int {
	if !l.artificial {
		return nil
	}
	set := make(map[int]bool)
	for start := 0; start < l.g.RowsPerBank; start += l.rowsPerGroup {
		for k := 0; k < GuardRowsPerBoundary; k++ {
			p := start + k
			// Preimages of internal guard position p under each
			// rank/side transform combination.
			candidates := []int{p}
			if transforms.Inversion {
				candidates = append(candidates, addr.InvertRow(p))
			}
			if transforms.Mirroring {
				candidates = append(candidates, addr.MirrorRow(p))
				if transforms.Inversion {
					candidates = append(candidates, addr.MirrorRow(addr.InvertRow(p)))
				}
			}
			if transforms.Scrambling {
				for _, c := range append([]int(nil), candidates...) {
					candidates = append(candidates, addr.ScrambleRow(c))
				}
			}
			for _, c := range candidates {
				if c >= 0 && c < l.g.RowsPerBank {
					set[c] = true
				}
			}
		}
	}
	rows := make([]int, 0, len(set))
	for r := range set {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}

// rowGroupRanges returns the physical ranges of one media row's row group
// on one socket.
func (l *Layout) rowGroupRanges(socket, row int) ([]Range, error) {
	pa, err := l.mapper.Encode(geometry.MediaAddr{Bank: firstBank(l.g, socket), Row: row, Col: 0})
	if err != nil {
		return nil, err
	}
	return []Range{{Start: pa, End: pa + uint64(l.g.RowGroupBytes())}}, nil
}

// OfflineRangesForRows returns the coalesced physical ranges backing the
// given media rows on every socket; offlining them removes the rows from
// allocatable memory (the mitigation of §6, built on the kernel's
// faulty-page offlining [15]).
func (l *Layout) OfflineRangesForRows(rows []int) ([]Range, error) {
	var out []Range
	for s := 0; s < l.g.Sockets; s++ {
		for _, row := range rows {
			rs, err := l.rowGroupRanges(s, row)
			if err != nil {
				return nil, err
			}
			out = append(out, rs...)
		}
	}
	return coalesce(out), nil
}

// RepairOfflineRows returns, per socket, the media rows whose pages must be
// offlined because a row repair crosses a subarray boundary (§6): for every
// inter-subarray repair, every media row that resolves to the repaired
// internal row on either half-row side of the affected bank.
func RepairOfflineRows(g geometry.Geometry, rt *addr.RepairTable, transforms addr.TransformConfig) map[int][]int {
	out := make(map[int][]int)
	if rt == nil {
		return out
	}
	im := addr.NewInternalMapper(g, transforms)
	seen := make(map[[2]int]bool) // (socket, row)
	for _, r := range rt.InterSubarrayRepairs() {
		for _, side := range []addr.Side{addr.SideA, addr.SideB} {
			media := im.MediaRow(r.Bank, r.From, side)
			key := [2]int{r.Bank.Socket, media}
			if !seen[key] {
				seen[key] = true
				out[r.Bank.Socket] = append(out[r.Bank.Socket], media)
			}
		}
	}
	for s := range out {
		sort.Ints(out[s])
	}
	return out
}

// OverheadReport quantifies the DRAM reserved (unusable) under a layout,
// the §6 / §3 accounting that compares Siloz (~0-1.6%) against guard-row
// schemes like ZebRAM (50-80%).
type OverheadReport struct {
	// TotalBytes is the server's DRAM capacity.
	TotalBytes uint64
	// GuardBytes is DRAM lost to artificial-boundary guard rows.
	GuardBytes uint64
	// RepairBytes is DRAM lost to offlined inter-subarray repaired rows.
	RepairBytes uint64
}

// UsableFraction returns the fraction of DRAM that remains allocatable.
func (o OverheadReport) UsableFraction() float64 {
	return 1 - float64(o.GuardBytes+o.RepairBytes)/float64(o.TotalBytes)
}

// Overhead computes the reservation accounting for a layout, transforms,
// and optional repair table.
func (l *Layout) Overhead(transforms addr.TransformConfig, rt *addr.RepairTable) OverheadReport {
	rep := OverheadReport{TotalBytes: uint64(l.g.TotalBytes())}
	guardRows := l.BoundaryGuardRows(transforms)
	rep.GuardBytes = uint64(len(guardRows)) * uint64(l.g.RowGroupBytes()) * uint64(l.g.Sockets)
	for _, rows := range RepairOfflineRows(l.g, rt, transforms) {
		rep.RepairBytes += uint64(len(rows)) * uint64(l.g.RowGroupBytes())
	}
	return rep
}
