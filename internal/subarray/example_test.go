package subarray_test

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/subarray"
)

// Example computes the boot-time subarray group layout for the evaluation
// server and looks up the group owning a physical address.
func Example() {
	g := geometry.Default()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		panic(err)
	}
	layout, err := subarray.NewLayout(g, mapper)
	if err != nil {
		panic(err)
	}
	grp, err := layout.GroupOf(4 * geometry.GiB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("groups/socket: %d of %.1f GiB\n", layout.GroupsPerSocket(), float64(layout.GroupBytes())/(1<<30))
	fmt.Printf("pa 4GiB -> socket %d, group %d (rows %d-%d)\n", grp.Socket, grp.Index, grp.FirstRow, grp.LastRow)
	// Output:
	// groups/socket: 128 of 1.5 GiB
	// pa 4GiB -> socket 0, group 5 (rows 5120-6143)
}
