package subarray

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/geometry"
)

// Because physical-to-media mappings are fixed by BIOS settings (§2.4), the
// subarray group address ranges computed during early boot can be cached in
// a bootloader or firmware variable and reloaded on subsequent boots (§5.3).
// This file implements that cache as a JSON snapshot, keyed by the geometry
// so a configuration change invalidates it.

// layoutSnapshot is the serialized form.
type layoutSnapshot struct {
	Geometry     geometry.Geometry `json:"geometry"`
	RowsPerGroup int               `json:"rows_per_group"`
	Artificial   bool              `json:"artificial"`
	Groups       [][]groupSnapshot `json:"groups"`
}

type groupSnapshot struct {
	Socket   int     `json:"socket"`
	Index    int     `json:"index"`
	FirstRow int     `json:"first_row"`
	LastRow  int     `json:"last_row"`
	Ranges   []Range `json:"ranges"`
}

// Save writes the layout to w for reuse on later boots.
func (l *Layout) Save(w io.Writer) error {
	snap := layoutSnapshot{
		Geometry:     l.g,
		RowsPerGroup: l.rowsPerGroup,
		Artificial:   l.artificial,
		Groups:       make([][]groupSnapshot, len(l.groups)),
	}
	for s, groups := range l.groups {
		snap.Groups[s] = make([]groupSnapshot, len(groups))
		for i, grp := range groups {
			snap.Groups[s][i] = groupSnapshot{
				Socket: grp.Socket, Index: grp.Index,
				FirstRow: grp.FirstRow, LastRow: grp.LastRow,
				Ranges: grp.Ranges,
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Load restores a cached layout, validating it against the booting system's
// geometry; a mismatch (e.g. changed DIMM population or subarray size boot
// parameter) is an error, forcing recomputation.
func Load(r io.Reader, g geometry.Geometry, mapper addr.Mapper) (*Layout, error) {
	var snap layoutSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("subarray: decoding cached layout: %w", err)
	}
	if snap.Geometry != g {
		return nil, fmt.Errorf("subarray: cached layout is for a different geometry")
	}
	l := &Layout{
		g: g, mapper: mapper,
		rowsPerGroup: snap.RowsPerGroup,
		artificial:   snap.Artificial,
		groups:       make([][]*Group, len(snap.Groups)),
	}
	if snap.RowsPerGroup <= 0 || g.RowsPerBank%snap.RowsPerGroup != 0 {
		return nil, fmt.Errorf("subarray: cached layout has invalid group size %d", snap.RowsPerGroup)
	}
	want := g.RowsPerBank / snap.RowsPerGroup
	for s, groups := range snap.Groups {
		if len(groups) != want {
			return nil, fmt.Errorf("subarray: cached socket %d has %d groups, want %d", s, len(groups), want)
		}
		l.groups[s] = make([]*Group, len(groups))
		for i, gs := range groups {
			if gs.Socket != s || gs.Index != i {
				return nil, fmt.Errorf("subarray: cached group (%d,%d) mislabeled as (%d,%d)",
					s, i, gs.Socket, gs.Index)
			}
			grp := &Group{
				Socket: gs.Socket, Index: gs.Index,
				FirstRow: gs.FirstRow, LastRow: gs.LastRow,
				Ranges: gs.Ranges,
			}
			if grp.Bytes() != l.GroupBytes() {
				return nil, fmt.Errorf("subarray: cached group (%d,%d) covers %d bytes, want %d",
					s, i, grp.Bytes(), l.GroupBytes())
			}
			l.groups[s][i] = grp
		}
	}
	return l, nil
}
