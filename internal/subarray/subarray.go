// Package subarray implements the paper's core primitive (§4): subarray
// groups — collections of at least one subarray from every bank in a
// physical NUMA node — as software-visible DRAM isolation domains.
//
// A Layout computes, from a geometry and the platform's physical-to-media
// address mapping, the physical address ranges composing every subarray
// group, the group that owns any physical address, and the page-offlining
// requirements of §6 (artificial groups with boundary guard rows for
// non-power-of-two subarray sizes, and inter-subarray row repairs).
package subarray

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/geometry"
)

// Range is a half-open physical address range [Start, End).
type Range struct {
	Start, End uint64
}

// Bytes returns the range's length.
func (r Range) Bytes() uint64 { return r.End - r.Start }

// Contains reports whether pa falls in the range.
func (r Range) Contains(pa uint64) bool { return pa >= r.Start && pa < r.End }

func (r Range) String() string { return fmt.Sprintf("[%#x,%#x)", r.Start, r.End) }

// Group is one subarray group: RowsPerSubarray consecutive row groups in a
// physical node, i.e. the same subarray index in every bank of the socket
// (Fig. 2).
type Group struct {
	// Socket is the physical node the group belongs to.
	Socket int
	// Index is the subarray group index within the socket; the group
	// covers media rows [Index*r, (Index+1)*r) of every bank, where r is
	// the (possibly artificial) subarray size in rows.
	Index int
	// FirstRow and LastRow bound the group's media rows [FirstRow,
	// LastRow] in every bank of the socket.
	FirstRow, LastRow int
	// Ranges are the physical address ranges backing the group, sorted
	// and coalesced.
	Ranges []Range
}

// Bytes returns the group's total capacity.
func (g *Group) Bytes() uint64 {
	var n uint64
	for _, r := range g.Ranges {
		n += r.Bytes()
	}
	return n
}

// Contains reports whether a physical address belongs to the group.
func (g *Group) Contains(pa uint64) bool {
	i := sort.Search(len(g.Ranges), func(i int) bool { return g.Ranges[i].End > pa })
	return i < len(g.Ranges) && g.Ranges[i].Contains(pa)
}

// Layout is the boot-time computed map from physical addresses to subarray
// groups (§5.3). RowsPerGroup is the managed subarray size: the true size
// for power-of-two modules, or the next power of two ("artificial groups")
// otherwise (§6).
type Layout struct {
	g            geometry.Geometry
	mapper       addr.Mapper
	rowsPerGroup int
	artificial   bool
	groups       [][]*Group // [socket][index]
}

// NewLayout computes subarray groups for g under the platform mapping. For
// non-power-of-two subarray sizes the layout automatically forms artificial
// groups by rounding the size up to the next power of two; callers must then
// offline the BoundaryGuardRows. It assumes a DDR4 module applying the full
// set of internal transformations; use NewLayoutForModule when the module's
// transformations are known.
func NewLayout(g geometry.Geometry, mapper addr.Mapper) (*Layout, error) {
	return NewLayoutForModule(g, mapper, addr.AllTransforms())
}

// NewLayoutForModule computes subarray groups taking the module's internal
// address transformations into account. Artificial (rounded-up) groups are
// only needed when a non-power-of-two subarray size combines with
// transformations that reorder rows across its boundaries (§6); DDR5
// modules undo mirroring and inversion at each device (§8.2), so they get
// exact groups for any size.
func NewLayoutForModule(g geometry.Geometry, mapper addr.Mapper, transforms addr.TransformConfig) (*Layout, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rows := g.RowsPerSubarray
	nonPow2 := rows&(rows-1) != 0
	// Scrambling only reorders within 8-row blocks; mirroring/inversion
	// within 512-row blocks.
	hazardous := transforms.Mirroring || transforms.Inversion ||
		(transforms.Scrambling && rows%8 != 0)
	artificial := nonPow2 && hazardous
	if artificial {
		for rows&(rows-1) != 0 {
			rows &= rows - 1
		}
		rows <<= 1 // next power of two
	}
	if g.RowsPerBank%rows != 0 {
		return nil, fmt.Errorf("subarray: bank rows %d not divisible by managed group size %d",
			g.RowsPerBank, rows)
	}
	l := &Layout{g: g, mapper: mapper, rowsPerGroup: rows, artificial: artificial}
	if err := l.build(); err != nil {
		return nil, err
	}
	return l, nil
}

// build computes every group's physical ranges by encoding each row group's
// first cache line and coalescing adjacent images.
func (l *Layout) build() error {
	g := l.g
	rowGroupBytes := uint64(g.RowGroupBytes())
	perSocket := g.RowsPerBank / l.rowsPerGroup
	l.groups = make([][]*Group, g.Sockets)
	for s := 0; s < g.Sockets; s++ {
		l.groups[s] = make([]*Group, perSocket)
		bank0 := firstBank(g, s)
		for idx := 0; idx < perSocket; idx++ {
			grp := &Group{
				Socket:   s,
				Index:    idx,
				FirstRow: idx * l.rowsPerGroup,
				LastRow:  (idx+1)*l.rowsPerGroup - 1,
			}
			var ranges []Range
			for row := grp.FirstRow; row <= grp.LastRow; row++ {
				pa, err := l.mapper.Encode(geometry.MediaAddr{Bank: bank0, Row: row, Col: 0})
				if err != nil {
					return fmt.Errorf("subarray: encoding row %d of socket %d: %w", row, s, err)
				}
				ranges = append(ranges, Range{Start: pa, End: pa + rowGroupBytes})
			}
			grp.Ranges = coalesce(ranges)
			l.groups[s][idx] = grp
		}
	}
	return nil
}

// firstBank returns the bank with SocketFlat index 0 on socket s.
func firstBank(g geometry.Geometry, s int) geometry.BankID {
	return geometry.BankID{Socket: s, DIMM: 0, Rank: 0, Bank: 0}
}

// coalesce sorts ranges in place and merges adjacent/overlapping ones.
func coalesce(rs []Range) []Range {
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// Coalesce returns a sorted, merged copy of the given ranges.
func Coalesce(rs []Range) []Range {
	cp := make([]Range, len(rs))
	copy(cp, rs)
	return coalesce(cp)
}

// Subtract removes every range in remove from usable, returning the
// coalesced remainder. It is how boot-time offlining (guard rows, repaired
// rows, the EPT block) carves holes out of node memory.
func Subtract(usable, remove []Range) []Range {
	u := Coalesce(usable)
	rm := Coalesce(remove)
	var out []Range
	for _, cur := range u {
		for _, off := range rm {
			if off.End <= cur.Start || off.Start >= cur.End {
				continue
			}
			if off.Start > cur.Start {
				out = append(out, Range{Start: cur.Start, End: off.Start})
			}
			if off.End >= cur.End {
				cur.Start = cur.End
				break
			}
			cur.Start = off.End
		}
		if cur.Start < cur.End {
			out = append(out, cur)
		}
	}
	return out
}

// Intersect returns the coalesced intersection of two range sets.
func Intersect(a, b []Range) []Range {
	var out []Range
	for _, x := range Coalesce(a) {
		for _, y := range Coalesce(b) {
			lo, hi := x.Start, x.End
			if y.Start > lo {
				lo = y.Start
			}
			if y.End < hi {
				hi = y.End
			}
			if lo < hi {
				out = append(out, Range{Start: lo, End: hi})
			}
		}
	}
	return coalesce(out)
}

// Geometry returns the layout's geometry.
func (l *Layout) Geometry() geometry.Geometry { return l.g }

// RowsPerGroup returns the managed (possibly artificial) group size in rows.
func (l *Layout) RowsPerGroup() int { return l.rowsPerGroup }

// Artificial reports whether the layout had to round the subarray size up
// to a power of two (§6).
func (l *Layout) Artificial() bool { return l.artificial }

// GroupsPerSocket returns the number of subarray groups per physical node.
func (l *Layout) GroupsPerSocket() int { return len(l.groups[0]) }

// Group returns the group at (socket, index).
func (l *Layout) Group(socket, index int) *Group {
	return l.groups[socket][index]
}

// GroupOf returns the subarray group owning a physical address.
func (l *Layout) GroupOf(pa uint64) (*Group, error) {
	ma, err := l.mapper.Decode(pa)
	if err != nil {
		return nil, err
	}
	return l.groups[ma.Bank.Socket][ma.Row/l.rowsPerGroup], nil
}

// GroupBytes returns the capacity of each group.
func (l *Layout) GroupBytes() uint64 {
	return uint64(l.g.BanksPerSocket()) * uint64(l.rowsPerGroup) * uint64(l.g.RowBytes)
}
