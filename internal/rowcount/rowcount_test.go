package rowcount

import (
	"math/rand"
	"testing"
)

// TestDifferentialAgainstMap drives a Table and a plain map through the
// same randomized operation stream — adds, deletes, resets, lookups — and
// demands identical contents after every step. This is the golden
// equivalence the hot paths rely on: the flat table must be observationally
// identical to the (bank,row)-keyed maps it replaced.
func TestDifferentialAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab Table[float64]
	ref := map[int]float64{}
	check := func(step int) {
		t.Helper()
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, map has %d", step, tab.Len(), len(ref))
		}
		seen := 0
		tab.Range(func(row int, v float64) bool {
			want, ok := ref[row]
			if !ok || want != v {
				t.Fatalf("step %d: row %d = %v, map has %v (present=%v)", step, row, v, want, ok)
			}
			seen++
			return true
		})
		if seen != len(ref) {
			t.Fatalf("step %d: Range visited %d rows, map has %d", step, seen, len(ref))
		}
	}
	for step := 0; step < 200_000; step++ {
		row := rng.Intn(3000)
		switch op := rng.Intn(100); {
		case op < 55: // accumulate
			delta := rng.Float64()
			got := tab.Add(row, delta)
			ref[row] += delta
			if got != ref[row] {
				t.Fatalf("step %d: Add(%d) = %v, want %v", step, row, got, ref[row])
			}
		case op < 80: // lookup
			got, ok := tab.Get(row)
			want, wok := ref[row]
			if ok != wok || got != want {
				t.Fatalf("step %d: Get(%d) = (%v,%v), want (%v,%v)", step, row, got, ok, want, wok)
			}
		case op < 97: // delete
			tab.Delete(row)
			delete(ref, row)
		default: // end of refresh window
			tab.Reset()
			ref = map[int]float64{}
		}
		if step%4096 == 0 {
			check(step)
		}
	}
	check(-1)
}

// TestResetIsCheapAndComplete: a reset must hide every prior entry without
// shrinking capacity, and re-adding after reset must start from zero.
func TestResetIsCheapAndComplete(t *testing.T) {
	var tab Table[int32]
	for i := 0; i < 10_000; i++ {
		tab.Add(i, 1)
	}
	capBefore := len(tab.keys)
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after Reset", tab.Len())
	}
	if _, ok := tab.Get(5); ok {
		t.Fatal("entry visible after Reset")
	}
	if got := tab.Add(5, 3); got != 3 {
		t.Fatalf("Add after Reset = %d, want fresh 3", got)
	}
	if len(tab.keys) != capBefore {
		t.Fatalf("Reset reallocated: cap %d -> %d", capBefore, len(tab.keys))
	}
}

// TestTombstoneReuse: delete/re-add cycles on a full-ish table must not
// grow it unboundedly (tombstones are reused and shed on rehash).
func TestTombstoneReuse(t *testing.T) {
	var tab Table[int32]
	for i := 0; i < 48; i++ {
		tab.Add(i, 1)
	}
	for cycle := 0; cycle < 10_000; cycle++ {
		row := cycle % 48
		tab.Delete(row)
		tab.Add(row, int32(cycle))
	}
	if tab.Len() != 48 {
		t.Fatalf("Len = %d, want 48", tab.Len())
	}
	if len(tab.keys) > 1024 {
		t.Fatalf("table grew to %d slots under churn", len(tab.keys))
	}
}

// TestGenerationWrap forces the generation counter past its wrap point and
// checks entries do not resurrect.
func TestGenerationWrap(t *testing.T) {
	var tab Table[int32]
	tab.Add(7, 9)
	tab.gen = maxGen // simulate 2^31-1 refresh windows
	tab.Reset()
	if _, ok := tab.Get(7); ok {
		t.Fatal("entry survived generation wrap")
	}
	tab.Add(7, 1)
	if v, ok := tab.Get(7); !ok || v != 1 {
		t.Fatalf("post-wrap Add: got (%d,%v)", v, ok)
	}
}

func BenchmarkTableAdd(b *testing.B) {
	var tab Table[float64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(i&1023, 1)
		if i&8191 == 8191 {
			tab.Reset()
		}
	}
}

func BenchmarkMapAdd(b *testing.B) {
	m := map[int]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m[i&1023]++
		if i&8191 == 8191 {
			m = map[int]float64{}
		}
	}
}
