// Package rowcount provides the per-bank row-accumulator table the
// simulation hot paths share: an open-addressed hash table from a DRAM row
// index to a numeric accumulator (activation counts for the memory
// controller, weighted disturbance for the DRAM model), laid out as flat
// parallel arrays and reset in O(1) by bumping a generation counter.
//
// The design mirrors how cycle-accurate simulators lay out their Rowhammer
// counter tables (one flat table per rank*banks+bank instead of a
// map keyed by (bank, row)): per-bank tables are embedded in flat slices
// indexed by the dense bank index, and a refresh window ends by invalidating
// every entry at once — no per-window reallocation, no rehashing, no
// garbage. Tables are not safe for concurrent use; the simulation shards by
// bank, and each bank's table is touched by exactly one goroutine.
package rowcount

import "math/bits"

// Value is the accumulator payload a Table can carry. int32 covers
// activation counts (bounded by per-window activation budgets); float64
// covers weighted disturbance accumulation.
type Value interface {
	~int32 | ~int64 | ~float64
}

// minCapacity is the initial slot count of a table's first allocation.
// Workload streams touch a handful of rows per bank per refresh window;
// hammering campaigns grow the table on demand.
const minCapacity = 64

// maxGen is the largest generation before tags wrap; on wrap the tag array
// is cleared so stale entries from 2^31 windows ago cannot resurrect.
const maxGen = 1<<31 - 1

// Table accumulates values per row with O(1) whole-table reset.
//
// Slot states are encoded in meta: a slot is live when meta == gen<<1|1,
// a tombstone (deleted this generation) when meta == gen<<1, and free
// otherwise — so Reset invalidates every slot by incrementing gen. The
// zero Table is empty and ready to use; it allocates on first Add.
type Table[V Value] struct {
	keys []int32
	meta []uint32
	vals []V
	mask uint32
	live int // entries visible to Get/Range
	used int // live + tombstones: bounds probe length, triggers growth
	gen  uint32
}

// hash spreads a row index over the table's slots.
func hash(row int32) uint32 {
	h := uint32(row) * 2654435769 // Fibonacci hashing
	return h ^ h>>16
}

// Reset empties the table in O(1). Capacity is retained, so a table reused
// across refresh windows settles at its high-water size and stops
// allocating.
func (t *Table[V]) Reset() {
	if t.gen >= maxGen {
		clear(t.meta)
		t.gen = 0
	}
	t.gen++
	t.live = 0
	t.used = 0
}

// Len returns the number of live rows.
func (t *Table[V]) Len() int { return t.live }

// Add accumulates delta into row's entry, creating it at delta if absent,
// and returns the new value.
func (t *Table[V]) Add(row int, delta V) V {
	if t.keys == nil {
		t.init(minCapacity)
	} else if (t.used+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	liveTag := t.gen<<1 | 1
	tombTag := t.gen << 1
	i := hash(int32(row)) & t.mask
	firstTomb := int32(-1)
	for {
		switch m := t.meta[i]; {
		case m == liveTag && t.keys[i] == int32(row):
			t.vals[i] += delta
			return t.vals[i]
		case m == tombTag:
			if firstTomb < 0 {
				firstTomb = int32(i)
			}
		case m != liveTag: // free slot: row is absent
			if firstTomb >= 0 {
				i = uint32(firstTomb) // reuse the tombstone; used unchanged
			} else {
				t.used++
			}
			t.keys[i] = int32(row)
			t.meta[i] = liveTag
			t.vals[i] = delta
			t.live++
			return delta
		}
		i = (i + 1) & t.mask
	}
}

// Get returns row's value and whether it is present.
func (t *Table[V]) Get(row int) (V, bool) {
	if t.live == 0 {
		var zero V
		return zero, false
	}
	liveTag := t.gen<<1 | 1
	tombTag := t.gen << 1
	i := hash(int32(row)) & t.mask
	for {
		switch m := t.meta[i]; {
		case m == liveTag && t.keys[i] == int32(row):
			return t.vals[i], true
		case m != liveTag && m != tombTag: // free slot ends the probe
			var zero V
			return zero, false
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes row's entry if present.
func (t *Table[V]) Delete(row int) {
	if t.live == 0 {
		return
	}
	liveTag := t.gen<<1 | 1
	tombTag := t.gen << 1
	i := hash(int32(row)) & t.mask
	for {
		switch m := t.meta[i]; {
		case m == liveTag && t.keys[i] == int32(row):
			t.meta[i] = tombTag
			t.live--
			return
		case m != liveTag && m != tombTag:
			return
		}
		i = (i + 1) & t.mask
	}
}

// Range calls fn for every live (row, value) pair in slot order until fn
// returns false. Slot order is an implementation detail: callers must only
// perform order-independent work (sums, min/max with total tie-breaks,
// deletions in other tables).
func (t *Table[V]) Range(fn func(row int, v V) bool) {
	if t.live == 0 {
		return
	}
	liveTag := t.gen<<1 | 1
	for i, m := range t.meta {
		if m == liveTag && !fn(int(t.keys[i]), t.vals[i]) {
			return
		}
	}
}

// init allocates the backing arrays at a power-of-two capacity.
func (t *Table[V]) init(capacity int) {
	capacity = 1 << bits.Len(uint(capacity-1))
	t.keys = make([]int32, capacity)
	t.meta = make([]uint32, capacity)
	t.vals = make([]V, capacity)
	t.mask = uint32(capacity - 1)
	if t.gen == 0 {
		t.gen = 1 // zeroed meta must read as free
	}
}

// grow rehashes live entries into a table twice the size, shedding
// tombstones.
func (t *Table[V]) grow() {
	old := *t
	newCap := len(old.keys) * 2
	if old.live*4 <= len(old.keys) {
		newCap = len(old.keys) // tombstone-dominated: rehash in place
	}
	t.init(newCap)
	t.live = 0
	t.used = 0
	liveTag := old.gen<<1 | 1
	newLive := t.gen<<1 | 1
	for i, m := range old.meta {
		if m != liveTag {
			continue
		}
		j := hash(old.keys[i]) & t.mask
		for t.meta[j] == newLive {
			j = (j + 1) & t.mask
		}
		t.keys[j] = old.keys[i]
		t.meta[j] = newLive
		t.vals[j] = old.vals[i]
		t.live++
		t.used++
	}
}
