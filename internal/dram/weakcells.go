package dram

import (
	"repro/internal/addr"
	"repro/internal/geometry"
)

// weakCell is one Rowhammer-susceptible cell of a half-row: the bit index
// it occupies and the value it decays to when disturbed past the threshold
// (true-cells fail toward 0, anti-cells toward 1).
type weakCell struct {
	bit     int
	failsTo bool
}

// splitmix64 is a small, high-quality deterministic mixer used to derive
// per-cell randomness from structural coordinates without any global RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// weakCells deterministically derives the weak-cell population of one
// half-row. A half-row is vulnerable with probability
// prof.VulnerableRowFraction; vulnerable half-rows contain exactly
// prof.WeakCellsPerRow weak cells at pseudo-random bit positions. The
// derivation depends only on the DIMM seed and the cell's physical
// coordinates, so repeated hammering of the same row flips the same cells —
// matching the repeatability of real Rowhammer errors.
func weakCells(prof Profile, socket, dimm int, bank geometry.BankID, side addr.Side, virtRow, bitsPerHalfRow int) []weakCell {
	h := splitmix64(uint64(prof.Seed))
	h = splitmix64(h ^ uint64(socket)<<48 ^ uint64(dimm)<<40 ^ uint64(bank.Rank)<<32 ^ uint64(bank.Bank)<<24 ^ uint64(side)<<16)
	h = splitmix64(h ^ uint64(virtRow))

	// Vulnerability draw.
	const scale = 1 << 53
	if float64(h>>11)/scale >= prof.VulnerableRowFraction {
		return nil
	}
	cells := make([]weakCell, 0, prof.WeakCellsPerRow)
	seen := make(map[int]bool, prof.WeakCellsPerRow)
	for i := 0; len(cells) < prof.WeakCellsPerRow; i++ {
		h = splitmix64(h)
		bit := int(h % uint64(bitsPerHalfRow))
		if seen[bit] {
			continue
		}
		seen[bit] = true
		cells = append(cells, weakCell{bit: bit, failsTo: h&(1<<60) != 0})
	}
	return cells
}

// WeakCellCount reports how many weak cells a half-row holds; exported for
// tests and analysis tooling.
func (m *Module) WeakCellCount(bank geometry.BankID, side addr.Side, mediaRow int) int {
	bs := m.bank(bank)
	virt, _ := m.internalTarget(bs, mediaRow, side)
	return len(weakCells(m.prof, m.socket, m.dimm, bank, side, virt, m.g.RowBytes/2*8))
}
