package dram

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
	"repro/internal/rowcount"
)

// Flip records one committed Rowhammer bit flip.
type Flip struct {
	// Bank locates the flip.
	Bank geometry.BankID
	// MediaRow is the externally-addressed row whose data was corrupted.
	MediaRow int
	// Side is the internal half-row the weak cell lives in.
	Side addr.Side
	// Bit is the bit index within the half-row (0 .. RowBytes/2*8).
	Bit int
	// AggressorMediaRow is the media row whose hammering caused the flip.
	AggressorMediaRow int
	// Window is the refresh-window index in which the flip committed.
	Window int
}

// ByteOffset returns the flipped bit's byte offset within the 8 KiB
// external row (A-side cells occupy the first half, B-side the second).
func (f Flip) ByteOffset(g geometry.Geometry) int {
	half := 0
	if f.Side == addr.SideB {
		half = g.RowBytes / 2
	}
	return half + f.Bit/8
}

func (f Flip) String() string {
	return fmt.Sprintf("flip{%s row %d side %s bit %d by row %d win %d}",
		f.Bank, f.MediaRow, f.Side, f.Bit, f.AggressorMediaRow, f.Window)
}

// spare is a per-bank manufacturing spare row in use by a repair.
type spare struct {
	virt   int // virtual internal index (>= RowsPerBank)
	source int // the defective internal row it replaces
	anchor int // physical position it is adjacent to
}

// bankState is the per-bank disturbance bookkeeping. Disturbance
// accumulators are flat generation-reset row tables (rowcount.Table), not
// maps: a refresh window ends with an O(1) invalidation per table instead
// of reallocating, and the per-activation accrue path runs on open
// addressing instead of map buckets.
type bankState struct {
	id  geometry.BankID
	idx int // dense index rank*BanksPerRank+bank (mitigation scope)

	// disturb[side] accumulates weighted aggressor activations per
	// victim internal (virtual) row index within the current window.
	disturb [2]rowcount.Table[float64]
	// acts is the bank's activation count this window (budget check).
	acts int
	// totalActs tallies the bank's lifetime activations, defenses or not.
	// Kept per bank — like every other hot-path accumulator — so parallel
	// bank-disjoint traffic never shares a counter word.
	totalActs int64

	// Repairs affecting this bank. hasSpares gates every spare lookup on
	// the hot path: most banks have no repairs, and the per-neighbour
	// sparesAtAnchor probe is pure overhead for them.
	hasSpares      bool
	spareBySource  map[int]*spare
	sparesAtAnchor map[int][]*spare
}

func newBankState(id geometry.BankID, idx int) *bankState {
	return &bankState{id: id, idx: idx}
}

// Module models one DIMM: data storage plus the disturbance state of its
// ranks' banks.
type Module struct {
	g       geometry.Geometry
	prof    Profile
	im      *addr.InternalMapper
	repairs *addr.RepairTable
	socket  int
	dimm    int

	// actMu serializes the activation plane: bank disturbance state, the
	// flip log, the refresh window, and the defense chain (PARA draws from
	// one per-module coin stream). Concurrent hammering threads — the
	// inter-VM attack model — contend here the way real DDR commands
	// contend on the module's command bus.
	actMu  sync.Mutex
	banks  []*bankState // indexed rank*BanksPerRank+bank, nil until touched
	rowsMu sync.Mutex   // guards rows: EPT walks from parallel reps share it
	rows   *rowStore    // slab arena of materialized row data
	window int
	flips  []Flip

	// defenses observe every activation burst. The profile's in-DRAM TRR
	// sampler (when TRRTableSize > 0) is the first member; AttachDefense
	// appends controller- or hypervisor-provided mitigations. refreshFn is
	// the pre-bound victim-refresh sink handed to every OnActivate call,
	// so the hot path never allocates a closure.
	defenses  mitigation.Chain
	refreshFn mitigation.RefreshFn
}

// NewModule builds a DIMM with the given profile. repairs may be nil.
func NewModule(g geometry.Geometry, prof Profile, socket, dimm int, repairs *addr.RepairTable) (*Module, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	m := &Module{
		g:       g,
		prof:    prof,
		im:      addr.NewInternalMapper(g, prof.Transforms),
		repairs: repairs,
		socket:  socket,
		dimm:    dimm,
		banks:   make([]*bankState, g.BanksPerDIMM()),
		rows:    newRowStore(g),
	}
	m.refreshFn = m.refreshNeighbourhood
	if prof.TRRTableSize > 0 {
		m.defenses = append(m.defenses, mitigation.NewTRR(g.BanksPerDIMM(), prof.TRRTableSize, prof.TRRInterval))
	}
	return m, nil
}

// AttachDefense adds a mitigation to the module's observation chain. It
// fires on every activation burst alongside any profile-provided TRR
// sampler; injected refreshes clear accumulated disturbance around the
// target row. Attach before traffic starts — the chain is not locked.
func (m *Module) AttachDefense(d mitigation.Mitigation) {
	if d != nil {
		m.defenses = append(m.defenses, d)
	}
}

// DefenseOverhead sums the overhead of every attached defense.
func (m *Module) DefenseOverhead() mitigation.Overhead {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	return m.defenses.Overhead()
}

// DefenseHealth reports the first degraded defense, nil when all intact.
func (m *Module) DefenseHealth() error {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	return m.defenses.Health()
}

// TotalActivations returns the count of activations observed over the
// module's lifetime, independent of any defense being attached; the
// mitigation matrix normalizes refresh energy against it.
func (m *Module) TotalActivations() int64 {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	var n int64
	for _, bs := range m.banks {
		if bs != nil {
			n += bs.totalActs
		}
	}
	return n
}

// Profile returns the module's disturbance profile.
func (m *Module) Profile() Profile { return m.prof }

// InternalMapper exposes the module's internal row address mapping; Siloz's
// translation drivers use it when classifying isolation-violating rows (§6).
func (m *Module) InternalMapper() *addr.InternalMapper { return m.im }

// Window returns the current refresh-window index.
func (m *Module) Window() int { return m.window }

// owns reports whether the bank belongs to this module.
func (m *Module) owns(b geometry.BankID) bool {
	return b.Socket == m.socket && b.DIMM == m.dimm && b.Valid(m.g)
}

func (m *Module) bank(b geometry.BankID) *bankState {
	idx := b.Rank*m.g.BanksPerRank + b.Bank
	bs := m.banks[idx]
	if bs == nil {
		bs = newBankState(b, idx)
		m.loadRepairs(bs)
		m.banks[idx] = bs
	}
	return bs
}

// loadRepairs indexes the module's repairs for one bank.
func (m *Module) loadRepairs(bs *bankState) {
	if m.repairs == nil {
		return
	}
	bs.spareBySource = make(map[int]*spare)
	bs.sparesAtAnchor = make(map[int][]*spare)
	var sources []int
	for _, r := range m.repairs.Repairs() {
		if r.Bank == bs.id {
			sources = append(sources, r.From)
		}
	}
	sort.Ints(sources)
	bs.hasSpares = len(sources) > 0
	for i, src := range sources {
		sp, _ := m.repairs.Lookup(bs.id, src)
		s := &spare{virt: m.g.RowsPerBank + i, source: src, anchor: sp.Anchor}
		bs.spareBySource[src] = s
		bs.sparesAtAnchor[sp.Anchor] = append(bs.sparesAtAnchor[sp.Anchor], s)
	}
}

// internalTarget resolves a media row to the internal (virtual) row index
// that its activation actually drives on one side, following any repair.
func (m *Module) internalTarget(bs *bankState, mediaRow int, side addr.Side) (virt int, anchor int) {
	internal := m.im.InternalRow(bs.id, mediaRow, side)
	if bs.hasSpares {
		if sp, ok := bs.spareBySource[internal]; ok {
			return sp.virt, sp.anchor
		}
	}
	return internal, internal
}

// mediaRowOf maps an internal (virtual) victim index back to the media row
// whose data it stores on the given side.
func (m *Module) mediaRowOf(bs *bankState, virt int, side addr.Side) int {
	if virt >= m.g.RowsPerBank {
		for _, sp := range bs.spareBySource {
			if sp.virt == virt {
				return m.im.MediaRow(bs.id, sp.source, side)
			}
		}
		panic("dram: unknown spare virtual index")
	}
	return m.im.MediaRow(bs.id, virt, side)
}

// anchorOf returns the physical position of an internal (virtual) row.
func (m *Module) anchorOf(bs *bankState, virt int) int {
	if virt >= m.g.RowsPerBank {
		for _, sp := range bs.spareBySource {
			if sp.virt == virt {
				return sp.anchor
			}
		}
		panic("dram: unknown spare virtual index")
	}
	return virt
}

// ActivateRow issues count activations of a media row, each holding the row
// open for openNs nanoseconds (RowPress exposure). Disturbance accrues to
// neighbouring rows within the aggressor's subarray on both internal sides.
func (m *Module) ActivateRow(b geometry.BankID, mediaRow, count int, openNs int64) error {
	if !m.owns(b) {
		return fmt.Errorf("dram: bank %v not on module s%d.d%d", b, m.socket, m.dimm)
	}
	if mediaRow < 0 || mediaRow >= m.g.RowsPerBank {
		return fmt.Errorf("dram: row %d out of range", mediaRow)
	}
	if count <= 0 {
		return fmt.Errorf("dram: activation count must be positive, got %d", count)
	}
	m.actMu.Lock()
	defer m.actMu.Unlock()
	bs := m.bank(b)
	if bs.acts+count > m.prof.MaxActsPerWindow {
		return fmt.Errorf("dram: bank %v over activation budget (%d+%d > %d per window)",
			b, bs.acts, count, m.prof.MaxActsPerWindow)
	}
	bs.acts += count

	// Weighted disturbance per activation, including RowPress dwell.
	eff := float64(count) * (1 + m.prof.RowPressFactor*float64(openNs)/1000.0)

	for _, side := range [...]addr.Side{addr.SideA, addr.SideB} {
		virt, anchor := m.internalTarget(bs, mediaRow, side)
		// Activation refreshes the aggressor row's own charge.
		bs.disturb[side].Delete(virt)
		m.disturbNeighbours(bs, side, virt, anchor, eff, mediaRow)
	}

	m.observe(bs, mediaRow, count, openNs)
	return nil
}

// disturbNeighbours adds disturbance around an aggressor at `anchor` (the
// aggressor itself is the virtual row aggVirt and is skipped as a victim).
func (m *Module) disturbNeighbours(bs *bankState, side addr.Side, aggVirt, anchor int, eff float64, aggMediaRow int) {
	sub := m.g.RowsPerSubarray
	blast := m.prof.BlastRadius
	aggSub := anchor / sub
	for off := -blast; off <= blast; off++ {
		pos := anchor + off
		if pos < 0 || pos >= m.g.RowsPerBank || pos/sub != aggSub {
			continue // outside bank or electrically isolated (§2.5)
		}
		d := off
		if d < 0 {
			d = -d
		}
		if d == 0 {
			d = 1 // a spare sits adjacent to its anchor position
		}
		w := m.prof.DistanceWeights[d-1]
		if pos != anchor || aggVirt >= m.g.RowsPerBank {
			// Normal row victim at pos (skip the aggressor itself,
			// unless the aggressor is a spare overlaying pos).
			if pos != aggVirt {
				m.accrue(bs, side, pos, w*eff, aggMediaRow)
			}
		}
		// Spare victims anchored here.
		if bs.hasSpares {
			for _, sp := range bs.sparesAtAnchor[pos] {
				if sp.virt != aggVirt {
					m.accrue(bs, side, sp.virt, w*eff, aggMediaRow)
				}
			}
		}
	}
}

// accrue adds disturbance to a victim and commits flips on threshold.
func (m *Module) accrue(bs *bankState, side addr.Side, virt int, amount float64, aggMediaRow int) {
	d := bs.disturb[side].Add(virt, amount)
	if d < m.prof.HammerThreshold {
		return
	}
	// Threshold exceeded: the victim's weak cells discharge. Reset the
	// accumulation; committing is idempotent for already-failed cells.
	bs.disturb[side].Delete(virt)
	m.commitFlips(bs, side, virt, aggMediaRow)
}

// commitFlips sets each weak cell of a victim half-row to its fail value.
func (m *Module) commitFlips(bs *bankState, side addr.Side, virt int, aggMediaRow int) {
	cells := weakCells(m.prof, m.socket, m.dimm, bs.id, side, virt, m.g.RowBytes/2*8)
	if len(cells) == 0 {
		return
	}
	mediaRow := m.mediaRowOf(bs, virt, side)
	m.rowsMu.Lock()
	defer m.rowsMu.Unlock()
	row := m.rowLocked(bs.id, mediaRow)
	halfBase := 0
	if side == addr.SideB {
		halfBase = m.g.RowBytes / 2
	}
	for _, c := range cells {
		byteOff := halfBase + c.bit/8
		mask := byte(1) << (c.bit % 8)
		cur := row[byteOff]&mask != 0
		if cur == c.failsTo {
			continue // already at fail value; nothing observable
		}
		if c.failsTo {
			row[byteOff] |= mask
		} else {
			row[byteOff] &^= mask
		}
		m.flips = append(m.flips, Flip{
			Bank: bs.id, MediaRow: mediaRow, Side: side, Bit: c.bit,
			AggressorMediaRow: aggMediaRow, Window: m.window,
		})
	}
}

// observe tallies an activation burst and feeds it to the defense chain.
// The tally advances even with an empty chain (a TRRTableSize of 0 used to
// short-circuit this path entirely, silently starving attached defenses
// and the activation ledger on TRR-less profiles).
func (m *Module) observe(bs *bankState, mediaRow, count int, openNs int64) {
	bs.totalActs += int64(count)
	if len(m.defenses) == 0 {
		return
	}
	m.defenses.OnActivate(mitigation.Activation{
		Bank: bs.idx, Row: mediaRow, Count: count, OpenNs: openNs,
	}, m.refreshFn)
}

// refreshNeighbourhood restores the charge of every row in the blast
// radius of mediaRow in the bank at flat index bankIdx — the victim-refresh
// sink for defense-injected directives. Clearing both internal sides'
// neighbourhoods (including spares overlaying them) matches what a
// row-granularity refresh does in hardware.
func (m *Module) refreshNeighbourhood(bankIdx, mediaRow int) {
	bs := m.banks[bankIdx]
	if bs == nil || mediaRow < 0 || mediaRow >= m.g.RowsPerBank {
		return
	}
	blast := m.prof.BlastRadius
	sub := m.g.RowsPerSubarray
	for _, side := range [...]addr.Side{addr.SideA, addr.SideB} {
		_, anchor := m.internalTarget(bs, mediaRow, side)
		aggSub := anchor / sub
		for off := -blast; off <= blast; off++ {
			pos := anchor + off
			if pos < 0 || pos >= m.g.RowsPerBank || pos/sub != aggSub {
				continue
			}
			bs.disturb[side].Delete(pos)
			if bs.hasSpares {
				for _, sp := range bs.sparesAtAnchor[pos] {
					bs.disturb[side].Delete(sp.virt)
				}
			}
		}
	}
}

// Refresh ends the current 64 ms refresh window: every row's charge is
// restored, activation counters reset, and defense per-window state
// (sampler tables, refresh budgets) cleared. Flips that already committed
// persist in storage.
func (m *Module) Refresh() {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	for _, bs := range m.banks {
		if bs == nil {
			continue
		}
		bs.disturb[0].Reset()
		bs.disturb[1].Reset()
		bs.acts = 0
	}
	m.defenses.OnWindowEnd()
	m.window++
}

// Flips returns all flips committed so far.
func (m *Module) Flips() []Flip {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	out := make([]Flip, len(m.flips))
	copy(out, m.flips)
	return out
}

// ResetFlips clears the flip log (storage corruption remains).
func (m *Module) ResetFlips() {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	m.flips = nil
}

// rowLocked returns the backing storage of a media row, allocating zeroed
// bytes on first touch. Caller holds rowsMu.
func (m *Module) rowLocked(b geometry.BankID, mediaRow int) []byte {
	return m.rows.rowAlloc(m.rows.bankIndex(b.Rank, b.Bank), mediaRow)
}

// WriteRow stores data into a row starting at column col. The copy itself
// runs under the row lock, so a concurrent reader of the same row (a live
// migration round copying a page the guest is still writing) observes
// whole cache lines, never torn ones.
func (m *Module) WriteRow(b geometry.BankID, mediaRow, col int, data []byte) error {
	if !m.owns(b) || mediaRow < 0 || mediaRow >= m.g.RowsPerBank {
		return fmt.Errorf("dram: write target %v row %d invalid", b, mediaRow)
	}
	if col < 0 || col+len(data) > m.g.RowBytes {
		return fmt.Errorf("dram: write [%d,%d) outside row", col, col+len(data))
	}
	m.rowsMu.Lock()
	copy(m.rowLocked(b, mediaRow)[col:], data)
	m.rowsMu.Unlock()
	return nil
}

// ReadRow copies a row's bytes starting at column col into buf. Reading an
// untouched row yields zeros without materializing backing storage.
func (m *Module) ReadRow(b geometry.BankID, mediaRow, col int, buf []byte) error {
	if !m.owns(b) || mediaRow < 0 || mediaRow >= m.g.RowsPerBank {
		return fmt.Errorf("dram: read target %v row %d invalid", b, mediaRow)
	}
	if col < 0 || col+len(buf) > m.g.RowBytes {
		return fmt.Errorf("dram: read [%d,%d) outside row", col, col+len(buf))
	}
	m.rowsMu.Lock()
	if r := m.rows.row(m.rows.bankIndex(b.Rank, b.Bank), mediaRow); r != nil {
		copy(buf, r[col:])
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	m.rowsMu.Unlock()
	return nil
}

// ScrubRow zeroes a row segment without materializing untouched storage: a
// row that was never written already reads as zeros, and a fully-scrubbed
// row's backing is released. It is the hypervisor's page-sanitization
// primitive — memory returned to a free pool must not leak the previous
// tenant's bytes.
func (m *Module) ScrubRow(b geometry.BankID, mediaRow, col, n int) error {
	if !m.owns(b) || mediaRow < 0 || mediaRow >= m.g.RowsPerBank {
		return fmt.Errorf("dram: scrub target %v row %d invalid", b, mediaRow)
	}
	if col < 0 || n < 0 || col+n > m.g.RowBytes {
		return fmt.Errorf("dram: scrub [%d,%d) outside row", col, col+n)
	}
	m.rowsMu.Lock()
	bankIdx := m.rows.bankIndex(b.Rank, b.Bank)
	if r := m.rows.row(bankIdx, mediaRow); r != nil {
		if col == 0 && n == m.g.RowBytes {
			m.rows.release(bankIdx, mediaRow)
		} else {
			for i := col; i < col+n; i++ {
				r[i] = 0
			}
		}
	}
	m.rowsMu.Unlock()
	return nil
}
