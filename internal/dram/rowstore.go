package dram

import "repro/internal/geometry"

// rowStore backs media-row data with a slab arena of fixed-size row slots
// instead of a per-row map allocation. The DRAM model materializes a row's
// storage on first write and drops it again on a full-row scrub, so under a
// churning fleet (VM create → write → scrub → destroy, thousands of times)
// the old map implementation allocated and garbage-collected an 8 KiB slice
// per row touched. The arena recycles released slots through a free list:
// steady-state churn performs zero allocations, and row data stays packed in
// large slabs instead of scattered heap objects.
//
// Indexing is flat: a (rank, bank) pair selects a lazily-allocated per-bank
// table of int32 slot references (slot+1; 0 = row absent), so the hot lookup
// is two array indexes — no hashing, no map buckets. Only banks that were
// ever written pay for their table.
//
// rowStore is not safe for concurrent use; Module guards it with rowsMu
// exactly as it guarded the map.
type rowStore struct {
	rowBytes     int
	banksPerRank int
	slabRows     int       // rows per slab
	banks        [][]int32 // (rank*banksPerRank+bank) -> per-row slot+1, nil until touched
	rowsPer      int       // rows per bank
	slabs        [][]byte  // slab arena; slot s lives in slabs[s/slabRows]
	free         []int32   // released slots awaiting reuse (LIFO)
	next         int32     // next never-used slot
	live         int       // rows currently materialized
}

// rowStoreSlabBytes sizes slabs at ~1 MiB so churn touches few large
// allocations; a geometry with rows larger than that gets one row per slab.
const rowStoreSlabBytes = 1 << 20

func newRowStore(g geometry.Geometry) *rowStore {
	slabRows := rowStoreSlabBytes / g.RowBytes
	if slabRows < 1 {
		slabRows = 1
	}
	return &rowStore{
		rowBytes:     g.RowBytes,
		banksPerRank: g.BanksPerRank,
		slabRows:     slabRows,
		banks:        make([][]int32, g.BanksPerDIMM()),
		rowsPer:      g.RowsPerBank,
	}
}

// bankIndex flattens a (rank, bank) pair; callers pass validated IDs.
func (s *rowStore) bankIndex(rank, bank int) int {
	return rank*s.banksPerRank + bank
}

// slot returns the backing bytes of an allocated slot.
func (s *rowStore) slot(ref int32) []byte {
	off := int(ref) % s.slabRows * s.rowBytes
	return s.slabs[int(ref)/s.slabRows][off : off+s.rowBytes]
}

// row returns the row's bytes, or nil if the row was never materialized.
func (s *rowStore) row(bankIdx, mediaRow int) []byte {
	tbl := s.banks[bankIdx]
	if tbl == nil {
		return nil
	}
	ref := tbl[mediaRow]
	if ref == 0 {
		return nil
	}
	return s.slot(ref - 1)
}

// rowAlloc returns the row's bytes, materializing a zeroed slot on first
// touch — from the free list when churn released one, from a fresh slab
// otherwise.
func (s *rowStore) rowAlloc(bankIdx, mediaRow int) []byte {
	tbl := s.banks[bankIdx]
	if tbl == nil {
		tbl = make([]int32, s.rowsPer)
		s.banks[bankIdx] = tbl
	}
	if ref := tbl[mediaRow]; ref != 0 {
		return s.slot(ref - 1)
	}
	var ref int32
	if n := len(s.free); n > 0 {
		ref = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		ref = s.next
		s.next++
		if int(ref)/s.slabRows >= len(s.slabs) {
			s.slabs = append(s.slabs, make([]byte, s.slabRows*s.rowBytes))
		}
	}
	tbl[mediaRow] = ref + 1
	s.live++
	return s.slot(ref)
}

// release drops a row's backing, zeroing the slot and queueing it for reuse.
// Releasing an absent row is a no-op (the row already reads as zeros).
func (s *rowStore) release(bankIdx, mediaRow int) {
	tbl := s.banks[bankIdx]
	if tbl == nil {
		return
	}
	ref := tbl[mediaRow]
	if ref == 0 {
		return
	}
	tbl[mediaRow] = 0
	b := s.slot(ref - 1)
	for i := range b {
		b[i] = 0
	}
	s.free = append(s.free, ref-1)
	s.live--
}

// Len reports how many rows are currently materialized.
func (s *rowStore) len() int { return s.live }
