package dram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	g := tinyGeometry()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMemory(g, mapper, []Profile{testProfile()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	mem := testMemory(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4096)
		pa := uint64(rng.Int63n(mem.Geometry().TotalBytes() - int64(n)))
		data := make([]byte, n)
		rng.Read(data)
		if err := mem.WritePhys(pa, data); err != nil {
			t.Fatalf("WritePhys(%#x, %d): %v", pa, n, err)
		}
		got := make([]byte, n)
		if err := mem.ReadPhys(pa, got); err != nil {
			t.Fatalf("ReadPhys: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch at pa=%#x len=%d", pa, n)
		}
	}
}

func TestMemoryReadUnwrittenIsZero(t *testing.T) {
	mem := testMemory(t)
	buf := make([]byte, 256)
	if err := mem.ReadPhys(12345, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory not zeroed")
		}
	}
}

func TestMemoryWriteSpanningRows(t *testing.T) {
	// A write spanning multiple cache lines lands across banks; reading
	// each line back individually must reproduce it.
	mem := testMemory(t)
	data := make([]byte, 8*geometry.CacheLineSize)
	for i := range data {
		data[i] = byte(i)
	}
	pa := uint64(32) // deliberately misaligned
	if err := mem.WritePhys(pa, data); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 16 {
		got := make([]byte, 16)
		if err := mem.ReadPhys(pa+uint64(off), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off:off+16]) {
			t.Fatalf("mismatch at offset %d", off)
		}
	}
}

func TestMemoryOutOfRange(t *testing.T) {
	mem := testMemory(t)
	end := uint64(mem.Geometry().TotalBytes())
	if err := mem.WritePhys(end-4, make([]byte, 8)); err == nil {
		t.Error("write crossing end of memory accepted")
	}
	if err := mem.ReadPhys(end, make([]byte, 1)); err == nil {
		t.Error("read past end accepted")
	}
	if err := mem.ActivatePhys(end, 1, 0); err == nil {
		t.Error("activate past end accepted")
	}
}

func TestActivatePhysCausesFlipsVisibleViaReadPhys(t *testing.T) {
	// End-to-end: hammer via a physical address; corruption appears at
	// the victim's physical address.
	mem := testMemory(t)
	g := mem.Geometry()

	// Pick a physical page and find its row, then hammer it.
	aggPA := uint64(24 * geometry.MiB)
	ma, err := mem.Mapper().Decode(aggPA)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the neighbourhood rows with 0xFF via their physical addresses.
	mod := mem.Module(ma.Bank.Socket, ma.Bank.DIMM)
	pattern := bytes.Repeat([]byte{0xFF}, g.RowBytes)
	for d := -2; d <= 2; d++ {
		if err := mod.WriteRow(ma.Bank, ma.Row+d, 0, pattern); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.ActivatePhys(aggPA, 5000, 0); err != nil {
		t.Fatal(err)
	}
	flips := mem.Flips()
	if len(flips) == 0 {
		t.Fatal("no flips from physical hammering")
	}
	for _, f := range flips {
		pa, err := mem.FlipPhys(f)
		if err != nil {
			t.Fatalf("FlipPhys(%v): %v", f, err)
		}
		var b [1]byte
		if err := mem.ReadPhys(pa, b[:]); err != nil {
			t.Fatal(err)
		}
		mask := byte(1) << (f.Bit % 8)
		if b[0]&mask != 0 {
			t.Errorf("flip %v not visible at pa %#x (byte=%#x)", f, pa, b[0])
		}
	}
}

func TestMemoryPerDIMMProfiles(t *testing.T) {
	g := geometry.Default()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMemory(g, mapper, EvaluationProfiles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.Sockets; s++ {
		for d := 0; d < g.DIMMsPerSocket; d++ {
			want := EvaluationProfiles()[d%6].Name
			if got := mem.Module(s, d).Profile().Name; got != want {
				t.Errorf("module (%d,%d) has profile %s, want %s", s, d, got, want)
			}
		}
	}
}

func TestMemoryRefreshAndFlipAggregation(t *testing.T) {
	mem := testMemory(t)
	if err := mem.ActivatePhys(0, 2000, 0); err != nil {
		t.Fatal(err)
	}
	if len(mem.Flips()) == 0 {
		t.Fatal("expected flips")
	}
	mem.ResetFlips()
	if len(mem.Flips()) != 0 {
		t.Fatal("ResetFlips did not clear")
	}
	mem.Refresh()
	if mem.Window() != 1 {
		t.Errorf("Window = %d after one refresh", mem.Window())
	}
}

func TestNewMemoryRejectsEmptyProfiles(t *testing.T) {
	g := tinyGeometry()
	mapper, _ := addr.NewSkylakeMapper(g)
	if _, err := NewMemory(g, mapper, nil, nil); err == nil {
		t.Error("empty profile list accepted")
	}
}

// TestMemoryMatchesShadowBufferProperty drives random writes and reads
// against a shadow byte map.
func TestMemoryMatchesShadowBufferProperty(t *testing.T) {
	mem := testMemory(t)
	total := uint64(mem.Geometry().TotalBytes())
	shadow := make(map[uint64]byte)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 400; step++ {
		n := 1 + rng.Intn(512)
		pa := uint64(rng.Int63n(int64(total) - int64(n)))
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := mem.WritePhys(pa, data); err != nil {
				t.Fatal(err)
			}
			for i, b := range data {
				shadow[pa+uint64(i)] = b
			}
		} else {
			buf := make([]byte, n)
			if err := mem.ReadPhys(pa, buf); err != nil {
				t.Fatal(err)
			}
			for i, b := range buf {
				if want := shadow[pa+uint64(i)]; b != want {
					t.Fatalf("step %d: byte at %#x = %#x, want %#x", step, pa+uint64(i), b, want)
				}
			}
		}
	}
}

func TestScrubPhysZeroesWithoutMaterializing(t *testing.T) {
	mem := testMemory(t)
	secret := []byte("tenant secret bytes")
	if err := mem.WritePhys(0x10000, secret); err != nil {
		t.Fatal(err)
	}
	if err := mem.ScrubPhys(0x10000, len(secret)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(secret))
	if err := mem.ReadPhys(0x10000, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x after scrub, want 0", i, b)
		}
	}
	// Scrubbing (and then reading) a never-written range is a no-op that
	// must not allocate row storage or fail.
	if err := mem.ScrubPhys(0x200000, 4096); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadPhys(0x200000, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched byte %d = %#x, want 0", i, b)
		}
	}
}
