package dram

import (
	"testing"

	"repro/internal/addr"
)

// TestInterSubarrayRepairViolatesIsolation shows the §6 threat: a row
// repaired to a spare in a different subarray can be flipped by hammering
// near the spare's physical location — outside the row's nominal subarray.
func TestInterSubarrayRepairViolatesIsolation(t *testing.T) {
	g := tinyGeometry()
	b := bank0()
	rt := addr.NewRepairTable(g)
	// Media/internal row 100 (subarray 0) repaired to a spare anchored at
	// row 700 (subarray 1).
	if err := rt.Add(addr.Repair{Bank: b, From: 100, Spare: addr.SpareRow{Anchor: 700}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewModule(g, testProfile(), 0, 0, rt)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer row 699 (subarray 1). The spare serving row 100 sits next
	// to row 700, within blast radius of 699.
	if err := m.ActivateRow(b, 699, 10_000, 0); err != nil {
		t.Fatal(err)
	}
	rows := flipRows(m.Flips())
	if !rows[100] {
		t.Errorf("repaired row 100 not flipped by hammering near its spare; flips: %v", rows)
	}
	// Row 100's nominal neighbours are untouched: the defective wordline
	// is out of service and no disturbance reaches subarray 0.
	if rows[99] || rows[101] {
		t.Errorf("nominal neighbours of the repaired row flipped: %v", rows)
	}
}

// TestRepairedRowActivationsDisturbSpareNeighbourhood shows the converse:
// hammering the repaired row disturbs rows near the spare, not near the
// defective row's nominal position.
func TestRepairedRowActivationsDisturbSpareNeighbourhood(t *testing.T) {
	g := tinyGeometry()
	b := bank0()
	rt := addr.NewRepairTable(g)
	if err := rt.Add(addr.Repair{Bank: b, From: 100, Spare: addr.SpareRow{Anchor: 700}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewModule(g, testProfile(), 0, 0, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateRow(b, 100, 10_000, 0); err != nil {
		t.Fatal(err)
	}
	rows := flipRows(m.Flips())
	if rows[99] || rows[101] {
		t.Errorf("nominal neighbours of a repaired row flipped: %v", rows)
	}
	if !rows[700] {
		t.Errorf("spare's neighbourhood (row 700) unaffected by hammering the repaired row: %v", rows)
	}
}

// TestIntraSubarrayRepairPreservesIsolation: with the spare in the same
// subarray, all disturbance stays inside the subarray.
func TestIntraSubarrayRepairPreservesIsolation(t *testing.T) {
	g := tinyGeometry()
	b := bank0()
	rt := addr.NewRepairTable(g)
	if err := rt.Add(addr.Repair{Bank: b, From: 100, Spare: addr.SpareRow{Anchor: 400}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewModule(g, testProfile(), 0, 0, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateRow(b, 100, 50_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Flips() {
		if f.MediaRow/g.RowsPerSubarray != 0 {
			t.Errorf("intra-subarray repair leaked disturbance outside subarray 0: %v", f)
		}
	}
}

// TestSpareVictimDataCorruption: flips into a spare corrupt the repaired
// row's data as seen through normal reads.
func TestSpareVictimDataCorruption(t *testing.T) {
	g := tinyGeometry()
	b := bank0()
	rt := addr.NewRepairTable(g)
	if err := rt.Add(addr.Repair{Bank: b, From: 100, Spare: addr.SpareRow{Anchor: 700}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewModule(g, testProfile(), 0, 0, rt)
	if err != nil {
		t.Fatal(err)
	}
	fillRows(t, m, b, []int{100}, 0xFF)
	if err := m.ActivateRow(b, 699, 10_000, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, g.RowBytes)
	if err := m.ReadRow(b, 100, 0, buf); err != nil {
		t.Fatal(err)
	}
	clean := true
	for _, by := range buf {
		if by != 0xFF {
			clean = false
			break
		}
	}
	if clean {
		t.Error("repaired row's data not corrupted despite spare being hammered")
	}
}
