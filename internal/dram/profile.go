// Package dram models server DDR4 modules at the level Rowhammer defenses
// reason about: banks of subarrays of rows with per-row activation counts,
// disturbance accumulation confined to subarrays (§2.5), DIMM-internal row
// address transformations (§6), in-DRAM target row refresh (TRR), RowPress,
// and sparse data storage so bit flips are observable as data corruption.
//
// Time is modelled in refresh windows: callers issue (possibly batched)
// activations against rows and end a 64 ms refresh window explicitly with
// Refresh, which restores all row charges. Bit flips committed inside a
// window persist in storage until overwritten, as on real hardware.
package dram

import (
	"fmt"

	"repro/internal/addr"
)

// Profile captures the disturbance characteristics of one DIMM model. The
// six profiles A-F correspond to the six DIMMs of the paper's Table 3
// security experiment; they differ in threshold, weak-cell population, TRR
// configuration, and internal addressing, reflecting cross-vendor variation.
type Profile struct {
	// Name labels the DIMM (Table 3 uses A-F).
	Name string
	// HammerThreshold is the weighted activation count within one refresh
	// window beyond which a victim row's weak cells flip. Modern server
	// DIMM thresholds are in the tens of thousands and falling (§2.5).
	HammerThreshold float64
	// BlastRadius is how many rows away from an aggressor disturbance
	// reaches; modern DIMMs require guarding up to 2 rows away on each
	// side (Half-Double), i.e. 4 guard rows per protected row (§6).
	BlastRadius int
	// DistanceWeights[d-1] scales the disturbance a victim at distance d
	// receives per aggressor activation.
	DistanceWeights []float64
	// VulnerableRowFraction is the probability that a given half-row
	// contains any weak cells at all.
	VulnerableRowFraction float64
	// WeakCellsPerRow is the number of weak cells in a vulnerable
	// half-row.
	WeakCellsPerRow int
	// RowPressFactor is the extra per-activation disturbance weight per
	// microsecond the aggressor row is held open (RowPress, §2.5).
	RowPressFactor float64
	// TRRTableSize is the number of aggressor rows the in-DRAM TRR
	// sampler can track per bank; 0 disables TRR.
	TRRTableSize int
	// TRRInterval is the number of bank activations between TRR refresh
	// events; at each event the sampled aggressors' neighbours are
	// refreshed and the table cleared.
	TRRInterval int
	// MaxActsPerWindow is the activation budget of one bank within one
	// 64 ms refresh window (~1.36M at DDR4-2933 timings). Activations
	// beyond it in a window are rejected.
	MaxActsPerWindow int
	// Transforms selects the module's internal row address
	// transformations (§6).
	Transforms addr.TransformConfig
	// Seed feeds the deterministic weak-cell derivation and TRR sampler.
	Seed int64
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.HammerThreshold <= 0:
		return fmt.Errorf("dram: HammerThreshold must be positive, got %v", p.HammerThreshold)
	case p.BlastRadius < 1:
		return fmt.Errorf("dram: BlastRadius must be >= 1, got %d", p.BlastRadius)
	case len(p.DistanceWeights) != p.BlastRadius:
		return fmt.Errorf("dram: need %d distance weights, got %d", p.BlastRadius, len(p.DistanceWeights))
	case p.VulnerableRowFraction < 0 || p.VulnerableRowFraction > 1:
		return fmt.Errorf("dram: VulnerableRowFraction %v out of [0,1]", p.VulnerableRowFraction)
	case p.WeakCellsPerRow < 0:
		return fmt.Errorf("dram: WeakCellsPerRow must be >= 0, got %d", p.WeakCellsPerRow)
	case p.TRRTableSize < 0:
		return fmt.Errorf("dram: TRRTableSize must be >= 0, got %d", p.TRRTableSize)
	case p.TRRTableSize > 0 && p.TRRInterval <= 0:
		return fmt.Errorf("dram: TRRInterval must be positive when TRR is enabled")
	case p.MaxActsPerWindow <= 0:
		return fmt.Errorf("dram: MaxActsPerWindow must be positive, got %d", p.MaxActsPerWindow)
	}
	return nil
}

// defaultMaxActs approximates a DDR4-2933 bank's activation budget in a
// 64 ms refresh window (tRC ≈ 47 ns).
const defaultMaxActs = 1_360_000

// ProfileA through ProfileF return the six evaluation DIMM profiles of
// Table 3. All are vulnerable to Blacksmith-class many-sided patterns
// despite TRR, with vendor-specific parameters.
func ProfileA() Profile {
	return Profile{
		Name: "A", HammerThreshold: 12_000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.25}, VulnerableRowFraction: 0.65,
		WeakCellsPerRow: 3, RowPressFactor: 0.02, TRRTableSize: 4,
		TRRInterval: 5_000, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.AllTransforms(), Seed: 0xA,
	}
}

// ProfileB is a DIMM with a lower threshold and larger TRR table.
func ProfileB() Profile {
	return Profile{
		Name: "B", HammerThreshold: 9_000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.3}, VulnerableRowFraction: 0.5,
		WeakCellsPerRow: 2, RowPressFactor: 0.03, TRRTableSize: 8,
		TRRInterval: 4_000, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.AllTransforms(), Seed: 0xB,
	}
}

// ProfileC models a vendor without row scrambling.
func ProfileC() Profile {
	return Profile{
		Name: "C", HammerThreshold: 15_000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.2}, VulnerableRowFraction: 0.7,
		WeakCellsPerRow: 4, RowPressFactor: 0.015, TRRTableSize: 4,
		TRRInterval: 6_000, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.TransformConfig{Mirroring: true, Inversion: true}, Seed: 0xC,
	}
}

// ProfileD models a highly-susceptible part (lowest threshold).
func ProfileD() Profile {
	return Profile{
		Name: "D", HammerThreshold: 6_000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.35}, VulnerableRowFraction: 0.8,
		WeakCellsPerRow: 5, RowPressFactor: 0.04, TRRTableSize: 6,
		TRRInterval: 2_500, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.AllTransforms(), Seed: 0xD,
	}
}

// ProfileE models a part with single-row blast radius.
func ProfileE() Profile {
	return Profile{
		Name: "E", HammerThreshold: 18_000, BlastRadius: 1,
		DistanceWeights: []float64{1.0}, VulnerableRowFraction: 0.45,
		WeakCellsPerRow: 2, RowPressFactor: 0.02, TRRTableSize: 4,
		TRRInterval: 8_000, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.AllTransforms(), Seed: 0xE,
	}
}

// ProfileF models a part with no in-DRAM TRR at all.
func ProfileF() Profile {
	return Profile{
		Name: "F", HammerThreshold: 20_000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.25}, VulnerableRowFraction: 0.55,
		WeakCellsPerRow: 3, RowPressFactor: 0.02, TRRTableSize: 0,
		TRRInterval: 0, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.AllTransforms(), Seed: 0xF,
	}
}

// EvaluationProfiles returns the Table 3 DIMM set A-F in order.
func EvaluationProfiles() []Profile {
	return []Profile{ProfileA(), ProfileB(), ProfileC(), ProfileD(), ProfileE(), ProfileF()}
}
