package dram

import (
	"bytes"
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

func tinyGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         1,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    2,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// testProfile is fully deterministic: every half-row is vulnerable, no TRR,
// no internal transforms.
func testProfile() Profile {
	return Profile{
		Name: "test", HammerThreshold: 1000, BlastRadius: 2,
		DistanceWeights: []float64{1.0, 0.25}, VulnerableRowFraction: 1.0,
		WeakCellsPerRow: 2, RowPressFactor: 0.02, TRRTableSize: 0,
		TRRInterval: 0, MaxActsPerWindow: defaultMaxActs,
		Transforms: addr.TransformConfig{}, Seed: 1,
	}
}

func testModule(t *testing.T, prof Profile) *Module {
	t.Helper()
	m, err := NewModule(tinyGeometry(), prof, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func bank0() geometry.BankID { return geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0} }

// fillRows writes a pattern into a set of rows so both fail directions of
// weak cells are observable.
func fillRows(t *testing.T, m *Module, b geometry.BankID, rows []int, pat byte) {
	t.Helper()
	g := tinyGeometry()
	data := bytes.Repeat([]byte{pat}, g.RowBytes)
	for _, r := range rows {
		if err := m.WriteRow(b, r, 0, data); err != nil {
			t.Fatal(err)
		}
	}
}

func flipRows(flips []Flip) map[int]bool {
	rows := make(map[int]bool)
	for _, f := range flips {
		rows[f.MediaRow] = true
	}
	return rows
}

func TestHammeringFlipsNeighboursOnly(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	agg := 1000
	fillRows(t, m, b, []int{agg - 3, agg - 2, agg - 1, agg, agg + 1, agg + 2, agg + 3}, 0xAA)

	if err := m.ActivateRow(b, agg, 2000, 0); err != nil {
		t.Fatal(err)
	}
	flips := m.Flips()
	if len(flips) == 0 {
		t.Fatal("no flips after hammering past threshold")
	}
	for _, f := range flips {
		d := f.MediaRow - agg
		if d < 0 {
			d = -d
		}
		if d == 0 || d > 2 {
			t.Errorf("flip at distance %d from aggressor: %v", d, f)
		}
		if f.AggressorMediaRow != agg {
			t.Errorf("flip attributes wrong aggressor: %v", f)
		}
	}
	// Distance-1 victims on both sides must flip (every row vulnerable).
	rows := flipRows(flips)
	if !rows[agg-1] || !rows[agg+1] {
		t.Errorf("distance-1 victims missing from flips: %v", rows)
	}
}

func TestNoFlipsBelowThreshold(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, 100, 999, 0); err != nil {
		t.Fatal(err)
	}
	if flips := m.Flips(); len(flips) != 0 {
		t.Fatalf("flips below threshold: %v", flips)
	}
	// One more activation crosses it for distance-1 victims.
	if err := m.ActivateRow(b, 100, 1, 0); err != nil {
		t.Fatal(err)
	}
	if flips := m.Flips(); len(flips) == 0 {
		t.Fatal("no flips at exactly the threshold")
	}
}

func TestSubarrayBoundaryIsolation(t *testing.T) {
	// §2.5: rows in different subarrays are electrically isolated.
	m := testModule(t, testProfile())
	b := bank0()
	agg := 511 // last row of subarray 0
	fillRows(t, m, b, []int{509, 510, 511, 512, 513}, 0xFF)
	if err := m.ActivateRow(b, agg, 100_000, 0); err != nil {
		t.Fatal(err)
	}
	rows := flipRows(m.Flips())
	if !rows[510] || !rows[509] {
		t.Errorf("in-subarray victims did not flip: %v", rows)
	}
	if rows[512] || rows[513] {
		t.Errorf("flips crossed the subarray boundary: %v", rows)
	}
}

func TestDistanceTwoNeedsMoreActivations(t *testing.T) {
	// weight 0.25 at distance 2: threshold*4 activations needed.
	m := testModule(t, testProfile())
	b := bank0()
	agg := 1000
	if err := m.ActivateRow(b, agg, 3999, 0); err != nil {
		t.Fatal(err)
	}
	rows := flipRows(m.Flips())
	if rows[agg-2] || rows[agg+2] {
		t.Fatalf("distance-2 victims flipped too early: %v", rows)
	}
	if err := m.ActivateRow(b, agg, 1, 0); err != nil {
		t.Fatal(err)
	}
	rows = flipRows(m.Flips())
	if !rows[agg-2] || !rows[agg+2] {
		t.Fatalf("distance-2 victims did not flip at 4x threshold: %v", rows)
	}
}

func TestRefreshResetsAccumulation(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, 50, 800, 0); err != nil {
		t.Fatal(err)
	}
	m.Refresh()
	if err := m.ActivateRow(b, 50, 800, 0); err != nil {
		t.Fatal(err)
	}
	if flips := m.Flips(); len(flips) != 0 {
		t.Fatalf("disturbance survived a refresh: %v", flips)
	}
	if m.Window() != 1 {
		t.Errorf("Window = %d, want 1", m.Window())
	}
}

func TestFlipsPersistAcrossRefresh(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	fillRows(t, m, b, []int{99, 101}, 0xFF)
	if err := m.ActivateRow(b, 100, 2000, 0); err != nil {
		t.Fatal(err)
	}
	var before [16]byte
	if err := m.ReadRow(b, 101, 0, before[:]); err != nil {
		t.Fatal(err)
	}
	m.Refresh()
	var after [16]byte
	if err := m.ReadRow(b, 101, 0, after[:]); err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("refresh altered corrupted data; flips must persist")
	}
}

func TestAggressorSelfNeverFlips(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, 200, 500_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Flips() {
		if f.MediaRow == 200 {
			t.Fatalf("aggressor row flipped itself: %v", f)
		}
	}
}

func TestActivationBudgetEnforced(t *testing.T) {
	prof := testProfile()
	prof.MaxActsPerWindow = 1000
	m := testModule(t, prof)
	b := bank0()
	if err := m.ActivateRow(b, 10, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateRow(b, 11, 1, 0); err == nil {
		t.Fatal("activation budget not enforced")
	}
	m.Refresh()
	if err := m.ActivateRow(b, 11, 1000, 0); err != nil {
		t.Fatalf("budget did not reset on refresh: %v", err)
	}
}

func TestRowPressLowersEffectiveThreshold(t *testing.T) {
	// §2.5 RowPress: long open times disturb more per activation. With
	// RowPressFactor 0.02/µs and 50 µs dwell, each ACT counts 2x.
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, 300, 500, 50_000); err != nil {
		t.Fatal(err)
	}
	rows := flipRows(m.Flips())
	if !rows[299] || !rows[301] {
		t.Fatalf("RowPress dwell did not amplify disturbance: %v", rows)
	}

	m2 := testModule(t, testProfile())
	if err := m2.ActivateRow(b, 300, 500, 0); err != nil {
		t.Fatal(err)
	}
	if len(m2.Flips()) != 0 {
		t.Fatal("500 plain activations should stay below a 1000 threshold")
	}
}

func TestActivateRejectsBadArguments(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, -1, 1, 0); err == nil {
		t.Error("negative row accepted")
	}
	if err := m.ActivateRow(b, tinyGeometry().RowsPerBank, 1, 0); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := m.ActivateRow(b, 0, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
	other := geometry.BankID{Socket: 0, DIMM: 1, Rank: 0, Bank: 0}
	if err := m.ActivateRow(other, 0, 1, 0); err == nil {
		t.Error("foreign bank accepted")
	}
}

func TestTRRDefeatsDoubleSidedHammering(t *testing.T) {
	// A classic double-sided pattern (two aggressors around one victim)
	// is caught by the TRR sampler: both aggressors are always tracked,
	// so their victims are refreshed every TRR interval.
	prof := testProfile()
	prof.TRRTableSize = 4
	prof.TRRInterval = 500
	m := testModule(t, prof)
	b := bank0()
	// Victim 1000; aggressors 999 and 1001; interleave small batches.
	for i := 0; i < 100; i++ {
		if err := m.ActivateRow(b, 999, 50, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.ActivateRow(b, 1001, 50, 0); err != nil {
			t.Fatal(err)
		}
	}
	if flips := m.Flips(); len(flips) != 0 {
		t.Fatalf("TRR failed to stop double-sided hammering: %v", flips)
	}
}

func TestDecoyPatternBypassesTRR(t *testing.T) {
	// Blacksmith-class evasion (§2.5): heavy decoy rows pin the TRR
	// sampler table so moderately-hammered aggressors escape refresh.
	prof := testProfile()
	prof.TRRTableSize = 4
	prof.TRRInterval = 5000
	m := testModule(t, prof)
	b := bank0()
	decoys := []int{100, 110, 120, 130}
	agg := []int{1000, 1002}
	for i := 0; i < 60; i++ {
		for _, d := range decoys {
			if err := m.ActivateRow(b, d, 400, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range agg {
			if err := m.ActivateRow(b, a, 100, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	rows := flipRows(m.Flips())
	if !rows[1001] {
		t.Fatalf("decoy pattern failed to flip the shared victim; flips: %v", rows)
	}
}

func TestFlipsFollowInternalTransformsWithinSubarray(t *testing.T) {
	// With mirroring/inversion/scrambling on a power-of-2 subarray size,
	// victims land at transformed in-subarray positions — never outside
	// the aggressor's subarray (§6).
	prof := testProfile()
	prof.Transforms = addr.AllTransforms()
	m := testModule(t, prof)
	b := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 0} // odd rank: mirrored
	agg := 520                                                 // subarray 1 ([512,1024))
	if err := m.ActivateRow(b, agg, 500_000, 0); err != nil {
		t.Fatal(err)
	}
	flips := m.Flips()
	if len(flips) == 0 {
		t.Fatal("no flips with transforms enabled")
	}
	for _, f := range flips {
		if f.MediaRow/512 != 1 {
			t.Errorf("flip escaped aggressor's subarray: %v", f)
		}
	}
}

func TestWeakCellDeterminism(t *testing.T) {
	m := testModule(t, testProfile())
	b := bank0()
	for row := 0; row < 64; row++ {
		c1 := m.WeakCellCount(b, addr.SideA, row)
		c2 := m.WeakCellCount(b, addr.SideA, row)
		if c1 != c2 {
			t.Fatalf("weak cell derivation not deterministic for row %d", row)
		}
		if c1 != testProfile().WeakCellsPerRow {
			t.Fatalf("row %d has %d weak cells, want %d (fraction=1)", row, c1, testProfile().WeakCellsPerRow)
		}
	}
}

func TestVulnerableRowFraction(t *testing.T) {
	prof := testProfile()
	prof.VulnerableRowFraction = 0.5
	m := testModule(t, prof)
	b := bank0()
	vulnerable := 0
	const n = 2000
	for row := 0; row < n; row++ {
		if m.WeakCellCount(b, addr.SideA, row%tinyGeometry().RowsPerBank) > 0 {
			vulnerable++
		}
	}
	frac := float64(vulnerable) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("vulnerable fraction %.2f, want ~0.5", frac)
	}
}

func TestRepeatedHammeringFlipsSameCells(t *testing.T) {
	// Rowhammer errors are repeatable: the same weak cells fail.
	m := testModule(t, testProfile())
	b := bank0()
	fillRows(t, m, b, []int{700, 702}, 0xFF)
	if err := m.ActivateRow(b, 701, 2000, 0); err != nil {
		t.Fatal(err)
	}
	first := m.Flips()
	m.Refresh()
	m.ResetFlips()
	fillRows(t, m, b, []int{700, 702}, 0xFF) // restore data
	if err := m.ActivateRow(b, 701, 2000, 0); err != nil {
		t.Fatal(err)
	}
	second := m.Flips()
	if len(first) != len(second) {
		t.Fatalf("flip count changed between runs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].MediaRow != second[i].MediaRow || first[i].Bit != second[i].Bit || first[i].Side != second[i].Side {
			t.Errorf("flip %d differs: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range EvaluationProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
	if got := len(EvaluationProfiles()); got != 6 {
		t.Errorf("EvaluationProfiles returned %d profiles, want 6 (Table 3 DIMMs A-F)", got)
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.HammerThreshold = 0 },
		func(p *Profile) { p.BlastRadius = 0 },
		func(p *Profile) { p.DistanceWeights = nil },
		func(p *Profile) { p.VulnerableRowFraction = 1.5 },
		func(p *Profile) { p.WeakCellsPerRow = -1 },
		func(p *Profile) { p.TRRTableSize = -1 },
		func(p *Profile) { p.TRRTableSize = 4; p.TRRInterval = 0 },
		func(p *Profile) { p.MaxActsPerWindow = 0 },
	}
	for i, mutate := range cases {
		p := ProfileA()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestSideBFlipsLandInSecondHalfOfRow(t *testing.T) {
	// Internal half-rows map to the external row's halves: A-side cells
	// occupy bytes [0, RowBytes/2), B-side the rest (§2.3).
	m := testModule(t, testProfile())
	b := bank0()
	if err := m.ActivateRow(b, 400, 5000, 0); err != nil {
		t.Fatal(err)
	}
	sawA, sawB := false, false
	g := tinyGeometry()
	for _, f := range m.Flips() {
		off := f.ByteOffset(g)
		if f.Side == addr.SideA {
			sawA = true
			if off >= g.RowBytes/2 {
				t.Errorf("A-side flip at byte %d (second half)", off)
			}
		} else {
			sawB = true
			if off < g.RowBytes/2 {
				t.Errorf("B-side flip at byte %d (first half)", off)
			}
		}
	}
	if !sawA || !sawB {
		t.Errorf("expected flips on both sides (A=%v B=%v)", sawA, sawB)
	}
}

func TestActivationCountsAreWindowScoped(t *testing.T) {
	// Disturbance from different refresh windows never accumulates: 999
	// activations per window for many windows cause no flips at a 1000
	// threshold.
	m := testModule(t, testProfile())
	b := bank0()
	for w := 0; w < 20; w++ {
		if err := m.ActivateRow(b, 50, 999, 0); err != nil {
			t.Fatal(err)
		}
		m.Refresh()
	}
	if flips := m.Flips(); len(flips) != 0 {
		t.Fatalf("sub-threshold windows accumulated into flips: %v", flips)
	}
}

func TestNoTRRStillFeedsAttachedDefense(t *testing.T) {
	// Regression: observe() used to early-return when the profile had
	// TRRTableSize == 0, so on TRR-less DIMMs an attached defense never
	// saw a single activation and the module's activation ledger stayed
	// frozen at zero. The observation path must run regardless of whether
	// the profile ships a built-in sampler.
	prof := testProfile() // TRRTableSize == 0
	m := testModule(t, prof)
	b := bank0()
	m.AttachDefense(mitigation.NewTRR(tinyGeometry().BanksPerDIMM(), 4, 600))

	agg := 1000
	fillRows(t, m, b, []int{agg - 1, agg + 1}, 0xAA)
	// 600 activations: below the 1000 threshold, but enough to fire the
	// attached sampler, which refreshes the aggressor's neighbourhood and
	// decays the accumulated disturbance.
	if err := m.ActivateRow(b, agg, 600, 0); err != nil {
		t.Fatal(err)
	}
	// Another 599: only above threshold if the earlier decay was skipped.
	if err := m.ActivateRow(b, agg, 599, 0); err != nil {
		t.Fatal(err)
	}
	if flips := m.Flips(); len(flips) != 0 {
		t.Fatalf("attached defense on TRR-less profile did not observe activations: %v", flips)
	}
	if got := m.TotalActivations(); got != 1199 {
		t.Fatalf("TotalActivations = %d, want 1199", got)
	}
	if n := m.DefenseOverhead().NeighborRefreshes; n == 0 {
		t.Fatal("attached defense recorded no refreshes")
	}

	// Control: the same traffic with no defense attached must flip — the
	// regression fix must not have weakened the undefended baseline.
	ctl := testModule(t, prof)
	fillRows(t, ctl, b, []int{agg - 1, agg + 1}, 0xAA)
	if err := ctl.ActivateRow(b, agg, 600, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.ActivateRow(b, agg, 599, 0); err != nil {
		t.Fatal(err)
	}
	if flips := ctl.Flips(); len(flips) == 0 {
		t.Fatal("undefended control did not flip at 1199 activations")
	}
	if got := ctl.TotalActivations(); got != 1199 {
		t.Fatalf("undefended TotalActivations = %d, want 1199", got)
	}
}
