package dram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// rowStoreTestGeometry is small enough to exercise slab growth, multi-rank
// bank indexing, and reuse without large allocations.
func rowStoreTestGeometry() geometry.Geometry {
	g := geometry.Default()
	g.Sockets = 1
	g.DIMMsPerSocket = 1
	g.RanksPerDIMM = 2
	g.BanksPerRank = 4
	g.RowsPerBank = 4096
	g.RowBytes = 2 * geometry.KiB
	g.RowsPerSubarray = 512
	return g
}

// TestRowStoreGoldenAgainstMap drives the arena and the previous map
// implementation through the same randomized alloc/write/release schedule and
// demands identical observable state at every step.
func TestRowStoreGoldenAgainstMap(t *testing.T) {
	g := rowStoreTestGeometry()
	s := newRowStore(g)
	ref := map[[2]int][]byte{} // (bankIdx, mediaRow) -> row bytes

	rng := rand.New(rand.NewSource(7))
	banks := g.BanksPerDIMM()
	for step := 0; step < 20000; step++ {
		bankIdx := rng.Intn(banks)
		row := rng.Intn(g.RowsPerBank)
		key := [2]int{bankIdx, row}
		switch op := rng.Intn(10); {
		case op < 5: // write some bytes (materializes)
			got := s.rowAlloc(bankIdx, row)
			want := ref[key]
			if want == nil {
				want = make([]byte, g.RowBytes)
				ref[key] = want
			}
			off := rng.Intn(g.RowBytes)
			b := byte(rng.Intn(256))
			got[off] = b
			want[off] = b
		case op < 8: // read
			got := s.row(bankIdx, row)
			want := ref[key]
			if (got == nil) != (want == nil) {
				t.Fatalf("step %d: presence mismatch for %v: arena=%v map=%v",
					step, key, got != nil, want != nil)
			}
			if got != nil && !bytes.Equal(got, want) {
				t.Fatalf("step %d: content mismatch for %v", step, key)
			}
		default: // release (full-row scrub)
			s.release(bankIdx, row)
			delete(ref, key)
		}
		if s.len() != len(ref) {
			t.Fatalf("step %d: live count %d, map has %d", step, s.len(), len(ref))
		}
	}

	// Final sweep: every map entry must match the arena, and every absent
	// entry must be absent.
	for bankIdx := 0; bankIdx < banks; bankIdx++ {
		for row := 0; row < g.RowsPerBank; row++ {
			got := s.row(bankIdx, row)
			want := ref[[2]int{bankIdx, row}]
			if (got == nil) != (want == nil) {
				t.Fatalf("final: presence mismatch at bank %d row %d", bankIdx, row)
			}
			if got != nil && !bytes.Equal(got, want) {
				t.Fatalf("final: content mismatch at bank %d row %d", bankIdx, row)
			}
		}
	}
}

// TestRowStoreReuseZeroes checks that a released slot comes back zeroed (the
// scrub guarantee: a recycled slot must not leak the previous tenant's bytes)
// and that steady-state churn recycles slots instead of growing the arena.
func TestRowStoreReuseZeroes(t *testing.T) {
	g := rowStoreTestGeometry()
	s := newRowStore(g)

	r := s.rowAlloc(0, 10)
	for i := range r {
		r[i] = 0xAB
	}
	s.release(0, 10)
	slabs := len(s.slabs)

	// Reallocation (any row) must reuse the freed slot and observe zeros.
	r2 := s.rowAlloc(3, 99)
	for i, b := range r2 {
		if b != 0 {
			t.Fatalf("recycled slot byte %d = %#x, want 0", i, b)
		}
	}
	if len(s.slabs) != slabs {
		t.Fatalf("churn grew the arena: %d -> %d slabs", slabs, len(s.slabs))
	}
	if s.next != 1 {
		t.Fatalf("allocated fresh slot instead of recycling: next=%d", s.next)
	}
}

// TestRowStoreModuleScrubReleases checks the Module-level contract: a
// full-row scrub releases backing storage, and releases are observable via
// the arena's live count.
func TestRowStoreModuleScrubReleases(t *testing.T) {
	g := rowStoreTestGeometry()
	m, err := NewModule(g, ProfileF(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 2}
	data := bytes.Repeat([]byte{0x5A}, 64)
	if err := m.WriteRow(b, 7, 128, data); err != nil {
		t.Fatal(err)
	}
	if m.rows.len() != 1 {
		t.Fatalf("after write: live=%d, want 1", m.rows.len())
	}
	if err := m.ScrubRow(b, 7, 0, g.RowBytes); err != nil {
		t.Fatal(err)
	}
	if m.rows.len() != 0 {
		t.Fatalf("after full scrub: live=%d, want 0", m.rows.len())
	}
	buf := make([]byte, 64)
	if err := m.ReadRow(b, 7, 128, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("scrubbed row byte %d = %#x, want 0", i, v)
		}
	}
}

// BenchmarkRowStoreChurn measures the VM-churn pattern the arena exists for:
// write a row, scrub it, repeat — steady state must not allocate.
func BenchmarkRowStoreChurn(b *testing.B) {
	g := rowStoreTestGeometry()
	m, err := NewModule(g, ProfileF(), 0, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	data := bytes.Repeat([]byte{0xC3}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := i % g.RowsPerBank
		if err := m.WriteRow(bank, row, 0, data); err != nil {
			b.Fatal(err)
		}
		if err := m.ScrubRow(bank, row, 0, g.RowBytes); err != nil {
			b.Fatal(err)
		}
	}
}
