package dram

import (
	"testing"

	"repro/internal/geometry"
)

func BenchmarkActivateRowBatch(b *testing.B) {
	m, err := NewModule(tinyGeometry(), testProfile(), 0, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ActivateRow(bank, 100+(i%64), 100, 0); err != nil {
			m.Refresh()
		}
	}
}

func BenchmarkWriteReadRow(b *testing.B) {
	m, err := NewModule(tinyGeometry(), testProfile(), 0, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bank := geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteRow(bank, i%1000, 0, buf); err != nil {
			b.Fatal(err)
		}
		if err := m.ReadRow(bank, i%1000, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
