package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

// Memory is the whole server's DRAM: one Module per DIMM, plus the memory
// controller's physical-to-media mapping. It is the single interface the
// hypervisor, workloads and attack code use to touch "hardware".
type Memory struct {
	g       geometry.Geometry
	mapper  addr.Mapper
	modules [][]*Module // [socket][dimm]
}

// NewMemory builds server memory. profiles are assigned to DIMM slots
// round-robin within each socket (pass six profiles to model the paper's
// six distinct DIMMs per socket, or one profile for a uniform population).
// repairs may be nil.
func NewMemory(g geometry.Geometry, mapper addr.Mapper, profiles []Profile, repairs *addr.RepairTable) (*Memory, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("dram: at least one profile required")
	}
	mem := &Memory{g: g, mapper: mapper, modules: make([][]*Module, g.Sockets)}
	for s := 0; s < g.Sockets; s++ {
		mem.modules[s] = make([]*Module, g.DIMMsPerSocket)
		for d := 0; d < g.DIMMsPerSocket; d++ {
			mod, err := NewModule(g, profiles[d%len(profiles)], s, d, repairs)
			if err != nil {
				return nil, err
			}
			mem.modules[s][d] = mod
		}
	}
	return mem, nil
}

// Geometry returns the server geometry.
func (m *Memory) Geometry() geometry.Geometry { return m.g }

// Mapper returns the physical-to-media mapper.
func (m *Memory) Mapper() addr.Mapper { return m.mapper }

// Module returns the DIMM at (socket, dimm).
func (m *Memory) Module(socket, dimm int) *Module { return m.modules[socket][dimm] }

// moduleFor routes a bank to its module.
func (m *Memory) moduleFor(b geometry.BankID) (*Module, error) {
	if !b.Valid(m.g) {
		return nil, fmt.Errorf("dram: invalid bank %v", b)
	}
	return m.modules[b.Socket][b.DIMM], nil
}

// WritePhys stores bytes at a host physical address, spanning rows and
// banks as the mapping dictates.
func (m *Memory) WritePhys(pa uint64, data []byte) error {
	return m.iter(pa, len(data), func(mod *Module, ma geometry.MediaAddr, off, n int) error {
		return mod.WriteRow(ma.Bank, ma.Row, ma.Col, data[off:off+n])
	})
}

// ReadPhys reads len(buf) bytes at a host physical address.
func (m *Memory) ReadPhys(pa uint64, buf []byte) error {
	return m.iter(pa, len(buf), func(mod *Module, ma geometry.MediaAddr, off, n int) error {
		return mod.ReadRow(ma.Bank, ma.Row, ma.Col, buf[off:off+n])
	})
}

// iter walks a physical range in cache-line pieces (the mapping
// granularity), invoking fn with the owning module and media location.
func (m *Memory) iter(pa uint64, n int, fn func(mod *Module, ma geometry.MediaAddr, off, n int) error) error {
	off := 0
	for off < n {
		cur := pa + uint64(off)
		chunk := geometry.CacheLineSize - int(cur%geometry.CacheLineSize)
		if chunk > n-off {
			chunk = n - off
		}
		ma, err := m.mapper.Decode(cur)
		if err != nil {
			return err
		}
		mod, err := m.moduleFor(ma.Bank)
		if err != nil {
			return err
		}
		if err := fn(mod, ma, off, chunk); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// ScrubPhys zeroes n bytes at a host physical address. Untouched rows stay
// unmaterialized, so scrubbing terabytes of never-written guest RAM costs
// almost nothing — the sparse analogue of the kernel's free-page
// sanitization.
func (m *Memory) ScrubPhys(pa uint64, n int) error {
	return m.iter(pa, n, func(mod *Module, ma geometry.MediaAddr, off, n int) error {
		return mod.ScrubRow(ma.Bank, ma.Row, ma.Col, n)
	})
}

// ActivatePhys issues count activations of the row backing a physical
// address, each holding the row open openNs nanoseconds. It is the
// primitive hammering and the memory-controller model build on.
func (m *Memory) ActivatePhys(pa uint64, count int, openNs int64) error {
	ma, err := m.mapper.Decode(pa)
	if err != nil {
		return err
	}
	mod, err := m.moduleFor(ma.Bank)
	if err != nil {
		return err
	}
	return mod.ActivateRow(ma.Bank, ma.Row, count, openNs)
}

// AttachDefense attaches one mitigation instance per module, built by
// build(socket, dimm, banks). Each module gets its own instance — defense
// state is per-scope, mirroring per-DIMM hardware — so build must derive
// any RNG seed from (socket, dimm) (see mitigation.ScopeSeed). A nil
// return from build leaves that module undefended.
func (m *Memory) AttachDefense(build func(socket, dimm, banks int) mitigation.Mitigation) {
	for s, socket := range m.modules {
		for d, mod := range socket {
			mod.AttachDefense(build(s, d, m.g.BanksPerDIMM()))
		}
	}
}

// DefenseOverhead sums attached-defense overhead across all modules.
func (m *Memory) DefenseOverhead() mitigation.Overhead {
	var o mitigation.Overhead
	for _, socket := range m.modules {
		for _, mod := range socket {
			o.Add(mod.DefenseOverhead())
		}
	}
	return o
}

// DefenseHealth reports the first degraded defense across modules.
func (m *Memory) DefenseHealth() error {
	for _, socket := range m.modules {
		for _, mod := range socket {
			if err := mod.DefenseHealth(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TotalActivations sums observed activations across all modules.
func (m *Memory) TotalActivations() int64 {
	var n int64
	for _, socket := range m.modules {
		for _, mod := range socket {
			n += mod.TotalActivations()
		}
	}
	return n
}

// Refresh ends the current refresh window on every module.
func (m *Memory) Refresh() {
	for _, socket := range m.modules {
		for _, mod := range socket {
			mod.Refresh()
		}
	}
}

// Window returns the refresh-window index (all modules refresh together).
func (m *Memory) Window() int { return m.modules[0][0].Window() }

// Flips aggregates all flips across modules.
func (m *Memory) Flips() []Flip {
	var out []Flip
	for _, socket := range m.modules {
		for _, mod := range socket {
			out = append(out, mod.Flips()...)
		}
	}
	return out
}

// ResetFlips clears every module's flip log.
func (m *Memory) ResetFlips() {
	for _, socket := range m.modules {
		for _, mod := range socket {
			mod.ResetFlips()
		}
	}
}

// FlipPhys translates a flip back to the host physical address of the
// corrupted byte, letting callers attribute corruption to software-visible
// locations.
func (m *Memory) FlipPhys(f Flip) (uint64, error) {
	return m.mapper.Encode(geometry.MediaAddr{
		Bank: f.Bank,
		Row:  f.MediaRow,
		Col:  f.ByteOffset(m.g),
	})
}
