package ecc

// CorrectableError records one ECC correction event. The stream of these
// events is the correctable-error side channel: platforms log them, and
// defenses like Copy-on-Flip key off them, but attackers co-located in a
// subarray can also infer data from them (§3).
type CorrectableError struct {
	// Addr is the host physical address of the affected word.
	Addr uint64
	// Bit is the corrected data bit index, or -1 for a check-bit error.
	Bit int
}

// Log accumulates error events from reads and patrol scrubs.
type Log struct {
	corrected     []CorrectableError
	uncorrectable []uint64
}

// RecordCorrected appends a correction event.
func (l *Log) RecordCorrected(e CorrectableError) { l.corrected = append(l.corrected, e) }

// RecordUncorrectable appends a detected-uncorrectable event (machine-check
// surface).
func (l *Log) RecordUncorrectable(addr uint64) { l.uncorrectable = append(l.uncorrectable, addr) }

// Corrected returns all correction events so far.
func (l *Log) Corrected() []CorrectableError { return l.corrected }

// Uncorrectable returns the addresses of all detected-uncorrectable words.
func (l *Log) Uncorrectable() []uint64 { return l.uncorrectable }

// Reset clears the log.
func (l *Log) Reset() { l.corrected, l.uncorrectable = nil, nil }

// Scrubber walks protected words, reading (and thereby correcting) each one
// — the patrol scrub the paper relies on to surface any lingering bit flips
// during the 24-hour containment run (§7.1).
type Scrubber struct {
	Log *Log
}

// ScrubWords reads every word, correcting single-bit errors in place and
// logging events. addrOf maps a word index to its reported physical address.
// It returns the number of corrected and uncorrectable words found.
func (s *Scrubber) ScrubWords(words []Word, addrOf func(i int) uint64) (corrected, uncorrectable int) {
	for i := range words {
		before := words[i]
		_, res := words[i].Read()
		switch res {
		case Corrected:
			corrected++
			if s.Log != nil {
				bit := -1
				if diff := before.Data ^ words[i].Data; diff != 0 {
					for b := 0; b < DataBits; b++ {
						if diff&(1<<b) != 0 {
							bit = b
							break
						}
					}
				}
				s.Log.RecordCorrected(CorrectableError{Addr: addrOf(i), Bit: bit})
			}
		case Uncorrectable:
			uncorrectable++
			if s.Log != nil {
				s.Log.RecordUncorrectable(addrOf(i))
			}
		}
	}
	return corrected, uncorrectable
}
