package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoErrorDecodesOK(t *testing.T) {
	f := func(data uint64) bool {
		w := NewWord(data)
		got, res := w.Read()
		return got == data && res == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleDataBitErrorsCorrected(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		b := int(bit % DataBits)
		w := NewWord(data)
		w.FlipDataBit(b)
		got, res := w.Read()
		return got == data && res == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSingleCheckBitErrorsCorrected(t *testing.T) {
	for bit := 0; bit < CheckBits; bit++ {
		data := uint64(0xDEADBEEFCAFEF00D)
		w := NewWord(data)
		w.FlipCheckBit(bit)
		got, res := w.Read()
		if got != data || res != Corrected {
			t.Errorf("check bit %d: got %#x, %v; want original, Corrected", bit, got, res)
		}
	}
}

func TestCorrectionRepairsStorage(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	w := NewWord(data)
	w.FlipDataBit(17)
	if _, res := w.Read(); res != Corrected {
		t.Fatal("first read should correct")
	}
	if _, res := w.Read(); res != OK {
		t.Error("second read should be clean after in-place repair")
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	f := func(data uint64, b1, b2 uint8) bool {
		x, y := int(b1%DataBits), int(b2%DataBits)
		if x == y {
			return true
		}
		w := NewWord(data)
		w.FlipDataBit(x)
		w.FlipDataBit(y)
		got, res := w.Read()
		return res == Uncorrectable && got == w.Data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDoubleErrorDataPlusCheckDetected(t *testing.T) {
	data := uint64(0xFFFF0000FFFF0000)
	for cb := 0; cb < CheckBits; cb++ {
		w := NewWord(data)
		w.FlipDataBit(3)
		w.FlipCheckBit(cb)
		if _, res := w.Read(); res != Uncorrectable {
			t.Errorf("data+check(%d) double error: got %v, want Uncorrectable", cb, res)
		}
	}
}

func TestTripleErrorsCanMiscorrect(t *testing.T) {
	// §2.5 / [25]: malicious workloads can induce uncorrected flips
	// despite ECC. With 3 flipped bits the syndrome can alias to a
	// single-bit error and silently miscorrect. Verify at least one
	// triple produces silent corruption (res != Uncorrectable with wrong
	// data).
	rng := rand.New(rand.NewSource(42))
	miscorrected := false
	for trial := 0; trial < 2000 && !miscorrected; trial++ {
		data := rng.Uint64()
		w := NewWord(data)
		bits := rng.Perm(DataBits)[:3]
		for _, b := range bits {
			w.FlipDataBit(b)
		}
		got, res := w.Read()
		if res != Uncorrectable && got != data {
			miscorrected = true
		}
	}
	if !miscorrected {
		t.Error("no triple-bit miscorrection observed; ECC model too strong")
	}
}

func TestScrubberCountsAndLogs(t *testing.T) {
	words := make([]Word, 64)
	for i := range words {
		words[i] = NewWord(uint64(i) * 0x9E3779B97F4A7C15)
	}
	words[3].FlipDataBit(5)
	words[10].FlipDataBit(0)
	words[20].FlipDataBit(1)
	words[20].FlipDataBit(2)

	log := &Log{}
	s := &Scrubber{Log: log}
	corr, uncorr := s.ScrubWords(words, func(i int) uint64 { return uint64(i) * 8 })
	if corr != 2 || uncorr != 1 {
		t.Fatalf("scrub found corr=%d uncorr=%d, want 2, 1", corr, uncorr)
	}
	ce := log.Corrected()
	if len(ce) != 2 || ce[0].Addr != 24 || ce[0].Bit != 5 || ce[1].Addr != 80 {
		t.Errorf("corrected log = %+v", ce)
	}
	if ue := log.Uncorrectable(); len(ue) != 1 || ue[0] != 160 {
		t.Errorf("uncorrectable log = %+v", ue)
	}

	// After scrubbing, single-bit errors are repaired.
	corr2, uncorr2 := s.ScrubWords(words, func(i int) uint64 { return uint64(i) * 8 })
	if corr2 != 0 || uncorr2 != 1 {
		t.Errorf("second scrub corr=%d uncorr=%d, want 0, 1", corr2, uncorr2)
	}

	log.Reset()
	if len(log.Corrected()) != 0 || len(log.Uncorrectable()) != 0 {
		t.Error("Reset did not clear log")
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{OK: "ok", Corrected: "corrected", Uncorrectable: "uncorrectable", Result(99): "invalid"} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}
