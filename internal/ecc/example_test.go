package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
)

// Example shows SEC-DED behaviour under increasing corruption: one flip is
// corrected, two are detected, and the stored word self-repairs on read.
func Example() {
	w := ecc.NewWord(0xDEADBEEF)
	w.FlipDataBit(7)
	data, res := w.Read()
	fmt.Printf("1 flip: %v, data restored: %v\n", res, data == 0xDEADBEEF)

	w2 := ecc.NewWord(0xDEADBEEF)
	w2.FlipDataBit(7)
	w2.FlipDataBit(40)
	_, res = w2.Read()
	fmt.Printf("2 flips: %v\n", res)
	// Output:
	// 1 flip: corrected, data restored: true
	// 2 flips: uncorrectable
}
