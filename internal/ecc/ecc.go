// Package ecc implements the SEC-DED (single-error-correct, double-error-
// detect) memory protection used on server DIMMs (§2.5), as an extended
// Hamming(72,64) code over 64-bit words.
//
// The model reproduces the properties that matter for Rowhammer defenses:
//
//   - single bit flips are silently corrected, but corrections are
//     observable events (the correctable-error side channel of [86] and the
//     detection signal Copy-on-Flip builds on);
//   - double flips are detected but not corrected (machine-check surface);
//   - triple flips can alias to a "correctable" syndrome and miscorrect,
//     producing silent data corruption — the ECC bypass of [25].
package ecc

import "math/bits"

// codeword layout: positions 1..71 hold parity bits at the powers of two
// (1, 2, 4, 8, 16, 32, 64) and the 64 data bits elsewhere; position 0 is the
// overall parity bit providing double-error detection.
const (
	// DataBits is the number of protected data bits per word.
	DataBits = 64
	// CheckBits is the number of redundancy bits per word.
	CheckBits  = 8
	nPositions = 72
)

// dataPos[i] is the codeword position of data bit i; posData[p] is the data
// bit index at position p (or -1 for parity positions).
var (
	dataPos [DataBits]int
	posData [nPositions]int
)

func init() {
	for p := range posData {
		posData[p] = -1
	}
	i := 0
	for p := 1; p < nPositions && i < DataBits; p++ {
		if p&(p-1) == 0 { // power of two: parity position
			continue
		}
		dataPos[i] = p
		posData[p] = i
		i++
	}
	if i != DataBits {
		panic("ecc: codeword too short for 64 data bits")
	}
}

// Result classifies the outcome of decoding one word.
type Result int

const (
	// OK means the word carried no detectable error.
	OK Result = iota
	// Corrected means a single-bit error was detected and corrected. The
	// event is visible to the platform (correctable-error logging).
	Corrected
	// Uncorrectable means a multi-bit error was detected but cannot be
	// corrected; real platforms raise a machine check (§2.5).
	Uncorrectable
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "invalid"
}

// Encode computes the 8 check bits protecting data.
func Encode(data uint64) uint8 {
	var cw [nPositions]bool
	for i := 0; i < DataBits; i++ {
		cw[dataPos[i]] = data&(1<<i) != 0
	}
	var check uint8
	// Hamming parity bits p0..p6 at positions 1,2,4,...,64.
	for i := 0; i < 7; i++ {
		p := 1 << i
		parity := false
		for pos := 1; pos < nPositions; pos++ {
			if pos&p != 0 && cw[pos] {
				parity = !parity
			}
		}
		if parity {
			check |= 1 << i
			cw[p] = true
		}
	}
	// Overall parity (bit 7 of check, position 0) over all other bits.
	overall := false
	for pos := 1; pos < nPositions; pos++ {
		if cw[pos] {
			overall = !overall
		}
	}
	if overall {
		check |= 1 << 7
	}
	return check
}

// Decode checks (and if possible corrects) a stored word against its check
// bits. It returns the corrected data, corrected check bits, and the result
// classification. On Uncorrectable the data is returned as stored.
//
// Note that ≥3-bit errors may alias to OK or Corrected with wrong data;
// this miscorrection behaviour is intentional (see package comment).
func Decode(data uint64, check uint8) (uint64, uint8, Result) {
	var cw [nPositions]bool
	for i := 0; i < DataBits; i++ {
		cw[dataPos[i]] = data&(1<<i) != 0
	}
	for i := 0; i < 7; i++ {
		cw[1<<i] = check&(1<<i) != 0
	}
	cw[0] = check&(1<<7) != 0

	// Syndrome: XOR of positions of set bits (excluding position 0).
	syndrome := 0
	for pos := 1; pos < nPositions; pos++ {
		if cw[pos] {
			syndrome ^= pos
		}
	}
	// Recompute overall parity across the whole codeword.
	ones := 0
	for pos := 0; pos < nPositions; pos++ {
		if cw[pos] {
			ones++
		}
	}
	overallOK := ones%2 == 0

	switch {
	case syndrome == 0 && overallOK:
		return data, check, OK
	case syndrome == 0 && !overallOK:
		// Error in the overall parity bit itself.
		return data, check ^ 1<<7, Corrected
	case syndrome != 0 && !overallOK:
		// Single-bit error at position syndrome.
		if syndrome >= nPositions {
			return data, check, Uncorrectable
		}
		if d := posData[syndrome]; d >= 0 {
			return data ^ 1<<d, check, Corrected
		}
		// Error in a Hamming parity bit.
		return data, check ^ uint8(1<<bits.TrailingZeros(uint(syndrome))), Corrected
	default: // syndrome != 0 && overallOK
		return data, check, Uncorrectable
	}
}

// Word is a stored 64-bit word with its check bits.
type Word struct {
	Data  uint64
	Check uint8
}

// NewWord encodes data into a protected word.
func NewWord(data uint64) Word {
	return Word{Data: data, Check: Encode(data)}
}

// Read decodes the word, returning the (possibly corrected) data and result.
// The stored word is repaired in place on correction, as DRAM scrubbing does.
func (w *Word) Read() (uint64, Result) {
	data, check, res := Decode(w.Data, w.Check)
	if res == Corrected {
		w.Data, w.Check = data, check
	}
	return data, res
}

// FlipDataBit flips one data bit (0..63) in storage, simulating a
// disturbance error.
func (w *Word) FlipDataBit(bit int) {
	w.Data ^= 1 << bit
}

// FlipCheckBit flips one check bit (0..7) in storage.
func (w *Word) FlipCheckBit(bit int) {
	w.Check ^= 1 << bit
}
