package fleet

import (
	"fmt"

	"repro/internal/migrate"
)

// AuditIsolation verifies the fleet-wide isolation invariants:
//
//  1. every host passes the single-host audit (exclusive node ownership,
//     no host frame owned by two VMs, RAM inside the owner's domain, EPT
//     pages in the right socket pool, mediated pages host-reserved) —
//     migrate.AuditIsolation per shard;
//  2. no VM name is live on two hosts, except a VM mid-move — and a
//     mid-move VM's copies are bounded to exactly its recorded {source,
//     destination} pair. A third live copy, or a copy on a host outside
//     the move window, is double ownership, not a transient;
//  3. the routing table matches reality: every routed VM exists on its
//     recorded host; every live VM is routed; a mid-move VM routes to its
//     source (before commit) or destination (after), never elsewhere.
//
// Call it between quiesced phases or from a move probe; a mid-op audit
// outside those points can observe legitimate transients.
func (c *Cluster) AuditIsolation() error {
	c.mu.Lock()
	vmHost := make(map[string]string, len(c.vmHost))
	for k, v := range c.vmHost {
		vmHost[k] = v
	}
	moving := make(map[string]moveWindow, len(c.moving))
	for k, v := range c.moving {
		moving[k] = v
	}
	c.mu.Unlock()

	liveOn := map[string][]string{} // vm -> every host it is live on, boot order
	for _, h := range c.hosts {
		if err := migrate.AuditIsolation(h.Hypervisor()); err != nil {
			return fmt.Errorf("fleet: host %s: %w", h.Name(), err)
		}
		for _, vm := range h.Hypervisor().VMs() {
			name := vm.Name()
			liveOn[name] = append(liveOn[name], h.Name())
			if _, routed := vmHost[name]; !routed {
				return fmt.Errorf("fleet: VM %q live on %s but not in the routing table", name, h.Name())
			}
		}
	}

	for name, hosts := range liveOn {
		w, mid := moving[name]
		if !mid {
			if len(hosts) > 1 {
				return fmt.Errorf("fleet: VM %q live on multiple hosts %v with no move in flight", name, hosts)
			}
			continue
		}
		// Mid-move: every live copy must sit on the move window's source or
		// destination. Two copies (one on each) is the legitimate
		// double-ownership window; anything else is a containment failure.
		for _, hn := range hosts {
			if hn != w.Src && hn != w.Dst {
				return fmt.Errorf("fleet: mid-move VM %q live on %s outside its move window %s->%s",
					name, hn, w.Src, w.Dst)
			}
		}
	}

	for name, hostName := range vmHost {
		h, ok := c.byName[hostName]
		if !ok {
			return fmt.Errorf("fleet: VM %q routed to unknown host %q", name, hostName)
		}
		if w, mid := moving[name]; mid {
			// Routing may flip to the destination before the source copy is
			// destroyed, but it must never leave the move window.
			if hostName != w.Src && hostName != w.Dst {
				return fmt.Errorf("fleet: mid-move VM %q routed to %s outside its move window %s->%s",
					name, hostName, w.Src, w.Dst)
			}
			continue
		}
		if _, ok := h.Hypervisor().VM(name); !ok {
			return fmt.Errorf("fleet: VM %q routed to %s but not live there (live on %v)",
				name, hostName, liveOn[name])
		}
	}
	return nil
}
