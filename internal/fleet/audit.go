package fleet

import (
	"fmt"

	"repro/internal/migrate"
)

// AuditIsolation verifies the fleet-wide isolation invariants:
//
//  1. every host passes the single-host audit (exclusive node ownership,
//     RAM inside the owner's domain, EPT pages in the right socket pool,
//     mediated pages host-reserved) — migrate.AuditIsolation per shard;
//  2. no VM name is live on two hosts, except a VM mid-move (whose domain
//     legitimately spans source and destination until the source copy is
//     destroyed);
//  3. the routing table matches reality: every routed VM exists on its
//     recorded host, every live VM is routed.
//
// Call it between quiesced phases; a mid-op audit can observe legitimate
// transients.
func (c *Cluster) AuditIsolation() error {
	c.mu.Lock()
	vmHost := make(map[string]string, len(c.vmHost))
	for k, v := range c.vmHost {
		vmHost[k] = v
	}
	moving := make(map[string]bool, len(c.moving))
	for k := range c.moving {
		moving[k] = true
	}
	c.mu.Unlock()

	seen := map[string]string{} // vm -> first host observed on
	live := map[string]string{} // vm -> a host it lives on (for routing check)
	for _, h := range c.hosts {
		if err := migrate.AuditIsolation(h.Hypervisor()); err != nil {
			return fmt.Errorf("fleet: host %s: %w", h.Name(), err)
		}
		for _, vm := range h.Hypervisor().VMs() {
			name := vm.Name()
			if prev, dup := seen[name]; dup && !moving[name] {
				return fmt.Errorf("fleet: VM %q live on both %s and %s", name, prev, h.Name())
			}
			if _, dup := seen[name]; !dup {
				seen[name] = h.Name()
			}
			live[name] = h.Name()
			if _, routed := vmHost[name]; !routed {
				return fmt.Errorf("fleet: VM %q live on %s but not in the routing table", name, h.Name())
			}
		}
	}
	for name, hostName := range vmHost {
		if moving[name] {
			continue // routing may point at the move's destination early
		}
		h, ok := c.byName[hostName]
		if !ok {
			return fmt.Errorf("fleet: VM %q routed to unknown host %q", name, hostName)
		}
		if _, ok := h.Hypervisor().VM(name); !ok {
			return fmt.Errorf("fleet: VM %q routed to %s but not live there (live on %q)",
				name, hostName, live[name])
		}
	}
	return nil
}
