package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/migrate"
)

// SchedulerConfig tunes the rebalancing scheduler.
type SchedulerConfig struct {
	// HighWatermark is the owned-node fraction above which a host is hot
	// and sheds VMs. Default 0.75.
	HighWatermark float64
	// LowWatermark is the fraction below which a host is a preferred
	// eviction destination. Default 0.40. (Informational; the placement
	// policy makes the actual choice among non-hot hosts.)
	LowWatermark float64
	// MaxCrossMoves bounds cross-host migrations per round. Default 4.
	MaxCrossMoves int
	// MaxDefragMoves bounds each host's intra-host defragmentation moves
	// per round. Default 2.
	MaxDefragMoves int
	// DirtyPages is the modeled guest write activity injected during each
	// cross-host move's pre-copy (makes stop-and-copy non-empty).
	// Default 8.
	DirtyPages int
	// Seed derives each move's dirty-injection stream.
	Seed int64
}

func (cfg *SchedulerConfig) normalize() {
	if cfg.HighWatermark <= 0 {
		cfg.HighWatermark = 0.75
	}
	if cfg.LowWatermark <= 0 {
		cfg.LowWatermark = 0.40
	}
	if cfg.MaxCrossMoves <= 0 {
		cfg.MaxCrossMoves = 4
	}
	if cfg.MaxDefragMoves <= 0 {
		cfg.MaxDefragMoves = 2
	}
	if cfg.DirtyPages < 0 {
		cfg.DirtyPages = 0
	} else if cfg.DirtyPages == 0 {
		cfg.DirtyPages = 8
	}
}

// Scheduler drains hot hosts and defragments the rest, batching decisions
// through each host's migrate.Planner/Engine and the cluster's placement
// policy.
type Scheduler struct {
	c     *Cluster
	cfg   SchedulerConfig
	moves int64 // lifetime cross-move counter, seeds dirty injection
}

// NewScheduler builds a scheduler over the cluster.
func NewScheduler(c *Cluster, cfg SchedulerConfig) *Scheduler {
	cfg.normalize()
	return &Scheduler{c: c, cfg: cfg}
}

// RebalanceReport summarizes one scheduler round.
type RebalanceReport struct {
	// HotHosts counts hosts over the high watermark at round start.
	HotHosts int
	// CrossMoves / CrossMoveBytes / DowntimeBytes cover this round's
	// cross-host evictions.
	CrossMoves     int
	CrossMoveBytes uint64
	DowntimeBytes  uint64
	// DefragMoves counts intra-host defragmentation migrations.
	DefragMoves int
	// SkippedVMs counts eviction candidates passed over (unmovable or no
	// destination).
	SkippedVMs int
}

// evictionCandidate is one VM a hot host could shed.
type evictionCandidate struct {
	name       string
	guestBytes uint64
	nodes      int
	movable    bool
}

// Round runs one rebalancing pass: shed VMs from hot hosts to the policy's
// choice of non-hot destinations (smallest VMs first — cheapest copies,
// fastest node release), then give every host a bounded defragmentation
// pass. Call between quiesced phases; the round itself awaits every move it
// makes, so the cluster is quiescent again when it returns.
func (s *Scheduler) Round(ctx context.Context) (*RebalanceReport, error) {
	rep := &RebalanceReport{}
	m, err := s.c.Metrics()
	if err != nil {
		return nil, err
	}
	owned := map[string]int{}
	total := map[string]int{}
	hot := map[string]bool{}
	for _, hm := range m.Hosts {
		owned[hm.Host] = hm.OwnedNodes
		total[hm.Host] = hm.GuestNodes
		if hm.Utilization() > s.cfg.HighWatermark {
			hot[hm.Host] = true
			rep.HotHosts++
		}
	}

	if rep.HotHosts > 0 && rep.HotHosts < len(s.c.hosts) {
		views, err := s.c.Views()
		if err != nil {
			return nil, err
		}
		budget := s.cfg.MaxCrossMoves
		for _, h := range s.c.hosts {
			if !hot[h.Name()] || budget == 0 {
				continue
			}
			for _, cand := range s.candidates(h) {
				if budget == 0 {
					break
				}
				util := float64(owned[h.Name()]) / float64(total[h.Name()])
				if util <= s.cfg.HighWatermark {
					break // shed enough
				}
				if !cand.movable {
					rep.SkippedVMs++
					continue
				}
				req := Request{Name: cand.name, GuestBytes: cand.guestBytes, ExcludeHosts: hot}
				p, err := s.c.policy.Place(req, views)
				if err != nil {
					if errors.Is(err, ErrNoPlacement) {
						rep.SkippedVMs++
						continue // fleet too full to shed this one
					}
					return rep, err
				}
				s.moves++
				mv, err := s.c.MoveVM(ctx, cand.name, p.Host, p.Socket,
					s.cfg.DirtyPages, s.cfg.Seed+s.moves*7919)
				if err != nil {
					return rep, fmt.Errorf("fleet: rebalance %q: %w", cand.name, err)
				}
				rep.CrossMoves++
				rep.CrossMoveBytes += mv.BytesCopied
				rep.DowntimeBytes += mv.DowntimeBytes
				budget--
				owned[h.Name()] -= cand.nodes
				Consume(views, p, cand.guestBytes)
			}
		}
	}

	// Defragmentation: every host, bounded, in boot order. Awaited one at
	// a time so planner decisions see settled state.
	for _, h := range s.c.hosts {
		var reps []*core.MigrateReport
		op, err := h.SubmitDefragment(ctx, s.cfg.MaxDefragMoves, func(r []*core.MigrateReport) {
			reps = r
		})
		if err != nil {
			return rep, err
		}
		if err := op.Wait(ctx); err != nil {
			return rep, fmt.Errorf("fleet: defrag %s: %w", h.Name(), err)
		}
		for _, r := range reps {
			rep.DefragMoves++
			s.c.mu.Lock()
			s.c.stats.DefragMoves++
			s.c.stats.MigratedBytes += r.BytesCopied
			s.c.stats.DowntimeBytes += r.DowntimeBytes
			s.c.mu.Unlock()
		}
	}
	return rep, nil
}

// candidates lists a host's VMs smallest-first (ties by name) with
// movability marked: VMs with extra regions cannot move cross-host, and a
// VM mid-move is already leaving.
func (s *Scheduler) candidates(h *Host) []evictionCandidate {
	var out []evictionCandidate
	for _, vm := range h.Hypervisor().VMs() {
		spec := vm.Spec()
		s.c.mu.Lock()
		_, inFlight := s.c.moving[spec.Name]
		s.c.mu.Unlock()
		out = append(out, evictionCandidate{
			name:       spec.Name,
			guestBytes: migrate.GuestBytes(spec),
			nodes:      len(vm.Nodes()),
			movable:    len(spec.Regions) == 0 && !inFlight,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].guestBytes != out[j].guestBytes {
			return out[i].guestBytes < out[j].guestBytes
		}
		return out[i].name < out[j].name
	})
	return out
}

// DrainHost marks a host draining and moves every movable VM off it,
// directed by the cluster's policy. The host stays marked draining (it
// admits nothing) until the caller clears it with SetDraining(false).
// Returns the number of VMs moved; a VM with no placement anywhere aborts
// the drain with an error wrapping ErrNoPlacement.
func (s *Scheduler) DrainHost(ctx context.Context, hostName string) (int, error) {
	h, err := s.c.Host(hostName)
	if err != nil {
		return 0, err
	}
	h.SetDraining(true)
	moved := 0
	for _, cand := range s.candidates(h) {
		if !cand.movable {
			return moved, fmt.Errorf("fleet: drain %s: VM %q is not movable", hostName, cand.name)
		}
		views, err := s.c.Views()
		if err != nil {
			return moved, err
		}
		req := Request{Name: cand.name, GuestBytes: cand.guestBytes,
			ExcludeHosts: map[string]bool{hostName: true}}
		p, err := s.c.policy.Place(req, views)
		if err != nil {
			return moved, fmt.Errorf("fleet: drain %s: %w", hostName, err)
		}
		s.moves++
		if _, err := s.c.MoveVM(ctx, cand.name, p.Host, p.Socket,
			s.cfg.DirtyPages, s.cfg.Seed+s.moves*7919); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}
