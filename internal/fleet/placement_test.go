package fleet

import (
	"errors"
	"testing"

	"repro/internal/geometry"
)

// synthViews builds a two-host fleet view from per-socket free-node sizes:
// sizes[host][socket] lists each unowned node's free bytes (MiB).
func synthViews(sizes [][][]uint64) []HostView {
	var out []HostView
	id := 0
	for hi, host := range sizes {
		hv := HostView{Host: hostName(hi)}
		for si, nodes := range host {
			sv := SocketView{Socket: si}
			for _, mib := range nodes {
				sv.Nodes = append(sv.Nodes, NodeView{
					ID:         id,
					FreeBytes:  mib * geometry.MiB,
					TotalBytes: mib * geometry.MiB,
				})
				id++
			}
			hv.Sockets = append(hv.Sockets, sv)
		}
		out = append(out, hv)
	}
	return out
}

func hostName(i int) string { return []string{"host-0", "host-1", "host-2"}[i] }

func TestPoliciesDiverge(t *testing.T) {
	// host-0 socket 0: two 64 MiB nodes (128 free, strands 0 for a 64 MiB
	// ask). host-1 socket 0: one 96 MiB node (96 free, strands 32).
	views := synthViews([][][]uint64{
		{{64, 64}},
		{{96}},
	})
	req := Request{Name: "x", GuestBytes: 64 * geometry.MiB}

	ff, err := FirstFit{}.Place(req, views)
	if err != nil || ff.Host != "host-0" {
		t.Fatalf("first-fit: %+v, %v (want host-0)", ff, err)
	}
	bf, err := BestFit{}.Place(req, views)
	if err != nil || bf.Host != "host-1" {
		t.Fatalf("best-fit: %+v, %v (want host-1, slack 32 < 64)", bf, err)
	}
	sa, err := SilozAware{}.Place(req, views)
	if err != nil || sa.Host != "host-0" {
		t.Fatalf("siloz-aware: %+v, %v (want host-0, strands 0 < 32)", sa, err)
	}
}

func TestSilozAwareConsolidates(t *testing.T) {
	// Both sockets strand 0 for a 64 MiB ask; the fuller one (less free)
	// wins so empty sockets stay whole for big VMs.
	views := synthViews([][][]uint64{
		{{64, 64, 64}, {64}},
	})
	p, err := SilozAware{}.Place(Request{Name: "x", GuestBytes: 64 * geometry.MiB}, views)
	if err != nil || p.Socket != 1 {
		t.Fatalf("siloz-aware: %+v, %v (want socket 1, the fuller one)", p, err)
	}
}

func TestPlacementRespectsDrainingAndExcludes(t *testing.T) {
	views := synthViews([][][]uint64{
		{{64}},
		{{64}},
		{{64}},
	})
	views[0].Draining = true
	req := Request{Name: "x", GuestBytes: 64 * geometry.MiB,
		ExcludeHosts: map[string]bool{"host-1": true}}
	for _, pol := range Policies() {
		p, err := pol.Place(req, views)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if p.Host != "host-2" {
			t.Fatalf("%s placed on %s; draining/excluded hosts are inadmissible", pol.Name(), p.Host)
		}
	}
}

func TestPlacementHostAffinity(t *testing.T) {
	views := synthViews([][][]uint64{
		{{64}},
		{{64}},
	})
	req := Request{Name: "x", GuestBytes: 64 * geometry.MiB, Host: "host-1"}
	p, err := FirstFit{}.Place(req, views)
	if err != nil || p.Host != "host-1" {
		t.Fatalf("affinity ignored: %+v, %v", p, err)
	}
}

func TestPlacementOwnedNodesExcluded(t *testing.T) {
	views := synthViews([][][]uint64{{{64, 64}}})
	views[0].Sockets[0].Nodes[0].Owned = true
	views[0].Sockets[0].Nodes[0].FreeBytes = 64 * geometry.MiB // free but exclusive
	_, err := BestFit{}.Place(Request{Name: "x", GuestBytes: 128 * geometry.MiB}, views)
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("owned node counted as capacity: %v", err)
	}
}

func TestConsume(t *testing.T) {
	views := synthViews([][][]uint64{{{64, 64, 64}}})
	Consume(views, Placement{Host: "host-0", Socket: 0}, 96*geometry.MiB)
	sv := views[0].Sockets[0]
	if !sv.Nodes[0].Owned || !sv.Nodes[1].Owned || sv.Nodes[2].Owned {
		t.Fatalf("greedy consumption wrong: %+v", sv.Nodes)
	}
	if got := sv.FreeBytes(); got != 64*geometry.MiB {
		t.Fatalf("remaining capacity %d MiB, want 64", got/geometry.MiB)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, want := range []string{"first-fit", "best-fit", "siloz-aware"} {
		p, err := PolicyByName(want)
		if err != nil || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", want, p, err)
		}
	}
	if _, err := PolicyByName("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
