package fleet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/migrate"
)

// Op is one queued lifecycle operation on a host. Ops on the same VM run
// strictly in submission order, one at a time — the queue is the lifecycle
// latch. Ops on different VMs may interleave when the host runs more than
// one worker.
type Op struct {
	seq  uint64
	key  string // VM name (or a reserved key for host-wide work)
	kind string // "create", "destroy", "resize", "move", "defrag"
	fn   func() error

	err  error
	done chan struct{}
}

// Kind returns the operation's kind label.
func (o *Op) Kind() string { return o.kind }

// Wait blocks until the op completes (returning its error) or the context
// is canceled. The op still runs to completion after a canceled Wait —
// cancellation abandons the wait, not the work.
func (o *Op) Wait(ctx context.Context) error {
	select {
	case <-o.done:
		return o.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the op's error; valid only after done (Wait returned nil or
// the op's own error).
func (o *Op) Err() error { return o.err }

// defragKey serializes host-wide defragmentation against itself. The NUL
// prefix cannot collide with a VM name.
const defragKey = "\x00defrag"

// Host is one simulated machine: a booted hypervisor (its own
// numa.Registry, allocators, and DRAM — state is sharded per host, nothing
// is global), a migrate planner/engine over it, and an event loop of per-VM
// operation queues.
//
// Serialization contract: the loop dispatches at most one op per key at a
// time, in per-key FIFO order; across keys it always picks the runnable op
// with the lowest global sequence number. With Workers=1 (the default)
// execution is therefore totally ordered by submission — the configuration
// every deterministic experiment uses — while Workers>1 keeps only the
// per-VM ordering guarantee, which is what the race tests exercise.
type Host struct {
	name    string
	hv      *core.Hypervisor
	planner *migrate.Planner
	engine  *migrate.Engine

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Op // per-key FIFO, head is next to run
	running  map[string]bool  // keys with an op currently executing
	nextSeq  uint64
	inflight int // queued + executing ops
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// HostOptions tunes one host.
type HostOptions struct {
	// Workers is the event-loop worker count; <= 0 means 1 (serial,
	// deterministic dispatch).
	Workers int
	// MigrateOpt tunes the migrate engine's pre-copy loops.
	MigrateOpt core.MigrateOptions
}

// NewHost boots a hypervisor and starts its event loop.
func NewHost(name string, cfg core.Config, mode core.Mode, opt HostOptions) (*Host, error) {
	hv, err := core.Boot(cfg, mode)
	if err != nil {
		return nil, fmt.Errorf("fleet: boot host %q: %w", name, err)
	}
	h := &Host{
		name:    name,
		hv:      hv,
		planner: migrate.NewPlanner(hv),
		engine:  migrate.NewEngine(hv),
		queues:  make(map[string][]*Op),
		running: make(map[string]bool),
	}
	h.engine.Opt = opt.MigrateOpt
	h.cond = sync.NewCond(&h.mu)
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	h.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go h.worker()
	}
	return h, nil
}

// Name returns the host's fleet-wide name.
func (h *Host) Name() string { return h.name }

// Hypervisor returns the host's hypervisor shard.
func (h *Host) Hypervisor() *core.Hypervisor { return h.hv }

// Planner returns the host's occupancy planner.
func (h *Host) Planner() *migrate.Planner { return h.planner }

// Engine returns the host's audited migration engine.
func (h *Host) Engine() *migrate.Engine { return h.engine }

// SetDraining marks the host as draining (or not): a draining host accepts
// no create ops; destroys, resizes, and outbound moves still run so the
// drain can complete.
func (h *Host) SetDraining(v bool) {
	h.mu.Lock()
	h.draining = v
	h.mu.Unlock()
}

// Draining reports whether the host is draining.
func (h *Host) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Submit enqueues an operation on the given key's queue and returns
// immediately. Create ops are rejected while the host drains.
func (h *Host) Submit(key, kind string, fn func() error) (*Op, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("fleet: host %q: %w", h.name, ErrClosed)
	}
	if h.draining && kind == "create" {
		return nil, fmt.Errorf("fleet: host %q: %w", h.name, ErrHostDraining)
	}
	op := &Op{seq: h.nextSeq, key: key, kind: kind, fn: fn, done: make(chan struct{})}
	h.nextSeq++
	h.queues[key] = append(h.queues[key], op)
	h.inflight++
	h.cond.Broadcast()
	return op, nil
}

// SubmitCreate enqueues a VM creation.
func (h *Host) SubmitCreate(proc core.Process, spec core.VMSpec) (*Op, error) {
	return h.Submit(spec.Name, "create", func() error {
		_, err := h.hv.CreateVM(proc, spec)
		return err
	})
}

// SubmitDestroy enqueues a VM teardown (scrub + release).
func (h *Host) SubmitDestroy(name string) (*Op, error) {
	return h.Submit(name, "destroy", func() error {
		return h.hv.DestroyVM(name)
	})
}

// SubmitResize enqueues a resize to targetBytes of usable RAM.
func (h *Host) SubmitResize(name string, targetBytes uint64) (*Op, error) {
	return h.Submit(name, "resize", func() error {
		_, err := h.hv.ResizeVM(name, targetBytes)
		return err
	})
}

// SubmitDefragment enqueues a host-wide defragmentation pass through the
// migrate engine (bounded at maxMoves). onDone, if non-nil, receives the
// reports before the op completes.
func (h *Host) SubmitDefragment(ctx context.Context, maxMoves int, onDone func([]*core.MigrateReport)) (*Op, error) {
	return h.Submit(defragKey, "defrag", func() error {
		reps, err := h.engine.Defragment(ctx, maxMoves)
		if onDone != nil {
			onDone(reps)
		}
		return err
	})
}

// worker is one event-loop goroutine: pick the runnable op with the lowest
// sequence number, run it outside the lock, repeat.
func (h *Host) worker() {
	defer h.wg.Done()
	for {
		h.mu.Lock()
		var op *Op
		for {
			op = h.nextLocked()
			if op != nil {
				break
			}
			if h.closed {
				h.mu.Unlock()
				return
			}
			h.cond.Wait()
		}
		// Pop the head of its queue and mark the key busy.
		q := h.queues[op.key][1:]
		if len(q) == 0 {
			delete(h.queues, op.key)
		} else {
			h.queues[op.key] = q
		}
		h.running[op.key] = true
		h.mu.Unlock()

		op.err = op.fn()

		h.mu.Lock()
		delete(h.running, op.key)
		h.inflight--
		h.cond.Broadcast()
		h.mu.Unlock()
		close(op.done)
	}
}

// nextLocked returns the lowest-sequence head op of any non-busy queue, or
// nil. Caller holds h.mu.
func (h *Host) nextLocked() *Op {
	var best *Op
	for key, q := range h.queues {
		if h.running[key] {
			continue
		}
		if head := q[0]; best == nil || head.seq < best.seq {
			best = head
		}
	}
	return best
}

// Quiesce blocks until every submitted op has completed (or ctx cancels).
// The experiment driver calls it between churn phases so placement views
// are never stale when decisions are made.
func (h *Host) Quiesce(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.inflight > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		h.cond.Wait()
	}
	return nil
}

// Close drains the queues, stops the workers, and shuts the hypervisor
// down. Submits after Close fail with ErrClosed.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
	h.wg.Wait()
	h.hv.Shutdown()
}
