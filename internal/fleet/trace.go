package fleet

import (
	"fmt"
	"math/rand"
)

// TraceConfig parameterizes the deterministic churn-trace generator. The
// whole trace is a pure function of the config — same config, same trace,
// byte for byte — so experiment output is reproducible at any parallelism.
type TraceConfig struct {
	// Seed drives every random draw.
	Seed int64
	// Rounds is the trace length in scheduler rounds.
	Rounds int
	// ArrivalsPerRound is how many VMs arrive each round.
	ArrivalsPerRound int
	// VMSizes are the guest RAM sizes drawn uniformly.
	VMSizes []uint64
	// MinLifetime/MaxLifetime bound a VM's stay, in rounds (inclusive).
	MinLifetime, MaxLifetime int
	// ResizeProb is the chance a VM schedules one mid-life resize to a
	// different size from VMSizes.
	ResizeProb float64
}

// Arrival is one traced VM: when it arrives, how big it is, when it
// departs, and an optional mid-life resize.
type Arrival struct {
	// Round is the arrival round.
	Round int
	// Name is the VM's fleet-unique name.
	Name string
	// Bytes is the requested guest RAM; MinBytes the balloon floor.
	Bytes    uint64
	MinBytes uint64
	// DepartRound is when the VM leaves (after that round's arrivals).
	DepartRound int
	// ResizeRound, when >= 0, schedules a resize to ResizeBytes.
	ResizeRound int
	ResizeBytes uint64
}

// GenerateTrace precomputes the full churn trace from the config.
func GenerateTrace(cfg TraceConfig) []Arrival {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MinLifetime <= 0 {
		cfg.MinLifetime = 1
	}
	if cfg.MaxLifetime < cfg.MinLifetime {
		cfg.MaxLifetime = cfg.MinLifetime
	}
	var out []Arrival
	id := 0
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < cfg.ArrivalsPerRound; i++ {
			size := cfg.VMSizes[rng.Intn(len(cfg.VMSizes))]
			life := cfg.MinLifetime + rng.Intn(cfg.MaxLifetime-cfg.MinLifetime+1)
			a := Arrival{
				Round:       round,
				Name:        fmt.Sprintf("vm-%05d", id),
				Bytes:       size,
				MinBytes:    minSize(cfg.VMSizes),
				DepartRound: round + life,
				ResizeRound: -1,
			}
			if cfg.ResizeProb > 0 && rng.Float64() < cfg.ResizeProb && life > 1 {
				target := cfg.VMSizes[rng.Intn(len(cfg.VMSizes))]
				if target != size {
					a.ResizeRound = round + 1 + rng.Intn(life-1)
					a.ResizeBytes = target
				}
			}
			out = append(out, a)
			id++
		}
	}
	return out
}

func minSize(sizes []uint64) uint64 {
	m := sizes[0]
	for _, s := range sizes[1:] {
		if s < m {
			m = s
		}
	}
	return m
}
