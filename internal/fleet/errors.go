// Package fleet is the control plane above the single-host hypervisor: a
// multi-host simulator where VMs arrive, resize, and depart under traced
// churn. Each simulated host shards its own numa.Registry and hypervisor
// state behind a Host handle whose event loop (per-VM operation queues)
// replaces the per-VM lifecycle latch as the serialization point; an
// admission/placement service bin-packs subarray-group nodes across sockets
// and hosts behind a Policy interface; and a Scheduler drains hot hosts and
// defragments cold ones through the existing migrate.Planner/Engine.
package fleet

import "errors"

// Sentinel errors, matched with errors.Is (the core.ErrResizeBusy
// convention): callers branch on the failure class, wrappers add context.
var (
	// ErrNoPlacement means no isolation-respecting placement exists for a
	// request: no socket on any admissible host has enough unowned
	// subarray-group capacity. The fleet's typed admission rejection.
	ErrNoPlacement = errors.New("fleet: no isolation-respecting placement")
	// ErrHostDraining rejects work submitted to a host being drained by
	// the migration scheduler: it accepts no new VMs.
	ErrHostDraining = errors.New("fleet: host is draining")
	// ErrUnknownHost names a host the cluster does not manage.
	ErrUnknownHost = errors.New("fleet: unknown host")
	// ErrUnknownVM names a VM the cluster has no placement record for.
	ErrUnknownVM = errors.New("fleet: unknown vm")
	// ErrVMMigrating rejects operations on a VM while a cross-host move
	// is in flight (its domain momentarily spans two hosts).
	ErrVMMigrating = errors.New("fleet: vm is migrating between hosts")
	// ErrClosed rejects operations on a closed host or cluster.
	ErrClosed = errors.New("fleet: closed")
)
