package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
)

// TestAdmitRejectionIsTyped checks the ErrNoPlacement contract end to end:
// a full cluster rejects with an error the caller can classify with
// errors.Is, per the core.ErrResizeBusy sentinel convention.
func TestAdmitRejectionIsTyped(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 1, FirstFit{}, 0)

	// 14 guest nodes of 64 MiB; a 448 MiB VM takes one full socket.
	for i := 0; i < 2; i++ {
		admit(t, c, fmt.Sprintf("big-%d", i), 448*geometry.MiB)
	}
	_, err := c.Admit(ctx, testProc(), core.VMSpec{Name: "overflow", MemoryBytes: 64 * geometry.MiB})
	if err == nil {
		t.Fatal("admission into a full cluster succeeded")
	}
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("rejection not typed ErrNoPlacement: %v", err)
	}
	if errors.Is(err, ErrHostDraining) {
		t.Fatalf("rejection matches the wrong sentinel: %v", err)
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Rejected)
	}
}

func TestHostDrainingIsTyped(t *testing.T) {
	c := testCluster(t, 1, FirstFit{}, 0)
	h := c.Hosts()[0]
	h.SetDraining(true)
	_, err := h.SubmitCreate(testProc(), core.VMSpec{Name: "x", MemoryBytes: 64 * geometry.MiB})
	if !errors.Is(err, ErrHostDraining) {
		t.Fatalf("create on draining host: %v, want ErrHostDraining", err)
	}
	if errors.Is(err, ErrNoPlacement) {
		t.Fatalf("error matches the wrong sentinel: %v", err)
	}
	// Non-create work still runs on a draining host.
	op, err := h.Submit("x", "destroy", func() error { return nil })
	if err != nil {
		t.Fatalf("non-create op rejected on draining host: %v", err)
	}
	if err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownSentinels(t *testing.T) {
	c := testCluster(t, 1, FirstFit{}, 0)
	if _, err := c.SubmitDepart("ghost"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("depart ghost: %v, want ErrUnknownVM", err)
	}
	if _, err := c.SubmitResize("ghost", 64*geometry.MiB); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("resize ghost: %v, want ErrUnknownVM", err)
	}
	if _, err := c.HostOf("ghost"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("HostOf ghost: %v, want ErrUnknownVM", err)
	}
	if _, err := c.Host("mars"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("Host mars: %v, want ErrUnknownHost", err)
	}
	if _, err := c.MoveVM(context.Background(), "ghost", "host-0", 0, 0, 0); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("move ghost: %v, want ErrUnknownVM", err)
	}
}

func TestClosedIsTyped(t *testing.T) {
	c, err := New(Config{Hosts: 1, Core: labCoreConfig()})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Admit(context.Background(), testProc(),
		core.VMSpec{Name: "x", MemoryBytes: 64 * geometry.MiB}); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close: %v, want ErrClosed", err)
	}
	if _, err := c.Hosts()[0].Submit("x", "op", func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}
