package fleet

import (
	"context"
	"strings"
	"testing"
)

// Tests for the move-window audit: a cross-host move legitimately holds one
// VM on two hosts between routing commit and source destroy, and the audit
// must (a) accept exactly that pair and (b) reject anything looser —
// pre-fix it skipped the routing check entirely for moving VMs and missed
// third-copy double ownership.

// TestAuditPassesInsideMoveWindow audits from inside the double-ownership
// window itself: after the routing table flips to the destination but
// before the source copy is destroyed, both copies are live and the audit
// must still pass.
func TestAuditPassesInsideMoveWindow(t *testing.T) {
	c := testCluster(t, 2, FirstFit{}, 0)
	admit(t, c, "w0", 64*1024*1024)
	ctx := context.Background()

	probed := map[string]bool{}
	c.SetMoveProbe(func(stage, vm string) {
		probed[stage] = true
		// Both copies are live right now ("committed": routing already
		// points at the destination, source not yet destroyed).
		if err := c.AuditIsolation(); err != nil {
			t.Errorf("audit inside %q window: %v", stage, err)
		}
	})
	if _, err := c.MoveVM(ctx, "w0", "host-1", 1, 2, 11); err != nil {
		t.Fatal(err)
	}
	if !probed["copied"] || !probed["committed"] {
		t.Fatalf("move probes fired = %v, want copied and committed", probed)
	}
	if err := c.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditRejectsCopyOutsideMoveWindow hand-opens a bogus move window: the
// recorded pair does not include the host the VM actually lives on, so the
// "mid-move" excuse must not cover it.
func TestAuditRejectsCopyOutsideMoveWindow(t *testing.T) {
	c := testCluster(t, 3, FirstFit{}, 0)
	admit(t, c, "x0", 64*1024*1024) // FirstFit lands it on host-0
	c.mu.Lock()
	c.moving["x0"] = moveWindow{Src: "host-1", Dst: "host-2"}
	c.mu.Unlock()
	err := c.AuditIsolation()
	if err == nil || !strings.Contains(err.Error(), "outside its move window") {
		t.Fatalf("audit accepted a live copy outside the move window: %v", err)
	}
	c.mu.Lock()
	delete(c.moving, "x0")
	c.mu.Unlock()
}

// TestAuditRejectsRoutingOutsideMoveWindow: a mid-move VM routed to a host
// that is neither source nor destination is a routing-table corruption the
// pre-fix audit silently skipped.
func TestAuditRejectsRoutingOutsideMoveWindow(t *testing.T) {
	c := testCluster(t, 3, FirstFit{}, 0)
	admit(t, c, "y0", 64*1024*1024)
	c.mu.Lock()
	c.moving["y0"] = moveWindow{Src: "host-0", Dst: "host-1"}
	c.vmHost["y0"] = "host-2"
	c.mu.Unlock()
	err := c.AuditIsolation()
	if err == nil || !strings.Contains(err.Error(), "routed to host-2 outside its move window") {
		t.Fatalf("audit accepted mid-move routing outside the window: %v", err)
	}
	c.mu.Lock()
	c.vmHost["y0"] = "host-0"
	delete(c.moving, "y0")
	c.mu.Unlock()
}

// TestAuditRejectsDuplicateWithoutMove: the same name live on two hosts
// with no move in flight is double ownership, full stop.
func TestAuditRejectsDuplicateWithoutMove(t *testing.T) {
	c := testCluster(t, 2, FirstFit{}, 0)
	admit(t, c, "z0", 64*1024*1024)
	// Boot a same-named twin directly on host-1, bypassing the cluster.
	h1 := c.Hosts()[1]
	vm0, ok := c.Hosts()[0].Hypervisor().VM("z0")
	if !ok {
		t.Fatal("z0 not on host-0")
	}
	if _, err := h1.Hypervisor().CreateVM(testProc(), vm0.Spec()); err != nil {
		t.Fatal(err)
	}
	err := c.AuditIsolation()
	if err == nil || !strings.Contains(err.Error(), "live on multiple hosts") {
		t.Fatalf("audit accepted duplicate VM with no move in flight: %v", err)
	}
	if err := h1.Hypervisor().DestroyVM("z0"); err != nil {
		t.Fatal(err)
	}
}
