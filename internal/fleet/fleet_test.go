package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/geometry"
)

// labGeometry is the fleet test box: 8 subarray groups of 64 MiB per
// socket, carving into 1 host + 1 EPT + 7 guest nodes per socket (14 guest
// nodes, 896 MiB of guest capacity per host).
func labGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     4096,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// labProfile strips the DRAM transforms so subarray groups form without
// padding; disturbance physics is irrelevant to control-plane tests.
func labProfile() dram.Profile {
	p := dram.ProfileF()
	p.Transforms = addr.TransformConfig{}
	return p
}

func labCoreConfig() core.Config {
	return core.Config{Geometry: labGeometry(), Profiles: []dram.Profile{labProfile()}}
}

func testProc() core.Process { return core.Process{CGroup: "kvm", KVMPrivileged: true} }

func testCluster(t testing.TB, hosts int, policy Policy, workers int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Hosts:   hosts,
		Core:    labCoreConfig(),
		Policy:  policy,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func admit(t *testing.T, c *Cluster, name string, bytes uint64) string {
	t.Helper()
	host, err := c.Admit(context.Background(), testProc(), core.VMSpec{
		Name: name, MemoryBytes: bytes, MinMemoryBytes: 64 * geometry.MiB, VCPUs: 1,
	})
	if err != nil {
		t.Fatalf("admit %s (%d MiB): %v", name, bytes/geometry.MiB, err)
	}
	return host
}

func TestClusterAdmitDepart(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 2, FirstFit{}, 0)

	hosts := map[string]int{}
	for i := 0; i < 6; i++ {
		h := admit(t, c, fmt.Sprintf("vm-%d", i), 128*geometry.MiB)
		hosts[h]++
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatalf("audit after admissions: %v", err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// 6 VMs × 2 nodes each.
	if m.OwnedNodes != 12 || m.VMs != 6 {
		t.Fatalf("metrics: owned=%d vms=%d, want 12/6", m.OwnedNodes, m.VMs)
	}
	if m.GuestNodes != 2*14 {
		t.Fatalf("guest nodes = %d, want 28", m.GuestNodes)
	}
	if got, err := c.HostOf("vm-0"); err != nil || got == "" {
		t.Fatalf("HostOf(vm-0) = %q, %v", got, err)
	}

	// Depart everything asynchronously, then quiesce.
	for i := 0; i < 6; i++ {
		if _, err := c.SubmitDepart(fmt.Sprintf("vm-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatalf("audit after departures: %v", err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.OwnedNodes != 0 || m.VMs != 0 || m.StrandedBytes != 0 {
		t.Fatalf("after depart: owned=%d vms=%d stranded=%d, want all 0",
			m.OwnedNodes, m.VMs, m.StrandedBytes)
	}
	s := c.Stats()
	if s.Admitted != 6 || s.Departed != 6 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestClusterResize(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 1, FirstFit{}, 0)
	admit(t, c, "r0", 128*geometry.MiB)

	op, err := c.SubmitResize("r0", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(ctx); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Metrics()
	if m.OwnedNodes != 1 {
		t.Fatalf("after shrink to 64 MiB: owned nodes = %d, want 1", m.OwnedNodes)
	}
	op, err = c.SubmitResize("r0", 128*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(ctx); err != nil {
		t.Fatalf("grow: %v", err)
	}
	m, _ = c.Metrics()
	if m.OwnedNodes != 2 {
		t.Fatalf("after grow to 128 MiB: owned nodes = %d, want 2", m.OwnedNodes)
	}
}

func TestCrossHostMove(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 2, FirstFit{}, 0)
	src := admit(t, c, "mv0", 128*geometry.MiB)
	if src != "host-0" {
		t.Fatalf("first-fit placed on %s, want host-0", src)
	}

	// Stamp guest memory so the copy is observable.
	vm, _ := c.Hosts()[0].Hypervisor().VM("mv0")
	stamp := []byte("fleet cross-host migration payload")
	if err := vm.WriteGuest(3*geometry.PageSize2M+512, stamp); err != nil {
		t.Fatal(err)
	}

	rep, err := c.MoveVM(ctx, "mv0", "host-1", 1, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesCopied == 0 || rep.BytesCopied == 0 {
		t.Fatalf("no pages copied: %+v", rep)
	}
	if rep.DowntimeBytes == 0 {
		t.Fatalf("dirty injection should make stop-and-copy non-empty: %+v", rep)
	}
	if got, _ := c.HostOf("mv0"); got != "host-1" {
		t.Fatalf("routing after move: %s, want host-1", got)
	}
	if _, stillThere := c.Hosts()[0].Hypervisor().VM("mv0"); stillThere {
		t.Fatal("source copy not destroyed")
	}
	dvm, ok := c.Hosts()[1].Hypervisor().VM("mv0")
	if !ok {
		t.Fatal("dest copy missing")
	}
	buf := make([]byte, len(stamp))
	if err := dvm.ReadGuest(3*geometry.PageSize2M+512, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(stamp) {
		t.Fatalf("payload lost in move: %q", buf)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.CrossMoves != 1 || s.DowntimeBytes != rep.DowntimeBytes {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBalloonedCrossHostMove(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 2, FirstFit{}, 0)
	admit(t, c, "b0", 192*geometry.MiB)

	vm, _ := c.Hosts()[0].Hypervisor().VM("b0")
	stamp := []byte("ballooned payload")
	if err := vm.WriteGuest(geometry.PageSize2M+64, stamp); err != nil {
		t.Fatal(err)
	}
	op, err := c.SubmitResize("b0", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := c.MoveVM(ctx, "b0", "host-1", 0, 2, 7); err != nil {
		t.Fatal(err)
	}
	dvm, ok := c.Hosts()[1].Hypervisor().VM("b0")
	if !ok {
		t.Fatal("dest copy missing")
	}
	if got := dvm.Spec().MemoryBytes - dvm.BalloonedBytes(); got != 64*geometry.MiB {
		t.Fatalf("dest usable = %d MiB, want 64", got/geometry.MiB)
	}
	buf := make([]byte, len(stamp))
	if err := dvm.ReadGuest(geometry.PageSize2M+64, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(stamp) {
		t.Fatalf("payload lost: %q", buf)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerShedsHotHost(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 2, SilozAware{}, 0)
	// Load host-0 to 12/14 owned nodes (util 0.857 > 0.75); host-1 idle.
	// First-fit-style loading via explicit per-host placement: admit with
	// a FirstFit cluster policy would already stack host-0, but be
	// explicit about intent — admit through the cluster and verify.
	for i := 0; i < 6; i++ {
		op, err := c.Hosts()[0].SubmitCreate(testProc(), core.VMSpec{
			Name: fmt.Sprintf("hot-%d", i), MemoryBytes: 128 * geometry.MiB,
			Socket: i % 2, VCPUs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		c.mu.Lock()
		c.vmHost[fmt.Sprintf("hot-%d", i)] = "host-0"
		c.procs[fmt.Sprintf("hot-%d", i)] = testProc()
		c.mu.Unlock()
	}

	s := NewScheduler(c, SchedulerConfig{MaxCrossMoves: 3, Seed: 5})
	rep, err := s.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HotHosts != 1 {
		t.Fatalf("hot hosts = %d, want 1", rep.HotHosts)
	}
	if rep.CrossMoves == 0 {
		t.Fatalf("scheduler shed nothing: %+v", rep)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Metrics()
	util0 := m.Hosts[0].Utilization()
	if util0 > 0.86 {
		t.Fatalf("host-0 still at %.2f utilization", util0)
	}
	if m.Hosts[1].VMs == 0 {
		t.Fatal("nothing landed on host-1")
	}
}

func TestSchedulerDrainHost(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 2, BestFit{}, 0)
	admit(t, c, "d0", 64*geometry.MiB)
	admit(t, c, "d1", 128*geometry.MiB)

	s := NewScheduler(c, SchedulerConfig{Seed: 9})
	srcName, _ := c.HostOf("d0")
	moved, err := s.DrainHost(ctx, srcName)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("drain moved nothing")
	}
	src, _ := c.Host(srcName)
	if !src.Draining() {
		t.Fatal("host not marked draining after drain")
	}
	if n := len(src.Hypervisor().VMs()); n != 0 {
		t.Fatalf("%d VMs left on drained host", n)
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
	// A draining host admits nothing directly...
	_, err = src.SubmitCreate(testProc(), core.VMSpec{Name: "nope", MemoryBytes: 64 * geometry.MiB})
	if !errors.Is(err, ErrHostDraining) {
		t.Fatalf("create on draining host: %v, want ErrHostDraining", err)
	}
	// ...but the cluster still admits elsewhere.
	admit(t, c, "d2", 64*geometry.MiB)
	if got, _ := c.HostOf("d2"); got == srcName {
		t.Fatalf("admission landed on the draining host %s", got)
	}
}

func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{
		Seed: 31, Rounds: 10, ArrivalsPerRound: 7,
		VMSizes:     []uint64{64 * geometry.MiB, 128 * geometry.MiB},
		MinLifetime: 1, MaxLifetime: 3, ResizeProb: 0.3,
	}
	a, b := GenerateTrace(cfg), GenerateTrace(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different traces")
	}
	if len(a) != 70 {
		t.Fatalf("trace length %d, want 70", len(a))
	}
	cfg.Seed = 32
	if reflect.DeepEqual(a, GenerateTrace(cfg)) {
		t.Fatal("different seeds produced identical traces")
	}
	resizes := 0
	for _, ar := range a {
		if ar.DepartRound <= ar.Round {
			t.Fatalf("%s departs round %d before arriving round %d", ar.Name, ar.DepartRound, ar.Round)
		}
		if ar.ResizeRound >= 0 {
			resizes++
			if ar.ResizeRound <= ar.Round || ar.ResizeRound >= ar.DepartRound {
				t.Fatalf("%s resize round %d outside (%d, %d)", ar.Name, ar.ResizeRound, ar.Round, ar.DepartRound)
			}
			if ar.ResizeBytes == ar.Bytes {
				t.Fatalf("%s resizes to its own size", ar.Name)
			}
		}
	}
	if resizes == 0 {
		t.Fatal("ResizeProb 0.3 scheduled no resizes")
	}
}

func TestHostEventLoopOrdering(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 1, FirstFit{}, 0)
	h := c.Hosts()[0]

	// Ops on one key run in submission order even when queued together.
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := h.Submit("k", "op", func() error {
			order = append(order, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("per-key order violated: %v", order)
	}
}
