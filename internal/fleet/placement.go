package fleet

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
)

// Request is one placement problem: a VM needing GuestBytes of
// subarray-group-backed RAM somewhere in the fleet.
type Request struct {
	// Name identifies the VM (for error context only).
	Name string
	// GuestBytes is the capacity demanded from guest-reserved nodes
	// (migrate.GuestBytes of the spec).
	GuestBytes uint64
	// Host, when non-empty, restricts placement to that host (used when
	// re-placing a specific eviction).
	Host string
	// ExcludeHosts are hosts the placement must avoid (the source of an
	// eviction, hot hosts during a rebalance).
	ExcludeHosts map[string]bool
}

// NodeView is one guest-reserved node as the placement service sees it.
type NodeView struct {
	ID    int
	Owned bool
	// FreeBytes is the node's huge-page capacity — what a guest
	// reservation can actually consume (free 2 MiB pages × 2 MiB).
	FreeBytes uint64
	// TotalBytes is the node's full size.
	TotalBytes uint64
}

// SocketView is one socket's guest-reserved nodes, in node-ID order.
type SocketView struct {
	Socket int
	Nodes  []NodeView
}

// FreeBytes is the socket's unowned huge-page capacity — what a new
// reservation can draw on (owned nodes are exclusive to their VM).
func (s SocketView) FreeBytes() uint64 {
	var b uint64
	for _, n := range s.Nodes {
		if !n.Owned {
			b += n.FreeBytes
		}
	}
	return b
}

// HostView is one host's placement state, sockets in socket order.
type HostView struct {
	Host     string
	Draining bool
	Sockets  []SocketView
}

// Policy places requests onto (host, socket) pairs given the fleet view.
// Implementations must be deterministic: the same request against the same
// views yields the same placement.
type Policy interface {
	// Name is the policy's registry key.
	Name() string
	// Place returns a placement or an error wrapping ErrNoPlacement.
	Place(req Request, views []HostView) (Placement, error)
}

// Placement is a policy's decision.
type Placement struct {
	Host   string
	Socket int
}

// admissible reports whether a host may receive the request at all.
func admissible(req Request, hv HostView) bool {
	if hv.Draining {
		return false
	}
	if req.Host != "" && req.Host != hv.Host {
		return false
	}
	return !req.ExcludeHosts[hv.Host]
}

// noPlacement builds the typed rejection.
func noPlacement(req Request, policy string) error {
	return fmt.Errorf("%s: %q (%d MiB): %w",
		policy, req.Name, req.GuestBytes/geometry.MiB, ErrNoPlacement)
}

// FirstFit places on the first admissible (host, socket) with enough
// unowned capacity, in view order — the cheapest policy and the most
// fragmenting one.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(req Request, views []HostView) (Placement, error) {
	for _, hv := range views {
		if !admissible(req, hv) {
			continue
		}
		for _, sv := range hv.Sockets {
			if sv.FreeBytes() >= req.GuestBytes {
				return Placement{Host: hv.Host, Socket: sv.Socket}, nil
			}
		}
	}
	return Placement{}, noPlacement(req, "first-fit")
}

// BestFit places on the admissible socket whose unowned capacity exceeds
// the request by the least — classic tightest-fit bin packing, keeping
// large contiguous capacity available for large VMs.
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Place implements Policy.
func (BestFit) Place(req Request, views []HostView) (Placement, error) {
	best := Placement{}
	var bestSlack uint64
	found := false
	for _, hv := range views {
		if !admissible(req, hv) {
			continue
		}
		for _, sv := range hv.Sockets {
			free := sv.FreeBytes()
			if free < req.GuestBytes {
				continue
			}
			slack := free - req.GuestBytes
			if !found || slack < bestSlack {
				best = Placement{Host: hv.Host, Socket: sv.Socket}
				bestSlack = slack
				found = true
			}
		}
	}
	if !found {
		return Placement{}, noPlacement(req, "best-fit")
	}
	return best, nil
}

// SilozAware places where the reservation strands the least capacity.
// Reservations take whole subarray-group nodes (exclusive ownership is the
// isolation invariant), so a 65 MiB VM on 64 MiB nodes owns two nodes and
// strands 63 MiB inside the second. The policy simulates the hypervisor's
// greedy node-ID-order reservation on every candidate socket and picks the
// (host, socket) minimizing stranded bytes; ties break toward the fuller
// socket (consolidation — empty sockets stay whole for large VMs), then
// view order.
type SilozAware struct{}

// Name implements Policy.
func (SilozAware) Name() string { return "siloz-aware" }

// Place implements Policy.
func (SilozAware) Place(req Request, views []HostView) (Placement, error) {
	best := Placement{}
	var bestStranded, bestFree uint64
	found := false
	for _, hv := range views {
		if !admissible(req, hv) {
			continue
		}
		for _, sv := range hv.Sockets {
			stranded, ok := strandedAfter(sv, req.GuestBytes)
			if !ok {
				continue
			}
			free := sv.FreeBytes()
			if !found || stranded < bestStranded ||
				(stranded == bestStranded && free < bestFree) {
				best = Placement{Host: hv.Host, Socket: sv.Socket}
				bestStranded, bestFree = stranded, free
				found = true
			}
		}
	}
	if !found {
		return Placement{}, noPlacement(req, "siloz-aware")
	}
	return best, nil
}

// strandedAfter simulates the hypervisor's reservation — unowned nodes in
// node-ID order until capacity covers need — and returns the bytes the last
// node strands. ok is false when the socket cannot hold the request.
func strandedAfter(sv SocketView, need uint64) (stranded uint64, ok bool) {
	var got uint64
	for _, n := range sv.Nodes {
		if n.Owned {
			continue
		}
		got += n.FreeBytes
		if got >= need {
			return got - need, true
		}
	}
	return 0, false
}

// Consume marks the placement's reservation on the views (greedy node-ID
// order, mirroring the hypervisor), so a batch of decisions can be planned
// against a single snapshot without each one seeing the previous one's
// capacity twice.
func Consume(views []HostView, p Placement, need uint64) {
	for hi := range views {
		if views[hi].Host != p.Host {
			continue
		}
		for si := range views[hi].Sockets {
			sv := &views[hi].Sockets[si]
			if sv.Socket != p.Socket {
				continue
			}
			var got uint64
			for ni := range sv.Nodes {
				n := &sv.Nodes[ni]
				if n.Owned || got >= need {
					continue
				}
				got += n.FreeBytes
				n.Owned = true
				n.FreeBytes = 0
			}
			return
		}
	}
}

// Policies returns every built-in policy, in canonical order.
func Policies() []Policy {
	return []Policy{FirstFit{}, BestFit{}, SilozAware{}}
}

// PolicyByName resolves a policy by its registry key.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(Policies()))
	for _, p := range Policies() {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("fleet: unknown policy %q (have %v)", name, names)
}
