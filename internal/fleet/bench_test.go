package fleet

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
)

func vmSpec(name string, bytes uint64) core.VMSpec {
	return core.VMSpec{
		Name: name, MemoryBytes: bytes, MinMemoryBytes: 64 * geometry.MiB, VCPUs: 1,
	}
}

// BenchmarkFleetAdmission measures steady-state admission throughput: one
// placement decision plus one create op through a host event loop, with the
// matching departure keeping the fleet at constant occupancy. This is the
// control-plane hot path the BENCH_*.json trajectory tracks for the fleet
// subsystem.
func BenchmarkFleetAdmission(b *testing.B) {
	ctx := context.Background()
	c, err := New(Config{Hosts: 2, Core: labCoreConfig(), Policy: SilozAware{}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	proc := core.Process{CGroup: "kvm", KVMPrivileged: true}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-%d", i)
		if _, err := c.Admit(ctx, proc, vmSpec(name, 128*geometry.MiB)); err != nil {
			b.Fatal(err)
		}
		op, err := c.SubmitDepart(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := op.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
