package fleet

import "repro/internal/geometry"

// HostMetrics is one host's capacity picture.
type HostMetrics struct {
	Host string
	// GuestNodes / OwnedNodes count the host's guest-reserved
	// subarray-group nodes and how many a VM currently owns.
	GuestNodes int
	OwnedNodes int
	// TotalGuestBytes is the host's full guest-reservable capacity;
	// OwnedBytes is the capacity inside owned nodes.
	TotalGuestBytes uint64
	OwnedBytes      uint64
	// StrandedBytes is free capacity locked inside owned nodes: the
	// owner's exclusive claim (the isolation invariant) makes it
	// unusable by any other VM — the fleet-scale cost of
	// subarray-group-granular isolation (§8.1's internal fragmentation).
	StrandedBytes uint64
	// FreeBytes is unowned huge-page capacity (admittable).
	FreeBytes uint64
	// VMs is the host's resident VM count.
	VMs int
}

// Utilization is the owned fraction of the host's guest nodes — the
// scheduler's hot/cold signal. Node-granular, not byte-granular: an owned
// node is unavailable regardless of how full it is.
func (m HostMetrics) Utilization() float64 {
	if m.GuestNodes == 0 {
		return 0
	}
	return float64(m.OwnedNodes) / float64(m.GuestNodes)
}

// FleetMetrics aggregates every host.
type FleetMetrics struct {
	Hosts []HostMetrics
	// Totals across hosts.
	GuestNodes      int
	OwnedNodes      int
	TotalGuestBytes uint64
	OwnedBytes      uint64
	StrandedBytes   uint64
	FreeBytes       uint64
	VMs             int
}

// Utilization is the fleet-wide owned-node fraction.
func (m *FleetMetrics) Utilization() float64 {
	if m.GuestNodes == 0 {
		return 0
	}
	return float64(m.OwnedNodes) / float64(m.GuestNodes)
}

// StrandedFraction is stranded bytes over total guest capacity.
func (m *FleetMetrics) StrandedFraction() float64 {
	if m.TotalGuestBytes == 0 {
		return 0
	}
	return float64(m.StrandedBytes) / float64(m.TotalGuestBytes)
}

// Metrics samples the fleet's capacity state. Call between quiesced phases
// for a consistent snapshot.
func (c *Cluster) Metrics() (*FleetMetrics, error) {
	out := &FleetMetrics{}
	for _, h := range c.hosts {
		occ, err := h.Planner().Occupancy()
		if err != nil {
			return nil, err
		}
		hm := HostMetrics{Host: h.Name(), VMs: len(h.Hypervisor().VMs())}
		for _, o := range occ {
			hm.GuestNodes++
			hm.TotalGuestBytes += o.TotalBytes
			if o.Owner != "" {
				hm.OwnedNodes++
				hm.OwnedBytes += o.TotalBytes
				// Byte-accurate free space, not huge-page capacity:
				// fragmented tails are stranded too.
				hm.StrandedBytes += o.FreeBytes
			} else {
				hm.FreeBytes += uint64(o.FreePages2M) * geometry.PageSize2M
			}
		}
		out.Hosts = append(out.Hosts, hm)
		out.GuestNodes += hm.GuestNodes
		out.OwnedNodes += hm.OwnedNodes
		out.TotalGuestBytes += hm.TotalGuestBytes
		out.OwnedBytes += hm.OwnedBytes
		out.StrandedBytes += hm.StrandedBytes
		out.FreeBytes += hm.FreeBytes
		out.VMs += hm.VMs
	}
	return out, nil
}
