package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/geometry"
)

// TestConcurrentFleetChurn hammers the control plane from many goroutines:
// simultaneous admissions, departures, resizes, and a host drain, with the
// fleet-wide isolation audit after every round. Hosts run multi-worker
// event loops, so per-VM queue serialization — not driver ordering — is
// what keeps the invariants. Wired into `make race-quick`.
func TestConcurrentFleetChurn(t *testing.T) {
	ctx := context.Background()
	c := testCluster(t, 3, BestFit{}, 3)
	sched := NewScheduler(c, SchedulerConfig{Seed: 17, MaxCrossMoves: 2})

	const rounds = 4
	const perRound = 9
	var prev []string
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var admitted []string
		errc := make(chan error, perRound+len(prev))

		// Concurrent admissions.
		for i := 0; i < perRound; i++ {
			name := fmt.Sprintf("c%d-%d", round, i)
			size := uint64(64+64*(i%3)) * geometry.MiB
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := c.Admit(ctx, testProc(), vmSpec(name, size))
				if err != nil {
					if errors.Is(err, ErrNoPlacement) {
						return // legitimate under contention
					}
					errc <- fmt.Errorf("admit %s: %w", name, err)
					return
				}
				mu.Lock()
				admitted = append(admitted, name)
				mu.Unlock()
			}()
		}
		// Concurrent departures of the previous round, racing the
		// admissions above.
		for _, name := range prev {
			wg.Add(1)
			go func() {
				defer wg.Done()
				op, err := c.SubmitDepart(name)
				if err != nil {
					errc <- fmt.Errorf("depart %s: %w", name, err)
					return
				}
				if err := op.Wait(ctx); err != nil {
					errc <- fmt.Errorf("depart %s: %w", name, err)
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}

		// Concurrent resizes of this round's survivors.
		var rwg sync.WaitGroup
		rerrc := make(chan error, len(admitted))
		for i, name := range admitted {
			if i%2 != 0 {
				continue
			}
			wg.Add(1)
			rwg.Add(1)
			go func() {
				defer wg.Done()
				defer rwg.Done()
				op, err := c.SubmitResize(name, 64*geometry.MiB)
				if err != nil {
					rerrc <- fmt.Errorf("resize %s: %w", name, err)
					return
				}
				if err := op.Wait(ctx); err != nil {
					rerrc <- fmt.Errorf("resize %s: %w", name, err)
				}
			}()
		}
		rwg.Wait()
		close(rerrc)
		for err := range rerrc {
			t.Fatal(err)
		}

		if err := c.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		// A scheduler round in the middle of the churn.
		if round == 1 {
			if _, err := sched.Round(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.AuditIsolation(); err != nil {
			t.Fatalf("round %d audit: %v", round, err)
		}
		prev = admitted
	}

	// Drain the survivors and verify the fleet comes back empty.
	for _, name := range prev {
		op, err := c.SubmitDepart(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AuditIsolation(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.OwnedNodes != 0 || m.VMs != 0 {
		t.Fatalf("fleet not empty after churn: %d owned nodes, %d VMs", m.OwnedNodes, m.VMs)
	}
}
