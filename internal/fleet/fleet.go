package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/migrate"
)

// Config parameterizes a cluster.
type Config struct {
	// Hosts is the number of simulated machines.
	Hosts int
	// HostPrefix names hosts "<prefix>-<i>"; default "host".
	HostPrefix string
	// Core is the per-host boot configuration. Every host boots the same
	// box; the first host's computed subarray layout is cached and reused
	// for the rest, so an N-host cluster pays one grouping pass.
	Core core.Config
	// Policy is the placement policy; nil means SilozAware.
	Policy Policy
	// Workers is each host's event-loop worker count; <= 0 means 1
	// (serial dispatch, the deterministic configuration).
	Workers int
	// MigrateOpt tunes every host's migration engine.
	MigrateOpt core.MigrateOptions
	// CopyGiBps is the modeled cross-host page-copy bandwidth; downtime
	// is reported as bytes/bandwidth, never wall clock. Default 10.
	CopyGiBps float64
	// AdmitRetries bounds re-placement attempts when a host rejects an
	// admission the stale fleet view predicted would fit. Default 3.
	AdmitRetries int
}

// Stats is a snapshot of the cluster's lifetime counters.
type Stats struct {
	Admitted    uint64
	Rejected    uint64
	Departed    uint64
	Resized     uint64
	CrossMoves  uint64 // completed cross-host migrations
	DefragMoves uint64 // completed intra-host defrag migrations
	// MigratedBytes counts pre-copy bytes over both kinds of move;
	// DowntimeBytes counts only bytes copied while the guest was paused.
	MigratedBytes uint64
	DowntimeBytes uint64
}

// DowntimeMs converts the paused-copy byte count into modeled milliseconds
// at the given bandwidth.
func (s Stats) DowntimeMs(copyGiBps float64) float64 {
	if copyGiBps <= 0 {
		return 0
	}
	return float64(s.DowntimeBytes) / (copyGiBps * float64(geometry.GiB)) * 1e3
}

// Cluster is the fleet control plane: per-host hypervisor shards behind
// Host handles, a placement policy, and the VM→host routing table.
type Cluster struct {
	cfg    Config
	hosts  []*Host
	byName map[string]*Host
	policy Policy

	mu     sync.Mutex
	vmHost map[string]string       // routing table
	procs  map[string]core.Process // creating process, kept for re-creation on move
	moving map[string]moveWindow   // vm -> open cross-host move window
	stats  Stats
	closed bool

	// moveProbe, when set, is invoked at named points inside MoveVM (see
	// SetMoveProbe). Test/experiment hook; nil in production.
	moveProbe func(stage, vm string)
}

// moveWindow records the two hosts a mid-move VM may legitimately span: the
// source (whose copy still exists until the post-commit destroy) and the
// destination (whose twin exists from the moment it boots). The audit uses
// it to bound double-ownership to exactly this pair — a mid-move VM
// observed anywhere else is a containment failure, not a transient.
type moveWindow struct {
	Src string
	Dst string
}

// SetMoveProbe installs a hook invoked synchronously at named points inside
// MoveVM: "copied" after the source pre-copy completes (routing still
// points at the source), and "committed" after the routing table flips to
// the destination but before the source copy is destroyed — the
// double-ownership window. The probe runs on the caller's goroutine with no
// cluster locks held, so it may submit ops and audit freely.
func (c *Cluster) SetMoveProbe(p func(stage, vm string)) { c.moveProbe = p }

func (c *Cluster) probeMove(stage, vm string) {
	if c.moveProbe != nil {
		c.moveProbe(stage, vm)
	}
}

// New boots cfg.Hosts identical hosts and starts their event loops. Only
// Siloz mode is supported: placement reasons about guest-reserved
// subarray-group nodes, which the baseline does not carve.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("fleet: need at least 1 host, got %d", cfg.Hosts)
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "host"
	}
	if cfg.Policy == nil {
		cfg.Policy = SilozAware{}
	}
	if cfg.CopyGiBps <= 0 {
		cfg.CopyGiBps = 10
	}
	if cfg.AdmitRetries <= 0 {
		cfg.AdmitRetries = 3
	}
	c := &Cluster{
		cfg:    cfg,
		byName: make(map[string]*Host),
		policy: cfg.Policy,
		vmHost: make(map[string]string),
		procs:  make(map[string]core.Process),
		moving: make(map[string]moveWindow),
	}
	opt := HostOptions{Workers: cfg.Workers, MigrateOpt: cfg.MigrateOpt}
	var layout bytes.Buffer
	for i := 0; i < cfg.Hosts; i++ {
		hcfg := cfg.Core
		if layout.Len() > 0 {
			hcfg.CachedLayout = bytes.NewReader(layout.Bytes())
		}
		h, err := NewHost(fmt.Sprintf("%s-%d", cfg.HostPrefix, i), hcfg, core.ModeSiloz, opt)
		if err != nil {
			c.Close()
			return nil, err
		}
		if i == 0 {
			if l := h.Hypervisor().Layout(); l != nil {
				if err := l.Save(&layout); err != nil {
					layout.Reset()
				}
			}
		}
		c.hosts = append(c.hosts, h)
		c.byName[h.Name()] = h
	}
	return c, nil
}

// Hosts returns the cluster's hosts in boot order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Host resolves a host by name.
func (c *Cluster) Host(name string) (*Host, error) {
	h, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownHost)
	}
	return h, nil
}

// Policy returns the cluster's placement policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Stats returns a snapshot of the lifetime counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HostOf returns the host currently running the VM.
func (c *Cluster) HostOf(name string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.vmHost[name]
	if !ok {
		return "", fmt.Errorf("%q: %w", name, ErrUnknownVM)
	}
	return h, nil
}

// VMs returns the routing table's VM names, sorted.
func (c *Cluster) VMs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.vmHost))
	for name := range c.vmHost {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Views snapshots every host's guest-node occupancy for placement, hosts in
// boot order, sockets and nodes in ID order. Concurrent lifecycle ops make
// a view stale, never torn; admission handles staleness by retrying.
func (c *Cluster) Views() ([]HostView, error) {
	out := make([]HostView, 0, len(c.hosts))
	for _, h := range c.hosts {
		occ, err := h.Planner().Occupancy()
		if err != nil {
			return nil, fmt.Errorf("fleet: occupancy of %q: %w", h.Name(), err)
		}
		hv := HostView{Host: h.Name(), Draining: h.Draining()}
		bySocket := map[int]*SocketView{}
		var sockets []int
		for _, o := range occ {
			s := o.Node.Socket
			sv, ok := bySocket[s]
			if !ok {
				sv = &SocketView{Socket: s}
				bySocket[s] = sv
				sockets = append(sockets, s)
			}
			sv.Nodes = append(sv.Nodes, NodeView{
				ID:         o.Node.ID,
				Owned:      o.Owner != "",
				FreeBytes:  uint64(o.FreePages2M) * geometry.PageSize2M,
				TotalBytes: o.TotalBytes,
			})
		}
		sort.Ints(sockets)
		for _, s := range sockets {
			sv := bySocket[s]
			sort.Slice(sv.Nodes, func(i, j int) bool { return sv.Nodes[i].ID < sv.Nodes[j].ID })
			hv.Sockets = append(hv.Sockets, *sv)
		}
		out = append(out, hv)
	}
	return out, nil
}

// Admit places and creates a VM, synchronously: the placement decision and
// the creation op both complete before it returns. On a capacity race (the
// view went stale between Place and the create op) it excludes nothing and
// simply re-places against a fresh view, bounded by AdmitRetries. A
// placement failure returns an error wrapping ErrNoPlacement; the caller
// distinguishes rejection (errors.Is) from infrastructure failure.
func (c *Cluster) Admit(ctx context.Context, proc core.Process, spec core.VMSpec) (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrClosed
	}
	if _, dup := c.vmHost[spec.Name]; dup {
		c.mu.Unlock()
		return "", fmt.Errorf("fleet: admit %q: name already placed", spec.Name)
	}
	c.mu.Unlock()

	req := Request{Name: spec.Name, GuestBytes: migrate.GuestBytes(spec)}
	var lastErr error
	for attempt := 0; attempt < c.cfg.AdmitRetries; attempt++ {
		views, err := c.Views()
		if err != nil {
			return "", err
		}
		p, err := c.policy.Place(req, views)
		if err != nil {
			c.mu.Lock()
			c.stats.Rejected++
			c.mu.Unlock()
			return "", fmt.Errorf("fleet: admit: %w", err)
		}
		h := c.byName[p.Host]
		s := spec
		s.Socket = p.Socket
		op, err := h.SubmitCreate(proc, s)
		if err != nil {
			if errors.Is(err, ErrHostDraining) {
				// The host started draining after the view was taken;
				// exclude it and try elsewhere.
				if req.ExcludeHosts == nil {
					req.ExcludeHosts = make(map[string]bool)
				}
				req.ExcludeHosts[p.Host] = true
				lastErr = err
				continue
			}
			return "", err
		}
		if err := op.Wait(ctx); err != nil {
			if errors.Is(err, core.ErrCapacityExhausted) {
				lastErr = err // stale view; re-place
				continue
			}
			return "", fmt.Errorf("fleet: admit %q on %s: %w", spec.Name, p.Host, err)
		}
		c.mu.Lock()
		c.vmHost[spec.Name] = p.Host
		c.procs[spec.Name] = proc
		c.stats.Admitted++
		c.mu.Unlock()
		return p.Host, nil
	}
	c.mu.Lock()
	c.stats.Rejected++
	c.mu.Unlock()
	return "", fmt.Errorf("fleet: admit %q after %d attempts (%v): %w",
		spec.Name, c.cfg.AdmitRetries, lastErr, ErrNoPlacement)
}

// SubmitDepart enqueues a VM's teardown on its host and returns the op; the
// routing table entry is removed when the op completes.
func (c *Cluster) SubmitDepart(name string) (*Op, error) {
	c.mu.Lock()
	hostName, ok := c.vmHost[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("depart %q: %w", name, ErrUnknownVM)
	}
	if _, inFlight := c.moving[name]; inFlight {
		c.mu.Unlock()
		return nil, fmt.Errorf("depart %q: %w", name, ErrVMMigrating)
	}
	c.mu.Unlock()
	h := c.byName[hostName]
	return h.Submit(name, "destroy", func() error {
		if err := h.Hypervisor().DestroyVM(name); err != nil {
			return err
		}
		c.mu.Lock()
		delete(c.vmHost, name)
		delete(c.procs, name)
		c.stats.Departed++
		c.mu.Unlock()
		return nil
	})
}

// SubmitResize enqueues a resize on the VM's host and returns the op.
func (c *Cluster) SubmitResize(name string, targetBytes uint64) (*Op, error) {
	c.mu.Lock()
	hostName, ok := c.vmHost[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("resize %q: %w", name, ErrUnknownVM)
	}
	if _, inFlight := c.moving[name]; inFlight {
		c.mu.Unlock()
		return nil, fmt.Errorf("resize %q: %w", name, ErrVMMigrating)
	}
	c.mu.Unlock()
	h := c.byName[hostName]
	op, err := h.SubmitResize(name, targetBytes)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Resized++
	c.mu.Unlock()
	return op, nil
}

// Quiesce waits for every host's queues to drain.
func (c *Cluster) Quiesce(ctx context.Context) error {
	for _, h := range c.hosts {
		if err := h.Quiesce(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close drains and shuts down every host.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	for _, h := range c.hosts {
		h.Close()
	}
}
