package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geometry"
)

// CrossHostReport summarizes one completed cross-host migration.
type CrossHostReport struct {
	VM         string
	Source     string
	Dest       string
	DestSocket int
	// PagesCopied / BytesCopied cover every pre-copy round.
	PagesCopied int
	BytesCopied uint64
	// DowntimeBytes are the bytes of the final stop-and-copy round —
	// what the guest is paused for. Downtime in time units is
	// DowntimeBytes over the cluster's modeled copy bandwidth.
	DowntimeBytes uint64
}

// MoveVM migrates a VM to another host: create an equally-sized guest on
// the destination, pre-copy the source's touched pages under dirty
// tracking, stop-and-copy the residue, then destroy the source. The whole
// source side runs as ONE op on the VM's queue — the queue is the lifecycle
// latch, so no resize/destroy can interleave with the copy.
//
// dirtyPages > 0 injects that many seeded guest writes between pre-copy
// rounds, modeling a guest that keeps running during the move (and making
// the stop-and-copy round non-empty); dirtySeed makes the injection
// reproducible.
//
// Limitations (callers skip such VMs): a VM with extra Regions is not
// movable cross-host, and the source's resident pages must form a GPA
// prefix (always true for balloons inflated through core's policy, which
// surrenders highest-GPA pages first).
func (c *Cluster) MoveVM(ctx context.Context, name, destHost string, destSocket int, dirtyPages int, dirtySeed int64) (*CrossHostReport, error) {
	c.mu.Lock()
	srcName, ok := c.vmHost[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("move %q: %w", name, ErrUnknownVM)
	}
	if _, inFlight := c.moving[name]; inFlight {
		c.mu.Unlock()
		return nil, fmt.Errorf("move %q: %w", name, ErrVMMigrating)
	}
	if srcName == destHost {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: move %q: already on %s", name, destHost)
	}
	dst, ok := c.byName[destHost]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("move %q to %q: %w", name, destHost, ErrUnknownHost)
	}
	proc := c.procs[name]
	c.moving[name] = moveWindow{Src: srcName, Dst: destHost}
	c.mu.Unlock()

	src := c.byName[srcName]
	unmove := func() {
		c.mu.Lock()
		delete(c.moving, name)
		c.mu.Unlock()
	}

	srcVM, ok := src.Hypervisor().VM(name)
	if !ok {
		unmove()
		return nil, fmt.Errorf("move %q: vanished from %s: %w", name, srcName, ErrUnknownVM)
	}
	spec := srcVM.Spec()
	if len(spec.Regions) > 0 {
		unmove()
		return nil, fmt.Errorf("fleet: move %q: VMs with extra regions are not movable cross-host", name)
	}

	// Destination side: boot the twin at full spec size, then resize it
	// down to the source's current usable RAM if the source is ballooned
	// (both balloons hold the same top-of-GPA suffix afterwards).
	destSpec := spec
	destSpec.Socket = destSocket
	op, err := dst.SubmitCreate(proc, destSpec)
	if err != nil {
		unmove()
		return nil, err
	}
	if err := op.Wait(ctx); err != nil {
		unmove()
		return nil, fmt.Errorf("fleet: move %q: create on %s: %w", name, destHost, err)
	}
	destroyDest := func() {
		if op, err := dst.SubmitDestroy(name); err == nil {
			_ = op.Wait(context.Background())
		}
	}
	usable := spec.MemoryBytes - srcVM.BalloonedBytes()
	if usable < spec.MemoryBytes {
		op, err := dst.SubmitResize(name, usable)
		if err == nil {
			err = op.Wait(ctx)
		}
		if err != nil {
			destroyDest()
			unmove()
			return nil, fmt.Errorf("fleet: move %q: shrink dest to %d: %w", name, usable, err)
		}
	}
	destVM, ok := dst.Hypervisor().VM(name)
	if !ok {
		unmove()
		return nil, fmt.Errorf("move %q: dest twin vanished: %w", name, ErrUnknownVM)
	}

	// Source side, as one queued op.
	rep := &CrossHostReport{VM: name, Source: srcName, Dest: destHost, DestSocket: destSocket}
	usablePages := int(usable / geometry.PageSize2M)
	srcOp, err := src.Submit(name, "move", func() error {
		if err := srcVM.StartDirtyTracking(); err != nil {
			return err
		}
		defer srcVM.StopDirtyTracking()
		buf := make([]byte, geometry.PageSize2M)
		copyPage := func(gpa uint64) error {
			if int(gpa/geometry.PageSize2M) >= usablePages {
				return fmt.Errorf("fleet: move %q: resident page at gpa %#x beyond usable prefix (%d pages)",
					name, gpa, usablePages)
			}
			if err := srcVM.ReadGuest(gpa, buf); err != nil {
				return err
			}
			if err := destVM.WriteGuest(gpa, buf); err != nil {
				return err
			}
			rep.PagesCopied++
			rep.BytesCopied += geometry.PageSize2M
			return nil
		}
		// Round 1: every page the guest ever wrote. Untouched pages read
		// as zeros on any host and need no copy.
		for _, p := range srcVM.TouchedPages() {
			if err := copyPage(uint64(p) * geometry.PageSize2M); err != nil {
				return err
			}
		}
		// Modeled guest activity between rounds: seeded stores dirty a
		// few pages, so the stop-and-copy round below is non-empty.
		if dirtyPages > 0 && usablePages > 0 {
			rng := rand.New(rand.NewSource(dirtySeed))
			stamp := make([]byte, 64)
			for i := 0; i < dirtyPages; i++ {
				rng.Read(stamp)
				gpa := uint64(rng.Intn(usablePages)) * geometry.PageSize2M
				if err := srcVM.WriteGuest(gpa, stamp); err != nil {
					return err
				}
			}
		}
		// Stop-and-copy: drain the dirty log with the guest notionally
		// paused; these bytes are the downtime.
		dirty, err := srcVM.TakeDirty()
		if err != nil {
			return err
		}
		for _, gpa := range dirty {
			if err := copyPage(gpa); err != nil {
				return err
			}
			rep.DowntimeBytes += geometry.PageSize2M
		}
		return nil
	})
	if err != nil {
		destroyDest()
		unmove()
		return nil, err
	}
	if err := srcOp.Wait(ctx); err != nil {
		destroyDest()
		unmove()
		return nil, fmt.Errorf("fleet: move %q: source copy: %w", name, err)
	}
	c.probeMove("copied", name)

	// Commit: route to the destination, then tear the source down (its
	// pages scrub and its nodes release under the source's own queue).
	// The VM stays marked moving until the source copy is gone — the
	// cross-host audit tolerates the name on exactly {source, destination}
	// only then.
	c.mu.Lock()
	c.vmHost[name] = destHost
	c.stats.CrossMoves++
	c.stats.MigratedBytes += rep.BytesCopied
	c.stats.DowntimeBytes += rep.DowntimeBytes
	c.mu.Unlock()
	c.probeMove("committed", name)
	dropOp, err := src.Submit(name, "destroy", func() error {
		return src.Hypervisor().DestroyVM(name)
	})
	if err != nil {
		unmove()
		return rep, err
	}
	err = dropOp.Wait(ctx)
	unmove()
	if err != nil && !errors.Is(err, core.ErrVMNotFound) {
		return rep, fmt.Errorf("fleet: move %q: destroy source copy: %w", name, err)
	}
	return rep, nil
}
