package mitigation

import "testing"

// The benchmarks drive the observers with burst shapes matching what the
// memory controller emits on its hot path: single-activation misses
// spread over a working set of rows, with a nil RefreshFn (accounting
// only) to isolate observer cost from the caller's refresh handling.

func BenchmarkPARAObserve(b *testing.B) {
	m := NewPARA(DefaultPARAProbability, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.OnActivate(Activation{Bank: i & 15, Row: i & 1023, Count: 1}, nil)
	}
}

func BenchmarkSilverBulletObserve(b *testing.B) {
	m := NewSilverBullet(16, DefaultSBTableSize, DefaultSBThreshold, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.OnActivate(Activation{Bank: i & 15, Row: i & 1023, Count: 1}, nil)
	}
}

func BenchmarkTRRObserve(b *testing.B) {
	m := NewTRR(16, 4, 800)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.OnActivate(Activation{Bank: i & 15, Row: i & 1023, Count: 1}, nil)
	}
}
