// Package mitigation defines the pluggable Rowhammer-defense interface the
// simulation threads through its memory-controller/DRAM/allocator boundary,
// plus reference implementations of the competitors the Siloz paper argues
// against: PARA-style probabilistic neighbour refresh, Silver Bullet
// counter-based victim-row refresh (with its counter-exhaustion edge
// cases), CATT-style guard-banded software isolation, and the in-DRAM TRR
// sampler that previously lived inside dram.Module.
//
// A mitigation acts on one or both of two planes:
//
//   - The activation plane: the defense observes row-activation bursts
//     (OnActivate) at whatever scope it is attached to — a DRAM module's
//     banks, or a memory controller's flat bank space — and may inject
//     victim-neighbourhood refreshes back through the caller-supplied
//     RefreshFn. The DRAM model applies injected refreshes by clearing
//     accumulated disturbance; the memory controller charges them as bank
//     busy time, which is how refresh energy becomes visible slowdown.
//   - The allocation plane: the defense constrains VM placement. CATT
//     reserves guard bands between tenant extents; Siloz partitions
//     subarray groups into isolation domains. Spec exposes these as
//     capability predicates the hypervisor consults at boot and CreateVM.
//
// Implementations are deliberately not safe for concurrent use: the
// simulation attaches one instance per single-goroutine scope (one module,
// one controller run), mirroring how per-bank hardware state is private to
// its memory controller.
package mitigation

// Activation is one observed burst of row activations: Count back-to-back
// activations of media row Row in flat bank Bank, each holding the row
// open OpenNs nanoseconds (RowPress exposure). The bank index is dense
// within the attached scope — rank*banksPerRank+bank for a DRAM module,
// the controller's flattened socket-wide index for memctrl.
type Activation struct {
	Bank   int
	Row    int
	Count  int
	OpenNs int64
}

// RefreshFn receives victim-refresh directives from a mitigation: restore
// the charge of every row in the blast-radius neighbourhood of media row
// row in bank bank. Callers may pass nil when they only want overhead
// accounting (the directive is still counted by the mitigation).
type RefreshFn func(bank, row int)

// Mitigation is the activation-plane contract. OnActivate fires on every
// row-buffer miss (controller scope) or activation burst (module scope);
// OnWindowEnd fires when a 64 ms refresh window turns over, after which
// all per-window state (counters, budgets) must reset.
type Mitigation interface {
	// Name identifies the mitigation in reports ("para", "trr", ...).
	Name() string
	// OnActivate observes one burst and may inject neighbour refreshes.
	OnActivate(ev Activation, refresh RefreshFn)
	// OnWindowEnd closes the current refresh window.
	OnWindowEnd()
	// Overhead reports the cost the mitigation has accrued so far.
	Overhead() Overhead
	// Health is nil while the defense is intact; a degraded defense (e.g.
	// a Silver Bullet table past its refresh budget) returns an error
	// wrapping ErrBudgetExhausted.
	Health() error
}

// Overhead is the running cost ledger of one mitigation instance. The
// protection-vs-overhead matrix aggregates it across scopes.
type Overhead struct {
	// NeighborRefreshes counts injected victim-neighbourhood refresh
	// directives — the refresh-energy axis.
	NeighborRefreshes int
	// Exhaustions counts refresh-budget exhaustion events: windows in
	// which the defense went blind because it hit its refresh cap.
	Exhaustions int
	// BlockedBytes is capacity the mitigation makes unallocatable (guard
	// bands, offlined rows); activation-plane defenses leave it zero.
	BlockedBytes uint64
}

// Add accumulates o2 into o.
func (o *Overhead) Add(o2 Overhead) {
	o.NeighborRefreshes += o2.NeighborRefreshes
	o.Exhaustions += o2.Exhaustions
	o.BlockedBytes += o2.BlockedBytes
}

// Chain fans one observation stream out to several mitigations (a module's
// built-in TRR plus an attached experimental defense). It reports the sum
// of their overheads and the first degraded member's health.
type Chain []Mitigation

// Name implements Mitigation.
func (c Chain) Name() string {
	if len(c) == 1 {
		return c[0].Name()
	}
	name := "chain"
	for _, m := range c {
		name += "+" + m.Name()
	}
	return name
}

// OnActivate implements Mitigation.
func (c Chain) OnActivate(ev Activation, refresh RefreshFn) {
	for _, m := range c {
		m.OnActivate(ev, refresh)
	}
}

// OnWindowEnd implements Mitigation.
func (c Chain) OnWindowEnd() {
	for _, m := range c {
		m.OnWindowEnd()
	}
}

// Overhead implements Mitigation.
func (c Chain) Overhead() Overhead {
	var o Overhead
	for _, m := range c {
		o.Add(m.Overhead())
	}
	return o
}

// Health implements Mitigation.
func (c Chain) Health() error {
	for _, m := range c {
		if err := m.Health(); err != nil {
			return err
		}
	}
	return nil
}
