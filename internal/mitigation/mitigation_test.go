package mitigation

import (
	"testing"
)

// record captures refresh directives.
type record struct {
	banks, rows []int
}

func (r *record) fn() RefreshFn {
	return func(bank, row int) {
		r.banks = append(r.banks, bank)
		r.rows = append(r.rows, row)
	}
}

func TestPARARefreshRateTracksProbability(t *testing.T) {
	p := NewPARA(0.01, 7)
	var rec record
	const acts = 200_000
	p.OnActivate(Activation{Bank: 0, Row: 5, Count: acts}, rec.fn())
	got := p.Overhead().NeighborRefreshes
	want := int(0.01 * acts)
	if got < want/2 || got > want*2 {
		t.Fatalf("PARA refreshes = %d, want ~%d", got, want)
	}
	if len(rec.rows) == 0 || rec.rows[0] != 5 || rec.banks[0] != 0 {
		t.Fatalf("refresh directives = %v/%v, want row 5 bank 0", rec.banks, rec.rows)
	}
	if err := p.Health(); err != nil {
		t.Fatalf("PARA health = %v, want nil", err)
	}
}

func TestPARADeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		p := NewPARA(0.005, seed)
		for i := 0; i < 50; i++ {
			p.OnActivate(Activation{Bank: i % 4, Row: i, Count: 1000}, nil)
		}
		return p.Overhead().NeighborRefreshes
	}
	if a, b := run(3), run(3); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a, b := run(3), run(4); a == b {
		t.Logf("different seeds coincided at %d (possible but unlikely)", a)
	}
}

func TestSilverBulletFiresAtThreshold(t *testing.T) {
	sb := NewSilverBullet(2, 8, 1000, 0)
	var rec record
	sb.OnActivate(Activation{Bank: 1, Row: 40, Count: 999}, rec.fn())
	if n := sb.Overhead().NeighborRefreshes; n != 0 {
		t.Fatalf("refresh fired below threshold: %d", n)
	}
	sb.OnActivate(Activation{Bank: 1, Row: 40, Count: 1}, rec.fn())
	if n := sb.Overhead().NeighborRefreshes; n != 1 {
		t.Fatalf("refreshes = %d, want 1 at threshold", n)
	}
	if len(rec.rows) != 1 || rec.rows[0] != 40 || rec.banks[0] != 1 {
		t.Fatalf("directive = %v/%v, want bank 1 row 40", rec.banks, rec.rows)
	}
	// Counter reset after firing: another sub-threshold burst stays quiet.
	sb.OnActivate(Activation{Bank: 1, Row: 40, Count: 999}, rec.fn())
	if n := sb.Overhead().NeighborRefreshes; n != 1 {
		t.Fatalf("counter not reset after fire: refreshes = %d", n)
	}
}

func TestSilverBulletSafeEviction(t *testing.T) {
	sb := NewSilverBullet(1, 2, 10_000, 0)
	var rec record
	sb.OnActivate(Activation{Bank: 0, Row: 10, Count: 5}, rec.fn())
	sb.OnActivate(Activation{Bank: 0, Row: 20, Count: 9}, rec.fn())
	// Table full; a third aggressor must evict the lowest counter (row
	// 10) and refresh its neighbourhood first — the safe-eviction rule.
	sb.OnActivate(Activation{Bank: 0, Row: 30, Count: 1}, rec.fn())
	if n := sb.Overhead().NeighborRefreshes; n != 1 {
		t.Fatalf("refreshes = %d, want 1 safe-eviction refresh", n)
	}
	if len(rec.rows) != 1 || rec.rows[0] != 10 {
		t.Fatalf("evicted row = %v, want 10 (lowest counter)", rec.rows)
	}
}

func TestSilverBulletBudgetExhaustionGoesBlind(t *testing.T) {
	sb := NewSilverBullet(1, 8, 100, 1)
	var rec record
	sb.OnActivate(Activation{Bank: 0, Row: 1, Count: 100}, rec.fn())
	sb.OnActivate(Activation{Bank: 0, Row: 2, Count: 100}, rec.fn())
	sb.OnActivate(Activation{Bank: 0, Row: 3, Count: 100}, rec.fn())
	ov := sb.Overhead()
	if ov.NeighborRefreshes != 1 {
		t.Fatalf("refreshes = %d, want 1 (budget capped)", ov.NeighborRefreshes)
	}
	if ov.Exhaustions != 1 {
		t.Fatalf("exhaustions = %d, want 1 (single event per bank-window)", ov.Exhaustions)
	}
	if len(rec.rows) != 1 {
		t.Fatalf("directives = %v, want only the budgeted one", rec.rows)
	}
	// A new window restores the budget but the health record persists.
	sb.OnWindowEnd()
	sb.OnActivate(Activation{Bank: 0, Row: 4, Count: 100}, rec.fn())
	if n := sb.Overhead().NeighborRefreshes; n != 2 {
		t.Fatalf("refreshes after window reset = %d, want 2", n)
	}
	if err := sb.Health(); err == nil {
		t.Fatal("Health = nil after exhaustion, want wrapped ErrBudgetExhausted")
	}
}

func TestTRRFiresAtInterval(t *testing.T) {
	trr := NewTRR(2, 4, 1000)
	var rec record
	trr.OnActivate(Activation{Bank: 1, Row: 7, Count: 999}, rec.fn())
	if n := trr.Overhead().NeighborRefreshes; n != 0 {
		t.Fatalf("TRR fired below interval: %d", n)
	}
	trr.OnActivate(Activation{Bank: 1, Row: 9, Count: 1}, rec.fn())
	// Interval reached: both sampled rows refresh.
	if n := trr.Overhead().NeighborRefreshes; n != 2 {
		t.Fatalf("refreshes = %d, want 2 (both sampled rows)", n)
	}
	for _, b := range rec.banks {
		if b != 1 {
			t.Fatalf("directive banks = %v, want all bank 1", rec.banks)
		}
	}
}

func TestTRRDecoyPinning(t *testing.T) {
	// Heavy decoys fill the table; a later true aggressor with smaller
	// bursts cannot displace them — the Blacksmith weakness.
	trr := NewTRR(1, 2, 1_000_000)
	trr.OnActivate(Activation{Bank: 0, Row: 1, Count: 500}, nil)
	trr.OnActivate(Activation{Bank: 0, Row: 2, Count: 500}, nil)
	trr.OnActivate(Activation{Bank: 0, Row: 3, Count: 100}, nil)
	if _, ok := trr.tables[0].Get(3); ok {
		t.Fatal("small aggressor displaced a heavier decoy")
	}
	trr.OnActivate(Activation{Bank: 0, Row: 4, Count: 900}, nil)
	if _, ok := trr.tables[0].Get(4); !ok {
		t.Fatal("larger burst failed to displace the table minimum")
	}
	if _, ok := trr.tables[0].Get(1); ok {
		t.Fatal("displacement evicted the wrong entry")
	}
}

func TestChainAggregates(t *testing.T) {
	ch := Chain{NewPARA(1, 1), NewTRR(1, 2, 10)}
	var rec record
	ch.OnActivate(Activation{Bank: 0, Row: 3, Count: 10}, rec.fn())
	ov := ch.Overhead()
	// PARA at p=1 wins all 10 flips; TRR fires at interval 10 with one
	// sampled row.
	if ov.NeighborRefreshes != 11 {
		t.Fatalf("chain refreshes = %d, want 11", ov.NeighborRefreshes)
	}
	if err := ch.Health(); err != nil {
		t.Fatalf("chain health = %v, want nil", err)
	}
	ch.OnWindowEnd()
	if got := ch.Name(); got != "chain+para+trr" {
		t.Fatalf("chain name = %q", got)
	}
}

func TestSpecDefaultsAndValidation(t *testing.T) {
	for _, k := range Kinds() {
		s := For(k)
		if err := s.Validate(); err != nil {
			t.Fatalf("default spec %v invalid: %v", k, err)
		}
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if err := (Spec{Kind: KindPARA, PARAProbability: 2}).Validate(); err == nil {
		t.Fatal("probability 2 validated")
	}
	if err := (Spec{Kind: KindSilverBullet, SBRefreshBudget: -1}).Validate(); err == nil {
		t.Fatal("negative budget validated")
	}
}

func TestSpecRowDefensePlanes(t *testing.T) {
	if d, err := For(KindNone).RowDefense(4, 1); d != nil || err != nil {
		t.Fatalf("none row defense = %v, %v; want nil, nil", d, err)
	}
	d, err := For(KindPARA).RowDefense(4, 1)
	if err != nil || d == nil || d.Name() != "para" {
		t.Fatalf("para row defense = %v, %v", d, err)
	}
	d, err = For(KindSilverBullet).RowDefense(4, 1)
	if err != nil || d == nil || d.Name() != "silver-bullet" {
		t.Fatalf("silver-bullet row defense = %v, %v", d, err)
	}
}

func TestScopeSeedSpacing(t *testing.T) {
	if ScopeSeed(10, 0) != 10 || ScopeSeed(10, 2) != 10+2*7919 {
		t.Fatalf("scope seeds = %d, %d", ScopeSeed(10, 0), ScopeSeed(10, 2))
	}
}
