package mitigation

import (
	"fmt"
)

// Kind names one mitigation family.
type Kind int

const (
	// KindNone is the undefended baseline (in-DRAM TRR only when the
	// DIMM profile provides it).
	KindNone Kind = iota
	// KindPARA is probabilistic adjacent-row activation: every
	// activation refreshes the aggressor's neighbourhood with a small
	// probability p.
	KindPARA
	// KindSilverBullet is counter-based victim-row refresh: per-bank
	// aggressor counters trigger a proactive neighbourhood refresh at a
	// threshold, with safe eviction when the table fills and an optional
	// per-window refresh budget (whose exhaustion blinds the defense).
	KindSilverBullet
	// KindCATT is software-only isolation by allocation policy: guard
	// bands of unallocatable rows between tenant memory extents, wide
	// enough to absorb the blast radius.
	KindCATT
	// KindSiloz is the paper's subarray-group isolation: each tenant's
	// unmediated memory confined to private subarray groups exposed as
	// logical NUMA nodes, with boundary guard rows offlined.
	KindSiloz
)

// String returns the kind's registry/report name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPARA:
		return "para"
	case KindSilverBullet:
		return "silver-bullet"
	case KindCATT:
		return "catt"
	case KindSiloz:
		return "siloz"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every kind in canonical (matrix-row) order.
func Kinds() []Kind {
	return []Kind{KindNone, KindPARA, KindSilverBullet, KindCATT, KindSiloz}
}

// ParseKind resolves a kind name; unknown names wrap ErrUnsupported.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown kind %q", ErrUnsupported, name)
}

// scopeSeedSalt spaces per-scope seeds, matching the experiment
// scheduler's per-rep salt so streams never collide across layers.
const scopeSeedSalt = 7919

// ScopeSeed derives the deterministic seed for one attachment scope (one
// DRAM module, one controller run) from a spec's base seed.
func ScopeSeed(base int64, scope int) int64 { return base + int64(scope)*scopeSeedSalt }

// Spec is a buildable mitigation configuration: the kind plus its tuning
// parameters. The zero value is KindNone. Specs are plain data so they can
// sit in core.Config and experiment configs without import cycles.
type Spec struct {
	// Kind selects the mitigation family.
	Kind Kind
	// Seed bases every per-scope RNG stream (PARA's coin flips).
	Seed int64

	// PARAProbability is PARA's per-activation refresh probability p;
	// 0 means DefaultPARAProbability.
	PARAProbability float64

	// SBTableSize is Silver Bullet's per-bank counter-table capacity;
	// 0 means DefaultSBTableSize.
	SBTableSize int
	// SBThreshold is the counter value that triggers a proactive
	// neighbourhood refresh; 0 means DefaultSBThreshold. It must sit
	// well below the DIMM's Rowhammer threshold.
	SBThreshold float64
	// SBRefreshBudget caps proactive refreshes per bank per refresh
	// window; 0 keeps the budget unlimited, negative is invalid. A
	// too-small budget reproduces the counter-exhaustion edge case.
	SBRefreshBudget int

	// CATTGuardRows is the guard band width in DRAM rows on each side of
	// a tenant extent; 0 means DefaultCATTGuardRows (the modelled blast
	// radius).
	CATTGuardRows int
}

// Default tuning values.
const (
	DefaultPARAProbability = 1.0 / 500
	DefaultSBTableSize     = 16
	DefaultSBThreshold     = 1250
	DefaultCATTGuardRows   = 2
)

// For returns the default Spec of a kind.
func For(k Kind) Spec { return Spec{Kind: k}.WithDefaults() }

// WithDefaults fills zero tuning fields with their defaults.
func (s Spec) WithDefaults() Spec {
	if s.PARAProbability == 0 {
		s.PARAProbability = DefaultPARAProbability
	}
	if s.SBTableSize == 0 {
		s.SBTableSize = DefaultSBTableSize
	}
	if s.SBThreshold == 0 {
		s.SBThreshold = DefaultSBThreshold
	}
	if s.CATTGuardRows == 0 {
		s.CATTGuardRows = DefaultCATTGuardRows
	}
	return s
}

// Name returns the spec's row label.
func (s Spec) Name() string { return s.Kind.String() }

// Validate rejects out-of-range tuning values.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	switch s.Kind {
	case KindNone, KindPARA, KindSilverBullet, KindCATT, KindSiloz:
	default:
		return fmt.Errorf("%w: %v", ErrUnsupported, s.Kind)
	}
	if s.PARAProbability <= 0 || s.PARAProbability > 1 {
		return fmt.Errorf("mitigation: PARA probability %v out of (0,1]", s.PARAProbability)
	}
	if s.SBTableSize < 1 {
		return fmt.Errorf("mitigation: Silver Bullet table size must be >= 1, got %d", s.SBTableSize)
	}
	if s.SBThreshold <= 0 {
		return fmt.Errorf("mitigation: Silver Bullet threshold must be positive, got %v", s.SBThreshold)
	}
	if s.SBRefreshBudget < 0 {
		return fmt.Errorf("mitigation: Silver Bullet refresh budget must be >= 0, got %d", s.SBRefreshBudget)
	}
	if s.CATTGuardRows < 1 {
		return fmt.Errorf("mitigation: CATT guard rows must be >= 1, got %d", s.CATTGuardRows)
	}
	return nil
}

// HasRowDefense reports whether the kind acts on the activation plane
// (builds per-scope RowDefense instances).
func (s Spec) HasRowDefense() bool {
	return s.Kind == KindPARA || s.Kind == KindSilverBullet
}

// GuardsAllocations reports whether the kind acts on the allocation plane
// by reserving guard bands around tenant extents (CATT).
func (s Spec) GuardsAllocations() bool { return s.Kind == KindCATT }

// IsolatesSubarrayGroups reports whether the kind is the Siloz allocation
// policy: subarray-group isolation domains with boundary guard rows.
func (s Spec) IsolatesSubarrayGroups() bool { return s.Kind == KindSiloz }

// RowDefense builds the activation-plane instance for a scope of banks,
// seeded by seed (derive it with ScopeSeed so parallel scopes stay
// deterministic). KindNone returns (nil, nil): nothing to attach. Pure
// allocation-plane kinds return ErrUnsupported — they have no activation
// hook, and asking for one is a caller bug the sentinel makes typed.
func (s Spec) RowDefense(banks int, seed int64) (Mitigation, error) {
	s = s.WithDefaults()
	if banks <= 0 {
		return nil, fmt.Errorf("mitigation: scope must have at least one bank, got %d", banks)
	}
	switch s.Kind {
	case KindNone:
		return nil, nil
	case KindPARA:
		return NewPARA(s.PARAProbability, seed), nil
	case KindSilverBullet:
		return NewSilverBullet(banks, s.SBTableSize, s.SBThreshold, s.SBRefreshBudget), nil
	default:
		return nil, fmt.Errorf("%w: %v has no activation-plane row defense", ErrUnsupported, s.Kind)
	}
}
