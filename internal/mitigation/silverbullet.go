package mitigation

import (
	"fmt"

	"repro/internal/rowcount"
)

// SilverBullet implements counter-based victim-row refresh (Yağlıkçı et
// al., arXiv 2106.07084): each bank keeps a bounded table of aggressor
// activation counters; a counter crossing the threshold triggers a
// proactive refresh of that aggressor's neighbourhood and resets the
// counter. Two edge cases from the security analysis are modelled
// faithfully:
//
//   - Safe eviction: when the table is full, the lowest-count entry is
//     evicted only after its neighbourhood is refreshed — otherwise an
//     attacker rotating more aggressors than table entries could hammer
//     an evicted row's victims untracked. Safe evictions draw from the
//     same refresh budget, so decoy-heavy (Blacksmith-style) patterns
//     translate table pressure into refresh cost.
//   - Budget exhaustion: a per-bank, per-window refresh budget models the
//     bounded refresh bandwidth of a real controller. Once a bank's
//     budget is spent the defense goes blind for the rest of the window;
//     the event is counted and surfaced through Health as a wrapped
//     ErrBudgetExhausted.
type SilverBullet struct {
	size      int
	threshold float64
	budget    int // per bank per window; 0 = unlimited

	tables []rowcount.Table[float64]
	spent  []int
	blind  []bool // bank exhausted this window

	// Lifetime ledgers, sharded by bank like the tables so parallel
	// single-goroutine-per-bank callers never share a counter word.
	fired     []int
	exhausted []int
}

// NewSilverBullet builds a Silver Bullet instance for a scope of banks.
func NewSilverBullet(banks, tableSize int, threshold float64, budget int) *SilverBullet {
	return &SilverBullet{
		size:      tableSize,
		threshold: threshold,
		budget:    budget,
		tables:    make([]rowcount.Table[float64], banks),
		spent:     make([]int, banks),
		blind:     make([]bool, banks),
		fired:     make([]int, banks),
		exhausted: make([]int, banks),
	}
}

// Name implements Mitigation.
func (m *SilverBullet) Name() string { return "silver-bullet" }

// fire spends one refresh on row's neighbourhood in bank, unless the
// bank's window budget is exhausted — in which case the defense goes
// blind and the exhaustion is recorded. Returns whether the refresh
// actually happened.
func (m *SilverBullet) fire(bank, row int, refresh RefreshFn) bool {
	if m.budget > 0 && m.spent[bank] >= m.budget {
		if !m.blind[bank] {
			m.blind[bank] = true
			m.exhausted[bank]++
		}
		return false
	}
	m.spent[bank]++
	m.fired[bank]++
	if refresh != nil {
		refresh(bank, row)
	}
	return true
}

// OnActivate implements Mitigation.
func (m *SilverBullet) OnActivate(ev Activation, refresh RefreshFn) {
	tb := &m.tables[ev.Bank]
	if _, tracked := tb.Get(ev.Row); !tracked && tb.Len() >= m.size {
		// Table full: safe-evict the lowest-count entry. The min scan is
		// slot-order Range with a total-order tie-break, so the choice is
		// iteration-order independent.
		minRow, minC := -1, 0.0
		tb.Range(func(r int, rc float64) bool {
			if minRow == -1 || rc < minC || (rc == minC && r < minRow) {
				minRow, minC = r, rc
			}
			return true
		})
		m.fire(ev.Bank, minRow, refresh)
		tb.Delete(minRow)
	}
	if v := tb.Add(ev.Row, float64(ev.Count)); v >= m.threshold {
		m.fire(ev.Bank, ev.Row, refresh)
		tb.Delete(ev.Row)
	}
}

// OnWindowEnd implements Mitigation: the refresh window restores every
// row's charge, so counters and budgets reset. Blindness is per window,
// but past exhaustions stay in the overhead ledger and in Health.
func (m *SilverBullet) OnWindowEnd() {
	for i := range m.tables {
		m.tables[i].Reset()
		m.spent[i] = 0
		m.blind[i] = false
	}
}

// Overhead implements Mitigation.
func (m *SilverBullet) Overhead() Overhead {
	var ov Overhead
	for i := range m.fired {
		ov.NeighborRefreshes += m.fired[i]
		ov.Exhaustions += m.exhausted[i]
	}
	return ov
}

// Health implements Mitigation.
func (m *SilverBullet) Health() error {
	if n := m.Overhead().Exhaustions; n > 0 {
		return fmt.Errorf("silver bullet: defense went blind in %d bank-window(s): %w",
			n, ErrBudgetExhausted)
	}
	return nil
}
