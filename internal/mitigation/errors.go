package mitigation

import "errors"

// Sentinel errors, matched with errors.Is (the core/fleet convention):
// callers branch on the failure class, wrapping sites add context.
var (
	// ErrUnsupported reports a mitigation asked to act on a plane it does
	// not implement — building an activation-plane instance of a pure
	// allocation-plane defense (CATT, Siloz), or an unknown kind name.
	ErrUnsupported = errors.New("mitigation: operation unsupported by this mitigation")

	// ErrBudgetExhausted reports that a counter-based defense ran out of
	// refresh budget inside a window and went blind — the Silver Bullet
	// security-analysis edge case. Surfaced via Mitigation.Health.
	ErrBudgetExhausted = errors.New("mitigation: refresh budget exhausted")
)
