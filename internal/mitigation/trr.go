package mitigation

// TRR is the in-DRAM target-row-refresh sampler that used to live inside
// dram.Module, generalized behind the Mitigation interface: each bank
// samples up to tableSize aggressor rows per refresh interval, and every
// interval activations it refreshes the sampled rows' neighbourhoods and
// clears the table. The replace-lowest-only-if-larger insertion rule is
// the sampler weakness Blacksmith-class patterns exploit (§2.5): heavy
// decoy rows pin the table while true aggressors hammer unsampled.
//
// The port preserves the original module logic exactly — same insertion,
// same total-order min tie-break, same fire cadence — so fixed-seed flip
// outputs are bit-identical to the pre-refactor implementation.
import "repro/internal/rowcount"

// TRR samples aggressors per bank and periodically refreshes them. All
// state — tables, activation counters, the refresh ledger — is sharded by
// bank, matching the simulation's concurrency contract: each bank is
// touched by one goroutine at a time, banks may be touched in parallel.
type TRR struct {
	size     int
	interval int

	tables []rowcount.Table[float64]
	acts   []int
	fired  []int // per-bank injected refreshes (lifetime ledger)
}

// NewTRR builds a TRR sampler for a scope of banks with the given table
// size and refresh interval (activations between refresh events).
func NewTRR(banks, tableSize, interval int) *TRR {
	return &TRR{
		size:     tableSize,
		interval: interval,
		tables:   make([]rowcount.Table[float64], banks),
		acts:     make([]int, banks),
		fired:    make([]int, banks),
	}
}

// Name implements Mitigation.
func (m *TRR) Name() string { return "trr" }

// OnActivate implements Mitigation.
func (m *TRR) OnActivate(ev Activation, refresh RefreshFn) {
	tb := &m.tables[ev.Bank]
	c := float64(ev.Count)
	if _, ok := tb.Get(ev.Row); ok {
		tb.Add(ev.Row, c)
	} else if tb.Len() < m.size {
		tb.Add(ev.Row, c)
	} else {
		// Replace the lowest-count entry only if the incoming burst is
		// larger. The min scan is slot-order Range, but the tie-break is
		// a total order, so the result is iteration-order independent.
		minRow, minC := -1, 0.0
		tb.Range(func(r int, rc float64) bool {
			if minRow == -1 || rc < minC || (rc == minC && r < minRow) {
				minRow, minC = r, rc
			}
			return true
		})
		if c > minC {
			tb.Delete(minRow)
			tb.Add(ev.Row, c)
		}
	}
	m.acts[ev.Bank] += ev.Count
	if m.acts[ev.Bank] >= m.interval {
		tb.Range(func(row int, _ float64) bool {
			m.fired[ev.Bank]++
			if refresh != nil {
				refresh(ev.Bank, row)
			}
			return true
		})
		tb.Reset()
		m.acts[ev.Bank] = 0
	}
}

// OnWindowEnd implements Mitigation.
func (m *TRR) OnWindowEnd() {
	for i := range m.tables {
		m.tables[i].Reset()
		m.acts[i] = 0
	}
}

// Overhead implements Mitigation.
func (m *TRR) Overhead() Overhead {
	var ov Overhead
	for _, n := range m.fired {
		ov.NeighborRefreshes += n
	}
	return ov
}

// Health implements Mitigation; the sampler never degrades (its weakness
// is statistical, not stateful).
func (m *TRR) Health() error { return nil }
