package mitigation

import (
	"errors"
	"testing"
)

func TestErrUnsupportedIsMatchable(t *testing.T) {
	if _, err := ParseKind("bogus"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("ParseKind error = %v, want ErrUnsupported", err)
	}
	for _, k := range []Kind{KindCATT, KindSiloz} {
		if _, err := For(k).RowDefense(4, 1); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("RowDefense(%v) error = %v, want ErrUnsupported", k, err)
		}
	}
	if err := (Spec{Kind: Kind(99)}).Validate(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Validate(kind 99) error = %v, want ErrUnsupported", err)
	}
	// Sentinels are distinct classes.
	if errors.Is(ErrUnsupported, ErrBudgetExhausted) {
		t.Fatal("sentinels alias each other")
	}
}

func TestErrBudgetExhaustedIsMatchable(t *testing.T) {
	sb := NewSilverBullet(1, 4, 10, 1)
	sb.OnActivate(Activation{Bank: 0, Row: 1, Count: 10}, nil)
	if err := sb.Health(); err != nil {
		t.Fatalf("healthy defense reported %v", err)
	}
	sb.OnActivate(Activation{Bank: 0, Row: 2, Count: 10}, nil)
	err := sb.Health()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Health = %v, want wrapped ErrBudgetExhausted", err)
	}
	if errors.Is(err, ErrUnsupported) {
		t.Fatalf("Health = %v unexpectedly matches ErrUnsupported", err)
	}
}
