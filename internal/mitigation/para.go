package mitigation

import "math/rand"

// PARA implements probabilistic adjacent-row activation (Kim et al.,
// ISCA'14): on every activation, with probability p, the memory controller
// refreshes the activated row's neighbourhood. PARA is stateless — no
// counter tables to exhaust — so its protection-vs-energy trade-off is
// entirely in p: expected refreshes scale linearly with activation volume,
// and an aggressor slips through only if a threshold-sized run of
// activations all lose the coin flip ((1-p)^threshold).
//
// Unlike the bank-sharded table defenses, PARA draws from one seeded
// coin-flip stream per instance — that stream is what makes a scope's
// refresh schedule reproducible — so a PARA instance must be driven from
// a single goroutine at a time.
type PARA struct {
	p   float64
	rng *rand.Rand
	ov  Overhead
}

// NewPARA builds a PARA instance with per-activation probability p. The
// seed makes the coin-flip stream deterministic per scope.
func NewPARA(p float64, seed int64) *PARA {
	return &PARA{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Mitigation.
func (m *PARA) Name() string { return "para" }

// OnActivate implements Mitigation: one coin flip per activation in the
// burst. Within a single burst the directives are collapsed to one
// RefreshFn call — re-refreshing the same neighbourhood back-to-back is
// idempotent for charge — but every win is counted toward refresh energy.
func (m *PARA) OnActivate(ev Activation, refresh RefreshFn) {
	wins := 0
	for i := 0; i < ev.Count; i++ {
		if m.rng.Float64() < m.p {
			wins++
		}
	}
	if wins == 0 {
		return
	}
	m.ov.NeighborRefreshes += wins
	if refresh != nil {
		refresh(ev.Bank, ev.Row)
	}
}

// OnWindowEnd implements Mitigation; PARA holds no per-window state.
func (m *PARA) OnWindowEnd() {}

// Overhead implements Mitigation.
func (m *PARA) Overhead() Overhead { return m.ov }

// Health implements Mitigation; PARA cannot degrade.
func (m *PARA) Health() error { return nil }
