package ept

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/geometry"
	"repro/internal/subarray"

	allocpkg "repro/internal/alloc"
)

func tinyGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         1,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    2,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

func testProfile() dram.Profile {
	p := dram.ProfileF() // no TRR: deterministic flips
	p.VulnerableRowFraction = 1
	p.HammerThreshold = 1000
	p.Transforms = addr.TransformConfig{}
	return p
}

// allocAdapter exposes a buddy allocator as a PageAllocator.
type allocAdapter struct{ a *allocpkg.Allocator }

func (ad allocAdapter) AllocTablePage() (uint64, error) { return ad.a.Alloc(0) }
func (ad allocAdapter) FreeTablePage(pa uint64)         { _ = ad.a.Free(pa, 0) }

func testEnv(t *testing.T, mode IntegrityMode) (*dram.Memory, *Tables, *allocpkg.Allocator) {
	t.Helper()
	g := tinyGeometry()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{testProfile()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := allocpkg.New([]subarray.Range{{Start: 0, End: 16 << 20}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := New(mem, allocAdapter{a}, mode)
	if err != nil {
		t.Fatal(err)
	}
	return mem, tables, a
}

func TestMapAndTranslate2M(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	gpa := uint64(4 * geometry.PageSize2M)
	hpa := uint64(20 << 20)
	if err := tables.Map2M(gpa, hpa); err != nil {
		t.Fatal(err)
	}
	got, err := tables.Translate(gpa + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if got != hpa+12345 {
		t.Errorf("Translate = %#x, want %#x", got, hpa+12345)
	}
}

func TestMapAndTranslate4K(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if err := tables.Map4K(0x7000, 0x123000); err != nil {
		t.Fatal(err)
	}
	got, err := tables.Translate(0x7abc)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x123abc {
		t.Errorf("Translate = %#x, want 0x123abc", got)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if _, err := tables.Translate(0xdead000); err == nil {
		t.Error("unmapped gpa translated")
	}
}

func TestMapAlignmentChecks(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if err := tables.Map2M(4096, 0); err == nil {
		t.Error("misaligned 2M gpa accepted")
	}
	if err := tables.Map2M(0, 4096); err == nil {
		t.Error("misaligned 2M hpa accepted")
	}
	if err := tables.Map4K(1, 0); err == nil {
		t.Error("misaligned 4K gpa accepted")
	}
}

func TestMapManyPagesSharesTables(t *testing.T) {
	// 512 consecutive 2 MiB mappings fill exactly one PD: 1 root + 1
	// PDPT + 1 PD = 3 table pages (§5.4's EPT-count arithmetic).
	_, tables, _ := testEnv(t, NoProtection)
	for i := uint64(0); i < 512; i++ {
		if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tables.Pages()); got != 3 {
		t.Errorf("table pages = %d, want 3", got)
	}
	// The 513th spills into a second PD.
	if err := tables.Map2M(512*geometry.PageSize2M, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(tables.Pages()); got != 4 {
		t.Errorf("table pages = %d, want 4", got)
	}
}

func TestDoubleMapRejected(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if err := tables.Map2M(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tables.Map4K(4096, 0); err == nil {
		t.Error("4K map under an existing 2M leaf accepted")
	}
}

func TestDestroyReleasesPages(t *testing.T) {
	_, tables, a := testEnv(t, NoProtection)
	for i := uint64(0); i < 8; i++ {
		if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
			t.Fatal(err)
		}
	}
	used := a.UsedBytes()
	if used == 0 {
		t.Fatal("no pages allocated?")
	}
	tables.Destroy()
	if a.UsedBytes() != 0 {
		t.Errorf("UsedBytes = %d after Destroy", a.UsedBytes())
	}
}

// corruptEntry flips one bit of a present EPT leaf entry directly in DRAM,
// simulating a Rowhammer flip (no legitimate writeEntry involved).
func corruptEntry(t *testing.T, mem *dram.Memory, tables *Tables, gpa uint64) {
	t.Helper()
	// Walk manually to the leaf entry PA: for a 2M mapping the PD page
	// is the 3rd table page; entry index from gpa.
	pages := tables.Pages()
	pd := pages[2]
	entryPA := pd + ((gpa>>21)&0x1FF)*8
	var buf [8]byte
	if err := mem.ReadPhys(entryPA, buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[3] ^= 0x10 // flip a frame bit
	if err := mem.WritePhys(entryPA, buf[:]); err != nil {
		t.Fatal(err)
	}
}

func TestUnprotectedEPTFollowsCorruptedEntry(t *testing.T) {
	// The §5.4 threat: without integrity, a flipped EPT entry silently
	// redirects the VM to a different HPA.
	mem, tables, _ := testEnv(t, NoProtection)
	gpa := uint64(0)
	hpa := uint64(32 << 20)
	if err := tables.Map2M(gpa, hpa); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, mem, tables, gpa)
	got, err := tables.Translate(gpa)
	if err != nil {
		t.Fatal(err)
	}
	if got == hpa {
		t.Error("corruption had no effect; test is vacuous")
	}
}

func TestSecureEPTDetectsCorruption(t *testing.T) {
	mem, tables, _ := testEnv(t, SecureEPT)
	gpa := uint64(0)
	if err := tables.Map2M(gpa, 32<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := tables.Translate(gpa); err != nil {
		t.Fatalf("clean translate failed: %v", err)
	}
	corruptEntry(t, mem, tables, gpa)
	if _, err := tables.Translate(gpa); err == nil {
		t.Fatal("secure EPT missed corruption")
	}
}

func TestSecureEPTAllowsLegitimateUpdates(t *testing.T) {
	_, tables, _ := testEnv(t, SecureEPT)
	for i := uint64(0); i < 16; i++ {
		if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 16; i++ {
		hpa, err := tables.Translate(i * geometry.PageSize2M)
		if err != nil {
			t.Fatalf("translate %d: %v", i, err)
		}
		if hpa != i*geometry.PageSize2M {
			t.Errorf("translate %d = %#x", i, hpa)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[IntegrityMode]string{NoProtection: "none", SecureEPT: "secure-ept", GuardRows: "guard-rows", IntegrityMode(7): "invalid"} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q", m, got)
		}
	}
}

func TestSoftRefreshMissesDeadlines(t *testing.T) {
	// §8.3: both scheduling models miss 1 ms deadlines; the task model
	// misses nearly always (sleeps are *at least* the period) and shows
	// >32 ms gaps.
	task := SimulateSoftRefresh(DefaultSoftRefreshConfig(TaskScheduled))
	if task.MissedDeadlines == 0 {
		t.Error("task model never missed a deadline; paper observed pervasive misses")
	}
	if task.MaxGap < 32*time.Millisecond {
		t.Errorf("task model max gap %v, paper observed >32 ms", task.MaxGap)
	}
	tick := SimulateSoftRefresh(DefaultSoftRefreshConfig(TickInterrupt))
	if tick.MissedDeadlines == 0 {
		t.Error("tick model never missed a deadline; paper observed delayed/dropped ticks")
	}
	// The tick model is better but still not safe — exactly the paper's
	// conclusion motivating guard rows.
	if tick.MissRate() >= task.MissRate() {
		t.Errorf("tick miss rate %.4f should be below task miss rate %.4f", tick.MissRate(), task.MissRate())
	}
	if task.Refreshes == 0 || tick.Refreshes == 0 {
		t.Error("no refreshes simulated")
	}
}

func TestSoftRefreshDeterminism(t *testing.T) {
	cfg := DefaultSoftRefreshConfig(TaskScheduled)
	a := SimulateSoftRefresh(cfg)
	b := SimulateSoftRefresh(cfg)
	if a != b {
		t.Error("soft refresh simulation not deterministic")
	}
}

func TestUnmap(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		_, tables, _ := testEnv(t, mode)
		gpa := uint64(8 * geometry.PageSize2M)
		if err := tables.Map2M(gpa, 16<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := tables.Translate(gpa); err != nil {
			t.Fatal(err)
		}
		if err := tables.Unmap(gpa); err != nil {
			t.Fatal(err)
		}
		if _, err := tables.Translate(gpa); err == nil {
			t.Errorf("mode %v: unmapped gpa still translates", mode)
		}
		if err := tables.Unmap(gpa); err == nil {
			t.Errorf("mode %v: double unmap accepted", mode)
		}
		// The slot is reusable.
		if err := tables.Map2M(gpa, 24<<20); err != nil {
			t.Fatal(err)
		}
		hpa, err := tables.Translate(gpa)
		if err != nil || hpa != 24<<20 {
			t.Errorf("mode %v: remap translate = %#x, %v", mode, hpa, err)
		}
	}
}

func TestProtectTogglesWritePermission(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT, GuardRows} {
		t.Run(mode.String(), func(t *testing.T) {
			_, tables, _ := testEnv(t, mode)
			gpa := uint64(0)
			hpa := uint64(4 << 20)
			if err := tables.Map2M(gpa, hpa); err != nil {
				t.Fatal(err)
			}

			// Arm write protection: reads still translate, writes fault.
			if err := tables.Protect(gpa, false); err != nil {
				t.Fatal(err)
			}
			got, err := tables.TranslateAccess(gpa+123, false)
			if err != nil || got != hpa+123 {
				t.Fatalf("read translate after protect = %#x, %v", got, err)
			}
			if _, err := tables.TranslateAccess(gpa, true); !errors.Is(err, ErrPermission) {
				t.Fatalf("write through protected leaf: err = %v, want ErrPermission", err)
			}

			// Re-enable: the frame must be unchanged.
			if err := tables.Protect(gpa, true); err != nil {
				t.Fatal(err)
			}
			got, err = tables.TranslateAccess(gpa, true)
			if err != nil || got != hpa {
				t.Fatalf("write translate after unprotect = %#x, %v", got, err)
			}

			// 4 KiB leaves are protectable too.
			gpa4, hpa4 := uint64(1)<<31, uint64(8<<20)
			if err := tables.Map4K(gpa4, hpa4); err != nil {
				t.Fatal(err)
			}
			if err := tables.Protect(gpa4, false); err != nil {
				t.Fatal(err)
			}
			if _, err := tables.TranslateAccess(gpa4, true); !errors.Is(err, ErrPermission) {
				t.Fatalf("write through protected 4K leaf: err = %v", err)
			}
		})
	}
}

func TestProtectUnmappedFails(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if err := tables.Protect(1<<33, false); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("Protect of unmapped gpa: err = %v, want ErrNotMapped", err)
	}
}
