package ept

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/geometry"
	"repro/internal/subarray"

	allocpkg "repro/internal/alloc"
)

// benchTables builds a populated hierarchy for benchmarking.
func benchTables(b *testing.B, mode IntegrityMode) *Tables {
	b.Helper()
	g := tinyGeometry()
	mapper, err := addr.NewSkylakeMapper(g)
	if err != nil {
		b.Fatal(err)
	}
	mem, err := dram.NewMemory(g, mapper, []dram.Profile{testProfile()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	a, err := allocpkg.New([]subarray.Range{{Start: 0, End: 16 << 20}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := New(mem, allocAdapter{a}, mode)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

func BenchmarkTranslate2M(b *testing.B) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		b.Run(mode.String(), func(b *testing.B) {
			tables := benchTables(b, mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tables.Translate(uint64(i%16) * geometry.PageSize2M); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMap2M(b *testing.B) {
	tables := benchTables(b, NoProtection)
	for i := uint64(16); i < 416; i++ {
		if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpa := uint64(16+i%400) * geometry.PageSize2M
		if err := tables.Remap2M(gpa, gpa); err != nil {
			b.Fatal(err)
		}
	}
}
