package ept

import (
	"fmt"
	"math/rand"
	"time"
)

// This file models the alternative EPT protection the paper evaluated and
// rejected (§8.3): a SoftTRR-like software routine refreshing EPT rows every
// millisecond. The Linux scheduler cannot provide the required real-time
// guarantee — the paper observed a minimum of 1 ms between refreshes and
// gaps exceeding 32 ms — so Siloz uses guard rows instead. The simulation
// reproduces that engineering finding as a measurable experiment.

// SchedulerModel selects how the periodic refresh routine is driven.
type SchedulerModel int

const (
	// TaskScheduled runs the routine as a normal kernel task woken every
	// 1 ms; wakeups are subject to scheduling latency (run-queue delay,
	// timer slack) and occasionally very long preemption.
	TaskScheduled SchedulerModel = iota
	// TickInterrupt runs the routine directly in the timer tick IRQ;
	// jitter is small but ticks can still be delayed or dropped while
	// interrupts are disabled or the tick is stopped on idle (§8.3).
	TickInterrupt
)

func (s SchedulerModel) String() string {
	if s == TaskScheduled {
		return "task"
	}
	return "tick-irq"
}

// SoftRefreshConfig parameterizes the §8.3 experiment.
type SoftRefreshConfig struct {
	// Model is the scheduling mechanism.
	Model SchedulerModel
	// Period is the target refresh period (1 ms in the paper).
	Period time.Duration
	// SafePeriod is the longest gap that still protects EPT rows; a gap
	// beyond it leaves EPTs vulnerable until the next refresh.
	SafePeriod time.Duration
	// Duration is the simulated run length.
	Duration time.Duration
	// Seed drives the jitter distribution.
	Seed int64
}

// DefaultSoftRefreshConfig mirrors the paper's parameters.
func DefaultSoftRefreshConfig(model SchedulerModel) SoftRefreshConfig {
	return SoftRefreshConfig{
		Model:      model,
		Period:     time.Millisecond,
		SafePeriod: time.Millisecond + 10*time.Microsecond, // small protection margin
		Duration:   60 * time.Second,
		Seed:       1,
	}
}

// SoftRefreshReport summarizes a simulated run.
type SoftRefreshReport struct {
	// Refreshes is the number of refreshes that ran.
	Refreshes int
	// MissedDeadlines counts gaps exceeding SafePeriod.
	MissedDeadlines int
	// MaxGap is the longest observed gap between refreshes.
	MaxGap time.Duration
	// VulnerableTime is total time spent beyond the safe period.
	VulnerableTime time.Duration
}

// MissRate returns the fraction of intervals that missed the deadline.
func (r SoftRefreshReport) MissRate() float64 {
	if r.Refreshes == 0 {
		return 1
	}
	return float64(r.MissedDeadlines) / float64(r.Refreshes)
}

func (r SoftRefreshReport) String() string {
	return fmt.Sprintf("refreshes=%d missed=%d (%.2f%%) maxGap=%v vulnerable=%v",
		r.Refreshes, r.MissedDeadlines, 100*r.MissRate(), r.MaxGap, r.VulnerableTime)
}

// SimulateSoftRefresh runs the jitter model and reports deadline behaviour.
func SimulateSoftRefresh(cfg SoftRefreshConfig) SoftRefreshReport {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rep SoftRefreshReport
	var now time.Duration
	for now < cfg.Duration {
		gap := cfg.Period + jitter(cfg.Model, rng)
		now += gap
		rep.Refreshes++
		if gap > rep.MaxGap {
			rep.MaxGap = gap
		}
		if gap > cfg.SafePeriod {
			rep.MissedDeadlines++
			rep.VulnerableTime += gap - cfg.SafePeriod
		}
	}
	return rep
}

// jitter draws the extra latency beyond the nominal period.
func jitter(model SchedulerModel, rng *rand.Rand) time.Duration {
	switch model {
	case TaskScheduled:
		// Linux timer semantics guarantee *at least* the requested
		// sleep (§8.3: "a minimum of 1 ms between software
		// refreshes"), plus run-queue latency; with probability ~0.1%
		// a long preemption exceeds 32 ms.
		base := time.Duration(rng.Int63n(int64(400 * time.Microsecond)))
		if rng.Float64() < 0.001 {
			base += 32*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond)))
		}
		return base
	case TickInterrupt:
		// IRQ-time execution: sub-10µs jitter around the tick, but
		// ticks are occasionally delayed while interrupts are disabled.
		base := time.Duration(rng.Int63n(int64(10*time.Microsecond))) - 5*time.Microsecond
		if rng.Float64() < 0.0005 {
			base += time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		}
		return base
	}
	return 0
}
