package ept

import (
	"errors"
	"testing"

	"repro/internal/geometry"
	"repro/internal/subarray"

	allocpkg "repro/internal/alloc"
)

// Regression: mapping a 2 MiB leaf over a PD entry that points at a live
// 4 KiB page table must fail — the old code overwrote the entry, silently
// dropping every 4 KiB mapping under it and orphaning the table page.
func TestMap2MOverPageTableRejected(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	gpa4 := uint64(0x7000) // lives in the PT under PD entry 0
	if err := tables.Map4K(gpa4, 0x123000); err != nil {
		t.Fatal(err)
	}
	before := len(tables.Pages())
	if err := tables.Map2M(0, 16<<20); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("Map2M over a live page table: err = %v, want ErrAlreadyMapped", err)
	}
	// The 4 KiB mapping must have survived and no table page leaked.
	if got, err := tables.Translate(gpa4); err != nil || got != 0x123000 {
		t.Fatalf("4K mapping lost after rejected 2M map: %#x, %v", got, err)
	}
	if got := len(tables.Pages()); got != before {
		t.Errorf("table pages = %d, want %d (rejected map must not allocate)", got, before)
	}
}

// Regression: double-mapping the same GPA at the same size must fail rather
// than silently replacing the frame.
func TestMapOverPresentLeafRejected(t *testing.T) {
	_, tables, _ := testEnv(t, NoProtection)
	if err := tables.Map2M(0, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := tables.Map2M(0, 8<<20); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("second Map2M: err = %v, want ErrAlreadyMapped", err)
	}
	gpa4 := uint64(1) << 31
	if err := tables.Map4K(gpa4, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := tables.Map4K(gpa4, 0x2000); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("second Map4K: err = %v, want ErrAlreadyMapped", err)
	}
	// The originals are intact.
	if got, _ := tables.Translate(0); got != 4<<20 {
		t.Errorf("2M frame replaced: %#x", got)
	}
	if got, _ := tables.Translate(gpa4); got != 0x1000 {
		t.Errorf("4K frame replaced: %#x", got)
	}
}

func TestRemapReplacesLeaf(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		t.Run(mode.String(), func(t *testing.T) {
			_, tables, _ := testEnv(t, mode)
			if err := tables.Map2M(0, 4<<20); err != nil {
				t.Fatal(err)
			}
			if err := tables.Remap2M(0, 8<<20); err != nil {
				t.Fatal(err)
			}
			if got, err := tables.Translate(0); err != nil || got != 8<<20 {
				t.Fatalf("after remap: %#x, %v", got, err)
			}
			// Remap of an unmapped GPA fails — it is not a Map.
			if err := tables.Remap2M(2*geometry.PageSize2M, 0); !errors.Is(err, ErrNotMapped) {
				t.Fatalf("remap of unmapped gpa: err = %v, want ErrNotMapped", err)
			}
			// Remap4K over a PD entry holding a page-table pointer... first
			// build the 4K mapping, then check Remap2M over its PD entry fails.
			gpa4 := uint64(1) << 31
			if err := tables.Map4K(gpa4, 0x3000); err != nil {
				t.Fatal(err)
			}
			if err := tables.Remap2M(gpa4, 4<<20); !errors.Is(err, ErrAlreadyMapped) {
				t.Fatalf("Remap2M over page-table pointer: err = %v, want ErrAlreadyMapped", err)
			}
			if err := tables.Remap4KProt(gpa4, 0x4000, false); err != nil {
				t.Fatal(err)
			}
			if _, err := tables.TranslateAccess(gpa4, true); !errors.Is(err, ErrPermission) {
				t.Fatalf("remapped read-only leaf writable: %v", err)
			}
		})
	}
}

// Regression: Destroy used to leave root dangling and macs populated, so a
// use-after-destroy walked freed frames with stale MACs.
func TestUseAfterDestroyFailsLoudly(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		t.Run(mode.String(), func(t *testing.T) {
			_, tables, a := testEnv(t, mode)
			if err := tables.Map2M(0, 4<<20); err != nil {
				t.Fatal(err)
			}
			tables.Destroy()
			if a.UsedBytes() != 0 {
				t.Fatalf("UsedBytes = %d after Destroy", a.UsedBytes())
			}
			if len(tables.Pages()) != 0 {
				t.Error("Pages() non-empty after Destroy")
			}
			if _, err := tables.Translate(0); !errors.Is(err, ErrDestroyed) {
				t.Errorf("Translate after Destroy: err = %v, want ErrDestroyed", err)
			}
			if err := tables.Map2M(0, 4<<20); !errors.Is(err, ErrDestroyed) {
				t.Errorf("Map2M after Destroy: err = %v, want ErrDestroyed", err)
			}
			if err := tables.Unmap(0); !errors.Is(err, ErrDestroyed) {
				t.Errorf("Unmap after Destroy: err = %v, want ErrDestroyed", err)
			}
			if _, err := tables.Relocate(allocAdapter{a}); !errors.Is(err, ErrDestroyed) {
				t.Errorf("Relocate after Destroy: err = %v, want ErrDestroyed", err)
			}
			tables.Destroy() // idempotent
		})
	}
}

func TestRelocateMovesHierarchy(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		t.Run(mode.String(), func(t *testing.T) {
			mem, tables, src := testEnv(t, mode)
			dst, err := allocpkg.New([]subarray.Range{{Start: 32 << 20, End: 48 << 20}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			type mapping struct{ gpa, hpa uint64 }
			var want []mapping
			for i := uint64(0); i < 8; i++ {
				m := mapping{i * geometry.PageSize2M, (i + 8) * geometry.PageSize2M}
				if err := tables.Map2M(m.gpa, m.hpa); err != nil {
					t.Fatal(err)
				}
				want = append(want, m)
			}
			// A 4 KiB region and a read-only page, to cover every entry shape.
			g4 := uint64(1) << 31
			if err := tables.Map4K(g4, 0x5000); err != nil {
				t.Fatal(err)
			}
			want = append(want, mapping{g4, 0x5000})
			if err := tables.Protect(0, false); err != nil {
				t.Fatal(err)
			}

			nPages := len(tables.Pages())
			moved, err := tables.Relocate(allocAdapter{dst})
			if err != nil {
				t.Fatal(err)
			}
			if moved != nPages {
				t.Errorf("relocated %d pages, want %d", moved, nPages)
			}
			if src.UsedBytes() != 0 {
				t.Errorf("source allocator UsedBytes = %d, want 0", src.UsedBytes())
			}
			for _, pa := range tables.Pages() {
				if pa < 32<<20 || pa >= 48<<20 {
					t.Errorf("table page %#x outside destination range", pa)
				}
			}
			for _, m := range want {
				got, err := tables.Translate(m.gpa)
				if err != nil || got != m.hpa {
					t.Errorf("translate %#x = %#x, %v; want %#x", m.gpa, got, err, m.hpa)
				}
			}
			// Write protection survived the move.
			if _, err := tables.TranslateAccess(0, true); !errors.Is(err, ErrPermission) {
				t.Errorf("protection lost across relocation: %v", err)
			}
			// The hierarchy is still mutable in place.
			if err := tables.Map2M(32*geometry.PageSize2M, 0); err != nil {
				t.Fatal(err)
			}
			if mode == SecureEPT {
				// MACs were re-keyed for the new PAs: corruption on a NEW
				// table page is still detected.
				corruptEntry(t, mem, tables, 0)
				if _, err := tables.Translate(0); !errors.Is(err, ErrIntegrity) {
					t.Errorf("corruption on relocated table missed: %v", err)
				}
			}
		})
	}
}

// smallAlloc fails after budget pages, forcing a mid-relocation allocation
// failure.
type smallAlloc struct {
	inner  allocAdapter
	budget int
}

func (s *smallAlloc) AllocTablePage() (uint64, error) {
	if s.budget <= 0 {
		return 0, errors.New("smallAlloc: out of pages")
	}
	s.budget--
	return s.inner.AllocTablePage()
}
func (s *smallAlloc) FreeTablePage(pa uint64) { s.inner.FreeTablePage(pa) }

func TestRelocateRollsBackOnAllocFailure(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		t.Run(mode.String(), func(t *testing.T) {
			_, tables, src := testEnv(t, mode)
			for i := uint64(0); i < 4; i++ {
				if err := tables.Map2M(i*geometry.PageSize2M, i*geometry.PageSize2M); err != nil {
					t.Fatal(err)
				}
			}
			dstInner, err := allocpkg.New([]subarray.Range{{Start: 32 << 20, End: 48 << 20}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			dst := &smallAlloc{inner: allocAdapter{dstInner}, budget: 1}
			usedBefore := src.UsedBytes()
			pagesBefore := tables.Pages()
			if _, err := tables.Relocate(dst); err == nil {
				t.Fatal("relocation with a 1-page allocator succeeded")
			}
			// Everything drawn from the destination went back, the old
			// hierarchy is untouched and still works.
			if dstInner.UsedBytes() != 0 {
				t.Errorf("destination UsedBytes = %d after failed relocation", dstInner.UsedBytes())
			}
			if src.UsedBytes() != usedBefore {
				t.Errorf("source UsedBytes changed: %d -> %d", usedBefore, src.UsedBytes())
			}
			after := tables.Pages()
			if len(after) != len(pagesBefore) {
				t.Fatalf("table page count changed: %d -> %d", len(pagesBefore), len(after))
			}
			for i := range after {
				if after[i] != pagesBefore[i] {
					t.Errorf("table page %d moved: %#x -> %#x", i, pagesBefore[i], after[i])
				}
			}
			for i := uint64(0); i < 4; i++ {
				got, err := tables.Translate(i * geometry.PageSize2M)
				if err != nil || got != i*geometry.PageSize2M {
					t.Errorf("translate %d after failed relocation: %#x, %v", i, got, err)
				}
			}
		})
	}
}
