package ept

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// TestEPTMatchesShadowMapProperty drives random map/translate sequences
// against a plain map of expected translations.
func TestEPTMatchesShadowMapProperty(t *testing.T) {
	for _, mode := range []IntegrityMode{NoProtection, SecureEPT} {
		for seed := int64(0); seed < 5; seed++ {
			_, tables, _ := testEnv(t, mode)
			rng := rand.New(rand.NewSource(seed))
			shadow2M := make(map[uint64]uint64)
			shadow4K := make(map[uint64]uint64)
			for step := 0; step < 300; step++ {
				switch rng.Intn(3) {
				case 0: // map a 2M page
					gpa := uint64(rng.Intn(256)) * geometry.PageSize2M
					hpa := uint64(rng.Intn(256)) * geometry.PageSize2M
					if _, taken := shadow2M[gpa]; taken {
						continue
					}
					conflict := false
					for k := range shadow4K {
						if k&^uint64(geometry.PageSize2M-1) == gpa {
							conflict = true
						}
					}
					err := tables.Map2M(gpa, hpa)
					if conflict {
						// Mapping over existing 4K entries is
						// implementation-defined here; skip check.
						continue
					}
					if err != nil {
						t.Fatalf("mode %v seed %d: Map2M: %v", mode, seed, err)
					}
					shadow2M[gpa] = hpa
				case 1: // map a 4K page in a region without a 2M leaf
					gpa := uint64(1)<<33 + uint64(rng.Intn(4096))*geometry.PageSize4K
					hpa := uint64(rng.Intn(1<<20)) * geometry.PageSize4K
					if _, taken := shadow4K[gpa]; taken {
						continue
					}
					if err := tables.Map4K(gpa, hpa); err != nil {
						t.Fatalf("mode %v seed %d: Map4K: %v", mode, seed, err)
					}
					shadow4K[gpa] = hpa
				default: // translate a random known gpa
					for gpa, hpa := range shadow2M {
						off := uint64(rng.Intn(geometry.PageSize2M))
						got, err := tables.Translate(gpa + off)
						if err != nil || got != hpa+off {
							t.Fatalf("mode %v seed %d: 2M translate(%#x) = %#x, %v; want %#x",
								mode, seed, gpa+off, got, err, hpa+off)
						}
						break
					}
					for gpa, hpa := range shadow4K {
						off := uint64(rng.Intn(geometry.PageSize4K))
						got, err := tables.Translate(gpa + off)
						if err != nil || got != hpa+off {
							t.Fatalf("mode %v seed %d: 4K translate = %#x, %v", mode, seed, got, err)
						}
						break
					}
				}
			}
			// Final sweep: every shadow entry still translates.
			for gpa, hpa := range shadow2M {
				got, err := tables.Translate(gpa)
				if err != nil || got != hpa {
					t.Fatalf("final 2M sweep: translate(%#x) = %#x, %v", gpa, got, err)
				}
			}
			for gpa, hpa := range shadow4K {
				got, err := tables.Translate(gpa)
				if err != nil || got != hpa {
					t.Fatalf("final 4K sweep: translate(%#x) = %#x, %v", gpa, got, err)
				}
			}
		}
	}
}
