// Package ept implements extended page tables (§2.1, §5.4): the
// hypervisor-managed GPA→HPA mappings that hardware walks on guest memory
// access. Table pages live inside the simulated DRAM, so Rowhammer
// disturbance can corrupt entries exactly as on real hardware — the threat
// Siloz counters with guard-row placement or secure-EPT integrity checks.
package ept

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/geometry"
)

// Entry bit layout (a simplified x86-64 EPT entry).
const (
	entryPresent = 1 << 0
	entryWrite   = 1 << 1 // write permission
	entryLeaf    = 1 << 7 // large-page bit at the PD level
	frameMask    = 0x000F_FFFF_FFFF_F000
)

const (
	pageShift  = 12
	levelBits  = 9
	levelMask  = (1 << levelBits) - 1
	numLevels  = 4
	entrySize  = 8
	tableBytes = geometry.PageSize4K
)

// IntegrityMode selects how EPT integrity is ensured (§5.4).
type IntegrityMode int

const (
	// NoProtection trusts DRAM contents (the unmodified baseline).
	NoProtection IntegrityMode = iota
	// SecureEPT models TDX/SNP-style hardware integrity: every entry
	// carries an out-of-band MAC verified on walk. Corruption is
	// detected — not prevented — so a flip becomes a fatal integrity
	// fault rather than an escape.
	SecureEPT
	// GuardRows places table pages in the guard-protected row group
	// block (§5.4), physically preventing flips; the walker trusts DRAM.
	GuardRows
)

func (m IntegrityMode) String() string {
	switch m {
	case NoProtection:
		return "none"
	case SecureEPT:
		return "secure-ept"
	case GuardRows:
		return "guard-rows"
	}
	return "invalid"
}

// Errors returned by Translate and the structural mutators.
var (
	// ErrNotMapped reports a GPA with no valid mapping.
	ErrNotMapped = errors.New("ept: gpa not mapped")
	// ErrIntegrity reports a failed secure-EPT integrity check: an EPT
	// entry changed outside the hypervisor's legitimate updates.
	ErrIntegrity = errors.New("ept: integrity check failed")
	// ErrPermission reports a write through a read-only mapping — the
	// EPT violation that makes ROM writes trap into the hypervisor
	// (§5.1's mediated access types).
	ErrPermission = errors.New("ept: write to read-only mapping")
	// ErrAlreadyMapped reports a Map over a present entry. Overwriting a
	// PD entry that points at a live 4 KiB page table would silently drop
	// its mappings and orphan the table page; callers replacing a leaf on
	// purpose use the Remap variants.
	ErrAlreadyMapped = errors.New("ept: gpa already mapped")
	// ErrDestroyed reports any use of a hierarchy after Destroy: its
	// frames are back in the free pool and its MACs are gone, so a walk
	// would dereference recycled memory.
	ErrDestroyed = errors.New("ept: tables destroyed")
)

// PageAllocator provides table pages; Siloz passes a GFP_EPT-backed
// allocator drawing from the EPT logical node (§5.4), the baseline passes a
// normal host-node allocator.
type PageAllocator interface {
	AllocTablePage() (uint64, error)
	FreeTablePage(pa uint64)
}

// Tables is one VM's extended page table hierarchy.
//
// Entry loads and stores are serialized by an internal lock, so guest-side
// walks may run concurrently with hypervisor-side entry updates (the
// write-protection flips of dirty-page tracking during live migration).
// Structural mutation — Map*, Unmap, Destroy — is the hypervisor's and is
// not safe to race with itself.
type Tables struct {
	mem   *dram.Memory
	pages PageAllocator
	mode  IntegrityMode
	root  uint64
	all   []uint64 // every table page, for accounting and attack targeting

	entryMu   sync.Mutex        // serializes entry loads/stores, macs, destroyed
	macs      map[uint64]uint64 // entry pa -> MAC (SecureEPT only)
	destroyed bool              // Destroy ran; every entry access fails loudly
}

// New allocates an empty hierarchy (root only).
func New(mem *dram.Memory, pages PageAllocator, mode IntegrityMode) (*Tables, error) {
	root, err := pages.AllocTablePage()
	if err != nil {
		return nil, fmt.Errorf("ept: allocating root: %w", err)
	}
	t := &Tables{mem: mem, pages: pages, mode: mode, root: root, all: []uint64{root}}
	if mode == SecureEPT {
		t.macs = make(map[uint64]uint64)
	}
	if err := t.zeroPage(root); err != nil {
		return nil, err
	}
	return t, nil
}

// Root returns the root table page's physical address.
func (t *Tables) Root() uint64 { return t.root }

// Mode returns the integrity mode.
func (t *Tables) Mode() IntegrityMode { return t.mode }

// Pages returns every table page (root first).
func (t *Tables) Pages() []uint64 {
	out := make([]uint64, len(t.all))
	copy(out, t.all)
	return out
}

// Destroy releases all table pages and poisons the hierarchy: the root and
// the MAC table are dropped along with the pages, so any later walk or map
// fails with ErrDestroyed instead of dereferencing recycled frames with
// stale MACs. Destroy is idempotent.
func (t *Tables) Destroy() {
	for _, pa := range t.all {
		t.pages.FreeTablePage(pa)
	}
	t.entryMu.Lock()
	t.all = nil
	t.root = 0
	t.macs = nil
	t.destroyed = true
	t.entryMu.Unlock()
}

func (t *Tables) zeroPage(pa uint64) error {
	t.entryMu.Lock()
	defer t.entryMu.Unlock()
	if err := t.mem.WritePhys(pa, make([]byte, tableBytes)); err != nil {
		return err
	}
	if t.mode == SecureEPT {
		for off := uint64(0); off < tableBytes; off += entrySize {
			t.macs[pa+off] = mac(pa+off, 0)
		}
	}
	return nil
}

// mac computes the keyed per-entry MAC used by the SecureEPT model.
func mac(entryPA, value uint64) uint64 {
	x := entryPA*0x9E3779B97F4A7C15 ^ value
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// readEntry loads one entry, verifying its MAC in SecureEPT mode.
func (t *Tables) readEntry(entryPA uint64) (uint64, error) {
	t.entryMu.Lock()
	defer t.entryMu.Unlock()
	if t.destroyed {
		return 0, fmt.Errorf("%w: load of entry %#x", ErrDestroyed, entryPA)
	}
	var buf [entrySize]byte
	if err := t.mem.ReadPhys(entryPA, buf[:]); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(buf[:])
	if t.mode == SecureEPT {
		if want, ok := t.macs[entryPA]; !ok || want != mac(entryPA, v) {
			return 0, fmt.Errorf("%w: entry %#x", ErrIntegrity, entryPA)
		}
	}
	return v, nil
}

// writeEntry stores one entry as a legitimate hypervisor update.
func (t *Tables) writeEntry(entryPA, v uint64) error {
	t.entryMu.Lock()
	defer t.entryMu.Unlock()
	if t.destroyed {
		return fmt.Errorf("%w: store to entry %#x", ErrDestroyed, entryPA)
	}
	var buf [entrySize]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if err := t.mem.WritePhys(entryPA, buf[:]); err != nil {
		return err
	}
	if t.mode == SecureEPT {
		t.macs[entryPA] = mac(entryPA, v)
	}
	return nil
}

// indexAt extracts the table index for a level (level 0 = root/PML4).
func indexAt(gpa uint64, level int) uint64 {
	shift := pageShift + levelBits*(numLevels-1-level)
	return (gpa >> shift) & levelMask
}

// Map2M installs a writable 2 MiB leaf mapping gpa → hpa (both 2 MiB
// aligned). The GPA must be unmapped; replacing a live leaf is Remap2M's job.
func (t *Tables) Map2M(gpa, hpa uint64) error { return t.Map2MProt(gpa, hpa, true) }

// Map2MProt installs a 2 MiB leaf with explicit write permission.
func (t *Tables) Map2MProt(gpa, hpa uint64, writable bool) error {
	if gpa%geometry.PageSize2M != 0 || hpa%geometry.PageSize2M != 0 {
		return fmt.Errorf("ept: Map2M needs 2 MiB alignment (gpa=%#x hpa=%#x)", gpa, hpa)
	}
	return t.mapLeaf(gpa, hpa, 2, writable, false)
}

// Remap2M rewrites the present 2 MiB leaf at gpa to a new writable frame —
// live migration's commit step. Remapping an unmapped GPA or a GPA whose PD
// entry points at a 4 KiB page table fails.
func (t *Tables) Remap2M(gpa, hpa uint64) error { return t.Remap2MProt(gpa, hpa, true) }

// Remap2MProt rewrites the present 2 MiB leaf at gpa with explicit write
// permission.
func (t *Tables) Remap2MProt(gpa, hpa uint64, writable bool) error {
	if gpa%geometry.PageSize2M != 0 || hpa%geometry.PageSize2M != 0 {
		return fmt.Errorf("ept: Remap2M needs 2 MiB alignment (gpa=%#x hpa=%#x)", gpa, hpa)
	}
	return t.mapLeaf(gpa, hpa, 2, writable, true)
}

// Map4K installs a writable 4 KiB leaf mapping gpa → hpa (both page
// aligned). The GPA must be unmapped; replacing a live leaf is Remap4K's job.
func (t *Tables) Map4K(gpa, hpa uint64) error { return t.Map4KProt(gpa, hpa, true) }

// Map4KProt installs a 4 KiB leaf with explicit write permission.
func (t *Tables) Map4KProt(gpa, hpa uint64, writable bool) error {
	if gpa%geometry.PageSize4K != 0 || hpa%geometry.PageSize4K != 0 {
		return fmt.Errorf("ept: Map4K needs 4 KiB alignment (gpa=%#x hpa=%#x)", gpa, hpa)
	}
	return t.mapLeaf(gpa, hpa, 3, writable, false)
}

// Remap4KProt rewrites the present 4 KiB leaf at gpa with explicit write
// permission — the region leg of live migration's commit step.
func (t *Tables) Remap4KProt(gpa, hpa uint64, writable bool) error {
	if gpa%geometry.PageSize4K != 0 || hpa%geometry.PageSize4K != 0 {
		return fmt.Errorf("ept: Remap4K needs 4 KiB alignment (gpa=%#x hpa=%#x)", gpa, hpa)
	}
	return t.mapLeaf(gpa, hpa, 3, writable, true)
}

// mapLeaf walks to leafLevel, allocating intermediate tables, and installs
// the leaf entry. With remap unset the target entry must be non-present —
// overwriting a PD entry that points at a live 4 KiB page table would
// silently drop its mappings and orphan the table page. With remap set the
// target must already hold a leaf of the same size.
func (t *Tables) mapLeaf(gpa, hpa uint64, leafLevel int, writable, remap bool) error {
	table := t.root
	for level := 0; level < leafLevel; level++ {
		entryPA := table + indexAt(gpa, level)*entrySize
		v, err := t.readEntry(entryPA)
		if err != nil {
			return err
		}
		if v&entryPresent == 0 {
			if remap {
				return fmt.Errorf("%w: gpa %#x (remap target, level %d)", ErrNotMapped, gpa, level)
			}
			next, err := t.pages.AllocTablePage()
			if err != nil {
				return fmt.Errorf("ept: allocating level-%d table: %w", level+1, err)
			}
			t.all = append(t.all, next)
			if err := t.zeroPage(next); err != nil {
				return err
			}
			v = (next & frameMask) | entryPresent | entryWrite
			if err := t.writeEntry(entryPA, v); err != nil {
				return err
			}
		} else if v&entryLeaf != 0 {
			return fmt.Errorf("%w: gpa %#x covered by a larger page", ErrAlreadyMapped, gpa)
		}
		table = v & frameMask
	}
	entryPA := table + indexAt(gpa, leafLevel)*entrySize
	cur, err := t.readEntry(entryPA)
	if err != nil {
		return err
	}
	if remap {
		if cur&entryPresent == 0 {
			return fmt.Errorf("%w: gpa %#x (remap target)", ErrNotMapped, gpa)
		}
		if leafLevel < numLevels-1 && cur&entryLeaf == 0 {
			return fmt.Errorf("%w: gpa %#x: entry holds a page-table pointer, not a leaf", ErrAlreadyMapped, gpa)
		}
	} else if cur&entryPresent != 0 {
		return fmt.Errorf("%w: gpa %#x", ErrAlreadyMapped, gpa)
	}
	leaf := (hpa & frameMask) | entryPresent
	if writable {
		leaf |= entryWrite
	}
	if leafLevel < numLevels-1 {
		leaf |= entryLeaf
	}
	return t.writeEntry(entryPA, leaf)
}

// Translate walks the tables for gpa, returning the backing HPA. The walk
// reads entries from DRAM, so bit flips in table pages steer it — unless
// SecureEPT detects them (ErrIntegrity).
func (t *Tables) Translate(gpa uint64) (uint64, error) {
	return t.TranslateAccess(gpa, false)
}

// Unmap clears the leaf entry mapping gpa (2 MiB or 4 KiB). Intermediate
// tables are retained for reuse, as KVM does. Unmapping an unmapped GPA
// returns ErrNotMapped.
func (t *Tables) Unmap(gpa uint64) error {
	table := t.root
	for level := 0; level < numLevels; level++ {
		entryPA := table + indexAt(gpa, level)*entrySize
		v, err := t.readEntry(entryPA)
		if err != nil {
			return err
		}
		if v&entryPresent == 0 {
			return fmt.Errorf("%w: gpa %#x (level %d)", ErrNotMapped, gpa, level)
		}
		if v&entryLeaf != 0 || level == numLevels-1 {
			return t.writeEntry(entryPA, 0)
		}
		table = v & frameMask
	}
	panic("unreachable")
}

// Protect rewrites the leaf entry mapping gpa (2 MiB or 4 KiB) with the
// given write permission, leaving the frame intact. Clearing the write bit
// is how KVM's dirty logging arms a page during live migration (§2.1): the
// next guest store raises an EPT violation, the hypervisor logs the page
// dirty and re-enables the bit. Protecting an unmapped GPA returns
// ErrNotMapped.
func (t *Tables) Protect(gpa uint64, writable bool) error {
	table := t.root
	for level := 0; level < numLevels; level++ {
		entryPA := table + indexAt(gpa, level)*entrySize
		v, err := t.readEntry(entryPA)
		if err != nil {
			return err
		}
		if v&entryPresent == 0 {
			return fmt.Errorf("%w: gpa %#x (level %d)", ErrNotMapped, gpa, level)
		}
		if v&entryLeaf != 0 || level == numLevels-1 {
			nv := v &^ uint64(entryWrite)
			if writable {
				nv |= entryWrite
			}
			if nv == v {
				return nil
			}
			return t.writeEntry(entryPA, nv)
		}
		table = v & frameMask
	}
	panic("unreachable")
}

// TranslateAccess walks the tables for an access of the given kind; a write
// through a read-only leaf returns ErrPermission (the EPT violation that
// exits into the hypervisor).
func (t *Tables) TranslateAccess(gpa uint64, write bool) (uint64, error) {
	table := t.root
	for level := 0; level < numLevels; level++ {
		entryPA := table + indexAt(gpa, level)*entrySize
		v, err := t.readEntry(entryPA)
		if err != nil {
			return 0, err
		}
		if v&entryPresent == 0 {
			return 0, fmt.Errorf("%w: gpa %#x (level %d)", ErrNotMapped, gpa, level)
		}
		frame := v & frameMask
		leaf := v&entryLeaf != 0 || level == numLevels-1
		if leaf {
			if write && v&entryWrite == 0 {
				return 0, fmt.Errorf("%w: gpa %#x", ErrPermission, gpa)
			}
			pageBytes := uint64(1) << (pageShift + levelBits*(numLevels-1-level))
			return frame | (gpa & (pageBytes - 1)), nil
		}
		table = frame
	}
	panic("unreachable")
}

// Relocate rebuilds the whole hierarchy on pages drawn from newAlloc and
// frees the old pages back to the allocator that provided them, returning
// the number of table pages moved. Cross-socket migration uses this to pull
// a VM's tables into the destination socket's guard-protected EPT block
// (§5.4): the guest must be paused (relocation swaps the root and every
// intermediate pointer non-atomically), and under SecureEPT each copied
// entry is re-MACed for its new PA simply by being written there — the MAC
// is keyed by entry PA, so stale MACs cannot follow the move. On any
// partial failure the pages already drawn from newAlloc are returned and
// the old hierarchy stays live: the caller can resume the guest unharmed.
func (t *Tables) Relocate(newAlloc PageAllocator) (int, error) {
	if t.destroyed {
		return 0, fmt.Errorf("%w: relocate", ErrDestroyed)
	}
	oldPages, oldAlloc := t.all, t.pages
	var newPages []uint64
	fail := func(err error) (int, error) {
		for _, pa := range newPages {
			t.dropMACs(pa)
			newAlloc.FreeTablePage(pa)
		}
		return 0, err
	}
	// copyTable deep-copies the table at pa (and, recursively, every table
	// it points to) onto a fresh page, returning the new page's PA. Reads
	// verify the old MACs; writes mint MACs keyed by the new PAs.
	var copyTable func(pa uint64, level int) (uint64, error)
	copyTable = func(pa uint64, level int) (uint64, error) {
		np, err := newAlloc.AllocTablePage()
		if err != nil {
			return 0, fmt.Errorf("ept: relocating level-%d table: %w", level, err)
		}
		newPages = append(newPages, np)
		if err := t.zeroPage(np); err != nil {
			return 0, err
		}
		for off := uint64(0); off < tableBytes; off += entrySize {
			v, err := t.readEntry(pa + off)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				continue
			}
			if v&entryPresent != 0 && v&entryLeaf == 0 && level < numLevels-1 {
				child, err := copyTable(v&frameMask, level+1)
				if err != nil {
					return 0, err
				}
				v = (v &^ uint64(frameMask)) | (child & frameMask)
			}
			if err := t.writeEntry(np+off, v); err != nil {
				return 0, err
			}
		}
		return np, nil
	}
	newRoot, err := copyTable(t.root, 0)
	if err != nil {
		return fail(err)
	}
	t.root, t.all, t.pages = newRoot, newPages, newAlloc
	for _, pa := range oldPages {
		t.dropMACs(pa)
		oldAlloc.FreeTablePage(pa)
	}
	return len(newPages), nil
}

// dropMACs forgets the MAC entries for a table page being released, so a
// future tenant of the same frame starts clean.
func (t *Tables) dropMACs(pa uint64) {
	if t.mode != SecureEPT {
		return
	}
	t.entryMu.Lock()
	for off := uint64(0); off < tableBytes; off += entrySize {
		delete(t.macs, pa+off)
	}
	t.entryMu.Unlock()
}
