package core

import (
	"bytes"
	"testing"

	"repro/internal/geometry"
	"repro/internal/numa"
)

func TestRegionTypeClassification(t *testing.T) {
	// §5.1: RAM and ROM are unmediated (ROM reads don't exit); MMIO and
	// virtio are mediated.
	for typ, want := range map[RegionType]bool{
		RegionRAM: true, RegionROM: true, RegionMMIO: false, RegionVirtio: false,
	} {
		if typ.Unmediated() != want {
			t.Errorf("%v.Unmediated() = %v, want %v", typ, typ.Unmediated(), want)
		}
	}
	if RegionType(99).String() != "invalid" {
		t.Error("String fallback wrong")
	}
}

func createRegionVM(t *testing.T, h *Hypervisor) *VM {
	t.Helper()
	vm, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "regions", Socket: 0, MemoryBytes: 64 * geometry.MiB,
		Regions: []Region{
			{Name: "bios", Type: RegionROM, Bytes: 256 * geometry.KiB},
			{Name: "vga", Type: RegionMMIO, Bytes: 64 * geometry.KiB},
			{Name: "virtio-net", Type: RegionVirtio, Bytes: 128 * geometry.KiB},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestRegionPlacementFollowsMediation(t *testing.T) {
	h := bootSiloz(t)
	vm := createRegionVM(t, h)
	hostNode := h.Topology().NodesOnSocket(0, numa.HostReserved)[0]

	// ROM: unmediated -> guest domain.
	romPages, err := vm.RegionPages("bios")
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range romPages {
		if !vm.InDomain(pa) {
			t.Errorf("ROM page %#x outside the VM's subarray groups", pa)
		}
	}
	// MMIO and virtio: mediated -> host node.
	for _, name := range []string{"vga", "virtio-net"} {
		pages, err := vm.RegionPages(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pa := range pages {
			if !hostNode.Contains(pa) {
				t.Errorf("%s page %#x outside the host node", name, pa)
			}
			if vm.InDomain(pa) {
				t.Errorf("%s page %#x inside the guest domain", name, pa)
			}
		}
	}
}

func TestROMIsHammerableButMMIOIsNot(t *testing.T) {
	// §5.1's rationale: unmediated reads suffice to hammer, so ROM must
	// be guest-placed; MMIO accesses exit and can be rate-limited.
	h := bootSiloz(t)
	vm := createRegionVM(t, h)
	romGPA, err := vm.RegionGPA("bios")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(romGPA, 20_000, 0); err != nil {
		t.Fatalf("ROM hammering should be possible (unmediated reads): %v", err)
	}
	// All resulting flips stay in the VM's own domain.
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("ROM-hammering flip escaped the domain: %v", f)
		}
	}
	vgaGPA, err := vm.RegionGPA("vga")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(vgaGPA, 1000, 0); err == nil {
		t.Error("MMIO hammering must be refused (mediated)")
	}
	virtioGPA, err := vm.RegionGPA("virtio-net")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(virtioGPA, 1000, 0); err == nil {
		t.Error("virtio ring hammering must be refused (host-managed DMA)")
	}
}

func TestRegionIO(t *testing.T) {
	h := bootSiloz(t)
	vm := createRegionVM(t, h)
	payload := []byte("option rom contents")
	for _, name := range []string{"bios", "vga", "virtio-net"} {
		gpa, err := vm.RegionGPA(name)
		if err != nil {
			t.Fatal(err)
		}
		// Cross a 4 KiB page boundary.
		addr := gpa + geometry.PageSize4K - 7
		if err := vm.WriteGuest(addr, payload); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got := make([]byte, len(payload))
		if err := vm.ReadGuest(addr, got); err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("%s round trip failed", name)
		}
	}
}

func TestRegionValidationAndCleanup(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "bad", Socket: 0, MemoryBytes: geometry.PageSize2M,
		Regions: []Region{{Name: "x", Type: RegionROM, Bytes: 100}},
	}); err == nil {
		t.Fatal("unaligned region accepted")
	}
	// Failed creation must not leak anything.
	vm := createRegionVM(t, h)
	if got := len(vm.Regions()); got != 3 {
		t.Fatalf("Regions() = %d", got)
	}
	if _, err := vm.RegionGPA("nope"); err == nil {
		t.Error("unknown region name accepted")
	}
	if _, err := vm.RegionPages("nope"); err == nil {
		t.Error("unknown region name accepted")
	}
	nodeID := vm.Nodes()[0].ID
	a, err := h.Allocator(nodeID)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("regions"); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != a.TotalBytes() {
		t.Errorf("guest node not fully freed after destroy: %d of %d", a.FreeBytes(), a.TotalBytes())
	}
}

func TestROMWritesTrapAndAreEmulated(t *testing.T) {
	// §5.1: ROM writes are mediated — they raise EPT violations, exit
	// into the hypervisor, and are emulated there; reads stay unmediated.
	h := bootSiloz(t)
	vm := createRegionVM(t, h)
	romGPA, err := vm.RegionGPA("bios")
	if err != nil {
		t.Fatal(err)
	}
	before := vm.Exits()
	payload := []byte("flash update")
	if err := vm.WriteGuest(romGPA+16, payload); err != nil {
		t.Fatalf("emulated ROM write failed: %v", err)
	}
	if vm.Exits() <= before {
		t.Error("ROM write did not exit into the hypervisor")
	}
	got := make([]byte, len(payload))
	exitsBeforeRead := vm.Exits()
	if err := vm.ReadGuest(romGPA+16, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("emulated ROM write not visible")
	}
	if vm.Exits() != exitsBeforeRead {
		t.Error("ROM read exited; reads must be unmediated (§5.1)")
	}
	// RAM writes never exit.
	exits := vm.Exits()
	if err := vm.WriteGuest(0, payload); err != nil {
		t.Fatal(err)
	}
	if vm.Exits() != exits {
		t.Error("RAM write exited")
	}
	// MMIO accesses always exit.
	vgaGPA, err := vm.RegionGPA("vga")
	if err != nil {
		t.Fatal(err)
	}
	exits = vm.Exits()
	if err := vm.ReadGuest(vgaGPA, got); err != nil {
		t.Fatal(err)
	}
	if vm.Exits() <= exits {
		t.Error("MMIO read did not exit")
	}
}
