package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/numa"
)

func TestMemInfoSkipsStaticGuestNodes(t *testing.T) {
	// §5.3: a guest-reserved node's free memory statistics do not change
	// after VM boot, so refreshes need not iterate them.
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	first, err := h.RefreshMemInfo()
	if err != nil {
		t.Fatal(err)
	}
	total := len(h.Topology().Nodes())
	if first.Polled != total {
		t.Fatalf("first refresh polled %d, want all %d", first.Polled, total)
	}
	// Nothing changed: nothing to poll.
	second, err := h.RefreshMemInfo()
	if err != nil {
		t.Fatal(err)
	}
	if second.Polled != 0 {
		t.Errorf("idle refresh polled %d nodes, want 0", second.Polled)
	}
	// Host activity only dirties host nodes.
	pages, err := h.AllocHostPages(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	third, err := h.RefreshMemInfo()
	if err != nil {
		t.Fatal(err)
	}
	if third.Polled != 1 {
		t.Errorf("host-activity refresh polled %d nodes, want 1", third.Polled)
	}
	for _, s := range third.Stats {
		if s.Kind == numa.GuestReserved && s.FreeBytes != 0 && s.NodeID == 2 {
			break
		}
	}
	if err := h.FreeHostPages(0, 0, pages); err != nil {
		t.Fatal(err)
	}
	// Stats content is correct and render works.
	info, err := h.RefreshMemInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Stats) != total {
		t.Fatalf("stats rows = %d", len(info.Stats))
	}
	if !strings.Contains(info.Render(), "nodes polled") {
		t.Error("render malformed")
	}
}

func TestBootWithCachedLayout(t *testing.T) {
	// §5.3: subarray group ranges computed at one boot can be cached and
	// reloaded; a booted system behaves identically either way.
	h1 := bootSiloz(t)
	var buf bytes.Buffer
	if err := h1.Layout().Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CachedLayout = &buf
	h2, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Topology().Nodes()) != len(h1.Topology().Nodes()) {
		t.Fatal("cached-layout boot produced a different topology")
	}
	vm, err := h2.CreateVM(kvmProc(), VMSpec{Name: "c", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range h2.Memory().Flips() {
		pa, err := h2.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("flip escaped with cached layout: %v", f)
		}
	}
	// A stale cache (wrong geometry) silently falls back to computation.
	stale := bytes.NewBufferString(`{"geometry":{}}`)
	cfg2 := testConfig()
	cfg2.CachedLayout = stale
	if _, err := Boot(cfg2, ModeSiloz); err != nil {
		t.Fatalf("stale cache should fall back, got %v", err)
	}
}

func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Log = &buf
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "logged", Socket: 0, MemoryBytes: geometry.PageSize2M}); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("logged"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"booting siloz", "boot complete", `created VM "logged"`, `destroyed VM "logged"`} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	// Without a sink, logging is a no-op.
	h2, err := Boot(testConfig(), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	h2.logf("should not panic")
}
