package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/numa"
	"repro/internal/subarray"
)

// testGeometry: 2 sockets x 16 banks x 2048 rows = 512 MiB total; 512-row
// subarrays give 4 subarray groups of 64 MiB per socket.
func testGeometry() geometry.Geometry {
	return geometry.Geometry{
		Sockets:         2,
		CoresPerSocket:  4,
		DIMMsPerSocket:  1,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		RowsPerBank:     2048,
		RowBytes:        8 * geometry.KiB,
		RowsPerSubarray: 512,
	}
}

// testProfile: deterministic, no TRR, every row vulnerable, no transforms.
func testProfile() dram.Profile {
	p := dram.ProfileF()
	p.VulnerableRowFraction = 1
	p.WeakCellsPerRow = 3
	p.HammerThreshold = 5000
	p.Transforms = addr.TransformConfig{}
	return p
}

func testConfig() Config {
	return Config{
		Geometry:      testGeometry(),
		Profiles:      []dram.Profile{testProfile()},
		EPTProtection: ept.GuardRows,
	}
}

func bootSiloz(t *testing.T) *Hypervisor {
	t.Helper()
	h, err := Boot(testConfig(), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func bootBaseline(t *testing.T) *Hypervisor {
	t.Helper()
	h, err := Boot(testConfig(), ModeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func kvmProc() Process { return Process{CGroup: "kvm", KVMPrivileged: true} }

func TestBootSilozTopology(t *testing.T) {
	h := bootSiloz(t)
	g := testGeometry()
	topo := h.Topology()

	// Per socket: 1 host + 1 EPT + 3 guest nodes.
	if got := len(topo.Nodes()); got != g.Sockets*5 {
		t.Fatalf("nodes = %d, want %d", got, g.Sockets*5)
	}
	for s := 0; s < g.Sockets; s++ {
		host := topo.NodesOnSocket(s, numa.HostReserved)
		guests := topo.NodesOnSocket(s, numa.GuestReserved)
		epts := topo.NodesOnSocket(s, numa.EPTReserved)
		if len(host) != 1 || len(guests) != 3 || len(epts) != 1 {
			t.Fatalf("socket %d: host=%d guests=%d epts=%d", s, len(host), len(guests), len(epts))
		}
		// §5.2: host nodes carry the socket's cores; guest nodes are
		// memory-only.
		if len(host[0].Cores) != g.CoresPerSocket {
			t.Errorf("host node has %d cores", len(host[0].Cores))
		}
		for _, n := range guests {
			if len(n.Cores) != 0 {
				t.Errorf("guest node %d has cores", n.ID)
			}
			if n.Bytes() != uint64(g.SubarrayGroupBytes()) {
				t.Errorf("guest node %d has %d bytes, want one subarray group (%d)",
					n.ID, n.Bytes(), g.SubarrayGroupBytes())
			}
		}
		// EPT node: exactly one row group (§5.4).
		if epts[0].Bytes() != uint64(g.RowGroupBytes()) {
			t.Errorf("EPT node has %d bytes, want %d", epts[0].Bytes(), g.RowGroupBytes())
		}
		// Logical-to-physical mapping preserved.
		if s2, err := topo.PhysicalNodeOf(guests[0].ID); err != nil || s2 != s {
			t.Errorf("PhysicalNodeOf(%d) = %d, %v", guests[0].ID, s2, err)
		}
	}
}

func TestBootSilozEPTBlockAccounting(t *testing.T) {
	h := bootSiloz(t)
	g := testGeometry()
	// Guard rows: (b-1) row groups per socket offlined.
	var guardBytes uint64
	for _, r := range h.OfflinedRanges() {
		guardBytes += r.Bytes()
	}
	want := uint64(EPTBlockRowGroups-1) * uint64(g.RowGroupBytes()) * uint64(g.Sockets)
	if guardBytes != want {
		t.Errorf("offlined bytes = %d, want %d", guardBytes, want)
	}
	// Paper's headline figure: ~0.024% of each bank reserved for
	// EPT+guards; here 32 rows of 2048 = ~1.6% on the tiny bank, so just
	// verify block size = 32 rows per bank.
	frac := float64(EPTBlockRowGroups) / float64(g.RowsPerBank)
	if frac != 32.0/2048 {
		t.Errorf("block fraction %v", frac)
	}

	// Host node + EPT node + guards = host group capacity.
	for s := 0; s < g.Sockets; s++ {
		host := h.Topology().NodesOnSocket(s, numa.HostReserved)[0]
		eptN, err := h.EPTNode(s)
		if err != nil {
			t.Fatal(err)
		}
		total := host.Bytes() + eptN.Bytes() + uint64(EPTBlockRowGroups-1)*uint64(g.RowGroupBytes())
		if total != uint64(g.SubarrayGroupBytes()) {
			t.Errorf("socket %d host+ept+guards = %d, want %d", s, total, g.SubarrayGroupBytes())
		}
	}
}

func TestBootSilozPaperScaleGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry boot in -short mode")
	}
	h, err := Boot(Config{EPTProtection: ept.GuardRows}, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Layout().Geometry()
	// 128 groups per socket; 127 guest nodes per socket.
	guests := h.Topology().NodesOfKind(numa.GuestReserved)
	if len(guests) != 2*127 {
		t.Errorf("guest nodes = %d, want 254", len(guests))
	}
	for _, n := range guests[:3] {
		if n.Bytes() != uint64(3*geometry.GiB/2) {
			t.Errorf("guest node bytes = %d, want 1.5 GiB", n.Bytes())
		}
	}
	// §5.4: EPT block reserves ~0.024% of each bank.
	frac := float64(EPTBlockRowGroups) * float64(g.RowBytes) / float64(g.BankBytes())
	if frac < 0.0002 || frac > 0.0003 {
		t.Errorf("EPT block fraction %.6f, want ~0.00024", frac)
	}
}

func TestBootBaselineTopology(t *testing.T) {
	h := bootBaseline(t)
	topo := h.Topology()
	if got := len(topo.Nodes()); got != 2 {
		t.Fatalf("baseline nodes = %d, want 2 (one per socket)", got)
	}
	for _, n := range topo.Nodes() {
		if n.Kind != numa.HostReserved {
			t.Errorf("baseline node %d kind %v", n.ID, n.Kind)
		}
		if n.Bytes() != uint64(testGeometry().SocketBytes()) {
			t.Errorf("baseline node bytes = %d", n.Bytes())
		}
	}
	if len(h.OfflinedRanges()) != 0 {
		t.Error("baseline should not offline anything")
	}
	if _, err := h.EPTNode(0); err == nil {
		t.Error("baseline should have no EPT node")
	}
}

func TestCreateVMRequiresPrivilege(t *testing.T) {
	h := bootSiloz(t)
	_, err := h.CreateVM(Process{}, VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err == nil {
		t.Fatal("unprivileged CreateVM accepted (§5.3 requires KVM privilege)")
	}
}

func TestCreateVMSpecValidation(t *testing.T) {
	h := bootSiloz(t)
	cases := []VMSpec{
		{Name: "a", Socket: 0, MemoryBytes: 0},
		{Name: "b", Socket: 0, MemoryBytes: geometry.PageSize2M + 1},
		{Name: "c", Socket: 9, MemoryBytes: geometry.PageSize2M},
		{Name: "d", Socket: 0, MemoryBytes: geometry.PageSize2M, MediatedBytes: 100},
	}
	for _, spec := range cases {
		if _, err := h.CreateVM(kvmProc(), spec); err == nil {
			t.Errorf("bad spec %+v accepted", spec)
		}
	}
}

func TestCreateVMSilozPlacement(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "tenant0", Socket: 0, MemoryBytes: 64 * geometry.MiB,
		VCPUs: 2, MediatedBytes: 64 * geometry.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(vm.Nodes()); got != 1 {
		t.Fatalf("VM owns %d nodes, want 1 (64 MiB / 64 MiB groups)", got)
	}
	// Every RAM page is inside the VM's domain.
	for _, hpa := range vm.RAMPages() {
		if !vm.InDomain(hpa) {
			t.Errorf("RAM page %#x outside the VM's subarray groups", hpa)
		}
		if !vm.OwnsHPA(hpa) {
			t.Errorf("OwnsHPA(%#x) = false", hpa)
		}
	}
	if got := len(vm.RAMPages()); got != 32 {
		t.Errorf("RAM pages = %d, want 32", got)
	}
	// EPT pages live in the EPT node (GuardRows protection).
	eptNode, err := h.EPTNode(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range vm.Tables().Pages() {
		if !eptNode.Contains(pa) {
			t.Errorf("EPT page %#x outside the EPT node", pa)
		}
	}
	// Mediated pages live in the host node, not the VM's domain (§5.1).
	hostNode := h.Topology().NodesOnSocket(0, numa.HostReserved)[0]
	for _, pa := range vm.MediatedPages() {
		if !hostNode.Contains(pa) {
			t.Errorf("mediated page %#x outside host node", pa)
		}
		if vm.InDomain(pa) {
			t.Errorf("mediated page %#x inside guest domain", pa)
		}
	}
	// Exclusive ownership via cgroup.
	if owner, ok := h.Registry().OwnerOf(vm.Nodes()[0].ID); !ok || owner != "vm:tenant0" {
		t.Errorf("node owner = %q, %v", owner, ok)
	}
}

func TestTwoVMsDisjointDomains(t *testing.T) {
	h := bootSiloz(t)
	a, err := h.CreateVM(kvmProc(), VMSpec{Name: "a", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.CreateVM(kvmProc(), VMSpec{Name: "b", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes()[0].ID == b.Nodes()[0].ID {
		t.Fatal("two VMs share a guest-reserved node")
	}
	for _, hpa := range b.RAMPages() {
		if a.InDomain(hpa) {
			t.Errorf("VM b page %#x inside VM a's domain", hpa)
		}
	}
}

func TestVMExhaustionAndMultiNode(t *testing.T) {
	h := bootSiloz(t)
	// 3 guest nodes of 64 MiB on socket 0; a 128 MiB VM takes 2.
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "big", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Nodes()) != 2 {
		t.Fatalf("VM owns %d nodes, want 2", len(vm.Nodes()))
	}
	// 128 MiB more does not fit in the remaining 64 MiB node.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "big2", Socket: 0, MemoryBytes: 128 * geometry.MiB}); !errors.Is(err, ErrCapacityExhausted) {
		t.Fatalf("over-provisioning: err = %v, want ErrCapacityExhausted", err)
	}
	// But the other socket is free.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "big3", Socket: 1, MemoryBytes: 128 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyVMReleasesResources(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "x", Socket: 0, MemoryBytes: 64 * geometry.MiB, MediatedBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	nodeID := vm.Nodes()[0].ID
	a, err := h.Allocator(nodeID)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != 0 {
		t.Fatalf("node not fully used: %d free", a.FreeBytes())
	}
	if err := h.DestroyVM("x"); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != a.TotalBytes() {
		t.Errorf("node memory not freed: %d of %d", a.FreeBytes(), a.TotalBytes())
	}
	if _, ok := h.Registry().OwnerOf(nodeID); ok {
		t.Error("node still owned after destroy")
	}
	// Node is reusable.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "x", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatalf("node not reusable: %v", err)
	}
	if err := h.DestroyVM("nope"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("destroying unknown VM: err = %v, want ErrVMNotFound", err)
	}
}

func TestDuplicateVMNameRejected(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "dup", Socket: 0, MemoryBytes: geometry.PageSize2M}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "dup", Socket: 0, MemoryBytes: geometry.PageSize2M}); err == nil {
		t.Error("duplicate VM name accepted")
	}
	if got := len(h.VMs()); got != 1 {
		t.Errorf("VMs() = %d", got)
	}
	if _, ok := h.VM("dup"); !ok {
		t.Error("VM lookup failed")
	}
}

func TestGuestReadWrite(t *testing.T) {
	for _, mode := range []Mode{ModeSiloz, ModeBaseline} {
		h, err := Boot(testConfig(), mode)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "io", Socket: 0, MemoryBytes: 64 * geometry.MiB, MediatedBytes: 8192})
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("siloz subarray group isolation")
		// Spanning a 2 MiB page boundary.
		gpa := uint64(geometry.PageSize2M) - 7
		if err := vm.WriteGuest(gpa, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := vm.ReadGuest(gpa, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("mode %v: guest RAM round trip failed", mode)
		}
		// Mediated region I/O (hypervisor-mediated path).
		if err := vm.WriteGuest(MediatedBase+100, data); err != nil {
			t.Fatal(err)
		}
		got2 := make([]byte, len(data))
		if err := vm.ReadGuest(MediatedBase+100, got2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, data) {
			t.Errorf("mode %v: mediated round trip failed", mode)
		}
		// Out-of-bounds GPA.
		if err := vm.ReadGuest(uint64(vm.Spec().MemoryBytes)+4096, got); err == nil {
			t.Error("unmapped gpa readable")
		}
	}
}

func TestHammerMediatedRejected(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "h", Socket: 0, MemoryBytes: geometry.PageSize2M, MediatedBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(MediatedBase, 1000, 0); err == nil {
		t.Fatal("hammering a mediated page must be refused (§5.1)")
	}
}

// attackEdges hammers the first and last row of every contiguous physical
// run of the VM's RAM — the rows adjacent to other tenants' memory.
func attackEdges(t *testing.T, h *Hypervisor, vm *VM, acts int) {
	t.Helper()
	pages := vm.RAMPages()
	runs := make([]subarray.Range, 0, len(pages))
	for _, p := range pages {
		runs = append(runs, subarray.Range{Start: p, End: p + geometry.PageSize2M})
	}
	for _, run := range subarray.Coalesce(runs) {
		for _, pa := range []uint64{run.Start, run.End - geometry.CacheLineSize} {
			if err := h.Memory().ActivatePhys(pa, acts, 0); err != nil {
				t.Fatal(err)
			}
		}
		h.Memory().Refresh() // separate windows to respect ACT budgets
	}
}

func TestSilozContainsInterVMHammering(t *testing.T) {
	// The headline security property (§7.1): hammering from inside a
	// VM's domain never flips bits outside it.
	h := bootSiloz(t)
	attacker, err := h.CreateVM(kvmProc(), VMSpec{Name: "attacker", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := h.CreateVM(kvmProc(), VMSpec{Name: "victim", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	attackEdges(t, h, attacker, 20000)
	flips := h.Memory().Flips()
	if len(flips) == 0 {
		t.Fatal("attack produced no flips; containment test is vacuous")
	}
	for _, f := range flips {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !attacker.InDomain(pa) {
			t.Errorf("flip escaped the attacker's domain: %v at %#x", f, pa)
		}
		if victim.InDomain(pa) {
			t.Errorf("flip landed in the victim's domain: %v", f)
		}
	}
}

func TestBaselineAllowsInterVMHammering(t *testing.T) {
	// The baseline comparison: without subarray awareness, edge-row
	// hammering flips bits outside the attacker's own memory.
	h := bootBaseline(t)
	attacker, err := h.CreateVM(kvmProc(), VMSpec{Name: "attacker", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "victim", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	attackEdges(t, h, attacker, 20000)
	escaped := false
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !attacker.OwnsHPA(pa) {
			escaped = true
			break
		}
	}
	if !escaped {
		t.Error("baseline contained all flips; expected inter-VM bit flips")
	}
}

func TestModeString(t *testing.T) {
	if ModeSiloz.String() != "siloz" || ModeBaseline.String() != "baseline" {
		t.Error("Mode.String wrong")
	}
}
