package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/geometry"
)

// TestInterSubarrayRepairsOfflinedAtBoot verifies the §6 mitigation end to
// end: when a DIMM uses inter-subarray row repairs, Siloz identifies the
// affected media rows via the translation drivers and removes their pages
// from allocatable memory at boot, so no tenant's data can land on (or be
// reached through) a spare in a foreign subarray.
func TestInterSubarrayRepairsOfflinedAtBoot(t *testing.T) {
	g := testGeometry()
	rt := addr.NewRepairTable(g)
	// A handful of inter-subarray repairs on different banks/sockets,
	// the ~0.15%-scale population §6 cites.
	for i, spec := range []struct {
		bank geometry.BankID
		from int
		to   int
	}{
		{geometry.BankID{Socket: 0, DIMM: 0, Rank: 0, Bank: 0}, 100, 700},
		{geometry.BankID{Socket: 0, DIMM: 0, Rank: 1, Bank: 3}, 600, 1500},
		{geometry.BankID{Socket: 1, DIMM: 0, Rank: 0, Bank: 5}, 214, 900},
		{geometry.BankID{Socket: 1, DIMM: 0, Rank: 1, Bank: 7}, 1800, 300},
	} {
		if err := rt.Add(addr.Repair{Bank: spec.bank, From: spec.from, Spare: addr.SpareRow{Anchor: spec.to}}); err != nil {
			t.Fatalf("repair %d: %v", i, err)
		}
	}
	if len(rt.InterSubarrayRepairs()) != 4 {
		t.Fatal("repairs not inter-subarray")
	}
	cfg := testConfig()
	cfg.Repairs = rt
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}

	// Every repaired media row's row group is excluded from all logical
	// nodes: no node owns it, so no software can ever be placed there.
	mapper := h.Memory().Mapper()
	checked := 0
	for s, rows := range offlineRowsFor(t, h, rt) {
		for _, row := range rows {
			pa, err := mapper.Encode(geometry.MediaAddr{
				Bank: geometry.BankID{Socket: s}, Row: row, Col: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n, owned := h.Topology().NodeOf(pa); owned {
				t.Fatalf("repaired row %d (socket %d) still owned by node %d", row, s, n.ID)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no repaired rows checked")
	}
	_ = g

	// Tenants fill the machine's guest nodes; hammering near spares can
	// only corrupt offlined rows, never another tenant's data.
	proc := kvmProc()
	a, err := h.CreateVM(proc, VMSpec{Name: "a", Socket: 0, MemoryBytes: 32 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.CreateVM(proc, VMSpec{Name: "b", Socket: 0, MemoryBytes: 32 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	attackEdges(t, h, a, 20000)
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.OwnsHPA(pa) {
			t.Errorf("flip reached tenant b despite repair offlining: %v", f)
		}
		// Flips must be in a's domain or in offlined (unowned) pages.
		if !a.InDomain(pa) {
			if _, owned := h.Topology().NodeOf(pa); owned {
				t.Errorf("flip escaped to owned memory: %v", f)
			}
		}
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit failed: %v", bad)
	}
}

// offlineRowsFor recomputes the §6 offline rows the boot should have used.
func offlineRowsFor(t *testing.T, h *Hypervisor, rt *addr.RepairTable) map[int][]int {
	t.Helper()
	im := h.InternalMapperFor(0, 0)
	_ = im
	out := map[int][]int{}
	for _, r := range rt.InterSubarrayRepairs() {
		mapper := h.InternalMapperFor(r.Bank.Socket, r.Bank.DIMM)
		for _, side := range []addr.Side{addr.SideA, addr.SideB} {
			out[r.Bank.Socket] = append(out[r.Bank.Socket], mapper.MediaRow(r.Bank, r.From, side))
		}
	}
	return out
}
