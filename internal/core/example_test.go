package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
)

// Example boots Siloz on the paper's evaluation server, provisions a tenant
// VM in private subarray groups, and shows where its memory landed.
func Example() {
	hv, err := core.Boot(core.Config{
		Profiles:      []dram.Profile{dram.ProfileA()},
		EPTProtection: ept.GuardRows,
	}, core.ModeSiloz)
	if err != nil {
		panic(err)
	}
	vm, err := hv.CreateVM(core.Process{KVMPrivileged: true}, core.VMSpec{
		Name: "tenant", Socket: 0, MemoryBytes: 3 * geometry.GiB,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mode: %s\n", hv.Mode())
	fmt.Printf("tenant owns %d exclusive guest nodes (%d x 2 MiB pages)\n",
		len(vm.Nodes()), len(vm.RAMPages()))
	hpa, err := vm.Translate(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gpa 0 maps inside the tenant's domain: %v\n", vm.InDomain(hpa))
	// Output:
	// mode: siloz
	// tenant owns 2 exclusive guest nodes (1536 x 2 MiB pages)
	// gpa 0 maps inside the tenant's domain: true
}
