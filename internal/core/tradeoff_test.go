package core

import (
	"testing"

	"repro/internal/geometry"
)

// TestSilozDoesNotPreventIntraVMHammering documents the §9 trade-off: Siloz
// provides inter-VM protection only. A tenant can still flip bits inside
// its own subarray groups — in fact subarray co-location can make intra-VM
// hammering easier — which the paper deems acceptable given the relative
// severity of inter-VM exploits.
func TestSilozDoesNotPreventIntraVMHammering(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "selfharm", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	flips := h.Memory().Flips()
	if len(flips) == 0 {
		t.Fatal("no intra-VM flips; the §9 trade-off should be observable")
	}
	for _, f := range flips {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("self-hammering flip left the VM's own domain: %v", f)
		}
	}
}

// TestBootSilozWithSNC verifies §8.1: sub-NUMA clustering halves subarray
// group sizes, enabling finer-grained provisioning, and Siloz boots and
// isolates normally on the clustered topology.
func TestBootSilozWithSNC(t *testing.T) {
	g, err := testGeometry().WithSNC(2)
	if err != nil {
		// test geometry has 1 DIMM/socket; build an SNC-able variant.
		g2 := testGeometry()
		g2.DIMMsPerSocket = 2
		g2.BanksPerRank = 4
		g, err = g2.WithSNC(2)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := testConfig()
	cfg.Geometry = g
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Layout().GroupBytes(); got != uint64(g.SubarrayGroupBytes()) {
		t.Errorf("group bytes = %d, want %d", got, g.SubarrayGroupBytes())
	}
	// Groups are half the size of the unclustered groups.
	base := testGeometry()
	base.DIMMsPerSocket = 2
	base.BanksPerRank = 4
	if h.Layout().GroupBytes()*2 != uint64(base.SubarrayGroupBytes()) {
		t.Errorf("SNC group %d not half of %d", h.Layout().GroupBytes(), base.SubarrayGroupBytes())
	}
	// A small VM on a cluster still gets exclusive groups and containment.
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "micro", Socket: 0, MemoryBytes: uint64(h.Layout().GroupBytes())})
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Nodes()) != 1 {
		t.Errorf("micro VM owns %d nodes, want 1", len(vm.Nodes()))
	}
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("flip escaped on SNC topology: %v", f)
		}
	}
}

func TestRemoteSpillPlacement(t *testing.T) {
	// §5.2: VMs prefer same-socket subarray groups; with AllowRemote a
	// VM larger than its home socket's free groups spills to the other
	// socket's guest-reserved nodes (paying remote latency, never losing
	// isolation).
	h := bootSiloz(t)
	// Socket 0 has 3 guest nodes of 64 MiB; ask for 4 nodes' worth.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "toolarge", Socket: 0, MemoryBytes: 256 * geometry.MiB}); err == nil {
		t.Fatal("oversized local-only VM accepted")
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "spill", Socket: 0, MemoryBytes: 256 * geometry.MiB, AllowRemote: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sockets := map[int]int{}
	for _, n := range vm.Nodes() {
		sockets[n.Socket]++
	}
	if sockets[0] != 3 || sockets[1] != 1 {
		t.Fatalf("spill placement = %v, want 3 local + 1 remote", sockets)
	}
	// Isolation still holds across the spill.
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	lastGPA := vm.Spec().MemoryBytes - geometry.PageSize2M
	if err := vm.Hammer(lastGPA, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("flip escaped the spilled VM's domain: %v", f)
		}
	}
}

func TestBootSilozOnDDR5Server(t *testing.T) {
	// §8.2: Siloz generalizes to DDR5's larger bank counts; groups double
	// and isolation works unchanged.
	cfg := testConfig()
	g := testGeometry()
	g.BanksPerRank = 16 // "DDR5": double the test geometry's banks
	cfg.Geometry = g
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h.Layout().GroupBytes(), uint64(g.SubarrayGroupBytes()); got != want {
		t.Fatalf("group bytes = %d, want %d", got, want)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "d5", Socket: 0, MemoryBytes: uint64(g.SubarrayGroupBytes())})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("flip escaped on the DDR5-like geometry: %v", f)
		}
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit: %v", bad)
	}
}

func TestVCPUPinning(t *testing.T) {
	// §5.2/§7: vCPUs are pinned to dedicated logical cores of the VM's
	// socket; pinning is exclusive and released on destroy.
	h := bootSiloz(t)
	a, err := h.CreateVM(kvmProc(), VMSpec{Name: "a", Socket: 0, MemoryBytes: geometry.PageSize2M, VCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	cores, err := h.PinVCPUs(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 2 || cores[0] != 0 || cores[1] != 1 {
		t.Fatalf("cores = %v", cores)
	}
	// Idempotent.
	again, err := h.PinVCPUs(a)
	if err != nil || len(again) != 2 {
		t.Fatalf("re-pin: %v, %v", again, err)
	}
	// Second VM gets the remaining cores; a third cannot fit.
	b, err := h.CreateVM(kvmProc(), VMSpec{Name: "b", Socket: 0, MemoryBytes: geometry.PageSize2M, VCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PinVCPUs(b); err != nil {
		t.Fatal(err)
	}
	c, err := h.CreateVM(kvmProc(), VMSpec{Name: "c", Socket: 0, MemoryBytes: geometry.PageSize2M, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PinVCPUs(c); err == nil {
		t.Fatal("oversubscribed pinning accepted")
	}
	// Ownership visible; released on destroy.
	if owner, ok := h.CoreOwner(0); !ok || owner != "a" {
		t.Errorf("CoreOwner(0) = %q, %v", owner, ok)
	}
	if err := h.DestroyVM("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.CoreOwner(0); ok {
		t.Error("core 0 still owned after destroy")
	}
	if _, err := h.PinVCPUs(c); err != nil {
		t.Fatalf("cores not reusable: %v", err)
	}
}
