package core

// Live pre-copy migration of a running VM's guest pages between logical
// NUMA nodes (subarray groups). Siloz's exclusive-reservation model wastes
// capacity to fragmentation: a VM needs whole unowned subarray groups on its
// home socket, so a socket can refuse a VM while the machine as a whole has
// plenty of free groups (§8.1). The migration engine recovers that capacity
// by moving a victim VM's pages to free groups elsewhere — without stopping
// the guest for more than the final stop-and-copy window, and without ever
// letting two tenants' domains overlap:
//
//   1. Adopt the destination nodes into the VM's control group (Expand).
//      Exclusive ownership now covers source and destination, so the
//      widened domain still overlaps no other tenant.
//   2. Arm EPT write-protection dirty logging and copy all pages while the
//      guest keeps running; re-copy dirtied pages each round until the
//      dirty set converges (or a round/shrink budget expires).
//   3. Pause the guest, copy the residual dirty set, remap every EPT leaf
//      to its destination frame, flush the TLB — the measured downtime.
//   4. Still paused: relocate the EPT tables into the destination socket's
//      guard-protected EPT block when the migration crossed sockets (§5.4
//      demands the tables live on the socket whose block protects them),
//      then scrub and free the source pages and shrink the control group
//      off the source nodes. When the guest resumes it can only touch
//      destination frames, and the vacated groups — including the source
//      EPT row group's pages — are free for the next reservation.
//
// Mediated pages are host-reserved and never move.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// MigrateOptions tunes the pre-copy engine. The zero value gives defaults.
type MigrateOptions struct {
	// MaxRounds caps pre-copy rounds before forcing stop-and-copy.
	MaxRounds int
	// StopPages: when a round ends with at most this many dirty pages, the
	// engine proceeds to stop-and-copy.
	StopPages int
	// MinShrinkRatio: if a round leaves at least this fraction of the
	// previous round's dirty set dirty again, pre-copy is not converging
	// and the engine stops early.
	MinShrinkRatio float64
	// GuestStep, if set, runs after each round's copy and before the dirty
	// log is drained — deterministic tests and experiments drive guest
	// writes here instead of racing real goroutines against the engine.
	GuestStep func(round int) error
	// OnRound, if set, observes each completed round.
	OnRound func(MigrateRound)
}

func (o *MigrateOptions) normalize() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 16
	}
	if o.StopPages <= 0 {
		o.StopPages = 8
	}
	if o.MinShrinkRatio <= 0 {
		o.MinShrinkRatio = 0.9
	}
}

// MigrateRound records one pre-copy round.
type MigrateRound struct {
	Round       int
	PagesCopied int    // pages processed this round
	BytesCopied uint64 // bytes actually moved (zero pages transfer nothing)
	DirtyAfter  int    // pages the guest dirtied while the round ran
}

// MigrateReport summarizes a completed migration.
type MigrateReport struct {
	VM          string
	SourceNodes []int
	DestNodes   []int
	PagesTotal  int // guest RAM pages (2 MiB)

	Rounds      []MigrateRound
	PagesCopied int    // total page copies across all rounds + stop-and-copy
	BytesCopied uint64 // total bytes moved

	DowntimePages int           // pages copied with the guest paused
	DowntimeBytes uint64        // bytes moved with the guest paused
	Downtime      time.Duration // wall-clock pause (simulator time, not modeled DRAM time)
	Converged     bool          // dirty set shrank below StopPages

	// EPTRelocatedPages counts table pages rebuilt on the destination
	// socket's EPT pool (zero for same-socket migrations); the matching
	// EPTReclaimedBytes returned to the source socket's pool.
	EPTRelocatedPages int
	EPTReclaimedBytes uint64
}

// migRegion pairs a region with its freshly-allocated destination pages.
type migRegion struct {
	idx   int // index into vm.regions
	pages []uint64
	node  int
}

// MigrateVM live-migrates a VM's unmediated pages (RAM and guest-placed
// regions) onto the given destination nodes using iterative pre-copy. On
// error or context cancellation before the final stop-and-copy the VM is
// rolled back intact on its source nodes. The VM must not be destroyed
// concurrently with its migration.
func (h *Hypervisor) MigrateVM(ctx context.Context, name string, destNodeIDs []int, opt MigrateOptions) (*MigrateReport, error) {
	opt.normalize()
	h.mu.Lock()
	vm, ok := h.vms[name]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("live migration"); err != nil {
		h.mu.Unlock()
		return nil, err
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		vm.releaseLifecycle()
		h.mu.Unlock()
	}()
	destIDs, err := h.validateMigrationDests(vm, destNodeIDs)
	if err != nil {
		return nil, err
	}

	srcRAM := append([]uint64(nil), vm.ram...)
	srcRamNode := make(map[uint64]int, len(vm.ramNode))
	for pa, id := range vm.ramNode {
		srcRamNode[pa] = id
	}
	// Ballooned-out slots hold no frame: they are skipped by every copy,
	// remap, and free below, and stay unmapped holes at the destination.
	ramPages := len(srcRAM)
	resident := 0
	for _, hpa := range srcRAM {
		if hpa != hpaNone {
			resident++
		}
	}
	var srcNodeIDs []int
	if h.mode == ModeSiloz {
		for _, n := range vm.nodes {
			srcNodeIDs = append(srcNodeIDs, n.ID)
		}
	} else {
		seen := map[int]bool{}
		for _, id := range srcRamNode {
			if !seen[id] {
				seen[id] = true
				srcNodeIDs = append(srcNodeIDs, id)
			}
		}
		sort.Ints(srcNodeIDs)
	}

	// Step 1: widen the domain over the destination nodes. The registry
	// enforces that they are unowned, so exclusivity is never violated.
	if h.mode == ModeSiloz {
		if err := h.reg.Expand(vm.cgroup.Name, destIDs); err != nil {
			return nil, err
		}
		vm.nodes = vm.cgroup.Nodes()
	}
	dstRAM, dstNode, dstRegions, err := h.allocMigrationPages(vm, destIDs)
	if err != nil {
		h.rollbackMigration(vm, destIDs, nil, nil, nil, false)
		return nil, fmt.Errorf("core: migrating VM %q: %w", name, err)
	}
	rollback := func(tracking bool) {
		h.rollbackMigration(vm, destIDs, dstRAM, dstNode, dstRegions, tracking)
	}

	// Step 2: pre-copy with dirty logging.
	if err := vm.StartDirtyTracking(); err != nil {
		rollback(false)
		return nil, err
	}
	written := make([]bool, ramPages) // dst frames the engine has written
	buf := make([]byte, geometry.PageSize2M)
	copyPage := func(p int) (uint64, error) {
		if err := h.mem.ReadPhys(srcRAM[p], buf); err != nil {
			return 0, err
		}
		// A page that is still all-zero was never materialized at the
		// source; its fresh destination frame is already zero, so nothing
		// needs to move. Once the engine has written a frame it always
		// rewrites it (the guest may have re-zeroed a page).
		if !written[p] && allZero(buf) {
			return 0, nil
		}
		if err := h.mem.WritePhys(dstRAM[p], buf); err != nil {
			return 0, err
		}
		written[p] = true
		return uint64(len(buf)), nil
	}

	rep := &MigrateReport{
		VM: name, SourceNodes: srcNodeIDs, DestNodes: destIDs, PagesTotal: resident,
	}
	pending := make([]int, 0, resident)
	for p, hpa := range srcRAM {
		if hpa != hpaNone {
			pending = append(pending, p)
		}
	}
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			rollback(true)
			return nil, fmt.Errorf("core: migration of VM %q aborted: %w", name, err)
		}
		var bytes uint64
		for _, p := range pending {
			n, err := copyPage(p)
			if err != nil {
				rollback(true)
				return nil, err
			}
			bytes += n
		}
		if opt.GuestStep != nil {
			if err := opt.GuestStep(round); err != nil {
				rollback(true)
				return nil, fmt.Errorf("core: migration guest step: %w", err)
			}
		}
		dirtyGPAs, err := vm.TakeDirty()
		if err != nil {
			rollback(true)
			return nil, err
		}
		rr := MigrateRound{Round: round, PagesCopied: len(pending), BytesCopied: bytes, DirtyAfter: len(dirtyGPAs)}
		rep.Rounds = append(rep.Rounds, rr)
		rep.PagesCopied += len(pending)
		rep.BytesCopied += bytes
		if opt.OnRound != nil {
			opt.OnRound(rr)
		}
		next := make([]int, len(dirtyGPAs))
		for i, gpa := range dirtyGPAs {
			next[i] = int(gpa / geometry.PageSize2M)
		}
		if len(next) <= opt.StopPages {
			rep.Converged = true
			pending = next
			break
		}
		if round+1 >= opt.MaxRounds {
			pending = next // round budget exhausted
			break
		}
		if float64(len(next)) >= opt.MinShrinkRatio*float64(len(pending)) {
			pending = next // dirty set not shrinking; more rounds are wasted work
			break
		}
		pending = next
	}

	// Step 3: stop-and-copy. The pause is the commitment point: a
	// cancellation arriving later than this check is ignored, because the
	// remap below must run to completion either way.
	if err := ctx.Err(); err != nil {
		rollback(true)
		return nil, fmt.Errorf("core: migration of VM %q aborted: %w", name, err)
	}
	// The guest is paused: stores block on the vCPU gate, so the residual
	// dirty set is final.
	vm.Pause()
	start := time.Now()
	residual, err := vm.TakeDirty()
	if err != nil {
		vm.Resume()
		rollback(true)
		return nil, err
	}
	finalSet := map[int]bool{}
	for _, p := range pending {
		finalSet[p] = true
	}
	for _, gpa := range residual {
		finalSet[int(gpa/geometry.PageSize2M)] = true
	}
	finalPages := make([]int, 0, len(finalSet))
	for p := range finalSet {
		finalPages = append(finalPages, p)
	}
	sort.Ints(finalPages)
	var dtBytes uint64
	for _, p := range finalPages {
		n, err := copyPage(p)
		if err != nil {
			vm.Resume()
			rollback(true)
			return nil, err
		}
		dtBytes += n
	}
	// Guest-placed region pages (4 KiB): the guest is paused, one shot.
	rbuf := buf[:geometry.PageSize4K]
	for _, mr := range dstRegions {
		for i, src := range vm.regions[mr.idx].pages {
			if err := h.mem.ReadPhys(src, rbuf); err == nil && !allZero(rbuf) {
				if werr := h.mem.WritePhys(mr.pages[i], rbuf); werr != nil {
					vm.Resume()
					rollback(true)
					return nil, werr
				}
			} else if err != nil {
				vm.Resume()
				rollback(true)
				return nil, err
			}
		}
	}

	// Commit: remap every leaf to its destination frame. Remapping RAM
	// leaves writable also disarms the per-leaf write protection.
	for p := 0; p < ramPages; p++ {
		if srcRAM[p] == hpaNone {
			continue // ballooned hole: stays unmapped at the destination
		}
		if err := vm.tables.Remap2MProt(uint64(p)*geometry.PageSize2M, dstRAM[p], true); err != nil {
			for q := 0; q < p; q++ { // restore already-moved leaves
				if srcRAM[q] == hpaNone {
					continue
				}
				_ = vm.tables.Remap2MProt(uint64(q)*geometry.PageSize2M, srcRAM[q], true)
			}
			vm.Resume()
			rollback(true)
			return nil, err
		}
	}
	type oldRegion struct {
		pages []uint64
		node  int
	}
	var oldRegions []oldRegion
	for _, mr := range dstRegions {
		info := &vm.regions[mr.idx]
		writable := info.Type != RegionROM
		for i, hpa := range mr.pages {
			if err := vm.tables.Remap4KProt(info.gpa+uint64(i)*geometry.PageSize4K, hpa, writable); err != nil {
				vm.Resume()
				rollback(true)
				return nil, err
			}
		}
		oldRegions = append(oldRegions, oldRegion{pages: info.pages, node: info.nodeID})
		info.pages = mr.pages
		info.nodeID = mr.node
	}
	vm.ram = dstRAM
	newRamNode := make(map[uint64]int, ramPages)
	for p, hpa := range dstRAM {
		if hpa != hpaNone {
			newRamNode[hpa] = dstNode[p]
		}
	}
	vm.ramNode = newRamNode
	vm.InvalidateTLB()
	// The guest is paused, so the touched ledger is final for the source
	// frames: snapshot it as the source scrub ledger before folding the
	// engine's own writes in. A page the guest (or a device DMA) dirtied
	// between the final TakeDirty round and stop-and-copy is in this
	// ledger even when the engine's zero-page heuristic never wrote the
	// destination frame — step 4 must scrub its source frame regardless.
	srcTouched := make(map[int]struct{})
	vm.dirtyMu.Lock()
	vm.tracking = false
	vm.dirty = nil
	if vm.touched == nil {
		vm.touched = make(map[int]struct{})
	}
	for p := range vm.touched {
		srcTouched[p] = struct{}{}
	}
	for p, w := range written {
		if w {
			// The engine's copies are data-bearing writes to the new
			// frames: fold them into the scrub ledger.
			vm.touched[p] = struct{}{}
		}
	}
	vm.dirtyMu.Unlock()
	// Re-sync passthrough-device IOMMU tables onto the destination frames
	// before the source frames are freed: a stale IOMMU entry would keep
	// routing the device's DMAs into frames the next tenant may own.
	if err := vm.syncDeviceTables(); err != nil {
		vm.Resume()
		return nil, fmt.Errorf("core: migrating VM %q: %w", name, err)
	}

	// Still paused: pull the EPT tables onto the destination socket when the
	// migration crossed sockets, so the guard-block placement argument (§5.4)
	// holds for where the guest now lives and the source EPT row group can
	// drain. A relocation failure is not fatal to the migration — Relocate
	// rolls itself back, leaving the old hierarchy live on the source socket
	// — but it is surfaced to the caller after the source nodes are released.
	var relocErr error
	if h.mode == ModeSiloz {
		if dstSocket, ok := h.socketOfNodes(destIDs); ok && dstSocket != vm.eptSocket {
			var moved int
			moved, relocErr = h.relocateTables(vm, dstSocket)
			if relocErr == nil {
				rep.EPTRelocatedPages = moved
				rep.EPTReclaimedBytes = uint64(moved) * geometry.PageSize4K
			}
		}
	}
	rep.PagesCopied += len(finalPages)
	rep.BytesCopied += dtBytes
	rep.DowntimePages = len(finalPages)
	rep.DowntimeBytes = dtBytes
	rep.Downtime = time.Since(start)

	// Step 4: still paused, vacate the source — scrub data-bearing source
	// frames, free them, and shrink the domain. Only after the vacated
	// groups have left the VM's control group does the guest resume, so at
	// no instant can a tenant access memory outside its domain.
	//
	// A source frame is data-bearing when the engine copied data off it
	// (written) OR the touched ledger says the guest ever stored to it
	// (srcTouched). The union matters: the engine's zero-page heuristic
	// skips pages whose content it read as zero, yet an attacker-timed
	// store landing between the final TakeDirty round and the paused
	// residual copy can leave bytes the heuristic never saw — freeing such
	// a frame unscrubbed would hand the next tenant the attacker's data.
	for p, hpa := range srcRAM {
		if hpa == hpaNone {
			continue
		}
		_, touched := srcTouched[p]
		if written[p] || touched {
			_ = h.mem.ScrubPhys(hpa, geometry.PageSize2M)
		}
		if a, aerr := h.Allocator(srcRamNode[hpa]); aerr == nil {
			_ = a.Free(hpa, alloc.Order2M)
		}
	}
	for _, or := range oldRegions {
		if a, aerr := h.Allocator(or.node); aerr == nil {
			for _, pa := range or.pages {
				_ = h.mem.ScrubPhys(pa, geometry.PageSize4K)
				_ = a.Free(pa, 0)
			}
		}
	}
	if h.mode == ModeSiloz {
		if err := h.reg.Shrink(vm.cgroup.Name, srcNodeIDs); err != nil {
			// The guest already runs entirely on destination frames, but the
			// domain is still widened over the drained source nodes. That is
			// over-reservation, not an isolation breach — still, log it and
			// re-audit the whole system before resuming, so the drift is on
			// record rather than silent.
			vm.nodes = vm.cgroup.Nodes()
			vm.Resume()
			h.logf("migration of VM %q: failed to release source nodes %v; domain remains widened: %v",
				name, srcNodeIDs, err)
			findings := h.Audit()
			h.logf("post-failure audit of VM %q migration: %d findings", name, len(findings))
			for _, f := range findings {
				h.logf("post-failure audit: %s", f)
			}
			return rep, fmt.Errorf("core: releasing source nodes of VM %q: %w", name, err)
		}
		vm.nodes = vm.cgroup.Nodes()
	}
	vm.Resume()
	if relocErr != nil {
		h.logf("migrated VM %q but EPT relocation failed; tables remain on socket %d: %v",
			name, vm.eptSocket, relocErr)
		return rep, relocErr
	}
	h.logf("migrated VM %q: nodes %v -> %v, %d rounds, %d/%d pages copied, downtime %d pages, %d EPT pages relocated",
		name, srcNodeIDs, destIDs, len(rep.Rounds), rep.PagesCopied, resident, rep.DowntimePages, rep.EPTRelocatedPages)
	return rep, nil
}

// socketOfNodes resolves the single socket hosting every listed node; ok is
// false when the nodes span sockets (or the list is empty), in which case
// there is no one home for the EPT tables to follow.
func (h *Hypervisor) socketOfNodes(ids []int) (int, bool) {
	socket := -1
	for _, id := range ids {
		n, err := h.topo.Node(id)
		if err != nil {
			return 0, false
		}
		if socket == -1 {
			socket = n.Socket
		} else if n.Socket != socket {
			return 0, false
		}
	}
	if socket == -1 {
		return 0, false
	}
	return socket, true
}

// validateMigrationDests checks and dedupes the destination node list.
func (h *Hypervisor) validateMigrationDests(vm *VM, destNodeIDs []int) ([]int, error) {
	if len(destNodeIDs) == 0 {
		return nil, fmt.Errorf("core: migration of VM %q needs at least one destination node", vm.spec.Name)
	}
	seen := map[int]bool{}
	out := make([]int, 0, len(destNodeIDs))
	for _, id := range destNodeIDs {
		if seen[id] {
			continue
		}
		seen[id] = true
		n, err := h.topo.Node(id)
		if err != nil {
			return nil, err
		}
		if h.mode == ModeSiloz {
			if n.Kind != numa.GuestReserved {
				return nil, fmt.Errorf("core: destination node %d is %s-reserved; guest pages need guest-reserved nodes", id, n.Kind)
			}
			if vm.cgroup != nil && vm.cgroup.Allows(id) {
				return nil, fmt.Errorf("core: destination node %d already belongs to VM %q", id, vm.spec.Name)
			}
		} else if n.Kind != numa.HostReserved {
			return nil, fmt.Errorf("core: baseline destination node %d must be host-reserved", id)
		}
		out = append(out, id)
	}
	return out, nil
}

// allocMigrationPages allocates destination frames for guest RAM (2 MiB,
// spilling across destination nodes in the given order) and for guest-placed
// regions (4 KiB, Siloz only — under the baseline region pages are
// host-reserved and stay put). On failure everything allocated so far is
// freed and an error returned.
func (h *Hypervisor) allocMigrationPages(vm *VM, destIDs []int) (dstRAM []uint64, dstNode []int, dstRegions []migRegion, err error) {
	cleanup := func() {
		h.releaseMigrationPages(dstRAM, dstNode, dstRegions, false)
	}
	ramPages := len(vm.ram)
	dstRAM = make([]uint64, 0, ramPages)
	dstNode = make([]int, 0, ramPages)
	di := 0
	for p := 0; p < ramPages; p++ {
		if vm.ram[p] == hpaNone {
			// Ballooned hole: no destination frame; keep indexes aligned.
			dstRAM = append(dstRAM, hpaNone)
			dstNode = append(dstNode, -1)
			continue
		}
		var hpa uint64
		for {
			if di >= len(destIDs) {
				cleanup()
				return nil, nil, nil, fmt.Errorf("destination nodes full at page %d/%d: %w", p, ramPages, alloc.ErrNoMemory)
			}
			a, aerr := h.Allocator(destIDs[di])
			if aerr != nil {
				cleanup()
				return nil, nil, nil, aerr
			}
			hpa, err = a.Alloc(alloc.Order2M)
			if err == nil {
				break
			}
			di++ // node exhausted; move to the next destination node
		}
		dstRAM = append(dstRAM, hpa)
		dstNode = append(dstNode, destIDs[di])
	}
	if h.mode != ModeSiloz {
		return dstRAM, dstNode, nil, nil
	}
	for idx, info := range vm.regions {
		if !info.Type.Unmediated() {
			continue
		}
		var pages []uint64
		var node int
		for _, id := range destIDs {
			a, aerr := h.Allocator(id)
			if aerr != nil {
				cleanup()
				return nil, nil, nil, aerr
			}
			pages, err = a.AllocPages(0, len(info.pages))
			if err == nil {
				node = id
				break
			}
		}
		if err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("region %q: %w", info.Name, err)
		}
		dstRegions = append(dstRegions, migRegion{idx: idx, pages: pages, node: node})
	}
	return dstRAM, dstNode, dstRegions, nil
}

// releaseMigrationPages frees destination frames, optionally scrubbing them
// first (they may hold pre-copied tenant data on the abort path).
func (h *Hypervisor) releaseMigrationPages(dstRAM []uint64, dstNode []int, dstRegions []migRegion, scrub bool) {
	for p, hpa := range dstRAM {
		if hpa == hpaNone {
			continue
		}
		if scrub {
			_ = h.mem.ScrubPhys(hpa, geometry.PageSize2M)
		}
		if a, err := h.Allocator(dstNode[p]); err == nil {
			_ = a.Free(hpa, alloc.Order2M)
		}
	}
	for _, mr := range dstRegions {
		if a, err := h.Allocator(mr.node); err == nil {
			for _, pa := range mr.pages {
				if scrub {
					_ = h.mem.ScrubPhys(pa, geometry.PageSize4K)
				}
				_ = a.Free(pa, 0)
			}
		}
	}
}

// rollbackMigration aborts cleanly before commit: the guest keeps running on
// its source frames with full write permission, destination frames are
// scrubbed and freed, and the domain shrinks back off the destination nodes.
func (h *Hypervisor) rollbackMigration(vm *VM, destIDs []int, dstRAM []uint64, dstNode []int, dstRegions []migRegion, tracking bool) {
	if tracking {
		_ = vm.StopDirtyTracking()
	}
	h.releaseMigrationPages(dstRAM, dstNode, dstRegions, true)
	if h.mode == ModeSiloz && vm.cgroup != nil {
		_ = h.reg.Shrink(vm.cgroup.Name, destIDs)
		vm.nodes = vm.cgroup.Nodes()
	}
}

// allZero reports whether a buffer is entirely zero bytes.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
