package core

import (
	"fmt"
	"sort"
)

// CPU affinity (§5.2, §7): host-reserved nodes carry their socket's cores,
// and the evaluation pins each VM's vCPUs to dedicated logical cores of its
// home socket (CPU affinity [99]). The ledger tracks exclusive pinning so
// tenants do not share logical cores.

// PinVCPUs assigns the VM's vCPUs to free logical cores of its socket,
// returning the chosen cores. Pinning is exclusive; destroying the VM
// releases its cores.
func (h *Hypervisor) PinVCPUs(vm *VM) ([]int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if vm.pinned != nil {
		return vm.pinned, nil
	}
	if vm.spec.VCPUs <= 0 {
		return nil, fmt.Errorf("core: VM %q has no vCPUs to pin", vm.spec.Name)
	}
	if h.coreOwner == nil {
		h.coreOwner = make(map[int]string)
	}
	g := h.cfg.Geometry
	var free []int
	for c := vm.spec.Socket * g.CoresPerSocket; c < (vm.spec.Socket+1)*g.CoresPerSocket; c++ {
		if _, taken := h.coreOwner[c]; !taken {
			free = append(free, c)
		}
	}
	if len(free) < vm.spec.VCPUs {
		return nil, fmt.Errorf("core: socket %d has %d free cores, VM %q needs %d",
			vm.spec.Socket, len(free), vm.spec.Name, vm.spec.VCPUs)
	}
	sort.Ints(free)
	cores := free[:vm.spec.VCPUs]
	for _, c := range cores {
		h.coreOwner[c] = vm.spec.Name
	}
	vm.pinned = append([]int(nil), cores...)
	h.logf("pinned VM %q vCPUs to cores %v", vm.spec.Name, cores)
	return vm.pinned, nil
}

// PinnedCores returns the VM's pinned cores (nil if not pinned).
func (vm *VM) PinnedCores() []int {
	out := make([]int, len(vm.pinned))
	copy(out, vm.pinned)
	return out
}

// releaseCores frees a VM's core pinning. Caller holds h.mu.
func (vm *VM) releaseCores() {
	if vm.pinned == nil {
		return
	}
	for _, c := range vm.pinned {
		delete(vm.hv.coreOwner, c)
	}
	vm.pinned = nil
}

// CoreOwner reports which VM (if any) a logical core is pinned to.
func (h *Hypervisor) CoreOwner(core int) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	name, ok := h.coreOwner[core]
	return name, ok
}
