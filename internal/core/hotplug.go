package core

// Guest-visible memory hotplug: growing a running VM beyond its boot-time
// exclusive reservation. Siloz ties every VM to whole subarray groups fixed
// at CreateVM, so without hotplug a tenant whose working set outgrows its
// reservation must be killed and re-admitted. HotplugVM removes that
// rigidity while preserving the isolation invariant at every step:
//
//   1. Obtain 2 MiB frames for the new range — from free capacity in the
//      VM's current nodes first, then by adopting unowned guest-reserved
//      nodes (home socket first, remote if the spec allows) through the
//      registry's exclusive Expand. The registry refuses owned nodes, so a
//      growing VM can never reach into another tenant's domain.
//   2. Scrub every frame before the guest can see it: a recycled page must
//      never leak a previous tenant's bytes, and the hot-added range must
//      read all-zero like real hot-added DIMM memory.
//   3. Pause the guest and extend the EPTs with new 2 MiB leaves at the top
//      of guest RAM, then grow the VM's recorded size. The pause gate means
//      no guest access can observe a half-built range.
//
// On any partial failure the adoption, allocations, and mappings are rolled
// back completely: the VM keeps exactly its previous size and node set.
//
// The guest half lives in internal/guest: Kernel.HotplugBank invokes this
// path and then raises the kernel's usable-memory limit so the new frame
// range becomes allocatable and mappable (guest.Process.Map).

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// HotplugReport summarizes one HotplugVM call.
type HotplugReport struct {
	VM         string
	AddedBytes uint64 // bytes hot-added by this call
	AddedPages int    // 2 MiB pages hot-added
	BaseGPA    uint64 // guest physical base of the hot-added range

	NewMemoryBytes uint64 // VM RAM after the call (spec.MemoryBytes)
	AdoptedNodes   []int  // guest nodes adopted to back the growth
	ScrubbedBytes  uint64 // bytes zeroed before the guest could see them
}

// HotplugVM grows a running VM's RAM by addBytes beyond its current size,
// adopting additional subarray-group nodes as needed. The new range appears
// at the top of guest RAM, zero-filled. The call takes the VM's lifecycle
// latch (ErrResizeBusy while ballooning, resizing, or migrating) and is
// refused while the balloon is inflated — deflate first, so the balloon
// driver's the-balloon-is-the-top-of-RAM model stays intact.
func (h *Hypervisor) HotplugVM(name string, addBytes uint64) (*HotplugReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("memory hotplug"); err != nil {
		return nil, err
	}
	defer vm.releaseLifecycle()
	rep, err := h.hotplugGrow(vm, addBytes)
	if err != nil {
		return nil, err
	}
	// Adoption prefers the home socket, but a grow of a remote-resident VM
	// can consolidate it on one socket away from its EPT tables; pull the
	// tables after the guest.
	if rerr := h.relocateIfStranded(vm); rerr != nil {
		return rep, fmt.Errorf("core: hotplug of VM %q left EPT tables behind: %w", name, rerr)
	}
	return rep, nil
}

// hotplugGrow is HotplugVM's body, shared with the resize facade. Caller
// holds h.mu and the VM's lifecycle latch.
func (h *Hypervisor) hotplugGrow(vm *VM, addBytes uint64) (*HotplugReport, error) {
	name := vm.spec.Name
	if addBytes == 0 || addBytes%geometry.PageSize2M != 0 {
		return nil, fmt.Errorf("core: hotplug size %d must be a positive multiple of 2 MiB", addBytes)
	}
	if len(vm.ballooned) > 0 {
		return nil, fmt.Errorf("core: VM %q has %d pages ballooned out; deflate before hot-plugging",
			name, len(vm.ballooned))
	}
	if vm.DirtyTracking() {
		return nil, fmt.Errorf("core: VM %q has dirty logging armed; hotplug would lose protection state", name)
	}
	if vm.spec.MemoryBytes+addBytes > ROMBase {
		return nil, fmt.Errorf("core: hotplug would grow VM %q past the RAM window end %#x", name, ROMBase)
	}

	n := int(addBytes / geometry.PageSize2M)
	frames, nodes, adopted, err := h.allocGrowFrames(vm, n)
	if err != nil {
		return nil, err
	}
	rollback := func() {
		for i, hpa := range frames {
			if a, aerr := h.Allocator(nodes[i]); aerr == nil {
				_ = a.Free(hpa, alloc.Order2M)
			}
		}
		if len(adopted) > 0 {
			_ = h.reg.Shrink(vm.cgroup.Name, adopted)
			vm.nodes = vm.cgroup.Nodes()
		}
	}

	rep := &HotplugReport{
		VM: name, AddedBytes: addBytes, AddedPages: n,
		BaseGPA: vm.spec.MemoryBytes, AdoptedNodes: adopted,
	}
	// The adoption window is open: the frames (and any adopted nodes) now
	// belong to this VM's domain but are not yet scrubbed or mapped. An
	// attacker cannot reach them through any translation path — only the
	// registry transfer has happened.
	h.probe(ProbeHotplugAdopted, vm)
	// Scrub before mapping: the guest must only ever observe zeros in the
	// hot-added range, whatever the frames held before.
	for _, hpa := range frames {
		if err := h.mem.ScrubPhys(hpa, geometry.PageSize2M); err != nil {
			rollback()
			return nil, err
		}
		rep.ScrubbedBytes += geometry.PageSize2M
	}

	// The guest is paused across the EPT extension so no access can race
	// the edit (the same stop-the-world window the balloon takes).
	vm.Pause()
	defer vm.Resume()
	for i := 0; i < n; i++ {
		gpa := rep.BaseGPA + uint64(i)*geometry.PageSize2M
		if merr := vm.tables.Map2M(gpa, frames[i]); merr != nil {
			for j := 0; j < i; j++ {
				_ = vm.tables.Unmap(rep.BaseGPA + uint64(j)*geometry.PageSize2M)
			}
			rollback()
			return nil, fmt.Errorf("core: mapping hot-added gpa %#x of VM %q: %w", gpa, name, merr)
		}
	}
	// Commit: the range is fully mapped; grow the VM's recorded size.
	for i := 0; i < n; i++ {
		vm.ram = append(vm.ram, frames[i])
		vm.ramNode[frames[i]] = nodes[i]
	}
	vm.spec.MemoryBytes += addBytes
	rep.NewMemoryBytes = vm.spec.MemoryBytes
	vm.InvalidateTLB()
	if serr := vm.syncDeviceTables(); serr != nil {
		return nil, fmt.Errorf("core: syncing device tables after hotplug of VM %q: %w", name, serr)
	}
	h.logf("hotplug VM %q: +%d MiB at gpa %#x (%d pages, adopted nodes %v, %d bytes scrubbed), now %d MiB",
		name, addBytes>>20, rep.BaseGPA, n, adopted, rep.ScrubbedBytes, vm.spec.MemoryBytes>>20)
	return rep, nil
}
