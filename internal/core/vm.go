package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/alloc"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// MediatedBase is the guest physical address where mediated regions (ROM,
// MMIO, virtio) are mapped, far above RAM.
const MediatedBase = uint64(1) << 40

// ErrMediated is returned when a guest attempts an unmediated-style access
// (e.g. hammering) to a mediated page: such accesses trap into the
// hypervisor, which can rate-limit them (§5.1).
var ErrMediated = errors.New("core: access to mediated page requires VM exit")

// VMSpec describes a VM to create.
type VMSpec struct {
	// Name identifies the VM (and its control group).
	Name string
	// Socket is the physical node supplying cores and memory; Siloz uses
	// same-socket subarray groups to preserve NUMA locality (§5.2).
	Socket int
	// MemoryBytes is guest RAM; must be a multiple of 2 MiB (guests are
	// backed by reserved, pinned 2 MiB huge pages, §5/§7).
	MemoryBytes uint64
	// MinMemoryBytes, if non-zero, is the smallest RAM the VM agrees to
	// run with: the balloon may inflate it down to this floor but no
	// further. Zero means the VM opts out of ballooning policy (the
	// planner will never shrink it), though explicit BalloonVM calls may
	// still take it down to one resident page. Must be a multiple of
	// 2 MiB and at most MemoryBytes.
	MinMemoryBytes uint64
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// MediatedBytes is host-mediated memory, allocated from
	// host-reserved nodes in 4 KiB pages (§5.1); kept as a convenience
	// shorthand for one anonymous MMIO region.
	MediatedBytes uint64
	// Regions are additional guest memory regions, classified by QEMU
	// memory type and placed according to their mediation (§5.1).
	Regions []Region
	// AllowRemote permits backing part of the VM with guest-reserved
	// nodes from other sockets when the home socket is full. Same-socket
	// groups are always preferred for NUMA locality (§5.2); remote pages
	// pay the usual cross-socket latency.
	AllowRemote bool
}

// VM is a created virtual machine.
type VM struct {
	spec VMSpec
	hv   *Hypervisor

	cgroup *numa.CGroup
	nodes  []*numa.Node // guest-reserved nodes backing RAM (Siloz)
	tables *ept.Tables
	// eptSocket is the socket whose EPT block (or host node, outside
	// guard-rows mode) currently holds the table pages. It starts as the
	// home socket and follows the guest across cross-socket migrations
	// (EPT relocation); Spec().Socket records only where the VM booted.
	eptSocket int
	// ram holds the HPA of each 2 MiB RAM page in GPA order; slots the
	// balloon surrendered hold hpaNone until a deflate restores them.
	ram       []uint64
	ballooned map[int]struct{} // RAM page indexes currently in the balloon
	// lifecycle is the per-VM lifecycle latch (under h.mu): the name of the
	// exclusive operation in flight ("live migration", "balloon", "resize",
	// "memory hotplug"), or "" when idle. Balloon, migration, resize, and
	// hotplug all rewrite the RAM layout, so at most one may run per VM.
	lifecycle string
	mediated  []uint64 // HPA of each 4 KiB mediated page, GPA order
	regions   []regionInfo
	// CATT guard bands (Config.Mitigation KindCATT): 2 MiB pages reserved
	// on both sides of each RAM extent so no other tenant can be placed
	// within the blast radius. guardNode maps each guard HPA to the node
	// allocator it came from.
	guards    []uint64
	guardNode map[uint64]int
	tlbMu     sync.Mutex // guards tlb: reps of one benchmark VM translate concurrently
	tlb       map[uint64]uint64
	ramNode   map[uint64]int // 2M HPA -> node ID (accounting)
	exits     uint64         // VM exits taken for mediated accesses
	pinned    []int          // exclusively-pinned logical cores

	// devMu guards devices: the passthrough devices whose IOMMU tables
	// must track every RAM-layout change (migration, balloon, hotplug).
	devMu   sync.Mutex
	devices []*Device

	// pauseMu is the vCPU gate: guest accesses hold it shared, Pause takes
	// it exclusively (the stop-and-copy window of a live migration).
	pauseMu sync.RWMutex
	// dirtyMu guards the dirty-page log and the touched-page ledger.
	tracking bool             // write-protection dirty logging armed
	dirty    map[uint64]bool  // dirty 2 MiB RAM page GPAs this round
	touched  map[int]struct{} // RAM page indexes ever written (scrub ledger)
	dirtyMu  sync.Mutex

	// Confused-deputy rate limiting (§5.1): mediated accesses this
	// refresh window, and the window they were counted in.
	mediatedAccesses int
	mediatedWindow   int
	throttled        uint64
}

// ErrThrottled is returned when a VM exceeds its per-window mediated access
// budget: host software refuses to be a hammering deputy (§5.1).
var ErrThrottled = errors.New("core: mediated access rate limit exceeded")

// hpaNone marks a RAM slot whose backing page the balloon surrendered: the
// GPA range is unmapped in the EPTs and owns no host frame.
const hpaNone = ^uint64(0)

// acquireLifecycle takes the VM's lifecycle latch for the named operation,
// failing with ErrResizeBusy if another lifecycle operation is in flight.
// Caller holds h.mu.
func (vm *VM) acquireLifecycle(op string) error {
	if vm.lifecycle != "" {
		return fmt.Errorf("%w: VM %q has a %s in flight; retry %s after it completes",
			ErrResizeBusy, vm.spec.Name, vm.lifecycle, op)
	}
	vm.lifecycle = op
	return nil
}

// releaseLifecycle drops the lifecycle latch. Caller holds h.mu.
func (vm *VM) releaseLifecycle() { vm.lifecycle = "" }

// eptAlloc adapts a node allocator to the ept.PageAllocator interface,
// modelling the GFP_EPT allocation path (§5.4).
type eptAlloc struct{ a *alloc.Allocator }

func (e eptAlloc) AllocTablePage() (uint64, error) { return e.a.Alloc(0) }
func (e eptAlloc) FreeTablePage(pa uint64)         { _ = e.a.Free(pa, 0) }

// CreateVM provisions a VM for the requesting process (§5.3): reserve
// guest-reserved nodes via an exclusive control group, allocate EPTs with
// GFP_EPT, and back RAM with 2 MiB huge pages from the reserved nodes
// (QEMU's UNMEDIATED mmap path) and mediated regions from host nodes.
func (h *Hypervisor) CreateVM(proc Process, spec VMSpec) (*VM, error) {
	if !proc.KVMPrivileged {
		return nil, fmt.Errorf("core: process lacks KVM privilege for guest-reserved allocation")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.vms[spec.Name]; dup {
		return nil, fmt.Errorf("core: VM %q already exists", spec.Name)
	}
	if spec.MemoryBytes == 0 || spec.MemoryBytes%geometry.PageSize2M != 0 {
		return nil, fmt.Errorf("core: MemoryBytes %d must be a positive multiple of 2 MiB", spec.MemoryBytes)
	}
	if spec.Socket < 0 || spec.Socket >= h.cfg.Geometry.Sockets {
		return nil, fmt.Errorf("core: socket %d out of range", spec.Socket)
	}
	if spec.MediatedBytes%geometry.PageSize4K != 0 {
		return nil, fmt.Errorf("core: MediatedBytes %d must be 4 KiB aligned", spec.MediatedBytes)
	}
	if spec.MinMemoryBytes%geometry.PageSize2M != 0 || spec.MinMemoryBytes > spec.MemoryBytes {
		return nil, fmt.Errorf("core: MinMemoryBytes %d must be a multiple of 2 MiB and at most MemoryBytes %d",
			spec.MinMemoryBytes, spec.MemoryBytes)
	}

	vm := &VM{spec: spec, hv: h, eptSocket: spec.Socket, tlb: make(map[uint64]uint64), ramNode: make(map[uint64]int)}

	if h.mode == ModeSiloz {
		if err := h.reserveGuestNodes(vm); err != nil {
			return nil, err
		}
	}

	// EPT hierarchy via GFP_EPT (§5.4).
	eptA, err := h.eptAllocatorFor(spec.Socket)
	if err != nil {
		return nil, err
	}
	mode := ept.NoProtection
	if h.mode == ModeSiloz {
		mode = h.cfg.EPTProtection
	}
	vm.tables, err = ept.New(h.mem, eptAlloc{eptA}, mode)
	if err != nil {
		vm.releaseNodes()
		return nil, err
	}

	if err := h.allocGuestRAM(vm); err != nil {
		vm.teardown()
		return nil, err
	}
	if err := h.allocMediated(vm); err != nil {
		vm.teardown()
		return nil, err
	}
	if err := h.allocRegions(vm); err != nil {
		vm.teardown()
		return nil, err
	}
	if h.cfg.Mitigation.GuardsAllocations() {
		h.reserveDomainGuards(vm)
	}
	h.vms[spec.Name] = vm
	nodeIDs := make([]int, len(vm.nodes))
	for i, n := range vm.nodes {
		nodeIDs[i] = n.ID
	}
	h.logf("created VM %q: %d MiB RAM on nodes %v, %d EPT pages, %d mediated pages",
		spec.Name, spec.MemoryBytes>>20, nodeIDs, len(vm.tables.Pages()), len(vm.mediated))
	return vm, nil
}

// reserveGuestNodes picks enough unowned guest-reserved nodes on the VM's
// socket and creates its exclusive control group.
func (h *Hypervisor) reserveGuestNodes(vm *VM) error {
	// RAM plus every unmediated region must fit in the reserved groups.
	bytes := vm.spec.MemoryBytes
	for _, r := range vm.spec.Regions {
		if r.Type.Unmediated() {
			bytes += r.Bytes
		}
	}
	// Prefer the home socket's nodes (§5.2 locality); optionally spill to
	// other sockets. Reserve nodes until their *actual* free capacity —
	// which can be below the nominal group size when isolation-hazard
	// pages were offlined at boot (§6) — covers the request.
	candidates := h.topo.NodesOnSocket(vm.spec.Socket, numa.GuestReserved)
	if vm.spec.AllowRemote {
		for s := 0; s < h.cfg.Geometry.Sockets; s++ {
			if s != vm.spec.Socket {
				candidates = append(candidates, h.topo.NodesOnSocket(s, numa.GuestReserved)...)
			}
		}
	}
	var ids []int
	var capacity uint64
	for _, n := range candidates {
		if capacity >= bytes {
			break
		}
		if _, owned := h.reg.OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			return err
		}
		ids = append(ids, n.ID)
		// RAM needs whole 2 MiB huge pages; offlined holes make some
		// free bytes unusable for them.
		capacity += uint64(a.FreePagesAtOrder(alloc.Order2M)) * geometry.PageSize2M
	}
	if capacity < bytes {
		return fmt.Errorf("%w: only %d bytes of huge-page-backed guest capacity available, VM %q needs %d",
			ErrCapacityExhausted, capacity, vm.spec.Name, bytes)
	}
	cg, err := h.reg.Create("vm:"+vm.spec.Name, ids)
	if err != nil {
		return err
	}
	vm.cgroup = cg
	vm.nodes = cg.Nodes()
	return nil
}

// allocGuestRAM backs guest RAM with 2 MiB pages. Under Siloz pages come
// from the VM's reserved nodes (the UNMEDIATED mmap path); under the
// baseline from the socket's node.
func (h *Hypervisor) allocGuestRAM(vm *VM) error {
	pages := int(vm.spec.MemoryBytes / geometry.PageSize2M)
	var sources []*numa.Node
	if h.mode == ModeSiloz {
		sources = vm.nodes
	} else {
		sources = h.topo.NodesOnSocket(vm.spec.Socket, numa.HostReserved)
	}
	si := 0
	for p := 0; p < pages; p++ {
		var hpa uint64
		var err error
		for {
			if si >= len(sources) {
				return fmt.Errorf("core: out of guest memory for VM %q at page %d/%d", vm.spec.Name, p, pages)
			}
			a, aerr := h.Allocator(sources[si].ID)
			if aerr != nil {
				return aerr
			}
			hpa, err = a.Alloc(alloc.Order2M)
			if err == nil {
				break
			}
			si++ // node exhausted; move to the next reserved node
		}
		gpa := uint64(p) * geometry.PageSize2M
		if err := vm.tables.Map2M(gpa, hpa); err != nil {
			return err
		}
		vm.ram = append(vm.ram, hpa)
		vm.ramNode[hpa] = sources[si].ID
	}
	return nil
}

// reserveDomainGuards implements the CATT allocation policy (software-only
// isolation): claim the 2 MiB pages holding every media row within the
// modelled blast radius of the VM's rows, so no later allocation — another
// tenant's RAM — can land where this VM's hammering reaches. The band is
// computed in DRAM row space through the mapper, not in physical-address
// space: under interleaved mappings the rows adjacent to a tenant's extent
// can live at physical addresses far from the extent itself, and a band of
// PA-contiguous flanking pages would guard the wrong memory. Claims that
// fail are skipped silently: the neighbour row is outside managed memory,
// offlined, or already claimed (by this VM's own RAM, or another tenant's
// guard band — adjacent tenants share one band, which is the policy's
// intent). Caller holds h.mu.
func (h *Hypervisor) reserveDomainGuards(vm *VM) {
	g := h.cfg.Geometry
	band := h.cfg.Mitigation.CATTGuardRows
	if band <= 0 || len(vm.ram) == 0 {
		return
	}
	mapper := h.mem.Mapper()
	vm.guardNode = make(map[uint64]int)
	claim := func(pa uint64) {
		pa &^= uint64(geometry.PageSize2M - 1)
		node, a := h.allocatorContaining(pa)
		if a == nil {
			return
		}
		if err := a.AllocAt(pa, alloc.Order2M); err != nil {
			return
		}
		vm.guards = append(vm.guards, pa)
		vm.guardNode[pa] = node
		h.guardBytes += geometry.PageSize2M
	}
	// The VM's row footprint: one row group holds one row index across
	// every bank of a socket, so decoding each 2 MiB page's group bases
	// maps the RAM onto media rows.
	type socketRow struct{ socket, row int }
	groupBytes := uint64(g.RowGroupBytes())
	owned := map[socketRow]geometry.MediaAddr{}
	for _, page := range vm.ram {
		for off := uint64(0); off < geometry.PageSize2M; off += groupBytes {
			ma, err := mapper.Decode(page + off)
			if err != nil {
				continue
			}
			owned[socketRow{ma.Bank.Socket, ma.Row}] = ma
		}
	}
	// Claim the pages holding each non-owned row within band distance of
	// an owned row. Iteration is sorted so the guard list — and therefore
	// the allocator state downstream — is deterministic.
	keys := make([]socketRow, 0, len(owned))
	for k := range owned {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].socket != keys[j].socket {
			return keys[i].socket < keys[j].socket
		}
		return keys[i].row < keys[j].row
	})
	for _, k := range keys {
		for d := 1; d <= band; d++ {
			for _, n := range [2]int{k.row - d, k.row + d} {
				if n < 0 || n >= g.RowsPerBank {
					continue
				}
				if _, ok := owned[socketRow{k.socket, n}]; ok {
					continue
				}
				ma := owned[k]
				ma.Row = n
				ma.Col = 0
				pa, err := mapper.Encode(ma)
				if err != nil {
					continue
				}
				claim(pa)
			}
		}
	}
	h.logf("reserved %d guard pages (%d MiB) covering rows within %d of VM %q rows",
		len(vm.guards), uint64(len(vm.guards))*geometry.PageSize2M>>20, band, vm.spec.Name)
}

// allocatorContaining finds the node allocator whose ranges cover pa.
func (h *Hypervisor) allocatorContaining(pa uint64) (int, *alloc.Allocator) {
	for _, n := range h.topo.Nodes() {
		if n.Contains(pa) {
			return n.ID, h.allocators[n.ID]
		}
	}
	return 0, nil
}

// allocMediated backs mediated regions with host-reserved 4 KiB pages and
// maps them at MediatedBase.
func (h *Hypervisor) allocMediated(vm *VM) error {
	pages := int(vm.spec.MediatedBytes / geometry.PageSize4K)
	if pages == 0 {
		return nil
	}
	hpas, err := h.AllocHostPages(vm.spec.Socket, 0, pages)
	if err != nil {
		return err
	}
	for i, hpa := range hpas {
		gpa := MediatedBase + uint64(i)*geometry.PageSize4K
		if err := vm.tables.Map4K(gpa, hpa); err != nil {
			return err
		}
	}
	vm.mediated = hpas
	return nil
}

// DestroyVM shuts a VM down, returning its memory to the logical nodes'
// free pools; the node reservation persists until the control group is
// destroyed separately (§5.3), which this helper also does for convenience.
func (h *Hypervisor) DestroyVM(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("destroy"); err != nil {
		return err
	}
	vm.teardown()
	delete(h.vms, name)
	h.logf("destroyed VM %q (memory scrubbed and returned to node free pools)", name)
	return nil
}

// teardown releases everything the VM holds. Guest RAM and region pages are
// scrubbed (zeroed) before they return to the free pools, so a page recycled
// to the next tenant can never leak the previous tenant's bytes. RAM scrubbing
// consults the touched-page ledger: never-written pages hold no data and are
// skipped, keeping teardown of large sparse guests cheap. Caller holds h.mu.
func (vm *VM) teardown() {
	h := vm.hv
	// Detach passthrough devices first: once the RAM frames return to the
	// free pools, a live IOMMU mapping would let the device DMA into (and
	// hammer) memory the next tenant may already own — the double-ownership
	// window CATTmew-style attacks exploit.
	vm.devMu.Lock()
	devices := vm.devices
	vm.devices = nil
	vm.devMu.Unlock()
	for _, d := range devices {
		d.detachTables()
	}
	vm.scrubRAM()
	for _, hpa := range vm.ram {
		if hpa == hpaNone {
			continue // ballooned out; the host already owns the frame
		}
		if a, err := h.Allocator(vm.ramNode[hpa]); err == nil {
			_ = a.Free(hpa, alloc.Order2M)
		}
	}
	vm.ram = nil
	vm.ballooned = nil
	for _, pa := range vm.guards {
		if a, err := h.Allocator(vm.guardNode[pa]); err == nil {
			if a.Free(pa, alloc.Order2M) == nil {
				h.guardBytes -= geometry.PageSize2M
			}
		}
	}
	vm.guards = nil
	vm.guardNode = nil
	if len(vm.mediated) > 0 {
		for _, hpa := range vm.mediated {
			_ = h.mem.ScrubPhys(hpa, geometry.PageSize4K)
		}
		_ = h.FreeHostPages(vm.spec.Socket, 0, vm.mediated)
		vm.mediated = nil
	}
	vm.freeRegions()
	if vm.tables != nil {
		vm.tables.Destroy()
		vm.tables = nil
	}
	vm.releaseCores()
	vm.releaseNodes()
}

// scrubRAM zeroes every RAM page the guest (or the migration engine, on its
// behalf) ever wrote.
func (vm *VM) scrubRAM() {
	vm.dirtyMu.Lock()
	idxs := make([]int, 0, len(vm.touched))
	for p := range vm.touched {
		idxs = append(idxs, p)
	}
	vm.dirtyMu.Unlock()
	for _, p := range idxs {
		if p >= 0 && p < len(vm.ram) && vm.ram[p] != hpaNone {
			_ = vm.hv.mem.ScrubPhys(vm.ram[p], geometry.PageSize2M)
		}
	}
}

func (vm *VM) releaseNodes() {
	if vm.cgroup != nil {
		_ = vm.hv.reg.Destroy(vm.cgroup.Name)
		vm.cgroup = nil
		vm.nodes = nil
	}
}

// Spec returns the VM's creation spec.
func (vm *VM) Spec() VMSpec { return vm.spec }

// Hypervisor returns the hypervisor hosting the VM.
func (vm *VM) Hypervisor() *Hypervisor { return vm.hv }

// Name returns the VM's name.
func (vm *VM) Name() string { return vm.spec.Name }

// Nodes returns the guest-reserved nodes backing the VM (Siloz mode).
func (vm *VM) Nodes() []*numa.Node { return vm.nodes }

// Tables returns the VM's extended page tables.
func (vm *VM) Tables() *ept.Tables { return vm.tables }

// EPTSocket returns the socket whose EPT block currently hosts the VM's
// table pages. It equals Spec().Socket at boot and tracks the guest across
// cross-socket migrations once the tables are relocated.
func (vm *VM) EPTSocket() int { return vm.eptSocket }

// RAMPages returns the HPAs of the VM's resident 2 MiB RAM pages in GPA
// order; ballooned-out slots are omitted.
func (vm *VM) RAMPages() []uint64 {
	out := make([]uint64, 0, len(vm.ram))
	for _, hpa := range vm.ram {
		if hpa != hpaNone {
			out = append(out, hpa)
		}
	}
	return out
}

// TouchedPages returns the sorted GPA page indexes (2 MiB units) that are
// both resident and have ever been written. Cross-host migration copies only
// these: never-written pages hold no data and read as zeros on any host.
func (vm *VM) TouchedPages() []int {
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	out := make([]int, 0, len(vm.touched))
	for p := range vm.touched {
		if p >= 0 && p < len(vm.ram) && vm.ram[p] != hpaNone {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// BalloonedBytes returns how much of the VM's RAM the balloon currently
// holds (surrendered to the host).
func (vm *VM) BalloonedBytes() uint64 {
	vm.hv.mu.Lock()
	defer vm.hv.mu.Unlock()
	return uint64(len(vm.ballooned)) * geometry.PageSize2M
}

// MediatedPages returns the HPAs of the VM's mediated 4 KiB pages.
func (vm *VM) MediatedPages() []uint64 {
	out := make([]uint64, len(vm.mediated))
	copy(out, vm.mediated)
	return out
}

// isMediatedGPA reports whether the address is in the mediated window.
func (vm *VM) isMediatedGPA(gpa uint64) bool { return gpa >= MediatedBase }

// isRAMGPA reports whether the address is in the 2 MiB-backed RAM window
// (extra regions and the mediated window use 4 KiB pages).
func (vm *VM) isRAMGPA(gpa uint64) bool { return gpa < ROMBase }

// Translate resolves a GPA through the VM's EPTs with a software TLB; data
// accesses use it. InvalidateTLB forces re-walks (as hardware TLB flushes
// do), which is how EPT corruption becomes visible to translation.
func (vm *VM) Translate(gpa uint64) (uint64, error) {
	if vm.tables == nil {
		return 0, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	pageBase := gpa &^ uint64(geometry.PageSize2M-1)
	vm.tlbMu.Lock()
	hpa, ok := vm.tlb[pageBase]
	vm.tlbMu.Unlock()
	if ok {
		return hpa + (gpa - pageBase), nil
	}
	hpa, err := vm.tables.Translate(gpa)
	if err != nil {
		return 0, err
	}
	if vm.isRAMGPA(gpa) {
		vm.tlbMu.Lock()
		vm.tlb[pageBase] = hpa &^ uint64(geometry.PageSize2M-1)
		vm.tlbMu.Unlock()
	}
	return hpa, nil
}

// TranslateUncached walks the EPTs directly, bypassing the TLB.
func (vm *VM) TranslateUncached(gpa uint64) (uint64, error) {
	if vm.tables == nil {
		return 0, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	return vm.tables.Translate(gpa)
}

// InvalidateTLB drops all cached translations.
func (vm *VM) InvalidateTLB() {
	vm.tlbMu.Lock()
	vm.tlb = make(map[uint64]uint64)
	vm.tlbMu.Unlock()
}

// translateWrite resolves a GPA for a store. A write through a read-only
// mapping (guest ROM) raises an EPT violation: the access exits into the
// hypervisor, which emulates it (§5.1's mediated write path) — counted in
// Exits.
func (vm *VM) translateWrite(gpa uint64) (uint64, error) {
	if vm.tables == nil {
		return 0, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	if vm.isRAMGPA(gpa) {
		return vm.translateWriteRAM(gpa)
	}
	hpa, err := vm.tables.TranslateAccess(gpa, true)
	if errors.Is(err, ept.ErrPermission) {
		vm.exits++
		return vm.tables.TranslateAccess(gpa, false)
	}
	return hpa, err
}

// translateWriteRAM resolves a RAM store, maintaining the touched-page
// ledger and — while dirty logging is armed — the write-protection fault
// path: the store faults, the fault handler logs the page dirty, reopens
// the leaf and retries, exactly KVM's dirty-logging flow during live
// migration pre-copy.
func (vm *VM) translateWriteRAM(gpa uint64) (uint64, error) {
	pageBase := gpa &^ uint64(geometry.PageSize2M-1)
	vm.dirtyMu.Lock()
	if vm.touched == nil {
		vm.touched = make(map[int]struct{})
	}
	vm.touched[int(pageBase/geometry.PageSize2M)] = struct{}{}
	if !vm.tracking {
		vm.dirtyMu.Unlock()
		return vm.Translate(gpa) // RAM is always writable; TLB applies
	}
	defer vm.dirtyMu.Unlock()
	hpa, err := vm.tables.TranslateAccess(gpa, true)
	if errors.Is(err, ept.ErrPermission) {
		// EPT write-protection violation: VM exit, log dirty, reopen.
		vm.exits++
		vm.dirty[pageBase] = true
		if perr := vm.tables.Protect(pageBase, true); perr != nil {
			return 0, perr
		}
		hpa, err = vm.tables.TranslateAccess(gpa, true)
	}
	return hpa, err
}

// Exits returns the number of VM exits taken for mediated accesses — the
// hook the host can rate-limit (§5.1).
func (vm *VM) Exits() uint64 { return vm.exits }

// Pause stops the guest's vCPUs: guest loads and stores block until Resume.
// It is the stop-and-copy gate of live migration.
func (vm *VM) Pause() { vm.pauseMu.Lock() }

// Resume restarts a paused guest.
func (vm *VM) Resume() { vm.pauseMu.Unlock() }

// StartDirtyTracking arms write-protection dirty logging over guest RAM
// (KVM's KVM_MEM_LOG_DIRTY_PAGES): every 2 MiB leaf is write-protected, so
// the guest's first store to each page takes an EPT-violation exit that logs
// the page dirty and reopens the leaf. The guest is paused for the duration
// of the arming, so no store can straddle it — any write either completed
// before tracking began (and is captured by the migration's full first-round
// copy) or faults into the dirty log.
func (vm *VM) StartDirtyTracking() error {
	vm.pauseMu.Lock()
	defer vm.pauseMu.Unlock()
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	if vm.tables == nil {
		return fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	if vm.tracking {
		return fmt.Errorf("core: VM %q is already dirty-tracking (migration in progress?)", vm.spec.Name)
	}
	for p, hpa := range vm.ram {
		if hpa == hpaNone {
			continue // ballooned out; no leaf to protect
		}
		if err := vm.tables.Protect(uint64(p)*geometry.PageSize2M, false); err != nil {
			for q := 0; q < p; q++ {
				if vm.ram[q] != hpaNone {
					_ = vm.tables.Protect(uint64(q)*geometry.PageSize2M, true)
				}
			}
			return err
		}
	}
	vm.dirty = make(map[uint64]bool)
	vm.tracking = true
	return nil
}

// TakeDirty drains the dirty-page log, re-arming write protection on the
// drained pages so subsequent stores are logged again, and returns the dirty
// 2 MiB page GPAs in ascending order — one pre-copy round's work list.
func (vm *VM) TakeDirty() ([]uint64, error) {
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	if !vm.tracking {
		return nil, fmt.Errorf("core: VM %q is not dirty-tracking", vm.spec.Name)
	}
	gpas := make([]uint64, 0, len(vm.dirty))
	for gpa := range vm.dirty {
		gpas = append(gpas, gpa)
	}
	sort.Slice(gpas, func(i, j int) bool { return gpas[i] < gpas[j] })
	for _, gpa := range gpas {
		if err := vm.tables.Protect(gpa, false); err != nil {
			return nil, err
		}
	}
	vm.dirty = make(map[uint64]bool)
	return gpas, nil
}

// StopDirtyTracking disarms dirty logging, restoring write permission on
// every RAM leaf — the migration-abort path. (The commit path instead remaps
// every leaf to its destination page, which reopens them implicitly.)
func (vm *VM) StopDirtyTracking() error {
	vm.pauseMu.Lock()
	defer vm.pauseMu.Unlock()
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	if !vm.tracking {
		return nil
	}
	if vm.tables != nil {
		for p, hpa := range vm.ram {
			if hpa == hpaNone {
				continue
			}
			if err := vm.tables.Protect(uint64(p)*geometry.PageSize2M, true); err != nil {
				return err
			}
		}
	}
	vm.tracking = false
	vm.dirty = nil
	return nil
}

// DirtyTracking reports whether dirty logging is armed.
func (vm *VM) DirtyTracking() bool {
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	return vm.tracking
}

// WriteGuest stores data at a guest physical address. The access holds the
// vCPU gate shared: a paused VM (stop-and-copy) blocks here until Resume.
func (vm *VM) WriteGuest(gpa uint64, data []byte) error {
	vm.pauseMu.RLock()
	defer vm.pauseMu.RUnlock()
	return vm.guestIter(gpa, len(data), vm.translateWrite, func(hpa uint64, off, n int) error {
		return vm.hv.mem.WritePhys(hpa, data[off:off+n])
	})
}

// ReadGuest loads len(buf) bytes from a guest physical address.
func (vm *VM) ReadGuest(gpa uint64, buf []byte) error {
	vm.pauseMu.RLock()
	defer vm.pauseMu.RUnlock()
	return vm.guestIter(gpa, len(buf), vm.Translate, func(hpa uint64, off, n int) error {
		return vm.hv.mem.ReadPhys(hpa, buf[off:off+n])
	})
}

// guestIter walks a guest range in page-bounded pieces.
func (vm *VM) guestIter(gpa uint64, n int, translate func(uint64) (uint64, error), fn func(hpa uint64, off, n int) error) error {
	pageSize := uint64(geometry.PageSize2M)
	if !vm.isRAMGPA(gpa) {
		pageSize = geometry.PageSize4K
	}
	off := 0
	for off < n {
		cur := gpa + uint64(off)
		hpa, err := translate(cur)
		if err != nil {
			return err
		}
		chunk := int(pageSize - cur%pageSize)
		if chunk > n-off {
			chunk = n - off
		}
		if vm.isMediatedGPA(cur) {
			// Every mediated-window access exits; the host performs
			// the DRAM access on the guest's behalf and rate-limits
			// it so it cannot be abused as a hammering deputy (§5.1).
			vm.exits++
			if err := vm.mediatedAccess(hpa); err != nil {
				return err
			}
		}
		if err := fn(hpa, off, chunk); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// mediatedAccess accounts one host-performed access to a mediated page:
// the host's own load/store activates the row (so unbounded exit-driven
// accesses could hammer host-reserved rows), hence the per-window cap.
func (vm *VM) mediatedAccess(hpa uint64) error {
	h := vm.hv
	if w := h.mem.Window(); w != vm.mediatedWindow {
		vm.mediatedWindow = w
		vm.mediatedAccesses = 0
	}
	limit := h.cfg.MediatedAccessLimit
	if limit > 0 && vm.mediatedAccesses >= limit {
		vm.throttled++
		return fmt.Errorf("%w: VM %q exceeded %d accesses this window", ErrThrottled, vm.spec.Name, limit)
	}
	vm.mediatedAccesses++
	return h.mem.ActivatePhys(hpa, 1, 0)
}

// Throttled returns how many mediated accesses the rate limiter rejected.
func (vm *VM) Throttled() uint64 { return vm.throttled }

// Hammer issues count activations against the DRAM row backing a guest
// physical address, holding the row open openNs per activation — the
// unmediated access a malicious guest uses for Rowhammer. Mediated pages
// cannot be hammered: the required VM exits let the host rate-limit (§5.1).
//
// Like every other guest access, Hammer holds the vCPU gate shared: a
// paused VM (stop-and-copy, balloon drain, hotplug map) blocks here until
// Resume. Without the gate a hammer loop could translate through a stale
// TLB entry and keep activating a frame the balloon had already freed —
// possibly re-owned by the next tenant by the time the activation lands.
func (vm *VM) Hammer(gpa uint64, count int, openNs int64) error {
	vm.pauseMu.RLock()
	defer vm.pauseMu.RUnlock()
	if vm.isMediatedGPA(gpa) {
		return fmt.Errorf("%w: gpa %#x", ErrMediated, gpa)
	}
	hpa, err := vm.Translate(gpa)
	if err != nil {
		return err
	}
	return vm.hv.mem.ActivatePhys(hpa, count, openNs)
}

// GuardPages returns the HPAs of the VM's CATT guard-band 2 MiB pages
// (empty unless the boot deployed KindCATT). A flip landing in a guard
// page corrupted memory no tenant owns — contained by construction.
func (vm *VM) GuardPages() []uint64 {
	vm.hv.mu.Lock()
	defer vm.hv.mu.Unlock()
	out := make([]uint64, len(vm.guards))
	copy(out, vm.guards)
	return out
}

// OwnsHPA reports whether a host physical address belongs to the VM's RAM.
func (vm *VM) OwnsHPA(pa uint64) bool {
	_, ok := vm.ramNode[pa&^uint64(geometry.PageSize2M-1)]
	return ok
}

// InDomain reports whether a host physical address lies inside the VM's
// reserved subarray groups (its DRAM isolation domain). Only meaningful
// under Siloz.
func (vm *VM) InDomain(pa uint64) bool {
	for _, n := range vm.nodes {
		if n.Contains(pa) {
			return true
		}
	}
	return false
}

// syncDeviceTables re-syncs every attached passthrough device's IOMMU
// mappings to the VM's current RAM layout. Every RAM-layout mutation
// (migration commit, balloon inflate/deflate, memory hotplug) must call it
// before the old frames become reachable by anyone else: a stale IOMMU
// entry would keep translating the device's DMAs to frames the VM no
// longer owns. Callers hold the vCPU gate exclusively (Pause), which also
// excludes in-flight DMA — DMAs hold the gate shared.
func (vm *VM) syncDeviceTables() error {
	vm.devMu.Lock()
	devices := append([]*Device(nil), vm.devices...)
	vm.devMu.Unlock()
	for _, d := range devices {
		if err := d.resync(vm.ram); err != nil {
			return err
		}
	}
	return nil
}

// noteDMAWrite folds one device store into the VM's write-tracking state,
// the software model of IOMMU dirty-bit harvesting: the touched-page
// ledger (so teardown/balloon/migration scrub the frame) and — while
// dirty logging is armed — the dirty-page log (so live migration re-copies
// the page). Without this, a DMA between the final TakeDirty round and
// stop-and-copy would leave a poisoned source frame that step 4 frees
// unscrubbed and a destination copy missing the DMA'd bytes.
func (vm *VM) noteDMAWrite(gpa uint64) {
	if !vm.isRAMGPA(gpa) {
		return
	}
	pageBase := gpa &^ uint64(geometry.PageSize2M-1)
	vm.dirtyMu.Lock()
	defer vm.dirtyMu.Unlock()
	if vm.touched == nil {
		vm.touched = make(map[int]struct{})
	}
	vm.touched[int(pageBase/geometry.PageSize2M)] = struct{}{}
	if vm.tracking {
		vm.dirty[pageBase] = true
	}
}
