package core

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/numa"
)

// Audit walks the booted system and verifies the invariants the Siloz
// design depends on, returning human-readable violations (empty = healthy).
// It is the reproduction's fsck: tests and tools run it after stressing the
// hypervisor to catch any drift between policy and state.
//
// Checked invariants:
//
//  1. Every VM RAM page lies inside the VM's reserved nodes (Siloz mode).
//  2. No two VMs own the same guest-reserved node or the same RAM page.
//  3. EPT and IOMMU table pages lie in the EPT node under guard-row
//     protection (§5.4).
//  4. Mediated pages lie in host-reserved nodes (§5.1).
//  5. Offlined (guard) ranges belong to no logical node (§5.4, §6).
//  6. Per-node allocator accounting is conserved.
func (h *Hypervisor) Audit() []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// 1 & 2: VM page placement and exclusivity.
	seenPages := make(map[uint64]string)
	seenNodes := make(map[int]string)
	for _, vm := range h.VMs() {
		for _, n := range vm.Nodes() {
			if owner, dup := seenNodes[n.ID]; dup {
				report("node %d owned by both %q and %q", n.ID, owner, vm.Name())
			}
			seenNodes[n.ID] = vm.Name()
			if n.Kind != numa.GuestReserved {
				report("VM %q owns non-guest node %d (%s)", vm.Name(), n.ID, n.Kind)
			}
		}
		for _, hpa := range vm.RAMPages() {
			if owner, dup := seenPages[hpa]; dup {
				report("RAM page %#x owned by both %q and %q", hpa, owner, vm.Name())
			}
			seenPages[hpa] = vm.Name()
			if h.mode == ModeSiloz && !vm.InDomain(hpa) {
				report("VM %q RAM page %#x outside its domain", vm.Name(), hpa)
			}
		}
		// 3: table pages. The tables follow the guest across cross-socket
		// migrations, so the EPT block to check is the VM's *current* EPT
		// socket, not the boot socket in its spec.
		if h.mode == ModeSiloz && h.cfg.EPTProtection.String() == "guard-rows" {
			eptNode, err := h.EPTNode(vm.EPTSocket())
			if err != nil {
				report("VM %q: %v", vm.Name(), err)
			} else {
				for _, pa := range vm.Tables().Pages() {
					if !eptNode.Contains(pa) {
						report("VM %q EPT page %#x outside the EPT node", vm.Name(), pa)
					}
				}
			}
		}
		// 4: mediated pages.
		for _, pa := range vm.MediatedPages() {
			if node, ok := h.topo.NodeOf(pa); !ok || node.Kind != numa.HostReserved {
				report("VM %q mediated page %#x not host-reserved", vm.Name(), pa)
			}
		}
	}

	// 5: offlined ranges owned by no node.
	for _, r := range h.OfflinedRanges() {
		for pa := r.Start; pa < r.End; pa += 1 << 20 {
			if n, ok := h.topo.NodeOf(pa); ok {
				report("offlined pa %#x owned by node %d", pa, n.ID)
				break
			}
		}
	}

	// 6: allocator conservation, and guest-node usage matching exactly
	// what the owning VM holds there.
	expected := make(map[int]uint64)
	for _, vm := range h.VMs() {
		for hpa, nodeID := range vm.ramNode {
			_ = hpa
			expected[nodeID] += uint64(geometry.PageSize2M)
		}
		for _, ri := range vm.regions {
			if ri.Type.Unmediated() {
				expected[ri.nodeID] += uint64(len(ri.pages)) * geometry.PageSize4K
			}
		}
	}
	for _, n := range h.topo.Nodes() {
		a, err := h.Allocator(n.ID)
		if err != nil {
			report("node %d missing allocator: %v", n.ID, err)
			continue
		}
		if a.FreeBytes()+a.UsedBytes() != a.TotalBytes() {
			report("node %d accounting broken: free %d + used %d != total %d",
				n.ID, a.FreeBytes(), a.UsedBytes(), a.TotalBytes())
		}
		if n.Kind == numa.GuestReserved && h.mode == ModeSiloz {
			if a.UsedBytes() != expected[n.ID] {
				report("guest node %d allocator reports %d used bytes but VMs hold %d",
					n.ID, a.UsedBytes(), expected[n.ID])
			}
		}
	}
	return bad
}
