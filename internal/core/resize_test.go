package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geometry"
)

// usable returns a VM's current usable RAM as ResizeVM defines it.
func usable(vm *VM) uint64 {
	return vm.Spec().MemoryBytes - vm.BalloonedBytes()
}

// TestResizeFacadeDispatch walks one VM through every facade action:
// shrink (inflate), no-op, grow within the holes (deflate), and grow beyond
// the boot reservation (hotplug).
func TestResizeFacadeDispatch(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		target uint64
		action ResizeAction
		nodes  int
	}{
		{64 * geometry.MiB, ResizeInflate, 1},  // shrink drains a node
		{64 * geometry.MiB, ResizeNone, 1},     // already there
		{128 * geometry.MiB, ResizeDeflate, 2}, // grow back into the holes
		{192 * geometry.MiB, ResizeHotplug, 3}, // grow beyond the reservation
	}
	for _, s := range steps {
		rep, err := h.ResizeVM("v", s.target)
		if err != nil {
			t.Fatalf("resize to %d MiB: %v", s.target/geometry.MiB, err)
		}
		if rep.Action != s.action {
			t.Errorf("resize to %d MiB dispatched %v, want %v", s.target/geometry.MiB, rep.Action, s.action)
		}
		if got := usable(vm); got != s.target {
			t.Errorf("after resize to %d MiB usable = %d MiB", s.target/geometry.MiB, got/geometry.MiB)
		}
		if len(vm.Nodes()) != s.nodes {
			t.Errorf("after resize to %d MiB VM owns %d nodes, want %d", s.target/geometry.MiB, len(vm.Nodes()), s.nodes)
		}
	}
	// Validation: unknown VM, unaligned target, below-floor target.
	if _, err := h.ResizeVM("nope", 64*geometry.MiB); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("resize of unknown VM: err = %v, want ErrVMNotFound", err)
	}
	if _, err := h.ResizeVM("v", geometry.PageSize2M+1); err == nil {
		t.Error("unaligned resize target accepted")
	}
	if _, err := h.ResizeVM("v", geometry.PageSize2M); err == nil {
		t.Error("resize below the MinMemoryBytes floor accepted")
	}
}

// TestResizeHotplugDeflatesFirst: a grow beyond the reservation on a
// ballooned VM runs both legs — full deflate, then hotplug — under one
// latch acquisition.
func TestResizeHotplugDeflatesFirst(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ResizeVM("v", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	rep, err := h.ResizeVM("v", 192*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != ResizeHotplug || rep.Balloon == nil || rep.Hotplug == nil {
		t.Fatalf("action %v, balloon %v, hotplug %v: want hotplug with both legs", rep.Action, rep.Balloon, rep.Hotplug)
	}
	if rep.Balloon.Target != 0 || rep.Balloon.DeflatedPages != 32 {
		t.Errorf("deflate leg = %+v, want full deflate of 32 pages", rep.Balloon)
	}
	if rep.Hotplug.AddedBytes != 64*geometry.MiB {
		t.Errorf("hotplug leg added %d bytes, want 64 MiB", rep.Hotplug.AddedBytes)
	}
	if got := usable(vm); got != 192*geometry.MiB {
		t.Errorf("usable = %d MiB, want 192", got/geometry.MiB)
	}
}

// TestResizeRollbackRestoresBalloon: when the hotplug leg fails for
// capacity, the deflate leg is rolled back so the caller sees the exact
// pre-resize state.
func TestResizeRollbackRestoresBalloon(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ResizeVM("v", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	// One neighbor takes one of the two free nodes: the deflate leg can
	// re-adopt the last one, but the hotplug leg then finds nothing.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "t", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	nodesBefore := len(vm.Nodes())
	if _, err := h.ResizeVM("v", 256*geometry.MiB); !errors.Is(err, ErrCapacityExhausted) {
		t.Fatalf("over-capacity resize: err = %v, want ErrCapacityExhausted", err)
	}
	if got := vm.BalloonedBytes(); got != 64*geometry.MiB {
		t.Errorf("BalloonedBytes = %d MiB after rollback, want 64", got/geometry.MiB)
	}
	if got := usable(vm); got != 64*geometry.MiB {
		t.Errorf("usable = %d MiB after rollback, want 64", got/geometry.MiB)
	}
	if len(vm.Nodes()) != nodesBefore {
		t.Errorf("node set changed across failed resize: %d -> %d", nodesBefore, len(vm.Nodes()))
	}
}

// TestPreviewResize: PreviewResize predicts inflates and grows without
// mutating the VM.
func TestPreviewResize(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := h.PreviewResize("v", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Action != ResizeInflate || plan.Pages != 32 || len(plan.ReleasedNodes) != 1 {
		t.Fatalf("plan = %+v, want inflate of 32 pages releasing one node", plan)
	}
	// Grow preview predicts adoption, still without mutating.
	grow, err := h.PreviewResize("v", 192*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if grow.Action != ResizeHotplug || grow.HotplugBytes != 64*geometry.MiB || len(grow.AdoptedNodes) != 1 {
		t.Fatalf("grow plan = %+v, want hotplug of 64 MiB adopting one node", grow)
	}
	if got := usable(vm); got != 128*geometry.MiB || len(vm.Nodes()) != 2 || vm.BalloonedBytes() != 0 {
		t.Errorf("preview mutated the VM: usable %d, %d nodes, %d ballooned",
			got, len(vm.Nodes()), vm.BalloonedBytes())
	}
	// An infeasible grow previews as ErrCapacityExhausted.
	if _, err := h.PreviewResize("v", 512*geometry.MiB); !errors.Is(err, ErrCapacityExhausted) {
		t.Errorf("infeasible grow preview: err = %v, want ErrCapacityExhausted", err)
	}
}

// TestResizeBusyDuringMigration: the facade shares the per-VM lifecycle
// latch with the pre-copy engine.
func TestResizeBusyDuringMigration(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "m", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	var resizeErr error
	opt := MigrateOptions{GuestStep: func(round int) error {
		if round == 0 {
			_, resizeErr = h.ResizeVM("m", 128*geometry.MiB)
		}
		return nil
	}}
	if _, err := h.MigrateVM(context.Background(), "m", guestNodeIDs(h, 1), opt); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resizeErr, ErrResizeBusy) {
		t.Errorf("resize during live migration: err = %v, want ErrResizeBusy", resizeErr)
	}
}

// TestConcurrentResizeGrowShrink is the resize property test (race-quick):
// random grow/shrink interleavings across tenants contending for the same
// socket's spare node never double-own a node, and every grow→shrink
// round-trip returns the registry to the VM's pre-grow node set.
func TestConcurrentResizeGrowShrink(t *testing.T) {
	h := bootSiloz(t)
	names := []string{"a", "b", "c"}
	sockets := []int{0, 0, 1}
	preGrow := map[string]map[int]bool{}
	for i, name := range names {
		vm, err := h.CreateVM(kvmProc(), VMSpec{Name: name, Socket: sockets[i], MemoryBytes: 64 * geometry.MiB,
			MinMemoryBytes: 64 * geometry.MiB})
		if err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, n := range vm.Nodes() {
			set[n.ID] = true
		}
		preGrow[name] = set
	}

	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*iters)
	for i, name := range names {
		wg.Add(1)
		go func(name string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				grow := uint64(128+64*rng.Intn(2)) * geometry.MiB
				if _, err := h.ResizeVM(name, grow); err != nil {
					// Capacity contention with the sibling tenant is a
					// legitimate refusal, not an invariant violation.
					if !errors.Is(err, ErrCapacityExhausted) {
						errs <- fmt.Errorf("grow %q: %w", name, err)
						return
					}
				}
				if _, err := h.ResizeVM(name, 64*geometry.MiB); err != nil {
					errs <- fmt.Errorf("shrink %q: %w", name, err)
					return
				}
			}
		}(name, int64(i+1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Invariant 1: no guest node in two tenants' domains, and the registry
	// agrees with every VM's view.
	seen := map[int]string{}
	for _, vm := range h.VMs() {
		for _, n := range vm.Nodes() {
			if prev, dup := seen[n.ID]; dup {
				t.Errorf("node %d owned by both %q and %q", n.ID, prev, vm.Name())
			}
			seen[n.ID] = vm.Name()
			if owner, _ := h.Registry().OwnerOf(n.ID); owner != "vm:"+vm.Name() {
				t.Errorf("registry owner of node %d is %q, VM is %q", n.ID, owner, vm.Name())
			}
		}
	}
	// Invariant 2: every grow→shrink round-trip ended at 64 MiB usable, so
	// each VM's node set is exactly its pre-grow set.
	for _, name := range names {
		vm, _ := h.VM(name)
		if got := usable(vm); got != 64*geometry.MiB {
			t.Errorf("VM %q usable = %d MiB after round-trips, want 64", name, got/geometry.MiB)
		}
		set := map[int]bool{}
		for _, n := range vm.Nodes() {
			set[n.ID] = true
		}
		if len(set) != len(preGrow[name]) {
			t.Errorf("VM %q owns %d nodes after round-trips, want %d", name, len(set), len(preGrow[name]))
		}
		for id := range preGrow[name] {
			if !set[id] {
				t.Errorf("VM %q lost pre-grow node %d across round-trips", name, id)
			}
		}
	}
}
