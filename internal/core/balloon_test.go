package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/geometry"
	"repro/internal/numa"
)

// guestNodeIDs returns the socket's guest-reserved node IDs.
func guestNodeIDs(h *Hypervisor, socket int) []int {
	var ids []int
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		ids = append(ids, n.ID)
	}
	return ids
}

// TestBalloonReleasesNodeForAdmission is the tentpole acceptance scenario:
// a VM inflated far enough to drain a whole subarray-group node returns
// that node to the admission pool, and a pending VM refused for lack of
// capacity is admitted onto it.
func TestBalloonReleasesNodeForAdmission(t *testing.T) {
	h := bootSiloz(t)
	bal, err := h.CreateVM(kvmProc(), VMSpec{Name: "bal", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(bal.Nodes()) != 2 {
		t.Fatalf("bal owns %d nodes, want 2", len(bal.Nodes()))
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "other", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	pending := VMSpec{Name: "pending", Socket: 0, MemoryBytes: 64 * geometry.MiB}
	if _, err := h.CreateVM(kvmProc(), pending); err == nil {
		t.Fatal("pending VM admitted while socket 0 is full — scenario broken")
	}

	// Touch pages in both halves so the scrub ledger has entries on the
	// node the balloon will drain.
	secret := []byte("tenant-bal confidential bytes")
	for _, p := range []int{0, 31, 32, 63} {
		if err := bal.WriteGuest(uint64(p)*geometry.PageSize2M+128, secret); err != nil {
			t.Fatal(err)
		}
	}
	ram := bal.RAMPages()
	surrendered := ram[32:] // highest-GPA half leaves first

	rep, err := h.BalloonVM("bal", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InflatedPages != 32 {
		t.Errorf("InflatedPages = %d, want 32", rep.InflatedPages)
	}
	if len(rep.ReleasedNodes) != 1 {
		t.Fatalf("ReleasedNodes = %v, want exactly one drained node", rep.ReleasedNodes)
	}
	// Pages 32 and 63 were data-bearing in the surrendered half.
	if want := uint64(2 * geometry.PageSize2M); rep.ScrubbedBytes != want {
		t.Errorf("ScrubbedBytes = %d, want %d", rep.ScrubbedBytes, want)
	}
	if got := bal.BalloonedBytes(); got != 64*geometry.MiB {
		t.Errorf("BalloonedBytes = %d, want 64 MiB", got)
	}
	if len(bal.Nodes()) != 1 {
		t.Errorf("bal still owns %d nodes, want 1", len(bal.Nodes()))
	}

	// Every surrendered frame is zero at the hardware level.
	buf := make([]byte, geometry.PageSize4K)
	for _, pa := range surrendered {
		if err := h.Memory().ReadPhys(pa, buf); err != nil {
			t.Fatal(err)
		}
		if !allZero(buf) {
			t.Errorf("surrendered frame %#x not scrubbed", pa)
		}
	}
	// The surrendered GPA range is unreachable.
	if err := bal.ReadGuest(40*geometry.PageSize2M, buf); err == nil {
		t.Error("read of ballooned-out GPA succeeded")
	}
	// Kept data survives.
	probe := make([]byte, len(secret))
	if err := bal.ReadGuest(31*geometry.PageSize2M+128, probe); err != nil {
		t.Fatal(err)
	}
	if string(probe) != string(secret) {
		t.Error("kept page lost its data across inflation")
	}

	// The drained node admits the pending VM.
	vm, err := h.CreateVM(kvmProc(), pending)
	if err != nil {
		t.Fatalf("pending VM still refused after balloon released a node: %v", err)
	}
	if owner, _ := h.Registry().OwnerOf(rep.ReleasedNodes[0]); owner != "vm:pending" {
		t.Errorf("released node %d owned by %q, want vm:pending", rep.ReleasedNodes[0], owner)
	}
	if vm.Spec().Socket != 0 {
		t.Error("pending VM not on its home socket")
	}
}

// TestBalloonDeflateReadoptsWithoutOverlap: deflating after another tenant
// took the released node must adopt a different node — the registry's
// exclusive Expand makes overlap impossible — and restored pages are zeroed.
func TestBalloonDeflateReadoptsWithoutOverlap(t *testing.T) {
	h := bootSiloz(t)
	bal, err := h.CreateVM(kvmProc(), VMSpec{Name: "bal", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := bal.WriteGuest(40*geometry.PageSize2M, []byte("doomed balloon contents")); err != nil {
		t.Fatal(err)
	}
	rep, err := h.BalloonVM("bal", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	released := rep.ReleasedNodes[0]
	taker, err := h.CreateVM(kvmProc(), VMSpec{Name: "taker", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	hasNode := func(vm *VM, id int) bool {
		for _, n := range vm.Nodes() {
			if n.ID == id {
				return true
			}
		}
		return false
	}
	if !hasNode(taker, released) {
		t.Fatalf("taker did not reuse released node %d — scenario broken", released)
	}

	rep, err = h.BalloonVM("bal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeflatedPages != 32 {
		t.Errorf("DeflatedPages = %d, want 32", rep.DeflatedPages)
	}
	if len(rep.AdoptedNodes) == 0 {
		t.Fatal("deflate adopted no nodes despite its old node being taken")
	}
	if hasNode(bal, released) {
		t.Errorf("deflated VM re-acquired node %d owned by another tenant", released)
	}
	for _, n := range bal.Nodes() {
		if owner, _ := h.Registry().OwnerOf(n.ID); owner != "vm:bal" {
			t.Errorf("node %d in bal's cgroup owned by %q", n.ID, owner)
		}
		if hasNode(taker, n.ID) {
			t.Errorf("node %d in two tenants' domains", n.ID)
		}
	}
	// Restored range is readable again and zero-filled (balloon contents
	// are never preserved).
	buf := make([]byte, geometry.PageSize2M)
	for p := 32; p < 64; p++ {
		if err := bal.ReadGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
			t.Fatalf("restored page %d unreadable: %v", p, err)
		}
		if !allZero(buf) {
			t.Errorf("restored page %d not zeroed", p)
		}
	}
	if err := bal.WriteGuest(40*geometry.PageSize2M, []byte("fresh")); err != nil {
		t.Errorf("restored page not writable: %v", err)
	}
}

func TestBalloonValidation(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BalloonVM("nope", geometry.PageSize2M); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("ballooning an unknown VM: err = %v, want ErrVMNotFound", err)
	}
	if _, err := h.BalloonVM("v", geometry.PageSize2M+1); err == nil {
		t.Error("unaligned balloon target accepted")
	}
	// MinMemoryBytes floor: at most 64 MiB may be surrendered.
	if _, err := h.BalloonVM("v", 66*geometry.MiB); err == nil {
		t.Error("balloon past the MinMemoryBytes floor accepted")
	}
	if _, err := h.BalloonVM("v", 64*geometry.MiB); err != nil {
		t.Errorf("balloon to the floor refused: %v", err)
	}
	// Without a floor, at least one resident page must remain.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "w", Socket: 1, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BalloonVM("w", 64*geometry.MiB); err == nil {
		t.Error("balloon of the entire RAM accepted")
	}
	if _, err := h.BalloonVM("w", 64*geometry.MiB-geometry.PageSize2M); err != nil {
		t.Errorf("balloon to one resident page refused: %v", err)
	}
	// MinMemoryBytes itself is validated at creation.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "x", Socket: 1, MemoryBytes: 64 * geometry.MiB,
		MinMemoryBytes: 128 * geometry.MiB}); err == nil {
		t.Error("MinMemoryBytes above MemoryBytes accepted")
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "y", Socket: 1, MemoryBytes: 64 * geometry.MiB,
		MinMemoryBytes: geometry.PageSize2M + 1}); err == nil {
		t.Error("unaligned MinMemoryBytes accepted")
	}
}

// TestBalloonRefusedDuringMigration: the balloon and the pre-copy engine
// both rewrite the RAM layout; a balloon arriving mid-migration must be
// refused, not interleaved.
func TestBalloonRefusedDuringMigration(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "m", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	var balloonErr error
	opt := MigrateOptions{GuestStep: func(round int) error {
		if round == 0 {
			_, balloonErr = h.BalloonVM("m", geometry.PageSize2M)
		}
		return nil
	}}
	destIDs := guestNodeIDs(h, 1)
	if _, err := h.MigrateVM(context.Background(), "m", destIDs[:1], opt); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(balloonErr, ErrResizeBusy) {
		t.Errorf("balloon during live migration: err = %v, want ErrResizeBusy", balloonErr)
	}
}

// TestBalloonedVMMigrates: a VM with an inflated balloon live-migrates;
// only resident pages move and the holes stay unmapped at the destination.
func TestBalloonedVMMigrates(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "m", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives the move")
	if err := vm.WriteGuest(10*geometry.PageSize2M+7, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BalloonVM("m", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	rep, err := h.MigrateVM(context.Background(), "m", guestNodeIDs(h, 1), MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesTotal != 32 {
		t.Errorf("PagesTotal = %d, want 32 resident pages", rep.PagesTotal)
	}
	probe := make([]byte, len(payload))
	if err := vm.ReadGuest(10*geometry.PageSize2M+7, probe); err != nil {
		t.Fatal(err)
	}
	if string(probe) != string(payload) {
		t.Error("resident data diverged across migration")
	}
	if err := vm.ReadGuest(40*geometry.PageSize2M, probe); err == nil {
		t.Error("ballooned hole became readable after migration")
	}
	if got := vm.BalloonedBytes(); got != 64*geometry.MiB {
		t.Errorf("BalloonedBytes = %d after migration, want 64 MiB", got)
	}
}

// TestConcurrentBalloonLifecycle is the property-style race test: VMs on
// both sockets inflate/deflate concurrently with admission churn. After any
// interleaving, no guest node has two owners and every unowned node's
// memory is zero.
func TestConcurrentBalloonLifecycle(t *testing.T) {
	h := bootSiloz(t)
	mk := func(name string, socket int, bytes uint64) *VM {
		t.Helper()
		vm, err := h.CreateVM(kvmProc(), VMSpec{Name: name, Socket: socket, MemoryBytes: bytes,
			MinMemoryBytes: 64 * geometry.MiB})
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	mk("c0", 0, 128*geometry.MiB)
	mk("c1", 1, 128*geometry.MiB)

	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, name := range []string{"c0", "c1"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vm, _ := h.VM(name)
				if err := vm.WriteGuest(20*geometry.PageSize2M, []byte{byte(i + 1)}); err != nil {
					errs <- err
					return
				}
				if _, err := h.BalloonVM(name, 64*geometry.MiB); err != nil {
					errs <- err
					return
				}
				// Deflation can transiently fail when the churn worker
				// holds the last free node; that is a capacity race, not
				// an invariant violation.
				_, _ = h.BalloonVM(name, 0)
			}
		}(name)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("churn%d", i)
			vm, err := h.CreateVM(kvmProc(), VMSpec{Name: name, Socket: i % 2, MemoryBytes: 64 * geometry.MiB})
			if err != nil {
				continue // socket transiently full
			}
			if werr := vm.WriteGuest(0, []byte("churn data")); werr != nil {
				errs <- werr
				return
			}
			if derr := h.DestroyVM(name); derr != nil {
				errs <- derr
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Error(err)
		}
	}

	// Invariant 1: no guest node in two tenants' domains.
	seen := map[int]string{}
	for _, vm := range h.VMs() {
		for _, n := range vm.Nodes() {
			if prev, dup := seen[n.ID]; dup {
				t.Errorf("node %d owned by both %q and %q", n.ID, prev, vm.Name())
			}
			seen[n.ID] = vm.Name()
			if owner, _ := h.Registry().OwnerOf(n.ID); owner != "vm:"+vm.Name() {
				t.Errorf("registry owner of node %d is %q, VM is %q", n.ID, owner, vm.Name())
			}
		}
	}
	// Invariant 2: every drained (unowned) guest node is fully free and
	// holds only zeros.
	buf := make([]byte, geometry.PageSize4K)
	for _, n := range h.Topology().NodesOfKind(numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		if a.UsedBytes() != 0 {
			t.Errorf("unowned node %d has %d bytes allocated", n.ID, a.UsedBytes())
		}
		for _, r := range n.Ranges {
			for pa := r.Start; pa+geometry.PageSize4K <= r.End; pa += geometry.PageSize2M {
				if err := h.Memory().ReadPhys(pa, buf); err != nil {
					t.Fatal(err)
				}
				if !allZero(buf) {
					t.Fatalf("drained node %d holds non-zero data at %#x", n.ID, pa)
				}
			}
		}
	}
}
