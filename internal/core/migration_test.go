package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/geometry"
	"repro/internal/numa"
)

// fillPage builds a deterministic 2 MiB pattern distinguishable per (page,
// seed) pair.
func fillPage(p int, seed byte) []byte {
	buf := make([]byte, geometry.PageSize2M)
	for i := range buf {
		buf[i] = byte(p*31+i*7) ^ seed
	}
	return buf
}

// freeGuestNode returns an unowned guest-reserved node on the socket.
func freeGuestNode(t *testing.T, h *Hypervisor, socket int) *numa.Node {
	t.Helper()
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); !owned {
			return n
		}
	}
	t.Fatalf("no free guest node on socket %d", socket)
	return nil
}

func TestDirtyTrackingLogsWrites(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "dt", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.StartDirtyTracking(); err != nil {
		t.Fatal(err)
	}
	if err := vm.StartDirtyTracking(); err == nil {
		t.Error("double StartDirtyTracking accepted")
	}
	// Writes to pages 3 and 5 (5 twice: logged once per round).
	for _, gpa := range []uint64{3 * geometry.PageSize2M, 5 * geometry.PageSize2M, 5*geometry.PageSize2M + 99} {
		if err := vm.WriteGuest(gpa, []byte("dirty")); err != nil {
			t.Fatal(err)
		}
	}
	gpas, err := vm.TakeDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(gpas) != 2 || gpas[0] != 3*geometry.PageSize2M || gpas[1] != 5*geometry.PageSize2M {
		t.Fatalf("dirty set = %#v, want pages 3 and 5", gpas)
	}
	// Drained; protection re-armed, so a new write is logged again.
	if gpas, err = vm.TakeDirty(); err != nil || len(gpas) != 0 {
		t.Fatalf("second drain = %v, %v, want empty", gpas, err)
	}
	if err := vm.WriteGuest(3*geometry.PageSize2M, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if gpas, err = vm.TakeDirty(); err != nil || len(gpas) != 1 {
		t.Fatalf("re-dirty drain = %v, %v, want one page", gpas, err)
	}
	if err := vm.StopDirtyTracking(); err != nil {
		t.Fatal(err)
	}
	if vm.DirtyTracking() {
		t.Error("still tracking after stop")
	}
	// Disarmed: writes must not fault or log.
	before := vm.Exits()
	if err := vm.WriteGuest(7*geometry.PageSize2M, []byte("free")); err != nil {
		t.Fatal(err)
	}
	if vm.Exits() != before {
		t.Error("write after StopDirtyTracking still took an exit")
	}
}

func TestMigrateVMLivePreCopy(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	srcNode := vm.Nodes()[0].ID
	srcPages := vm.RAMPages()

	// Pre-migration contents: pages 0..7 patterned, the rest untouched.
	mirror := map[int][]byte{}
	for p := 0; p < 8; p++ {
		buf := fillPage(p, 0xA5)
		if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
			t.Fatal(err)
		}
		mirror[p] = buf
	}

	// The guest keeps writing while pre-copy runs: shrinking page sets per
	// round so the dirty set converges after a few rounds.
	stepPages := map[int][]int{0: {10, 11, 12, 13, 14, 15}, 1: {10, 11, 12}, 2: {10}}
	dest := freeGuestNode(t, h, 0)
	rep, err := h.MigrateVM(context.Background(), "mig", []int{dest.ID}, MigrateOptions{
		StopPages: 1, MaxRounds: 10,
		GuestStep: func(round int) error {
			for _, p := range stepPages[round] {
				buf := fillPage(p, byte(0x11*(round+1)))
				if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
					return err
				}
				mirror[p] = buf
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Errorf("pre-copy did not converge: %+v", rep)
	}
	if len(rep.Rounds) != 3 {
		t.Errorf("rounds = %d, want 3", len(rep.Rounds))
	}
	if rep.PagesTotal != 32 || rep.Rounds[0].PagesCopied != 32 {
		t.Errorf("round 0 copied %d of %d pages", rep.Rounds[0].PagesCopied, rep.PagesTotal)
	}
	if rep.Rounds[0].DirtyAfter != 6 || rep.Rounds[1].DirtyAfter != 3 || rep.Rounds[2].DirtyAfter != 1 {
		t.Errorf("dirty-set trajectory %+v, want 6/3/1", rep.Rounds)
	}
	if rep.DowntimePages != 1 {
		t.Errorf("downtime pages = %d, want the single converged dirty page", rep.DowntimePages)
	}
	// Zero pages moved no bytes: round 0 transferred only materialized data.
	if rep.Rounds[0].BytesCopied != 8*geometry.PageSize2M {
		t.Errorf("round 0 bytes = %d, want %d (8 data pages)", rep.Rounds[0].BytesCopied, 8*geometry.PageSize2M)
	}

	// The VM now lives entirely on the destination node.
	if len(vm.Nodes()) != 1 || vm.Nodes()[0].ID != dest.ID {
		t.Fatalf("post-migration nodes = %v, want [%d]", vm.Nodes(), dest.ID)
	}
	for _, hpa := range vm.RAMPages() {
		if !dest.Contains(hpa) {
			t.Errorf("RAM page %#x outside destination node", hpa)
		}
	}
	// Source node released and its memory scrubbed + returned.
	if owner, owned := h.Registry().OwnerOf(srcNode); owned {
		t.Errorf("source node still owned by %q", owner)
	}
	if a, _ := h.Allocator(srcNode); a.FreeBytes() != a.TotalBytes() {
		t.Errorf("source node not fully freed: %d of %d", a.FreeBytes(), a.TotalBytes())
	}
	probe := make([]byte, 4096)
	for _, hpa := range srcPages {
		if err := h.Memory().ReadPhys(hpa, probe); err != nil {
			t.Fatal(err)
		}
		if !allZero(probe) {
			t.Fatalf("source page %#x not scrubbed after migration", hpa)
		}
	}
	// Byte identity: every page matches the mirror (or is still zero).
	got := make([]byte, geometry.PageSize2M)
	zero := make([]byte, geometry.PageSize2M)
	for p := 0; p < 32; p++ {
		if err := vm.ReadGuest(uint64(p)*geometry.PageSize2M, got); err != nil {
			t.Fatal(err)
		}
		want := mirror[p]
		if want == nil {
			want = zero
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d content diverged across migration", p)
		}
	}
	// The guest keeps running: post-migration writes work and land in the
	// destination domain.
	if err := vm.WriteGuest(20*geometry.PageSize2M, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if vm.DirtyTracking() {
		t.Error("dirty tracking still armed after migration")
	}
}

func TestMigrateVMDefragAdmitsPendingVM(t *testing.T) {
	// The fragmentation scenario (§8.1): socket 0's three guest nodes are
	// all owned, so a new VM is refused even though socket 1 is empty.
	// Rebalancing one victim across sockets vacates a group and the
	// pending VM is admitted.
	h := bootSiloz(t)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := h.CreateVM(kvmProc(), VMSpec{Name: name, Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "pending", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err == nil {
		t.Fatal("socket 0 should be full")
	}
	dest := freeGuestNode(t, h, 1)
	if _, err := h.MigrateVM(context.Background(), "a", []int{dest.ID}, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "pending", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatalf("pending VM still refused after rebalancing: %v", err)
	}
	// All four domains pairwise disjoint.
	vms := h.VMs()
	for i, a := range vms {
		for _, b := range vms[i+1:] {
			for _, hpa := range b.RAMPages() {
				if a.InDomain(hpa) {
					t.Fatalf("VM %q page %#x inside VM %q's domain", b.Name(), hpa, a.Name())
				}
			}
		}
	}
}

func TestMigrateVMRollbackOnCancel(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "rb", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	srcNode := vm.Nodes()[0].ID
	content := fillPage(2, 0x3C)
	if err := vm.WriteGuest(2*geometry.PageSize2M, content); err != nil {
		t.Fatal(err)
	}
	dest := freeGuestNode(t, h, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Keep the dirty set large so pre-copy never converges, and cancel
	// mid-flight: the next round boundary aborts and rolls back.
	_, err = h.MigrateVM(ctx, "rb", []int{dest.ID}, MigrateOptions{
		StopPages: 1, MaxRounds: 50,
		GuestStep: func(round int) error {
			if round == 1 {
				cancel()
			}
			for p := 8; p < 14; p++ {
				if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, []byte{byte(round + 1)}); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("cancelled migration reported success")
	}
	// The VM is intact on its source node; the destination is released.
	if len(vm.Nodes()) != 1 || vm.Nodes()[0].ID != srcNode {
		t.Fatalf("post-rollback nodes = %v, want [%d]", vm.Nodes(), srcNode)
	}
	if _, owned := h.Registry().OwnerOf(dest.ID); owned {
		t.Error("destination node still owned after rollback")
	}
	if a, _ := h.Allocator(dest.ID); a.FreeBytes() != a.TotalBytes() {
		t.Error("destination pages not freed after rollback")
	}
	if vm.DirtyTracking() {
		t.Error("dirty tracking still armed after rollback")
	}
	got := make([]byte, len(content))
	if err := vm.ReadGuest(2*geometry.PageSize2M, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("guest memory corrupted by rolled-back migration")
	}
	// The guest still runs, and a retry (without cancellation) succeeds.
	if err := vm.WriteGuest(9*geometry.PageSize2M, []byte("post-rollback")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MigrateVM(context.Background(), "rb", []int{dest.ID}, MigrateOptions{}); err != nil {
		t.Fatalf("retry after rollback failed: %v", err)
	}
}

func TestMigrateVMDestValidation(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	other, err := h.CreateVM(kvmProc(), VMSpec{Name: "w", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	host := h.Topology().NodesOnSocket(0, numa.HostReserved)[0]
	if _, err := h.MigrateVM(ctx, "v", []int{host.ID}, MigrateOptions{}); err == nil {
		t.Error("host-reserved destination accepted")
	}
	if _, err := h.MigrateVM(ctx, "v", []int{vm.Nodes()[0].ID}, MigrateOptions{}); err == nil {
		t.Error("migrating onto the VM's own node accepted")
	}
	if _, err := h.MigrateVM(ctx, "v", []int{other.Nodes()[0].ID}, MigrateOptions{}); err == nil {
		t.Error("another tenant's node accepted as destination — exclusivity violated")
	}
	if _, err := h.MigrateVM(ctx, "v", nil, MigrateOptions{}); err == nil {
		t.Error("empty destination list accepted")
	}
	if _, err := h.MigrateVM(ctx, "ghost", []int{2}, MigrateOptions{}); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("migrating unknown VM: err = %v, want ErrVMNotFound", err)
	}
	_ = other
}

func TestMigrateVMBaselineCrossSocket(t *testing.T) {
	h := bootBaseline(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "base", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	content := fillPage(0, 0x7E)
	if err := vm.WriteGuest(0, content); err != nil {
		t.Fatal(err)
	}
	destNode := h.Topology().NodesOnSocket(1, numa.HostReserved)[0]
	rep, err := h.MigrateVM(context.Background(), "base", []int{destNode.ID}, MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SourceNodes) != 1 || rep.SourceNodes[0] == destNode.ID {
		t.Errorf("baseline source nodes = %v", rep.SourceNodes)
	}
	for _, hpa := range vm.RAMPages() {
		if !destNode.Contains(hpa) {
			t.Errorf("RAM page %#x not on destination socket", hpa)
		}
	}
	got := make([]byte, len(content))
	if err := vm.ReadGuest(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("baseline migration corrupted guest memory")
	}
}

func TestMigrateVMMovesGuestPlacedRegions(t *testing.T) {
	// Unmediated regions (e.g. ROM) live in the VM's reserved groups; they
	// must move with the VM or the vacated source node would still hold
	// tenant pages after its release.
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "rom", Socket: 0, MemoryBytes: 32 * geometry.MiB,
		Regions: []Region{{Name: "bios", Type: RegionROM, Bytes: 64 * geometry.KiB}},
	})
	if err != nil {
		t.Fatal(err)
	}
	romGPA, err := vm.RegionGPA("bios")
	if err != nil {
		t.Fatal(err)
	}
	// ROM content is installed by the host before boot (direct write).
	romBytes := []byte("firmware image v1")
	oldROM, err := vm.RegionPages("bios")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Memory().WritePhys(oldROM[0], romBytes); err != nil {
		t.Fatal(err)
	}
	dest := freeGuestNode(t, h, 0)
	if _, err := h.MigrateVM(context.Background(), "rom", []int{dest.ID}, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	newROM, err := vm.RegionPages("bios")
	if err != nil {
		t.Fatal(err)
	}
	if newROM[0] == oldROM[0] {
		t.Error("ROM pages did not move")
	}
	for _, pa := range newROM {
		if !dest.Contains(pa) {
			t.Errorf("ROM page %#x outside destination node", pa)
		}
	}
	got := make([]byte, len(romBytes))
	if err := vm.ReadGuest(romGPA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, romBytes) {
		t.Error("ROM content lost in migration")
	}
	// Still read-only: a guest write exits and is emulated, not direct.
	before := vm.Exits()
	if err := vm.WriteGuest(romGPA, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if vm.Exits() == before {
		t.Error("post-migration ROM write took no exit — write protection lost")
	}
}
