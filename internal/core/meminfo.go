package core

import (
	"fmt"
	"strings"

	"repro/internal/numa"
)

// NodeStat is one logical node's memory statistics, the information the
// kernel periodically aggregates for allocation and reclaim decisions.
type NodeStat struct {
	NodeID     int
	Kind       numa.NodeKind
	TotalBytes uint64
	FreeBytes  uint64
}

// MemInfo is a refreshed snapshot over all logical nodes.
type MemInfo struct {
	Stats []NodeStat
	// Polled counts how many nodes were actually iterated during the
	// refresh. Siloz manages many more logical nodes than the baseline,
	// so it avoids iterating nodes whose statistics cannot have changed:
	// a guest-reserved node's free memory is static between VM boot and
	// shutdown (§5.3), so only nodes with allocator activity since the
	// last refresh are polled.
	Polled int
}

// statCache tracks per-node allocator versions between refreshes.
type statCache struct {
	lastVersion map[int]uint64
	lastStat    map[int]NodeStat
}

// RefreshMemInfo updates the hypervisor's node statistics, skipping nodes
// whose allocators are unchanged since the previous refresh (§5.3's
// lock-avoidance optimization for large logical node counts).
func (h *Hypervisor) RefreshMemInfo() (MemInfo, error) {
	if h.stats == nil {
		h.stats = &statCache{
			lastVersion: make(map[int]uint64),
			lastStat:    make(map[int]NodeStat),
		}
	}
	var info MemInfo
	for _, n := range h.topo.Nodes() {
		a, err := h.Allocator(n.ID)
		if err != nil {
			return info, err
		}
		v := a.Version()
		if cached, ok := h.stats.lastStat[n.ID]; ok && h.stats.lastVersion[n.ID] == v {
			info.Stats = append(info.Stats, cached)
			continue
		}
		info.Polled++
		s := NodeStat{NodeID: n.ID, Kind: n.Kind, TotalBytes: a.TotalBytes(), FreeBytes: a.FreeBytes()}
		h.stats.lastVersion[n.ID] = v
		h.stats.lastStat[n.ID] = s
		info.Stats = append(info.Stats, s)
	}
	return info, nil
}

// Render formats the snapshot like a /proc-style report.
func (m MemInfo) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-6s %14s %14s\n", "node", "kind", "total", "free")
	for _, s := range m.Stats {
		fmt.Fprintf(&b, "%-5d %-6s %14d %14d\n", s.NodeID, s.Kind, s.TotalBytes, s.FreeBytes)
	}
	fmt.Fprintf(&b, "(%d of %d nodes polled)\n", m.Polled, len(m.Stats))
	return b.String()
}
