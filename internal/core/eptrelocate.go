package core

import (
	"fmt"

	"repro/internal/geometry"
)

// EPT-table relocation (§5.4 applied to live migration): migration and the
// resize facade move guest data between sockets, but a VM's EPT tables stay
// where CreateVM placed them — the boot socket's guard-protected EPT block.
// Relocation rebuilds the hierarchy from the destination socket's GFP_EPT
// allocator under the pause gate, so the guard-block placement argument
// holds for the socket the guest actually lives on, and so the source
// socket's EPT row group can drain for defragmentation.

// EPTRelocationReport describes one EPT-table relocation.
type EPTRelocationReport struct {
	VM         string
	FromSocket int
	ToSocket   int
	// TablePages is the number of table pages rebuilt on the destination
	// socket (zero when the tables were already there).
	TablePages int
	// ReclaimedBytes is how much the source socket's EPT pool got back.
	ReclaimedBytes uint64
}

// RelocateEPT moves a VM's EPT tables into the named socket's EPT pool —
// the guard-protected EPT block under guard-rows protection, the socket's
// host pool otherwise. The guest is paused for the copy (the root and every
// intermediate pointer swap non-atomically); on failure the old hierarchy
// remains live and the guest resumes unharmed. Migration calls the same
// machinery automatically; this entry point serves standalone rebalancing.
func (h *Hypervisor) RelocateEPT(name string, socket int) (EPTRelocationReport, error) {
	var rep EPTRelocationReport
	h.mu.Lock()
	vm, ok := h.vms[name]
	if !ok {
		h.mu.Unlock()
		return rep, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("ept relocation"); err != nil {
		h.mu.Unlock()
		return rep, err
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		vm.releaseLifecycle()
		h.mu.Unlock()
	}()

	rep.VM = name
	rep.FromSocket = vm.eptSocket
	rep.ToSocket = socket
	if socket < 0 || socket >= h.cfg.Geometry.Sockets {
		return rep, fmt.Errorf("core: socket %d out of range", socket)
	}
	if socket == vm.eptSocket {
		return rep, nil // already home; nothing to move
	}

	vm.Pause()
	defer vm.Resume()
	moved, err := h.relocateTables(vm, socket)
	if err != nil {
		return rep, err
	}
	rep.TablePages = moved
	rep.ReclaimedBytes = uint64(moved) * geometry.PageSize4K
	return rep, nil
}

// relocateTables rebuilds vm's EPT hierarchy from the destination socket's
// EPT allocator and retargets the VM's EPT-residency bookkeeping. The
// caller holds the VM paused and the lifecycle latch.
func (h *Hypervisor) relocateTables(vm *VM, socket int) (int, error) {
	if vm.tables == nil {
		return 0, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	newA, err := h.eptAllocatorFor(socket)
	if err != nil {
		return 0, err
	}
	moved, err := vm.tables.Relocate(eptAlloc{newA})
	if err != nil {
		return 0, fmt.Errorf("core: relocating EPT tables of VM %q to socket %d: %w", vm.spec.Name, socket, err)
	}
	from := vm.eptSocket
	vm.eptSocket = socket
	vm.InvalidateTLB()
	h.logf("relocated EPT tables of VM %q: %d pages, socket %d -> %d", vm.spec.Name, moved, from, socket)
	return moved, nil
}

// relocateIfStranded relocates vm's EPT tables when every node backing the
// VM sits on one socket that is not the tables' current home — the state a
// resize can leave behind when it drops a VM's last remote (or last home-
// socket) node. Safe no-op otherwise. The caller holds the lifecycle latch
// but not the pause gate.
func (h *Hypervisor) relocateIfStranded(vm *VM) error {
	if h.mode != ModeSiloz || len(vm.nodes) == 0 {
		return nil
	}
	socket := vm.nodes[0].Socket
	for _, n := range vm.nodes[1:] {
		if n.Socket != socket {
			return nil // VM spans sockets; no single home to follow
		}
	}
	if socket == vm.eptSocket {
		return nil
	}
	vm.Pause()
	defer vm.Resume()
	_, err := h.relocateTables(vm, socket)
	return err
}
