package core

// Memory ballooning: returning part of a running VM's exclusive subarray
// group reservation to the host (virtio-balloon semantics over Siloz's
// isolation domains). The guest driver (internal/guest) inflates by pinning
// guest frames into its balloon and telling the hypervisor which GPA ranges
// it surrendered; this file implements the host side:
//
//   1. Unmap the surrendered 2 MiB EPT leaves. The guest can no longer
//      reach the ranges — any access would take an EPT violation.
//   2. Scrub the backing host pages that ever held guest data (the
//      touched-page ledger makes never-written pages free to release) and
//      return them to their node's buddy allocator.
//   3. When a whole subarray-group node drains — the allocator reports
//      zero used bytes — shrink the VM's control group off the node. The
//      group returns to the admission pool for the next reservation, and
//      the shrink is safe precisely because the node is empty: the VM's
//      domain loses only memory the guest already cannot touch, so the
//      subarray-isolation invariant (§5.2-5.3) is preserved at every step.
//
// Deflation reverses the flow: re-allocate frames from the VM's remaining
// nodes, adopting fresh unowned nodes through the registry's exclusive
// Expand when capacity ran out, and remap the EPT leaves. The registry
// refuses to adopt an owned node, so a deflating VM can never grow into
// another tenant's domain.

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// BalloonReport summarizes one BalloonVM call.
type BalloonReport struct {
	VM       string
	Target   uint64 // balloon size after the call (bytes surrendered)
	Previous uint64 // balloon size before the call

	InflatedPages int    // 2 MiB pages surrendered by this call
	DeflatedPages int    // 2 MiB pages restored by this call
	ScrubbedBytes uint64 // data-bearing bytes zeroed before release
	ReleasedNodes []int  // guest nodes drained and returned to the pool
	AdoptedNodes  []int  // guest nodes adopted to satisfy a deflate
}

// balloonFloor is the smallest resident RAM a balloon may leave behind:
// the spec's MinMemoryBytes, and never less than one 2 MiB page (a VM with
// zero resident pages would own no guest nodes, breaking the audit's
// VM-has-a-domain invariant).
func balloonFloor(spec VMSpec) uint64 {
	floor := spec.MinMemoryBytes
	if floor < geometry.PageSize2M {
		floor = geometry.PageSize2M
	}
	return floor
}

// BalloonVM sets a VM's balloon to targetBytes — the amount of its RAM
// surrendered to the host. A larger target inflates (frees pages, possibly
// whole nodes); a smaller one deflates (restores pages, adopting nodes as
// needed). The guest must already have quiesced the covered ranges: the
// guest-side driver (guest.Balloon) pins the frames before calling here.
// The call takes the VM's lifecycle latch, so it is refused (ErrResizeBusy)
// while the VM is live-migrating, resizing, or hot-plugging memory.
func (h *Hypervisor) BalloonVM(name string, targetBytes uint64) (*BalloonReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("balloon"); err != nil {
		return nil, err
	}
	defer vm.releaseLifecycle()
	rep, err := h.balloonTo(vm, targetBytes)
	if err != nil {
		return nil, err
	}
	// A deflate that re-adopted nodes (or an inflate that dropped the last
	// node on a socket) can leave the whole reservation on a socket other
	// than the EPT tables' home; pull the tables after the guest.
	if rerr := h.relocateIfStranded(vm); rerr != nil {
		return rep, fmt.Errorf("core: balloon of VM %q left EPT tables behind: %w", name, rerr)
	}
	return rep, nil
}

// balloonTo is BalloonVM's body, shared with the resize facade. Caller holds
// h.mu and the VM's lifecycle latch.
func (h *Hypervisor) balloonTo(vm *VM, targetBytes uint64) (*BalloonReport, error) {
	name := vm.spec.Name
	if vm.DirtyTracking() {
		return nil, fmt.Errorf("core: VM %q has dirty logging armed; ballooning would lose protection state", name)
	}
	if targetBytes%geometry.PageSize2M != 0 {
		return nil, fmt.Errorf("core: balloon target %d must be a multiple of 2 MiB", targetBytes)
	}
	if max := vm.spec.MemoryBytes - balloonFloor(vm.spec); targetBytes > max {
		return nil, fmt.Errorf("core: balloon target %d exceeds VM %q's reclaimable %d bytes (floor %d)",
			targetBytes, name, max, balloonFloor(vm.spec))
	}

	rep := &BalloonReport{
		VM:       name,
		Target:   targetBytes,
		Previous: uint64(len(vm.ballooned)) * geometry.PageSize2M,
	}
	targetPages := int(targetBytes / geometry.PageSize2M)
	delta := targetPages - len(vm.ballooned)
	var err error
	switch {
	case delta > 0:
		err = h.balloonInflate(vm, delta, rep)
	case delta < 0:
		err = h.balloonDeflate(vm, -delta, rep)
	}
	if err != nil {
		return nil, err
	}
	if delta != 0 {
		h.logf("balloon VM %q: %d -> %d MiB surrendered (+%d/-%d pages, %d bytes scrubbed, released nodes %v, adopted %v)",
			name, rep.Previous>>20, rep.Target>>20, rep.InflatedPages, rep.DeflatedPages,
			rep.ScrubbedBytes, rep.ReleasedNodes, rep.AdoptedNodes)
	}
	return rep, nil
}

// inflateVictims picks the RAM page indexes an inflate of n pages would
// surrender: the highest-GPA resident pages, matching the guest driver's
// top-down pinning. Caller holds h.mu.
func inflateVictims(vm *VM, n int) []int {
	victims := make([]int, 0, n)
	for p := len(vm.ram) - 1; p >= 0 && len(victims) < n; p-- {
		if vm.ram[p] != hpaNone {
			victims = append(victims, p)
		}
	}
	return victims
}

// balloonInflate surrenders n resident pages. Caller holds h.mu.
func (h *Hypervisor) balloonInflate(vm *VM, n int, rep *BalloonReport) error {
	victims := inflateVictims(vm, n)
	if len(victims) < n {
		return fmt.Errorf("core: VM %q has only %d resident pages, inflate wants %d", vm.spec.Name, len(victims), n)
	}
	// The guest is paused across the unmap+free so no store can race the
	// EPT edit (the same stop-the-world window a real balloon's
	// MADV_DONTNEED takes, just coarser). Hammer and device DMA hold the
	// same gate, so no stale-translation activation can land mid-drain.
	vm.Pause()
	defer vm.Resume()

	// Phase 1: unmap every surrendered leaf and drop the device IOMMU
	// entries. After this the ranges are unreachable architecturally —
	// the frames still hold guest data but only physical access remains.
	type drainPage struct {
		hpa         uint64
		node        int
		dataBearing bool
	}
	drains := make([]drainPage, 0, len(victims))
	for _, p := range victims {
		gpa := uint64(p) * geometry.PageSize2M
		if err := vm.tables.Unmap(gpa); err != nil {
			return fmt.Errorf("core: unmapping ballooned gpa %#x of VM %q: %w", gpa, vm.spec.Name, err)
		}
		hpa := vm.ram[p]
		vm.dirtyMu.Lock()
		_, dataBearing := vm.touched[p]
		delete(vm.touched, p)
		vm.dirtyMu.Unlock()
		node := vm.ramNode[hpa]
		delete(vm.ramNode, hpa)
		drains = append(drains, drainPage{hpa: hpa, node: node, dataBearing: dataBearing})
		vm.ram[p] = hpaNone
		if vm.ballooned == nil {
			vm.ballooned = make(map[int]struct{})
		}
		vm.ballooned[p] = struct{}{}
		rep.InflatedPages++
	}
	vm.InvalidateTLB()
	if err := vm.syncDeviceTables(); err != nil {
		return err
	}
	h.probe(ProbeBalloonUnmapped, vm)

	// Phase 2: scrub the data-bearing frames, then return them to their
	// nodes' buddy allocators. Scrub strictly precedes free: from the
	// instant a frame is back in the pool it may be handed to any tenant.
	freed := make(map[int][]uint64) // node ID -> freed HPAs
	for _, d := range drains {
		if d.dataBearing {
			if err := h.mem.ScrubPhys(d.hpa, geometry.PageSize2M); err != nil {
				return err
			}
			rep.ScrubbedBytes += geometry.PageSize2M
		}
		freed[d.node] = append(freed[d.node], d.hpa)
	}
	for node, pages := range freed {
		a, err := h.Allocator(node)
		if err != nil {
			return err
		}
		if err := a.FreePages(alloc.Order2M, pages); err != nil {
			return err
		}
	}
	h.probe(ProbeBalloonDrained, vm)

	// Phase 3: drained whole nodes leave the control group and return to
	// the admission pool.
	if h.mode == ModeSiloz {
		released, err := h.releaseDrainedNodes(vm)
		if err != nil {
			return err
		}
		rep.ReleasedNodes = released
	}
	return nil
}

// releaseDrainedNodes shrinks the VM's control group off every guest node
// whose allocator holds no allocations — the partial-release step that
// returns whole subarray groups to the admission pool. Caller holds h.mu.
func (h *Hypervisor) releaseDrainedNodes(vm *VM) ([]int, error) {
	var drained []int
	for _, node := range vm.nodes {
		a, err := h.Allocator(node.ID)
		if err != nil {
			return nil, err
		}
		if a.UsedBytes() == 0 {
			drained = append(drained, node.ID)
		}
	}
	if len(drained) == 0 {
		return nil, nil
	}
	sort.Ints(drained)
	if err := h.reg.Shrink(vm.cgroup.Name, drained); err != nil {
		return nil, err
	}
	vm.nodes = vm.cgroup.Nodes()
	return drained, nil
}

// balloonDeflate restores n ballooned pages, adopting additional guest
// nodes when the VM's remaining reservation lacks capacity. Caller holds
// h.mu.
func (h *Hypervisor) balloonDeflate(vm *VM, n int, rep *BalloonReport) error {
	restore := make([]int, 0, len(vm.ballooned))
	for p := range vm.ballooned {
		restore = append(restore, p)
	}
	sort.Ints(restore)
	if n > len(restore) {
		n = len(restore)
	}
	restore = restore[:n]

	frames, nodes, adopted, err := h.allocGrowFrames(vm, n)
	if err != nil {
		return err
	}
	vm.Pause()
	defer vm.Resume()
	for i, p := range restore {
		gpa := uint64(p) * geometry.PageSize2M
		if merr := vm.tables.Map2M(gpa, frames[i]); merr != nil {
			// Unreachable in practice: Unmap retained the intermediate
			// tables, so the remap allocates nothing. Free what was not
			// committed and report.
			for j := i; j < len(frames); j++ {
				if a, aerr := h.Allocator(nodes[j]); aerr == nil {
					_ = a.Free(frames[j], alloc.Order2M)
				}
			}
			return fmt.Errorf("core: remapping deflated gpa %#x of VM %q: %w", gpa, vm.spec.Name, merr)
		}
		vm.ram[p] = frames[i]
		vm.ramNode[frames[i]] = nodes[i]
		delete(vm.ballooned, p)
		rep.DeflatedPages++
	}
	vm.InvalidateTLB()
	if err := vm.syncDeviceTables(); err != nil {
		return err
	}
	rep.AdoptedNodes = adopted
	return nil
}

// allocGrowFrames obtains n huge pages for a grow (balloon deflate or
// memory hotplug): first from the VM's current nodes, then by adopting
// unowned guest nodes (home socket first, remote sockets if the spec
// allows) through the registry's exclusive Expand. On failure every
// allocation and adoption is rolled back. Caller holds h.mu.
func (h *Hypervisor) allocGrowFrames(vm *VM, n int) (frames []uint64, nodes []int, adopted []int, err error) {
	rollback := func() {
		for i, hpa := range frames {
			if a, aerr := h.Allocator(nodes[i]); aerr == nil {
				_ = a.Free(hpa, alloc.Order2M)
			}
		}
		if len(adopted) > 0 {
			_ = h.reg.Shrink(vm.cgroup.Name, adopted)
			vm.nodes = vm.cgroup.Nodes()
		}
	}
	var sources []*numa.Node
	if h.mode == ModeSiloz {
		sources = append(sources, vm.nodes...)
	} else {
		sources = h.topo.NodesOnSocket(vm.spec.Socket, numa.HostReserved)
	}
	si := 0
	for len(frames) < n {
		for si < len(sources) {
			a, aerr := h.Allocator(sources[si].ID)
			if aerr != nil {
				rollback()
				return nil, nil, nil, aerr
			}
			hpa, aerr := a.Alloc(alloc.Order2M)
			if aerr == nil {
				frames = append(frames, hpa)
				nodes = append(nodes, sources[si].ID)
				break
			}
			si++ // node exhausted; next source
		}
		if len(frames) < n && si >= len(sources) {
			// Out of owned capacity: adopt one more unowned guest node.
			if h.mode != ModeSiloz {
				rollback()
				return nil, nil, nil, fmt.Errorf("%w: growing VM %q: %w", ErrCapacityExhausted, vm.spec.Name, alloc.ErrNoMemory)
			}
			next, ok := h.adoptableNode(vm)
			if !ok {
				rollback()
				return nil, nil, nil, fmt.Errorf("%w: growing VM %q: no unowned guest node has capacity: %w",
					ErrCapacityExhausted, vm.spec.Name, alloc.ErrNoMemory)
			}
			if aerr := h.reg.Expand(vm.cgroup.Name, []int{next.ID}); aerr != nil {
				rollback()
				return nil, nil, nil, aerr
			}
			adopted = append(adopted, next.ID)
			vm.nodes = vm.cgroup.Nodes()
			sources = append(sources, next)
		}
	}
	return frames, nodes, adopted, nil
}

// adoptCandidates lists the guest-reserved nodes a growing VM may adopt,
// in adoption-preference order: home socket first, then remote sockets if
// the spec allows. Shared by the grow path and the resize preview so the
// preview predicts exactly what the grow would do. Caller holds h.mu.
func (h *Hypervisor) adoptCandidates(vm *VM) []*numa.Node {
	candidates := h.topo.NodesOnSocket(vm.spec.Socket, numa.GuestReserved)
	if vm.spec.AllowRemote {
		for s := 0; s < h.cfg.Geometry.Sockets; s++ {
			if s != vm.spec.Socket {
				candidates = append(candidates, h.topo.NodesOnSocket(s, numa.GuestReserved)...)
			}
		}
	}
	return candidates
}

// adoptableNode finds an unowned guest-reserved node with huge-page
// capacity, preferring the VM's home socket. Caller holds h.mu.
func (h *Hypervisor) adoptableNode(vm *VM) (*numa.Node, bool) {
	for _, n := range h.adoptCandidates(vm) {
		if _, owned := h.reg.OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			continue
		}
		if a.FreePagesAtOrder(alloc.Order2M) > 0 {
			return n, true
		}
	}
	return nil, false
}
