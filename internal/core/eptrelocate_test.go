package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// freeGuestNodes returns unowned guest-reserved nodes on a socket whose
// combined capacity covers bytes — cross-socket migration destinations.
func freeGuestNodes(t *testing.T, h *Hypervisor, socket int, bytes uint64) []int {
	t.Helper()
	var ids []int
	var capacity uint64
	for _, n := range h.Topology().NodesOnSocket(socket, numa.GuestReserved) {
		if _, owned := h.Registry().OwnerOf(n.ID); owned {
			continue
		}
		a, err := h.Allocator(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, n.ID)
		capacity += a.FreeBytes()
		if capacity >= bytes {
			return ids
		}
	}
	t.Fatalf("socket %d cannot host %d bytes", socket, bytes)
	return nil
}

// eptFreeBytes reads a socket's EPT-node free capacity.
func eptFreeBytes(t *testing.T, h *Hypervisor, socket int) uint64 {
	t.Helper()
	n, err := h.EPTNode(socket)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Allocator(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	return a.FreeBytes()
}

func TestRelocateEPTStandalone(t *testing.T) {
	h := bootSiloz(t)
	bootFree0 := eptFreeBytes(t, h, 0)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "vm", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("relocation survivor")
	if err := vm.WriteGuest(4096, payload); err != nil {
		t.Fatal(err)
	}
	nPages := len(vm.Tables().Pages())

	rep, err := h.RelocateEPT("vm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromSocket != 0 || rep.ToSocket != 1 || rep.TablePages != nPages {
		t.Fatalf("report = %+v, want 0->1 with %d pages", rep, nPages)
	}
	if rep.ReclaimedBytes != uint64(nPages)*geometry.PageSize4K {
		t.Errorf("ReclaimedBytes = %d", rep.ReclaimedBytes)
	}
	if vm.EPTSocket() != 1 {
		t.Errorf("EPTSocket = %d, want 1", vm.EPTSocket())
	}
	// Source pool fully reclaimed, pages inside socket 1's guarded block.
	if got := eptFreeBytes(t, h, 0); got != bootFree0 {
		t.Errorf("socket 0 EPT free = %d, want boot value %d", got, bootFree0)
	}
	dstNode, err := h.EPTNode(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range vm.Tables().Pages() {
		if !dstNode.Contains(pa) {
			t.Errorf("table page %#x outside socket 1's EPT node", pa)
		}
	}
	// The guest is untouched and the system still audits clean.
	buf := make([]byte, len(payload))
	if err := vm.ReadGuest(4096, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("payload after relocation: %q, %v", buf, err)
	}
	if findings := h.Audit(); len(findings) != 0 {
		t.Fatalf("audit after relocation: %v", findings)
	}

	// Same-socket relocation is a no-op report.
	rep, err = h.RelocateEPT("vm", 1)
	if err != nil || rep.TablePages != 0 {
		t.Fatalf("same-socket relocation: %+v, %v", rep, err)
	}
	if _, err := h.RelocateEPT("vm", 9); err == nil {
		t.Error("out-of-range socket accepted")
	}
	if _, err := h.RelocateEPT("ghost", 1); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("missing VM: %v", err)
	}
}

func TestMigrateVMRelocatesEPT(t *testing.T) {
	h := bootSiloz(t)
	bootFree0 := eptFreeBytes(t, h, 0)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("follows the guest")
	if err := vm.WriteGuest(12345, payload); err != nil {
		t.Fatal(err)
	}
	nPages := len(vm.Tables().Pages())

	dests := freeGuestNodes(t, h, 1, 64*geometry.MiB)
	rep, err := h.MigrateVM(context.Background(), "mig", dests, MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EPTRelocatedPages != nPages {
		t.Errorf("EPTRelocatedPages = %d, want %d", rep.EPTRelocatedPages, nPages)
	}
	if rep.EPTReclaimedBytes != uint64(nPages)*geometry.PageSize4K {
		t.Errorf("EPTReclaimedBytes = %d", rep.EPTReclaimedBytes)
	}
	if vm.EPTSocket() != 1 {
		t.Errorf("EPTSocket = %d, want 1", vm.EPTSocket())
	}
	if got := eptFreeBytes(t, h, 0); got != bootFree0 {
		t.Errorf("source socket EPT free = %d, want boot value %d", got, bootFree0)
	}
	dstNode, err := h.EPTNode(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range vm.Tables().Pages() {
		if !dstNode.Contains(pa) {
			t.Errorf("table page %#x outside the destination EPT block", pa)
		}
	}
	buf := make([]byte, len(payload))
	if err := vm.ReadGuest(12345, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("payload after migration: %q, %v", buf, err)
	}
	if findings := h.Audit(); len(findings) != 0 {
		t.Fatalf("audit after cross-socket migration: %v", findings)
	}
}

func TestSameSocketMigrationKeepsEPTsHome(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dests := freeGuestNodes(t, h, 0, 64*geometry.MiB)
	rep, err := h.MigrateVM(context.Background(), "mig", dests, MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EPTRelocatedPages != 0 || vm.EPTSocket() != 0 {
		t.Errorf("same-socket migration relocated EPTs: %d pages, socket %d",
			rep.EPTRelocatedPages, vm.EPTSocket())
	}
}

// The §7.1 in-block hammering check against the *relocated* block: after a
// cross-socket migration under guard-rows protection, the nearest rows an
// attacker can reach on the destination socket must not flip EPT rows.
func TestRelocatedEPTBlockResistsHammering(t *testing.T) {
	h, err := Boot(denseConfig(ept.GuardRows), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dests := freeGuestNodes(t, h, 1, 64*geometry.MiB)
	if _, err := h.MigrateVM(context.Background(), "mig", dests, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}

	before := make(map[uint64]uint64)
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			t.Fatal(err)
		}
		before[gpa] = hpa
	}

	mem := h.Memory()
	dstNode, err := h.EPTNode(1)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := mem.Mapper().Decode(dstNode.Ranges[0].Start)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Row != EPTRowGroupOffset {
		t.Fatalf("destination EPT row = %d, want %d", ma.Row, EPTRowGroupOffset)
	}
	// Hammer the closest allocatable rows after the destination block.
	for _, row := range []int{EPTBlockRowGroups, EPTBlockRowGroups + 1} {
		aggr, err := mem.Mapper().Encode(geometry.MediaAddr{Bank: ma.Bank, Row: row, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.ActivatePhys(aggr, 100000, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range mem.Flips() {
		if f.MediaRow == ma.Row && f.Bank.Socket == 1 {
			t.Errorf("flip reached the relocated EPT row: %v", f)
		}
	}
	for gpa, want := range before {
		hpa, err := vm.TranslateUncached(gpa)
		if err != nil {
			t.Fatalf("translate %#x after hammering: %v", gpa, err)
		}
		if hpa != want {
			t.Fatalf("translation of %#x changed: %#x -> %#x", gpa, want, hpa)
		}
	}
}

// SecureEPT across a relocation: the re-keyed MACs on the destination pages
// must still detect hammered entries.
func TestRelocatedSecureEPTDetectsHammering(t *testing.T) {
	h, err := Boot(denseConfig(ept.SecureEPT), ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dests := freeGuestNodes(t, h, 1, 64*geometry.MiB)
	if _, err := h.MigrateVM(context.Background(), "mig", dests, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	if vm.EPTSocket() != 1 {
		t.Fatalf("EPTSocket = %d, want 1", vm.EPTSocket())
	}
	hammerEPTNeighbours(t, h, vm) // targets the relocated PD's neighbour rows

	sawIntegrityFault := false
	for gpa := uint64(0); gpa < vm.Spec().MemoryBytes; gpa += geometry.PageSize2M {
		if _, err := vm.TranslateUncached(gpa); err != nil {
			sawIntegrityFault = true
			break
		}
	}
	if !sawIntegrityFault {
		t.Fatal("relocated secure EPT never faulted despite hammered table rows")
	}
}

// Regression for the Registry.Shrink failure path: when the source nodes
// cannot be released after commit, the guest must resume on its destination
// frames, the failure must be logged, and a system audit must run.
func TestMigrateShrinkFailureLogsAndAudits(t *testing.T) {
	var log bytes.Buffer
	cfg := testConfig()
	cfg.Log = &log
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "mig", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	srcNode := vm.Nodes()[0].ID
	dests := freeGuestNodes(t, h, 1, 64*geometry.MiB)

	// Force the failure: a guest step yanks the source node out of the
	// control group mid-migration, so the engine's final Shrink of the same
	// node fails with "not in cgroup".
	opt := MigrateOptions{GuestStep: func(round int) error {
		if round == 0 {
			return h.Registry().Shrink("vm:mig", []int{srcNode})
		}
		return nil
	}}
	rep, err := h.MigrateVM(context.Background(), "mig", dests, opt)
	if err == nil {
		t.Fatal("migration succeeded despite sabotaged source-node release")
	}
	if !strings.Contains(err.Error(), "releasing source nodes") {
		t.Errorf("error = %v, want source-node release failure", err)
	}
	if rep == nil {
		t.Fatal("commit-phase failure must still return the report")
	}
	out := log.String()
	if !strings.Contains(out, "failed to release source nodes") {
		t.Errorf("failure not logged:\n%s", out)
	}
	if !strings.Contains(out, "post-failure audit") {
		t.Errorf("no audit on the failure path:\n%s", out)
	}
	// The guest survived and runs on destination frames.
	if err := vm.WriteGuest(0, []byte("alive")); err != nil {
		t.Fatalf("guest unusable after shrink failure: %v", err)
	}
	for _, hpa := range vm.RAMPages() {
		if node, ok := h.Topology().NodeOf(hpa); !ok || node.Socket != 1 {
			t.Fatalf("RAM page %#x not on the destination socket", hpa)
		}
	}
}
