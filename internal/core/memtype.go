package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// RegionType classifies guest memory regions by their QEMU memory type,
// which determines mediation and therefore placement (§5.1): a VM can
// trivially hammer memory it accesses without VM exits, so every
// unmediated region must live in the VM's own subarray groups; mediated
// regions exit into the hypervisor, which can rate-limit, so they live in
// host-reserved groups.
type RegionType int

const (
	// RegionRAM is ordinary guest RAM: unmediated reads and writes.
	RegionRAM RegionType = iota
	// RegionROM is guest ROM: reads are unmediated (hammerable!), writes
	// trap. It must therefore be guest-placed despite being read-only.
	RegionROM
	// RegionMMIO is emulated device MMIO: accesses exit to the
	// hypervisor; host-placed.
	RegionMMIO
	// RegionVirtio is a paravirtual I/O ring: DMAs are performed by the
	// host on the guest's behalf (§5.1), so the backing pages are
	// host-placed and cannot be hammered by the guest.
	RegionVirtio
)

func (t RegionType) String() string {
	switch t {
	case RegionRAM:
		return "ram"
	case RegionROM:
		return "rom"
	case RegionMMIO:
		return "mmio"
	case RegionVirtio:
		return "virtio"
	}
	return "invalid"
}

// Unmediated reports whether some guest access type reaches the region's
// DRAM without a VM exit (§5.1's placement criterion).
func (t RegionType) Unmediated() bool {
	return t == RegionRAM || t == RegionROM
}

// Region describes one extra guest memory region (beyond RAM).
type Region struct {
	// Name labels the region (e.g. "bios", "virtio-net").
	Name string
	// Type is the QEMU memory type.
	Type RegionType
	// Bytes is the region size; must be 4 KiB aligned.
	Bytes uint64
}

// ROMBase is the guest physical base of unmediated non-RAM regions; it sits
// between RAM (at 0) and the mediated window (at MediatedBase).
const ROMBase = uint64(1) << 39

// regionInfo tracks a materialized region.
type regionInfo struct {
	Region
	gpa    uint64
	pages  []uint64 // 4 KiB HPAs in GPA order
	nodeID int      // allocator that owns the pages
}

// allocRegions materializes spec.Regions: unmediated regions draw 4 KiB
// pages from the VM's guest-reserved nodes, mediated ones from the host
// node. ROMBase hosts unmediated regions; MediatedBase hosts the rest.
func (h *Hypervisor) allocRegions(vm *VM) error {
	unmediatedGPA := ROMBase
	mediatedGPA := MediatedBase + uint64(len(vm.mediated))*geometry.PageSize4K
	for _, r := range vm.spec.Regions {
		if r.Bytes == 0 || r.Bytes%geometry.PageSize4K != 0 {
			return fmt.Errorf("core: region %q size %d not 4 KiB aligned", r.Name, r.Bytes)
		}
		n := int(r.Bytes / geometry.PageSize4K)
		info := regionInfo{Region: r}
		if r.Type.Unmediated() {
			// Guest-placed. Under Siloz, draw from the VM's reserved
			// nodes; the baseline has no such constraint.
			nodeID, pages, err := h.allocGuestRegionPages(vm, n)
			if err != nil {
				return fmt.Errorf("core: region %q: %w", r.Name, err)
			}
			info.nodeID = nodeID
			info.pages = pages
			info.gpa = unmediatedGPA
			unmediatedGPA += r.Bytes
		} else {
			host := h.topo.NodesOnSocket(vm.spec.Socket, numa.HostReserved)
			if len(host) == 0 {
				return fmt.Errorf("core: no host node on socket %d", vm.spec.Socket)
			}
			pages, err := h.AllocHostPages(vm.spec.Socket, 0, n)
			if err != nil {
				return fmt.Errorf("core: region %q: %w", r.Name, err)
			}
			info.nodeID = host[0].ID
			info.pages = pages
			info.gpa = mediatedGPA
			mediatedGPA += r.Bytes
		}
		// ROM is mapped read-only: guest writes raise EPT violations and
		// are emulated by the hypervisor (§5.1).
		writable := r.Type != RegionROM
		for i, hpa := range info.pages {
			if err := vm.tables.Map4KProt(info.gpa+uint64(i)*geometry.PageSize4K, hpa, writable); err != nil {
				return err
			}
		}
		vm.regions = append(vm.regions, info)
	}
	return nil
}

// allocGuestRegionPages takes 4 KiB pages from the first VM node with room
// (baseline: from the socket's node).
func (h *Hypervisor) allocGuestRegionPages(vm *VM, n int) (int, []uint64, error) {
	var sources []*numa.Node
	if h.mode == ModeSiloz {
		sources = vm.nodes
	} else {
		sources = h.topo.NodesOnSocket(vm.spec.Socket, numa.HostReserved)
	}
	for _, node := range sources {
		a, err := h.Allocator(node.ID)
		if err != nil {
			return 0, nil, err
		}
		pages, err := a.AllocPages(0, n)
		if err == nil {
			return node.ID, pages, nil
		}
	}
	return 0, nil, alloc.ErrNoMemory
}

// freeRegions scrubs and releases all region pages.
func (vm *VM) freeRegions() {
	for _, info := range vm.regions {
		if a, err := vm.hv.Allocator(info.nodeID); err == nil {
			for _, pa := range info.pages {
				_ = vm.hv.mem.ScrubPhys(pa, geometry.PageSize4K)
				_ = a.Free(pa, 0)
			}
		}
	}
	vm.regions = nil
}

// Regions returns the VM's materialized extra regions.
func (vm *VM) Regions() []Region {
	out := make([]Region, len(vm.regions))
	for i, r := range vm.regions {
		out[i] = r.Region
	}
	return out
}

// RegionGPA returns the guest physical base of a named region.
func (vm *VM) RegionGPA(name string) (uint64, error) {
	for _, r := range vm.regions {
		if r.Name == name {
			return r.gpa, nil
		}
	}
	return 0, fmt.Errorf("core: VM %q has no region %q", vm.spec.Name, name)
}

// RegionPages returns the backing HPAs of a named region.
func (vm *VM) RegionPages(name string) ([]uint64, error) {
	for _, r := range vm.regions {
		if r.Name == name {
			out := make([]uint64, len(r.pages))
			copy(out, r.pages)
			return out, nil
		}
	}
	return nil, fmt.Errorf("core: VM %q has no region %q", vm.spec.Name, name)
}
