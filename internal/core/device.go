package core

import (
	"fmt"

	"repro/internal/ept"
	"repro/internal/geometry"
)

// Device models a passthrough (SR-IOV) virtual function assigned to a VM
// (§5.1). Its DMAs are translated by an IOMMU whose page tables the
// hypervisor builds to cover exactly the VM's unmediated RAM; under Siloz
// the IOMMU table pages are protected "akin to EPT pages" — allocated from
// the guarded EPT row-group block — because a flipped IOMMU entry would let
// the device DMA (and hammer) outside the guest's subarray groups.
//
// The default virtio path needs none of this: the hypervisor performs DMAs
// on the guest's behalf and can rate-limit them (§5.1), which the VM model
// expresses by refusing Hammer on mediated pages.
type Device struct {
	name   string
	vm     *VM
	tables *ept.Tables // IOMMU page tables (IOVA -> HPA)
}

// AttachDevice creates a passthrough device for a VM, building IOMMU
// mappings IOVA==GPA over the VM's RAM. Table pages are allocated from the
// same pool as EPT pages (GFP_EPT under Siloz with guard-row protection).
func (h *Hypervisor) AttachDevice(vm *VM, name string) (*Device, error) {
	if vm.tables == nil {
		return nil, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	a, err := h.eptAllocatorFor(vm.eptSocket)
	if err != nil {
		return nil, err
	}
	mode := ept.NoProtection
	if h.mode == ModeSiloz {
		mode = h.cfg.EPTProtection
	}
	tables, err := ept.New(h.mem, eptAlloc{a}, mode)
	if err != nil {
		return nil, err
	}
	d := &Device{name: name, vm: vm, tables: tables}
	for i, hpa := range vm.ram {
		iova := uint64(i) * geometry.PageSize2M
		if err := tables.Map2M(iova, hpa); err != nil {
			tables.Destroy()
			return nil, err
		}
	}
	return d, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Tables exposes the device's IOMMU page tables (for protection audits).
func (d *Device) Tables() *ept.Tables { return d.tables }

// Detach releases the IOMMU tables.
func (d *Device) Detach() {
	if d.tables != nil {
		d.tables.Destroy()
		d.tables = nil
	}
}

// translate resolves an IOVA through the IOMMU.
func (d *Device) translate(iova uint64) (uint64, error) {
	if d.tables == nil {
		return 0, fmt.Errorf("core: device %q detached", d.name)
	}
	return d.tables.Translate(iova)
}

// DMAWrite stores data at an IOVA, as the device's unmediated DMA engine
// would.
func (d *Device) DMAWrite(iova uint64, data []byte) error {
	return d.dmaIter(iova, len(data), func(hpa uint64, off, n int) error {
		return d.vm.hv.mem.WritePhys(hpa, data[off:off+n])
	})
}

// DMARead loads len(buf) bytes from an IOVA.
func (d *Device) DMARead(iova uint64, buf []byte) error {
	return d.dmaIter(iova, len(buf), func(hpa uint64, off, n int) error {
		return d.vm.hv.mem.ReadPhys(hpa, buf[off:off+n])
	})
}

// dmaIter walks a DMA range in page-bounded pieces.
func (d *Device) dmaIter(iova uint64, n int, fn func(hpa uint64, off, n int) error) error {
	off := 0
	for off < n {
		cur := iova + uint64(off)
		hpa, err := d.translate(cur)
		if err != nil {
			return fmt.Errorf("core: device %q DMA blocked: %w", d.name, err)
		}
		chunk := int(geometry.PageSize2M - cur%geometry.PageSize2M)
		if chunk > n-off {
			chunk = n - off
		}
		if err := fn(hpa, off, chunk); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// HammerDMA activates the row backing an IOVA repeatedly — DMA-based
// Rowhammer (GuardION-style). The IOMMU confines it to the VM's own
// subarray groups exactly as EPTs confine CPU-side hammering.
func (d *Device) HammerDMA(iova uint64, count int, openNs int64) error {
	hpa, err := d.translate(iova)
	if err != nil {
		return fmt.Errorf("core: device %q DMA blocked: %w", d.name, err)
	}
	return d.vm.hv.mem.ActivatePhys(hpa, count, openNs)
}
