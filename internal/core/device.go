package core

import (
	"fmt"

	"repro/internal/ept"
	"repro/internal/geometry"
)

// Device models a passthrough (SR-IOV) virtual function assigned to a VM
// (§5.1). Its DMAs are translated by an IOMMU whose page tables the
// hypervisor builds to cover exactly the VM's unmediated RAM; under Siloz
// the IOMMU table pages are protected "akin to EPT pages" — allocated from
// the guarded EPT row-group block — because a flipped IOMMU entry would let
// the device DMA (and hammer) outside the guest's subarray groups.
//
// The IOMMU mappings are live state, not a snapshot: every RAM-layout
// change (live migration, balloon inflate/deflate, memory hotplug) re-syncs
// them through VM.syncDeviceTables, and VM teardown tears them down before
// the frames return to the free pools. DMA writes participate in the
// touched-page ledger and the dirty-page log (IOMMU dirty-bit harvesting),
// so scrub-before-free and pre-copy both see device stores.
//
// The default virtio path needs none of this: the hypervisor performs DMAs
// on the guest's behalf and can rate-limit them (§5.1), which the VM model
// expresses by refusing Hammer on mediated pages.
type Device struct {
	name   string
	vm     *VM
	tables *ept.Tables // IOMMU page tables (IOVA -> HPA)
	// view is the RAM layout the tables were last synced to (HPA per 2 MiB
	// page index, hpaNone for unmapped slots); resync diffs against it.
	view []uint64
}

// AttachDevice creates a passthrough device for a VM, building IOMMU
// mappings IOVA==GPA over the VM's RAM. Table pages are allocated from the
// same pool as EPT pages (GFP_EPT under Siloz with guard-row protection).
// The device is registered with the VM so lifecycle operations keep its
// mappings in sync with the RAM layout.
func (h *Hypervisor) AttachDevice(vm *VM, name string) (*Device, error) {
	if vm.tables == nil {
		return nil, fmt.Errorf("core: VM %q has been destroyed", vm.spec.Name)
	}
	a, err := h.eptAllocatorFor(vm.eptSocket)
	if err != nil {
		return nil, err
	}
	mode := ept.NoProtection
	if h.mode == ModeSiloz {
		mode = h.cfg.EPTProtection
	}
	tables, err := ept.New(h.mem, eptAlloc{a}, mode)
	if err != nil {
		return nil, err
	}
	d := &Device{name: name, vm: vm, tables: tables}
	for i, hpa := range vm.ram {
		if hpa == hpaNone {
			d.view = append(d.view, hpaNone)
			continue
		}
		iova := uint64(i) * geometry.PageSize2M
		if err := tables.Map2M(iova, hpa); err != nil {
			tables.Destroy()
			return nil, err
		}
		d.view = append(d.view, hpa)
	}
	vm.devMu.Lock()
	vm.devices = append(vm.devices, d)
	vm.devMu.Unlock()
	return d, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Tables exposes the device's IOMMU page tables (for protection audits).
func (d *Device) Tables() *ept.Tables { return d.tables }

// Detach releases the IOMMU tables and unregisters the device from its VM.
func (d *Device) Detach() {
	vm := d.vm
	vm.devMu.Lock()
	for i, o := range vm.devices {
		if o == d {
			vm.devices = append(vm.devices[:i], vm.devices[i+1:]...)
			break
		}
	}
	vm.devMu.Unlock()
	d.detachTables()
}

// detachTables destroys the IOMMU tables without touching the VM's device
// list — VM teardown uses it after clearing the list itself.
func (d *Device) detachTables() {
	if d.tables != nil {
		d.tables.Destroy()
		d.tables = nil
	}
	d.view = nil
}

// resync diffs the IOMMU mappings against the VM's current RAM layout and
// remaps / unmaps / maps whatever changed. Caller holds the vCPU gate
// exclusively (no DMA in flight).
func (d *Device) resync(ram []uint64) error {
	if d.tables == nil {
		return nil
	}
	n := len(d.view)
	if len(ram) > n {
		n = len(ram)
	}
	for i := 0; i < n; i++ {
		old, cur := hpaNone, hpaNone
		if i < len(d.view) {
			old = d.view[i]
		}
		if i < len(ram) {
			cur = ram[i]
		}
		if old == cur {
			continue
		}
		iova := uint64(i) * geometry.PageSize2M
		switch {
		case cur == hpaNone:
			if err := d.tables.Unmap(iova); err != nil {
				return fmt.Errorf("core: device %q iommu unmap iova %#x: %w", d.name, iova, err)
			}
		case old == hpaNone:
			if err := d.tables.Map2M(iova, cur); err != nil {
				return fmt.Errorf("core: device %q iommu map iova %#x: %w", d.name, iova, err)
			}
		default:
			if err := d.tables.Remap2M(iova, cur); err != nil {
				return fmt.Errorf("core: device %q iommu remap iova %#x: %w", d.name, iova, err)
			}
		}
	}
	d.view = append(d.view[:0], ram...)
	return nil
}

// translate resolves an IOVA through the IOMMU.
func (d *Device) translate(iova uint64) (uint64, error) {
	if d.tables == nil {
		return 0, fmt.Errorf("core: device %q detached", d.name)
	}
	return d.tables.Translate(iova)
}

// DMAWrite stores data at an IOVA, as the device's unmediated DMA engine
// would. It holds the vCPU gate shared — the hypervisor quiesces DMA across
// stop-the-world windows exactly as it quiesces vCPUs — and every written
// page lands in the VM's touched ledger and (while armed) dirty log.
func (d *Device) DMAWrite(iova uint64, data []byte) error {
	d.vm.pauseMu.RLock()
	defer d.vm.pauseMu.RUnlock()
	return d.dmaIter(iova, len(data), func(hpa uint64, off, n int) error {
		d.vm.noteDMAWrite(iova + uint64(off))
		return d.vm.hv.mem.WritePhys(hpa, data[off:off+n])
	})
}

// DMARead loads len(buf) bytes from an IOVA.
func (d *Device) DMARead(iova uint64, buf []byte) error {
	d.vm.pauseMu.RLock()
	defer d.vm.pauseMu.RUnlock()
	return d.dmaIter(iova, len(buf), func(hpa uint64, off, n int) error {
		return d.vm.hv.mem.ReadPhys(hpa, buf[off:off+n])
	})
}

// dmaIter walks a DMA range in page-bounded pieces.
func (d *Device) dmaIter(iova uint64, n int, fn func(hpa uint64, off, n int) error) error {
	off := 0
	for off < n {
		cur := iova + uint64(off)
		hpa, err := d.translate(cur)
		if err != nil {
			return fmt.Errorf("core: device %q DMA blocked: %w", d.name, err)
		}
		chunk := int(geometry.PageSize2M - cur%geometry.PageSize2M)
		if chunk > n-off {
			chunk = n - off
		}
		if err := fn(hpa, off, chunk); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// HammerDMA activates the row backing an IOVA repeatedly — DMA-based
// Rowhammer (GuardION-style). The IOMMU confines it to the VM's own
// subarray groups exactly as EPTs confine CPU-side hammering, and the vCPU
// gate confines it in time: no DMA activation can land inside a
// stop-the-world window where the frame may be changing owners.
func (d *Device) HammerDMA(iova uint64, count int, openNs int64) error {
	d.vm.pauseMu.RLock()
	defer d.vm.pauseMu.RUnlock()
	hpa, err := d.translate(iova)
	if err != nil {
		return fmt.Errorf("core: device %q DMA blocked: %w", d.name, err)
	}
	return d.vm.hv.mem.ActivatePhys(hpa, count, openNs)
}
