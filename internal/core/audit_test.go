package core

import (
	"testing"

	"repro/internal/geometry"
)

func TestAuditHealthySystem(t *testing.T) {
	h := bootSiloz(t)
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("fresh boot audit failed: %v", bad)
	}
	// Stress: VMs with regions and devices, hammering, destruction.
	vm := createRegionVM(t, h)
	if _, err := h.AttachDevice(vm, "vf0"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "b", Socket: 1, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("stressed audit failed: %v", bad)
	}
	if err := h.DestroyVM("b"); err != nil {
		t.Fatal(err)
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("post-destroy audit failed: %v", bad)
	}
}

func TestAuditBaseline(t *testing.T) {
	h := bootBaseline(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "x", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("baseline audit failed: %v", bad)
	}
}

func TestAuditDetectsCorruptedAccounting(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt state deliberately: hand one of the VM's RAM pages to a
	// second bookkeeping owner by double-freeing it into the node pool.
	nodeID := vm.Nodes()[0].ID
	a, err := h.Allocator(nodeID)
	if err != nil {
		t.Fatal(err)
	}
	pa := vm.RAMPages()[0]
	if err := a.Free(pa, 9); err != nil {
		t.Fatal(err)
	}
	bad := h.Audit()
	if len(bad) == 0 {
		t.Fatal("audit missed corrupted allocator accounting")
	}
	// Repair so teardown of other tests is unaffected (re-allocate it).
	if _, err := a.Alloc(9); err != nil {
		t.Fatal(err)
	}
}
