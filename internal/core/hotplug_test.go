package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/geometry"
)

// TestHotplugAdoptsAndScrubs is the tentpole acceptance scenario: a VM grown
// beyond its boot-time reservation adopts a fresh subarray-group node, the
// hot-added range reads all-zero even though a departed tenant dirtied the
// adopted node, and the VM's recorded size and domain both grow.
func TestHotplugAdoptsAndScrubs(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// A departed tenant dirties the node the grow will adopt.
	prev, err := h.CreateVM(kvmProc(), VMSpec{Name: "prev", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 64; p += 7 {
		if err := prev.WriteGuest(uint64(p)*geometry.PageSize2M+64, []byte("departed tenant secret")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.DestroyVM("prev"); err != nil {
		t.Fatal(err)
	}

	rep, err := h.HotplugVM("v", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedPages != 32 || rep.AddedBytes != 64*geometry.MiB {
		t.Errorf("AddedPages/AddedBytes = %d/%d, want 32/64 MiB", rep.AddedPages, rep.AddedBytes)
	}
	if rep.BaseGPA != 64*geometry.MiB {
		t.Errorf("BaseGPA = %#x, want old top of RAM %#x", rep.BaseGPA, 64*geometry.MiB)
	}
	if rep.NewMemoryBytes != 128*geometry.MiB || vm.Spec().MemoryBytes != 128*geometry.MiB {
		t.Errorf("grown size = %d/%d, want 128 MiB", rep.NewMemoryBytes, vm.Spec().MemoryBytes)
	}
	if len(rep.AdoptedNodes) != 1 || len(vm.Nodes()) != 2 {
		t.Fatalf("adopted %v (VM owns %d nodes), want one fresh node", rep.AdoptedNodes, len(vm.Nodes()))
	}
	if rep.ScrubbedBytes != 64*geometry.MiB {
		t.Errorf("ScrubbedBytes = %d, want every hot-added byte (64 MiB)", rep.ScrubbedBytes)
	}
	if owner, _ := h.Registry().OwnerOf(rep.AdoptedNodes[0]); owner != "vm:v" {
		t.Errorf("adopted node %d owned by %q, want vm:v", rep.AdoptedNodes[0], owner)
	}
	// The hot-added range is readable, all-zero, and writable.
	buf := make([]byte, geometry.PageSize2M)
	for p := 32; p < 64; p++ {
		if err := vm.ReadGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
			t.Fatalf("hot-added page %d unreadable: %v", p, err)
		}
		if !allZero(buf) {
			t.Errorf("hot-added page %d not scrubbed", p)
		}
	}
	if err := vm.WriteGuest(rep.BaseGPA+5, []byte("fresh capacity")); err != nil {
		t.Errorf("hot-added range not writable: %v", err)
	}
	// Beyond the grown range is still out of bounds.
	if err := vm.ReadGuest(128*geometry.MiB, buf[:8]); err == nil {
		t.Error("read beyond the grown RAM succeeded")
	}
}

// TestHotplugValidation pins the refusal paths: unknown VM, bad sizes, an
// inflated balloon, and a live migration in flight.
func TestHotplugValidation(t *testing.T) {
	h := bootSiloz(t)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 128 * geometry.MiB,
		MinMemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.HotplugVM("nope", geometry.PageSize2M); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("hotplug of unknown VM: err = %v, want ErrVMNotFound", err)
	}
	if _, err := h.HotplugVM("v", 0); err == nil {
		t.Error("zero-byte hotplug accepted")
	}
	if _, err := h.HotplugVM("v", geometry.PageSize2M+1); err == nil {
		t.Error("unaligned hotplug accepted")
	}
	// An inflated balloon blocks hotplug: the balloon is the top of RAM.
	if _, err := h.BalloonVM("v", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := h.HotplugVM("v", geometry.PageSize2M); err == nil {
		t.Error("hotplug with an inflated balloon accepted")
	}
	if _, err := h.BalloonVM("v", 0); err != nil {
		t.Fatal(err)
	}
	// The lifecycle latch refuses hotplug mid-migration.
	var plugErr error
	opt := MigrateOptions{GuestStep: func(round int) error {
		if round == 0 {
			_, plugErr = h.HotplugVM("v", geometry.PageSize2M)
		}
		return nil
	}}
	if _, err := h.MigrateVM(context.Background(), "v", guestNodeIDs(h, 1), opt); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(plugErr, ErrResizeBusy) {
		t.Errorf("hotplug during live migration: err = %v, want ErrResizeBusy", plugErr)
	}
}

// TestHotplugRollbackOnExhaustion: when no unowned node can cover the
// growth, the hotplug fails with ErrCapacityExhausted and the VM keeps
// exactly its previous size and node set.
func TestHotplugRollbackOnExhaustion(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "v", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// The other two home-socket nodes are owned; v may not go remote.
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "full", Socket: 0, MemoryBytes: 128 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.HotplugVM("v", 64*geometry.MiB); !errors.Is(err, ErrCapacityExhausted) {
		t.Fatalf("over-capacity hotplug: err = %v, want ErrCapacityExhausted", err)
	}
	if vm.Spec().MemoryBytes != 64*geometry.MiB {
		t.Errorf("failed hotplug grew the VM to %d bytes", vm.Spec().MemoryBytes)
	}
	if len(vm.Nodes()) != 1 {
		t.Errorf("failed hotplug left the VM owning %d nodes, want 1", len(vm.Nodes()))
	}
	// The latch was released: the VM still operates normally afterwards.
	if err := vm.WriteGuest(0, []byte("still alive")); err != nil {
		t.Errorf("VM unusable after refused hotplug: %v", err)
	}
	if _, err := h.HotplugVM("v", 64*geometry.MiB); !errors.Is(err, ErrCapacityExhausted) {
		t.Errorf("second refused hotplug: err = %v, want ErrCapacityExhausted (latch leaked?)", err)
	}
}
