package core

// The resize facade: one entry point for every change to a running VM's
// memory footprint. Callers say what size they want — core.ResizeVM(name,
// targetBytes) — and the facade dispatches to the cheapest mechanism that
// reaches it:
//
//   - shrink            → balloon inflate (surrender pages, maybe whole
//                         nodes, to the admission pool);
//   - grow within the   → balloon deflate (restore surrendered pages,
//     ballooned holes     re-adopting nodes if the old ones were taken);
//   - grow beyond the   → memory hotplug (extend guest RAM with new 2 MiB
//     boot reservation    regions on freshly adopted subarray-group nodes).
//
// PreviewResize answers the same dispatch question without mutating
// anything — which action, how many pages, which nodes would drain or be
// adopted — replacing the scattered per-mechanism previews. All paths run
// under the per-VM lifecycle
// latch, so a resize can never interleave with a balloon call, another
// resize, or a live migration of the same VM.

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/numa"
)

// ResizeAction identifies the mechanism a resize dispatches to.
type ResizeAction int

const (
	// ResizeNone: the VM already has the target size.
	ResizeNone ResizeAction = iota
	// ResizeInflate shrinks by inflating the balloon.
	ResizeInflate
	// ResizeDeflate grows within the ballooned holes by deflating.
	ResizeDeflate
	// ResizeHotplug grows beyond the boot-time reservation by hot-adding
	// memory (deflating any balloon remnant first).
	ResizeHotplug
)

func (a ResizeAction) String() string {
	switch a {
	case ResizeNone:
		return "none"
	case ResizeInflate:
		return "balloon-inflate"
	case ResizeDeflate:
		return "balloon-deflate"
	case ResizeHotplug:
		return "hotplug"
	}
	return "invalid"
}

// ResizePlan is PreviewResize's answer: what a resize to Target would do,
// computed without mutating anything.
type ResizePlan struct {
	VM      string
	Current uint64 // usable guest RAM now (spec size minus balloon)
	Target  uint64
	Action  ResizeAction

	Pages         int    // 2 MiB pages the action moves (surrendered or restored+added)
	BalloonTarget uint64 // balloon size after the action (inflate/deflate legs)
	HotplugBytes  uint64 // bytes hot-added beyond the reservation (hotplug only)
	ReleasedNodes []int  // guest nodes a shrink would drain and release
	AdoptedNodes  []int  // unowned guest nodes a grow would adopt (in adoption order)
}

// ResizeReport summarizes one ResizeVM call; the per-mechanism reports of
// the legs that ran are attached.
type ResizeReport struct {
	VM       string
	Previous uint64 // usable guest RAM before the call
	Target   uint64
	Action   ResizeAction

	Balloon *BalloonReport // set when a balloon leg ran
	Hotplug *HotplugReport // set when the hotplug leg ran
}

// usableBytes is the guest RAM the VM can touch: recorded size minus the
// ballooned-out pages. Caller holds h.mu.
func (vm *VM) usableBytes() uint64 {
	return vm.spec.MemoryBytes - uint64(len(vm.ballooned))*geometry.PageSize2M
}

// ResizeVM resizes a running VM's usable memory to targetBytes, dispatching
// to balloon inflate (shrink), balloon deflate (grow within the ballooned
// holes), or memory hotplug (grow beyond the boot-time reservation; any
// balloon remnant is deflated first). The call holds the VM's lifecycle
// latch end to end — concurrent resize, balloon, or migration of the same
// VM fails with ErrResizeBusy — and rolls back to the previous state on
// partial failure.
func (h *Hypervisor) ResizeVM(name string, targetBytes uint64) (*ResizeReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if err := vm.acquireLifecycle("resize"); err != nil {
		return nil, err
	}
	defer vm.releaseLifecycle()
	if targetBytes == 0 || targetBytes%geometry.PageSize2M != 0 {
		return nil, fmt.Errorf("core: resize target %d must be a positive multiple of 2 MiB", targetBytes)
	}

	rep := &ResizeReport{VM: name, Previous: vm.usableBytes(), Target: targetBytes}
	switch {
	case targetBytes == rep.Previous:
		rep.Action = ResizeNone
		return rep, nil

	case targetBytes < rep.Previous:
		if floor := balloonFloor(vm.spec); targetBytes < floor {
			return nil, fmt.Errorf("core: resize target %d below VM %q's floor %d", targetBytes, name, floor)
		}
		rep.Action = ResizeInflate
		br, err := h.balloonTo(vm, vm.spec.MemoryBytes-targetBytes)
		if err != nil {
			return nil, err
		}
		rep.Balloon = br
		return h.finishResize(vm, rep)

	case targetBytes <= vm.spec.MemoryBytes:
		rep.Action = ResizeDeflate
		br, err := h.balloonTo(vm, vm.spec.MemoryBytes-targetBytes)
		if err != nil {
			return nil, err
		}
		rep.Balloon = br
		return h.finishResize(vm, rep)

	default:
		rep.Action = ResizeHotplug
		// Deflate any balloon remnant first: hotplug extends the top of
		// RAM, and the balloon's model is that it *is* the top of RAM.
		prevBalloon := uint64(len(vm.ballooned)) * geometry.PageSize2M
		if prevBalloon > 0 {
			br, err := h.balloonTo(vm, 0)
			if err != nil {
				return nil, err
			}
			rep.Balloon = br
		}
		hr, err := h.hotplugGrow(vm, targetBytes-vm.spec.MemoryBytes)
		if err != nil {
			if prevBalloon > 0 {
				// Roll the deflate leg back so the caller sees the
				// pre-resize state; the re-inflate frees pages we just
				// allocated, so it cannot fail for capacity.
				if _, rerr := h.balloonTo(vm, prevBalloon); rerr != nil {
					return nil, fmt.Errorf("core: hotplug failed (%w) and balloon restore failed too: %v", err, rerr)
				}
			}
			return nil, err
		}
		rep.Hotplug = hr
		return h.finishResize(vm, rep)
	}
}

// finishResize completes a successful resize leg. Dropping a VM's last node
// on a socket can leave the whole reservation on the other socket while the
// EPT tables stay behind; when that happens, pull the tables after the
// guest. A relocation failure does not undo the resize — the report is
// returned alongside the error. Caller holds h.mu and the lifecycle latch.
func (h *Hypervisor) finishResize(vm *VM, rep *ResizeReport) (*ResizeReport, error) {
	if err := h.relocateIfStranded(vm); err != nil {
		return rep, fmt.Errorf("core: resize of VM %q left EPT tables behind: %w", vm.spec.Name, err)
	}
	return rep, nil
}

// PreviewResize reports, without mutating anything, what ResizeVM(name,
// targetBytes) would do: the dispatched action, the pages it moves, the
// nodes a shrink would drain and release, and the unowned nodes a grow
// would adopt. It is the planner's feasibility probe for both
// shrink-in-place and grow-in-place.
func (h *Hypervisor) PreviewResize(name string, targetBytes uint64) (*ResizePlan, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if targetBytes == 0 || targetBytes%geometry.PageSize2M != 0 {
		return nil, fmt.Errorf("core: resize target %d must be a positive multiple of 2 MiB", targetBytes)
	}
	plan := &ResizePlan{VM: name, Current: vm.usableBytes(), Target: targetBytes}
	switch {
	case targetBytes == plan.Current:
		plan.Action = ResizeNone
		return plan, nil

	case targetBytes < plan.Current:
		if floor := balloonFloor(vm.spec); targetBytes < floor {
			return nil, fmt.Errorf("core: resize target %d below VM %q's floor %d", targetBytes, name, floor)
		}
		plan.Action = ResizeInflate
		plan.BalloonTarget = vm.spec.MemoryBytes - targetBytes
		plan.Pages = int(plan.BalloonTarget/geometry.PageSize2M) - len(vm.ballooned)
		released, err := h.previewDrain(vm, plan.Pages)
		if err != nil {
			return nil, err
		}
		plan.ReleasedNodes = released
		return plan, nil

	case targetBytes <= vm.spec.MemoryBytes:
		plan.Action = ResizeDeflate
		plan.BalloonTarget = vm.spec.MemoryBytes - targetBytes
		plan.Pages = len(vm.ballooned) - int(plan.BalloonTarget/geometry.PageSize2M)

	default:
		plan.Action = ResizeHotplug
		plan.HotplugBytes = targetBytes - vm.spec.MemoryBytes
		plan.Pages = len(vm.ballooned) + int(plan.HotplugBytes/geometry.PageSize2M)
	}
	adopt, err := h.previewAdopt(vm, plan.Pages)
	if err != nil {
		return nil, err
	}
	plan.AdoptedNodes = adopt
	return plan, nil
}

// previewDrain reports which guest nodes an inflate of n pages would drain
// and release, in node-ID order. Caller holds h.mu.
func (h *Hypervisor) previewDrain(vm *VM, n int) (released []int, err error) {
	if h.mode != ModeSiloz || n <= 0 {
		return nil, nil
	}
	freed := make(map[int]uint64) // node ID -> bytes this inflate would free
	for _, p := range inflateVictims(vm, n) {
		freed[vm.ramNode[vm.ram[p]]] += geometry.PageSize2M
	}
	for _, node := range vm.nodes {
		a, aerr := h.Allocator(node.ID)
		if aerr != nil {
			return nil, aerr
		}
		// The node drains iff everything still allocated on it is exactly
		// the set of pages this inflate frees.
		if b := freed[node.ID]; b > 0 && a.UsedBytes() == b {
			released = append(released, node.ID)
		}
	}
	sort.Ints(released)
	return released, nil
}

// previewAdopt reports which unowned guest nodes a grow of n huge pages
// would adopt (in the adoption order allocGrowFrames uses), or
// ErrCapacityExhausted when even adopting every reachable node cannot cover
// the growth. Caller holds h.mu.
func (h *Hypervisor) previewAdopt(vm *VM, n int) (adopt []int, err error) {
	free := 0
	var sources []*numa.Node
	if h.mode == ModeSiloz {
		sources = vm.nodes
	} else {
		sources = h.topo.NodesOnSocket(vm.spec.Socket, numa.HostReserved)
	}
	for _, node := range sources {
		a, aerr := h.Allocator(node.ID)
		if aerr != nil {
			return nil, aerr
		}
		free += a.FreePagesAtOrder(alloc.Order2M)
	}
	if free >= n {
		return nil, nil
	}
	if h.mode == ModeSiloz {
		for _, cand := range h.adoptCandidates(vm) {
			if _, owned := h.reg.OwnerOf(cand.ID); owned {
				continue
			}
			a, aerr := h.Allocator(cand.ID)
			if aerr != nil {
				continue
			}
			pages := a.FreePagesAtOrder(alloc.Order2M)
			if pages == 0 {
				continue
			}
			adopt = append(adopt, cand.ID)
			free += pages
			if free >= n {
				return adopt, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: growing VM %q by %d pages reaches only %d",
		ErrCapacityExhausted, vm.spec.Name, n, free)
}
