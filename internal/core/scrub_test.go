package core

import (
	"bytes"
	"testing"

	"repro/internal/geometry"
)

// TestDestroyVMScrubsGuestMemory: §5.3's teardown must not leak one tenant's
// bytes to the next. A destroyed VM's RAM, mediated, and region pages are
// zeroed before they return to the free pools, so a successor VM reusing the
// same frames can never read the predecessor's data.
func TestDestroyVMScrubsGuestMemory(t *testing.T) {
	h := bootSiloz(t)
	secret := []byte("tenant-a private key material 0xDEADBEEF")
	vma, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "a", Socket: 0, MemoryBytes: 64 * geometry.MiB,
		MediatedBytes: 8 * geometry.KiB,
		Regions:       []Region{{Name: "bios", Type: RegionROM, Bytes: 16 * geometry.KiB}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Plant the secret in RAM (several pages), a mediated page, and ROM.
	for _, gpa := range []uint64{0, 5*geometry.PageSize2M + 1234, 31 * geometry.PageSize2M} {
		if err := vma.WriteGuest(gpa, secret); err != nil {
			t.Fatal(err)
		}
	}
	if err := vma.WriteGuest(MediatedBase+64, secret); err != nil {
		t.Fatal(err)
	}
	romPages, err := vma.RegionPages("bios")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Memory().WritePhys(romPages[0], secret); err != nil {
		t.Fatal(err)
	}

	ramPages := vma.RAMPages()
	mediated := vma.MediatedPages()
	if err := h.DestroyVM("a"); err != nil {
		t.Fatal(err)
	}

	// Every frame the tenant could have written is zero at the hardware
	// level — before any successor even exists.
	probe := make([]byte, len(secret))
	check := func(pa uint64, what string) {
		t.Helper()
		if err := h.Memory().ReadPhys(pa, probe); err != nil {
			t.Fatal(err)
		}
		if !allZero(probe) {
			t.Errorf("%s frame %#x not scrubbed", what, pa)
		}
	}
	for _, pa := range ramPages {
		check(pa, "RAM")
	}
	for _, pa := range mediated {
		check(pa, "mediated")
	}
	for _, pa := range romPages {
		check(pa, "ROM")
	}

	// A successor VM reusing the node reads only zeros.
	vmb, err := h.CreateVM(kvmProc(), VMSpec{Name: "b", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, geometry.PageSize2M)
	for p := 0; p < len(vmb.RAMPages()); p++ {
		if err := vmb.ReadGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
			t.Fatal(err)
		}
		if !allZero(buf) {
			t.Fatalf("successor VM read a previous tenant's bytes in page %d", p)
		}
		if bytes.Contains(buf, secret) {
			t.Fatalf("secret survived into successor VM page %d", p)
		}
	}
}

// TestBalloonDrainScrubsNodePages: the partial-release invariant's scrub
// half — when inflation drains a whole subarray-group node, every byte of
// that node is zero before it re-enters the admission pool, even though
// only the touched-page ledger's entries were explicitly scrubbed.
func TestBalloonDrainScrubsNodePages(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "bal", Socket: 0, MemoryBytes: 128 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a spread of pages in the half that will be surrendered.
	secret := []byte("tenant secret that must not survive the balloon")
	for p := 32; p < 64; p += 5 {
		if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M+99, secret); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := h.BalloonVM("bal", 64*geometry.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ReleasedNodes) != 1 {
		t.Fatalf("ReleasedNodes = %v, want one drained node", rep.ReleasedNodes)
	}
	node, err := h.Topology().Node(rep.ReleasedNodes[0])
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, geometry.PageSize4K)
	for _, r := range node.Ranges {
		for pa := r.Start; pa+geometry.PageSize4K <= r.End; pa += geometry.PageSize4K {
			if err := h.Memory().ReadPhys(pa, buf); err != nil {
				t.Fatal(err)
			}
			if !allZero(buf) {
				t.Fatalf("drained node %d leaks data at %#x", node.ID, pa)
			}
		}
	}
}
