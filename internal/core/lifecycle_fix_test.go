package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geometry"
)

// Regression tests for the lifecycle containment gaps the adversarial
// campaigns (internal/attack) exposed. Each test fails on the pre-fix code:
//
//   - Hammer ignored the vCPU pause gate, so activations could land inside
//     stop-the-world windows where frames change owners;
//   - device DMA bypassed the touched ledger and the dirty log, so
//     scrub-before-free and pre-copy never saw device stores;
//   - IOMMU tables were never re-synced across RAM-layout changes and never
//     destroyed at teardown, leaving devices with stale translations into
//     freed (and possibly re-owned) frames.

// TestHammerRespectsPauseGate: a hammer call issued while the VM is paused
// must block until resume — the same quiescence vCPUs and DMA engines get.
// Pre-fix, Hammer translated and activated immediately, so an attacker
// thread could keep activating rows across a balloon/migration
// stop-the-world window using a stale translation.
func TestHammerRespectsPauseGate(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "hg", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	vm.Pause()
	done := make(chan error, 1)
	go func() { done <- vm.Hammer(0, 100, 0) }()
	select {
	case err := <-done:
		vm.Resume()
		t.Fatalf("Hammer completed (%v) while the VM was paused", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked on the gate, as required.
	}
	vm.Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Hammer after resume: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Hammer still blocked after resume")
	}
}

// TestConcurrentHammerResize races hammering threads against balloon-backed
// grow/shrink cycles (run under -race via make race-quick). Translation
// failures on ballooned-out pages are expected; crashes, races, or
// activations landing outside the VM's domain are not.
func TestConcurrentHammerResize(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "hr", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	const hammerers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < hammerers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				gpa := uint64(rng.Intn(32)) * geometry.PageSize2M
				_ = vm.Hammer(gpa, 50, 0) // unmapped pages may refuse; fine
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		target := uint64(32 * geometry.MiB)
		if i%2 == 1 {
			target = 64 * geometry.MiB
		}
		if _, err := h.ResizeVM("hr", target); err != nil {
			t.Errorf("resize %d -> %d MiB: %v", i, target>>20, err)
		}
	}
	close(stop)
	wg.Wait()
	// Every activation-induced flip must sit inside the VM's own domain.
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("hammer/resize race let a flip escape the domain: %v", f)
		}
	}
}

// TestDMAWriteMarksScrubLedger: a page only ever written by device DMA must
// still be scrubbed at teardown. Pre-fix, DMAWrite skipped the touched
// ledger, so scrub-before-free considered the frame clean and the next
// tenant could read the device's bytes.
func TestDMAWriteMarksScrubLedger(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	poison := bytes.Repeat([]byte{0xDB}, 512)
	gpa := uint64(9) * geometry.PageSize2M
	if err := dev.DMAWrite(gpa, poison); err != nil {
		t.Fatal(err)
	}
	hpa, err := vm.Translate(gpa)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM(vm.Spec().Name); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(poison))
	if err := h.Memory().ReadPhys(hpa, got); err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Error("DMA-written frame returned to the pool unscrubbed")
	}
}

// TestMigrationScrubsDMAPoisonedFrame: a frame poisoned by DMA between the
// final pre-copy round and stop-and-copy must (a) reach the destination —
// the dirty log sees device stores — and (b) be scrubbed on the source
// before its node is released. Pre-fix, the DMA was invisible to both the
// dirty log and the source scrub ledger: the destination lost the bytes and
// the source frame went back to the pool still holding them.
func TestMigrationScrubsDMAPoisonedFrame(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	name := vm.Spec().Name
	// Touch a low page so round 0 copies something.
	if err := vm.WriteGuest(0, []byte("seed")); err != nil {
		t.Fatal(err)
	}
	const poisonPage = 20 // never touched by the CPU side
	poison := bytes.Repeat([]byte{0xA7}, 1024)
	srcHPA, err := vm.Translate(poisonPage * geometry.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	dest := freeGuestNode(t, h, 0)
	injected := false
	_, err = h.MigrateVM(context.Background(), name, []int{dest.ID}, MigrateOptions{
		OnRound: func(r MigrateRound) {
			if injected {
				return
			}
			injected = true
			// The window the campaign drives: after this round's dirty
			// drain, before stop-and-copy. The device store goes to the
			// source frame; only the dirty log can carry it across.
			if err := dev.DMAWrite(poisonPage*geometry.PageSize2M, poison); err != nil {
				t.Errorf("mid-migration DMA: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("OnRound never fired; test vacuous")
	}
	got := make([]byte, len(poison))
	if err := vm.ReadGuest(poisonPage*geometry.PageSize2M, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, poison) {
		t.Error("DMA store between final round and stop-and-copy lost in transit")
	}
	if err := h.Memory().ReadPhys(srcHPA, got); err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Error("source frame freed unscrubbed after mid-migration DMA poison")
	}
}

// TestDeviceTablesFollowMigration: after a migration the device's IOMMU
// mappings must point at the destination frames. Pre-fix they kept the
// source translations, so post-migration DMA wrote into freed frames —
// frames the allocator may already have handed to another tenant.
func TestDeviceTablesFollowMigration(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	name := vm.Spec().Name
	srcHPA, err := vm.Translate(0)
	if err != nil {
		t.Fatal(err)
	}
	dest := freeGuestNode(t, h, 0)
	if _, err := h.MigrateVM(context.Background(), name, []int{dest.ID}, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	payload := []byte("post-move dma")
	if err := dev.DMAWrite(0, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := vm.ReadGuest(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("post-migration DMA not visible to the guest (stale IOMMU mapping)")
	}
	if err := h.Memory().ReadPhys(srcHPA, got); err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Error("post-migration DMA landed in the freed source frame")
	}
	// And DMA hammering activates destination rows, inside the new domain.
	if err := dev.HammerDMA(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range h.Memory().Flips() {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("post-migration DMA hammer flip outside the domain: %v", f)
		}
	}
}

// TestDeviceTablesFollowBalloon: ballooned-out pages must disappear from
// the IOMMU (DMA refused), and reappear after deflate. Pre-fix the device
// could DMA into a surrendered frame after it returned to the free pool.
func TestDeviceTablesFollowBalloon(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	name := vm.Spec().Name
	spec := vm.Spec()
	lastGPA := spec.MemoryBytes - geometry.PageSize2M
	if _, err := h.BalloonVM(name, spec.MemoryBytes/2); err != nil {
		t.Fatal(err)
	}
	if err := dev.DMAWrite(lastGPA, []byte{1}); err == nil {
		t.Error("DMA into a ballooned-out page succeeded")
	}
	if _, err := h.BalloonVM(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.DMAWrite(lastGPA, []byte("back")); err != nil {
		t.Errorf("DMA after deflate: %v", err)
	}
}

// TestDeviceTablesFollowHotplug: the hot-added range must become
// DMA-reachable (the IOMMU grows with RAM).
func TestDeviceTablesFollowHotplug(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	top := vm.Spec().MemoryBytes
	if err := dev.DMAWrite(top, []byte{1}); err == nil {
		t.Fatal("DMA beyond RAM succeeded before hotplug")
	}
	if _, err := h.HotplugVM(vm.Spec().Name, 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	payload := []byte("hot-added dma")
	if err := dev.DMAWrite(top, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := vm.ReadGuest(top, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("DMA into the hot-added range not visible to the guest")
	}
}

// TestTeardownDetachesDevices: destroying a VM must revoke its devices'
// translations before the frames are scrubbed and freed. Pre-fix the
// tables survived teardown and DMA kept flowing into recycled frames.
func TestTeardownDetachesDevices(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	if err := h.DestroyVM(vm.Spec().Name); err != nil {
		t.Fatal(err)
	}
	if err := dev.DMAWrite(0, []byte{1}); err == nil {
		t.Error("DMA after VM teardown succeeded")
	}
	if err := dev.HammerDMA(0, 100, 0); err == nil {
		t.Error("DMA hammering after VM teardown succeeded")
	}
}

// TestLifecycleProbesFire pins the probe seam the campaigns hook: balloon
// inflate fires unmapped-then-drained, hotplug fires adopted, each exactly
// once per operation and in order.
func TestLifecycleProbesFire(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "pr", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	h.SetLifecycleProbe(func(event string, pv *VM) {
		if pv != vm {
			t.Errorf("probe %s delivered wrong VM", event)
		}
		got = append(got, event)
	})
	if _, err := h.BalloonVM("pr", 32*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BalloonVM("pr", 0); err != nil { // deflate: no probes
		t.Fatal(err)
	}
	if _, err := h.HotplugVM("pr", 64*geometry.MiB); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", []string{ProbeBalloonUnmapped, ProbeBalloonDrained, ProbeHotplugAdopted})
	if fmt.Sprintf("%v", got) != want {
		t.Errorf("probe sequence = %v, want %s", got, want)
	}
}
