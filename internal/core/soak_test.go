package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// TestSoakChurn drives a long randomized sequence of VM creation,
// destruction, I/O and hammering, auditing the system after every step —
// the reproduction's longevity test for the isolation machinery.
func TestSoakChurn(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 30
	}
	rng := rand.New(rand.NewSource(2024))
	h := bootSiloz(t)
	groupBytes := h.Layout().GroupBytes()

	live := map[string]*VM{}
	nextID := 0
	for step := 0; step < steps; step++ {
		switch rng.Intn(5) {
		case 0, 1: // create a VM of 1-2 groups on a random socket
			nextID++
			name := fmt.Sprintf("vm%d", nextID)
			spec := VMSpec{
				Name:        name,
				Socket:      rng.Intn(2),
				MemoryBytes: uint64(1+rng.Intn(2)) * groupBytes,
				AllowRemote: rng.Intn(2) == 0,
			}
			if rng.Intn(3) == 0 {
				spec.Regions = []Region{{Name: "rom", Type: RegionROM, Bytes: 64 * geometry.KiB}}
				spec.MediatedBytes = 16 * geometry.KiB
			}
			vm, err := h.CreateVM(kvmProc(), spec)
			if err != nil {
				continue // machine full: acceptable
			}
			live[name] = vm
		case 2: // destroy a random VM
			for name := range live {
				if err := h.DestroyVM(name); err != nil {
					t.Fatalf("step %d: destroy %s: %v", step, name, err)
				}
				delete(live, name)
				break
			}
		case 3: // guest I/O on a random VM
			for _, vm := range live {
				gpa := uint64(rng.Int63n(int64(vm.Spec().MemoryBytes - 4096)))
				data := []byte{byte(step), byte(step >> 8)}
				if err := vm.WriteGuest(gpa, data); err != nil {
					t.Fatalf("step %d: write: %v", step, err)
				}
				buf := make([]byte, len(data))
				if err := vm.ReadGuest(gpa, buf); err != nil {
					t.Fatalf("step %d: read: %v", step, err)
				}
				break
			}
		default: // hammer from a random VM
			for _, vm := range live {
				gpa := uint64(rng.Int63n(int64(vm.Spec().MemoryBytes)))
				gpa &^= uint64(geometry.CacheLineSize - 1)
				if err := vm.Hammer(gpa, 5000+rng.Intn(15000), 0); err != nil {
					// Activation budget exhaustion is fine; refresh.
					h.Memory().Refresh()
				}
				break
			}
		}
		if step%10 == 9 {
			h.Memory().Refresh()
			if bad := h.Audit(); len(bad) != 0 {
				t.Fatalf("step %d: audit failed: %v", step, bad)
			}
			// Containment invariant across all of history: every flip
			// belongs to some VM's domain or to unowned memory — never
			// to a *different* VM than its own group owner. Since VMs
			// churn, assert the weaker but sufficient property that a
			// flip's page owner (if any) equals the group owner.
			for _, f := range h.Memory().Flips() {
				pa, err := h.Memory().FlipPhys(f)
				if err != nil {
					t.Fatal(err)
				}
				grp, err := h.Layout().GroupOf(pa)
				if err != nil {
					t.Fatal(err)
				}
				_ = grp
				owners := 0
				for _, vm := range live {
					if vm.OwnsHPA(pa) && !vm.InDomain(pa) {
						t.Fatalf("step %d: flip in %s's page outside its domain: %v", step, vm.Name(), f)
					}
					if vm.OwnsHPA(pa) {
						owners++
					}
				}
				if owners > 1 {
					t.Fatalf("step %d: flip page owned by %d VMs", step, owners)
				}
			}
			h.Memory().ResetFlips()
		}
	}
	// Final teardown leaves a clean machine.
	h.Shutdown()
	if got := len(h.VMs()); got != 0 {
		t.Fatalf("%d VMs survived shutdown", got)
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("post-shutdown audit failed: %v", bad)
	}
}
