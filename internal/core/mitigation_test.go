package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geometry"
	"repro/internal/mitigation"
)

func mitigatedConfig(k mitigation.Kind) Config {
	cfg := testConfig()
	cfg.Mitigation = mitigation.Spec{Kind: k, Seed: 42}
	return cfg
}

// TestBootMitigatedDerivesMode: BootMitigated must pick the hypervisor the
// configured defense assumes — Siloz for subarray-group isolation, the
// unmodified baseline for every controller- or allocation-plane kind — and
// Boot must reject the contradictory combination of a Siloz spec on a
// baseline hypervisor (the spec's guarantees would silently not hold).
func TestBootMitigatedDerivesMode(t *testing.T) {
	for _, tc := range []struct {
		kind mitigation.Kind
		want Mode
	}{
		{mitigation.KindNone, ModeBaseline},
		{mitigation.KindPARA, ModeBaseline},
		{mitigation.KindSilverBullet, ModeBaseline},
		{mitigation.KindCATT, ModeBaseline},
		{mitigation.KindSiloz, ModeSiloz},
	} {
		h, err := BootMitigated(mitigatedConfig(tc.kind))
		if err != nil {
			t.Fatalf("BootMitigated(%v): %v", tc.kind, err)
		}
		if h.Mode() != tc.want {
			t.Errorf("BootMitigated(%v) mode = %v, want %v", tc.kind, h.Mode(), tc.want)
		}
	}
	if _, err := Boot(mitigatedConfig(mitigation.KindSiloz), ModeBaseline); err == nil {
		t.Fatal("Boot(ModeBaseline) accepted a KindSiloz mitigation spec")
	}
}

// TestBootAttachesRowDefense: activation-plane kinds must reach the DRAM
// modules — hammering through a VM shows up in the defense overhead ledger
// and the activation tally, and the per-scope seeding makes two identical
// boots produce identical ledgers.
func TestBootAttachesRowDefense(t *testing.T) {
	run := func(k mitigation.Kind) mitigation.Overhead {
		h, err := BootMitigated(mitigatedConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "rd", Socket: 0, MemoryBytes: 32 * geometry.MiB})
		if err != nil {
			t.Fatal(err)
		}
		// Three bursts over the Silver Bullet threshold (1250) and far
		// enough for PARA's p=1/500 coin to win with near certainty.
		for i := 0; i < 3; i++ {
			if err := vm.Hammer(0, 2000, 0); err != nil {
				t.Fatal(err)
			}
		}
		if got := h.Memory().TotalActivations(); got < 6000 {
			t.Errorf("%v: TotalActivations = %d, want >= 6000", k, got)
		}
		return h.Memory().DefenseOverhead()
	}
	for _, k := range []mitigation.Kind{mitigation.KindPARA, mitigation.KindSilverBullet} {
		first := run(k)
		if first.NeighborRefreshes == 0 {
			t.Errorf("%v: no neighbor refreshes recorded after hammering", k)
		}
		if second := run(k); second != first {
			t.Errorf("%v: overhead not reproducible across identical boots: %+v vs %+v", k, second, first)
		}
	}
	// The undefended control must observe activations but never refresh.
	h, err := BootMitigated(mitigatedConfig(mitigation.KindNone))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "rd", Socket: 0, MemoryBytes: 32 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Hammer(0, 2000, 0); err != nil {
		t.Fatal(err)
	}
	if ov := h.Memory().DefenseOverhead(); ov.NeighborRefreshes != 0 {
		t.Errorf("undefended boot recorded %d refreshes", ov.NeighborRefreshes)
	}
	if got := h.Memory().TotalActivations(); got < 2000 {
		t.Errorf("undefended boot TotalActivations = %d, want >= 2000", got)
	}
}

// TestCATTGuardBandsFlankTenantExtents: a KindCATT boot must claim the
// 2 MiB pages holding the media rows within the blast-radius band of every
// VM's rows — row-space adjacency through the mapper, not physical-address
// adjacency — keep them off-limits to other tenants, account them in
// MitigationBlockedBytes, and give them all back at teardown.
func TestCATTGuardBandsFlankTenantExtents(t *testing.T) {
	h, err := BootMitigated(mitigatedConfig(mitigation.KindCATT))
	if err != nil {
		t.Fatal(err)
	}
	base := h.MitigationBlockedBytes()
	vm1, err := h.CreateVM(kvmProc(), VMSpec{Name: "c1", Socket: 0, MemoryBytes: 32 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := h.CreateVM(kvmProc(), VMSpec{Name: "c2", Socket: 0, MemoryBytes: 32 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	g := testGeometry()
	mapper := h.Memory().Mapper()
	groupBytes := uint64(g.RowGroupBytes())

	guards := 0
	for _, vm := range []*VM{vm1, vm2} {
		gp := vm.GuardPages()
		if len(gp) == 0 {
			t.Fatalf("VM %q has no guard pages under KindCATT", vm.Name())
		}
		guards += len(gp)
		for _, pa := range gp {
			// Guard pages belong to no tenant...
			if vm1.OwnsHPA(pa) || vm2.OwnsHPA(pa) {
				t.Errorf("guard page %#x is tenant-owned", pa)
			}
			// ...and hold at least one media row within the band distance
			// of a row the owning VM's RAM occupies.
			adjacent := false
			for off := uint64(0); off < geometry.PageSize2M && !adjacent; off += groupBytes {
				ma, err := mapper.Decode(pa + off)
				if err != nil {
					continue
				}
				for d := 1; d <= mitigation.DefaultCATTGuardRows && !adjacent; d++ {
					for _, n := range [2]int{ma.Row - d, ma.Row + d} {
						if n < 0 || n >= g.RowsPerBank {
							continue
						}
						nma := ma
						nma.Row = n
						nma.Col = 0
						npa, err := mapper.Encode(nma)
						if err != nil {
							continue
						}
						if vm.OwnsHPA(npa) {
							adjacent = true
							break
						}
					}
				}
			}
			if !adjacent {
				t.Errorf("guard page %#x holds no row within %d of VM %q rows", pa, mitigation.DefaultCATTGuardRows, vm.Name())
			}
		}
	}
	want := base + uint64(guards)*geometry.PageSize2M
	if got := h.MitigationBlockedBytes(); got != want {
		t.Errorf("MitigationBlockedBytes = %d, want %d (%d guard pages)", got, want, guards)
	}
	if err := h.DestroyVM("c1"); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("c2"); err != nil {
		t.Fatal(err)
	}
	if got := h.MitigationBlockedBytes(); got != base {
		t.Errorf("MitigationBlockedBytes after teardown = %d, want %d", got, base)
	}
}

// TestConcurrentMitigationHammerResize hammers one VM while another is
// resized, under each deployable defense (run under -race via make
// race-quick). Exercises the activation-plane observation path and the
// CATT guard claim/release path concurrently with balloon-backed layout
// churn: no crash, no race, and the only tolerable defense degradation is
// a typed budget exhaustion.
func TestConcurrentMitigationHammerResize(t *testing.T) {
	kinds := []mitigation.Kind{
		mitigation.KindPARA, mitigation.KindSilverBullet, mitigation.KindCATT, mitigation.KindSiloz,
	}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			h, err := BootMitigated(mitigatedConfig(k))
			if err != nil {
				t.Fatal(err)
			}
			ham, err := h.CreateVM(kvmProc(), VMSpec{Name: "ham", Socket: 0, MemoryBytes: 64 * geometry.MiB})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "rz", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(1))
				for {
					select {
					case <-stop:
						return
					default:
					}
					gpa := uint64(rng.Intn(32)) * geometry.PageSize2M
					_ = ham.Hammer(gpa, 50, 0)
				}
			}()
			for i := 0; i < 6; i++ {
				target := uint64(32 * geometry.MiB)
				if i%2 == 1 {
					target = 64 * geometry.MiB
				}
				if _, err := h.ResizeVM("rz", target); err != nil {
					t.Errorf("resize %d -> %d MiB: %v", i, target>>20, err)
				}
			}
			close(stop)
			wg.Wait()
			if err := h.Memory().DefenseHealth(); err != nil && !errors.Is(err, mitigation.ErrBudgetExhausted) {
				t.Errorf("defense degraded unexpectedly: %v", err)
			}
			if k == mitigation.KindSiloz {
				for _, f := range h.Memory().Flips() {
					pa, err := h.Memory().FlipPhys(f)
					if err != nil {
						t.Fatal(err)
					}
					if !ham.InDomain(pa) {
						t.Errorf("flip escaped the hammering VM's domain: %v", f)
					}
				}
			}
		})
	}
}
