package core

import (
	"errors"
	"testing"

	"repro/internal/geometry"
)

// confusedDeputySpam drives mediated accesses to one MMIO page as fast as
// the hypervisor allows, returning how many the host actually performed.
func confusedDeputySpam(t *testing.T, vm *VM, attempts int) int {
	t.Helper()
	gpa, err := vm.RegionGPA("vga")
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0xFF}
	performed := 0
	for i := 0; i < attempts; i++ {
		err := vm.WriteGuest(gpa, buf)
		switch {
		case err == nil:
			performed++
		case errors.Is(err, ErrThrottled):
			// rejected by the rate limiter
		default:
			t.Fatal(err)
		}
	}
	return performed
}

func deputyVM(t *testing.T, h *Hypervisor) *VM {
	t.Helper()
	vm, err := h.CreateVM(kvmProc(), VMSpec{
		Name: "deputy", Socket: 0, MemoryBytes: geometry.PageSize2M,
		Regions: []Region{{Name: "vga", Type: RegionMMIO, Bytes: geometry.PageSize4K}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// TestConfusedDeputyThrottled covers the §5.1 argument: exit-mediated
// accesses let the host rate-limit, so a guest cannot trick host software
// into hammering host-reserved rows.
func TestConfusedDeputyThrottled(t *testing.T) {
	cfg := testConfig()
	cfg.Profiles[0].HammerThreshold = 3000
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm := deputyVM(t, h)
	performed := confusedDeputySpam(t, vm, 50_000)
	if performed > DefaultMediatedAccessLimit {
		t.Fatalf("host performed %d mediated accesses, limit %d", performed, DefaultMediatedAccessLimit)
	}
	if vm.Throttled() == 0 {
		t.Fatal("limiter never engaged")
	}
	// The hammered host page's rows never cross the threshold: no flips.
	if flips := h.Memory().Flips(); len(flips) != 0 {
		t.Fatalf("confused-deputy hammering flipped %d bits despite rate limiting", len(flips))
	}
}

// TestConfusedDeputyWithoutLimiter demonstrates the threat the limiter
// closes: with rate limiting disabled, exit-driven host accesses hammer the
// mediated page's host-reserved row past the threshold.
func TestConfusedDeputyWithoutLimiter(t *testing.T) {
	cfg := testConfig()
	cfg.Profiles[0].HammerThreshold = 3000
	cfg.Profiles[0].VulnerableRowFraction = 1
	cfg.MediatedAccessLimit = -1
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm := deputyVM(t, h)
	performed := confusedDeputySpam(t, vm, 10_000)
	if performed != 10_000 {
		t.Fatalf("performed %d, want all attempts with limiter off", performed)
	}
	flips := h.Memory().Flips()
	if len(flips) == 0 {
		t.Fatal("unthrottled deputy hammering produced no flips; threat not reproduced")
	}
	// The flips land in host-reserved memory — exactly what Siloz's
	// mediated-page placement plus rate limiting is designed to prevent.
	hostHit := false
	for _, f := range flips {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			hostHit = true
		}
	}
	if !hostHit {
		t.Error("expected flips outside the guest domain (host rows)")
	}
}
