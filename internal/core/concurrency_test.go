package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/geometry"
)

// TestConcurrentVMLifecycle churns CreateVM/WriteGuest/ReadGuest/DestroyVM
// from parallel goroutines (run under -race via make race-quick). Capacity
// failures under contention are expected — the point is that the lifecycle
// races safely and the allocator accounting balances to zero afterwards.
func TestConcurrentVMLifecycle(t *testing.T) {
	h := bootSiloz(t)
	const workers, iters = 6, 4
	errs := make(chan error, workers*iters*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("vm-%d-%d", w, i)
				spec := VMSpec{Name: name, Socket: (w + i) % 2, MemoryBytes: 32 * geometry.MiB}
				vm, err := h.CreateVM(kvmProc(), spec)
				if err != nil {
					continue // node pool exhausted by peers; not an error
				}
				data := fillPage(w*iters+i, byte(w+1))[:8*geometry.KiB]
				gpa := uint64(geometry.PageSize2M) - 4*geometry.KiB // page-spanning
				if err := vm.WriteGuest(gpa, data); err != nil {
					errs <- fmt.Errorf("%s write: %w", name, err)
				}
				got := make([]byte, len(data))
				if err := vm.ReadGuest(gpa, got); err != nil {
					errs <- fmt.Errorf("%s read: %w", name, err)
				} else if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("%s round trip mismatch", name)
				}
				if err := h.DestroyVM(name); err != nil {
					errs <- fmt.Errorf("%s destroy: %w", name, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := len(h.VMs()); n != 0 {
		t.Errorf("%d VMs survived the churn", n)
	}
	// Every node's allocator balances: all memory back in the free pools.
	for _, n := range h.Topology().Nodes() {
		a, err := h.Allocator(n.ID)
		if err != nil {
			t.Fatal(err)
		}
		if a.FreeBytes() != a.TotalBytes() || a.UsedBytes() != 0 {
			t.Errorf("node %d accounting unbalanced: free %d of %d, used %d",
				n.ID, a.FreeBytes(), a.TotalBytes(), a.UsedBytes())
		}
	}
	// No stale exclusive ownership.
	for _, n := range h.Topology().Nodes() {
		if owner, owned := h.Registry().OwnerOf(n.ID); owned {
			t.Errorf("node %d still owned by %q", n.ID, owner)
		}
	}
}

// TestConcurrentWriterDuringMigration races a real writer goroutine against
// the pre-copy engine (no GuestStep determinism): the final memory image
// must reflect complete writes only, whichever side of the stop-and-copy
// each landed on.
func TestConcurrentWriterDuringMigration(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "live", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dest := freeGuestNode(t, h, 0)

	const hotPages = 4
	const chunk = 8 * geometry.KiB
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, chunk)
		for ver := byte(1); ; ver++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			for p := 0; p < hotPages; p++ {
				for i := range buf {
					buf[i] = ver ^ byte(p)
				}
				if err := vm.WriteGuest(uint64(p)*geometry.PageSize2M, buf); err != nil {
					done <- err
					return
				}
			}
		}
	}()

	rep, err := h.MigrateVM(context.Background(), "live", []int{dest.ID}, MigrateOptions{
		StopPages: 1, MaxRounds: 8,
	})
	close(stop)
	if werr := <-done; werr != nil {
		t.Fatalf("writer failed: %v", werr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesTotal != 32 {
		t.Errorf("pages total = %d", rep.PagesTotal)
	}
	// Each hot page holds exactly one complete write — uniform, nonzero
	// content — and the rest of the page is still zero.
	page := make([]byte, geometry.PageSize2M)
	for p := 0; p < hotPages; p++ {
		if err := vm.ReadGuest(uint64(p)*geometry.PageSize2M, page); err != nil {
			t.Fatal(err)
		}
		v := page[0]
		if v == 0 {
			t.Errorf("hot page %d lost its data", p)
		}
		for i := 1; i < chunk; i++ {
			if page[i] != v {
				t.Fatalf("hot page %d torn at byte %d: %#x vs %#x", p, i, page[i], v)
			}
		}
		if !allZero(page[chunk:]) {
			t.Errorf("hot page %d has stray bytes past the written chunk", p)
		}
	}
	// The guest is on the destination node and still writable.
	if len(vm.Nodes()) != 1 || vm.Nodes()[0].ID != dest.ID {
		t.Fatalf("post-migration nodes = %v", vm.Nodes())
	}
	if err := vm.WriteGuest(10*geometry.PageSize2M, []byte("after")); err != nil {
		t.Fatal(err)
	}
}
