// Package core implements the paper's primary contribution: the Siloz
// hypervisor (§5). Siloz computes subarray groups at boot, abstracts them as
// logical NUMA nodes, places each VM's unmediated pages into private
// guest-reserved groups and the host's (plus mediated VM pages) into
// host-reserved groups, and protects extended page tables with guard rows or
// hardware integrity — preventing inter-VM Rowhammer end to end.
//
// The same package provides the unmodified Linux/KVM baseline hypervisor
// the paper evaluates against: identical machinery with subarray group
// isolation disabled, so security and performance experiments can compare
// the two configurations directly.
package core

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/mitigation"
)

// Mode selects the hypervisor configuration under test.
type Mode int

const (
	// ModeSiloz enables subarray group isolation and EPT protection.
	ModeSiloz Mode = iota
	// ModeBaseline is the unmodified Linux/KVM baseline: per-socket
	// nodes, no subarray awareness, unprotected EPTs.
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeSiloz {
		return "siloz"
	}
	return "baseline"
}

// EPT row-group block parameters (§5.4): a contiguous block of b row groups
// is reserved in a designated host subarray group; the row group at offset
// o holds EPT pages and the remaining b-1 row groups are guard rows.
const (
	// EPTBlockRowGroups is the paper's b = 32.
	EPTBlockRowGroups = 32
	// EPTRowGroupOffset is the paper's o = 12.
	EPTRowGroupOffset = 12
)

// Config parameterizes a boot.
type Config struct {
	// Geometry describes the server; zero value means geometry.Default().
	Geometry geometry.Geometry
	// Profiles are the DIMM disturbance profiles, assigned round-robin
	// to slots; nil means the six Table 3 evaluation DIMMs.
	Profiles []dram.Profile
	// Mapper is the physical-to-media mapping; nil means the Skylake
	// mapper for Geometry.
	Mapper addr.Mapper
	// SubarrayRows overrides the geometry's rows per subarray — the boot
	// parameter of §5.3 used by the Siloz-512/-1024/-2048 variants; 0
	// keeps the geometry's value.
	SubarrayRows int
	// EPTProtection selects EPT integrity for Siloz (§5.4). The
	// baseline always runs unprotected.
	EPTProtection ept.IntegrityMode
	// Repairs optionally models repaired rows (§6); Siloz offlines pages
	// of inter-subarray repairs.
	Repairs *addr.RepairTable
	// HostGroupsPerSocket is how many subarray groups each socket's
	// host-reserved node owns; all remaining groups become guest-reserved
	// nodes ("all but one logical node per socket", §5.2). 0 means 1.
	HostGroupsPerSocket int
	// CachedLayout optionally supplies subarray group address ranges
	// computed on a previous boot (§5.3: the mapping is BIOS-fixed, so
	// firmware can cache it). A stale or mismatched cache falls back to
	// recomputation.
	CachedLayout io.Reader
	// Log optionally receives a dmesg-style event log of boot, VM
	// lifecycle and security events.
	Log io.Writer
	// MediatedAccessLimit caps a VM's mediated accesses per refresh
	// window — the §5.1 rate-limit closing the theoretical "confused
	// deputy" vector, where a guest tricks host software into hammering
	// host rows through VM exits. 0 uses DefaultMediatedAccessLimit;
	// negative disables the limiter (for demonstrating the threat).
	MediatedAccessLimit int
	// Mitigation selects the Rowhammer defense this boot deploys. The
	// zero value (KindNone) runs undefended. Activation-plane kinds
	// (PARA, Silver Bullet) attach one instance per DRAM module;
	// allocation-plane kinds constrain placement: KindCATT reserves guard
	// bands around each VM's RAM extents at create time, KindSiloz
	// requires ModeSiloz (BootMitigated derives the mode automatically).
	Mitigation mitigation.Spec
}

// DefaultMediatedAccessLimit keeps per-window host accesses on a guest's
// behalf far below any Rowhammer threshold.
const DefaultMediatedAccessLimit = 2000

func (c *Config) normalize() error {
	if c.Geometry == (geometry.Geometry{}) {
		c.Geometry = geometry.Default()
	}
	if c.SubarrayRows != 0 {
		c.Geometry = c.Geometry.WithSubarraySize(c.SubarrayRows)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Profiles == nil {
		c.Profiles = dram.EvaluationProfiles()
	}
	if c.Mapper == nil {
		m, err := addr.NewMapper(c.Geometry, addr.KindSkylake)
		if err != nil {
			return err
		}
		c.Mapper = m
	}
	if c.HostGroupsPerSocket == 0 {
		c.HostGroupsPerSocket = 1
	}
	if c.HostGroupsPerSocket < 0 {
		return fmt.Errorf("core: HostGroupsPerSocket must be positive")
	}
	if c.MediatedAccessLimit == 0 {
		c.MediatedAccessLimit = DefaultMediatedAccessLimit
	}
	c.Mitigation = c.Mitigation.WithDefaults()
	if err := c.Mitigation.Validate(); err != nil {
		return err
	}
	return nil
}

// Process models the credentials of a requesting process: its control group
// membership and KVM privilege (§5.3: guest-reserved node allocations
// require both).
type Process struct {
	// CGroup is the control group the process belongs to.
	CGroup string
	// KVMPrivileged reports whether the process holds KVM privileges.
	KVMPrivileged bool
}
