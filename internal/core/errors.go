package core

import "errors"

// Typed sentinel errors for the VM lifecycle paths (create, balloon,
// migrate, resize, hotplug). Callers branch on these with errors.Is instead
// of matching message strings; the wrapping fmt.Errorf sites add the VM name
// and operation detail.
var (
	// ErrVMNotFound reports an operation against a VM name the hypervisor
	// does not know (never created, or already destroyed).
	ErrVMNotFound = errors.New("core: VM not found")

	// ErrResizeBusy reports that a VM's lifecycle latch is held: exactly one
	// of resize, balloon, hotplug, or live migration may be in flight per VM
	// at a time, and a second operation is refused rather than interleaved.
	ErrResizeBusy = errors.New("core: VM lifecycle operation already in flight")

	// ErrCapacityExhausted reports that guest-reserved capacity ran out: no
	// unowned subarray-group node (or none reachable under the VM's socket
	// policy) can supply the requested huge pages. It is the admission
	// refusal the resize facade and the hotplug experiment measure.
	ErrCapacityExhausted = errors.New("core: guest-reserved capacity exhausted")
)
