package core

import (
	"fmt"
	"io"
	"time"
)

// The hypervisor emits a structured, dmesg-style event log when Config.Log
// is set. Events cover the boot sequence (§5.3), VM lifecycle, and security-
// relevant actions (offlining, throttling), so an operator can audit what
// the isolation machinery did.

// logf writes one timestamped event. Serialized: lifecycle operations and a
// running migration may log concurrently.
func (h *Hypervisor) logf(format string, args ...any) {
	if h.log == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	fmt.Fprintf(h.log, "[%12.6f] siloz: %s\n",
		time.Since(h.bootTime).Seconds(), fmt.Sprintf(format, args...))
}

// setLog installs the sink before boot logging starts.
func (h *Hypervisor) setLog(w io.Writer) {
	h.log = w
	h.bootTime = time.Now()
}
