package core

import (
	"bytes"
	"testing"

	"repro/internal/ept"
	"repro/internal/geometry"
	"repro/internal/numa"
)

func attachTestDevice(t *testing.T, h *Hypervisor) (*VM, *Device) {
	t.Helper()
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "io-vm", Socket: 0, MemoryBytes: 64 * geometry.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := h.AttachDevice(vm, "vf0")
	if err != nil {
		t.Fatal(err)
	}
	return vm, dev
}

func TestDeviceDMARoundTrip(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	payload := []byte("sr-iov packet buffer")
	// Device writes via DMA; guest reads via its GPA (IOVA==GPA).
	iova := uint64(geometry.PageSize2M) - 5 // crosses a page boundary
	if err := dev.DMAWrite(iova, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := vm.ReadGuest(iova, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("DMA write not visible to the guest")
	}
	buf := make([]byte, len(payload))
	if err := dev.DMARead(iova, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("DMA read mismatch")
	}
}

func TestDeviceDMAConfinedToMapping(t *testing.T) {
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	// IOVAs beyond the VM's RAM are unmapped in the IOMMU: the DMA is
	// blocked, so a compromised device cannot reach other tenants (§5.1).
	if err := dev.DMAWrite(vm.Spec().MemoryBytes+geometry.PageSize2M, []byte{1}); err == nil {
		t.Fatal("DMA outside the IOMMU mapping succeeded")
	}
	if err := dev.HammerDMA(vm.Spec().MemoryBytes+geometry.PageSize2M, 1000, 0); err == nil {
		t.Fatal("DMA hammering outside the mapping succeeded")
	}
}

func TestDeviceDMAHammeringContained(t *testing.T) {
	// GuardION-style DMA hammering: flips stay inside the VM's subarray
	// groups because the IOMMU only maps the VM's own pages.
	h := bootSiloz(t)
	vm, dev := attachTestDevice(t, h)
	if _, err := h.CreateVM(kvmProc(), VMSpec{Name: "victim", Socket: 0, MemoryBytes: 64 * geometry.MiB}); err != nil {
		t.Fatal(err)
	}
	if err := dev.HammerDMA(0, 20_000, 0); err != nil {
		t.Fatal(err)
	}
	flips := h.Memory().Flips()
	if len(flips) == 0 {
		t.Fatal("DMA hammering produced no flips; test vacuous")
	}
	for _, f := range flips {
		pa, err := h.Memory().FlipPhys(f)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.InDomain(pa) {
			t.Errorf("DMA-induced flip escaped the VM domain: %v", f)
		}
	}
}

func TestDeviceIOMMUTablesProtectedLikeEPTs(t *testing.T) {
	// §5.1 requirement (2): IOMMU page table pages are protected akin to
	// EPT pages — under Siloz+GuardRows they live in the EPT node.
	h := bootSiloz(t)
	_, dev := attachTestDevice(t, h)
	eptNode, err := h.EPTNode(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range dev.Tables().Pages() {
		if !eptNode.Contains(pa) {
			t.Errorf("IOMMU table page %#x outside the guarded EPT node", pa)
		}
	}

	// Baseline: IOMMU tables land in ordinary host memory.
	hb := bootBaseline(t)
	_, devb := attachTestDevice(t, hb)
	host := hb.Topology().NodesOnSocket(0, numa.HostReserved)[0]
	for _, pa := range devb.Tables().Pages() {
		if !host.Contains(pa) {
			t.Errorf("baseline IOMMU table page %#x outside host node", pa)
		}
	}
}

func TestDeviceDetach(t *testing.T) {
	h := bootSiloz(t)
	_, dev := attachTestDevice(t, h)
	dev.Detach()
	if err := dev.DMARead(0, make([]byte, 8)); err == nil {
		t.Error("DMA after detach succeeded")
	}
	dev.Detach() // idempotent
}

func TestAttachDeviceToDestroyedVM(t *testing.T) {
	h := bootSiloz(t)
	vm, err := h.CreateVM(kvmProc(), VMSpec{Name: "gone", Socket: 0, MemoryBytes: geometry.PageSize2M})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AttachDevice(vm, "vf0"); err == nil {
		t.Error("attached device to destroyed VM")
	}
}

func TestDeviceSecureEPTIOMMU(t *testing.T) {
	// With SecureEPT, IOMMU entries carry MACs too: corruption is
	// detected on DMA translation.
	cfg := testConfig()
	cfg.EPTProtection = ept.SecureEPT
	h, err := Boot(cfg, ModeSiloz)
	if err != nil {
		t.Fatal(err)
	}
	vm, dev := attachTestDevice(t, h)
	_ = vm
	// Corrupt the first IOMMU leaf entry directly in DRAM.
	pd := dev.Tables().Pages()[2]
	var buf [8]byte
	if err := h.Memory().ReadPhys(pd, buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[3] ^= 0x08
	if err := h.Memory().WritePhys(pd, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := dev.DMARead(0, make([]byte, 8)); err == nil {
		t.Error("corrupted IOMMU entry not detected by secure tables")
	}
}
